// Dense row-major matrix templated on the scalar type.
//
// Used with integer scalars (CheckedI64 / BigInt) for stoichiometric
// matrices and rank tests, and with Rational scalars for reduced row echelon
// form.  The class is a plain value type; all algorithms live in
// linalg/gauss.hpp so scalar-specific logic stays in one place.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bigint/scalar.hpp"
#include "support/assert.hpp"

namespace elmo {

template <typename T>
class Matrix {
 public:
  Matrix() = default;

  /// rows x cols matrix of zeros.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows),
        cols_(cols),
        data_(rows * cols, scalar_from_i64<T>(0)) {}

  /// Construct from nested initializer lists of int64 (test convenience).
  static Matrix from_rows(
      std::initializer_list<std::initializer_list<std::int64_t>> rows) {
    std::size_t nrows = rows.size();
    std::size_t ncols = nrows == 0 ? 0 : rows.begin()->size();
    Matrix m(nrows, ncols);
    std::size_t i = 0;
    for (const auto& row : rows) {
      ELMO_REQUIRE(row.size() == ncols, "ragged initializer matrix");
      std::size_t j = 0;
      for (std::int64_t v : row) m(i, j++) = scalar_from_i64<T>(v);
      ++i;
    }
    return m;
  }

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] bool empty() const { return rows_ == 0 || cols_ == 0; }

  T& operator()(std::size_t i, std::size_t j) {
    ELMO_DCHECK(i < rows_ && j < cols_, "matrix index out of range");
    return data_[i * cols_ + j];
  }
  const T& operator()(std::size_t i, std::size_t j) const {
    ELMO_DCHECK(i < rows_ && j < cols_, "matrix index out of range");
    return data_[i * cols_ + j];
  }

  /// Pointer to the start of row i (rows are contiguous).
  T* row_ptr(std::size_t i) { return data_.data() + i * cols_; }
  const T* row_ptr(std::size_t i) const { return data_.data() + i * cols_; }

  [[nodiscard]] Matrix transposed() const {
    Matrix t(cols_, rows_);
    for (std::size_t i = 0; i < rows_; ++i)
      for (std::size_t j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
    return t;
  }

  /// New matrix keeping only the given columns, in the given order.
  [[nodiscard]] Matrix select_columns(
      const std::vector<std::size_t>& columns) const {
    Matrix out(rows_, columns.size());
    for (std::size_t i = 0; i < rows_; ++i)
      for (std::size_t j = 0; j < columns.size(); ++j) {
        ELMO_DCHECK(columns[j] < cols_, "column index out of range");
        out(i, j) = (*this)(i, columns[j]);
      }
    return out;
  }

  /// New matrix keeping only the given rows, in the given order.
  [[nodiscard]] Matrix select_rows(const std::vector<std::size_t>& rows) const {
    Matrix out(rows.size(), cols_);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      ELMO_DCHECK(rows[i] < rows_, "row index out of range");
      for (std::size_t j = 0; j < cols_; ++j) out(i, j) = (*this)(rows[i], j);
    }
    return out;
  }

  void swap_rows(std::size_t a, std::size_t b) {
    if (a == b) return;
    for (std::size_t j = 0; j < cols_; ++j)
      std::swap((*this)(a, j), (*this)(b, j));
  }

  /// Matrix-vector product (used by invariant checks: N * e == 0).
  [[nodiscard]] std::vector<T> multiply(const std::vector<T>& x) const {
    ELMO_REQUIRE(x.size() == cols_, "multiply: dimension mismatch");
    std::vector<T> y(rows_, scalar_from_i64<T>(0));
    for (std::size_t i = 0; i < rows_; ++i) {
      T acc = scalar_from_i64<T>(0);
      const T* row = row_ptr(i);
      for (std::size_t j = 0; j < cols_; ++j) {
        if (!scalar_is_zero(row[j]) && !scalar_is_zero(x[j]))
          acc += row[j] * x[j];
      }
      y[i] = std::move(acc);
    }
    return y;
  }

  /// Count of nonzero entries in row i.
  [[nodiscard]] std::size_t row_nnz(std::size_t i) const {
    std::size_t count = 0;
    const T* row = row_ptr(i);
    for (std::size_t j = 0; j < cols_; ++j)
      if (!scalar_is_zero(row[j])) ++count;
    return count;
  }

  friend bool operator==(const Matrix& a, const Matrix& b) = default;

  /// Multi-line debug rendering.
  [[nodiscard]] std::string to_string() const {
    std::ostringstream os;
    for (std::size_t i = 0; i < rows_; ++i) {
      os << '[';
      for (std::size_t j = 0; j < cols_; ++j) {
        if (j) os << ' ';
        os << scalar_to_string((*this)(i, j));
      }
      os << "]\n";
    }
    return os.str();
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

}  // namespace elmo
