// Crash-safe graceful shutdown.
//
// install_signal_handlers() arranges for SIGINT/SIGTERM to set an
// async-signal-safe flag instead of killing the process.  Solver drivers
// poll shutdown_requested() at iteration boundaries and raise
// CancelledError, which propagates (un-retried) to the API boundary; the
// CLI then flushes a resumable checkpoint plus the final report.json and
// exits with kResumableExitCode so a supervisor knows the run can continue
// with `--resume`, losing at most one iteration.
//
// A second signal restores the default disposition and re-raises, so an
// impatient operator's double Ctrl-C still kills a wedged process.
#pragma once

#include <string>

#include "support/error.hpp"

namespace elmo::resource {

/// Distinct exit code for "interrupted but resumable" (mirrors EX_TEMPFAIL).
inline constexpr int kResumableExitCode = 75;

/// Install SIGINT/SIGTERM handlers that request cooperative cancellation.
/// Idempotent; safe to call from tests and the CLI alike.
void install_signal_handlers();

/// True once a shutdown has been requested (by signal or programmatically).
[[nodiscard]] bool shutdown_requested();

/// Which signal triggered the request (0 when requested programmatically or
/// not at all).
[[nodiscard]] int shutdown_signal();

/// Programmatic request (tests, embedding applications).
void request_shutdown();

/// Clear the flag (tests; also a CLI that finished one governed run and
/// wants to start another).
void reset_shutdown();

/// Raise CancelledError if shutdown has been requested.  `where` names the
/// iteration boundary for the diagnostic.
inline void throw_if_shutdown_requested(const std::string& where) {
  if (shutdown_requested()) {
    const int sig = shutdown_signal();
    throw CancelledError(
        "cancelled at " + where +
        (sig != 0 ? " by signal " + std::to_string(sig) : " by request") +
        "; state is checkpointed — rerun with --resume to continue");
  }
}

}  // namespace elmo::resource
