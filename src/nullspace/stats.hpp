// Counters collected by the Nullspace Algorithm.
//
// `pairs_probed` is the paper's "# candidate modes": every positive/negative
// column pair examined in GenerateEFMCands counts, including pairs rejected
// by the cheap support-cardinality pre-test.  (Tables II-IV report this
// number, and §IV.A observes computation time is proportional to it.)
#pragma once

#include <cstdint>
#include <vector>

#include "obs/obs.hpp"
#include "support/timer.hpp"

namespace elmo {

struct IterationStats {
  std::size_t row = 0;                 // reduced row index processed
  std::uint64_t positives = 0;         // columns with positive entry
  std::uint64_t negatives = 0;         // columns with negative entry
  std::uint64_t pairs_probed = 0;      // = positives * negatives
  /// Subset of pairs_probed dismissed in bulk by the popcount bound
  /// (max(|u|,|v|) > rank+2 implies the union bound fails) without an
  /// OR+popcount probe.  Pruned pairs still count as probed — the paper's
  /// "# candidate modes" and the pair-conservation audit both charge them.
  std::uint64_t pairs_pruned = 0;
  std::uint64_t pretest_survivors = 0; // pairs past the cardinality test
  std::uint64_t duplicates_removed = 0;
  std::uint64_t rank_tests = 0;
  std::uint64_t accepted = 0;
  std::uint64_t columns_after = 0;     // matrix width entering next iter
  /// Candidate bytes written out-of-core this iteration (0 when the
  /// iteration ran fully in memory).
  std::uint64_t spilled_bytes = 0;
  /// Sparse rank-test engine counters (nullspace/sparse_rank.hpp), drained
  /// from the tester once per iteration.  All zero under the dense-modular
  /// and exact backends.
  std::uint64_t rank_sparse_hits = 0;       // tests served by sparse paths
  std::uint64_t rank_warmstart_reuses = 0;  // tests reusing the warm cache
  std::uint64_t rank_dense_fallbacks = 0;   // tests delegated to dense
  std::uint64_t rank_gathered_nnz = 0;      // entries gathered in total
};

struct SolveStats {
  std::uint64_t total_pairs_probed = 0;
  std::uint64_t total_pairs_pruned = 0;
  std::uint64_t total_pretest_survivors = 0;
  std::uint64_t total_rank_tests = 0;
  std::uint64_t total_accepted = 0;
  std::uint64_t total_duplicates_removed = 0;
  /// Candidate bytes that went out-of-core under memory pressure (sum over
  /// iterations; the governed-run ledger for report.json).
  std::uint64_t total_spilled_bytes = 0;
  std::uint64_t total_rank_sparse_hits = 0;
  std::uint64_t total_rank_warmstart_reuses = 0;
  std::uint64_t total_rank_dense_fallbacks = 0;
  std::uint64_t total_rank_gathered_nnz = 0;
  std::uint64_t peak_columns = 0;
  std::size_t iterations = 0;
  /// Largest per-column storage snapshot observed (bytes), for the memory
  /// scalability analysis of §IV.B.
  std::size_t peak_matrix_bytes = 0;
  /// True if the CheckedI64 kernel overflowed and the solve was redone with
  /// BigInt.
  bool bigint_fallback = false;
  /// Phase timings: "gen cand", "rank test", "communicate", "merge" — the
  /// rows of Tables II and III.
  PhaseTimer phases;
  /// When true, absorb() also appends each IterationStats to `history`, so
  /// the run report can plot the column-growth curve.  Off by default: a
  /// large solve has one entry per constrained row and most callers only
  /// need the totals.
  bool keep_history = false;
  std::vector<IterationStats> history;

  void absorb(const IterationStats& it) {
    total_pairs_probed += it.pairs_probed;
    total_pairs_pruned += it.pairs_pruned;
    total_pretest_survivors += it.pretest_survivors;
    total_rank_tests += it.rank_tests;
    total_accepted += it.accepted;
    total_duplicates_removed += it.duplicates_removed;
    total_spilled_bytes += it.spilled_bytes;
    total_rank_sparse_hits += it.rank_sparse_hits;
    total_rank_warmstart_reuses += it.rank_warmstart_reuses;
    total_rank_dense_fallbacks += it.rank_dense_fallbacks;
    total_rank_gathered_nnz += it.rank_gathered_nnz;
    peak_columns = std::max<std::uint64_t>(peak_columns, it.columns_after);
    ++iterations;
    if (keep_history) history.push_back(it);
  }

  /// Combine subproblem stats (divide-and-conquer aggregation).  Iteration
  /// histories concatenate (they used to be silently dropped, losing the
  /// growth curve of every subproblem after the first).
  void merge(const SolveStats& other) {
    total_pairs_probed += other.total_pairs_probed;
    total_pairs_pruned += other.total_pairs_pruned;
    total_pretest_survivors += other.total_pretest_survivors;
    total_rank_tests += other.total_rank_tests;
    total_accepted += other.total_accepted;
    total_duplicates_removed += other.total_duplicates_removed;
    total_spilled_bytes += other.total_spilled_bytes;
    total_rank_sparse_hits += other.total_rank_sparse_hits;
    total_rank_warmstart_reuses += other.total_rank_warmstart_reuses;
    total_rank_dense_fallbacks += other.total_rank_dense_fallbacks;
    total_rank_gathered_nnz += other.total_rank_gathered_nnz;
    peak_columns = std::max(peak_columns, other.peak_columns);
    peak_matrix_bytes = std::max(peak_matrix_bytes, other.peak_matrix_bytes);
    iterations += other.iterations;
    bigint_fallback = bigint_fallback || other.bigint_fallback;
    phases.merge(other.phases);
    keep_history = keep_history || other.keep_history;
    history.insert(history.end(), other.history.begin(),
                   other.history.end());
  }
};

/// Publish one finished iteration to the global metrics registry.  Handles
/// are interned once (function-local statics); every call thereafter is a
/// handful of relaxed atomic ops, and a single relaxed load each when the
/// registry is disabled.
inline void publish_iteration_metrics(const IterationStats& it) {
  if constexpr (!obs::kObsCompiledIn) return;
  auto& registry = obs::Registry::global();
  static const obs::Counter iterations = registry.counter("solver.iterations");
  static const obs::Counter pairs = registry.counter("solver.pairs_probed");
  static const obs::Counter pruned = registry.counter("solver.pairs_pruned");
  static const obs::Counter survivors =
      registry.counter("solver.pretest_survivors");
  static const obs::Counter rank_tests = registry.counter("solver.rank_tests");
  static const obs::Counter accepted = registry.counter("solver.accepted");
  static const obs::Counter duplicates =
      registry.counter("solver.duplicates_removed");
  static const obs::Counter rank_sparse =
      registry.counter("solver.rank_sparse_hits");
  static const obs::Counter rank_warm =
      registry.counter("solver.rank_warmstart_reuses");
  static const obs::Counter rank_fallback =
      registry.counter("solver.rank_dense_fallbacks");
  static const obs::Histogram iteration_pairs =
      registry.histogram("solver.iteration_pairs");
  static const obs::Gauge columns = registry.gauge("solver.columns");
  iterations.add(1);
  pairs.add(it.pairs_probed);
  pruned.add(it.pairs_pruned);
  survivors.add(it.pretest_survivors);
  rank_tests.add(it.rank_tests);
  accepted.add(it.accepted);
  duplicates.add(it.duplicates_removed);
  rank_sparse.add(it.rank_sparse_hits);
  rank_warm.add(it.rank_warmstart_reuses);
  rank_fallback.add(it.rank_dense_fallbacks);
  iteration_pairs.observe(it.pairs_probed);
  columns.set(it.columns_after);
}

}  // namespace elmo
