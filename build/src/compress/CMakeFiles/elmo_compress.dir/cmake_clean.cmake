file(REMOVE_RECURSE
  "CMakeFiles/elmo_compress.dir/compression.cpp.o"
  "CMakeFiles/elmo_compress.dir/compression.cpp.o.d"
  "libelmo_compress.a"
  "libelmo_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elmo_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
