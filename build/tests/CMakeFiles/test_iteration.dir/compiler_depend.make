# Empty compiler generated dependencies file for test_iteration.
# This may be replaced when dependencies are built.
