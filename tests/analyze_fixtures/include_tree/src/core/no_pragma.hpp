// Seeds include:pragma-once — the guard line is missing on purpose.

struct NoPragma {
  int x = 0;
};
