// Candidate-count estimation for divide-and-conquer planning.
//
// The paper (§IV.C) leaves open how to pick the partition subset: "An
// automated method to select the subset and estimate the approximate number
// of elementary modes for a given reaction partition would be helpful to
// make the combined parallel Nullspace Algorithm a fully automated
// procedure."  This module implements that future-work item with a
// prefix-run estimator: the Nullspace Algorithm runs normally until a pair
// budget is exhausted, then the remaining iterations are extrapolated
// geometrically from the observed growth of the per-iteration pair counts.
// (A thinning/sampling estimator was tried first and rejected: truncating
// the column set changes the quadratic growth trajectory and produced
// anti-correlated rankings.)
//
// Estimates are meant for RANKING candidate partitions; the ablation bench
// bench_ablation_qsub measures how well the ranking matches reality.
#pragma once

#include <algorithm>
#include <cmath>

#include "core/combined.hpp"
#include "nullspace/flux_column.hpp"
#include "nullspace/initial_basis.hpp"
#include "nullspace/problem.hpp"
#include "nullspace/rank_test.hpp"
#include "nullspace/stats.hpp"
#include "support/timer.hpp"

namespace elmo {

struct EstimateOptions {
  /// Stop the exact prefix once this many pairs have been probed.
  std::uint64_t pair_budget = 2'000'000;
  /// Safety cap on the prefix's column count.
  std::size_t max_columns = 20'000;
  /// Growth-ratio clamp for the geometric tail.
  double max_growth = 6.0;
};

struct SubsetEstimate {
  /// Projected total positive x negative pairs (the paper's "candidate
  /// modes" count, the time proxy).
  double estimated_pairs = 0.0;
  /// Projected number of EFM columns surviving Proposition 1.
  double estimated_efms = 0.0;
  /// True if the prefix covered the whole run (the estimate is exact).
  bool exact = true;
};

/// Estimate the cost of one divide-and-conquer subset.
template <typename Scalar, typename Support>
SubsetEstimate estimate_subset(const EfmProblem<Scalar>& problem,
                               const SubsetSpec& spec,
                               const EstimateOptions& options = {}) {
  auto sub = detail::make_subproblem<Scalar>(problem, spec);
  auto prepared = prepare_problem(sub.problem);
  std::vector<std::size_t> exclude = sub.nzf_sub_rows;
  for (std::size_t k = 0; k < prepared.backward_of.size(); ++k) {
    for (std::size_t row : sub.nzf_sub_rows) {
      if (prepared.backward_of[k] == row)
        exclude.push_back(prepared.original_reactions + k);
    }
  }
  auto basis = compute_initial_basis<Scalar, Support>(prepared.problem,
                                                      OrderingOptions{},
                                                      exclude);
  auto columns = basis.columns;
  RankTester<Scalar> tester(prepared.problem.stoichiometry);
  auto is_elementary = [&](const Support& support) {
    return tester.is_elementary(support);
  };

  SubsetEstimate estimate;
  PhaseTimer phases;
  std::uint64_t pairs_so_far = 0;
  // Per-iteration pair counts and column counts of the exact prefix.
  std::vector<double> pair_history;
  std::vector<double> column_history;
  std::size_t iterations_done = 0;
  const std::size_t total_iterations = basis.processing_order.size();

  for (std::size_t row : basis.processing_order) {
    if (pairs_so_far > options.pair_budget ||
        columns.size() > options.max_columns) {
      estimate.exact = false;
      break;
    }
    IterationStats iteration;
    auto cls = classify_row(columns, row);
    std::vector<FluxColumn<Scalar, Support>> accepted;
    process_pair_range(columns, row, cls, basis.stoichiometry_rank, 0,
                       cls.pair_count(), std::size_t{1} << 20, is_elementary,
                       iteration, phases, accepted);
    pairs_so_far += iteration.pairs_probed;
    pair_history.push_back(static_cast<double>(iteration.pairs_probed));
    columns = merge_next(std::move(columns), cls,
                         prepared.problem.reversible[row],
                         std::move(accepted));
    column_history.push_back(static_cast<double>(columns.size()));
    ++iterations_done;
  }

  estimate.estimated_pairs = static_cast<double>(pairs_so_far);
  double projected_columns = static_cast<double>(columns.size());

  if (!estimate.exact) {
    // Geometric tail: growth ratio of the pair counts over the last few
    // prefix iterations (iterations with zero pairs are skipped).
    double ratio = 2.0;
    {
      std::vector<double> nonzero;
      for (double pairs : pair_history)
        if (pairs > 0) nonzero.push_back(pairs);
      if (nonzero.size() >= 3) {
        double acc = 0;
        int terms = 0;
        for (std::size_t k = nonzero.size() - 1;
             k > 0 && terms < 3; --k, ++terms)
          acc += nonzero[k] / nonzero[k - 1];
        ratio = acc / std::max(terms, 1);
      }
      ratio = std::clamp(ratio, 1.0, options.max_growth);
    }
    double last_pairs =
        pair_history.empty() ? 0.0 : pair_history.back();
    double column_ratio = 1.3;
    if (column_history.size() >= 2 && column_history[column_history.size() - 2] > 0) {
      column_ratio = column_history.back() /
                     column_history[column_history.size() - 2];
      column_ratio = std::clamp(column_ratio, 1.0, options.max_growth);
    }
    // The growth ratio decays toward 1 as the run progresses (real
    // per-iteration pair counts peak and then shrink as irreversible rows
    // cull columns); damping keeps long tails from exploding.
    constexpr double kDamping = 0.7;
    double term = last_pairs;
    double step = ratio;
    double column_step = column_ratio;
    for (std::size_t k = iterations_done; k < total_iterations; ++k) {
      term *= step;
      estimate.estimated_pairs += term;
      projected_columns *= column_step;
      step = 1.0 + (step - 1.0) * kDamping;
      column_step = 1.0 + (column_step - 1.0) * kDamping;
    }
  }

  // EFM projection: the fraction of final columns passing Proposition 1 is
  // approximated by the fraction in the CURRENT matrix with nonzero values
  // in all nzf rows.
  double fraction = 1.0;
  if (!sub.nzf_sub_rows.empty() && !columns.empty()) {
    std::size_t passing = 0;
    for (const auto& column : columns) {
      bool ok = true;
      for (std::size_t nzf : sub.nzf_sub_rows)
        ok = ok && column.support.test(nzf);
      if (ok) ++passing;
    }
    fraction = static_cast<double>(passing) /
               static_cast<double>(columns.size());
  }
  estimate.estimated_efms = projected_columns * fraction;
  return estimate;
}

/// Score a candidate partition (set of reactions) by its estimated total
/// pair count across all 2^qsub subsets; lower is better.
template <typename Scalar, typename Support>
double estimate_partition_cost(const EfmProblem<Scalar>& problem,
                               const std::vector<std::size_t>& rows,
                               const EstimateOptions& options = {}) {
  double total = 0.0;
  const std::size_t qsub = rows.size();
  for (std::uint64_t id = 0; id < (1ULL << qsub); ++id) {
    SubsetSpec spec;
    for (std::size_t k = 0; k < qsub; ++k)
      spec.pattern.emplace_back(rows[k], (id >> k) & 1);
    total += estimate_subset<Scalar, Support>(problem, spec, options)
                 .estimated_pairs;
  }
  return total;
}

}  // namespace elmo
