file(REMOVE_RECURSE
  "CMakeFiles/strain_design.dir/strain_design.cpp.o"
  "CMakeFiles/strain_design.dir/strain_design.cpp.o.d"
  "strain_design"
  "strain_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strain_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
