// elmo_analyze — shared source-file model.
//
// Every pass works from the same SourceFile: the raw text (where
// lint:allow(...) annotations live in comments), a "stripped" copy with
// comments, string literals and char literals blanked out (same length and
// line structure, so offsets and line numbers agree), and both split into
// lines.  Files are identified by the path they were reported under
// (relative to the analysis root) plus the module they belong to — the
// first directory component under src/.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace elmo_analyze {

struct SourceFile {
  std::string path;      // as reported in findings (root-relative)
  std::string abs_path;  // on-disk location
  std::string module;    // first dir under src/ ("" when not under src/)
  std::string tree;      // top-level tree: src/tools/bench/examples; ""
                         // for paths outside the walked trees (fixtures)
  bool is_header = false;
  std::string raw;
  std::string stripped;
  std::vector<std::string> raw_lines;
  std::vector<std::string> stripped_lines;

  /// Is a finding on 1-based `line` excused by a lint:allow(<rule>)
  /// annotation on the same or the directly preceding raw line?
  [[nodiscard]] bool allows(std::size_t line, const std::string& rule) const;
};

/// Blank comments, string literals and char literals (including raw
/// strings), preserving length and newlines.
std::string strip_noncode(const std::string& text);

std::vector<std::string> split_lines(const std::string& text);

bool is_ident_char(char c);

/// Find `word` as a whole identifier within `text`, at or after `from`.
std::size_t find_word(const std::string& text, const std::string& word,
                      std::size_t from = 0);

/// 1-based line number of a byte offset.
std::size_t line_of_offset(const std::string& text, std::size_t offset);

/// Load `abs_path` from disk; `report_path` is recorded as `path`.
/// Returns false (and leaves `out` unspecified) when the file cannot be
/// read.
bool load_source(const std::string& abs_path, const std::string& report_path,
                 SourceFile& out);

}  // namespace elmo_analyze
