// Unit and property tests for the arbitrary-precision integer.
#include "bigint/bigint.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "support/error.hpp"
#include "support/random.hpp"

namespace elmo {
namespace {

TEST(BigInt, DefaultIsZero) {
  BigInt z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_EQ(z.sign(), 0);
  EXPECT_EQ(z.to_string(), "0");
  EXPECT_EQ(z.to_i64(), 0);
}

TEST(BigInt, ConstructFromInt64Extremes) {
  BigInt max(INT64_MAX);
  BigInt min(INT64_MIN);
  EXPECT_EQ(max.to_string(), "9223372036854775807");
  EXPECT_EQ(min.to_string(), "-9223372036854775808");
  EXPECT_EQ(max.to_i64(), INT64_MAX);
  EXPECT_EQ(min.to_i64(), INT64_MIN);
  EXPECT_TRUE(max.fits_i64());
  EXPECT_TRUE(min.fits_i64());
  // One beyond either extreme no longer fits.
  EXPECT_FALSE((max + BigInt(1)).fits_i64());
  EXPECT_FALSE((min - BigInt(1)).fits_i64());
  EXPECT_THROW((void)(max + BigInt(1)).to_i64(), OverflowError);
}

TEST(BigInt, FromStringRoundTrip) {
  const char* cases[] = {"0",
                         "1",
                         "-1",
                         "42",
                         "-4294967296",
                         "18446744073709551616",
                         "-123456789012345678901234567890",
                         "999999999999999999999999999999999999"};
  for (const char* text : cases) {
    EXPECT_EQ(BigInt::from_string(text).to_string(), text) << text;
  }
}

TEST(BigInt, FromStringAcceptsPlusAndRejectsGarbage) {
  EXPECT_EQ(BigInt::from_string("+17").to_i64(), 17);
  EXPECT_THROW(BigInt::from_string(""), ParseError);
  EXPECT_THROW(BigInt::from_string("-"), ParseError);
  EXPECT_THROW(BigInt::from_string("12a"), ParseError);
  EXPECT_THROW(BigInt::from_string(" 1"), ParseError);
}

TEST(BigInt, NegativeZeroNormalises) {
  BigInt z = BigInt(5) - BigInt(5);
  EXPECT_TRUE(z.is_zero());
  EXPECT_EQ(z.sign(), 0);
  EXPECT_EQ((-z).sign(), 0);
  EXPECT_EQ(BigInt::from_string("-0").to_string(), "0");
}

TEST(BigInt, AdditionCarriesAcrossLimbs) {
  BigInt a = BigInt::from_string("4294967295");  // 2^32 - 1
  EXPECT_EQ((a + BigInt(1)).to_string(), "4294967296");
  BigInt b = BigInt::from_string("18446744073709551615");  // 2^64 - 1
  EXPECT_EQ((b + BigInt(1)).to_string(), "18446744073709551616");
}

TEST(BigInt, MixedSignAddition) {
  EXPECT_EQ((BigInt(10) + BigInt(-3)).to_i64(), 7);
  EXPECT_EQ((BigInt(-10) + BigInt(3)).to_i64(), -7);
  EXPECT_EQ((BigInt(-10) + BigInt(-3)).to_i64(), -13);
  EXPECT_EQ((BigInt(3) - BigInt(10)).to_i64(), -7);
}

TEST(BigInt, MultiplicationLarge) {
  BigInt a = BigInt::from_string("123456789012345678901234567890");
  BigInt b = BigInt::from_string("-987654321098765432109876543210");
  EXPECT_EQ(
      (a * b).to_string(),
      "-121932631137021795226185032733622923332237463801111263526900");
  EXPECT_EQ((a * BigInt(0)).to_string(), "0");
}

TEST(BigInt, DivisionTruncatesTowardZero) {
  EXPECT_EQ((BigInt(7) / BigInt(2)).to_i64(), 3);
  EXPECT_EQ((BigInt(-7) / BigInt(2)).to_i64(), -3);
  EXPECT_EQ((BigInt(7) / BigInt(-2)).to_i64(), -3);
  EXPECT_EQ((BigInt(-7) / BigInt(-2)).to_i64(), 3);
  EXPECT_EQ((BigInt(7) % BigInt(2)).to_i64(), 1);
  EXPECT_EQ((BigInt(-7) % BigInt(2)).to_i64(), -1);
  EXPECT_EQ((BigInt(7) % BigInt(-2)).to_i64(), 1);
  EXPECT_EQ((BigInt(-7) % BigInt(-2)).to_i64(), -1);
}

TEST(BigInt, DivisionByZeroThrows) {
  EXPECT_THROW(BigInt(1) / BigInt(0), InvalidArgumentError);
  EXPECT_THROW(BigInt(1) % BigInt(0), InvalidArgumentError);
}

TEST(BigInt, KnuthDAddBackCase) {
  // A dividend/divisor pair engineered to trigger the rare "add back"
  // correction step in Algorithm D.
  BigInt dividend = BigInt::from_string("340282366920938463463374607431768211455");
  BigInt divisor = BigInt::from_string("18446744073709551615");
  BigInt q = dividend / divisor;
  BigInt r = dividend % divisor;
  EXPECT_EQ((q * divisor + r), dividend);
  EXPECT_LT(r.abs(), divisor.abs());
}

TEST(BigInt, Comparison) {
  EXPECT_LT(BigInt(-2), BigInt(-1));
  EXPECT_LT(BigInt(-1), BigInt(0));
  EXPECT_LT(BigInt(0), BigInt(1));
  EXPECT_LT(BigInt::from_string("99999999999999999999"),
            BigInt::from_string("100000000000000000000"));
  EXPECT_GT(BigInt::from_string("-99999999999999999999"),
            BigInt::from_string("-100000000000000000000"));
  EXPECT_EQ(BigInt(5), BigInt(5));
}

TEST(BigInt, Gcd) {
  EXPECT_EQ(BigInt::gcd(BigInt(12), BigInt(18)).to_i64(), 6);
  EXPECT_EQ(BigInt::gcd(BigInt(-12), BigInt(18)).to_i64(), 6);
  EXPECT_EQ(BigInt::gcd(BigInt(0), BigInt(7)).to_i64(), 7);
  EXPECT_EQ(BigInt::gcd(BigInt(0), BigInt(0)).to_i64(), 0);
  BigInt a = BigInt::from_string("123456789012345678901234567890");
  EXPECT_EQ(BigInt::gcd(a * BigInt(35), a * BigInt(21)), a * BigInt(7));
}

TEST(BigInt, ExactDiv) {
  BigInt a = BigInt::from_string("123456789012345678901234567890");
  EXPECT_EQ((a * BigInt(12345)).exact_div(BigInt(12345)), a);
}

TEST(BigInt, BitLength) {
  EXPECT_EQ(BigInt(0).bit_length(), 0u);
  EXPECT_EQ(BigInt(1).bit_length(), 1u);
  EXPECT_EQ(BigInt(255).bit_length(), 8u);
  EXPECT_EQ(BigInt(256).bit_length(), 9u);
  EXPECT_EQ(BigInt::from_string("18446744073709551616").bit_length(), 65u);
}

TEST(BigInt, ToDouble) {
  EXPECT_DOUBLE_EQ(BigInt(12345).to_double(), 12345.0);
  EXPECT_DOUBLE_EQ(BigInt(-12345).to_double(), -12345.0);
  EXPECT_NEAR(BigInt::from_string("1000000000000000000000").to_double(),
              1e21, 1e6);
}

// Property test: ring axioms and divmod identity hold for random values of
// mixed magnitudes, checked against the int64 reference where possible.
TEST(BigIntProperty, RandomizedAgainstI64Reference) {
  Rng rng(42);
  for (int iter = 0; iter < 2000; ++iter) {
    std::int64_t x = static_cast<std::int32_t>(rng.next());
    std::int64_t y = static_cast<std::int32_t>(rng.next());
    BigInt bx(x);
    BigInt by(y);
    EXPECT_EQ((bx + by).to_i64(), x + y);
    EXPECT_EQ((bx - by).to_i64(), x - y);
    EXPECT_EQ((bx * by).to_i64(), x * y);
    if (y != 0) {
      EXPECT_EQ((bx / by).to_i64(), x / y);
      EXPECT_EQ((bx % by).to_i64(), x % y);
    }
  }
}

TEST(BigIntProperty, DivmodIdentityLargeRandom) {
  Rng rng(7);
  for (int iter = 0; iter < 500; ++iter) {
    // Random dividends up to ~256 bits, divisors up to ~128 bits.
    BigInt dividend(static_cast<std::int64_t>(rng.next() >> 1));
    for (int k = 0; k < 3; ++k)
      dividend = dividend * BigInt(static_cast<std::int64_t>(rng.next() >> 1)) +
                 BigInt(static_cast<std::int64_t>(rng.next() >> 1));
    BigInt divisor(static_cast<std::int64_t>(rng.next() >> 1) + 1);
    divisor = divisor * BigInt(static_cast<std::int64_t>(rng.next() >> 1) + 1);
    if (rng.chance(0.5)) dividend = -dividend;
    if (rng.chance(0.5)) divisor = -divisor;

    BigInt q;
    BigInt r;
    BigInt::divmod(dividend, divisor, q, r);
    EXPECT_EQ(q * divisor + r, dividend);
    EXPECT_LT(r.abs(), divisor.abs());
    // Remainder sign follows the dividend (C semantics).
    if (!r.is_zero()) {
      EXPECT_EQ(r.sign(), dividend.sign());
    }
  }
}

TEST(BigIntProperty, StringRoundTripRandom) {
  Rng rng(99);
  for (int iter = 0; iter < 200; ++iter) {
    BigInt v(static_cast<std::int64_t>(rng.next()));
    for (int k = 0; k < 4; ++k)
      v = v * BigInt(static_cast<std::int64_t>(rng.next() >> 3)) +
          BigInt(static_cast<std::int64_t>(rng.next() >> 3));
    EXPECT_EQ(BigInt::from_string(v.to_string()), v);
  }
}

}  // namespace
}  // namespace elmo
