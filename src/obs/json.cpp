#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace elmo::obs {

double JsonValue::as_double() const {
  switch (kind_) {
    case Kind::kInt:
      return static_cast<double>(int_);
    case Kind::kUint:
      return static_cast<double>(uint_);
    case Kind::kDouble:
      return double_;
    default:
      return 0.0;
  }
}

std::uint64_t JsonValue::as_uint() const {
  switch (kind_) {
    case Kind::kInt:
      return int_ < 0 ? 0 : static_cast<std::uint64_t>(int_);
    case Kind::kUint:
      return uint_;
    case Kind::kDouble:
      return double_ < 0 ? 0 : static_cast<std::uint64_t>(double_);
    default:
      return 0;
  }
}

std::int64_t JsonValue::as_int() const {
  switch (kind_) {
    case Kind::kInt:
      return int_;
    case Kind::kUint:
      return static_cast<std::int64_t>(uint_);
    case Kind::kDouble:
      return static_cast<std::int64_t>(double_);
    default:
      return 0;
  }
}

JsonValue& JsonValue::set(const std::string& key, JsonValue v) {
  for (auto& [k, existing] : object_) {
    if (k == key) {
      existing = std::move(v);
      return existing;
    }
  }
  object_.emplace_back(key, std::move(v));
  return object_.back().second;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (unsigned char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out += buffer;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  return out;
}

namespace {

void append_double(std::string& out, double value) {
  if (!std::isfinite(value)) {
    out += "0";  // JSON has no NaN/Inf; clamp rather than corrupt the file
    return;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  out += buffer;
  // Keep a marker so the value parses back as a double, not an integer.
  if (!std::strpbrk(buffer, ".eE")) out += ".0";
}

}  // namespace

void JsonValue::dump_to(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  auto newline = [&](int level) {
    if (!pretty) return;
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent * level), ' ');
  };
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kInt:
      out += std::to_string(int_);
      break;
    case Kind::kUint:
      out += std::to_string(uint_);
      break;
    case Kind::kDouble:
      append_double(out, double_);
      break;
    case Kind::kString:
      out.push_back('"');
      out += json_escape(string_);
      out.push_back('"');
      break;
    case Kind::kArray: {
      out.push_back('[');
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i) out.push_back(',');
        newline(depth + 1);
        array_[i].dump_to(out, indent, depth + 1);
      }
      if (!array_.empty()) newline(depth);
      out.push_back(']');
      break;
    }
    case Kind::kObject: {
      out.push_back('{');
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i) out.push_back(',');
        newline(depth + 1);
        out.push_back('"');
        out += json_escape(object_[i].first);
        out += pretty ? "\": " : "\":";
        object_[i].second.dump_to(out, indent, depth + 1);
      }
      if (!object_.empty()) newline(depth);
      out.push_back('}');
      break;
    }
  }
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

namespace {

struct Parser {
  const std::string& text;
  std::size_t pos = 0;
  std::string error;

  [[nodiscard]] bool failed() const { return !error.empty(); }

  void fail(const std::string& what) {
    if (error.empty())
      error = what + " at byte " + std::to_string(pos);
  }

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r'))
      ++pos;
  }

  [[nodiscard]] char peek() {
    return pos < text.size() ? text[pos] : '\0';
  }

  bool consume(char c) {
    if (peek() != c) return false;
    ++pos;
    return true;
  }

  bool expect(char c) {
    if (consume(c)) return true;
    fail(std::string("expected '") + c + "'");
    return false;
  }

  bool literal(const char* word) {
    const std::size_t n = std::strlen(word);
    if (text.compare(pos, n, word) != 0) {
      fail(std::string("expected '") + word + "'");
      return false;
    }
    pos += n;
    return true;
  }

  JsonValue parse_string() {
    if (!expect('"')) return {};
    std::string out;
    while (pos < text.size()) {
      char c = text[pos++];
      if (c == '"') return JsonValue(std::move(out));
      if (c == '\\') {
        if (pos >= text.size()) break;
        char esc = text[pos++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (pos + 4 > text.size()) {
              fail("truncated \\u escape");
              return {};
            }
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text[pos++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else {
                fail("bad \\u escape");
                return {};
              }
            }
            // UTF-8 encode the BMP code point (no surrogate pairing; the
            // writer only emits \u00xx control escapes).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            fail("bad escape character");
            return {};
        }
      } else {
        out.push_back(c);
      }
    }
    fail("unterminated string");
    return {};
  }

  JsonValue parse_number() {
    const std::size_t start = pos;
    if (peek() == '-') ++pos;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos;
    bool is_integer = true;
    if (peek() == '.') {
      is_integer = false;
      ++pos;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos;
    }
    if (peek() == 'e' || peek() == 'E') {
      is_integer = false;
      ++pos;
      if (peek() == '+' || peek() == '-') ++pos;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos;
    }
    const char* first = text.data() + start;
    const char* last = text.data() + pos;
    if (first == last || (*first == '-' && first + 1 == last)) {
      fail("malformed number");
      return {};
    }
    if (is_integer) {
      if (*first == '-') {
        std::int64_t value = 0;
        auto [ptr, ec] = std::from_chars(first, last, value);
        if (ec == std::errc() && ptr == last) return JsonValue(value);
      } else {
        std::uint64_t value = 0;
        auto [ptr, ec] = std::from_chars(first, last, value);
        if (ec == std::errc() && ptr == last) return JsonValue(value);
      }
      // Out of 64-bit range: fall through to double.
    }
    double value = std::strtod(first, nullptr);
    return JsonValue(value);
  }

  JsonValue parse_value(int depth) {
    if (depth > 200) {
      fail("nesting too deep");
      return {};
    }
    skip_ws();
    switch (peek()) {
      case '{': {
        ++pos;
        JsonValue obj = JsonValue::object();
        skip_ws();
        if (consume('}')) return obj;
        for (;;) {
          skip_ws();
          JsonValue key = parse_string();
          if (failed()) return {};
          skip_ws();
          if (!expect(':')) return {};
          JsonValue value = parse_value(depth + 1);
          if (failed()) return {};
          obj.set(key.as_string(), std::move(value));
          skip_ws();
          if (consume(',')) continue;
          if (consume('}')) return obj;
          fail("expected ',' or '}'");
          return {};
        }
      }
      case '[': {
        ++pos;
        JsonValue arr = JsonValue::array();
        skip_ws();
        if (consume(']')) return arr;
        for (;;) {
          JsonValue value = parse_value(depth + 1);
          if (failed()) return {};
          arr.push_back(std::move(value));
          skip_ws();
          if (consume(',')) continue;
          if (consume(']')) return arr;
          fail("expected ',' or ']'");
          return {};
        }
      }
      case '"':
        return parse_string();
      case 't':
        if (!literal("true")) return {};
        return JsonValue(true);
      case 'f':
        if (!literal("false")) return {};
        return JsonValue(false);
      case 'n':
        if (!literal("null")) return {};
        return JsonValue();
      default:
        if (peek() == '-' || std::isdigit(static_cast<unsigned char>(peek())))
          return parse_number();
        fail("unexpected character");
        return {};
    }
  }
};

}  // namespace

JsonValue parse_json(const std::string& text, std::string* error) {
  Parser parser{text, 0, {}};
  JsonValue value = parser.parse_value(0);
  if (!parser.failed()) {
    parser.skip_ws();
    if (parser.pos != text.size()) parser.fail("trailing content");
  }
  if (parser.failed()) {
    if (error != nullptr) *error = parser.error;
    return {};
  }
  if (error != nullptr) error->clear();
  return value;
}

}  // namespace elmo::obs
