# Empty dependencies file for test_api.
# This may be replaced when dependencies are built.
