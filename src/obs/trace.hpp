// Structured tracing: Chrome/Perfetto trace_event recording.
//
// A TraceRecorder collects timestamped events — complete spans ("X"),
// instants ("i") and counter samples ("C") — across all threads of a solve
// and serialises them as the Trace Event JSON format that chrome://tracing
// and https://ui.perfetto.dev open directly.  Simulated mpsim ranks and
// thread-pool workers appear as separate named tracks (tid = a process-wide
// thread ordinal, named via metadata events), so a divide-and-conquer run
// renders as per-rank swimlanes of gen-cand / rank-test / communicate /
// merge spans.
//
// Cost model: tracing is OFF by default (the global recorder pointer is
// null) and every instrumentation site reduces to one relaxed atomic load
// plus a predictable branch.  Spans are recorded at iteration/phase/
// collective granularity — never per candidate pair — so an enabled
// recorder adds one short critical section per ~milliseconds of work.
// Defining ELMO_OBS_DISABLE compiles every site down to nothing.
//
// This header is intentionally dependency-free (standard library only): it
// is included by support/timer.hpp and therefore by nearly every TU.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace elmo::obs {

#ifdef ELMO_OBS_DISABLE
inline constexpr bool kObsCompiledIn = false;
#else
inline constexpr bool kObsCompiledIn = true;
#endif

class TraceRecorder;

namespace detail {
/// Global recorder slot.  Plain pointer + relaxed atomics: installation
/// happens-before any solve the caller launches (they install, then spawn
/// work); instrumentation sites only load.
std::atomic<TraceRecorder*>& trace_slot();
/// Process-wide thread ordinal, assigned on a thread's first trace use.
std::uint32_t current_tid();
}  // namespace detail

/// The installed recorder, or nullptr when tracing is off (the fast path).
inline TraceRecorder* trace() {
  if constexpr (!kObsCompiledIn) return nullptr;
  return detail::trace_slot().load(std::memory_order_acquire);
}

/// Install `recorder` as the process-global recorder (nullptr disables
/// tracing).  Not owning; the caller keeps the recorder alive until after
/// uninstalling it and joining any instrumented threads.
void install_trace(TraceRecorder* recorder);

/// One recorded event.  `name` is copied (phase labels are short; SSO makes
/// this cheap); `category` must be a string literal.
struct TraceEvent {
  std::string name;
  const char* category = "";
  char phase = 'X';        // 'X' complete, 'i' instant, 'C' counter,
                           // 's'/'f' flow start / flow finish
  std::uint32_t tid = 0;
  double ts_us = 0.0;      // microseconds since recorder construction
  double dur_us = 0.0;     // complete events only
  std::uint64_t value = 0;        // counter events
  std::uint64_t id = 0;           // flow events: the flow binding id
  std::string detail;             // optional args.detail payload
};

class TraceRecorder {
 public:
  TraceRecorder() : epoch_(std::chrono::steady_clock::now()) {}

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Microseconds elapsed since this recorder was constructed.
  [[nodiscard]] double now_us() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  void record_complete(std::string name, const char* category, double ts_us,
                       double dur_us, std::string detail = {});
  void record_instant(std::string name, const char* category,
                      std::string detail = {});
  /// Counter track: Perfetto plots successive samples of `name` as a graph
  /// (used for the column-growth curve).
  void record_counter(std::string name, std::uint64_t value);

  /// Flow event: phase 's' opens a flow, 'f' closes it.  Perfetto draws an
  /// arrow between the enclosing slices of the matching 's'/'f' pair, so a
  /// flow id recorded inside a send span and again inside the receiving
  /// rank's recv span renders the message as a cross-track arrow.  `id`
  /// must be unique per flow (mpsim uses a global message sequence).
  void record_flow(std::string name, const char* category, char phase,
                   std::uint64_t id, std::string detail = {});

  /// Name the calling thread's track ("rank 3", "pool worker 0", ...).
  void set_thread_name(std::string name);

  [[nodiscard]] std::size_t event_count() const;

  /// Copies of the recorded streams for post-processing (critical-path
  /// analysis runs over these after the solve finishes).
  [[nodiscard]] std::vector<TraceEvent> snapshot_events() const;
  [[nodiscard]] std::map<std::uint32_t, std::string> thread_names() const;

  /// Serialise as a Trace Event JSON document ({"traceEvents": [...]}).
  [[nodiscard]] std::string to_json() const;

  /// Write to_json() to `path`; throws std::runtime_error on I/O failure.
  void write(const std::string& path) const;

 private:
  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::map<std::uint32_t, std::string> thread_names_;
};

/// Name the current thread's track on the installed recorder (no-op when
/// tracing is off).
void set_current_thread_name(const std::string& name);

/// Record an instant event on the installed recorder (no-op when off).
void trace_instant(const char* name, const char* category,
                   std::string detail = {});

/// Record a counter sample on the installed recorder (no-op when off).
void trace_counter(const char* name, std::uint64_t value);

/// RAII span: records one complete event covering the object's lifetime.
/// When tracing is off, construction is a single relaxed load.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* category = "solve")
      : recorder_(trace()), name_(name), category_(category) {
    if (recorder_ != nullptr) start_us_ = recorder_->now_us();
  }

  /// Span with a free-form detail argument (e.g. a subset label).  The
  /// detail string is only constructed by callers when tracing is on;
  /// use `obs::trace() != nullptr` to gate expensive formatting.
  TraceSpan(const char* name, const char* category, std::string detail)
      : recorder_(trace()), name_(name), category_(category),
        detail_(std::move(detail)) {
    if (recorder_ != nullptr) start_us_ = recorder_->now_us();
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() {
    if (recorder_ != nullptr) {
      recorder_->record_complete(name_, category_, start_us_,
                                 recorder_->now_us() - start_us_,
                                 std::move(detail_));
    }
  }

 private:
  TraceRecorder* recorder_;
  const char* name_;
  const char* category_;
  std::string detail_;
  double start_us_ = 0.0;
};

}  // namespace elmo::obs
