# Empty dependencies file for test_parallel_solver.
# This may be replaced when dependencies are built.
