#include "resource/spill.hpp"

#include <unistd.h>

#include <array>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "resource/governor.hpp"
#include "support/error.hpp"

namespace elmo::resource {
namespace {

constexpr char kMagic[8] = {'E', 'L', 'M', 'O', 'S', 'P', 'L', '1'};

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

void put_u64(std::fstream& out, std::uint64_t v) {
  std::uint8_t buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<std::uint8_t>(v >> (8 * i));
  // lint:allow(reinterpret-cast) byte-buffer file I/O
  out.write(reinterpret_cast<const char*>(buf), 8);
}

void put_u32(std::fstream& out, std::uint32_t v) {
  std::uint8_t buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<std::uint8_t>(v >> (8 * i));
  // lint:allow(reinterpret-cast) byte-buffer file I/O
  out.write(reinterpret_cast<const char*>(buf), 4);
}

std::uint64_t get_u64(const std::uint8_t* buf) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | buf[i];
  return v;
}

std::uint32_t get_u32(const std::uint8_t* buf) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | buf[i];
  return v;
}

}  // namespace

std::uint32_t crc32_bytes(const std::uint8_t* data, std::size_t size) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i)
    crc = table[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

SpillFile::SpillFile(std::string directory, MemoryGovernor* governor)
    : directory_(std::move(directory)), governor_(governor) {}

SpillFile::~SpillFile() {
  if (file_.is_open()) file_.close();
  if (!path_.empty()) {
    std::error_code ec;
    std::filesystem::remove(path_, ec);  // best effort
  }
}

void SpillFile::ensure_open() {
  if (file_.is_open()) return;
  namespace fs = std::filesystem;
  fs::path dir = directory_.empty() ? fs::temp_directory_path()
                                    : fs::path(directory_);
  std::error_code ec;
  fs::create_directories(dir, ec);
  static std::atomic<std::uint64_t> sequence{0};
  const std::uint64_t seq = sequence.fetch_add(1);
  fs::path p = dir / ("elmo-spill-" + std::to_string(::getpid()) + "-" +
                      std::to_string(seq) + ".bin");
  path_ = p.string();
  file_.open(path_, std::ios::binary | std::ios::in | std::ios::out |
                        std::ios::trunc);
  if (!file_)
    throw Error("spill: cannot create spill file at " + path_);
  file_.write(kMagic, sizeof(kMagic));
  file_.flush();
  write_offset_ = sizeof(kMagic);
}

void SpillFile::append_block(const std::vector<std::uint8_t>& body) {
  ensure_open();
  file_.clear();
  file_.seekp(static_cast<std::streamoff>(write_offset_));
  put_u64(file_, body.size());
  if (!body.empty())
    // lint:allow(reinterpret-cast) byte-buffer file I/O
    file_.write(reinterpret_cast<const char*>(body.data()),
                static_cast<std::streamsize>(body.size()));
  put_u32(file_, crc32_bytes(body.data(), body.size()));
  file_.flush();
  if (!file_) throw Error("spill: short write to " + path_);
  write_offset_ += 8 + body.size() + 4;
  ++block_count_;
  bytes_spilled_ += body.size();
  if (governor_ != nullptr) governor_->note_spill(body.size());
}

void SpillFile::for_each_block(
    const std::function<void(std::vector<std::uint8_t>&&)>& fn) {
  if (block_count_ == 0) return;
  file_.clear();
  file_.seekg(0);
  char magic[sizeof(kMagic)];
  file_.read(magic, sizeof(magic));
  if (!file_ || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
    throw ParseError("spill: bad magic in " + path_);
  for (std::size_t i = 0; i < block_count_; ++i) {
    std::uint8_t header[8];
    // lint:allow(reinterpret-cast) byte-buffer file I/O
    file_.read(reinterpret_cast<char*>(header), sizeof(header));
    if (!file_) throw ParseError("spill: truncated frame header in " + path_);
    const std::uint64_t size = get_u64(header);
    std::vector<std::uint8_t> body(size);
    if (size != 0) {
      // lint:allow(reinterpret-cast) byte-buffer file I/O
      file_.read(reinterpret_cast<char*>(body.data()),
                 static_cast<std::streamsize>(size));
    }
    std::uint8_t crc_buf[4];
    // lint:allow(reinterpret-cast) byte-buffer file I/O
    file_.read(reinterpret_cast<char*>(crc_buf), sizeof(crc_buf));
    if (!file_) throw ParseError("spill: truncated frame body in " + path_);
    const std::uint32_t expected = get_u32(crc_buf);
    const std::uint32_t actual = crc32_bytes(body.data(), body.size());
    if (expected != actual) {
      throw CorruptPayloadError(
          "spill: CRC mismatch in block " + std::to_string(i) + " of " +
              path_,
          expected, actual);
    }
    fn(std::move(body));
  }
}

}  // namespace elmo::resource
