// Assertion macros.
//
// ELMO_REQUIRE  - precondition check, always on, throws InvalidArgumentError.
// ELMO_CHECK    - internal invariant, always on, throws InternalError.
// ELMO_DCHECK   - debug-only invariant, compiled out in NDEBUG builds.
//
// Throwing (rather than aborting) keeps the library usable from long-running
// drivers: a failed subproblem can be reported and the remaining
// divide-and-conquer subsets still complete.
#pragma once

#include <sstream>
#include <string>

#include "support/error.hpp"

namespace elmo::detail {

[[noreturn]] inline void require_failed(const char* expr, const char* file,
                                        int line, const std::string& msg) {
  std::ostringstream os;
  os << "requirement failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << ": " << msg;
  throw InvalidArgumentError(os.str());
}

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "internal check failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << ": " << msg;
  throw InternalError(os.str());
}

}  // namespace elmo::detail

#define ELMO_REQUIRE(expr, msg)                                      \
  do {                                                               \
    if (!(expr))                                                     \
      ::elmo::detail::require_failed(#expr, __FILE__, __LINE__, msg); \
  } while (false)

#define ELMO_CHECK(expr, msg)                                      \
  do {                                                             \
    if (!(expr))                                                   \
      ::elmo::detail::check_failed(#expr, __FILE__, __LINE__, msg); \
  } while (false)

#ifdef NDEBUG
#define ELMO_DCHECK(expr, msg) \
  do {                         \
  } while (false)
#else
#define ELMO_DCHECK(expr, msg) ELMO_CHECK(expr, msg)
#endif
