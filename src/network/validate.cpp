#include "network/validate.hpp"

#include <map>

#include "network/network.hpp"

namespace elmo {

namespace {

/// For an internal metabolite, can any reaction produce (resp. consume) it?
/// Reversible reactions can do either.
struct MetaboliteUsage {
  bool producible = false;
  bool consumable = false;
  std::size_t touching_reactions = 0;
};

}  // namespace

ValidationReport validate(const Network& network) {
  ValidationReport report;

  std::map<MetaboliteId, MetaboliteUsage> usage;
  for (const auto& met_id : network.internal_metabolites())
    usage.emplace(met_id, MetaboliteUsage{});

  for (const auto& reaction : network.reactions()) {
    if (reaction.terms.empty()) {
      report.warnings.push_back("reaction " + reaction.name +
                                " has no net stoichiometry (all terms "
                                "cancelled)");
    }
    bool touches_internal = false;
    for (const auto& term : reaction.terms) {
      auto it = usage.find(term.metabolite);
      if (it == usage.end()) continue;  // external
      touches_internal = true;
      ++it->second.touching_reactions;
      if (reaction.reversible) {
        it->second.producible = true;
        it->second.consumable = true;
      } else if (term.coefficient > 0) {
        it->second.producible = true;
      } else {
        it->second.consumable = true;
      }
    }
    if (!touches_internal && !reaction.terms.empty()) {
      report.warnings.push_back(
          "reaction " + reaction.name +
          " touches only external metabolites (unconstrained flux)");
    }
  }

  for (const auto& [met_id, info] : usage) {
    const std::string& name = network.metabolite(met_id).name;
    if (info.touching_reactions == 0) {
      report.warnings.push_back("internal metabolite " + name +
                                " is not used by any reaction");
    } else if (!info.producible || !info.consumable) {
      report.warnings.push_back(
          "internal metabolite " + name +
          (info.producible ? " is never consumed" : " is never produced") +
          "; every reaction touching it is forced to zero flux");
    }
  }
  return report;
}

}  // namespace elmo
