#include "analyze/findings.hpp"

#include <cstdio>
#include <fstream>
#include <tuple>

namespace elmo_analyze {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// SARIF rule metadata: every pass:rule id ships a fullDescription (the
// one-line contract from DESIGN.md §12) and a stable helpUri under the
// reserved-by-construction host elmo-analyze.invalid, path /rules/<pass>,
// fragment <rule> — viewers get a deterministic deep link, and the rule
// table in DESIGN.md is the document the link names.  Unknown ids (new
// rules not yet documented) fall back to the short description.
struct RuleDoc {
  const char* id;
  const char* full;
};

const RuleDoc kRuleDocs[] = {
    {"include:layering",
     "a module includes only its own layer or below in the support -> "
     "linalg/network/io/parallel -> compress/models/nullspace/mpsim/core/"
     "analysis -> elmo DAG"},
    {"include:facade",
     "obs/check are reachable from any layer but only via their facade "
     "headers"},
    {"include:cycle", "no include cycles at file or module granularity"},
    {"include:pragma-once", "every header carries #pragma once"},
    {"include:unused-include",
     "a direct include whose transitive provides-closure contributes no "
     "identifier used in the file"},
    {"include:missing-include",
     "an identifier whose unique provider arrives only transitively"},
    {"include:self-contained",
     "a header uses an identifier no include path reaches"},
    {"lock:lock-cycle", "the static mutex acquisition graph has a cycle"},
    {"lock:lock-unexercised",
     "a statically-possible lock order a runtime lockdep dump never saw"},
    {"lock:lock-blocking",
     "a guard held across a blocking call (mpsim recv/barrier/collectives, "
     "join, sleeps)"},
    {"overflow:unchecked-arith",
     "raw * / + / << on int64_t expressions bypassing bigint/checked.hpp"},
    {"lint:naked-new", "bare new outside an owning smart pointer"},
    {"lint:no-rand", "rand()/srand() breaks deterministic runs"},
    {"lint:catch-all", "catch (...) swallows typed failure signals"},
    {"lint:reinterpret-cast", "reinterpret_cast bypasses the type system"},
    {"shared:shared-mutation",
     "shared state mutated inside a concurrent body without a guard, an "
     "atomic type, or an analyze:shared-ok annotation"},
    {"shared:shared-unseen",
     "a ThreadSanitizer report with no static finding or annotation within "
     "3 lines — a hole in the static model"},
    {"errpath:raii-pair",
     "manual acquires of a non-RAII idiom pair outnumber releases across "
     "one call level — an early return or throw leaks the resource"},
    {"errpath:unhandled-throw",
     "a typed error throw no reverse-call-graph path brings to a matching "
     "catch"},
    {"determinism:unordered-iter",
     "iteration over an unordered container in a solver-output module"},
    {"determinism:pointer-key",
     "a container keyed on a raw pointer — ASLR makes ordering differ "
     "between runs"},
    {"determinism:wall-clock",
     "wall-clock or thread-id reads in solver-output modules"},
    {"protocol:tag-mismatch",
     "a send whose constant tag no receive in the communication skeleton "
     "accepts"},
    {"protocol:orphan-recv",
     "a receive whose constant tag no send in the communication skeleton "
     "produces"},
    {"protocol:peer-mismatch",
     "a constant peer expression every tag-compatible counterpart pins to "
     "a different rank"},
    {"protocol:collective-divergence",
     "a barrier/all_gather/all_reduce reached only under a rank-dependent "
     "branch — ranks that skip it deadlock the collective"},
    {"protocol:recv-before-send",
     "an unguarded receive ordered before every matching send in the same "
     "function — a static send-before-recv cycle candidate"},
    {"protocol:flow-unseen",
     "a runtime message flow (from --flow-log) that no send site in the "
     "static skeleton explains"},
    {"typestate:spill-write-after-read",
     "SpillFile append_block after for_each_block started streaming — the "
     "protocol is open, write*, read*, close"},
    {"typestate:use-after-release",
     "MemoryLease set/charged on a path where release() already ran"},
    {"typestate:warm-test-before-begin",
     "SparseRankTester warm elementarity test with no begin_iteration "
     "staged for the current iteration on any path"},
    {"typestate:discarded-token",
     "Watchdog::arm result discarded — the temporary Token disarms "
     "immediately"},
    {"typestate:repair-before-resume",
     "load_checkpoint for a resume without repair_checkpoint first — a "
     "damaged tail silently truncates the resume set"},
    {"baseline:stale",
     "a baseline entry that no longer fires — prune it so it cannot mask a "
     "regression at the same key"},
};

const char* rule_full_description(const std::string& id) {
  for (const RuleDoc& doc : kRuleDocs) {
    if (id == doc.id) return doc.full;
  }
  return nullptr;
}

std::string rule_help_uri(const std::string& id) {
  const std::size_t colon = id.find(':');
  const std::string pass = colon == std::string::npos ? id : id.substr(0, colon);
  const std::string rule =
      colon == std::string::npos ? id : id.substr(colon + 1);
  return "https://elmo-analyze.invalid/rules/" + pass + "#" + rule;
}

}  // namespace

std::string Finding::key() const {
  return pass + ":" + rule + ":" + file + ":" + std::to_string(line);
}

bool finding_less(const Finding& a, const Finding& b) {
  return std::tie(a.file, a.line, a.pass, a.rule, a.message) <
         std::tie(b.file, b.line, b.pass, b.rule, b.message);
}

bool Baseline::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    // Trim trailing whitespace/CR.
    while (!line.empty() &&
           (line.back() == ' ' || line.back() == '\t' || line.back() == '\r')) {
      line.pop_back();
    }
    std::size_t start = line.find_first_not_of(" \t");
    if (start == std::string::npos) continue;
    if (line[start] == '#') continue;
    keys.insert(line.substr(start));
  }
  return true;
}

void apply_baseline(const Baseline& baseline, std::vector<Finding>& findings) {
  for (Finding& f : findings) {
    if (baseline.keys.count(f.key()) != 0) f.baselined = true;
  }
}

void write_text(const std::vector<Finding>& findings, const std::string& tool,
                bool lint_compat) {
  std::size_t active = 0;
  std::size_t baselined = 0;
  for (const Finding& f : findings) {
    if (f.baselined) {
      ++baselined;
      continue;
    }
    ++active;
    const std::string rule =
        lint_compat ? f.rule : (f.pass + ":" + f.rule);
    std::fprintf(stderr, "%s:%zu: [%s] %s\n", f.file.c_str(), f.line,
                 rule.c_str(), f.message.c_str());
  }
  if (active != 0 || baselined != 0) {
    if (baselined != 0) {
      std::fprintf(stderr, "%s: %zu finding(s), %zu baselined\n", tool.c_str(),
                   active, baselined);
    } else {
      std::fprintf(stderr, "%s: %zu finding(s)\n", tool.c_str(), active);
    }
  }
}

bool write_json(const std::string& path,
                const std::vector<Finding>& findings) {
  std::ofstream out(path);
  if (!out) return false;
  std::size_t active = 0;
  std::size_t baselined = 0;
  out << "{\n  \"findings\": [";
  bool first = true;
  for (const Finding& f : findings) {
    if (f.baselined) {
      ++baselined;
    } else {
      ++active;
    }
    out << (first ? "\n" : ",\n");
    first = false;
    out << "    {\"key\": \"" << json_escape(f.key()) << "\", \"pass\": \""
        << json_escape(f.pass) << "\", \"rule\": \"" << json_escape(f.rule)
        << "\", \"file\": \"" << json_escape(f.file) << "\", \"line\": "
        << f.line << ", \"baselined\": " << (f.baselined ? "true" : "false")
        << ", \"message\": \"" << json_escape(f.message) << "\"}";
  }
  out << (first ? "" : "\n  ") << "],\n";
  out << "  \"summary\": {\"total\": " << findings.size()
      << ", \"active\": " << active << ", \"baselined\": " << baselined
      << "}\n}\n";
  return static_cast<bool>(out);
}

void write_sarif(std::ostream& out, const std::vector<Finding>& findings) {
  // Rule table: unique pass:rule ids in first-appearance order.
  std::vector<std::string> rule_ids;
  std::set<std::string> seen_rules;
  for (const Finding& f : findings) {
    const std::string id = f.pass + ":" + f.rule;
    if (seen_rules.insert(id).second) rule_ids.push_back(id);
  }
  out << "{\n"
      << "  \"$schema\": "
         "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [\n"
      << "    {\n"
      << "      \"tool\": {\n"
      << "        \"driver\": {\n"
      << "          \"name\": \"elmo_analyze\",\n"
      << "          \"rules\": [";
  for (std::size_t i = 0; i < rule_ids.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n");
    const char* full = rule_full_description(rule_ids[i]);
    out << "            {\"id\": \"" << json_escape(rule_ids[i])
        << "\", \"shortDescription\": {\"text\": \""
        << json_escape(rule_ids[i]) << "\"}, \"fullDescription\": {\"text\": \""
        << json_escape(full != nullptr ? full : rule_ids[i].c_str())
        << "\"}, \"helpUri\": \"" << json_escape(rule_help_uri(rule_ids[i]))
        << "\"}";
  }
  out << (rule_ids.empty() ? "" : "\n          ") << "]\n"
      << "        }\n"
      << "      },\n"
      << "      \"results\": [";
  bool first = true;
  for (const Finding& f : findings) {
    out << (first ? "\n" : ",\n");
    first = false;
    const std::size_t line = f.line == 0 ? 1 : f.line;  // SARIF wants >= 1
    out << "        {\"ruleId\": \"" << json_escape(f.pass + ":" + f.rule)
        << "\", \"level\": \"" << (f.baselined ? "note" : "error")
        << "\", \"message\": {\"text\": \"" << json_escape(f.message)
        << "\"}, \"locations\": [{\"physicalLocation\": "
           "{\"artifactLocation\": {\"uri\": \""
        << json_escape(f.file) << "\"}, \"region\": {\"startLine\": " << line
        << "}}}]";
    if (f.baselined) {
      out << ", \"suppressions\": [{\"kind\": \"external\"}]";
    }
    out << "}";
  }
  out << (first ? "" : "\n      ") << "]\n"
      << "    }\n"
      << "  ]\n"
      << "}\n";
}

bool write_baseline(const std::string& path,
                    const std::vector<Finding>& findings) {
  std::ofstream out(path);
  if (!out) return false;
  out << "# elmo_analyze baseline — one tolerated finding key per line.\n"
      << "# Regenerate with: elmo_analyze --write-baseline=" << path << "\n"
      << "# Keep this near-empty: fix true positives, annotate intentional\n"
      << "# sites with lint:allow(<rule>) instead of baselining them.\n";
  for (const Finding& f : findings) out << f.key() << "\n";
  return static_cast<bool>(out);
}

std::size_t count_active(const std::vector<Finding>& findings) {
  std::size_t active = 0;
  for (const Finding& f : findings) {
    if (!f.baselined) ++active;
  }
  return active;
}

}  // namespace elmo_analyze
