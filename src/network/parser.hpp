// Plain-text reaction-list parser.
//
// The format mirrors how the paper lists its networks (Figs 3-5):
//
//   # comment (also '//')
//   external GLCext O2ext          # declare external metabolites
//   R4  : F6P + ATP => FDP + ADP   # irreversible reaction
//   R3r : G6P <=> F6P              # reversible reaction
//   R70 : 7437 G6P + 611 G3P => 1000 BIO
//   R63 : AC =>                    # pure export (empty right side)
//
// Metabolites are declared implicitly on first use.  A metabolite is
// external if (a) it was named in an `external` directive, or (b) its name
// ends with the configured suffix (default "ext", the paper's convention).
#pragma once

#include <string>
#include <string_view>

#include "network/network.hpp"

namespace elmo {

struct ParserOptions {
  /// Names ending in this suffix are external ("" disables the rule).
  std::string external_suffix = "ext";
};

/// Parse a whole reaction-list document.  Throws ParseError with a
/// line-numbered message on malformed input.
Network parse_network(std::string_view text, const ParserOptions& options = {});

/// Serialise a network back to the text format (round-trips through
/// parse_network up to formatting).
std::string write_network(const Network& network);

}  // namespace elmo
