# Empty compiler generated dependencies file for test_checked.
# This may be replaced when dependencies are built.
