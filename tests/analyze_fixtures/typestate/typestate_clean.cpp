// Clean counterpart for the typestate pass.  Every machine driven
// through its legal protocol — including the vector-of-testers shape the
// combinatorial driver uses (range-for alias staging, subscripted warm
// tests) — plus one deliberate lint:allow escape.  Must stay silent.
// Never compiled — only analyzed.
#include <vector>

namespace fixture_ts_clean {

struct SpillFile {
  explicit SpillFile(const char* directory);
  void append_block(int block);
  void for_each_block(int sink);
};

struct MemoryLease {
  void set(unsigned long bytes);
  unsigned long charged() const;
  void release();
};

struct SparseRankTester {
  void begin_iteration(int common_rows);
  bool is_elementary(int support) const;
};

struct Token {};
struct Watchdog {
  static Watchdog& global();
  Token arm(const char* what, int budget_ms);
};

int load_checkpoint(const char* path);
void repair_checkpoint(const char* path);

// Writes staged before the read-back starts.
inline void staged_spill(int block) {
  SpillFile spill("/tmp/elmo-fixture");
  spill.append_block(block);
  spill.append_block(block);
  spill.for_each_block(block);
}

// Charged while active on every path; released exactly once at the end.
inline void balanced_lease(unsigned long bytes) {
  MemoryLease lease;
  lease.set(bytes);
  if (lease.charged() > 0) lease.set(bytes + 1);
  lease.release();
}

// The iteration is staged before the warm test.
inline bool warm_test(int support) {
  SparseRankTester tester;
  tester.begin_iteration(7);
  return tester.is_elementary(support);
}

// The combinatorial driver's shape: a vector of testers staged through a
// range-for alias, then tested through a subscripted receiver.
inline bool lane_tests(int support, int common_rows) {
  std::vector<SparseRankTester> testers;
  for (auto& tester : testers) tester.begin_iteration(common_rows);
  return testers[0].is_elementary(support);
}

// The Token is bound, so the watchdog stays armed for the span.
inline void supervised() {
  auto token = Watchdog::global().arm("merge", 500);
  (void)token;
}

// A deliberate fire-and-forget probe arm, reviewed and escaped.
inline void probe_arm() {
  // lint:allow(discarded-token)
  Watchdog::global().arm("probe", 10);
}

// Repair trims the damaged tail before the resume set is read.
inline int resume_repaired(const char* path) {
  repair_checkpoint(path);
  return load_checkpoint(path);
}

}  // namespace fixture_ts_clean
