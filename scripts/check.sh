#!/usr/bin/env bash
# Full verification sweep:
#   1. plain build + entire ctest suite (tier-1 gate),
#   2. ASan/UBSan build + entire ctest suite,
#   3. TSan build + the threaded suites (the simulated MPI runtime, the
#      shared-memory pool, the fault-tolerance machinery, and the metrics
#      registry's concurrent writers),
#   4. observability smoke: solve a toy model with --trace/--report/
#      --metrics and validate every artifact with json_check,
#   5. overhead guard: bench_obs_overhead from a -DELMO_OBS_DISABLE=ON
#      build (true no-instrumentation baseline) vs the plain build's
#      dormant instrumentation; emits BENCH_observability.json and fails
#      above +2%.  Skip with ELMO_CHECK_SKIP_BENCH=1 (other stages stay),
#   6. static analysis: scripts/lint.sh (the elmo_analyze gate, the lint
#      rules over the non-src trees, header self-containedness,
#      clang-tidy/clang-format when available),
#   7. candidate-engine perf gate: scripts/bench.sh --compare against the
#      committed BENCH_candidates.json — fails when any scenario's
#      engine-vs-reference speedup drops >10% relative or the yeast-width
#      pretest speedup falls under 2x.  Skip with ELMO_CHECK_SKIP_BENCH=1,
#   8. analyzer artifact gate: the CMake-built elmo_analyze re-runs the
#      full pass set (through the communication-protocol and typestate
#      passes) over the tree against the committed baseline, and its
#      machine-readable JSON report is validated with json_check (the
#      same tool that guards the observability artifacts),
#   9. memory-capped spill smoke (scripts/mem_smoke.sh): solve ecoli
#      unconstrained to learn its ledger peak and un-spillable matrix
#      floor, then re-solve with --mem-limit barely above the floor (under
#      a ulimit -v backstop) and require a clean exit, at least one spill
#      block in report.json, no ledger-peak inflation over the
#      unconstrained run, and a bit-identical EFM set.
#
# Usage: scripts/check.sh [-jN]
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:--j$(nproc)}"

run() { echo "+ $*" >&2; "$@"; }

echo "== 1/9 plain build =="
run cmake -B build -S . >/dev/null
run cmake --build build "${JOBS}"
(cd build && run ctest --output-on-failure)

echo "== 2/9 address+undefined sanitizers =="
run cmake -B build-asan -S . -DELMO_SANITIZE=address,undefined >/dev/null
run cmake --build build-asan "${JOBS}"
(cd build-asan && run ctest --output-on-failure)

echo "== 3/9 thread sanitizer (threaded suites) =="
run cmake -B build-tsan -S . -DELMO_SANITIZE=thread >/dev/null
run cmake --build build-tsan "${JOBS}" --target \
    test_mpsim test_parallel test_fault_tolerance test_obs
(cd build-tsan && run ctest --output-on-failure \
    -R '^(test_mpsim|test_parallel|test_fault_tolerance|test_obs)$')

echo "== 4/9 observability smoke =="
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "${SMOKE_DIR}"' EXIT
run ./build/examples/elmo_cli --builtin toy --algorithm combined --ranks 2 \
    --partition r6r,r8r --audit \
    --trace "${SMOKE_DIR}/trace.json" \
    --metrics "${SMOKE_DIR}/metrics.json" \
    --report "${SMOKE_DIR}/report.json" \
    --heartbeat "${SMOKE_DIR}/heartbeat.jsonl" \
    -o "${SMOKE_DIR}/modes.csv"
run ./build/examples/json_check "${SMOKE_DIR}/trace.json" \
    --require traceEvents
run ./build/examples/json_check "${SMOKE_DIR}/metrics.json" \
    --require counters.solver.pairs_probed \
    --require histograms.solver.iteration_pairs
run ./build/examples/json_check "${SMOKE_DIR}/report.json" \
    --require totals.pairs_probed --require subsets --require num_efms
tail -n 1 "${SMOKE_DIR}/heartbeat.jsonl" > "${SMOKE_DIR}/heartbeat.last.json"
run ./build/examples/json_check "${SMOKE_DIR}/heartbeat.last.json" \
    --require done

echo "== 5/9 observability overhead guard =="
if [[ "${ELMO_CHECK_SKIP_BENCH:-0}" != "1" ]]; then
  run cmake -B build-obsoff -S . -DELMO_OBS_DISABLE=ON >/dev/null
  run cmake --build build-obsoff "${JOBS}" --target bench_obs_overhead
  run ./build-obsoff/bench/bench_obs_overhead --reps 3 \
      --json "${SMOKE_DIR}/BENCH_observability.baseline.json"
  run ./build/bench/bench_obs_overhead --reps 3 \
      --baseline "${SMOKE_DIR}/BENCH_observability.baseline.json" \
      --max-overhead-pct 2 --json BENCH_observability.json
else
  echo "   (skipped: ELMO_CHECK_SKIP_BENCH=1)"
fi

echo "== 6/9 static analysis =="
run scripts/lint.sh

echo "== 7/9 candidate-engine perf gate =="
if [[ "${ELMO_CHECK_SKIP_BENCH:-0}" != "1" ]]; then
  # Fresh record lands in the smoke dir; the committed baseline is only read.
  run env BENCH_OUT="${SMOKE_DIR}/BENCH_candidates.json" \
      scripts/bench.sh --compare BENCH_candidates.json
else
  echo "   (skipped: ELMO_CHECK_SKIP_BENCH=1)"
fi

echo "== 8/9 analyzer artifact gate =="
run cmake --build build "${JOBS}" --target elmo_analyze
run ./build/tools/elmo_analyze --root=. \
    --baseline=tools/analyze_baseline.txt \
    --json="${SMOKE_DIR}/analyze.json" \
    --dot="${SMOKE_DIR}/modules.dot"
run ./build/examples/json_check "${SMOKE_DIR}/analyze.json" \
    --require summary.total --require summary.active \
    --require summary.baselined

echo "== 9/9 memory-capped spill smoke =="
run scripts/mem_smoke.sh ./build/examples/elmo_cli

echo "all checks passed"
