// Tests for network compression and the exact reconstruction map.
#include "compress/compression.hpp"

#include <gtest/gtest.h>

#include "models/toy.hpp"
#include "models/yeast.hpp"
#include "network/parser.hpp"

namespace elmo {
namespace {

TEST(Compress, ToyMatchesPaperReduction) {
  // Paper Eq (2) -> Eq (4): metabolite D and reaction r9 disappear (r9 is
  // coupled to r3), leaving a 4 x 8 problem.
  auto problem = compress(models::toy_network());
  EXPECT_EQ(problem.num_metabolites(), 4u);
  EXPECT_EQ(problem.num_reactions(), 8u);
  EXPECT_EQ(problem.reaction_names,
            (std::vector<std::string>{"r1", "r2", "r3", "r4", "r5", "r6r",
                                      "r7", "r8r"}));
  EXPECT_EQ(problem.metabolite_names,
            (std::vector<std::string>{"A", "B", "C", "P"}));

  auto expected = Matrix<BigInt>::from_rows({
      {1, -1, 0, 0, -1, 0, 0, 0},
      {0, 0, 0, 0, 1, -1, -1, -1},
      {0, 1, -1, 0, 0, 1, 0, 0},
      {0, 0, 1, -1, 0, 0, 2, 0},
  });
  EXPECT_EQ(problem.stoichiometry, expected);
  EXPECT_EQ(problem.stats.merged_reactions, 1u);
}

TEST(Compress, ToyReconstructionReAddsR9) {
  auto problem = compress(models::toy_network());
  // A reduced flux using r3 must expand with r9 == r3 (the coupled pair).
  std::vector<BigInt> reduced(8, BigInt(0));
  reduced[2] = BigInt(3);  // r3
  auto original = problem.expand(reduced);
  ASSERT_EQ(original.size(), 9u);
  EXPECT_EQ(original[2], original[8]);  // r9 == r3
  EXPECT_EQ(original[2], BigInt(1));    // primitive scaling
}

TEST(Compress, ColumnForMapsMergedAndRemovedReactions) {
  auto problem = compress(models::toy_network());
  EXPECT_EQ(problem.column_for("r3"), std::size_t{2});
  // r9 was merged into r3's column.
  EXPECT_EQ(problem.column_for("r9"), std::size_t{2});
  EXPECT_EQ(problem.column_for("r8r"), std::size_t{7});
  EXPECT_THROW(problem.column_for("bogus"), InvalidArgumentError);
}

TEST(Compress, ForcedZeroDeadEnd) {
  // B is produced but never consumed: R2 (and then R1, A) must die.
  Network net = parse_network(R"(
    R1 : Aext => A
    R2 : A => B
  )");
  auto problem = compress(net);
  EXPECT_EQ(problem.num_reactions(), 0u);
  EXPECT_EQ(problem.stats.forced_zero_reactions, 2u);
  EXPECT_FALSE(problem.column_for("R1").has_value());
  // Expansion of the empty flux vector is all zeros.
  auto original = problem.expand({});
  for (const auto& v : original) EXPECT_TRUE(v.is_zero());
}

TEST(Compress, SingleReactionMetaboliteForcedZero) {
  // B touched by exactly one (reversible!) reaction: flux still forced to 0.
  Network net = parse_network(R"(
    R1 : Aext <=> A
    R2r : A <=> B
    R3 : A => Xout
    external Xout
  )");
  auto problem = compress(net);
  EXPECT_FALSE(problem.column_for("R2r").has_value());
}

TEST(Compress, CouplingConflictKillsBothReactions) {
  // M: R1 produces (irreversible), R2 produces (irreversible): same sign,
  // forced zero by the sign rule.
  Network net = parse_network(R"(
    R1 : Aext => M
    R2 : Bext => M
  )");
  auto problem = compress(net);
  EXPECT_EQ(problem.num_reactions(), 0u);
}

TEST(Compress, CouplingFlipsOrientationWhenNeeded) {
  // M produced by reversible R1, consumed by irreversible R2; coupling on M
  // keeps the merged reaction irreversible in the forward direction.
  Network net = parse_network(R"(
    R1r : Aext <=> M
    R2 : M => Bext
  )");
  auto problem = compress(net);
  ASSERT_EQ(problem.num_reactions(), 1u);
  EXPECT_FALSE(problem.reversible[0]);
  // Unit flux on the merged column expands to R1 = R2 = 1 (both forward).
  auto original = problem.expand({BigInt(1)});
  EXPECT_EQ(original[0], BigInt(1));
  EXPECT_EQ(original[1], BigInt(1));
}

TEST(Compress, CouplingWithCoefficients) {
  // 2 A per R1 unit; R2 consumes 3 A: v2 = (2/3) v1.
  Network net = parse_network(R"(
    R1 : Xext => 2 A
    R2 : 3 A => Yext
  )");
  auto problem = compress(net);
  ASSERT_EQ(problem.num_reactions(), 1u);
  auto original = problem.expand({BigInt(1)});
  // Primitive integer expansion of (1, 2/3) is (3, 2).
  EXPECT_EQ(original[0], BigInt(3));
  EXPECT_EQ(original[1], BigInt(2));
}

TEST(Compress, RedundantRowsDropped) {
  // Duplicate metabolite constraint: B row equals A row doubled.
  Network net = parse_network(R"(
    R1 : Xext => A + 2 B
    R2 : A + 2 B => Yext
    R3r : A + 2 B <=> C
    R4 : C => Zext
  )");
  auto with_rows = compress(net, {.remove_forced_zero = true,
                                  .couple_two_reaction_metabolites = false,
                                  .drop_redundant_rows = false});
  auto without_rows = compress(net, {.remove_forced_zero = true,
                                     .couple_two_reaction_metabolites = false,
                                     .drop_redundant_rows = true});
  EXPECT_GT(with_rows.num_metabolites(), without_rows.num_metabolites());
  EXPECT_EQ(without_rows.stats.redundant_rows,
            with_rows.num_metabolites() - without_rows.num_metabolites());
}

TEST(Compress, NoCompressionIsIdentity) {
  Network net = models::toy_network();
  auto problem = no_compression(net);
  EXPECT_EQ(problem.num_reactions(), 9u);
  EXPECT_EQ(problem.num_metabolites(), 5u);
  std::vector<BigInt> flux(9, BigInt(0));
  flux[0] = BigInt(5);
  auto original = problem.expand(flux);
  EXPECT_EQ(original[0], BigInt(1));  // primitive
  for (std::size_t i = 1; i < 9; ++i) EXPECT_TRUE(original[i].is_zero());
}

TEST(Compress, YeastNetwork1ReducesNearPaperSize) {
  // Paper: 62 x 78 reduces to 35 x 55.  Our operation set is the standard
  // one but not necessarily identical to the authors'; sizes should land in
  // the same neighbourhood and never below (a smaller reduction is sound,
  // a larger one would indicate a missing rule firing).
  // Our pass reaches 40 x 65: the remaining gap to the paper's size is
  // duplicate-column and opposite-irreversible-pair merging, which change
  // the EFM count (nonlinear expansion) and are intentionally not applied —
  // the EFM total is the quantity validated against the paper instead.
  Network net = models::yeast_network_1();
  EXPECT_EQ(net.num_internal_metabolites(), 62u);
  EXPECT_EQ(net.num_reactions(), 78u);
  auto problem = compress(net);
  EXPECT_LE(problem.num_reactions(), 66u);
  EXPECT_GE(problem.num_reactions(), 55u);
  EXPECT_LE(problem.num_metabolites(), 40u);
}

TEST(Compress, YeastNetwork2Dimensions) {
  Network net = models::yeast_network_2();
  EXPECT_EQ(net.num_internal_metabolites(), 63u);
  EXPECT_EQ(net.num_reactions(), 83u);
  auto problem = compress(net);
  EXPECT_LE(problem.num_reactions(), 72u);
  // The paper's divide-and-conquer partition reactions must survive
  // compression (they are chosen from the reduced network).
  for (const char* name : {"R54r", "R90r", "R60r", "R22r"}) {
    EXPECT_TRUE(problem.column_for(name).has_value()) << name;
  }
}

TEST(Compress, ReducedStoichiometryAnnihilatesExpandedFluxes) {
  // For any reduced kernel vector v, the ORIGINAL stoichiometry must
  // annihilate expand(v).  Check with the toy network's known kernel.
  Network net = models::toy_network();
  auto problem = compress(net);
  // v = unit flux through r1..r4 chain + r9 via reconstruction: use the
  // reduced vector for the mode r1,r2,r3,r4 (indices 0..3 in reduced).
  std::vector<BigInt> reduced(8, BigInt(0));
  reduced[0] = BigInt(1);
  reduced[1] = BigInt(1);
  reduced[2] = BigInt(1);
  reduced[3] = BigInt(1);
  auto original = problem.expand(reduced);
  auto n = net.stoichiometry<BigInt>();
  auto y = n.multiply(original);
  for (const auto& value : y) EXPECT_TRUE(value.is_zero());
}

}  // namespace
}  // namespace elmo
