#!/usr/bin/env bash
# TSan-vs-static cross-check: run the concurrency-heavy test subset under
# ThreadSanitizer, then feed the captured report to the static shared-state
# pass (`elmo_analyze --pass=shared --tsan-log=...`).  Every runtime race
# must land within a few lines of a static shared-mutation finding or an
# `analyze:shared-ok` / `lint:allow(shared-mutation)` annotation — a race
# the static model never saw becomes a `shared:shared-unseen` finding and
# fails the script.  Races themselves also fail (via ctest), so the script
# passes only on a tree that is BOTH race-free at runtime and fully
# modelled statically.
#
# Usage: scripts/tsan_cross.sh [-jN]        exit 0 = clean
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:--j$(nproc)}"
LOG="${TSAN_CROSS_LOG:-build-tsan/tsan_cross.log}"

run() { echo "+ $*" >&2; "$@"; }

echo "== 1/3 build TSan preset =="
# Fail loudly, not silently, when this environment cannot produce the
# TSan build: a cross-check that quietly skipped its runtime half would
# read as "no races" to CI.
if ! run cmake --preset tsan >/dev/null; then
  echo "tsan_cross: the 'tsan' CMake preset failed to configure —" \
       "ThreadSanitizer builds are unavailable in this environment;" \
       "the runtime half of the cross-check cannot run" >&2
  exit 2
fi
if ! run cmake --build --preset tsan "$JOBS" \
    --target test_mpsim test_parallel test_fault_tolerance; then
  echo "tsan_cross: the TSan preset build failed — cannot produce the" \
       "instrumented test binaries; fix the build before trusting the" \
       "static/runtime race cross-check" >&2
  exit 2
fi

echo "== 2/3 ctest (concurrency subset) under ThreadSanitizer =="
mkdir -p "$(dirname "$LOG")"
# -V so TSan reports (stderr of the test binaries) land in the log even
# when ctest considers the test passed; races still fail ctest via the
# sanitizer's nonzero exit code, but we finish the cross-check first.
ctest_status=0
TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=0}" \
    ctest --preset tsan -V >"$LOG" 2>&1 || ctest_status=$?
races=$(grep -c "WARNING: ThreadSanitizer:" "$LOG" || true)
echo "TSan reports in log: $races"

echo "== 3/3 static shared-state pass cross-checked against the log =="
mkdir -p build-lint
run g++ -std=c++17 -O1 -Wall -Wextra -I tools -o build-lint/elmo_analyze \
    tools/analyze/*.cpp
run ./build-lint/elmo_analyze --pass=shared --root=. \
    --baseline=tools/analyze_baseline.txt --tsan-log="$LOG"

if [ "$ctest_status" -ne 0 ]; then
  echo "tsan_cross: ctest failed under TSan (status $ctest_status)" >&2
  exit "$ctest_status"
fi
echo "tsan_cross OK"
