// Tests for cross-rank message-flow tracing and the critical-path /
// imbalance post-processing:
//   * every simulated-MPI send opens exactly one flow ('s') and its receive
//     closes it ('f'), including under fault injection (dropped messages
//     open no flow at all, so pairing stays exact),
//   * blocked waits are classified data-wait / barrier-wait /
//     straggler-wait on the per-rank counters,
//   * analyze_flow's critical path over a fixed synthetic span stream is
//     deterministic and attributes path time to the recorded phases.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "mpsim/communicator.hpp"
#include "mpsim/fault.hpp"
#include "obs/flow.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"

namespace elmo {
namespace {

using mpsim::Communicator;
using mpsim::FaultPlan;
using mpsim::Payload;
using mpsim::RunOptions;
using mpsim::run_ranks;

/// Count 's'/'f' events per flow id and instants named `drop`.
struct FlowTally {
  std::map<std::uint64_t, std::pair<int, int>> flows;  // id -> (#s, #f)
  int drops = 0;

  explicit FlowTally(const std::vector<obs::TraceEvent>& events) {
    for (const auto& event : events) {
      if (event.phase == 's') ++flows[event.id].first;
      if (event.phase == 'f') ++flows[event.id].second;
      if (event.phase == 'i' && event.name == "drop") ++drops;
    }
  }

  [[nodiscard]] int starts() const {
    int total = 0;
    for (const auto& [id, sf] : flows) total += sf.first;
    return total;
  }

  [[nodiscard]] bool all_matched() const {
    for (const auto& [id, sf] : flows) {
      if (sf.first > 0 && sf.second == 0) return false;
    }
    return true;
  }
};

TEST(FlowTrace, PointToPointPairsEverySend) {
  obs::TraceRecorder recorder;
  obs::install_trace(&recorder);
  run_ranks(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      for (std::uint8_t i = 0; i < 5; ++i) comm.send(1, /*tag=*/3, {i});
    } else {
      for (std::uint8_t i = 0; i < 5; ++i) comm.recv(0, 3);
    }
  });
  obs::install_trace(nullptr);

  const FlowTally tally(recorder.snapshot_events());
  EXPECT_EQ(tally.starts(), 5);
  EXPECT_TRUE(tally.all_matched());
  EXPECT_EQ(tally.drops, 0);
}

TEST(FlowTrace, DroppedMessageOpensNoFlow) {
  auto plan = std::make_shared<FaultPlan>();
  // Drop the 2nd message from rank 0 to rank 1, once (nth is 0-based).
  plan->drop_message(0, 1, /*nth=*/1, /*times=*/1);
  RunOptions options;
  options.fault_plan = plan;

  obs::TraceRecorder recorder;
  obs::install_trace(&recorder);
  run_ranks(
      2,
      [](Communicator& comm) {
        if (comm.rank() == 0) {
          for (std::uint8_t i = 0; i < 3; ++i) comm.send(1, 0, {i});
        } else {
          // The dropped 2nd message silently vanishes: per-source FIFO
          // ordering delivers payloads {0} then {2}.
          EXPECT_EQ(comm.recv(0, 0), Payload{0});
          EXPECT_EQ(comm.recv(0, 0), Payload{2});
        }
      },
      options);
  obs::install_trace(nullptr);

  const FlowTally tally(recorder.snapshot_events());
  // 3 sends - 1 drop = 2 flows, each matched; the drop left an instant.
  EXPECT_EQ(tally.starts(), 2);
  EXPECT_TRUE(tally.all_matched());
  EXPECT_EQ(tally.drops, 1);
}

TEST(FlowTrace, AllGatherFlowsPairProducersToConsumers) {
  obs::TraceRecorder recorder;
  obs::install_trace(&recorder);
  run_ranks(3, [](Communicator& comm) {
    auto gathered =
        comm.all_gather({static_cast<std::uint8_t>(comm.rank())});
    EXPECT_EQ(gathered.size(), 3u);
  });
  obs::install_trace(nullptr);

  const FlowTally tally(recorder.snapshot_events());
  // One flow per publishing rank; every one consumed by both peers.
  EXPECT_EQ(tally.starts(), 3);
  EXPECT_TRUE(tally.all_matched());
  for (const auto& [id, sf] : tally.flows) EXPECT_EQ(sf.second, 2);
}

TEST(FlowTrace, PairingHoldsUnderStraggler) {
  auto plan = std::make_shared<FaultPlan>();
  plan->straggle(/*rank=*/1, /*delay_us=*/5'000);
  RunOptions options;
  options.fault_plan = plan;

  obs::TraceRecorder recorder;
  obs::install_trace(&recorder);
  const auto report = run_ranks(
      2,
      [](Communicator& comm) {
        if (comm.rank() == 1) {
          comm.send(0, 0, {42});
        } else {
          EXPECT_EQ(comm.recv(1, 0), Payload{42});
        }
        comm.barrier();
      },
      options);
  obs::install_trace(nullptr);

  const FlowTally tally(recorder.snapshot_events());
  EXPECT_EQ(tally.starts(), 1);
  EXPECT_TRUE(tally.all_matched());
  // Rank 0 blocked on a known straggler: the wait is classified as
  // straggler-wait, not data-wait (the 5 ms injected delay dwarfs any
  // scheduling noise, so rank 0 reliably blocks).
  EXPECT_GT(report.ranks[0].wait_straggler_us, 0u);
  EXPECT_EQ(report.ranks[0].wait_data_us, 0u);
}

TEST(MpsimWaits, NoStragglerMeansNoStragglerWait) {
  const auto report = run_ranks(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 0, {1});
    } else {
      comm.recv(0, 0);
    }
    comm.barrier();
  });
  // No fault plan: blocked time can only be data-wait or barrier-wait;
  // the straggler class needs a configured straggler to ever tick.
  for (const auto& counters : report.ranks) {
    EXPECT_EQ(counters.wait_straggler_us, 0u);
  }
}

TEST(MpsimWaits, QueueDepthPeakRecorded) {
  const auto report = run_ranks(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      for (std::uint8_t i = 0; i < 4; ++i) comm.send(1, 0, {i});
      comm.barrier();  // all four enqueued before rank 1 drains any
    } else {
      comm.barrier();
      for (int i = 0; i < 4; ++i) comm.recv(0, 0);
    }
  });
  EXPECT_EQ(report.ranks[1].max_queue_depth, 4u);
  EXPECT_EQ(report.ranks[1].messages_received, 4u);
}

// ------------------------------------------------------ critical-path math

obs::TraceEvent span(const char* name, const char* category,
                     std::uint32_t tid, double ts_us, double dur_us) {
  obs::TraceEvent event;
  event.name = name;
  event.category = category;
  event.phase = 'X';
  event.tid = tid;
  event.ts_us = ts_us;
  event.dur_us = dur_us;
  return event;
}

/// Fixed two-lane schedule: round 0 is gated by lane 2 (150 us, with a
/// recorded gen-cand phase and a data-wait inside), round 1 by lane 1
/// (80 us, no nested spans).
std::vector<obs::TraceEvent> fixed_schedule() {
  std::vector<obs::TraceEvent> events;
  events.push_back(span("iteration", "solve", 1, 10.0, 100.0));
  events.push_back(span("iteration", "solve", 1, 120.0, 80.0));
  events.push_back(span("iteration", "solve", 2, 10.0, 150.0));
  events.push_back(span("gen cand", "phase", 2, 20.0, 50.0));
  events.push_back(span("data-wait", "wait", 2, 80.0, 40.0));
  events.push_back(span("iteration", "solve", 2, 170.0, 60.0));
  return events;
}

TEST(FlowCriticalPath, SlowestLanePerRoundJoinsPath) {
  const auto events = fixed_schedule();
  const obs::SolveReport report;
  const obs::FlowSummary flow = obs::analyze_flow(report, &events);

  EXPECT_TRUE(flow.traced);
  EXPECT_EQ(flow.critical_path_steps, 2u);
  EXPECT_DOUBLE_EQ(flow.critical_path_us, 150.0 + 80.0);
  EXPECT_DOUBLE_EQ(flow.wall_us, 230.0 - 10.0);
  // Attribution: lane 2's on-path span carries 50 us of gen-cand phase
  // (40 us of data-wait lies inside that phase and is listed alongside);
  // the rest of both path spans is "other".
  EXPECT_DOUBLE_EQ(flow.critical_path_phase_us.at("gen cand"), 50.0);
  EXPECT_DOUBLE_EQ(flow.critical_path_phase_us.at("data-wait"), 40.0);
  EXPECT_DOUBLE_EQ(flow.critical_path_phase_us.at("other"),
                   (150.0 - 50.0) + 80.0);
}

TEST(FlowCriticalPath, SubsetSpansWindowTheRounds) {
  auto events = fixed_schedule();
  // Wrap the schedule in one subset window and append a second window
  // holding one more round, gated by lane 2 (70 us).
  events.push_back(span("subset", "combined", 0, 0.0, 300.0));
  events.push_back(span("subset", "combined", 0, 300.0, 200.0));
  events.push_back(span("iteration", "solve", 1, 310.0, 50.0));
  events.push_back(span("iteration", "solve", 2, 315.0, 70.0));

  const obs::SolveReport report;
  const obs::FlowSummary flow = obs::analyze_flow(report, &events);
  EXPECT_EQ(flow.critical_path_steps, 3u);
  EXPECT_DOUBLE_EQ(flow.critical_path_us, 150.0 + 80.0 + 70.0);
}

TEST(FlowCriticalPath, DeterministicOnFixedSchedule) {
  const auto events = fixed_schedule();
  const obs::SolveReport report;
  const obs::FlowSummary first = obs::analyze_flow(report, &events);
  const obs::FlowSummary second = obs::analyze_flow(report, &events);
  EXPECT_EQ(first.to_json().dump(-1), second.to_json().dump(-1));
}

TEST(FlowCriticalPath, NoIterationsFallsBackToBusiestLane) {
  std::vector<obs::TraceEvent> events;
  events.push_back(span("gen cand", "phase", 1, 0.0, 30.0));
  events.push_back(span("rank test", "phase", 1, 30.0, 20.0));
  events.push_back(span("gen cand", "phase", 2, 0.0, 10.0));

  const obs::SolveReport report;
  const obs::FlowSummary flow = obs::analyze_flow(report, &events);
  EXPECT_DOUBLE_EQ(flow.critical_path_us, 50.0);
  EXPECT_EQ(flow.critical_path_steps, 2u);
}

TEST(FlowSummaryJson, CarriesEstimateAndPairing) {
  obs::SolveReport report;
  report.num_efms = 8;
  report.totals["pairs_probed"] = 123;

  std::vector<obs::TraceEvent> events;
  obs::TraceEvent start;
  start.phase = 's';
  start.id = 7;
  events.push_back(start);
  obs::TraceEvent finish = start;
  finish.phase = 'f';
  events.push_back(finish);
  obs::TraceEvent unmatched = start;
  unmatched.id = 9;
  events.push_back(unmatched);

  obs::FlowSummary flow = obs::analyze_flow(report, &events);
  flow.estimated_pairs = 120.0;
  flow.estimated_efms = 6.0;
  EXPECT_EQ(flow.flows_emitted, 2u);
  EXPECT_EQ(flow.flows_matched, 1u);
  EXPECT_EQ(flow.actual_pairs, 123u);
  EXPECT_EQ(flow.actual_efms, 8u);

  const obs::JsonValue json = flow.to_json();
  EXPECT_EQ(json.find("flows_emitted")->as_uint(), 2u);
  EXPECT_EQ(json.find("flows_matched")->as_uint(), 1u);
  const obs::JsonValue* estimate = json.find("estimate");
  ASSERT_NE(estimate, nullptr);
  EXPECT_DOUBLE_EQ(estimate->find("estimated_pairs")->as_double(), 120.0);
  EXPECT_EQ(estimate->find("actual_pairs")->as_uint(), 123u);
}

}  // namespace
}  // namespace elmo
