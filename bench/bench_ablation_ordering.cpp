// Ablation: the paper's two row-ordering heuristics (SII.C) — sort
// processed rows by increasing nonzeros, and process reversible reactions
// last — measured by total candidate pairs and wall time on the demo
// Network I instance.  "a heuristic proven to often improve the efficiency
// of Nullspace Algorithm".
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace elmo;
  const bool full = bench::full_scale(argc, argv);
  bench::print_scale_banner(full, "Ablation: row-ordering heuristics");

  Network network = bench::network_1(full);
  auto compressed = compress(network);

  Table table({"nnz-sorted", "reversible-last", "# candidate pairs",
               "# rank tests", "peak columns", "time (s)", "# EFM"});
  std::vector<std::vector<BigInt>> reference;
  bool all_equal = true;
  for (bool nnz : {true, false}) {
    for (bool rev_last : {true, false}) {
      EfmOptions options;
      options.ordering.sort_by_nonzeros = nnz;
      options.ordering.reversible_last = rev_last;
      Stopwatch watch;
      auto result = compute_efms(compressed, network.reversibility(), options);
      double seconds = watch.seconds();
      if (reference.empty())
        reference = result.modes;
      else
        all_equal = all_equal && reference == result.modes;
      table.add_row({nnz ? "yes" : "no", rev_last ? "yes" : "no",
                     with_commas(result.stats.total_pairs_probed),
                     with_commas(result.stats.total_rank_tests),
                     with_commas(result.stats.peak_columns),
                     seconds_str(seconds), with_commas(result.num_modes())});
    }
  }
  std::fputs(table.render("Algorithm 1 under ordering variants").c_str(),
             stdout);
  std::printf("\nEFM sets identical across variants: %s\n",
              all_equal ? "yes" : "NO - BUG");
  return all_equal ? 0 : 1;
}
