file(REMOVE_RECURSE
  "CMakeFiles/test_bitset.dir/test_bitset.cpp.o"
  "CMakeFiles/test_bitset.dir/test_bitset.cpp.o.d"
  "test_bitset"
  "test_bitset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bitset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
