// elmo_analyze — driver: option parsing, file discovery, pass dispatch.
//
// The analyzer is self-contained C++17 (no libclang, no third-party
// dependencies) so it can be bootstrapped with a bare `g++ -std=c++17`
// before the CMake tree exists — scripts/lint.sh does exactly that.
//
// Passes (select with --pass=LIST, default all):
//   include   module layering DAG, facade enforcement for obs/check,
//             include cycles, #pragma once, IWYU-lite unused/missing
//             includes, Graphviz module-graph dump (--dot)
//   lock      static mutex acquisition graph: nested-guard edges with
//             enclosing-function attribution, one-level interprocedural
//             propagation, cycle detection, locks held across blocking
//             calls, and a diff against a runtime lockdep edge dump
//             (--lockdep-edges, format: one "A -> B" per line as printed
//             by elmo::check::LockOrderGraph::edges())
//   overflow  raw * / + / << on int64_t-typed expressions inside
//             src/nullspace, src/linalg, src/core that bypass the
//             bigint/checked.hpp helpers
//   lint      the historical elmo_lint rules (naked-new, no-rand,
//             catch-all, reinterpret-cast)
#pragma once

#include <string>
#include <vector>

#include "analyze/findings.hpp"
#include "analyze/source.hpp"

namespace elmo_analyze {

struct Options {
  std::string root = ".";
  bool pass_include = true;
  bool pass_lock = true;
  bool pass_overflow = true;
  bool pass_lint = true;
  std::string baseline_path;
  std::string write_baseline_path;
  std::string json_path;
  std::string dot_path;
  std::string lockdep_edges_path;
  std::vector<std::string> files;  // explicit file arguments, if any
  bool lint_compat = false;        // elmo_lint-shim output format
  std::string tool_name = "elmo_analyze";
};

struct Project {
  std::vector<SourceFile> files;

  /// Index into `files` by root-relative path, or npos.
  [[nodiscard]] std::size_t find(const std::string& path) const;
};

/// Load the project: explicit files when given, otherwise every
/// *.hpp/*.cpp under <root>/src.  Returns false on IO failure (missing
/// file, unreadable root).
bool load_project(const Options& opts, Project& project,
                  std::string& error);

void pass_include(const Project& project, const Options& opts,
                  std::vector<Finding>& findings);
void pass_lock(const Project& project, const Options& opts,
               std::vector<Finding>& findings);
void pass_overflow(const Project& project, const Options& opts,
                   std::vector<Finding>& findings);
void pass_lint(const Project& project, const Options& opts,
               std::vector<Finding>& findings);

/// Full CLI: parse argv, run passes, emit reports.
/// Exit codes: 0 clean, 1 non-baselined findings, 2 usage/IO error.
int run_cli(int argc, char** argv);

}  // namespace elmo_analyze
