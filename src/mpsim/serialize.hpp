// Serialisation of flux columns for the simulated message-passing layer.
//
// Candidate EFMs exchanged in Communicate&Merge are encoded exactly as an
// MPI implementation would pack them; message sizes reported by the
// communicator therefore reflect real traffic volumes.
//
// Message integrity: every encoded batch carries a trailing CRC32 over the
// body, verified before decoding.  A payload damaged in flight (or by
// injected corruption, fault.hpp) therefore surfaces as a typed
// CorruptPayloadError a caller can retry on, never as silently-decoded
// garbage columns.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "bigint/bigint.hpp"
#include "bigint/checked.hpp"
#include "bigint/scalar.hpp"
#include "bitset/bitset64.hpp"
#include "bitset/dynbitset.hpp"
#include "mpsim/communicator.hpp"
#include "nullspace/flux_column.hpp"
#include "support/error.hpp"

namespace elmo::mpsim {

/// CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320) of `size` bytes.
inline std::uint32_t crc32(const std::uint8_t* data, std::size_t size) {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i)
    crc = table[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

inline std::uint32_t crc32(const Payload& payload) {
  return crc32(payload.data(), payload.size());
}

/// Append a little-endian CRC32 of the current contents to `payload`.
inline void append_crc32(Payload& payload) {
  const std::uint32_t crc = crc32(payload);
  for (int b = 0; b < 4; ++b)
    payload.push_back(static_cast<std::uint8_t>(crc >> (8 * b)));
}

/// Verify the trailing CRC32 and return the body size (payload size minus
/// the 4 checksum bytes).  Throws CorruptPayloadError on mismatch or a
/// payload too short to carry a checksum.
inline std::size_t verify_crc32(const Payload& payload) {
  if (payload.size() < 4) {
    throw CorruptPayloadError("mpsim: payload too short for CRC32 framing",
                              0, 0);
  }
  const std::size_t body = payload.size() - 4;
  std::uint32_t stored = 0;
  for (int b = 0; b < 4; ++b)
    stored |= static_cast<std::uint32_t>(payload[body + static_cast<std::size_t>(b)])
              << (8 * b);
  const std::uint32_t actual = crc32(payload.data(), body);
  if (stored != actual) {
    throw CorruptPayloadError(
        "mpsim: payload failed CRC32 verification (corrupted in flight)",
        stored, actual);
  }
  return body;
}

namespace detail {

inline void put_u64(Payload& out, std::uint64_t v) {
  for (int b = 0; b < 8; ++b)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * b)));
}

inline std::uint64_t get_u64(const std::uint8_t*& cursor,
                             const std::uint8_t* end) {
  if (end - cursor < 8) throw ParseError("mpsim: truncated u64");
  std::uint64_t v = 0;
  for (int b = 0; b < 8; ++b)
    v |= static_cast<std::uint64_t>(*cursor++) << (8 * b);
  return v;
}

// ---- scalar encoding ----
inline void put_scalar(Payload& out, const CheckedI64& v) {
  put_u64(out, static_cast<std::uint64_t>(v.value()));
}
inline void put_scalar(Payload& out, const BigInt& v) { v.serialize(out); }
inline void put_scalar(Payload& out, double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  __builtin_memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

inline void get_scalar(const std::uint8_t*& cursor, const std::uint8_t* end,
                       CheckedI64& v) {
  v = CheckedI64(static_cast<std::int64_t>(get_u64(cursor, end)));
}
inline void get_scalar(const std::uint8_t*& cursor, const std::uint8_t* end,
                       BigInt& v) {
  v = BigInt::deserialize(cursor, end);
}
inline void get_scalar(const std::uint8_t*& cursor, const std::uint8_t* end,
                       double& v) {
  std::uint64_t bits = get_u64(cursor, end);
  __builtin_memcpy(&v, &bits, sizeof(v));
}

// ---- support encoding ----
inline void put_support(Payload& out, const Bitset64& s) {
  put_u64(out, s.word());
}
inline void put_support(Payload& out, const DynBitset& s) {
  put_u64(out, s.words().size());
  for (std::uint64_t w : s.words()) put_u64(out, w);
}
inline void get_support(const std::uint8_t*& cursor, const std::uint8_t* end,
                        Bitset64& s) {
  s = Bitset64(get_u64(cursor, end));
}
inline void get_support(const std::uint8_t*& cursor, const std::uint8_t* end,
                        DynBitset& s) {
  std::size_t count = get_u64(cursor, end);
  std::vector<std::uint64_t> words(count);
  for (auto& w : words) w = get_u64(cursor, end);
  s = DynBitset::from_words(std::move(words));
}

}  // namespace detail

/// Encode a batch of columns into one checksummed message payload.
template <typename Scalar, typename Support>
Payload encode_columns(const std::vector<FluxColumn<Scalar, Support>>& columns) {
  Payload out;
  detail::put_u64(out, columns.size());
  for (const auto& column : columns) {
    detail::put_support(out, column.support);
    detail::put_u64(out, column.values.size());
    for (const auto& value : column.values) detail::put_scalar(out, value);
  }
  append_crc32(out);
  return out;
}

/// Inverse of encode_columns; verifies the CRC32 framing first and throws
/// CorruptPayloadError on damaged bytes.
template <typename Scalar, typename Support>
std::vector<FluxColumn<Scalar, Support>> decode_columns(
    const Payload& payload) {
  const std::size_t body = verify_crc32(payload);
  const std::uint8_t* cursor = payload.data();
  const std::uint8_t* end = payload.data() + body;
  std::vector<FluxColumn<Scalar, Support>> columns;
  const std::uint64_t count = detail::get_u64(cursor, end);
  columns.reserve(count);
  for (std::uint64_t c = 0; c < count; ++c) {
    FluxColumn<Scalar, Support> column;
    detail::get_support(cursor, end, column.support);
    const std::uint64_t size = detail::get_u64(cursor, end);
    column.values.resize(size);
    for (auto& value : column.values)
      detail::get_scalar(cursor, end, value);
    columns.push_back(std::move(column));
  }
  if (cursor != end)
    throw ParseError("mpsim: trailing bytes after column batch");
  return columns;
}

}  // namespace elmo::mpsim
