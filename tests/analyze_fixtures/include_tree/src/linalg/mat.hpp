// Seeds include:facade — reaches into obs internals instead of the facade.
#pragma once

#include "obs/trace.hpp"

struct Mat {
  FixTracer tracer;
};
