#include "bigint/bigint.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/assert.hpp"
#include "support/error.hpp"

namespace elmo {

namespace {

constexpr std::uint64_t kBase = 1ULL << 32;

}  // namespace

BigInt::BigInt(std::int64_t value) {
  if (value == 0) return;
  negative_ = value < 0;
  // Avoid UB negating INT64_MIN: work in unsigned space.
  std::uint64_t magnitude =
      negative_ ? ~static_cast<std::uint64_t>(value) + 1
                : static_cast<std::uint64_t>(value);
  limbs_.push_back(static_cast<std::uint32_t>(magnitude & 0xffffffffULL));
  if (magnitude >> 32) {
    limbs_.push_back(static_cast<std::uint32_t>(magnitude >> 32));
  }
}

BigInt BigInt::from_string(std::string_view text) {
  if (text.empty()) throw ParseError("BigInt: empty string");
  bool negative = false;
  std::size_t i = 0;
  if (text[0] == '-' || text[0] == '+') {
    negative = text[0] == '-';
    i = 1;
  }
  if (i == text.size()) throw ParseError("BigInt: sign without digits");
  BigInt result;
  for (; i < text.size(); ++i) {
    char c = text[i];
    if (c < '0' || c > '9')
      throw ParseError("BigInt: invalid digit in '" + std::string(text) + "'");
    // result = result * 10 + digit, done limb-wise to stay O(n) per digit.
    std::uint64_t carry = static_cast<std::uint64_t>(c - '0');
    for (auto& limb : result.limbs_) {
      std::uint64_t v = static_cast<std::uint64_t>(limb) * 10 + carry;
      limb = static_cast<std::uint32_t>(v & 0xffffffffULL);
      carry = v >> 32;
    }
    if (carry) result.limbs_.push_back(static_cast<std::uint32_t>(carry));
  }
  result.trim();
  result.negative_ = negative && !result.limbs_.empty();
  return result;
}

bool BigInt::fits_i64() const {
  if (limbs_.size() < 2) return true;
  if (limbs_.size() > 2) return false;
  std::uint64_t magnitude =
      (static_cast<std::uint64_t>(limbs_[1]) << 32) | limbs_[0];
  if (negative_) return magnitude <= (1ULL << 63);
  return magnitude < (1ULL << 63);
}

std::int64_t BigInt::to_i64() const {
  if (!fits_i64())
    throw OverflowError("BigInt::to_i64: value exceeds int64 range");
  if (limbs_.empty()) return 0;
  std::uint64_t magnitude = limbs_[0];
  if (limbs_.size() == 2)
    magnitude |= static_cast<std::uint64_t>(limbs_[1]) << 32;
  if (negative_) return static_cast<std::int64_t>(~magnitude + 1);
  return static_cast<std::int64_t>(magnitude);
}

double BigInt::to_double() const {
  double value = 0.0;
  for (auto it = limbs_.rbegin(); it != limbs_.rend(); ++it) {
    value = value * static_cast<double>(kBase) + static_cast<double>(*it);
  }
  return negative_ ? -value : value;
}

std::string BigInt::to_string() const {
  if (limbs_.empty()) return "0";
  // Repeatedly divide the magnitude by 10^9 and emit 9-digit chunks.
  std::vector<std::uint32_t> magnitude = limbs_;
  std::string digits;
  while (!magnitude.empty()) {
    std::uint64_t remainder = 0;
    for (std::size_t i = magnitude.size(); i-- > 0;) {
      std::uint64_t value = (remainder << 32) | magnitude[i];
      magnitude[i] = static_cast<std::uint32_t>(value / 1000000000ULL);
      remainder = value % 1000000000ULL;
    }
    while (!magnitude.empty() && magnitude.back() == 0) magnitude.pop_back();
    for (int i = 0; i < 9; ++i) {
      digits.push_back(static_cast<char>('0' + remainder % 10));
      remainder /= 10;
    }
  }
  while (digits.size() > 1 && digits.back() == '0') digits.pop_back();
  if (negative_) digits.push_back('-');
  std::reverse(digits.begin(), digits.end());
  return digits;
}

std::size_t BigInt::bit_length() const {
  if (limbs_.empty()) return 0;
  std::size_t bits = (limbs_.size() - 1) * 32;
  std::uint32_t top = limbs_.back();
  while (top) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

BigInt BigInt::operator-() const {
  BigInt result = *this;
  if (!result.limbs_.empty()) result.negative_ = !result.negative_;
  return result;
}

BigInt BigInt::abs() const {
  BigInt result = *this;
  result.negative_ = false;
  return result;
}

int BigInt::compare_magnitude(const std::vector<std::uint32_t>& a,
                              const std::vector<std::uint32_t>& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (std::size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

void BigInt::add_magnitude(std::vector<std::uint32_t>& acc,
                           const std::vector<std::uint32_t>& rhs) {
  if (acc.size() < rhs.size()) acc.resize(rhs.size(), 0);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < acc.size(); ++i) {
    std::uint64_t sum = static_cast<std::uint64_t>(acc[i]) + carry;
    if (i < rhs.size()) sum += rhs[i];
    acc[i] = static_cast<std::uint32_t>(sum & 0xffffffffULL);
    carry = sum >> 32;
    if (carry == 0 && i >= rhs.size()) return;
  }
  if (carry) acc.push_back(static_cast<std::uint32_t>(carry));
}

void BigInt::sub_magnitude(std::vector<std::uint32_t>& acc,
                           const std::vector<std::uint32_t>& rhs) {
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < acc.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(acc[i]) - borrow;
    if (i < rhs.size()) diff -= rhs[i];
    if (diff < 0) {
      diff += static_cast<std::int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    acc[i] = static_cast<std::uint32_t>(diff);
    if (borrow == 0 && i >= rhs.size()) break;
  }
  ELMO_DCHECK(borrow == 0, "sub_magnitude requires |acc| >= |rhs|");
  while (!acc.empty() && acc.back() == 0) acc.pop_back();
}

std::vector<std::uint32_t> BigInt::mul_magnitude(
    const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b) {
  if (a.empty() || b.empty()) return {};
  std::vector<std::uint32_t> product(a.size() + b.size(), 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::uint64_t carry = 0;
    std::uint64_t ai = a[i];
    for (std::size_t j = 0; j < b.size(); ++j) {
      std::uint64_t value =
          static_cast<std::uint64_t>(product[i + j]) + ai * b[j] + carry;
      product[i + j] = static_cast<std::uint32_t>(value & 0xffffffffULL);
      carry = value >> 32;
    }
    product[i + b.size()] = static_cast<std::uint32_t>(carry);
  }
  while (!product.empty() && product.back() == 0) product.pop_back();
  return product;
}

void BigInt::divmod_magnitude(const std::vector<std::uint32_t>& dividend,
                              const std::vector<std::uint32_t>& divisor,
                              std::vector<std::uint32_t>& quotient,
                              std::vector<std::uint32_t>& remainder) {
  quotient.clear();
  remainder.clear();
  if (compare_magnitude(dividend, divisor) < 0) {
    remainder = dividend;
    return;
  }
  if (divisor.size() == 1) {
    // Single-limb fast path.
    quotient.resize(dividend.size());
    std::uint64_t rem = 0;
    std::uint64_t d = divisor[0];
    for (std::size_t i = dividend.size(); i-- > 0;) {
      std::uint64_t value = (rem << 32) | dividend[i];
      quotient[i] = static_cast<std::uint32_t>(value / d);
      rem = value % d;
    }
    while (!quotient.empty() && quotient.back() == 0) quotient.pop_back();
    if (rem) remainder.push_back(static_cast<std::uint32_t>(rem));
    return;
  }

  // Knuth TAOCP vol 2, Algorithm D.  Normalise so the divisor's top limb
  // has its high bit set.
  const std::size_t n = divisor.size();
  const std::size_t m = dividend.size() - n;
  int shift = 0;
  for (std::uint32_t top = divisor.back(); (top & 0x80000000U) == 0;
       top <<= 1) {
    ++shift;
  }

  auto shifted_left = [shift](const std::vector<std::uint32_t>& src,
                              bool extra_limb) {
    std::vector<std::uint32_t> out(src.size() + (extra_limb ? 1 : 0), 0);
    if (shift == 0) {
      std::copy(src.begin(), src.end(), out.begin());
      return out;
    }
    std::uint32_t carry = 0;
    for (std::size_t i = 0; i < src.size(); ++i) {
      out[i] = (src[i] << shift) | carry;
      carry = static_cast<std::uint32_t>(src[i] >> (32 - shift));
    }
    if (extra_limb)
      out[src.size()] = carry;
    else
      ELMO_DCHECK(carry == 0, "divisor normalisation overflow");
    return out;
  };

  std::vector<std::uint32_t> u = shifted_left(dividend, true);  // n + m + 1
  std::vector<std::uint32_t> v = shifted_left(divisor, false);  // n

  quotient.assign(m + 1, 0);
  const std::uint64_t v_top = v[n - 1];
  const std::uint64_t v_second = v[n - 2];

  for (std::size_t j = m + 1; j-- > 0;) {
    // Estimate q_hat = (u[j+n]*B + u[j+n-1]) / v_top, then refine.
    std::uint64_t numerator =
        (static_cast<std::uint64_t>(u[j + n]) << 32) | u[j + n - 1];
    std::uint64_t q_hat = numerator / v_top;
    std::uint64_t r_hat = numerator % v_top;
    while (q_hat >= kBase ||
           q_hat * v_second > ((r_hat << 32) | u[j + n - 2])) {
      --q_hat;
      r_hat += v_top;
      if (r_hat >= kBase) break;
    }
    // Multiply-subtract: u[j..j+n] -= q_hat * v.
    std::int64_t borrow = 0;
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      std::uint64_t product = q_hat * v[i] + carry;
      carry = product >> 32;
      std::int64_t diff = static_cast<std::int64_t>(u[i + j]) -
                          static_cast<std::int64_t>(product & 0xffffffffULL) -
                          borrow;
      if (diff < 0) {
        diff += static_cast<std::int64_t>(kBase);
        borrow = 1;
      } else {
        borrow = 0;
      }
      u[i + j] = static_cast<std::uint32_t>(diff);
    }
    std::int64_t top_diff = static_cast<std::int64_t>(u[j + n]) -
                            static_cast<std::int64_t>(carry) - borrow;
    if (top_diff < 0) {
      // q_hat was one too large: add back.
      top_diff += static_cast<std::int64_t>(kBase);
      --q_hat;
      std::uint64_t add_carry = 0;
      for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t sum =
            static_cast<std::uint64_t>(u[i + j]) + v[i] + add_carry;
        u[i + j] = static_cast<std::uint32_t>(sum & 0xffffffffULL);
        add_carry = sum >> 32;
      }
      top_diff += static_cast<std::int64_t>(add_carry);
      top_diff &= 0xffffffffLL;
    }
    u[j + n] = static_cast<std::uint32_t>(top_diff);
    quotient[j] = static_cast<std::uint32_t>(q_hat);
  }

  while (!quotient.empty() && quotient.back() == 0) quotient.pop_back();

  // Denormalise the remainder (shift right).
  remainder.assign(u.begin(), u.begin() + static_cast<std::ptrdiff_t>(n));
  if (shift) {
    std::uint32_t carry = 0;
    for (std::size_t i = remainder.size(); i-- > 0;) {
      std::uint32_t value = remainder[i];
      remainder[i] = (value >> shift) | carry;
      carry = static_cast<std::uint32_t>(value << (32 - shift));
    }
  }
  while (!remainder.empty() && remainder.back() == 0) remainder.pop_back();
}

void BigInt::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
  if (limbs_.empty()) negative_ = false;
}

BigInt& BigInt::operator+=(const BigInt& rhs) {
  if (negative_ == rhs.negative_) {
    add_magnitude(limbs_, rhs.limbs_);
  } else {
    int cmp = compare_magnitude(limbs_, rhs.limbs_);
    if (cmp == 0) {
      limbs_.clear();
      negative_ = false;
    } else if (cmp > 0) {
      sub_magnitude(limbs_, rhs.limbs_);
    } else {
      std::vector<std::uint32_t> tmp = rhs.limbs_;
      sub_magnitude(tmp, limbs_);
      limbs_ = std::move(tmp);
      negative_ = rhs.negative_;
    }
  }
  trim();
  return *this;
}

BigInt& BigInt::operator-=(const BigInt& rhs) {
  // a - b == a + (-b); avoid a temporary by toggling sign logic inline.
  BigInt negated = rhs;
  if (!negated.limbs_.empty()) negated.negative_ = !negated.negative_;
  return *this += negated;
}

BigInt& BigInt::operator*=(const BigInt& rhs) {
  bool negative = negative_ != rhs.negative_;
  limbs_ = mul_magnitude(limbs_, rhs.limbs_);
  negative_ = negative && !limbs_.empty();
  return *this;
}

void BigInt::divmod(const BigInt& dividend, const BigInt& divisor,
                    BigInt& quotient, BigInt& remainder) {
  if (divisor.is_zero())
    throw InvalidArgumentError("BigInt: division by zero");
  std::vector<std::uint32_t> q;
  std::vector<std::uint32_t> r;
  divmod_magnitude(dividend.limbs_, divisor.limbs_, q, r);
  quotient.limbs_ = std::move(q);
  quotient.negative_ =
      (dividend.negative_ != divisor.negative_) && !quotient.limbs_.empty();
  remainder.limbs_ = std::move(r);
  remainder.negative_ = dividend.negative_ && !remainder.limbs_.empty();
}

BigInt& BigInt::operator/=(const BigInt& rhs) {
  BigInt quotient;
  BigInt remainder;
  divmod(*this, rhs, quotient, remainder);
  *this = std::move(quotient);
  return *this;
}

BigInt& BigInt::operator%=(const BigInt& rhs) {
  BigInt quotient;
  BigInt remainder;
  divmod(*this, rhs, quotient, remainder);
  *this = std::move(remainder);
  return *this;
}

std::strong_ordering operator<=>(const BigInt& lhs, const BigInt& rhs) {
  if (lhs.negative_ != rhs.negative_) {
    return lhs.negative_ ? std::strong_ordering::less
                         : std::strong_ordering::greater;
  }
  int cmp = BigInt::compare_magnitude(lhs.limbs_, rhs.limbs_);
  if (lhs.negative_) cmp = -cmp;
  if (cmp < 0) return std::strong_ordering::less;
  if (cmp > 0) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

BigInt BigInt::gcd(const BigInt& a, const BigInt& b) {
  BigInt x = a.abs();
  BigInt y = b.abs();
  while (!y.is_zero()) {
    BigInt quotient;
    BigInt remainder;
    divmod(x, y, quotient, remainder);
    x = std::move(y);
    y = std::move(remainder);
  }
  return x;
}

void BigInt::serialize(std::vector<std::uint8_t>& out) const {
  // Header byte: bit 0 = negative; remaining bits unused.  Then a 32-bit
  // limb count and the limbs, least significant first.
  out.push_back(negative_ ? 1 : 0);
  auto count = static_cast<std::uint32_t>(limbs_.size());
  for (int b = 0; b < 4; ++b)
    out.push_back(static_cast<std::uint8_t>(count >> (8 * b)));
  for (std::uint32_t limb : limbs_) {
    for (int b = 0; b < 4; ++b)
      out.push_back(static_cast<std::uint8_t>(limb >> (8 * b)));
  }
}

BigInt BigInt::deserialize(const std::uint8_t*& cursor,
                           const std::uint8_t* end) {
  auto need = [&](std::size_t n) {
    if (static_cast<std::size_t>(end - cursor) < n)
      throw ParseError("BigInt::deserialize: truncated buffer");
  };
  need(5);
  BigInt value;
  const bool negative = (*cursor++ & 1) != 0;
  std::uint32_t count = 0;
  for (int b = 0; b < 4; ++b)
    count |= static_cast<std::uint32_t>(*cursor++) << (8 * b);
  need(static_cast<std::size_t>(count) * 4);
  value.limbs_.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint32_t limb = 0;
    for (int b = 0; b < 4; ++b)
      limb |= static_cast<std::uint32_t>(*cursor++) << (8 * b);
    value.limbs_.push_back(limb);
  }
  value.trim();
  value.negative_ = negative && !value.limbs_.empty();
  return value;
}

BigInt BigInt::exact_div(const BigInt& divisor) const {
  BigInt quotient;
  BigInt remainder;
  divmod(*this, divisor, quotient, remainder);
  ELMO_DCHECK(remainder.is_zero(), "exact_div: division was not exact");
  return quotient;
}

}  // namespace elmo
