# Empty compiler generated dependencies file for elmo_core.
# This may be replaced when dependencies are built.
