#include "compress/compression.hpp"

#include <algorithm>
#include <utility>

#include "bigint/bigint.hpp"
#include "linalg/gauss.hpp"
#include "linalg/matrix.hpp"
#include "linalg/scale.hpp"
#include "network/network.hpp"
#include "support/assert.hpp"

namespace elmo {

namespace {

/// Mutable working state during compression.  Columns/rows are erased by
/// rebuilding the vectors; sizes here are small (tens to low hundreds).
struct WorkState {
  Matrix<BigRational> n;            // rows x cols rational stoichiometry
  std::vector<bool> reversible;     // per column
  std::vector<std::string> names;   // per column (representative)
  std::vector<std::string> mets;    // per row
  Matrix<BigRational> recon;        // q_orig x cols
  CompressionStats stats;

  [[nodiscard]] std::size_t rows() const { return n.rows(); }
  [[nodiscard]] std::size_t cols() const { return n.cols(); }

  void remove_columns(const std::vector<bool>& drop) {
    std::vector<std::size_t> keep;
    for (std::size_t j = 0; j < cols(); ++j)
      if (!drop[j]) keep.push_back(j);
    n = n.select_columns(keep);
    recon = recon.select_columns(keep);
    std::vector<bool> rev;
    std::vector<std::string> nm;
    rev.reserve(keep.size());
    nm.reserve(keep.size());
    for (std::size_t j : keep) {
      rev.push_back(reversible[j]);
      nm.push_back(std::move(names[j]));
    }
    reversible = std::move(rev);
    names = std::move(nm);
  }

  void remove_rows(const std::vector<bool>& drop) {
    std::vector<std::size_t> keep;
    for (std::size_t i = 0; i < rows(); ++i)
      if (!drop[i]) keep.push_back(i);
    n = n.select_rows(keep);
    std::vector<std::string> ms;
    ms.reserve(keep.size());
    for (std::size_t i : keep) ms.push_back(std::move(mets[i]));
    mets = std::move(ms);
  }
};

/// One forced-zero sweep.  Returns true if anything was removed.
bool sweep_forced_zero(WorkState& w) {
  std::vector<bool> drop_col(w.cols(), false);
  std::vector<bool> drop_row(w.rows(), false);
  bool changed = false;

  for (std::size_t i = 0; i < w.rows(); ++i) {
    std::vector<std::size_t> touching;
    for (std::size_t j = 0; j < w.cols(); ++j)
      if (!drop_col[j] && !w.n(i, j).is_zero()) touching.push_back(j);

    if (touching.empty()) {
      drop_row[i] = true;
      ++w.stats.removed_metabolites;
      changed = true;
      continue;
    }

    bool forced = false;
    if (touching.size() == 1) {
      // c * v = 0 with c != 0 forces v = 0 even for a reversible reaction.
      forced = true;
    } else {
      // If every touching reaction is irreversible and enters with the same
      // sign, the steady-state sum of same-sign terms forces all to zero.
      bool all_irreversible_positive = true;
      bool all_irreversible_negative = true;
      for (std::size_t j : touching) {
        if (w.reversible[j]) {
          all_irreversible_positive = false;
          all_irreversible_negative = false;
          break;
        }
        if (w.n(i, j).sign() > 0) all_irreversible_negative = false;
        if (w.n(i, j).sign() < 0) all_irreversible_positive = false;
      }
      forced = all_irreversible_positive || all_irreversible_negative;
    }
    if (forced) {
      for (std::size_t j : touching) {
        drop_col[j] = true;
        ++w.stats.forced_zero_reactions;
      }
      changed = true;
    }
  }

  if (changed) {
    // Row indices are stable across column removal, so the unused-row flags
    // computed above remain valid.  Rows newly emptied by the column
    // removal are caught by the outer fixpoint loop on the next sweep.
    w.remove_columns(drop_col);
    w.remove_rows(drop_row);
  }
  return changed;
}

/// One coupling sweep: merge the first metabolite with exactly two touching
/// reactions.  Returns true if a merge (or a conflict-forced removal)
/// happened.  Merging one pair at a time keeps the bookkeeping simple; the
/// fixpoint loop re-scans.
bool sweep_coupling(WorkState& w) {
  for (std::size_t i = 0; i < w.rows(); ++i) {
    std::vector<std::size_t> touching;
    for (std::size_t j = 0; j < w.cols(); ++j)
      if (!w.n(i, j).is_zero()) touching.push_back(j);
    if (touching.size() != 2) continue;

    const std::size_t ja = touching[0];
    const std::size_t jb = touching[1];
    const BigRational a = w.n(i, ja);
    const BigRational b = w.n(i, jb);
    // Steady state on row i: a*va + b*vb = 0  =>  vb = ratio * va.
    const BigRational ratio = -(a / b);

    // Determine the merged reaction's reversibility from the sign
    // constraints each irreversible member imposes on va.
    bool lower_bounded = !w.reversible[ja];  // va >= 0 from ra
    bool upper_bounded = false;
    if (!w.reversible[jb]) {
      if (ratio.sign() > 0)
        lower_bounded = true;  // vb = ratio*va >= 0  =>  va >= 0
      else
        upper_bounded = true;  // va <= 0
    }

    if (lower_bounded && upper_bounded) {
      // va must be 0: both reactions are dead.
      std::vector<bool> drop(w.cols(), false);
      drop[ja] = drop[jb] = true;
      w.stats.forced_zero_reactions += 2;
      w.remove_columns(drop);
      return true;
    }

    // Merge jb into ja: col(ja) += ratio * col(jb).
    for (std::size_t r = 0; r < w.rows(); ++r) {
      if (!w.n(r, jb).is_zero()) w.n(r, ja) += ratio * w.n(r, jb);
    }
    for (std::size_t r = 0; r < w.recon.rows(); ++r) {
      if (!w.recon(r, jb).is_zero())
        w.recon(r, ja) += ratio * w.recon(r, jb);
    }
    bool merged_reversible = !lower_bounded && !upper_bounded;
    if (upper_bounded) {
      // Flip orientation so the merged reaction is a standard irreversible
      // (flux >= 0) reaction.
      for (std::size_t r = 0; r < w.rows(); ++r) w.n(r, ja) = -w.n(r, ja);
      for (std::size_t r = 0; r < w.recon.rows(); ++r)
        w.recon(r, ja) = -w.recon(r, ja);
    }
    w.reversible[ja] = merged_reversible;
    ++w.stats.merged_reactions;

    std::vector<bool> drop(w.cols(), false);
    drop[jb] = true;
    w.remove_columns(drop);
    return true;
  }
  return false;
}

/// Kernel-based coupling sweep (Gagneur & Klamt 2004 style).
///
/// Compute a kernel basis K of the current stoichiometry.  A reaction whose
/// K-row is identically zero can never carry steady-state flux (blocked);
/// two reactions whose K-rows are proportional (row_i = lambda * row_j in
/// every kernel vector) are fully coupled and merge into one column.  This
/// subsumes the structural two-reaction rule and is what reduces the yeast
/// networks close to the paper's 35 x 55 / 40 x 61 sizes.
///
/// Returns true if anything changed (callers loop to a fixpoint).
bool sweep_kernel_coupling(WorkState& w) {
  if (w.cols() == 0) return false;
  auto [kernel, free_cols] = nullspace_basis(w.n);
  (void)free_cols;

  // Blocked reactions: zero kernel row.
  std::vector<bool> drop(w.cols(), false);
  bool any_blocked = false;
  for (std::size_t j = 0; j < w.cols(); ++j) {
    bool zero = true;
    for (std::size_t c = 0; c < kernel.cols() && zero; ++c)
      if (!kernel(j, c).is_zero()) zero = false;
    if (zero) {
      drop[j] = true;
      ++w.stats.forced_zero_reactions;
      any_blocked = true;
    }
  }
  if (any_blocked) {
    w.remove_columns(drop);
    return true;
  }

  // Coupled pair: find the first (i, j) with proportional kernel rows.
  for (std::size_t j = 0; j < w.cols(); ++j) {
    for (std::size_t i = j + 1; i < w.cols(); ++i) {
      // Determine lambda from the first nonzero of row j; rows are nonzero
      // here (blocked ones were removed above).
      BigRational lambda;
      bool proportional = true;
      bool have_lambda = false;
      for (std::size_t c = 0; c < kernel.cols(); ++c) {
        const BigRational& kj = kernel(j, c);
        const BigRational& ki = kernel(i, c);
        if (kj.is_zero()) {
          if (!ki.is_zero()) {
            proportional = false;
            break;
          }
          continue;
        }
        BigRational ratio = ki / kj;
        if (!have_lambda) {
          lambda = ratio;
          have_lambda = true;
        } else if (!(ratio == lambda)) {
          proportional = false;
          break;
        }
      }
      if (!proportional || !have_lambda || lambda.is_zero()) continue;

      // v_i = lambda * v_j in every steady state.  Sign constraints on v_j:
      bool lower_bounded = !w.reversible[j];
      bool upper_bounded = false;
      if (!w.reversible[i]) {
        if (lambda.sign() > 0)
          lower_bounded = true;
        else
          upper_bounded = true;
      }
      if (lower_bounded && upper_bounded) {
        // v_j forced to zero, and with it v_i.
        std::vector<bool> kill(w.cols(), false);
        kill[i] = kill[j] = true;
        w.stats.forced_zero_reactions += 2;
        w.remove_columns(kill);
        return true;
      }
      // Merge i into j: col(j) += lambda * col(i).
      for (std::size_t r = 0; r < w.rows(); ++r)
        if (!w.n(r, i).is_zero()) w.n(r, j) += lambda * w.n(r, i);
      for (std::size_t r = 0; r < w.recon.rows(); ++r)
        if (!w.recon(r, i).is_zero())
          w.recon(r, j) += lambda * w.recon(r, i);
      bool merged_reversible = !lower_bounded && !upper_bounded;
      if (upper_bounded) {
        for (std::size_t r = 0; r < w.rows(); ++r) w.n(r, j) = -w.n(r, j);
        for (std::size_t r = 0; r < w.recon.rows(); ++r)
          w.recon(r, j) = -w.recon(r, j);
      }
      w.reversible[j] = merged_reversible;
      ++w.stats.merged_reactions;
      std::vector<bool> kill(w.cols(), false);
      kill[i] = true;
      w.remove_columns(kill);
      return true;
    }
  }
  return false;
}

/// Drop metabolite rows linearly dependent on earlier rows.
void drop_redundant_rows(WorkState& w) {
  if (w.rows() == 0) return;
  // Incremental elimination: carry an RREF of the independent rows found so
  // far; a row that reduces to zero is redundant.
  std::vector<std::vector<BigRational>> reduced_rows;
  std::vector<std::size_t> pivot_cols;
  std::vector<bool> drop(w.rows(), false);

  for (std::size_t i = 0; i < w.rows(); ++i) {
    std::vector<BigRational> row(w.cols());
    for (std::size_t j = 0; j < w.cols(); ++j) row[j] = w.n(i, j);
    // Reduce against existing pivots.
    for (std::size_t k = 0; k < reduced_rows.size(); ++k) {
      const std::size_t p = pivot_cols[k];
      if (row[p].is_zero()) continue;
      BigRational factor = row[p];
      for (std::size_t j = 0; j < w.cols(); ++j) {
        if (!reduced_rows[k][j].is_zero())
          row[j] -= factor * reduced_rows[k][j];
      }
    }
    // Find this row's pivot.
    std::size_t pivot = w.cols();
    for (std::size_t j = 0; j < w.cols(); ++j) {
      if (!row[j].is_zero()) {
        pivot = j;
        break;
      }
    }
    if (pivot == w.cols()) {
      drop[i] = true;
      ++w.stats.redundant_rows;
      continue;
    }
    // Normalise so the pivot is 1 (keeps later reductions single-multiply).
    BigRational inv = row[pivot].reciprocal();
    for (std::size_t j = 0; j < w.cols(); ++j)
      if (!row[j].is_zero()) row[j] *= inv;
    reduced_rows.push_back(std::move(row));
    pivot_cols.push_back(pivot);
  }
  w.remove_rows(drop);
}

CompressedProblem finalize(WorkState&& w) {
  CompressedProblem out;
  out.reversible = std::move(w.reversible);
  out.reaction_names = std::move(w.names);
  out.metabolite_names = std::move(w.mets);
  out.reconstruction = std::move(w.recon);
  out.stats = w.stats;

  // Scale each rational column to a primitive integer column, folding the
  // scale factor into the reconstruction (column j scaled by s means a unit
  // flux on the scaled column equals s units on the rational one... the
  // flux semantics are: if column vector doubles, the flux that balances a
  // fixed production halves; reconstruction columns must scale WITH the
  // stoichiometric scaling to keep expand() consistent).
  out.stoichiometry = Matrix<BigInt>(w.n.rows(), w.n.cols());
  for (std::size_t j = 0; j < w.n.cols(); ++j) {
    std::vector<BigRational> column(w.n.rows());
    for (std::size_t i = 0; i < w.n.rows(); ++i) column[i] = w.n(i, j);
    // Find the primitive integer multiple: col_int = s * col_rat with s > 0.
    std::vector<BigInt> ints = to_primitive_integer(column);
    for (std::size_t i = 0; i < w.n.rows(); ++i)
      out.stoichiometry(i, j) = ints[i];
    // s = ints[i] / column[i] for any nonzero entry.
    BigRational scale = BigRational(BigInt(1));
    for (std::size_t i = 0; i < w.n.rows(); ++i) {
      if (!column[i].is_zero()) {
        scale = BigRational(ints[i]) / column[i];
        break;
      }
    }
    // New column represents s * old column; a flux v on it acts like s*v on
    // the old one, so original fluxes = recon_old * (s * v): multiply the
    // reconstruction column by s.
    for (std::size_t r = 0; r < out.reconstruction.rows(); ++r) {
      if (!out.reconstruction(r, j).is_zero())
        out.reconstruction(r, j) *= scale;
    }
  }
  return out;
}

}  // namespace

std::optional<std::size_t> CompressedProblem::column_for(
    const std::string& original_reaction_name) const {
  // Find the original row index.
  std::size_t row = original_reaction_names.size();
  for (std::size_t r = 0; r < original_reaction_names.size(); ++r) {
    if (original_reaction_names[r] == original_reaction_name) {
      row = r;
      break;
    }
  }
  ELMO_REQUIRE(row < original_reaction_names.size(),
               "unknown original reaction: " + original_reaction_name);
  // The reconstruction row has at most one nonzero (each original reaction
  // is a multiple of exactly one representative, or identically zero).
  std::optional<std::size_t> column;
  for (std::size_t j = 0; j < reconstruction.cols(); ++j) {
    if (!reconstruction(row, j).is_zero()) {
      ELMO_CHECK(!column.has_value(),
                 "reaction " + original_reaction_name +
                     " depends on multiple reduced columns");
      column = j;
    }
  }
  return column;
}

std::vector<BigInt> CompressedProblem::expand(
    const std::vector<BigInt>& reduced_flux) const {
  ELMO_REQUIRE(reduced_flux.size() == reconstruction.cols(),
               "expand: flux dimension mismatch");
  std::vector<BigRational> original(reconstruction.rows());
  for (std::size_t r = 0; r < reconstruction.rows(); ++r) {
    BigRational acc;
    for (std::size_t j = 0; j < reconstruction.cols(); ++j) {
      if (!reconstruction(r, j).is_zero() && !reduced_flux[j].is_zero())
        acc += reconstruction(r, j) * BigRational(reduced_flux[j]);
    }
    original[r] = std::move(acc);
  }
  return to_primitive_integer(original);
}

CompressedProblem compress(const Network& network,
                           const CompressionOptions& options) {
  WorkState w;
  const auto internals = network.internal_metabolites();
  auto n_int = network.stoichiometry<BigInt>();
  w.n = Matrix<BigRational>(n_int.rows(), n_int.cols());
  for (std::size_t i = 0; i < n_int.rows(); ++i)
    for (std::size_t j = 0; j < n_int.cols(); ++j)
      w.n(i, j) = BigRational(n_int(i, j));
  w.reversible = network.reversibility();
  for (const auto& reaction : network.reactions())
    w.names.push_back(reaction.name);
  for (auto met : internals) w.mets.push_back(network.metabolite(met).name);
  w.recon = Matrix<BigRational>(network.num_reactions(),
                                network.num_reactions());
  for (std::size_t j = 0; j < network.num_reactions(); ++j)
    w.recon(j, j) = BigRational(BigInt(1));

  bool changed = true;
  while (changed) {
    changed = false;
    if (options.remove_forced_zero && sweep_forced_zero(w)) changed = true;
    if (options.couple_two_reaction_metabolites && sweep_coupling(w))
      changed = true;
    // Only fall back to the (more expensive) kernel sweep once the cheap
    // structural sweeps have converged.
    if (!changed && options.kernel_coupling && sweep_kernel_coupling(w))
      changed = true;
  }
  if (options.drop_redundant_rows) drop_redundant_rows(w);

  CompressedProblem out = finalize(std::move(w));
  out.original_reaction_names.reserve(network.num_reactions());
  for (const auto& reaction : network.reactions())
    out.original_reaction_names.push_back(reaction.name);
  out.original_reversible = network.reversibility();
  return out;
}

CompressedProblem no_compression(const Network& network) {
  CompressionOptions off;
  off.remove_forced_zero = false;
  off.couple_two_reaction_metabolites = false;
  off.kernel_coupling = false;
  off.drop_redundant_rows = false;
  return compress(network, off);
}

}  // namespace elmo
