// Algorithm 3 (combined divide-and-conquer x combinatorial parallel)
// validation: the paper's §III.A worked example, disjointness of subsets,
// exact agreement with Algorithm 1, and adaptive re-splitting under a
// memory budget.
#include "core/combined.hpp"

#include <gtest/gtest.h>

#include "compress/compression.hpp"
#include "efm_test_util.hpp"
#include "models/random_network.hpp"
#include "models/toy.hpp"
#include "nullspace/efm.hpp"

namespace elmo {
namespace {

CombinedOptions toy_partition_r6r_r8r() {
  CombinedOptions options;
  options.partition_reactions = {"r6r", "r8r"};
  options.num_ranks = 2;
  return options;
}

TEST(CombinedSolver, ToyPartitionMatchesPaperSectionIIIA) {
  // §III.A partitions the toy network across {r6r, r8r}: each of the four
  // zero/nonzero patterns holds exactly two EFMs.
  Network net = models::toy_network();
  auto compressed = compress(net);
  auto problem = to_problem<CheckedI64>(compressed);
  auto result = solve_combined<CheckedI64, Bitset64>(
      problem, toy_partition_r6r_r8r());

  ASSERT_EQ(result.subsets.size(), 4u);
  for (const auto& subset : result.subsets)
    EXPECT_EQ(subset.num_efms, 2u) << subset.label;
  EXPECT_EQ(result.columns.size(), 8u);
}

TEST(CombinedSolver, ToyUnionEqualsSerialResult) {
  Network net = models::toy_network();
  auto compressed = compress(net);
  auto problem = to_problem<CheckedI64>(compressed);
  auto serial = expand_and_canonicalize(
      solve_efms<CheckedI64, Bitset64>(problem).columns, compressed, net);
  auto combined = solve_combined<CheckedI64, Bitset64>(
      problem, toy_partition_r6r_r8r());
  EXPECT_EQ(expand_and_canonicalize(combined.columns, compressed, net),
            serial);
  // Matches the paper's Eq (7) as well.
  EXPECT_EQ(expand_and_canonicalize(combined.columns, compressed, net),
            canonical_modes_from_i64(models::toy_efms_paper(),
                                     net.reversibility()));
}

TEST(CombinedSolver, SubsetsAreDisjoint) {
  Network net = models::toy_network();
  auto compressed = compress(net);
  auto problem = to_problem<CheckedI64>(compressed);
  auto result = solve_combined<CheckedI64, Bitset64>(
      problem, toy_partition_r6r_r8r());
  // Union size equals the sum of subset sizes: no EFM in two subsets.
  std::size_t sum = 0;
  for (const auto& subset : result.subsets) sum += subset.num_efms;
  EXPECT_EQ(sum, result.columns.size());
}

TEST(CombinedSolver, SinglePartitionReaction) {
  Network net = models::toy_network();
  auto compressed = compress(net);
  auto problem = to_problem<CheckedI64>(compressed);
  CombinedOptions options;
  options.partition_reactions = {"r8r"};
  options.num_ranks = 1;
  auto result = solve_combined<CheckedI64, Bitset64>(problem, options);
  ASSERT_EQ(result.subsets.size(), 2u);
  // r8r == 0 in 4 of the paper's 8 modes (columns 5-8 of Eq (7)).
  EXPECT_EQ(result.subsets[0].num_efms + result.subsets[1].num_efms, 8u);
  EXPECT_EQ(result.columns.size(), 8u);
}

TEST(CombinedSolver, AutomaticPartitionSelection) {
  Network net = models::toy_network();
  auto compressed = compress(net);
  auto problem = to_problem<CheckedI64>(compressed);
  auto serial = expand_and_canonicalize(
      solve_efms<CheckedI64, Bitset64>(problem).columns, compressed, net);
  CombinedOptions options;
  options.qsub = 2;  // auto-select the two trailing reversible reactions
  options.num_ranks = 2;
  auto result = solve_combined<CheckedI64, Bitset64>(problem, options);
  EXPECT_EQ(result.subsets.size(), 4u);
  EXPECT_EQ(expand_and_canonicalize(result.columns, compressed, net),
            serial);
}

TEST(CombinedSolver, IrreversiblePartitionReactionRejected) {
  Network net = models::toy_network();
  auto compressed = compress(net);
  auto problem = to_problem<CheckedI64>(compressed);
  CombinedOptions options;
  options.partition_reactions = {"r2"};  // irreversible
  EXPECT_THROW((solve_combined<CheckedI64, Bitset64>(problem, options)),
               InvalidArgumentError);
}

TEST(CombinedSolver, CandidateCountDropsVersusUnsplit) {
  // §IV.A: divide-and-conquer usually lowers the cumulative number of
  // intermediate candidates (159.6e9 -> 81.7e9 on Network I).  The toy
  // network is too small to show it meaningfully, so use a random network
  // large enough to have real candidate traffic and check the counter
  // plumbing: the combined run reports its cumulative pairs and they are
  // comparable to (not wildly above) the serial count.
  models::RandomNetworkSpec spec;
  spec.seed = 5;
  spec.num_metabolites = 8;
  spec.num_extra_reactions = 6;
  spec.num_exchanges = 4;
  Network net = models::random_network(spec);
  auto compressed = compress(net);
  auto problem = to_problem<CheckedI64>(compressed);
  auto serial = solve_efms<CheckedI64, Bitset64>(problem);

  CombinedOptions options;
  options.qsub = 1;
  options.num_ranks = 1;
  auto combined = solve_combined<CheckedI64, Bitset64>(problem, options);
  EXPECT_EQ(expand_and_canonicalize(combined.columns, compressed, net),
            expand_and_canonicalize(serial.columns, compressed, net));
  EXPECT_GT(combined.total.total_pairs_probed, 0u);
}

TEST(CombinedSolver, RandomNetworksAgreeWithSerial) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    models::RandomNetworkSpec spec;
    spec.seed = seed * 13 + 1;
    spec.num_metabolites = 5 + seed % 3;
    spec.num_extra_reactions = 4;
    spec.num_exchanges = 3;
    spec.reversible_probability = 0.5;  // ensure partition candidates exist
    Network net = models::random_network(spec);
    auto compressed = compress(net);
    auto problem = to_problem<CheckedI64>(compressed);

    // Count trailing reversible reactions; skip networks without any.
    std::size_t reversible = 0;
    for (bool r : problem.reversible) reversible += r ? 1 : 0;
    if (reversible < 1) continue;

    auto serial = expand_and_canonicalize(
        solve_efms<CheckedI64, Bitset64>(problem).columns, compressed, net);
    CombinedOptions options;
    options.num_ranks = 2;
    options.qsub = 1;
    try {
      auto combined = solve_combined<CheckedI64, Bitset64>(problem, options);
      EXPECT_EQ(expand_and_canonicalize(combined.columns, compressed, net),
                serial)
          << "seed " << spec.seed;
    } catch (const InvalidArgumentError&) {
      // Network had no trailing reversible reaction to partition on.
    }
  }
}

TEST(CombinedSolver, AdaptiveResplitUnderMemoryBudget) {
  // Force a budget small enough that unsplit subsets fail but fine ones
  // succeed; with re-splitting enabled the run must complete and agree.
  models::RandomNetworkSpec spec;
  spec.seed = 8;
  spec.num_metabolites = 7;
  spec.num_extra_reactions = 5;
  spec.num_exchanges = 4;
  spec.reversible_probability = 0.6;
  Network net = models::random_network(spec);
  auto compressed = compress(net);
  auto problem = to_problem<CheckedI64>(compressed);
  auto serial = solve_efms<CheckedI64, Bitset64>(problem);
  auto serial_modes =
      expand_and_canonicalize(serial.columns, compressed, net);

  // A budget below the serial peak but above what fine subsets need.
  CombinedOptions options;
  options.qsub = 1;
  options.num_ranks = 1;
  options.memory_budget_per_rank = serial.stats.peak_matrix_bytes * 9 / 10;
  options.max_extra_splits = 3;
  auto combined = solve_combined<CheckedI64, Bitset64>(problem, options);
  EXPECT_EQ(expand_and_canonicalize(combined.columns, compressed, net),
            serial_modes);
  // Without re-splitting the same budget must fail (sanity check that the
  // budget actually binds) OR already fit; only assert when it binds.
  bool resplit_happened = false;
  for (const auto& subset : combined.subsets)
    resplit_happened = resplit_happened || subset.extra_splits > 0;
  if (resplit_happened) {
    CombinedOptions no_resplit = options;
    no_resplit.max_extra_splits = 0;
    EXPECT_THROW(
        (solve_combined<CheckedI64, Bitset64>(problem, no_resplit)),
        MemoryBudgetError);
  }
}

}  // namespace
}  // namespace elmo
