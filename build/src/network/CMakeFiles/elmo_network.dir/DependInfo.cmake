
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/network/network.cpp" "src/network/CMakeFiles/elmo_network.dir/network.cpp.o" "gcc" "src/network/CMakeFiles/elmo_network.dir/network.cpp.o.d"
  "/root/repo/src/network/parser.cpp" "src/network/CMakeFiles/elmo_network.dir/parser.cpp.o" "gcc" "src/network/CMakeFiles/elmo_network.dir/parser.cpp.o.d"
  "/root/repo/src/network/validate.cpp" "src/network/CMakeFiles/elmo_network.dir/validate.cpp.o" "gcc" "src/network/CMakeFiles/elmo_network.dir/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bigint/CMakeFiles/elmo_bigint.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
