// Selection of the divide-and-conquer partition reactions.
//
// The paper selects the LAST reactions of the reordered nullspace matrix
// (necessarily reversible, since the ordering heuristic puts reversible
// rows last) — {R89r, R74r} for Network I, {R54r, R90r, R60r} for Network
// II — and notes (§IV.C) that an automated selection strategy is open
// future work.  select_partition_rows implements the paper's manual rule;
// rank_partition_candidates implements a simple automated scorer for the
// ablation bench (see core/estimate.hpp for the cost estimator it uses).
#pragma once

#include <algorithm>
#include <vector>

#include "bitset/dynbitset.hpp"
#include "nullspace/initial_basis.hpp"
#include "nullspace/problem.hpp"
#include "nullspace/reversible_split.hpp"
#include "support/assert.hpp"

namespace elmo {

/// The last processed rows of the reordered nullspace matrix (the paper's
/// choice), at most `count` of them — stops early when the trailing
/// reversible rows run out.  Partitioning requires sign-free rows.
template <typename Scalar>
std::vector<std::size_t> select_partition_rows_up_to(
    const EfmProblem<Scalar>& problem, const OrderingOptions& ordering,
    std::size_t count) {
  // The basis construction is cheap relative to any solve; recompute it.
  // The support representation is irrelevant here — only the processing
  // order is consumed — so the size-agnostic DynBitset is used.
  auto prepared = prepare_problem(problem);
  auto basis =
      compute_initial_basis<Scalar, DynBitset>(prepared.problem, ordering);
  std::vector<std::size_t> rows;
  for (auto it = basis.processing_order.rbegin();
       it != basis.processing_order.rend() && rows.size() < count; ++it) {
    // Only rows of the ORIGINAL problem (not split backward copies) and
    // only reversible ones qualify.
    if (*it >= prepared.original_reactions) continue;
    if (!problem.reversible[*it]) break;  // ran out of trailing reversibles
    rows.push_back(*it);
  }
  // Reverse so rows[0] is the outermost (least significant bit), matching
  // the paper's R60r-corresponds-to-the-last-row convention.
  std::reverse(rows.begin(), rows.end());
  return rows;
}

/// Exactly `count` trailing reversible rows.  Throws InvalidArgumentError
/// if the network cannot supply them.
template <typename Scalar>
std::vector<std::size_t> select_partition_rows(
    const EfmProblem<Scalar>& problem, const OrderingOptions& ordering,
    std::size_t count) {
  auto rows = select_partition_rows_up_to(problem, ordering, count);
  ELMO_REQUIRE(rows.size() == count,
               "network does not have enough trailing reversible reactions "
               "for the requested partition size");
  return rows;
}

}  // namespace elmo
