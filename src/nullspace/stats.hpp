// Counters collected by the Nullspace Algorithm.
//
// `pairs_probed` is the paper's "# candidate modes": every positive/negative
// column pair examined in GenerateEFMCands counts, including pairs rejected
// by the cheap support-cardinality pre-test.  (Tables II-IV report this
// number, and §IV.A observes computation time is proportional to it.)
#pragma once

#include <cstdint>

#include "support/timer.hpp"

namespace elmo {

struct IterationStats {
  std::size_t row = 0;                 // reduced row index processed
  std::uint64_t positives = 0;         // columns with positive entry
  std::uint64_t negatives = 0;         // columns with negative entry
  std::uint64_t pairs_probed = 0;      // = positives * negatives
  std::uint64_t pretest_survivors = 0; // pairs past the cardinality test
  std::uint64_t duplicates_removed = 0;
  std::uint64_t rank_tests = 0;
  std::uint64_t accepted = 0;
  std::uint64_t columns_after = 0;     // matrix width entering next iter
};

struct SolveStats {
  std::uint64_t total_pairs_probed = 0;
  std::uint64_t total_pretest_survivors = 0;
  std::uint64_t total_rank_tests = 0;
  std::uint64_t total_accepted = 0;
  std::uint64_t total_duplicates_removed = 0;
  std::uint64_t peak_columns = 0;
  std::size_t iterations = 0;
  /// Largest per-column storage snapshot observed (bytes), for the memory
  /// scalability analysis of §IV.B.
  std::size_t peak_matrix_bytes = 0;
  /// True if the CheckedI64 kernel overflowed and the solve was redone with
  /// BigInt.
  bool bigint_fallback = false;
  /// Phase timings: "gen cand", "rank test", "communicate", "merge" — the
  /// rows of Tables II and III.
  PhaseTimer phases;

  void absorb(const IterationStats& it) {
    total_pairs_probed += it.pairs_probed;
    total_pretest_survivors += it.pretest_survivors;
    total_rank_tests += it.rank_tests;
    total_accepted += it.accepted;
    total_duplicates_removed += it.duplicates_removed;
    peak_columns = std::max<std::uint64_t>(peak_columns, it.columns_after);
    ++iterations;
  }

  /// Combine subproblem stats (divide-and-conquer aggregation).
  void merge(const SolveStats& other) {
    total_pairs_probed += other.total_pairs_probed;
    total_pretest_survivors += other.total_pretest_survivors;
    total_rank_tests += other.total_rank_tests;
    total_accepted += other.total_accepted;
    total_duplicates_removed += other.total_duplicates_removed;
    peak_columns = std::max(peak_columns, other.peak_columns);
    peak_matrix_bytes = std::max(peak_matrix_bytes, other.peak_matrix_bytes);
    iterations += other.iterations;
    bigint_fallback = bigint_fallback || other.bigint_fallback;
    phases.merge(other.phases);
  }
};

}  // namespace elmo
