// Layer-3 public API header.
#pragma once

struct ApiThing {
  int id = 0;
};
