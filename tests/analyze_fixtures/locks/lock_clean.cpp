// Clean counterpart: consistent order, blocking only after release, and
// the condition-variable wait exemption (the guard is an argument).
#include <condition_variable>
#include <mutex>

std::mutex order_a;
std::mutex order_b;
std::condition_variable ready_cv;
long recv(int source);

void consistent_one() {
  std::lock_guard<std::mutex> guard_a(order_a);
  std::lock_guard<std::mutex> guard_b(order_b);
}

void consistent_two() {
  std::lock_guard<std::mutex> guard_a(order_a);
  std::lock_guard<std::mutex> guard_b(order_b);
}

long block_after_release() {
  {
    std::lock_guard<std::mutex> guard_a(order_a);
  }
  return recv(1);
}

void wait_with_guard() {
  std::unique_lock<std::mutex> held(order_a);
  ready_cv.wait(held);
}
