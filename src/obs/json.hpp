// Minimal JSON document model: build, serialise, parse.
//
// The observability layer emits three kinds of JSON artefacts — Chrome
// trace_event files, metrics snapshots, and per-solve run reports — and the
// test suite parses them back to assert well-formedness.  A dependency-free
// ~300-line DOM covers both directions; it is NOT a general-purpose JSON
// library (no surrogate-pair decoding on input, no comments, no trailing
// commas) but accepts everything this repo writes and rejects malformed
// input with a position-carrying error message.
//
// Numbers: unsigned/signed 64-bit integers are preserved exactly (candidate
// pair counts exceed 2^53, where double would silently round); everything
// else is double.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace elmo::obs {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kInt, kUint, kDouble, kString, kArray,
                    kObject };

  using Array = std::vector<JsonValue>;
  /// Insertion-ordered object: reports read better when keys keep the
  /// order they were written in (totals first, details last).
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() : kind_(Kind::kNull) {}
  JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}
  JsonValue(std::int64_t v) : kind_(Kind::kInt), int_(v) {}
  JsonValue(std::uint64_t v) : kind_(Kind::kUint), uint_(v) {}
  JsonValue(int v) : kind_(Kind::kInt), int_(v) {}
  JsonValue(unsigned v) : kind_(Kind::kUint), uint_(v) {}
  JsonValue(double v) : kind_(Kind::kDouble), double_(v) {}
  JsonValue(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}
  JsonValue(const char* s) : kind_(Kind::kString), string_(s) {}

  static JsonValue array() {
    JsonValue v;
    v.kind_ = Kind::kArray;
    return v;
  }
  static JsonValue object() {
    JsonValue v;
    v.kind_ = Kind::kObject;
    return v;
  }

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_number() const {
    return kind_ == Kind::kInt || kind_ == Kind::kUint ||
           kind_ == Kind::kDouble;
  }

  [[nodiscard]] bool as_bool() const { return bool_; }
  [[nodiscard]] double as_double() const;
  [[nodiscard]] std::uint64_t as_uint() const;
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] const std::string& as_string() const { return string_; }
  [[nodiscard]] const Array& as_array() const { return array_; }
  [[nodiscard]] const Object& as_object() const { return object_; }

  /// Append to an array value (kind must be kArray).
  JsonValue& push_back(JsonValue v) {
    array_.push_back(std::move(v));
    return array_.back();
  }

  /// Set a key on an object value (kind must be kObject); replaces an
  /// existing key in place, preserving its position.
  JsonValue& set(const std::string& key, JsonValue v);

  /// Object member lookup; nullptr if absent or not an object.
  [[nodiscard]] const JsonValue* find(const std::string& key) const;

  /// Serialise.  `indent` < 0 renders compact single-line JSON; >= 0
  /// pretty-prints with that many spaces per level.
  [[nodiscard]] std::string dump(int indent = -1) const;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  double double_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Escape `text` for inclusion inside a JSON string literal (quotes not
/// included).  Shared with the streaming trace writer.
std::string json_escape(const std::string& text);

/// Parse a complete JSON document.  On failure returns a null value and
/// sets `*error` (when non-null) to a message with the byte offset.
JsonValue parse_json(const std::string& text, std::string* error = nullptr);

}  // namespace elmo::obs
