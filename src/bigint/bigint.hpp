// Arbitrary-precision signed integer.
//
// Sign-magnitude representation over 32-bit limbs (least significant limb
// first).  BigInt is the exact fallback scalar for the Nullspace Algorithm:
// fraction-free Gaussian elimination grows intermediate values beyond 64
// bits on networks with large stoichiometric coefficients (the yeast biomass
// reaction R70 has coefficients up to 40141).
//
// The implementation is self-contained (no GMP) because the reproduction
// environment is offline; schoolbook multiplication and Knuth Algorithm D
// division are sufficient for the value sizes arising in EFM computation
// (typically < 512 bits after gcd normalisation).
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace elmo {

class BigInt {
 public:
  /// Zero.
  BigInt() = default;

  /// Construct from a native signed integer.
  BigInt(std::int64_t value);  // NOLINT(google-explicit-constructor)

  /// Parse a base-10 integer with optional leading '-' or '+'.
  /// Throws ParseError on malformed input.
  static BigInt from_string(std::string_view text);

  /// True iff the value is zero.
  [[nodiscard]] bool is_zero() const { return limbs_.empty(); }

  /// -1, 0 or +1.
  [[nodiscard]] int sign() const {
    return limbs_.empty() ? 0 : (negative_ ? -1 : 1);
  }

  /// True iff the value fits in int64_t.
  [[nodiscard]] bool fits_i64() const;

  /// Convert to int64_t; throws OverflowError if out of range.
  [[nodiscard]] std::int64_t to_i64() const;

  /// Closest double (may lose precision for large magnitudes).
  [[nodiscard]] double to_double() const;

  /// Base-10 representation.
  [[nodiscard]] std::string to_string() const;

  /// Number of significant bits of the magnitude (0 for zero).
  [[nodiscard]] std::size_t bit_length() const;

  /// Bytes of heap storage used by the limb vector (memory accounting).
  [[nodiscard]] std::size_t storage_bytes() const {
    return limbs_.capacity() * sizeof(std::uint32_t);
  }

  [[nodiscard]] BigInt operator-() const;
  [[nodiscard]] BigInt abs() const;

  BigInt& operator+=(const BigInt& rhs);
  BigInt& operator-=(const BigInt& rhs);
  BigInt& operator*=(const BigInt& rhs);
  /// Truncated division (C semantics: quotient rounds toward zero).
  BigInt& operator/=(const BigInt& rhs);
  /// Remainder with the sign of the dividend (C semantics).
  BigInt& operator%=(const BigInt& rhs);

  friend BigInt operator+(BigInt lhs, const BigInt& rhs) { return lhs += rhs; }
  friend BigInt operator-(BigInt lhs, const BigInt& rhs) { return lhs -= rhs; }
  friend BigInt operator*(BigInt lhs, const BigInt& rhs) { return lhs *= rhs; }
  friend BigInt operator/(BigInt lhs, const BigInt& rhs) { return lhs /= rhs; }
  friend BigInt operator%(BigInt lhs, const BigInt& rhs) { return lhs %= rhs; }

  /// Quotient and remainder in one pass; remainder has the dividend's sign.
  /// Throws InvalidArgumentError on division by zero.
  static void divmod(const BigInt& dividend, const BigInt& divisor,
                     BigInt& quotient, BigInt& remainder);

  friend bool operator==(const BigInt& lhs, const BigInt& rhs) {
    return lhs.negative_ == rhs.negative_ && lhs.limbs_ == rhs.limbs_;
  }
  friend std::strong_ordering operator<=>(const BigInt& lhs,
                                          const BigInt& rhs);

  /// Greatest common divisor of |a| and |b|; gcd(0, 0) == 0.
  static BigInt gcd(const BigInt& a, const BigInt& b);

  /// Divide exactly, asserting there is no remainder (debug builds).
  /// Used by fraction-free elimination where divisibility is guaranteed.
  [[nodiscard]] BigInt exact_div(const BigInt& divisor) const;

  /// Append a length-prefixed little-endian encoding to `out`
  /// (message-passing serialisation).
  void serialize(std::vector<std::uint8_t>& out) const;

  /// Inverse of serialize(); advances `cursor`.  Throws ParseError on a
  /// truncated or malformed buffer.
  static BigInt deserialize(const std::uint8_t*& cursor,
                            const std::uint8_t* end);

 private:
  /// Compare magnitudes only: -1, 0, +1.
  static int compare_magnitude(const std::vector<std::uint32_t>& a,
                               const std::vector<std::uint32_t>& b);
  static void add_magnitude(std::vector<std::uint32_t>& acc,
                            const std::vector<std::uint32_t>& rhs);
  /// acc -= rhs, requires |acc| >= |rhs|.
  static void sub_magnitude(std::vector<std::uint32_t>& acc,
                            const std::vector<std::uint32_t>& rhs);
  static std::vector<std::uint32_t> mul_magnitude(
      const std::vector<std::uint32_t>& a,
      const std::vector<std::uint32_t>& b);
  /// Knuth Algorithm D on magnitudes; quotient/remainder are outputs.
  static void divmod_magnitude(const std::vector<std::uint32_t>& dividend,
                               const std::vector<std::uint32_t>& divisor,
                               std::vector<std::uint32_t>& quotient,
                               std::vector<std::uint32_t>& remainder);
  void trim();

  // Least-significant limb first; empty means zero (and negative_ is false).
  std::vector<std::uint32_t> limbs_;
  bool negative_ = false;
};

inline BigInt abs(const BigInt& value) { return value.abs(); }

}  // namespace elmo
