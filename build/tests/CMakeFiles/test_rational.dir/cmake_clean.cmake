file(REMOVE_RECURSE
  "CMakeFiles/test_rational.dir/test_rational.cpp.o"
  "CMakeFiles/test_rational.dir/test_rational.cpp.o.d"
  "test_rational"
  "test_rational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
