// Tests for exact elimination: RREF, Bareiss rank, nullspace basis.
#include "linalg/gauss.hpp"

#include <gtest/gtest.h>

#include "bigint/bigint.hpp"
#include "bigint/rational.hpp"
#include "linalg/scale.hpp"
#include "support/random.hpp"

namespace elmo {
namespace {

using RMat = Matrix<BigRational>;
using IMat = Matrix<CheckedI64>;

RMat rational_from_rows(
    std::initializer_list<std::initializer_list<std::int64_t>> rows) {
  auto ints = Matrix<BigInt>::from_rows(rows);
  RMat out(ints.rows(), ints.cols());
  for (std::size_t i = 0; i < ints.rows(); ++i)
    for (std::size_t j = 0; j < ints.cols(); ++j)
      out(i, j) = BigRational(ints(i, j));
  return out;
}

TEST(Rref, IdentityIsFixedPoint) {
  auto m = rational_from_rows({{1, 0}, {0, 1}});
  auto result = rref(m);
  EXPECT_EQ(result.rank(), 2u);
  EXPECT_EQ(m, rational_from_rows({{1, 0}, {0, 1}}));
}

TEST(Rref, ReducesAndRecordsPivots) {
  auto m = rational_from_rows({{2, 4, 6}, {1, 2, 4}});
  auto result = rref(m);
  EXPECT_EQ(result.rank(), 2u);
  EXPECT_EQ(result.pivot_cols, (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(m, rational_from_rows({{1, 2, 0}, {0, 0, 1}}));
}

TEST(Rref, RankDeficient) {
  auto m = rational_from_rows({{1, 2}, {2, 4}, {3, 6}});
  auto result = rref(m);
  EXPECT_EQ(result.rank(), 1u);
}

TEST(Rref, CustomColumnOrderChangesFreeVariables) {
  auto m = rational_from_rows({{1, 1, 1}});
  // Pivot preference: column 2 first, so columns 0 and 1 stay free.
  auto result = rref(m, {2, 0, 1});
  EXPECT_EQ(result.pivot_cols, (std::vector<std::size_t>{2}));
}

TEST(RankBareiss, KnownRanks) {
  EXPECT_EQ(rank_bareiss(IMat::from_rows({{1, 0}, {0, 1}})), 2u);
  EXPECT_EQ(rank_bareiss(IMat::from_rows({{1, 2}, {2, 4}})), 1u);
  EXPECT_EQ(rank_bareiss(IMat::from_rows({{0, 0}, {0, 0}})), 0u);
  EXPECT_EQ(rank_bareiss(IMat::from_rows({{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})),
            2u);
  // Wide and tall shapes.
  EXPECT_EQ(rank_bareiss(IMat::from_rows({{1, 2, 3, 4}})), 1u);
  EXPECT_EQ(rank_bareiss(IMat::from_rows({{1}, {2}, {3}})), 1u);
}

TEST(RankBareiss, NeedsColumnPivoting) {
  // Leading zero column forces the pivot search to skip columns.
  EXPECT_EQ(rank_bareiss(IMat::from_rows({{0, 1, 2}, {0, 2, 5}})), 2u);
}

TEST(RankBareiss, AgreesAcrossScalars) {
  Rng rng(11);
  for (int iter = 0; iter < 100; ++iter) {
    std::size_t rows = 1 + rng.below(6);
    std::size_t cols = 1 + rng.below(6);
    IMat mi(rows, cols);
    Matrix<BigInt> mb(rows, cols);
    Matrix<double> md(rows, cols);
    for (std::size_t i = 0; i < rows; ++i)
      for (std::size_t j = 0; j < cols; ++j) {
        std::int64_t v = rng.range(-4, 4);
        mi(i, j) = CheckedI64(v);
        mb(i, j) = BigInt(v);
        md(i, j) = static_cast<double>(v);
      }
    std::size_t ri = rank_bareiss(mi);
    EXPECT_EQ(ri, rank_bareiss(mb));
    EXPECT_EQ(ri, rank_bareiss(md));
  }
}

TEST(Nullity, MatchesColsMinusRank) {
  auto m = IMat::from_rows({{1, -1, 0}, {0, 1, -1}});
  EXPECT_EQ(nullity(m), 1u);
  auto wide = IMat::from_rows({{1, 1, 1, 1}});
  EXPECT_EQ(nullity(wide), 3u);
}

TEST(NullspaceBasis, SpansKernel) {
  // Kernel of [1 -1 0; 0 1 -1] is span{(1,1,1)}.
  auto m = rational_from_rows({{1, -1, 0}, {0, 1, -1}});
  auto [basis, free_cols] = nullspace_basis(m);
  ASSERT_EQ(basis.cols(), 1u);
  ASSERT_EQ(basis.rows(), 3u);
  EXPECT_EQ(free_cols.size(), 1u);
  // Verify m * basis == 0 and the free row carries the identity.
  for (std::size_t i = 0; i < m.rows(); ++i) {
    BigRational acc;
    for (std::size_t j = 0; j < m.cols(); ++j) acc += m(i, j) * basis(j, 0);
    EXPECT_TRUE(acc.is_zero());
  }
  EXPECT_EQ(basis(free_cols[0], 0), BigRational(BigInt(1)));
}

TEST(NullspaceBasis, IdentityBlockOnFreeRows) {
  auto m = rational_from_rows({{1, 2, 3, 4}, {0, 1, 2, 3}});
  auto [basis, free_cols] = nullspace_basis(m);
  ASSERT_EQ(basis.cols(), 2u);
  ASSERT_EQ(free_cols.size(), 2u);
  for (std::size_t k = 0; k < free_cols.size(); ++k)
    for (std::size_t l = 0; l < free_cols.size(); ++l)
      EXPECT_EQ(basis(free_cols[k], l),
                BigRational(BigInt(k == l ? 1 : 0)));
}

TEST(NullspaceBasis, RandomKernelProperty) {
  Rng rng(23);
  for (int iter = 0; iter < 60; ++iter) {
    std::size_t rows = 1 + rng.below(5);
    std::size_t cols = rows + 1 + rng.below(4);
    RMat m(rows, cols);
    for (std::size_t i = 0; i < rows; ++i)
      for (std::size_t j = 0; j < cols; ++j)
        m(i, j) = BigRational(BigInt(rng.range(-3, 3)));
    auto copy = m;
    auto [basis, free_cols] = nullspace_basis(m);
    auto rank = cols - basis.cols();
    RMat check = copy;
    EXPECT_EQ(rref(check).rank(), rank);
    // Every basis column is in the kernel.
    for (std::size_t c = 0; c < basis.cols(); ++c) {
      for (std::size_t i = 0; i < rows; ++i) {
        BigRational acc;
        for (std::size_t j = 0; j < cols; ++j)
          acc += copy(i, j) * basis(j, c);
        EXPECT_TRUE(acc.is_zero()) << "iter " << iter;
      }
    }
  }
}

TEST(Scale, ToPrimitiveInteger) {
  std::vector<BigRational> v = {BigRational::from_i64(1, 2),
                                BigRational::from_i64(-1, 3),
                                BigRational::from_i64(0)};
  auto ints = to_primitive_integer(v);
  EXPECT_EQ(ints[0], BigInt(3));
  EXPECT_EQ(ints[1], BigInt(-2));
  EXPECT_EQ(ints[2], BigInt(0));
}

TEST(Scale, MakePrimitive) {
  std::vector<CheckedI64> v = {CheckedI64(6), CheckedI64(-9), CheckedI64(0)};
  auto g = make_primitive(v);
  EXPECT_EQ(g.value(), 3);
  EXPECT_EQ(v[0].value(), 2);
  EXPECT_EQ(v[1].value(), -3);
  // Already primitive: no change.
  std::vector<CheckedI64> w = {CheckedI64(2), CheckedI64(3)};
  make_primitive(w);
  EXPECT_EQ(w[0].value(), 2);
}

TEST(Scale, MakePrimitiveDouble) {
  std::vector<double> v = {0.5, -2.0, 1.0};
  make_primitive(v);
  EXPECT_DOUBLE_EQ(v[1], -1.0);
  EXPECT_DOUBLE_EQ(v[0], 0.25);
}

}  // namespace
}  // namespace elmo
