// Middle layer: re-exports util transitively.
#pragma once

#include "support/util.hpp"

struct MiddleThing {
  UtilThing inner;
};
