#include "mpsim/communicator.hpp"

#include <exception>
#include <map>
#include <thread>

#include "support/assert.hpp"

namespace elmo::mpsim {

namespace detail {

/// Shared state of one simulated machine.  All blocking waits watch the
/// `aborted` flag so a failing rank can never deadlock its peers.
struct World {
  explicit World(int n, const RunOptions& opts) : size(n), options(opts) {
    mailboxes.resize(static_cast<std::size_t>(n));
    gather_slots.assign(static_cast<std::size_t>(n), {});
    reduce_slots.assign(static_cast<std::size_t>(n), 0);
  }

  const int size;
  const RunOptions options;

  std::mutex mutex;
  std::condition_variable cv;
  bool aborted = false;

  // Point-to-point: per-destination map keyed by (source, tag).
  struct Mailbox {
    std::map<std::pair<int, int>, std::deque<Payload>> queues;
  };
  std::vector<Mailbox> mailboxes;

  // Barrier (generation-counting).
  int barrier_waiting = 0;
  std::uint64_t barrier_generation = 0;

  // Collectives: slot per rank plus a two-phase barrier around them.
  std::vector<Payload> gather_slots;
  std::vector<std::uint64_t> reduce_slots;

  void abort_locked() {
    aborted = true;
    cv.notify_all();
  }
};

}  // namespace detail

Communicator::Communicator(detail::World& world, int rank)
    : world_(world), rank_(rank) {}

int Communicator::size() const { return world_.size; }

void Communicator::check_abort_locked(std::unique_lock<std::mutex>&) {
  if (world_.aborted) throw AbortedError();
}

void Communicator::send(int destination, int tag, Payload payload) {
  ELMO_REQUIRE(destination >= 0 && destination < world_.size,
               "send: bad destination rank");
  std::unique_lock lock(world_.mutex);
  check_abort_locked(lock);
  counters_.messages_sent += 1;
  counters_.bytes_sent += payload.size();
  world_.mailboxes[static_cast<std::size_t>(destination)]
      .queues[{rank_, tag}]
      .push_back(std::move(payload));
  world_.cv.notify_all();
}

Payload Communicator::recv(int source, int tag) {
  ELMO_REQUIRE(source >= 0 && source < world_.size, "recv: bad source rank");
  std::unique_lock lock(world_.mutex);
  auto& queues = world_.mailboxes[static_cast<std::size_t>(rank_)].queues;
  const auto key = std::make_pair(source, tag);
  world_.cv.wait(lock, [&] {
    auto it = queues.find(key);
    return world_.aborted || (it != queues.end() && !it->second.empty());
  });
  check_abort_locked(lock);
  auto& queue = queues[key];
  Payload payload = std::move(queue.front());
  queue.pop_front();
  return payload;
}

void Communicator::barrier() {
  std::unique_lock lock(world_.mutex);
  check_abort_locked(lock);
  ++counters_.collectives;
  const std::uint64_t generation = world_.barrier_generation;
  if (++world_.barrier_waiting == world_.size) {
    world_.barrier_waiting = 0;
    ++world_.barrier_generation;
    world_.cv.notify_all();
    return;
  }
  world_.cv.wait(lock, [&] {
    return world_.aborted || world_.barrier_generation != generation;
  });
  check_abort_locked(lock);
}

std::vector<Payload> Communicator::all_gather(Payload local) {
  {
    std::unique_lock lock(world_.mutex);
    check_abort_locked(lock);
    counters_.messages_sent += static_cast<std::uint64_t>(world_.size - 1);
    counters_.bytes_sent +=
        local.size() * static_cast<std::uint64_t>(world_.size - 1);
    world_.gather_slots[static_cast<std::size_t>(rank_)] = std::move(local);
  }
  barrier();  // everyone has published
  std::vector<Payload> result;
  {
    std::unique_lock lock(world_.mutex);
    check_abort_locked(lock);
    result = world_.gather_slots;  // copy: each rank owns its view
  }
  barrier();  // safe to overwrite slots in the next collective
  return result;
}

std::uint64_t Communicator::all_reduce_sum(std::uint64_t local) {
  {
    std::unique_lock lock(world_.mutex);
    check_abort_locked(lock);
    ++counters_.collectives;
    world_.reduce_slots[static_cast<std::size_t>(rank_)] = local;
  }
  barrier();
  std::uint64_t total = 0;
  {
    std::unique_lock lock(world_.mutex);
    check_abort_locked(lock);
    for (auto v : world_.reduce_slots) total += v;
  }
  barrier();
  return total;
}

std::uint64_t Communicator::all_reduce_max(std::uint64_t local) {
  {
    std::unique_lock lock(world_.mutex);
    check_abort_locked(lock);
    ++counters_.collectives;
    world_.reduce_slots[static_cast<std::size_t>(rank_)] = local;
  }
  barrier();
  std::uint64_t best = 0;
  {
    std::unique_lock lock(world_.mutex);
    check_abort_locked(lock);
    for (auto v : world_.reduce_slots) best = std::max(best, v);
  }
  barrier();
  return best;
}

void Communicator::set_memory_usage(std::size_t bytes) {
  counters_.memory_in_use = bytes;
  counters_.memory_peak = std::max(counters_.memory_peak, bytes);
  const std::size_t budget = world_.options.memory_budget_per_rank;
  if (budget != 0 && bytes > budget) {
    throw MemoryBudgetError(
        "rank " + std::to_string(rank_) + " exceeded its memory budget (" +
            std::to_string(bytes) + " > " + std::to_string(budget) + " bytes)",
        bytes, budget);
  }
}

std::size_t Communicator::memory_budget() const {
  return world_.options.memory_budget_per_rank;
}

RunReport run_ranks(int num_ranks,
                    const std::function<void(Communicator&)>& body,
                    const RunOptions& options) {
  ELMO_REQUIRE(num_ranks > 0, "run_ranks: need at least one rank");
  detail::World world(num_ranks, options);
  std::vector<Communicator> comms;
  comms.reserve(static_cast<std::size_t>(num_ranks));
  for (int r = 0; r < num_ranks; ++r) comms.emplace_back(world, r);

  std::vector<std::exception_ptr> errors(
      static_cast<std::size_t>(num_ranks));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(num_ranks));
  for (int r = 0; r < num_ranks; ++r) {
    threads.emplace_back([&, r] {
      try {
        body(comms[static_cast<std::size_t>(r)]);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        std::unique_lock lock(world.mutex);
        world.abort_locked();
      }
    });
  }
  for (auto& thread : threads) thread.join();

  // Rethrow the first real failure (skip secondary AbortedErrors).
  std::exception_ptr first;
  for (const auto& error : errors) {
    if (!error) continue;
    try {
      std::rethrow_exception(error);
    } catch (const AbortedError&) {
      if (!first) first = error;
    } catch (...) {
      first = error;
      break;
    }
  }
  if (first) std::rethrow_exception(first);

  RunReport report;
  report.ranks.reserve(comms.size());
  for (const auto& comm : comms) report.ranks.push_back(comm.counters());
  return report;
}

}  // namespace elmo::mpsim
