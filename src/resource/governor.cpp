#include "resource/governor.hpp"

#include <algorithm>

#include "obs/obs.hpp"
#include "support/error.hpp"

namespace elmo::resource {

const char* subsystem_name(Subsystem s) {
  switch (s) {
    case Subsystem::kMatrix:
      return "matrix";
    case Subsystem::kCandidates:
      return "candidates";
    case Subsystem::kCheckpoint:
      return "checkpoint";
    default:
      return "unknown";
  }
}

MemoryGovernor& MemoryGovernor::global() {
  static MemoryGovernor instance;
  return instance;
}

void MemoryGovernor::set_limit(std::size_t bytes) {
  limit_.store(bytes, std::memory_order_relaxed);
  if constexpr (obs::kObsCompiledIn) {
    obs::Registry::global().gauge("resource.mem_limit_bytes").set(bytes);
  }
}

std::size_t MemoryGovernor::usage() const {
  std::size_t total = 0;
  for (const auto& u : usage_) total += u.load(std::memory_order_relaxed);
  return total;
}

Admission MemoryGovernor::admit(std::size_t projected_bytes) const {
  const std::size_t lim = limit();
  if (lim == 0) return Admission::kProceed;
  const std::size_t resident = usage();
  if (resident >= lim) return Admission::kReject;
  // Spill early: once the resident charge passes the half-limit watermark,
  // or the projected transient would cross the limit, candidate blocks go
  // out-of-core instead of gambling on the explosion staying small.
  if (resident + projected_bytes > lim || resident > lim / 2)
    return Admission::kSpill;
  return Admission::kProceed;
}

void MemoryGovernor::enforce_resident(const std::string& context) const {
  const std::size_t lim = limit();
  if (lim == 0) return;
  const std::size_t resident = usage();
  if (resident > lim) {
    throw ResourceError(context + ": resident memory charge " +
                            std::to_string(resident) +
                            " B exceeds --mem-limit " + std::to_string(lim) +
                            " B (matrix " +
                            std::to_string(usage(Subsystem::kMatrix)) +
                            " B cannot spill; re-split the subset)",
                        resident, lim);
  }
}

void MemoryGovernor::note_spill(std::uint64_t bytes) {
  spill_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  spill_blocks_.fetch_add(1, std::memory_order_relaxed);
  if constexpr (obs::kObsCompiledIn) {
    static const obs::Counter spilled =
        obs::Registry::global().counter("resource.spill_bytes");
    static const obs::Counter blocks =
        obs::Registry::global().counter("resource.spill_blocks");
    spilled.add(bytes);
    blocks.add(1);
  }
}

void MemoryGovernor::adjust(Subsystem s, std::ptrdiff_t delta) {
  auto& slot = usage_[static_cast<int>(s)];
  if (delta >= 0) {
    slot.fetch_add(static_cast<std::size_t>(delta),
                   std::memory_order_relaxed);
  } else {
    slot.fetch_sub(static_cast<std::size_t>(-delta),
                   std::memory_order_relaxed);
  }
  const std::size_t total = usage();
  std::size_t prev = peak_.load(std::memory_order_relaxed);
  while (total > prev &&
         !peak_.compare_exchange_weak(prev, total, std::memory_order_relaxed))
    ;
  publish_gauges();
}

void MemoryGovernor::publish_gauges() const {
  if constexpr (obs::kObsCompiledIn) {
    auto& registry = obs::Registry::global();
    static const obs::Gauge total = registry.gauge("resource.mem_usage_bytes");
    static const obs::Gauge peak = registry.gauge("resource.mem_peak_bytes");
    static const obs::Gauge matrix =
        registry.gauge("resource.mem_matrix_bytes");
    static const obs::Gauge candidates =
        registry.gauge("resource.mem_candidate_bytes");
    total.set(usage());
    peak.set(peak_usage());
    matrix.set(usage(Subsystem::kMatrix));
    candidates.set(usage(Subsystem::kCandidates));
  }
}

void MemoryGovernor::reset() {
  limit_.store(0, std::memory_order_relaxed);
  for (auto& u : usage_) u.store(0, std::memory_order_relaxed);
  peak_.store(0, std::memory_order_relaxed);
  spill_bytes_.store(0, std::memory_order_relaxed);
  spill_blocks_.store(0, std::memory_order_relaxed);
}

}  // namespace elmo::resource
