#include "obs/trace.hpp"

#include <cstdio>
#include <stdexcept>

#include "obs/json.hpp"

namespace elmo::obs {

namespace detail {

std::atomic<TraceRecorder*>& trace_slot() {
  static std::atomic<TraceRecorder*> slot{nullptr};
  return slot;
}

std::uint32_t current_tid() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t tid =
      next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

}  // namespace detail

void install_trace(TraceRecorder* recorder) {
  detail::trace_slot().store(recorder, std::memory_order_release);
}

void TraceRecorder::record_complete(std::string name, const char* category,
                                    double ts_us, double dur_us,
                                    std::string detail) {
  TraceEvent event;
  event.name = std::move(name);
  event.category = category;
  event.phase = 'X';
  event.tid = detail::current_tid();
  event.ts_us = ts_us;
  event.dur_us = dur_us;
  event.detail = std::move(detail);
  std::lock_guard lock(mutex_);
  events_.push_back(std::move(event));
}

void TraceRecorder::record_instant(std::string name, const char* category,
                                   std::string detail) {
  TraceEvent event;
  event.name = std::move(name);
  event.category = category;
  event.phase = 'i';
  event.tid = detail::current_tid();
  event.ts_us = now_us();
  event.detail = std::move(detail);
  std::lock_guard lock(mutex_);
  events_.push_back(std::move(event));
}

void TraceRecorder::record_counter(std::string name, std::uint64_t value) {
  TraceEvent event;
  event.name = std::move(name);
  event.category = "counter";
  event.phase = 'C';
  event.tid = detail::current_tid();
  event.ts_us = now_us();
  event.value = value;
  std::lock_guard lock(mutex_);
  events_.push_back(std::move(event));
}

void TraceRecorder::record_flow(std::string name, const char* category,
                                char phase, std::uint64_t id,
                                std::string detail) {
  TraceEvent event;
  event.name = std::move(name);
  event.category = category;
  event.phase = phase;
  event.tid = detail::current_tid();
  event.ts_us = now_us();
  event.id = id;
  event.detail = std::move(detail);
  std::lock_guard lock(mutex_);
  events_.push_back(std::move(event));
}

void TraceRecorder::set_thread_name(std::string name) {
  const std::uint32_t tid = detail::current_tid();
  std::lock_guard lock(mutex_);
  thread_names_[tid] = std::move(name);
}

std::size_t TraceRecorder::event_count() const {
  std::lock_guard lock(mutex_);
  return events_.size();
}

std::vector<TraceEvent> TraceRecorder::snapshot_events() const {
  std::lock_guard lock(mutex_);
  return events_;
}

std::map<std::uint32_t, std::string> TraceRecorder::thread_names() const {
  std::lock_guard lock(mutex_);
  return thread_names_;
}

std::string TraceRecorder::to_json() const {
  std::lock_guard lock(mutex_);
  std::string out;
  out.reserve(events_.size() * 96 + 256);
  out += "{\"traceEvents\":[";
  bool first = true;
  char buffer[64];
  auto append_ts = [&](const char* key, double us) {
    std::snprintf(buffer, sizeof buffer, ",\"%s\":%.3f", key, us);
    out += buffer;
  };
  // Thread-name metadata first, so viewers label tracks before events.
  for (const auto& [tid, name] : thread_names_) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":";
    out += std::to_string(tid);
    out += ",\"args\":{\"name\":\"";
    out += json_escape(name);
    out += "\"}}";
  }
  for (const auto& event : events_) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    out += json_escape(event.name);
    out += "\",\"cat\":\"";
    out += event.category;
    out += "\",\"ph\":\"";
    out.push_back(event.phase);
    out += "\",\"pid\":1,\"tid\":";
    out += std::to_string(event.tid);
    append_ts("ts", event.ts_us);
    if (event.phase == 'X') append_ts("dur", event.dur_us);
    if (event.phase == 'i') out += ",\"s\":\"t\"";
    if (event.phase == 's' || event.phase == 'f') {
      out += ",\"id\":";
      out += std::to_string(event.id);
      // bp:"e" binds the finish to the enclosing slice, so the arrow lands
      // on the recv span rather than the next slice on the track.
      if (event.phase == 'f') out += ",\"bp\":\"e\"";
    }
    if (event.phase == 'C') {
      out += ",\"args\":{\"value\":";
      out += std::to_string(event.value);
      out += "}";
    } else if (!event.detail.empty()) {
      out += ",\"args\":{\"detail\":\"";
      out += json_escape(event.detail);
      out += "\"}";
    }
    out += "}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

void TraceRecorder::write(const std::string& path) const {
  const std::string json = to_json();
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr)
    throw std::runtime_error("cannot open trace output file: " + path);
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), file);
  const bool ok = written == json.size() && std::fclose(file) == 0;
  if (!ok) throw std::runtime_error("failed writing trace file: " + path);
}

void set_current_thread_name(const std::string& name) {
  if (TraceRecorder* recorder = trace()) recorder->set_thread_name(name);
}

void trace_instant(const char* name, const char* category,
                   std::string detail) {
  if (TraceRecorder* recorder = trace())
    recorder->record_instant(name, category, std::move(detail));
}

void trace_counter(const char* name, std::uint64_t value) {
  if (TraceRecorder* recorder = trace())
    recorder->record_counter(name, value);
}

}  // namespace elmo::obs
