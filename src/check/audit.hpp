// InvariantAuditor: machine-checked algebraic invariants of the Nullspace
// Algorithm, verified at runtime when auditing is requested
// (elmo_cli --audit, SolverOptions::audit, or any caller constructing one).
//
// The paper states the invariants; the solvers assume them.  The auditor
// re-derives each one from first principles against the live data:
//
//   nullspace-product    S · R = 0 for every column of every intermediate
//                        nullspace matrix (paper §II.A: columns stay in
//                        null(S) under convex combination).
//   rank-nullity         every accepted candidate's support submatrix has
//                        nullity exactly 1 (Algorithm 1's rank test),
//                        re-verified with the exact Bareiss backend.
//   support-minimality   the final column set is an antichain under strict
//                        support inclusion (elementarity = support
//                        minimality; equal supports are mirror modes).
//   subset-partition     the 2^qsub zero/nonzero patterns of Algorithm 3
//                        (plus adaptive re-splits) are bitwise disjoint and
//                        cover the pattern space exactly (Proposition 1's
//                        premise).
//   proposition-1        every column a subset reports has nonzero flux on
//                        all its nonzero-pattern rows and zero flux on all
//                        removed rows.
//   pair-conservation    per iteration, the rank-local pairs_probed sum
//                        across the mpsim world equals the global
//                        positives x negatives count (slices partition the
//                        pair set; nothing is lost in the merges).
//
// A failed check throws ContractViolation with an "audit[<class>]" prefix
// and enough context to locate the corruption.  All checks tally into the
// process-global AuditLedger so drivers can report how much was verified.
//
// Cost: audit mode is O(columns x m x q) extra per iteration — fine for the
// toy/validation networks it is meant for, and strictly opt-in.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bigint/bigint.hpp"
#include "check/contracts.hpp"
#include "linalg/matrix.hpp"
#include "nullspace/flux_column.hpp"
#include "nullspace/rank_test.hpp"

namespace elmo::check {

/// Snapshot of the process-global audit tally.
struct AuditStats {
  std::uint64_t nullspace_products = 0;
  std::uint64_t rank_nullity_checks = 0;
  std::uint64_t minimality_checks = 0;
  std::uint64_t partition_checks = 0;
  std::uint64_t proposition1_checks = 0;
  std::uint64_t pair_conservation_checks = 0;
  std::uint64_t failures = 0;

  [[nodiscard]] std::uint64_t total_checks() const {
    return nullspace_products + rank_nullity_checks + minimality_checks +
           partition_checks + proposition1_checks + pair_conservation_checks;
  }
};

/// Process-global, thread-safe tally of audit checks (parallel ranks audit
/// concurrently).  Reset between runs by tests/drivers that want per-run
/// numbers.
class AuditLedger {
 public:
  static AuditLedger& global();

  void add_nullspace_products(std::uint64_t n);
  void add_rank_nullity_checks(std::uint64_t n);
  void add_minimality_checks(std::uint64_t n);
  void add_partition_checks(std::uint64_t n);
  void add_proposition1_checks(std::uint64_t n);
  void add_pair_conservation_checks(std::uint64_t n);
  void add_failure();

  [[nodiscard]] AuditStats snapshot() const;
  void reset();

 private:
  struct Impl;
  AuditLedger();
  Impl* impl_;
};

/// Record the failure in the ledger and throw ContractViolation with the
/// canonical "audit[<invariant>]: <detail>" diagnostic.
[[noreturn]] void audit_failed(const char* invariant,
                               const std::string& detail);

/// One subset pattern of the combined driver: (reduced row, must-be-nonzero)
/// pairs, as executed (including adaptive extra splits).
using SubsetPattern = std::vector<std::pair<std::size_t, bool>>;

/// Verify the executed subset patterns are pairwise bitwise-disjoint and
/// cover the zero/nonzero pattern space exactly (every EFM falls in exactly
/// one subset).  `labels[i]` names pattern i in diagnostics (may be empty).
void check_subset_partition(const std::vector<SubsetPattern>& patterns,
                            const std::vector<std::string>& labels);

namespace detail {

/// S · column, redone in BigInt on CheckedI64 overflow (the audit must not
/// abort a run the kernel itself would survive).
template <typename Scalar>
std::vector<BigInt> exact_product(const Matrix<Scalar>& stoichiometry,
                                  const std::vector<Scalar>& values) {
  Matrix<BigInt> wide(stoichiometry.rows(), stoichiometry.cols());
  for (std::size_t i = 0; i < stoichiometry.rows(); ++i)
    for (std::size_t j = 0; j < stoichiometry.cols(); ++j)
      wide(i, j) = elmo::detail::to_bigint(stoichiometry(i, j));
  std::vector<BigInt> x;
  x.reserve(values.size());
  for (const auto& v : values) x.push_back(elmo::detail::to_bigint(v));
  return wide.multiply(x);
}

}  // namespace detail

/// The auditor itself is stateless apart from its sampling cap; checks are
/// safe to run concurrently from several ranks.
class InvariantAuditor {
 public:
  /// Cap on columns examined by the pairwise minimality check (the check is
  /// quadratic; sampling keeps audit mode usable on larger runs).
  std::size_t minimality_sample_cap = 256;

  /// nullspace-product: S * column == 0 for every column.
  template <typename Scalar, typename Support>
  void check_nullspace_product(
      const Matrix<Scalar>& stoichiometry,
      const std::vector<FluxColumn<Scalar, Support>>& columns,
      const std::string& context) const {
    for (std::size_t c = 0; c < columns.size(); ++c) {
      bool zero = true;
      std::size_t bad_row = 0;
      if constexpr (std::is_same_v<Scalar, double>) {
        auto y = stoichiometry.multiply(columns[c].values);
        for (std::size_t i = 0; i < y.size() && zero; ++i) {
          if (!scalar_is_zero(y[i])) {
            zero = false;
            bad_row = i;
          }
        }
      } else {
        std::vector<BigInt> y;
        try {
          auto narrow = stoichiometry.multiply(columns[c].values);
          y.reserve(narrow.size());
          for (const auto& v : narrow)
            y.push_back(elmo::detail::to_bigint(v));
        } catch (const OverflowError&) {
          y = detail::exact_product(stoichiometry, columns[c].values);
        }
        for (std::size_t i = 0; i < y.size() && zero; ++i) {
          if (!y[i].is_zero()) {
            zero = false;
            bad_row = i;
          }
        }
      }
      if (!zero) {
        audit_failed("nullspace-product",
                     context + ": S*R != 0 at column " + std::to_string(c) +
                         ", metabolite row " + std::to_string(bad_row));
      }
    }
    AuditLedger::global().add_nullspace_products(columns.size());
  }

  /// rank-nullity: each accepted candidate passes the EXACT rank test
  /// (nullity of the support submatrix == 1), independent of whichever
  /// backend the solver used to accept it.
  template <typename Scalar, typename Support>
  void check_rank_nullity(
      RankTester<Scalar>& exact_tester,
      const std::vector<FluxColumn<Scalar, Support>>& accepted,
      const std::string& context) const {
    for (std::size_t c = 0; c < accepted.size(); ++c) {
      if (!exact_tester.is_elementary(accepted[c].support)) {
        audit_failed("rank-nullity",
                     context + ": accepted candidate " + std::to_string(c) +
                         " has nullity != 1 under the exact rank test");
      }
    }
    AuditLedger::global().add_rank_nullity_checks(accepted.size());
  }

  /// support-minimality: no column's support strictly contains another's
  /// (equal supports — mirror orientations of reversible modes — are fine).
  /// Checks all pairs up to the sample cap, then a deterministic stride.
  template <typename Scalar, typename Support>
  void check_support_minimality(
      const std::vector<FluxColumn<Scalar, Support>>& columns,
      const std::string& context) const {
    std::vector<std::size_t> chosen;
    if (columns.size() <= minimality_sample_cap) {
      chosen.resize(columns.size());
      for (std::size_t i = 0; i < columns.size(); ++i) chosen[i] = i;
    } else {
      const std::size_t stride = columns.size() / minimality_sample_cap + 1;
      for (std::size_t i = 0; i < columns.size(); i += stride)
        chosen.push_back(i);
    }
    std::uint64_t pairs = 0;
    for (std::size_t a = 0; a < chosen.size(); ++a) {
      for (std::size_t b = 0; b < chosen.size(); ++b) {
        if (a == b) continue;
        ++pairs;
        const auto& sa = columns[chosen[a]].support;
        const auto& sb = columns[chosen[b]].support;
        if (sa != sb && sa.is_subset_of(sb)) {
          audit_failed(
              "support-minimality",
              context + ": support of column " + std::to_string(chosen[a]) +
                  " is strictly contained in support of column " +
                  std::to_string(chosen[b]) + " (non-elementary mode kept)");
        }
      }
    }
    AuditLedger::global().add_minimality_checks(pairs);
  }

  /// proposition-1: a subset's reported columns carry nonzero flux on every
  /// nonzero-pattern row and exactly zero on every removed row.
  template <typename Scalar, typename Support>
  void check_proposition1(
      const std::vector<FluxColumn<Scalar, Support>>& columns,
      const SubsetPattern& pattern, const std::string& context) const {
    for (std::size_t c = 0; c < columns.size(); ++c) {
      for (const auto& [row, nonzero] : pattern) {
        const bool has_flux = !scalar_is_zero(columns[c].values[row]);
        if (nonzero && !has_flux) {
          audit_failed("proposition-1",
                       context + ": column " + std::to_string(c) +
                           " has zero flux on nonzero-pattern row " +
                           std::to_string(row));
        }
        if (!nonzero && has_flux) {
          audit_failed("proposition-1",
                       context + ": column " + std::to_string(c) +
                           " has nonzero flux on removed row " +
                           std::to_string(row));
        }
      }
    }
    AuditLedger::global().add_proposition1_checks(columns.size() *
                                                  pattern.size());
  }

  /// pair-conservation: the world-wide sum of slice-local probed pairs must
  /// equal the global positives x negatives count of the iteration.
  void check_pair_conservation(std::uint64_t world_sum,
                               std::uint64_t expected,
                               const std::string& context) const {
    if (world_sum != expected) {
      audit_failed("pair-conservation",
                   context + ": ranks probed " + std::to_string(world_sum) +
                       " pairs in total, expected " +
                       std::to_string(expected) +
                       " (slices must partition the pair set)");
    }
    AuditLedger::global().add_pair_conservation_checks(1);
  }
};

}  // namespace elmo::check
