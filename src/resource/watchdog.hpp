// Watchdog supervision: soft/hard wall-clock deadlines and stall detection.
//
// One supervisor thread polls a set of armed tasks.  Each task carries
// optional progress counters (e.g. per-rank operation counts in mpsim) and
// three thresholds:
//
//   soft_seconds  — advisory: fires once, emits a structured diagnosis
//                   through obs naming the slowest counters (straggler
//                   detection), and the run continues.
//   hard_seconds  — fatal: fires once, the on_hard callback is expected to
//                   cancel the supervised work (abort the mpsim world); the
//                   combined driver then re-queues the subset with a split.
//   stall_seconds — wedge detection: if NO progress counter has advanced
//                   for this long, the task is treated as wedged and
//                   on_hard fires with a wedge diagnosis.  This catches
//                   live-locked or silently stuck ranks that PR-1's
//                   exited-rank detection cannot see.
//
// Arm/disarm is RAII (Watchdog::Token); disarm blocks until any in-flight
// callback for that task has returned, so callbacks may safely reference
// stack state owned by the armed scope.  Callbacks are invoked OFF the
// watchdog mutex to keep the lock a leaf.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace elmo::resource {

struct Deadlines {
  double soft_seconds = 0;   // 0 disables
  double hard_seconds = 0;   // 0 disables
  double stall_seconds = 0;  // 0 disables (needs progress counters)

  [[nodiscard]] bool any() const {
    return soft_seconds > 0 || hard_seconds > 0 || stall_seconds > 0;
  }
};

class Watchdog {
 public:
  struct Options {
    double poll_interval_seconds = 0.005;
  };

  /// A named progress counter the watchdog samples (not owned; must outlive
  /// the Token).
  struct ProgressCounter {
    std::string label;
    const std::atomic<std::uint64_t>* counter = nullptr;
  };

  // Two constructors instead of one defaulted argument: GCC cannot use a
  // nested struct's member initializers in a default argument of the
  // enclosing class.
  Watchdog();
  explicit Watchdog(Options options);
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;
  ~Watchdog();

  /// The shared process instance (one supervisor thread for the process).
  static Watchdog& global();

  class Token;

  /// Arm supervision of one scope.  `on_soft` receives a diagnosis string;
  /// `on_hard` receives a diagnosis and must make the supervised work stop.
  /// Either callback may be empty.  Returns a Token whose destruction
  /// disarms the task (blocking until in-flight callbacks return).
  Token arm(std::string label, Deadlines deadlines,
            std::function<void(const std::string&)> on_soft,
            std::function<void(const std::string&)> on_hard,
            std::vector<ProgressCounter> progress = {});

 private:
  using Clock = std::chrono::steady_clock;

  struct Task {
    std::string label;
    Deadlines deadlines;
    std::function<void(const std::string&)> on_soft;
    std::function<void(const std::string&)> on_hard;
    std::vector<ProgressCounter> progress;
    std::vector<std::uint64_t> last_values;
    Clock::time_point armed_at;
    Clock::time_point last_progress_at;
    bool soft_fired = false;
    bool hard_fired = false;
    bool in_callback = false;
  };
  using TaskList = std::list<std::shared_ptr<Task>>;

  void loop();
  void poll_once(Clock::time_point now);

  Options options_;
  std::mutex mutex_;
  std::condition_variable cv_;
  TaskList tasks_;
  bool stop_ = false;
  std::thread thread_;

 public:
  class Token {
   public:
    Token() = default;
    Token(Watchdog* owner, TaskList::iterator it) : owner_(owner), it_(it) {}
    Token(const Token&) = delete;
    Token& operator=(const Token&) = delete;
    Token(Token&& other) noexcept { *this = std::move(other); }
    Token& operator=(Token&& other) noexcept {
      disarm();
      owner_ = other.owner_;
      it_ = other.it_;
      other.owner_ = nullptr;
      return *this;
    }
    ~Token() { disarm(); }

    /// Remove the task from supervision.  Blocks until any callback
    /// currently running for this task has returned.
    void disarm();

   private:
    Watchdog* owner_ = nullptr;
    TaskList::iterator it_;
  };
};

}  // namespace elmo::resource
