// Metabolic network model.
//
// A network is a list of metabolites (internal or external) and reactions.
// Each reaction converts substrates to products in fixed integer molar
// proportions and is either irreversible (flux >= 0) or reversible.
// Exchange reactions crossing the system boundary are modelled simply as
// reactions touching external metabolites; external metabolites impose no
// steady-state constraint and therefore do not appear in the stoichiometry
// matrix (paper §II.A).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "linalg/matrix.hpp"

namespace elmo {

using MetaboliteId = std::size_t;
using ReactionId = std::size_t;

struct Metabolite {
  std::string name;
  bool external = false;
};

/// One stoichiometric term: `coefficient` units of metabolite `metabolite`.
/// Negative coefficients consume, positive produce.
struct StoichTerm {
  MetaboliteId metabolite;
  std::int64_t coefficient;

  friend bool operator==(const StoichTerm&, const StoichTerm&) = default;
};

struct Reaction {
  std::string name;
  bool reversible = false;
  /// Sorted by metabolite id; at most one term per metabolite.
  std::vector<StoichTerm> terms;

  /// Coefficient of `met` in this reaction (0 if absent).
  [[nodiscard]] std::int64_t coefficient_of(MetaboliteId met) const;
};

class Network {
 public:
  /// Add a metabolite; returns its id.  Throws InvalidArgumentError on a
  /// duplicate name.
  MetaboliteId add_metabolite(std::string name, bool external = false);

  /// Add a reaction given (metabolite name, coefficient) pairs.  Metabolites
  /// must already exist.  Coefficients for the same metabolite are summed;
  /// zero net coefficients are dropped.  Returns the reaction id.
  ReactionId add_reaction(
      std::string name, bool reversible,
      const std::vector<std::pair<std::string, std::int64_t>>& terms);

  [[nodiscard]] std::size_t num_metabolites() const {
    return metabolites_.size();
  }
  [[nodiscard]] std::size_t num_internal_metabolites() const {
    return internal_count_;
  }
  [[nodiscard]] std::size_t num_reactions() const { return reactions_.size(); }
  [[nodiscard]] std::size_t num_reversible_reactions() const;

  [[nodiscard]] const Metabolite& metabolite(MetaboliteId id) const {
    return metabolites_.at(id);
  }
  [[nodiscard]] const Reaction& reaction(ReactionId id) const {
    return reactions_.at(id);
  }
  [[nodiscard]] const std::vector<Metabolite>& metabolites() const {
    return metabolites_;
  }
  [[nodiscard]] const std::vector<Reaction>& reactions() const {
    return reactions_;
  }

  [[nodiscard]] std::optional<MetaboliteId> find_metabolite(
      const std::string& name) const;
  [[nodiscard]] std::optional<ReactionId> find_reaction(
      const std::string& name) const;

  /// Reaction id for `name`; throws InvalidArgumentError if absent.
  [[nodiscard]] ReactionId reaction_id(const std::string& name) const;

  /// Internal metabolites in id order (the stoichiometry matrix row order).
  [[nodiscard]] std::vector<MetaboliteId> internal_metabolites() const;

  /// Stoichiometry matrix over internal metabolites: rows follow
  /// internal_metabolites() order, columns follow reaction id order.
  template <typename T>
  [[nodiscard]] Matrix<T> stoichiometry() const {
    const auto internals = internal_metabolites();
    std::unordered_map<MetaboliteId, std::size_t> row_of;
    row_of.reserve(internals.size());
    for (std::size_t i = 0; i < internals.size(); ++i)
      row_of.emplace(internals[i], i);
    Matrix<T> n(internals.size(), reactions_.size());
    for (std::size_t j = 0; j < reactions_.size(); ++j) {
      for (const auto& term : reactions_[j].terms) {
        auto it = row_of.find(term.metabolite);
        if (it != row_of.end())
          n(it->second, j) = scalar_from_i64<T>(term.coefficient);
      }
    }
    return n;
  }

  /// Copy of this network without the given reactions (a "knockout").
  /// Metabolites are preserved; reaction ids are renumbered densely.
  [[nodiscard]] Network without_reactions(
      const std::vector<ReactionId>& removed) const;

  /// Reversibility flags in reaction id order.
  [[nodiscard]] std::vector<bool> reversibility() const;

 private:
  std::vector<Metabolite> metabolites_;
  std::vector<Reaction> reactions_;
  std::unordered_map<std::string, MetaboliteId> metabolite_index_;
  std::unordered_map<std::string, ReactionId> reaction_index_;
  std::size_t internal_count_ = 0;
};

}  // namespace elmo
