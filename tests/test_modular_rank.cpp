// Tests for the modular rank tester: primitive arithmetic, agreement with
// the exact Bareiss backend, and end-to-end solver equivalence.
#include "nullspace/modular_rank.hpp"

#include <gtest/gtest.h>

#include "bitset/bitset64.hpp"
#include "compress/compression.hpp"
#include "efm_test_util.hpp"
#include "models/random_network.hpp"
#include "models/toy.hpp"
#include "models/yeast.hpp"
#include "nullspace/solver.hpp"
#include "support/random.hpp"

namespace elmo {
namespace {

using modular::kPrime;

TEST(ModularArithmetic, MulmodMatchesBigInt) {
  Rng rng(2);
  for (int iter = 0; iter < 500; ++iter) {
    std::uint64_t a = rng.next() % kPrime;
    std::uint64_t b = rng.next() % kPrime;
    BigInt expected =
        (BigInt(static_cast<std::int64_t>(a)) *
         BigInt(static_cast<std::int64_t>(b))) %
        BigInt(static_cast<std::int64_t>(kPrime));
    EXPECT_EQ(modular::mulmod(a, b),
              static_cast<std::uint64_t>(expected.to_i64()));
  }
}

TEST(ModularArithmetic, EdgeValues) {
  EXPECT_EQ(modular::mulmod(kPrime - 1, kPrime - 1), 1u);  // (-1)^2
  EXPECT_EQ(modular::mulmod(0, kPrime - 1), 0u);
  EXPECT_EQ(modular::submod(0, 1), kPrime - 1);
  EXPECT_EQ(modular::from_i64(-1), kPrime - 1);
  EXPECT_EQ(modular::from_i64(INT64_MIN),
            kPrime - (static_cast<std::uint64_t>(1) << 63) % kPrime);
  EXPECT_EQ(modular::from_scalar(BigInt::from_string(
                "2305843009213693951")),  // == p
            0u);
  EXPECT_EQ(modular::from_scalar(BigInt::from_string("-2305843009213693952")),
            kPrime - 1);
}

TEST(ModularArithmetic, InverseIsInverse) {
  Rng rng(5);
  for (int iter = 0; iter < 200; ++iter) {
    std::uint64_t a = 1 + rng.next() % (kPrime - 1);
    EXPECT_EQ(modular::mulmod(a, modular::invmod(a)), 1u);
  }
}

TEST(ModularRank, AgreesWithBareissOnRandomMatrices) {
  Rng rng(7);
  for (int iter = 0; iter < 300; ++iter) {
    std::size_t rows = 1 + rng.below(6);
    std::size_t cols = 1 + rng.below(6);
    Matrix<CheckedI64> m(rows, cols);
    std::vector<std::uint64_t> flat(rows * cols);
    for (std::size_t i = 0; i < rows; ++i)
      for (std::size_t j = 0; j < cols; ++j) {
        std::int64_t v = rng.range(-5, 5);
        m(i, j) = CheckedI64(v);
        flat[i * cols + j] = modular::from_i64(v);
      }
    auto outcome = modular::rank_mod_p(flat, rows, cols, cols);  // no abort
    EXPECT_EQ(outcome.rank, rank_bareiss(m)) << "iter " << iter;
  }
}

TEST(ModularRank, EarlyAbortDetectsDeficiency) {
  // 3x4 matrix of rank 2: two deficient columns.
  std::vector<std::int64_t> vals = {1, 2, 3, 4,  //
                                    2, 4, 6, 8,  //
                                    0, 0, 0, 1};
  std::vector<std::uint64_t> flat;
  for (auto v : vals) flat.push_back(modular::from_i64(v));
  auto outcome = modular::rank_mod_p(flat, 3, 4, 1);
  EXPECT_TRUE(outcome.deficiency_exceeded);
}

TEST(ModularRankTester, MatchesExactTesterOnToyCandidates) {
  auto compressed = compress(models::toy_network());
  auto problem = to_problem<CheckedI64>(compressed);
  auto basis = compute_initial_basis<CheckedI64, Bitset64>(problem);
  ModularRankTester<CheckedI64> fast(problem.stoichiometry, basis.columns);
  RankTester<CheckedI64> exact(problem.stoichiometry);

  // Enumerate all supports over the 8 reduced reactions and compare both
  // testers where the exact one's verdict is defined.
  for (std::uint64_t bits = 1; bits < 256; ++bits) {
    Bitset64 support(bits);
    EXPECT_EQ(fast.is_elementary(support), exact.is_elementary(support))
        << "support " << bits;
  }
}

TEST(ModularRankTester, MatchesExactTesterOnYeastSupports) {
  auto compressed = compress(models::yeast_network_1());
  // Network I contains a fully reversible cycle (R90r & friends), so the
  // solver works on the split problem; test the tester on exactly that.
  auto prepared = prepare_problem(to_problem<CheckedI64>(compressed));
  const auto& problem = prepared.problem;
  auto basis = compute_initial_basis<CheckedI64, DynBitset>(problem);
  ModularRankTester<CheckedI64> fast(problem.stoichiometry, basis.columns);
  RankTester<CheckedI64> exact(problem.stoichiometry);

  // Random supports around the interesting size (rank +/- 2).
  Rng rng(11);
  const std::size_t q = problem.num_reactions();
  for (int iter = 0; iter < 300; ++iter) {
    DynBitset support(q);
    std::size_t size = basis.stoichiometry_rank - 2 + rng.below(5);
    while (support.count() < size) support.set(rng.below(q));
    EXPECT_EQ(fast.is_elementary(support), exact.is_elementary(support))
        << "iter " << iter;
  }
}

TEST(ModularRankTester, SolverBackendsAgree) {
  Network net = models::toy_network();
  auto compressed = compress(net);
  auto problem = to_problem<CheckedI64>(compressed);
  SolverOptions exact;
  exact.rank_backend = RankTestBackend::kExact;
  SolverOptions fast;
  fast.rank_backend = RankTestBackend::kModular;
  auto a = solve_efms<CheckedI64, Bitset64>(problem, exact);
  auto b = solve_efms<CheckedI64, Bitset64>(problem, fast);
  EXPECT_EQ(expand_and_canonicalize(a.columns, compressed, net),
            expand_and_canonicalize(b.columns, compressed, net));

  for (std::uint64_t seed = 60; seed < 70; ++seed) {
    models::RandomNetworkSpec spec;
    spec.seed = seed;
    spec.num_metabolites = 5 + seed % 3;
    Network random_net = models::random_network(spec);
    auto c = compress(random_net);
    auto p = to_problem<CheckedI64>(c);
    auto x = solve_efms<CheckedI64, Bitset64>(p, exact);
    auto y = solve_efms<CheckedI64, Bitset64>(p, fast);
    EXPECT_EQ(expand_and_canonicalize(x.columns, c, random_net),
              expand_and_canonicalize(y.columns, c, random_net))
        << "seed " << seed;
  }
}

TEST(ModularRankTester, WorksWithBigIntScalars) {
  auto compressed = compress(models::toy_network());
  auto problem = to_problem<BigInt>(compressed);
  auto basis = compute_initial_basis<BigInt, Bitset64>(problem);
  ModularRankTester<BigInt> fast(problem.stoichiometry, basis.columns);
  RankTester<BigInt> exact(problem.stoichiometry);
  for (std::uint64_t bits = 1; bits < 256; ++bits) {
    Bitset64 support(bits);
    EXPECT_EQ(fast.is_elementary(support), exact.is_elementary(support));
  }
}

}  // namespace
}  // namespace elmo
