file(REMOVE_RECURSE
  "CMakeFiles/elmo_bigint.dir/bigint.cpp.o"
  "CMakeFiles/elmo_bigint.dir/bigint.cpp.o.d"
  "libelmo_bigint.a"
  "libelmo_bigint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elmo_bigint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
