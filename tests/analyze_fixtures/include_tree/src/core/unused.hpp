// Seeds include:unused-include — util.hpp contributes nothing here.
#pragma once

#include "support/util.hpp"

struct StandsAlone {
  int y = 0;
};
