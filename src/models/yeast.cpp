#include "models/yeast.hpp"

#include "network/network.hpp"
#include "network/parser.hpp"

namespace elmo::models {

namespace {

// Figs 3-4 verbatim (irreversible block, then reversible block).
// BIO is declared external: it is the biomass sink and is never consumed.
constexpr const char* kNetwork1 = R"(
# S. cerevisiae Metabolic Network I -- 62 internal metabolites, 78 reactions.
external BIO

# --- irreversible reactions (Fig. 3) ---
R4   : F6P + ATP => FDP + ADP
R5   : FDP => F6P
R9   : PYR + ATP => PEP + ADP
R10  : PEP + ADP => PYR + ATP
R12  : GL3P + FAD_mit => DHAP + FADH_mit
R26  : GL3P => GLY
R15  : G6P + 2 NADP => 2 NADPH + CO2 + RL5P
R21  : ACCOA + OA => COA + CIT
R23  : ICIT + NADP => CO2 + NADPH + AKG
R24  : AKG_mit + NAD_mit + COA_mit => CO2 + NADH_mit + SUCCOA_mit
R27  : FUM + FADH => SUCC + FAD
R33  : PYR + COA => ACCOA + FOR
R37  : PYR + ATP + CO2 => ADP + OA
R38  : PYR => ACEADH + CO2
R40  : ACEADH + NADH => ETOH + NAD
R41  : ACEADH + NADP => AC + NADPH
R42  : OA + ATP => PEP + CO2 + ADP
R43  : PEP + CO2 => OA
R46  : ICIT => GLX + SUCC
R47  : ACCOA + GLX => COA + MAL
R53  : ACEADH + NAD => AC + NADH
R54  : ATP => ADP
R58  : NADH + NAD_mit => NAD + NADH_mit
R59  : NH3ext => NH3
R60  : GLY => GLYext
R62  : GLCext + PEP => G6P + PYR
R63  : AC => ACext
R64  : LAC => LACext
R65  : FOR => FORext
R66  : ETOH => ETOHext
R67  : SUCC => SUCCext
R68  : O2ext => O2
R69  : CO2 => CO2ext
R70  : 7437 G6P + 611 G3P + 437 R5P + 130 E4P + 500 PEP + 2060 PYR + 45 ACCOA_mit + 362 ACCOA + 733 AKG + 1232 OA + 1158 NAD + 434 NAD_mit + 6413 NADPH + 1568 NADPH_mit + 40141 ATP + 5587 NH3 => 1000 BIO + 247 CO2 + 45 COA_mit + 362 COA + 1158 NADH + 434 NADH_mit + 6413 NADP + 1568 NADP_mit + 40141 ADP
R72  : PYR_mit + COA_mit + NAD_mit => ACCOA_mit + NADH_mit + CO2
R73  : OA_mit + ACCOA_mit => CIT_mit + COA_mit
R75  : ICIT_mit + NAD_mit => AKG_mit + NADH_mit + CO2
R76  : ICIT_mit + NADP_mit => AKG_mit + NADPH_mit + CO2
R77  : ICIT + NADP => AKG + NADPH + CO2
R82  : MAL_mit + NADP_mit => PYR_mit + NADPH_mit + CO2
R85  : ETOH_mit + COA_mit + 2 ATP_mit + 2 NAD_mit => ACCOA_mit + 2 ADP_mit + 2 NADH_mit
R86  : ACEADH_mit + NAD_mit => AC_mit + NADH_mit
R87  : ACEADH_mit + NADP_mit => AC_mit + NADPH_mit
R93  : ADP + ATP_mit => ADP_mit + ATP
R98  : FUM_mit + SUCC => SUCC_mit + FUM
R100 : SUCC => SUCC_mit
R101 : AKG + MAL_mit => AKG_mit + MAL

# --- reversible reactions (Fig. 4) ---
R3r   : G6P <=> F6P
R6r   : FDP <=> G3P + DHAP
R7r   : G3P <=> DHAP
R8r   : G3P + NAD + ADP <=> PEP + ATP + NADH
R13r  : DHAP + NADH <=> GL3P + NAD
R16r  : RL5P <=> R5P
R17r  : RL5P <=> X5P
R18r  : R5P + X5P <=> G3P + S7P
R19r  : X5P + E4P <=> F6P + G3P
R20r  : G3P + S7P <=> E4P + F6P
R22r  : CIT <=> ICIT
R25r  : SUCCOA_mit + ADP_mit <=> ATP_mit + COA_mit + SUCC_mit
R28r  : FUM <=> MAL
R29r  : MAL + NAD <=> NADH + OA
R30r  : PYR + NADH <=> NAD + LAC
R32r  : ACCOA + 2 NADH <=> ETOH + 2 NAD + COA
R36r  : ATP + AC + COA <=> ADP + ACCOA
R74r  : CIT_mit <=> ICIT_mit
R78r  : ACEADH_mit + NADH_mit <=> ETOH_mit + NAD_mit
R79r  : SUCC_mit + FAD_mit <=> FUM_mit + FADH_mit
R80r  : FUM_mit <=> MAL_mit
R81r  : MAL_mit + NAD_mit <=> OA_mit + NADH_mit
R88r  : CIT + MAL_mit <=> CIT_mit + MAL
R89r  : MAL + SUCC_mit <=> MAL_mit + SUCC
R90r  : CIT + ICIT_mit <=> CIT_mit + ICIT
R92r  : AC_mit <=> AC
R94r  : PYR <=> PYR_mit
R95r  : ETOH <=> ETOH_mit
R96r  : MAL_mit <=> MAL
R97r  : ACCOA_mit <=> ACCOA
R102r : OA <=> OA_mit
)";

// Fig 5: Network II differs from Network I by five added reactions, one
// added internal metabolite (GLC), three reactions made reversible
// (R54, R60, R63 -> R54r, R60r, R63r) and a modified R62.
constexpr const char* kNetwork2Additions = R"(
# --- Network II additions (Fig. 5) ---
R1   : GLC + ATP => G6P + ADP
R14  : GLY + ATP => GL3P + ADP
R56  : 24 ADP + 20 NADH_mit + 10 O2 => 24 ATP + 20 NAD_mit
R57  : 24 ADP + 20 FADH + 10 O2 => 24 ATP + 20 FAD
R61  : GLCext => GLC
)";

}  // namespace

const char* yeast_network_1_text() { return kNetwork1; }

const char* yeast_network_2_text() {
  static const std::string text = [] {
    std::string t = kNetwork1;
    // R54, R60, R63 become reversible (rename with the r suffix).
    auto replace_line = [&t](const std::string& from, const std::string& to) {
      std::size_t pos = t.find(from);
      if (pos != std::string::npos) t.replace(pos, from.size(), to);
    };
    replace_line("R54  : ATP => ADP", "R54r : ATP <=> ADP");
    replace_line("R60  : GLY => GLYext", "R60r : GLY <=> GLYext");
    replace_line("R63  : AC => ACext", "R63r : AC <=> ACext");
    // R62 consumes internal GLC instead of GLCext.
    replace_line("R62  : GLCext + PEP => G6P + PYR",
                 "R62  : GLC + PEP => G6P + PYR");
    t += kNetwork2Additions;
    return t;
  }();
  return text.c_str();
}

Network yeast_network_1() { return parse_network(yeast_network_1_text()); }

Network yeast_network_2() { return parse_network(yeast_network_2_text()); }

}  // namespace elmo::models
