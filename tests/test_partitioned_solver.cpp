// Algorithm 4 (matrix-partitioned parallel Nullspace Algorithm — the
// paper's future-work item #1) validation: exact agreement with Algorithm
// 1, pair-count conservation, and the per-rank memory reduction that
// motivates the design.
#include "core/partitioned_parallel.hpp"

#include <gtest/gtest.h>

#include "compress/compression.hpp"
#include "core/combinatorial_parallel.hpp"
#include "efm_test_util.hpp"
#include "models/random_network.hpp"
#include "models/toy.hpp"
#include "models/yeast.hpp"
#include "nullspace/efm.hpp"

namespace elmo {
namespace {

template <typename Support>
std::vector<std::vector<BigInt>> canonical(
    const std::vector<FluxColumn<CheckedI64, Support>>& columns,
    const CompressedProblem& compressed, const Network& net) {
  return expand_and_canonicalize(columns, compressed, net);
}

TEST(PartitionedSolver, ToyAgreesWithSerialAcrossRankCounts) {
  Network net = models::toy_network();
  auto compressed = compress(net);
  auto problem = to_problem<CheckedI64>(compressed);
  auto serial = canonical(
      solve_efms<CheckedI64, Bitset64>(problem).columns, compressed, net);
  for (int ranks : {1, 2, 3, 5, 8}) {
    PartitionedOptions options;
    options.num_ranks = ranks;
    auto result =
        solve_partitioned_parallel<CheckedI64, Bitset64>(problem, options);
    // The partitioned algorithm can keep a duplicate column when a
    // candidate coincides with a zero column on another rank; canonical
    // form dedups, the SET must match exactly.
    EXPECT_EQ(canonical(result.columns, compressed, net), serial)
        << "ranks " << ranks;
  }
}

TEST(PartitionedSolver, PairCountMatchesSerial) {
  Network net = models::toy_network();
  auto compressed = compress(net);
  auto problem = to_problem<CheckedI64>(compressed);
  auto serial = solve_efms<CheckedI64, Bitset64>(problem);
  PartitionedOptions options;
  options.num_ranks = 3;
  auto result =
      solve_partitioned_parallel<CheckedI64, Bitset64>(problem, options);
  // The pos x neg cross product is covered exactly once across ranks
  // (duplicated intermediate columns could inflate this on larger nets;
  // the toy has none).
  EXPECT_EQ(result.stats.total_pairs_probed,
            serial.stats.total_pairs_probed);
}

TEST(PartitionedSolver, RandomNetworksAgreeWithSerial) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    models::RandomNetworkSpec spec;
    spec.seed = seed * 7 + 2;
    spec.num_metabolites = 4 + seed % 4;
    spec.num_extra_reactions = 3 + seed % 3;
    Network net = models::random_network(spec);
    auto compressed = compress(net);
    auto problem = to_problem<CheckedI64>(compressed);
    auto serial = canonical(
        solve_efms<CheckedI64, Bitset64>(problem).columns, compressed, net);
    PartitionedOptions options;
    options.num_ranks = 3;
    auto result =
        solve_partitioned_parallel<CheckedI64, Bitset64>(problem, options);
    EXPECT_EQ(canonical(result.columns, compressed, net), serial)
        << "seed " << spec.seed;
  }
}

TEST(PartitionedSolver, ShardsStayBalanced) {
  // After every iteration the rebalancing step keeps shard sizes within a
  // small band; verify via the final gathered result being complete and
  // the per-rank peak being well below the full-matrix peak on a workload
  // with enough columns to matter.
  models::RandomNetworkSpec spec;
  spec.seed = 11;
  spec.num_metabolites = 8;
  spec.num_extra_reactions = 6;
  spec.num_exchanges = 4;
  Network net = models::random_network(spec);
  auto compressed = compress(net);
  auto problem = to_problem<CheckedI64>(compressed);

  ParallelOptions replicated_options;
  replicated_options.num_ranks = 4;
  auto replicated = solve_combinatorial_parallel<CheckedI64, Bitset64>(
      problem, replicated_options);

  PartitionedOptions options;
  options.num_ranks = 4;
  auto partitioned =
      solve_partitioned_parallel<CheckedI64, Bitset64>(problem, options);

  EXPECT_EQ(canonical(partitioned.columns, compressed, net),
            canonical(replicated.columns, compressed, net));
  ASSERT_GT(replicated.stats.peak_columns, 100u)
      << "workload too small for a meaningful memory comparison";
  // The shard + replicated-positives peak must be well below the full
  // replica (4 ranks -> expect roughly a 2x+ reduction here).
  EXPECT_LT(partitioned.peak_rank_bytes,
            replicated.stats.peak_matrix_bytes * 3 / 4);
}

TEST(PartitionedSolver, YeastDemoAgreesWithReplicated) {
  Network net = models::yeast_network_1();
  std::vector<ReactionId> trim;
  for (const char* name :
       {"R15", "R33", "R41", "R46", "R92r", "R98", "R100", "R77", "R101",
        "R32r", "R30r"}) {
    if (auto id = net.find_reaction(name)) trim.push_back(*id);
  }
  net = net.without_reactions(trim);
  auto compressed = compress(net);
  auto problem = to_problem<CheckedI64>(compressed);

  auto serial = solve_efms<CheckedI64, DynBitset>(problem);
  PartitionedOptions options;
  options.num_ranks = 3;
  auto result =
      solve_partitioned_parallel<CheckedI64, DynBitset>(problem, options);
  EXPECT_EQ(canonical(result.columns, compressed, net),
            canonical(serial.columns, compressed, net));
}

TEST(PartitionedSolver, MemoryBudgetStillEnforced) {
  Network net = models::toy_network();
  auto compressed = compress(net);
  auto problem = to_problem<CheckedI64>(compressed);
  PartitionedOptions options;
  options.num_ranks = 2;
  options.memory_budget_per_rank = 16;  // absurdly small
  EXPECT_THROW((solve_partitioned_parallel<CheckedI64, Bitset64>(problem,
                                                                 options)),
               MemoryBudgetError);
}

TEST(PartitionedSolver, CombinatorialTestRejected) {
  Network net = models::toy_network();
  auto problem = to_problem<CheckedI64>(compress(net));
  PartitionedOptions options;
  options.solver.test = ElementarityTest::kCombinatorial;
  EXPECT_THROW((solve_partitioned_parallel<CheckedI64, Bitset64>(problem,
                                                                 options)),
               InvalidArgumentError);
}

}  // namespace
}  // namespace elmo
