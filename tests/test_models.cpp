// Tests for the built-in model networks.
#include <gtest/gtest.h>

#include <set>

#include "bigint/bigint.hpp"
#include "models/random_network.hpp"
#include "models/ecoli_core.hpp"
#include "models/toy.hpp"
#include "models/yeast.hpp"
#include "network/parser.hpp"
#include "network/validate.hpp"
#include "core/api.hpp"

namespace elmo {
namespace {

TEST(ToyModel, PaperEfmsSatisfySteadyState) {
  Network net = models::toy_network();
  auto n = net.stoichiometry<BigInt>();
  for (const auto& efm : models::toy_efms_paper()) {
    std::vector<BigInt> flux;
    for (auto v : efm) flux.emplace_back(v);
    auto y = n.multiply(flux);
    for (const auto& value : y) EXPECT_TRUE(value.is_zero());
  }
}

TEST(ToyModel, PaperEfmsRespectIrreversibility) {
  Network net = models::toy_network();
  auto rev = net.reversibility();
  for (const auto& efm : models::toy_efms_paper()) {
    for (std::size_t j = 0; j < efm.size(); ++j) {
      if (!rev[j]) {
        EXPECT_GE(efm[j], 0) << "reaction " << j;
      }
    }
  }
}

TEST(ToyModel, PaperEfmsHaveMinimalSupports) {
  // No EFM's support is a strict subset of another's (elementarity).
  const auto& efms = models::toy_efms_paper();
  auto support = [](const std::vector<std::int64_t>& e) {
    std::set<std::size_t> s;
    for (std::size_t i = 0; i < e.size(); ++i)
      if (e[i] != 0) s.insert(i);
    return s;
  };
  for (std::size_t a = 0; a < efms.size(); ++a) {
    for (std::size_t b = 0; b < efms.size(); ++b) {
      if (a == b) continue;
      auto sa = support(efms[a]);
      auto sb = support(efms[b]);
      bool subset = std::includes(sb.begin(), sb.end(), sa.begin(), sa.end());
      EXPECT_FALSE(subset && sa != sb)
          << "mode " << a << " support inside mode " << b;
    }
  }
}

TEST(ToyModel, PaperDncPartitionSizes) {
  // Paper §II.E: partitioning the 8 EFMs across (r8r, r9) gives subsets of
  // sizes {2, 3, 2, 1} for patterns (0,0), (n,0), (0,n), (n,n).
  const auto& efms = models::toy_efms_paper();
  int counts[2][2] = {{0, 0}, {0, 0}};
  for (const auto& e : efms) {
    int has_r8 = e[7] != 0;
    int has_r9 = e[8] != 0;
    ++counts[has_r8][has_r9];
  }
  EXPECT_EQ(counts[0][0], 2);  // {6, 8}
  EXPECT_EQ(counts[1][0], 3);  // {1, 3, 4}
  EXPECT_EQ(counts[0][1], 2);  // {5, 7}
  EXPECT_EQ(counts[1][1], 1);  // {2}
}

TEST(YeastModels, DimensionsMatchPaper) {
  Network n1 = models::yeast_network_1();
  EXPECT_EQ(n1.num_internal_metabolites(), 62u);
  EXPECT_EQ(n1.num_reactions(), 78u);
  EXPECT_EQ(n1.num_reversible_reactions(), 31u);

  Network n2 = models::yeast_network_2();
  EXPECT_EQ(n2.num_internal_metabolites(), 63u);
  EXPECT_EQ(n2.num_reactions(), 83u);
  // Network I's 31 reversibles + R54r/R60r/R63r made reversible = 34.
  EXPECT_EQ(n2.num_reversible_reactions(), 34u);
}

TEST(YeastModels, Network2Modifications) {
  Network n2 = models::yeast_network_2();
  // Added reactions exist.
  for (const char* name : {"R1", "R14", "R56", "R57", "R61"})
    EXPECT_TRUE(n2.find_reaction(name).has_value()) << name;
  // Reversibility flips.
  EXPECT_TRUE(n2.reaction(n2.reaction_id("R54r")).reversible);
  EXPECT_TRUE(n2.reaction(n2.reaction_id("R60r")).reversible);
  EXPECT_TRUE(n2.reaction(n2.reaction_id("R63r")).reversible);
  EXPECT_FALSE(n2.find_reaction("R54").has_value());
  // R62 now consumes internal GLC.
  auto glc = n2.find_metabolite("GLC");
  ASSERT_TRUE(glc.has_value());
  EXPECT_FALSE(n2.metabolite(*glc).external);
  EXPECT_EQ(n2.reaction(n2.reaction_id("R62")).coefficient_of(*glc), -1);
}

TEST(YeastModels, BiomassIsExternalSink) {
  Network n1 = models::yeast_network_1();
  auto bio = n1.find_metabolite("BIO");
  ASSERT_TRUE(bio.has_value());
  EXPECT_TRUE(n1.metabolite(*bio).external);
}

TEST(EcoliCore, ParsesCleanAndComputesQuickly) {
  Network net = models::ecoli_core();
  EXPECT_EQ(net.num_reactions(), 46u);
  EXPECT_GT(net.num_reversible_reactions(), 15u);
  EXPECT_TRUE(validate(net).clean());
  // Round-trips through its own text form.
  Network again = parse_network(models::ecoli_core_text());
  EXPECT_EQ(again.stoichiometry<BigInt>(), net.stoichiometry<BigInt>());
}

TEST(EcoliCore, KnownEfmCount) {
  // Regression anchor: 857 elementary flux modes (validated against the
  // invariant battery in test_api's random sweep machinery).
  auto result = compute_efms(models::ecoli_core());
  EXPECT_EQ(result.num_modes(), 857u);
  // Futile/internal cycles exist (e.g. SDH + FRD): at least one mode with
  // no exchange flux.
  Network net = models::ecoli_core();
  std::size_t internal_cycles = 0;
  for (const auto& mode : result.modes) {
    bool touches_exchange = false;
    for (std::size_t j = 0; j < mode.size(); ++j) {
      if (mode[j].is_zero()) continue;
      for (const auto& term : net.reaction(j).terms) {
        if (net.metabolite(term.metabolite).external)
          touches_exchange = true;
      }
    }
    if (!touches_exchange) ++internal_cycles;
  }
  EXPECT_GE(internal_cycles, 1u);
}

TEST(RandomNetwork, DeterministicPerSeed) {
  models::RandomNetworkSpec spec;
  spec.seed = 17;
  Network a = models::random_network(spec);
  Network b = models::random_network(spec);
  EXPECT_EQ(a.stoichiometry<BigInt>(), b.stoichiometry<BigInt>());
  EXPECT_EQ(a.reversibility(), b.reversibility());
  spec.seed = 18;
  Network c = models::random_network(spec);
  EXPECT_TRUE(a.stoichiometry<BigInt>() != c.stoichiometry<BigInt>() ||
              a.reversibility() != c.reversibility());
}

TEST(RandomNetwork, RespectsSpecSizes) {
  models::RandomNetworkSpec spec;
  spec.num_metabolites = 10;
  spec.num_extra_reactions = 5;
  spec.num_exchanges = 4;
  spec.seed = 3;
  Network net = models::random_network(spec);
  EXPECT_EQ(net.num_internal_metabolites(), 10u);
  // Backbone: 1 import + 9 chain + 1 export = 11, plus extras + exchanges.
  EXPECT_EQ(net.num_reactions(), 11u + 5u + 4u);
}

}  // namespace
}  // namespace elmo
