// Tests for the candidate-count estimator and partition selection (the
// paper's §IV.C future-work item).
#include "core/estimate.hpp"

#include <gtest/gtest.h>

#include "bitset/bitset64.hpp"
#include "compress/compression.hpp"
#include "models/random_network.hpp"
#include "models/toy.hpp"
#include "nullspace/problem.hpp"

namespace elmo {
namespace {

TEST(SubsetSelect, ToyTrailingReversibles) {
  auto problem = to_problem<CheckedI64>(compress(models::toy_network()));
  // Processing order is r1, r3, r6r, r8r; the two trailing reversibles are
  // r6r (reduced row 5) and r8r (row 7), outer-first.
  auto rows = select_partition_rows(problem, OrderingOptions{}, 2);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(problem.reaction_names[rows[0]], "r6r");
  EXPECT_EQ(problem.reaction_names[rows[1]], "r8r");
}

TEST(SubsetSelect, RequestingTooManyThrows) {
  auto problem = to_problem<CheckedI64>(compress(models::toy_network()));
  EXPECT_THROW(select_partition_rows(problem, OrderingOptions{}, 3),
               InvalidArgumentError);
}

TEST(Estimate, ExactWhenUnderCap) {
  // With a cap far above the toy network's column counts the estimator
  // degenerates to an exact run: its EFM prediction must be exact.
  auto problem = to_problem<CheckedI64>(compress(models::toy_network()));
  auto rows = select_partition_rows(problem, OrderingOptions{}, 2);
  double total_efms = 0;
  double total_pairs = 0;
  for (std::uint64_t id = 0; id < 4; ++id) {
    SubsetSpec spec;
    for (std::size_t k = 0; k < 2; ++k)
      spec.pattern.emplace_back(rows[k], (id >> k) & 1);
    auto estimate = estimate_subset<CheckedI64, Bitset64>(problem, spec);
    EXPECT_TRUE(estimate.exact);
    EXPECT_DOUBLE_EQ(estimate.estimated_efms, 2.0) << "subset " << id;
    total_efms += estimate.estimated_efms;
    total_pairs += estimate.estimated_pairs;
  }
  EXPECT_DOUBLE_EQ(total_efms, 8.0);
  EXPECT_GT(total_pairs, 0.0);
}

TEST(Estimate, TruncatedRunExtrapolatesUpward) {
  // A mid-size random network: truncate the prefix hard and require the
  // projection to land within a (generous) order-of-magnitude band of the
  // truth, and never below the measured prefix.
  models::RandomNetworkSpec spec;
  spec.seed = 21;
  spec.num_metabolites = 8;
  spec.num_extra_reactions = 6;
  spec.num_exchanges = 4;
  Network net = models::random_network(spec);
  auto compressed = compress(net);
  auto problem = to_problem<CheckedI64>(compressed);

  auto exact = solve_efms<CheckedI64, Bitset64>(problem);
  const double truth_pairs =
      static_cast<double>(exact.stats.total_pairs_probed);
  ASSERT_GT(truth_pairs, 1000.0) << "workload too small to test truncation";

  SubsetSpec whole;  // empty pattern = the full problem as one subset
  EstimateOptions options;
  options.pair_budget = static_cast<std::uint64_t>(truth_pairs / 20);
  auto estimate =
      estimate_subset<CheckedI64, Bitset64>(problem, whole, options);
  EXPECT_FALSE(estimate.exact);
  EXPECT_GT(estimate.estimated_pairs,
            static_cast<double>(options.pair_budget));
  EXPECT_LT(estimate.estimated_pairs, truth_pairs * 100.0);
  EXPECT_GT(estimate.estimated_efms, 0.0);
}

TEST(Estimate, PartitionCostIsPositiveAndComparable) {
  auto problem = to_problem<CheckedI64>(compress(models::toy_network()));
  auto rows = select_partition_rows(problem, OrderingOptions{}, 2);
  double cost2 =
      estimate_partition_cost<CheckedI64, Bitset64>(problem, rows);
  double cost1 = estimate_partition_cost<CheckedI64, Bitset64>(
      problem, {rows[0]});
  EXPECT_GT(cost2, 0.0);
  EXPECT_GT(cost1, 0.0);
}

}  // namespace
}  // namespace elmo
