// A column of the evolving nullspace matrix: one (candidate) flux mode.
//
// Each column stores its dense value vector over the reduced reactions plus
// a cached support bitset (the zero/nonzero pattern).  Columns are kept in
// primitive form — integer entries with gcd 1 — so that duplicate modes
// compare equal exactly.  The sign is NOT canonicalised: orientation is
// semantically meaningful while irreversible rows are still unprocessed.
#pragma once

#include <compare>
#include <utility>
#include <vector>

#include "bigint/bigint.hpp"
#include "bigint/scalar.hpp"
#include "bitset/traits.hpp"
#include "linalg/scale.hpp"

namespace elmo {

template <typename Scalar, typename Support>
struct FluxColumn {
  Support support;
  std::vector<Scalar> values;

  FluxColumn() = default;

  /// Build from a value vector: normalise to primitive form and compute the
  /// support.  The vector length is the number of reduced reactions.
  static FluxColumn from_values(std::vector<Scalar> v) {
    FluxColumn column;
    make_primitive(v);
    column.support = make_support<Support>(v.size());
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (!scalar_is_zero(v[i])) column.support.set(i);
    }
    column.values = std::move(v);
    return column;
  }

  [[nodiscard]] int sign_at(std::size_t row) const {
    return scalar_sign(values[row]);
  }

  /// Approximate heap bytes held by this column (memory accounting).
  [[nodiscard]] std::size_t storage_bytes() const {
    std::size_t bytes = values.capacity() * sizeof(Scalar);
    if constexpr (std::is_same_v<Scalar, BigInt>) {
      for (const auto& v : values) bytes += v.storage_bytes();
    }
    bytes += support.storage_bytes();
    return bytes;
  }

  /// Ordering for sort-based duplicate removal: by support pattern first
  /// (the paper's "sort by binary representation"), then by values so the
  /// comparison is a strict weak order even for non-proportional twins.
  friend std::partial_ordering operator<=>(const FluxColumn& a,
                                           const FluxColumn& b) {
    // partial_ordering only because the double kernel's scalar compares
    // partially; the exact kernels order totally (and never produce NaN).
    if (auto cmp = a.support <=> b.support; cmp != 0) return cmp;
    for (std::size_t i = 0; i < a.values.size(); ++i) {
      if (auto cmp = a.values[i] <=> b.values[i]; cmp != 0) return cmp;
    }
    return std::partial_ordering::equivalent;
  }
  friend bool operator==(const FluxColumn& a, const FluxColumn& b) {
    return a.support == b.support && a.values == b.values;
  }
};

/// Compute the combination values of `combine_columns` into `out`,
/// normalised to primitive form, reusing out's capacity.  Duplicate
/// detection compares many transient combinations against existing
/// columns; this entry point avoids materialising a FluxColumn (and its
/// support) per probe.
template <typename Scalar, typename Support>
void combine_values_into(const FluxColumn<Scalar, Support>& positive,
                         const FluxColumn<Scalar, Support>& negative,
                         std::size_t k, std::vector<Scalar>& out) {
  const Scalar a = -negative.values[k];  // > 0
  const Scalar b = positive.values[k];   // > 0
  out.assign(positive.values.size(), scalar_from_i64<Scalar>(0));
  // Only rows in either support can be nonzero.
  for (std::size_t i = 0; i < out.size(); ++i) {
    const bool in_p = positive.support.test(i);
    const bool in_n = negative.support.test(i);
    if (!in_p && !in_n) continue;
    if (in_p && in_n) {
      out[i] = a * positive.values[i] + b * negative.values[i];
    } else if (in_p) {
      out[i] = a * positive.values[i];
    } else {
      out[i] = b * negative.values[i];
    }
  }
  make_primitive(out);
}

/// Convex combination of a positive and a negative column that annihilates
/// row `k`:  w = (-v[k]) * u + (u[k]) * v, both coefficients positive.
/// Returns the primitive form.  Throws OverflowError with CheckedI64 when
/// entries exceed 64 bits (the solver retries with BigInt).
template <typename Scalar, typename Support>
FluxColumn<Scalar, Support> combine_columns(
    const FluxColumn<Scalar, Support>& positive,
    const FluxColumn<Scalar, Support>& negative, std::size_t k) {
  std::vector<Scalar> w;
  combine_values_into(positive, negative, k, w);
  return FluxColumn<Scalar, Support>::from_values(std::move(w));
}

}  // namespace elmo
