# Empty compiler generated dependencies file for test_combined_solver.
# This may be replaced when dependencies are built.
