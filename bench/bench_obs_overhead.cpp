// Observability overhead guard (ISSUE 2 acceptance criterion: with
// observability disabled, solves must regress <2% vs a no-instrumentation
// baseline).
//
// Runs two kernels — the serial Algorithm 1 solve of the demo Network I
// instance (the bench_scaling kernel) and the same instance under Algorithm 2
// on simulated mpsim ranks, which drives the per-message flow-tracing and
// wait-classification sites — under three observability modes in interleaved
// repetitions and reports the per-mode minimum:
//
//   off      instrumentation compiled in but dormant (the shipping default:
//            every site is one relaxed load + branch),
//   metrics  registry enabled (counters/gauges/histograms per iteration),
//   trace    metrics + an installed TraceRecorder (spans per iteration,
//            phase, and mpsim op).
//
// --json PATH writes a machine-readable record including kObsCompiledIn, so
// scripts/check.sh can diff this binary against one configured with
// -DELMO_OBS_DISABLE=ON (a true no-instrumentation baseline) and enforce
// the <2% bound on the dormant path.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace {

using namespace elmo;

enum class Mode { kOff, kMetrics, kTrace };

const char* mode_name(Mode mode) {
  switch (mode) {
    case Mode::kOff: return "off";
    case Mode::kMetrics: return "metrics";
    case Mode::kTrace: return "trace";
  }
  return "?";
}

struct RunOutcome {
  double seconds = 0.0;
  std::uint64_t num_efms = 0;
  std::uint64_t pairs = 0;
};

// Rank count for the mpsim scenario: enough ranks for real message traffic
// (per-message flow ids, wait classification) without dwarfing the solve.
constexpr int kParallelRanks = 3;

/// One timed solve.  num_ranks == 0 runs the serial Algorithm 1 kernel;
/// otherwise Algorithm 2 over that many simulated ranks, which also pushes
/// the mpsim flow-tracing sites (per-message flow ids, wait classification,
/// queue-depth sampling) through the measured path.
RunOutcome run_once(const CompressedProblem& compressed,
                    const std::vector<bool>& reversibility, Mode mode,
                    int num_ranks) {
  auto& registry = obs::Registry::global();
  registry.reset();
  registry.set_enabled(mode != Mode::kOff);
  obs::TraceRecorder recorder;
  if (mode == Mode::kTrace) obs::install_trace(&recorder);

  EfmOptions options;
  if (num_ranks > 0) {
    options.algorithm = Algorithm::kCombinatorialParallel;
    options.num_ranks = num_ranks;
  }
  Stopwatch watch;
  auto result = compute_efms(compressed, reversibility, options);
  RunOutcome outcome{watch.seconds(), result.num_modes(),
                     result.stats.total_pairs_probed};

  obs::install_trace(nullptr);
  registry.set_enabled(false);
  registry.reset();
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace elmo;
  std::string json_path;
  std::string baseline_path;
  double max_overhead_pct = 2.0;
  int reps = 3;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--json") && i + 1 < argc) {
      json_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--baseline") && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--max-overhead-pct") && i + 1 < argc) {
      max_overhead_pct = std::atof(argv[++i]);
    } else if (!std::strcmp(argv[i], "--reps") && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
      if (reps < 1) reps = 1;
    }
  }
  const bool full = bench::full_scale(argc, argv);
  bench::print_scale_banner(full,
                            "Observability overhead (off / metrics / trace)");
  std::printf("instrumentation compiled in: %s\n\n",
              obs::kObsCompiledIn ? "yes" : "no (ELMO_OBS_DISABLE)");

  Network network = bench::network_1(full);
  auto compressed = compress(network);
  const std::vector<bool> reversibility = network.reversibility();

  // Warm-up runs: touch every code path and page once (serial and the mpsim
  // rank loop) so the first timed mode is not penalised.
  run_once(compressed, reversibility, Mode::kOff, 0);
  run_once(compressed, reversibility, Mode::kOff, kParallelRanks);

  const Mode modes[] = {Mode::kOff, Mode::kMetrics, Mode::kTrace};
  double best[3] = {1e300, 1e300, 1e300};
  double best_par[3] = {1e300, 1e300, 1e300};
  RunOutcome last[3];
  RunOutcome last_par[3];
  // Interleave modes within each repetition so frequency/thermal drift hits
  // every mode equally.
  for (int rep = 0; rep < reps; ++rep) {
    for (int m = 0; m < 3; ++m) {
      last[m] = run_once(compressed, reversibility, modes[m], 0);
      if (last[m].seconds < best[m]) best[m] = last[m].seconds;
    }
    for (int m = 0; m < 3; ++m) {
      last_par[m] = run_once(compressed, reversibility, modes[m],
                             kParallelRanks);
      if (last_par[m].seconds < best_par[m]) best_par[m] = last_par[m].seconds;
    }
  }

  auto render_modes = [&](const double* mode_best, const RunOutcome* mode_last,
                          const char* title) {
    Table table({"mode", "best of reps (s)", "vs off", "# EFM"});
    obs::JsonValue mode_json = obs::JsonValue::object();
    for (int m = 0; m < 3; ++m) {
      const double overhead_pct = (mode_best[m] / mode_best[0] - 1.0) * 100.0;
      char vs[32];
      std::snprintf(vs, sizeof vs, "%+.2f%%", overhead_pct);
      table.add_row({mode_name(modes[m]), seconds_str(mode_best[m]),
                     m == 0 ? "-" : vs, with_commas(mode_last[m].num_efms)});
      obs::JsonValue entry = obs::JsonValue::object();
      entry.set("seconds", obs::JsonValue(mode_best[m]));
      entry.set("overhead_pct", obs::JsonValue(m == 0 ? 0.0 : overhead_pct));
      mode_json.set(mode_name(modes[m]), std::move(entry));
    }
    std::fputs(table.render(title).c_str(), stdout);
    return mode_json;
  };
  obs::JsonValue mode_json =
      render_modes(best, last, "serial demo solve, interleaved reps");
  std::printf("\n");
  obs::JsonValue par_json = render_modes(
      best_par, last_par,
      "mpsim parallel solve (flow tracing on the measured path)");

  // Acceptance gate: compare the dormant-instrumentation time against the
  // "off" time recorded by a -DELMO_OBS_DISABLE=ON build of this binary (a
  // true no-instrumentation baseline).  The mpsim scenario is gated the same
  // way when the baseline carries it, so the flow-tracing sites in
  // send/recv/barrier stay free when dormant too.
  double baseline_off_seconds = -1.0;
  double disabled_vs_baseline_pct = 0.0;
  double baseline_par_off_seconds = -1.0;
  double par_disabled_vs_baseline_pct = 0.0;
  bool gate_failed = false;
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path, std::ios::binary);
    std::ostringstream text;
    text << in.rdbuf();
    std::string error;
    obs::JsonValue doc = obs::parse_json(text.str(), &error);
    const obs::JsonValue* modes_node =
        error.empty() ? doc.find("modes") : nullptr;
    const obs::JsonValue* off_node =
        modes_node != nullptr ? modes_node->find("off") : nullptr;
    if (off_node == nullptr || off_node->find("seconds") == nullptr) {
      std::fprintf(stderr, "cannot read baseline %s: %s\n",
                   baseline_path.c_str(),
                   error.empty() ? "missing modes.off.seconds"
                                 : error.c_str());
      return 1;
    }
    baseline_off_seconds = off_node->find("seconds")->as_double();
    disabled_vs_baseline_pct =
        (best[0] / baseline_off_seconds - 1.0) * 100.0;
    gate_failed = disabled_vs_baseline_pct > max_overhead_pct;
    std::printf(
        "\ndormant instrumentation vs no-instrumentation baseline: "
        "%+.2f%% (limit %+.2f%%) -> %s\n",
        disabled_vs_baseline_pct, max_overhead_pct,
        gate_failed ? "FAIL" : "ok");

    // Baselines written before the mpsim scenario existed lack this section;
    // the serial gate above still applies unchanged.
    const obs::JsonValue* par_node =
        error.empty() ? doc.find("parallel_modes") : nullptr;
    const obs::JsonValue* par_off =
        par_node != nullptr ? par_node->find("off") : nullptr;
    if (par_off != nullptr && par_off->find("seconds") != nullptr) {
      baseline_par_off_seconds = par_off->find("seconds")->as_double();
      par_disabled_vs_baseline_pct =
          (best_par[0] / baseline_par_off_seconds - 1.0) * 100.0;
      const bool par_failed =
          par_disabled_vs_baseline_pct > max_overhead_pct;
      gate_failed = gate_failed || par_failed;
      std::printf(
          "dormant instrumentation vs baseline (mpsim parallel): "
          "%+.2f%% (limit %+.2f%%) -> %s\n",
          par_disabled_vs_baseline_pct, max_overhead_pct,
          par_failed ? "FAIL" : "ok");
    }
  }

  if (!json_path.empty()) {
    obs::JsonValue doc = obs::JsonValue::object();
    doc.set("bench", obs::JsonValue("obs_overhead"));
    doc.set("obs_compiled_in", obs::JsonValue(obs::kObsCompiledIn));
    doc.set("instance",
            obs::JsonValue(full ? "network1-full" : "network1-demo"));
    doc.set("reps", obs::JsonValue(reps));
    doc.set("num_efms", obs::JsonValue(last[0].num_efms));
    doc.set("pairs_probed", obs::JsonValue(last[0].pairs));
    doc.set("modes", std::move(mode_json));
    doc.set("parallel_ranks", obs::JsonValue(kParallelRanks));
    doc.set("parallel_modes", std::move(par_json));
    if (baseline_off_seconds >= 0.0) {
      doc.set("baseline_off_seconds", obs::JsonValue(baseline_off_seconds));
      doc.set("disabled_vs_baseline_pct",
              obs::JsonValue(disabled_vs_baseline_pct));
      doc.set("max_overhead_pct", obs::JsonValue(max_overhead_pct));
    }
    if (baseline_par_off_seconds >= 0.0) {
      doc.set("baseline_parallel_off_seconds",
              obs::JsonValue(baseline_par_off_seconds));
      doc.set("parallel_disabled_vs_baseline_pct",
              obs::JsonValue(par_disabled_vs_baseline_pct));
    }
    std::FILE* out = std::fopen(json_path.c_str(), "wb");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    const std::string text = doc.dump(2);
    std::fwrite(text.data(), 1, text.size(), out);
    std::fputc('\n', out);
    std::fclose(out);
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return gate_failed ? 2 : 0;
}
