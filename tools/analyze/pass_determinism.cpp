// elmo_analyze — determinism pass.
//
// The divide-and-conquer pipeline promises bit-identical output for any
// thread count; PR-4/PR-6 tests pin that contract.  This pass guards the
// modules whose iteration order feeds emitted candidates and merges
// (nullspace/, core/, linalg/, compress/) against the three classic ways
// C++ code goes nondeterministic:
//
//   unordered-iter  iterating an unordered_{map,set,multimap,multiset}
//                   (range-for or explicit .begin()/.cbegin()) — bucket
//                   order depends on hashing, insertion history and
//                   libstdc++ version;
//   pointer-key     a map/set keyed on a pointer type — ASLR makes the
//                   comparison order different every run;
//   wall-clock      steady_clock/system_clock/high_resolution_clock,
//                   this_thread::get_id, time()/clock()/gettimeofday in
//                   solver code — timing and identity must never steer
//                   output (rand is already banned tree-wide by the lint
//                   pass).
//
// Sites that are genuinely order-insensitive (e.g. an unordered set only
// counted, or drained into a sort) carry lint:allow(<rule>).  Files
// outside the gated modules are exempt unless named explicitly on the
// command line (fixtures).

#include <sstream>

#include "analyze/analyzer.hpp"
#include "analyze/lexer.hpp"

namespace elmo_analyze {

namespace {

bool in_target_module(const SourceFile& f) {
  return f.module == "nullspace" || f.module == "core" ||
         f.module == "linalg" || f.module == "compress";
}

bool unordered_container(const std::string& s) {
  return s == "unordered_map" || s == "unordered_set" ||
         s == "unordered_multimap" || s == "unordered_multiset";
}

bool ordered_assoc_container(const std::string& s) {
  return s == "map" || s == "set" || s == "multimap" || s == "multiset";
}

bool clock_ident(const std::string& s) {
  return s == "steady_clock" || s == "system_clock" ||
         s == "high_resolution_clock" || s == "gettimeofday";
}

void emit(const SourceFile& file, std::size_t line, const char* rule,
          const std::string& message, std::set<std::string>& seen,
          std::vector<Finding>& findings) {
  if (file.allows(line, rule)) return;
  std::ostringstream key;
  key << file.path << ":" << line << ":" << rule;
  if (!seen.insert(key.str()).second) return;
  Finding finding;
  finding.pass = "determinism";
  finding.rule = rule;
  finding.file = file.path;
  finding.line = line;
  finding.message = message;
  findings.push_back(std::move(finding));
}

/// Template argument tokens of the container whose name is at `idx`:
/// [first, last) covering the first top-level argument, or empty.
std::pair<std::size_t, std::size_t> first_template_arg(
    const std::vector<Token>& toks, std::size_t idx) {
  if (idx + 1 >= toks.size() || !toks[idx + 1].is("<")) return {0, 0};
  int depth = 0;
  std::size_t first = idx + 2;
  for (std::size_t j = idx + 1; j < toks.size(); ++j) {
    if (toks[j].is("<")) ++depth;
    if (toks[j].is(">") || toks[j].is(">>")) {
      depth -= toks[j].is(">>") ? 2 : 1;
      if (depth <= 0) return {first, j};
    }
    if (toks[j].is(",") && depth == 1) return {first, j};
    if (toks[j].is(";") || toks[j].is("{")) break;  // unbalanced
  }
  return {0, 0};
}

/// Token index just past the container's full `<...>` template list.
std::size_t past_template_list(const std::vector<Token>& toks,
                               std::size_t idx) {
  if (idx + 1 >= toks.size() || !toks[idx + 1].is("<")) return idx + 1;
  int depth = 0;
  for (std::size_t j = idx + 1; j < toks.size(); ++j) {
    if (toks[j].is("<")) ++depth;
    if (toks[j].is(">") || toks[j].is(">>")) {
      depth -= toks[j].is(">>") ? 2 : 1;
      if (depth <= 0) return j + 1;
    }
    if (toks[j].is(";") || toks[j].is("{")) break;
  }
  return toks.size();
}

}  // namespace

void pass_determinism(const Project& project, const Options& opts,
                      std::vector<Finding>& findings) {
  (void)opts;
  std::set<std::string> seen;
  for (const SourceFile& file : project.files) {
    if (!file.tree.empty() &&
        (file.tree != "src" || !in_target_module(file))) {
      continue;  // explicit/fixture files (tree "") are always analyzed
    }
    const std::string where =
        file.module.empty() ? "deterministic-output code"
                            : "solver-output module '" + file.module + "'";
    const std::vector<Token> toks = lex(file.stripped);
    // Declared unordered-container variable names in this file.
    std::set<std::string> unordered_vars;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (!t.ident()) continue;
      if (unordered_container(t.text) || ordered_assoc_container(t.text)) {
        // pointer-key: first template argument mentions a raw pointer.
        const auto arg = first_template_arg(toks, i);
        for (std::size_t j = arg.first; j < arg.second; ++j) {
          if (toks[j].is("*")) {
            emit(file, t.line, "pointer-key",
                 "associative container keyed on a pointer — ASLR makes "
                 "iteration/comparison order differ between runs; key on a "
                 "stable id instead",
                 seen, findings);
            break;
          }
        }
      }
      if (unordered_container(t.text)) {
        const std::size_t name_idx = past_template_list(toks, i);
        if (name_idx < toks.size() && toks[name_idx].ident()) {
          unordered_vars.insert(toks[name_idx].text);
        }
      }
      if (clock_ident(t.text)) {
        emit(file, t.line, "wall-clock",
             "wall-clock/time source in " + where +
                 " — timing must never steer emitted output",
             seen, findings);
      }
      if (t.text == "get_id" && i >= 2 && toks[i - 1].is("::") &&
          toks[i - 2].is("this_thread")) {
        emit(file, t.line, "wall-clock",
             "thread identity in " + where +
                 " — worker id must never steer emitted output",
             seen, findings);
      }
      if ((t.text == "time" || t.text == "clock") && i + 1 < toks.size() &&
          toks[i + 1].is("(") && (i == 0 || !toks[i - 1].is(".")) &&
          (i == 0 || !toks[i - 1].is("->")) &&
          (i == 0 || !toks[i - 1].is("::"))) {
        emit(file, t.line, "wall-clock",
             "C time source in " + where +
                 " — timing must never steer emitted output",
             seen, findings);
      }
    }
    if (unordered_vars.empty()) continue;
    // Iteration sites over the collected unordered variables.
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (!t.ident() || unordered_vars.count(t.text) == 0) continue;
      const bool range_for = i > 0 && toks[i - 1].is(":");
      const bool begin_call =
          i + 3 < toks.size() &&
          (toks[i + 1].is(".") || toks[i + 1].is("->")) &&
          toks[i + 2].ident() &&
          (toks[i + 2].text == "begin" || toks[i + 2].text == "cbegin" ||
           toks[i + 2].text == "rbegin") &&
          toks[i + 3].is("(");
      if (!range_for && !begin_call) continue;
      emit(file, t.line, "unordered-iter",
           "iteration over unordered container '" + t.text +
               "' — bucket order is hash/insertion/library dependent; "
               "drain into a sorted sequence first or use an ordered "
               "container",
           seen, findings);
    }
  }
}

}  // namespace elmo_analyze
