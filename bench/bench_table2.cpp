// Table II: the combinatorial parallel Nullspace Algorithm (Algorithm 2) on
// S. cerevisiae Network I across core counts.
//
// Paper reference (Intel Xeon Clovertown, 2011):
//   cores        1        2        4       8      16     32     64
//   total (s) 2894.40  1490.85  761.29  404.33  208.98 115.46  61.87
//   total # candidate modes: 159,599,700,951; total # EFM: 1,515,314
//
// This driver reruns the experiment on the simulated message-passing
// machine, printing the same row structure (gen cand / rank test /
// communicate / merge / total) plus the per-rank candidate-pair share,
// which is the quantity that actually scales with the core count.
#include <cstdio>

#include "bench_common.hpp"
#include "core/combinatorial_parallel.hpp"
#include "nullspace/efm.hpp"

int main(int argc, char** argv) {
  using namespace elmo;
  const bool full = bench::full_scale(argc, argv);
  bench::print_scale_banner(full, "Table II: Algorithm 2 on Network I");

  Network network = bench::network_1(full);
  auto compressed = compress(network);
  std::printf("network: %zu x %zu, reduced %zu x %zu\n\n",
              network.num_internal_metabolites(), network.num_reactions(),
              compressed.num_metabolites(), compressed.num_reactions());

  // The paper's node x cores-per-node configurations (Table II header).
  struct Config {
    int nodes;
    int cores_per_node;
  };
  const std::vector<Config> configs =
      full ? std::vector<Config>{{1, 1}, {2, 1}, {1, 4}, {1, 8}, {4, 4}}
           : std::vector<Config>{{1, 1}, {2, 1}, {1, 4}, {1, 8},
                                 {4, 4},  {8, 4}, {16, 4}};

  Table table({"# nodes", "cores/node", "total # cores", "gen cand (s)",
               "rank test (s)", "communicate (s)", "merge (s)",
               "total time (s)", "pairs per core (max)"});
  std::uint64_t total_candidates = 0;
  std::size_t total_efms = 0;

  for (const auto& config : configs) {
    const int total_cores = config.nodes * config.cores_per_node;
    auto problem = to_problem<CheckedI64>(compressed);
    ParallelOptions options;
    options.num_ranks = config.nodes;
    options.threads_per_rank = config.cores_per_node;
    Stopwatch watch;
    auto solved =
        solve_combinatorial_parallel<CheckedI64, DynBitset>(problem, options);
    const double total = watch.seconds();
    auto modes = columns_to_bigint(solved.columns);
    canonicalize_modes(modes, problem.reversible);
    total_candidates = solved.stats.total_pairs_probed;
    total_efms = modes.size();

    // Largest pair share any core processed: the combinatorial split's
    // balance metric (contiguous slices are equal within one pair).
    const std::uint64_t per_core_share =
        (solved.stats.total_pairs_probed + total_cores - 1) / total_cores;

    table.add_row({std::to_string(config.nodes),
                   std::to_string(config.cores_per_node),
                   std::to_string(total_cores),
                   seconds_str(solved.stats.phases.seconds("gen cand")),
                   seconds_str(solved.stats.phases.seconds("rank test")),
                   seconds_str(solved.stats.phases.seconds("communicate")),
                   seconds_str(solved.stats.phases.seconds("merge")),
                   seconds_str(total), with_commas(per_core_share)});
  }

  std::fputs(table.render("Algorithm 2 (measured)").c_str(), stdout);
  std::printf("\nTotal # candidate modes: %s\n",
              with_commas(total_candidates).c_str());
  std::printf("Total # EFM: %s\n", with_commas(total_efms).c_str());
  if (full) {
    std::printf("\npaper reference: 159,599,700,951 candidates / 1,515,314 "
                "EFMs on the authors' 35x55 reduction\n"
                "(this build keeps duplicate reactions unmerged -> 40x65 "
                "reduction; see EXPERIMENTS.md)\n");
  }
  return 0;
}
