// Post-run message-flow and critical-path attribution.
//
// The paper's Algorithm 2/3 wall clock is gated by communication and
// imbalance: every rank holds the full matrix and each iteration ends in an
// all-gather exchange, so the slowest rank of every iteration is the run.
// analyze_flow() folds the evidence of that — the mpsim per-rank wait-class
// counters, the divide-and-conquer subset table, and (when tracing was on)
// the recorded span/flow streams — into one FlowSummary that report.json
// carries as its `flow` object.  This is the data the ROADMAP's adaptive
// scheduler (#4) needs: which subsets were imbalanced, where ranks blocked,
// and how far the estimator (core/estimate.hpp) was from reality.
//
// Layering: obs is cross-cutting and knows nothing about solvers.  The
// analysis consumes only SolveReport (filled by core/api.cpp) and the raw
// TraceEvent stream; estimator predictions are filled in by the caller.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace elmo::obs {

struct SolveReport;

/// One rank's busy/blocked breakdown (microseconds).  Busy time is the sum
/// of its recorded phase timings; the wait classes come straight from the
/// mpsim RankCounters, so this part needs no trace.
struct FlowRank {
  int rank = 0;
  double busy_us = 0.0;
  double wait_data_us = 0.0;
  double wait_barrier_us = 0.0;
  double wait_straggler_us = 0.0;
  /// busy / (busy + waits); 0 when the rank recorded nothing.
  double utilization = 0.0;
  std::uint64_t max_queue_depth = 0;
};

/// One divide-and-conquer subset's imbalance profile.
struct FlowSubset {
  std::string label;
  /// Slowest rank's busy+wait chain within the subset.
  double critical_path_us = 0.0;
  /// (max busy − mean busy) / max busy · 100 over the subset's ranks.
  double imbalance_pct = 0.0;
  /// Per-rank busy time normalised by the busiest rank (the utilization
  /// histogram the scheduler bins subsets by).
  std::vector<double> utilization;
};

/// The report.json `flow` object.
struct FlowSummary {
  /// True when a trace was recorded and the critical-path fields below are
  /// derived from real span streams (they are 0 otherwise).
  bool traced = false;

  /// Cross-rank critical path through the iteration DAG: per iteration the
  /// slowest rank's iteration span is on the path; their durations sum.
  double critical_path_us = 0.0;
  /// Number of spans contributing to the critical path.
  std::uint64_t critical_path_steps = 0;
  /// Trace extent (last span end − first span start).
  double wall_us = 0.0;
  /// Time along the critical path by span name: the solver phases
  /// ("rank test", "gen cand", "communicate", "merge"), the wait classes
  /// ("data-wait", "barrier-wait", "straggler-wait" — these also lie inside
  /// their enclosing phase, so they overlap the phase entries), and
  /// "other" for time under no recorded sub-span.
  std::map<std::string, double> critical_path_phase_us;

  /// Flow-event pairing: flows opened ('s') and flows with at least one
  /// matching finish ('f').  A healthy run matches every flow; dropped
  /// messages open no flow at all.
  std::uint64_t flows_emitted = 0;
  std::uint64_t flows_matched = 0;

  /// Per-rank breakdown and overall busy-time imbalance (counter-derived;
  /// present for every parallel run, traced or not).
  std::vector<FlowRank> ranks;
  double imbalance_pct = 0.0;
  std::vector<FlowSubset> subsets;

  /// Estimator-vs-actual candidate counts (core/estimate.hpp predictions,
  /// filled by the caller; 0/0 when no estimate was computed).
  double estimated_pairs = 0.0;
  std::uint64_t actual_pairs = 0;
  double estimated_efms = 0.0;
  std::uint64_t actual_efms = 0;

  [[nodiscard]] JsonValue to_json() const;
};

/// Fold a finished run into its FlowSummary.  `events` is the recorder's
/// snapshot_events() stream, or nullptr for an untraced run (the counter-
/// derived sections are still produced).  Deterministic: the result is a
/// pure function of the report and the event stream.
[[nodiscard]] FlowSummary analyze_flow(const SolveReport& report,
                                       const std::vector<TraceEvent>* events);

}  // namespace elmo::obs
