// Seeds lock:lock-blocking — a guard held across a blocking receive.
#include <mutex>

std::mutex queue_mutex;
long recv(int source);

long drain_while_locked() {
  std::lock_guard<std::mutex> guard(queue_mutex);
  return recv(3);
}
