// Algorithm 4: the matrix-partitioned parallel Nullspace Algorithm —
// the paper's future-work item #1 implemented.
//
// "Future work should focus on several points.  First, the current
//  nullspace matrix should not be stored across all the compute nodes in
//  the combinatorial parallel Nullspace Algorithm, but should be
//  partitioned in an efficient way instead."  (paper, §V)
//
// Design: each rank OWNS a shard of the current matrix's columns instead of
// a full replica.  Per iteration:
//
//   1. every rank classifies its shard locally (zero/positive/negative),
//   2. the POSITIVE columns — by the paper's reversible-last heuristic the
//      side that irreversible processing retains — are all-gathered so each
//      rank can pair the full positive set against its LOCAL negatives;
//      pair counting still covers the complete pos x neg cross product with
//      no overlap,
//   3. candidates are rank-tested locally (the rank test needs only the
//      fixed stoichiometry), then deduped globally by an all-gather of the
//      candidate SUPPORTS only,
//   4. accepted candidates are appended to the generating rank's shard, and
//      shards are rebalanced by moving whole columns from overfull to
//      underfull ranks (cheapest-first, preserving the global sort order
//      guarantees not at all — shards are sets, order is irrelevant).
//
// Memory per rank is O(shard + positive side + transient candidates)
// instead of O(full matrix): bench_memory quantifies the difference.  The
// EFM SET produced is identical to Algorithms 1-3 (tests assert equality);
// the distribution of columns across ranks is an implementation detail.
//
// Caveat shared with the paper's design sketch: the positive side is
// replicated during an iteration.  For rows where the positive side is the
// larger one this bounds the saving; the processing-order heuristics make
// that uncommon in practice (the bench reports actual peaks).
#pragma once

#include <optional>

#include "bigint/checked.hpp"
#include "mpsim/communicator.hpp"
#include "mpsim/serialize.hpp"
#include "nullspace/flux_column.hpp"
#include "nullspace/iteration.hpp"
#include "nullspace/modular_rank.hpp"
#include "nullspace/problem.hpp"
#include "nullspace/rank_test.hpp"
#include "nullspace/solver.hpp"
#include "nullspace/sparse_rank.hpp"
#include "nullspace/stats.hpp"
#include "obs/obs.hpp"
#include "support/assert.hpp"
#include "support/timer.hpp"

namespace elmo {

struct PartitionedOptions {
  int num_ranks = 4;
  SolverOptions solver;
  std::size_t memory_budget_per_rank = 0;
  /// Optional deterministic fault injection; see mpsim/fault.hpp.
  std::shared_ptr<mpsim::FaultPlan> fault_plan;
};

template <typename Scalar, typename Support>
struct PartitionedSolveResult {
  std::vector<FluxColumn<Scalar, Support>> columns;  // gathered at the end
  SolveStats stats;
  mpsim::RunReport ranks;
  /// Peak per-rank bytes (shard + replicated positives) — the quantity
  /// Algorithm 4 is designed to shrink versus Algorithm 2's full replica.
  std::size_t peak_rank_bytes = 0;
  /// Each rank's own ledger, for per-rank run reports.
  std::vector<SolveStats> per_rank;
};

template <typename Scalar, typename Support>
PartitionedSolveResult<Scalar, Support> solve_partitioned_parallel(
    const EfmProblem<Scalar>& problem, const PartitionedOptions& options) {
  const int num_ranks = options.num_ranks;
  ELMO_REQUIRE(num_ranks >= 1, "num_ranks must be positive");
  ELMO_REQUIRE(options.solver.test == ElementarityTest::kRank,
               "the partitioned algorithm requires the (local) rank test");

  auto prepared = prepare_problem(problem);
  SolverOptions solver_options = options.solver;
  for (std::size_t k = 0; k < prepared.backward_of.size(); ++k) {
    for (std::size_t row : options.solver.exclude_rows) {
      if (prepared.backward_of[k] == row)
        solver_options.exclude_rows.push_back(prepared.original_reactions +
                                              k);
    }
  }

  std::vector<SolveStats> rank_stats(static_cast<std::size_t>(num_ranks));
  std::vector<std::size_t> rank_peaks(static_cast<std::size_t>(num_ranks), 0);
  std::optional<std::vector<FluxColumn<Scalar, Support>>> final_columns;

  auto body = [&](mpsim::Communicator& comm) {
    using Column = FluxColumn<Scalar, Support>;
    const int rank = comm.rank();
    SolveStats& stats = rank_stats[static_cast<std::size_t>(rank)];
    std::size_t& peak_bytes = rank_peaks[static_cast<std::size_t>(rank)];

    auto basis = compute_initial_basis<Scalar, Support>(
        prepared.problem, solver_options.ordering,
        solver_options.exclude_rows);
    RankTester<Scalar> exact_tester(prepared.problem.stoichiometry);
    std::optional<ModularRankTester<Scalar>> modular_tester;
    std::optional<SparseRankTester<Scalar>> sparse_tester;
    bool use_modular = false;
    bool use_sparse = false;
    if constexpr (!std::is_same_v<Scalar, double>) {
      if (solver_options.rank_backend == RankTestBackend::kModular) {
        modular_tester.emplace(prepared.problem.stoichiometry, basis.columns);
        use_modular = true;
      } else if (solver_options.rank_backend == RankTestBackend::kSparse) {
        sparse_tester.emplace(prepared.problem.stoichiometry, basis.columns);
        use_sparse = true;
      }
    }
    auto is_elementary = [&](const Support& support) -> bool {
      if (use_sparse) return sparse_tester->is_elementary(support);
      if (use_modular) return modular_tester->is_elementary(support);
      return exact_tester.is_elementary(support);
    };

    // Shard the initial basis round-robin.
    std::vector<Column> shard;
    for (std::size_t c = 0; c < basis.columns.size(); ++c) {
      if (static_cast<int>(c % num_ranks) == rank)
        shard.push_back(std::move(basis.columns[c]));
    }

    for (std::size_t row : basis.processing_order) {
      obs::TraceSpan iteration_span(
          "iteration", "solve",
          obs::trace() != nullptr ? "row " + std::to_string(row)
                                  : std::string());
      IterationStats iteration;
      iteration.row = row;
      const bool row_reversible = prepared.problem.reversible[row];

      // 1. Local classification.
      auto cls = classify_row(shard, row);

      // 2. Gather ALL ranks' positive columns (replicated for pairing).
      std::vector<Column> local_positives;
      local_positives.reserve(cls.positive.size());
      for (std::uint32_t j : cls.positive) local_positives.push_back(shard[j]);
      std::vector<Column> all_positives;
      {
        ScopedPhase phase(stats.phases, Phase::kCommunicate);
        auto batches =
            comm.all_gather(mpsim::encode_columns(local_positives));
        for (auto& batch : batches) {
          auto incoming = mpsim::decode_columns<Scalar, Support>(batch);
          all_positives.insert(all_positives.end(),
                               std::make_move_iterator(incoming.begin()),
                               std::make_move_iterator(incoming.end()));
        }
      }

      // 3. Pair the full positive set against LOCAL negatives; across
      // ranks this covers every pos x neg pair exactly once.
      std::vector<Column> pairing;
      pairing.reserve(all_positives.size() + cls.negative.size());
      RowClassification pairing_cls;
      for (auto& column : all_positives) {
        pairing_cls.positive.push_back(
            static_cast<std::uint32_t>(pairing.size()));
        pairing.push_back(std::move(column));
      }
      for (std::uint32_t j : cls.negative) {
        pairing_cls.negative.push_back(
            static_cast<std::uint32_t>(pairing.size()));
        pairing.push_back(shard[j]);
      }
      // Existing-duplicate suppression needs the local zero columns.
      for (std::uint32_t j : cls.zero) {
        pairing_cls.zero.push_back(
            static_cast<std::uint32_t>(pairing.size()));
        pairing.push_back(shard[j]);
      }
      iteration.positives = pairing_cls.positive.size();
      iteration.negatives = pairing_cls.negative.size();

      std::vector<Column> accepted;
      if (use_sparse) {
        // Every candidate support lives inside supp(u) u supp(v) \ {row}
        // for some pairing pair, so rows untouched by the pairing set are
        // common zero rows for all of this rank's candidates.
        sparse_tester->begin_iteration(iteration_common_zero_rows(
            pairing, pairing_cls.positive, pairing_cls.negative, row));
      }
      process_pair_range(pairing, row, pairing_cls,
                         basis.stoichiometry_rank, 0,
                         pairing_cls.pair_count(),
                         solver_options.block_ref_cap, is_elementary,
                         iteration, stats.phases, accepted);
      if (use_sparse) sparse_tester->drain_stats(iteration);

      // 4. Global dedup by candidate supports: a candidate produced on two
      // ranks (same support) is kept only by the lowest rank.  Duplicates
      // against other ranks' ZERO columns are caught the same way: each
      // rank contributes its zero-column supports tagged as "existing".
      {
        ScopedPhase phase(stats.phases, Phase::kCommunicate);
        // Encode accepted supports + local zero supports into one batch.
        std::vector<Column> support_probe;
        support_probe.reserve(accepted.size());
        for (const auto& column : accepted) {
          Column probe;
          probe.support = column.support;
          support_probe.push_back(std::move(probe));
        }
        auto batches = comm.all_gather(mpsim::encode_columns(support_probe));
        ScopedPhase merge_phase(stats.phases, Phase::kMerge);
        std::vector<Support> earlier;  // supports owned by LOWER ranks
        for (int r = 0; r < rank; ++r) {
          auto incoming = mpsim::decode_columns<Scalar, Support>(
              batches[static_cast<std::size_t>(r)]);
          for (auto& column : incoming)
            earlier.push_back(std::move(column.support));
        }
        std::sort(earlier.begin(), earlier.end());
        std::size_t kept = 0;
        for (std::size_t c = 0; c < accepted.size(); ++c) {
          if (std::binary_search(earlier.begin(), earlier.end(),
                                 accepted[c].support)) {
            ++iteration.duplicates_removed;
            continue;
          }
          if (kept != c) accepted[kept] = std::move(accepted[c]);
          ++kept;
        }
        accepted.resize(kept);
      }
      iteration.accepted = accepted.size();

      // 5. Rebuild the local shard: zero + positive + (negative if
      // reversible) + locally accepted candidates.
      std::vector<Column> next;
      next.reserve(cls.zero.size() + cls.positive.size() +
                   (row_reversible ? cls.negative.size() : 0) +
                   accepted.size());
      for (std::uint32_t j : cls.zero) next.push_back(std::move(shard[j]));
      for (std::uint32_t j : cls.positive)
        next.push_back(std::move(shard[j]));
      if (row_reversible) {
        for (std::uint32_t j : cls.negative)
          next.push_back(std::move(shard[j]));
      }
      for (auto& column : accepted) next.push_back(std::move(column));
      shard = std::move(next);

      // 6. Rebalance: even out shard sizes (heaviest ranks ship columns to
      // the lightest; implemented as a gather of sizes + deterministic
      // transfer plan executed with point-to-point messages).
      {
        ScopedPhase phase(stats.phases, Phase::kCommunicate);
        const std::uint64_t total = comm.all_reduce_sum(shard.size());
        const std::uint64_t target = total / num_ranks;
        // Deterministic plan known to every rank: sizes via gather.
        mpsim::Payload size_payload;
        mpsim::detail::put_u64(size_payload, shard.size());
        auto size_batches = comm.all_gather(std::move(size_payload));
        std::vector<std::int64_t> sizes(num_ranks);
        for (int r = 0; r < num_ranks; ++r) {
          const std::uint8_t* cursor = size_batches[r].data();
          sizes[r] = static_cast<std::int64_t>(mpsim::detail::get_u64(
              cursor, cursor + size_batches[r].size()));
        }
        // Greedy plan: (from, to, count) triples.
        struct Move {
          int from;
          int to;
          std::int64_t count;
        };
        std::vector<Move> plan;
        for (int from = 0; from < num_ranks; ++from) {
          while (sizes[from] >
                 checked_add(static_cast<std::int64_t>(target), 1)) {
            int to = 0;
            for (int r = 1; r < num_ranks; ++r)
              if (sizes[r] < sizes[to]) to = r;
            std::int64_t surplus =
                sizes[from] - static_cast<std::int64_t>(target);
            std::int64_t deficit =
                static_cast<std::int64_t>(target) - sizes[to];
            std::int64_t count = std::min(surplus, std::max<std::int64_t>(
                                                       deficit, 1));
            if (count <= 0 || to == from) break;
            plan.push_back(Move{from, to, count});
            sizes[from] -= count;
            sizes[to] += count;
          }
        }
        for (const auto& move : plan) {
          if (move.from == rank) {
            std::vector<Column> shipped;
            for (std::int64_t moved = 0; moved < move.count; ++moved) {
              shipped.push_back(std::move(shard.back()));
              shard.pop_back();
            }
            comm.send(move.to, /*tag=*/1000 + static_cast<int>(row),
                      mpsim::encode_columns(shipped));
          } else if (move.to == rank) {
            auto incoming = mpsim::decode_columns<Scalar, Support>(
                comm.recv(move.from, 1000 + static_cast<int>(row)));
            for (auto& column : incoming) shard.push_back(std::move(column));
          }
        }
      }

      iteration.columns_after = shard.size();
      const std::size_t shard_bytes = matrix_storage_bytes(shard);
      const std::size_t replica_bytes = matrix_storage_bytes(all_positives);
      peak_bytes = std::max(peak_bytes, shard_bytes + replica_bytes);
      stats.peak_matrix_bytes =
          std::max(stats.peak_matrix_bytes, shard_bytes + replica_bytes);
      comm.set_memory_usage(shard_bytes + replica_bytes);
      stats.absorb(iteration);
      publish_iteration_metrics(iteration);
      if (rank == 0) obs::trace_counter("shard columns", shard.size());
      if (options.solver.on_iteration && rank == 0)
        options.solver.on_iteration(iteration);
    }

    // Gather all shards to rank 0 for the final result.
    auto batches = comm.all_gather(mpsim::encode_columns(shard));
    if (rank == 0) {
      std::vector<Column> gathered;
      for (const auto& batch : batches) {
        auto incoming = mpsim::decode_columns<Scalar, Support>(batch);
        gathered.insert(gathered.end(),
                        std::make_move_iterator(incoming.begin()),
                        std::make_move_iterator(incoming.end()));
      }
      // Rank 0 is the only writer; run_ranks joins every thread before
      // the spawner reads it.  analyze:shared-ok
      final_columns = unsplit_columns(std::move(gathered), prepared);
    }
  };

  mpsim::RunOptions run_options;
  run_options.memory_budget_per_rank = options.memory_budget_per_rank;
  run_options.fault_plan = options.fault_plan;
  auto report = mpsim::run_ranks(num_ranks, body, run_options);

  PartitionedSolveResult<Scalar, Support> result;
  ELMO_CHECK(final_columns.has_value(), "rank 0 produced no result");
  result.columns = std::move(*final_columns);
  result.ranks = std::move(report);
  for (std::size_t r = 0; r < rank_stats.size(); ++r) {
    const auto& stats = rank_stats[r];
    result.stats.total_pairs_probed += stats.total_pairs_probed;
    result.stats.total_pretest_survivors += stats.total_pretest_survivors;
    result.stats.total_rank_tests += stats.total_rank_tests;
    result.stats.total_rank_sparse_hits += stats.total_rank_sparse_hits;
    result.stats.total_rank_warmstart_reuses +=
        stats.total_rank_warmstart_reuses;
    result.stats.total_rank_dense_fallbacks +=
        stats.total_rank_dense_fallbacks;
    result.stats.total_rank_gathered_nnz += stats.total_rank_gathered_nnz;
    result.stats.total_accepted += stats.total_accepted;
    result.stats.total_duplicates_removed += stats.total_duplicates_removed;
    result.stats.phases.merge_max(stats.phases);
    result.peak_rank_bytes = std::max(result.peak_rank_bytes, rank_peaks[r]);
  }
  result.stats.iterations =
      rank_stats.empty() ? 0 : rank_stats.front().iterations;
  result.per_rank = std::move(rank_stats);
  return result;
}

}  // namespace elmo
