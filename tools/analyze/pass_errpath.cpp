// elmo_analyze — error-path / RAII pass.
//
// Two rules, both interprocedural over the call graph:
//
// raii-pair        The codebase wraps most resources in RAII types, but a
//                  few idioms stayed manual: trace spans
//                  (begin_span/end_span, span_begin/span_end), resource
//                  spill blocks (open_spill_block/close_spill_block,
//                  open_block/close_block) and memory leases taken outside
//                  MemoryLease (acquire_lease/release_lease,
//                  lease_acquire/lease_release).  For every function with
//                  a direct acquire, count acquires vs releases including
//                  one level of named callees; more acquires than releases
//                  means an early return or throw leaks the resource.
//                  Waive intentional acquire-wrappers with
//                  lint:allow(raii-pair).
//
// unhandled-throw  Every `throw` of ResourceError / CancelledError /
//                  DeadlineExceededError must be reachable from a catch
//                  that can receive it — the retry ladder
//                  (core/combined.hpp) or a shutdown/CLI handler.  We
//                  BFS the REVERSE call graph from the throwing function;
//                  if no function on any caller path catches the type (or
//                  a base: Error/runtime_error/exception/...), the typed
//                  error escapes to std::terminate in a worker thread.
//                  Name resolution is deliberately over-approximate
//                  (bare-name matching), which errs toward silence.

#include <array>
#include <deque>
#include <sstream>

#include "analyze/analyzer.hpp"
#include "analyze/callgraph.hpp"

namespace elmo_analyze {

namespace {

constexpr std::size_t npos = CallGraph::npos;

struct RaiiPair {
  const char* acquire;
  const char* release;
};

const RaiiPair kPairs[] = {
    {"begin_span", "end_span"},
    {"span_begin", "span_end"},
    {"open_spill_block", "close_spill_block"},
    {"open_block", "close_block"},
    {"acquire_lease", "release_lease"},
    {"lease_acquire", "lease_release"},
};
constexpr std::size_t kNumPairs = sizeof(kPairs) / sizeof(kPairs[0]);

const char* kTypedErrors[] = {"ResourceError", "CancelledError",
                              "DeadlineExceededError"};

bool typed_error(const std::string& name) {
  for (const char* t : kTypedErrors) {
    if (name == t) return true;
  }
  return false;
}

bool handles(const FnDef& f, const std::string& type) {
  return f.catches.count(type) != 0 || f.catches.count("...") != 0 ||
         f.catches.count("exception") != 0 ||
         f.catches.count("runtime_error") != 0 ||
         f.catches.count("Error") != 0;
}

struct PairCounts {
  std::array<int, kNumPairs> acq{};
  std::array<int, kNumPairs> rel{};
  std::array<std::size_t, kNumPairs> first_acq_line{};
};

struct ErrpathPass {
  const Project& project;
  const Options& opts;
  std::vector<Finding>& findings;
  CallGraph cg;
  std::map<std::size_t, std::vector<std::size_t>> reverse_edges;

  void build_reverse_edges();
  void check_raii_pairs();
  void check_throws();
};

void ErrpathPass::build_reverse_edges() {
  for (const CallRef& call : cg.calls) {
    if (call.caller == npos) continue;
    for (std::size_t target : cg.resolve(call.callee)) {
      if (target != call.caller) {
        reverse_edges[target].push_back(call.caller);
      }
    }
    // A lambda argument is invoked by the callee (or queued and invoked
    // later); its exceptions surface wherever the spawning code installed
    // handlers — model that as caller -> lambda so the reverse walk
    // reaches the spawn site's handler chain.
    for (std::size_t lam : call.lambda_args) {
      reverse_edges[lam].push_back(call.caller);
    }
  }
  // A lambda also propagates through its lexical parent when invoked
  // in-place.
  for (std::size_t i = 0; i < cg.fns.size(); ++i) {
    const FnDef& f = cg.fns[i];
    if (f.is_lambda && f.parent != npos) {
      reverse_edges[i].push_back(f.parent);
    }
  }
}

void ErrpathPass::check_raii_pairs() {
  std::map<std::size_t, PairCounts> direct;
  for (const CallRef& call : cg.calls) {
    if (call.caller == npos) continue;
    for (std::size_t p = 0; p < kNumPairs; ++p) {
      if (call.callee == kPairs[p].acquire) {
        PairCounts& c = direct[call.caller];
        if (c.acq[p] == 0) c.first_acq_line[p] = call.line;
        ++c.acq[p];
      } else if (call.callee == kPairs[p].release) {
        ++direct[call.caller].rel[p];
      }
    }
  }
  for (const auto& entry : direct) {
    const std::size_t fn_idx = entry.first;
    const PairCounts& own = entry.second;
    bool any_acq = false;
    for (std::size_t p = 0; p < kNumPairs; ++p) any_acq |= own.acq[p] > 0;
    if (!any_acq) continue;
    // Effective counts: direct plus one level of distinct named callees
    // (a helper that releases on our behalf balances the books).
    PairCounts effective = own;
    std::set<std::size_t> callees;
    for (const CallRef& call : cg.calls) {
      if (call.caller != fn_idx) continue;
      for (std::size_t target : cg.resolve(call.callee)) {
        if (target != fn_idx) callees.insert(target);
      }
      for (std::size_t lam : call.lambda_args) callees.insert(lam);
    }
    for (std::size_t callee : callees) {
      auto it = direct.find(callee);
      if (it == direct.end()) continue;
      for (std::size_t p = 0; p < kNumPairs; ++p) {
        effective.acq[p] += it->second.acq[p];
        effective.rel[p] += it->second.rel[p];
      }
    }
    const FnDef& f = cg.fns[fn_idx];
    const SourceFile& file = project.files[f.file];
    for (std::size_t p = 0; p < kNumPairs; ++p) {
      if (own.acq[p] == 0 || effective.acq[p] <= effective.rel[p]) continue;
      const std::size_t line = own.first_acq_line[p];
      if (file.allows(line, "raii-pair")) continue;
      Finding finding;
      finding.pass = "errpath";
      finding.rule = "raii-pair";
      finding.file = file.path;
      finding.line = line;
      std::ostringstream msg;
      msg << "'" << f.qname << "' calls " << kPairs[p].acquire << " "
          << effective.acq[p] << "x but " << kPairs[p].release << " only "
          << effective.rel[p]
          << "x (incl. one level of callees): an early return or throw "
             "leaks the resource — use the RAII wrapper or "
             "lint:allow(raii-pair) on a deliberate acquire-wrapper";
      finding.message = msg.str();
      findings.push_back(std::move(finding));
    }
  }
}

void ErrpathPass::check_throws() {
  for (std::size_t file_idx = 0; file_idx < project.files.size();
       ++file_idx) {
    const SourceFile& file = project.files[file_idx];
    const std::vector<Token>& toks = cg.file_tokens[file_idx];
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (!toks[i].ident() || !toks[i].is("throw")) continue;
      // `throw [ns::]*Type(...)`: last identifier of the qualified name.
      std::string type;
      std::size_t j = i + 1;
      while (j < toks.size() && (toks[j].ident() || toks[j].is("::"))) {
        if (toks[j].ident()) type = toks[j].text;
        ++j;
      }
      if (!typed_error(type)) continue;
      const std::size_t origin = cg.fn_at(file_idx, i);
      if (origin == npos) continue;
      // Reverse BFS: does ANY caller path install a handler?
      std::set<std::size_t> visited{origin};
      std::deque<std::size_t> queue{origin};
      bool handled = false;
      while (!queue.empty() && !handled) {
        const std::size_t cur = queue.front();
        queue.pop_front();
        if (handles(cg.fns[cur], type)) {
          handled = true;
          break;
        }
        auto rev = reverse_edges.find(cur);
        if (rev == reverse_edges.end()) continue;
        for (std::size_t caller : rev->second) {
          if (visited.insert(caller).second) queue.push_back(caller);
        }
      }
      if (handled) continue;
      const std::size_t line = toks[i].line;
      if (file.allows(line, "unhandled-throw")) continue;
      Finding finding;
      finding.pass = "errpath";
      finding.rule = "unhandled-throw";
      finding.file = file.path;
      finding.line = line;
      finding.message =
          "throw of " + type + " in '" + cg.fns[origin].qname +
          "' reaches no catch for it on any caller path (retry ladder, "
          "shutdown or CLI handler) — typed errors must degrade cleanly";
      findings.push_back(std::move(finding));
    }
  }
}

}  // namespace

void pass_errpath(const Project& project, const Options& opts,
                  std::vector<Finding>& findings) {
  ErrpathPass pass{project, opts, findings, build_callgraph(project), {}};
  pass.build_reverse_edges();
  pass.check_raii_pairs();
  pass.check_throws();
}

}  // namespace elmo_analyze
