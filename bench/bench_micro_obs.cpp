// Microbenchmarks for the observability primitives.
//
// The numbers that justify the design decisions:
//   - PhaseTimer: interned Phase enum add vs the historical string add
//     (the satellite task that replaced the map<string,double> hot path),
//   - Counter/Histogram: dormant (disabled registry) vs enabled cost,
//   - TraceSpan/ScopedPhase: cost with tracing off (the shipping default).
#include <benchmark/benchmark.h>

#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/timer.hpp"

namespace {

using namespace elmo;

// --------------------------------------------------------------- PhaseTimer

void BM_PhaseTimerAddEnum(benchmark::State& state) {
  PhaseTimer timer;
  for (auto _ : state) {
    timer.add(Phase::kGenCand, 1e-9);
    benchmark::DoNotOptimize(timer);
  }
}
BENCHMARK(BM_PhaseTimerAddEnum);

void BM_PhaseTimerAddInternedString(benchmark::State& state) {
  // The pre-refactor hot path: phase named by string.  Now routed through
  // phase_from_name onto the array — compare with the map fallback below.
  PhaseTimer timer;
  const std::string name = "gen cand";
  for (auto _ : state) {
    timer.add(name, 1e-9);
    benchmark::DoNotOptimize(timer);
  }
}
BENCHMARK(BM_PhaseTimerAddInternedString);

void BM_PhaseTimerAddAdhocString(benchmark::State& state) {
  // Non-interned name: the std::map path every add used to take.
  PhaseTimer timer;
  const std::string name = "custom phase";
  for (auto _ : state) {
    timer.add(name, 1e-9);
    benchmark::DoNotOptimize(timer);
  }
}
BENCHMARK(BM_PhaseTimerAddAdhocString);

void BM_ScopedPhaseEnum(benchmark::State& state) {
  PhaseTimer timer;
  for (auto _ : state) {
    ScopedPhase phase(timer, Phase::kRankTest);
    benchmark::DoNotOptimize(timer);
  }
}
BENCHMARK(BM_ScopedPhaseEnum);

// ------------------------------------------------------------------ metrics

void BM_CounterAddDisabled(benchmark::State& state) {
  obs::Registry registry;  // disabled: the shipping default
  obs::Counter counter = registry.counter("bench");
  for (auto _ : state) {
    counter.add(1);
  }
}
BENCHMARK(BM_CounterAddDisabled);

void BM_CounterAddEnabled(benchmark::State& state) {
  obs::Registry registry;
  registry.set_enabled(true);
  obs::Counter counter = registry.counter("bench");
  for (auto _ : state) {
    counter.add(1);
  }
}
BENCHMARK(BM_CounterAddEnabled);

void BM_HistogramObserveEnabled(benchmark::State& state) {
  obs::Registry registry;
  registry.set_enabled(true);
  obs::Histogram hist = registry.histogram("bench");
  std::uint64_t value = 0;
  for (auto _ : state) {
    hist.observe(value++);
  }
}
BENCHMARK(BM_HistogramObserveEnabled);

// -------------------------------------------------------------------- trace

void BM_TraceSpanDisabled(benchmark::State& state) {
  // No recorder installed: construction must reduce to one relaxed load.
  for (auto _ : state) {
    obs::TraceSpan span("bench", "solve");
    benchmark::DoNotOptimize(span);
  }
}
BENCHMARK(BM_TraceSpanDisabled);

void BM_TraceSpanEnabled(benchmark::State& state) {
  obs::TraceRecorder recorder;
  obs::install_trace(&recorder);
  for (auto _ : state) {
    obs::TraceSpan span("bench", "solve");
    benchmark::DoNotOptimize(span);
  }
  obs::install_trace(nullptr);
}
BENCHMARK(BM_TraceSpanEnabled);

}  // namespace

BENCHMARK_MAIN();
