# Empty compiler generated dependencies file for elmo_compress.
# This may be replaced when dependencies are built.
