// elmo_analyze — shared-state concurrency pass.
//
// Static complement to the TSan preset: find globals, statics, class
// members and by-reference-captured locals that are MUTATED inside a
// concurrent execution context without any of the three excuses the
// codebase recognizes:
//
//   1. a scoped guard (lock_guard/unique_lock/scoped_lock) alive at the
//      mutation site — reuses the lock pass's guard model via the call
//      graph's guard spans;
//   2. an std::atomic type on the variable;
//   3. an explicit `// analyze:shared-ok` (or lint:allow(shared-mutation))
//      annotation on the mutation line or the line above, for sites that
//      are provably race-free by construction (e.g. per-rank disjoint
//      array slots).
//
// Concurrent contexts are: lambda arguments of parallel_for_dynamic /
// parallel_for_chunks / ThreadPool::submit / std::async / Watchdog::arm,
// bodies handed to std::thread (directly, via a named thread variable, or
// via emplace_back/push_back on a container of threads — the mpsim rank
// pattern), plus — one level deep — any named function called from such a
// body.  Functions whose name ends in `_locked` are exempt by repo
// convention: the caller already holds the guard.
//
// Rule `shared-unseen` (only with --tsan-log=FILE): parse a
// ThreadSanitizer report and flag race locations in project files that no
// static shared-mutation finding sits within 3 lines of — the
// cross-check that keeps the static model honest against the dynamic one.

#include <fstream>
#include <sstream>

#include "analyze/analyzer.hpp"
#include "analyze/callgraph.hpp"

namespace elmo_analyze {

namespace {

constexpr std::size_t npos = CallGraph::npos;

bool is_assign_op(const std::string& s) {
  return s == "=" || s == "+=" || s == "-=" || s == "*=" || s == "/=" ||
         s == "%=" || s == "&=" || s == "|=" || s == "^=" || s == "<<=" ||
         s == ">>=";
}

bool is_mutating_method(const std::string& s) {
  static const std::set<std::string> kMutators = {
      "push_back", "emplace_back", "pop_back",  "push_front", "pop_front",
      "insert",    "emplace",      "erase",     "clear",      "resize",
      "reserve",   "assign",       "append",    "merge",      "swap",
      "push",      "pop",          "store",     // store is atomic-only; the
  };                                            // atomic check excuses it
  return kMutators.count(s) != 0;
}

bool spawn_name(const std::string& s) {
  return s == "parallel_for_dynamic" || s == "parallel_for_chunks" ||
         s == "submit" || s == "async" || s == "thread" || s == "jthread" ||
         s == "arm";
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// The `// analyze:shared-ok` escape lives on the raw line (or the one
/// above) like lint:allow does.
bool shared_ok(const SourceFile& f, std::size_t line) {
  for (std::size_t l = line; l + 1 >= line && l > 0; --l) {
    if (l - 1 < f.raw_lines.size() &&
        f.raw_lines[l - 1].find("analyze:shared-ok") != std::string::npos) {
      return true;
    }
    if (l == 1) break;
  }
  return false;
}

/// Mutation target: the root object of the mutated lvalue plus the first
/// member accessed through it (for `this->member` and `obj.field` shapes).
struct Target {
  std::string base;    // leftmost identifier of the access chain
  std::string member;  // first name after the base, "" when none
  bool valid = false;
};

/// Walk backwards from `end` (the last token of an lvalue expression)
/// through subscripts, call parens and member accesses to the root
/// identifier.  Unresolvable shapes return invalid — bias toward silence.
Target lvalue_base(const std::vector<Token>& toks, std::size_t end) {
  Target t;
  std::vector<std::string> chain;  // rightmost-first
  std::size_t i = end;
  for (int steps = 0; steps < 24; ++steps) {
    if (toks[i].is("]") || toks[i].is(")")) {
      const std::size_t open = match_backward(toks, i);
      if (open == npos || open == 0) return t;
      i = open - 1;
      continue;
    }
    if (!toks[i].ident()) return t;
    chain.push_back(toks[i].text);
    if (i >= 2 && (toks[i - 1].is(".") || toks[i - 1].is("->"))) {
      i -= 2;
      continue;
    }
    // `ns::var`: take the rightmost identifier as the name; qualification
    // does not change which variable is mutated.
    if (i >= 1 && toks[i - 1].is("*")) return t;  // deref-assign: unknown
    t.base = chain.back();
    if (chain.size() >= 2) t.member = chain[chain.size() - 2];
    t.valid = true;
    return t;
  }
  return t;
}

struct SharedPass {
  const Project& project;
  const Options& opts;
  std::vector<Finding>& findings;
  CallGraph cg;
  // FnDef index -> is the receiver object (`this`) known to be shared
  // between threads?  Lambdas spawned as thread bodies: yes.  Named
  // member functions reached by expansion: only when the call went
  // through a shared receiver — member mutations in a function invoked
  // on a lane-local object are thread-private.
  std::map<std::size_t, bool> concurrent;
  std::set<std::string> emitted;             // dedupe file:line:var

  void collect_roots();
  void expand_one_level();
  bool receiver_is_shared(const FnDef& caller, const CallRef& call);
  void scan_fn(std::size_t fn_idx, bool receiver_shared);
  void flag(std::size_t fn_idx, std::size_t tok, const std::string& var,
            const std::string& kind);
  bool excused_by_ancestry(std::size_t fn_idx, const std::string& name,
                           bool& found_shared);
  void cross_check_tsan();
};

void SharedPass::collect_roots() {
  for (const CallRef& call : cg.calls) {
    if (call.caller == npos) continue;
    const FnDef& caller = cg.fns[call.caller];
    bool spawn = spawn_name(call.callee);
    if (!spawn && caller.thread_vecs.count(call.callee) != 0) {
      spawn = true;  // std::thread watcher(...): callee is the variable
    }
    if (!spawn && call.member &&
        (call.callee == "emplace_back" || call.callee == "push_back")) {
      if (caller.thread_vecs.count(call.base) != 0) {
        spawn = true;
      } else if (!caller.class_name.empty()) {
        const VarDef* member = cg.find_member(caller.class_name, call.base);
        if (member != nullptr && member->is_thread) spawn = true;
      }
    }
    if (!spawn) continue;
    for (std::size_t lam : call.lambda_args) concurrent[lam] = true;
    // Lambdas passed by name: `auto lane = [..]{..}; spawn(lane)`.
    const std::vector<Token>& toks = cg.file_tokens[call.file];
    if (call.tok + 1 < toks.size() && toks[call.tok + 1].is("(")) {
      const std::size_t close = match_forward(toks, call.tok + 1);
      for (std::size_t k = call.tok + 2; k != npos && k < close; ++k) {
        if (!toks[k].ident()) continue;
        for (std::size_t idx : cg.resolve(toks[k].text)) {
          if (cg.fns[idx].is_lambda) concurrent[idx] = true;
        }
      }
    }
  }
}

/// Does a member call from `caller` go through an object other threads
/// can also reach?  Unknown receivers answer no — silence over noise.
bool SharedPass::receiver_is_shared(const FnDef& caller,
                                    const CallRef& call) {
  if (!call.member) {
    // Implicit-this member call (or free function: the scan flags only
    // globals there anyway).
    return caller.is_lambda ? caller.capture_this : true;
  }
  const std::string& base = call.base;
  if (base.empty()) return false;  // chained expr().m(): unknown
  if (base == "this") return true;
  if (caller.locals.count(base) != 0 ||
      caller.val_captures.count(base) != 0) {
    return false;  // lane-local object
  }
  if (caller.is_lambda &&
      (caller.ref_captures.count(base) != 0 || caller.capture_all_ref)) {
    // Ref-captured local of the spawning frame: shared with the spawner
    // and every sibling lane.
    std::size_t p = caller.parent;
    for (int depth = 0; p != npos && depth < 8; ++depth) {
      if (cg.fns[p].locals.count(base) != 0) return true;
      p = cg.fns[p].parent;
    }
  }
  if (!caller.class_name.empty() &&
      (!caller.is_lambda || caller.capture_this) &&
      cg.find_member(caller.class_name, base) != nullptr) {
    return true;
  }
  return cg.find_global(base) != nullptr;
}

void SharedPass::expand_one_level() {
  // Named functions called directly from a concurrent body run on the
  // worker thread too; follow one level (matching the lock pass's depth).
  std::map<std::size_t, bool> extra;
  for (const CallRef& call : cg.calls) {
    if (call.caller == npos || concurrent.count(call.caller) == 0) continue;
    // Container-method names (push_back, merge, ...) are judged at the
    // call site; bare-name resolution would drag in every class that
    // happens to define one.
    if (is_mutating_method(call.callee)) continue;
    const FnDef& caller = cg.fns[call.caller];
    const bool shared_recv = receiver_is_shared(caller, call);
    for (std::size_t idx : cg.resolve(call.callee)) {
      const FnDef& callee = cg.fns[idx];
      if (callee.is_lambda) continue;
      if (ends_with(callee.qname, "_locked")) continue;  // caller holds lock
      if (!callee.class_name.empty() && !shared_recv) {
        // Member function on a lane-local object: its member mutations
        // are private; its global mutations would need a second level we
        // deliberately don't model.
        continue;
      }
      auto it = extra.find(idx);
      if (it == extra.end()) {
        extra.emplace(idx, shared_recv);
      } else {
        it->second = it->second || shared_recv;
      }
    }
  }
  // Lambdas defined inside a concurrent body execute there when invoked.
  for (std::size_t i = 0; i < cg.fns.size(); ++i) {
    const FnDef& f = cg.fns[i];
    if (f.is_lambda && f.parent != npos && concurrent.count(f.parent) != 0) {
      extra.emplace(i, true);
    }
  }
  for (const auto& entry : extra) {
    auto it = concurrent.find(entry.first);
    if (it == concurrent.end()) {
      concurrent.insert(entry);
    } else {
      it->second = it->second || entry.second;
    }
  }
}

/// For a name not local to `fn_idx`: search the lexical ancestor chain for
/// the local it captures.  Returns true when the mutation is excused
/// (atomic local, or nobody shares it); `found_shared` reports whether a
/// plain ancestor local was found (i.e. a real cross-thread stack write).
bool SharedPass::excused_by_ancestry(std::size_t fn_idx,
                                     const std::string& name,
                                     bool& found_shared) {
  found_shared = false;
  const FnDef* f = &cg.fns[fn_idx];
  // Only reference captures leak the parent's storage.
  if (f->val_captures.count(name) != 0) return true;
  const bool by_ref =
      f->capture_all_ref || f->ref_captures.count(name) != 0;
  if (!by_ref) return false;
  std::size_t p = f->parent;
  for (int depth = 0; p != npos && depth < 8; ++depth) {
    const FnDef& anc = cg.fns[p];
    if (anc.atomic_locals.count(name) != 0) return true;
    if (anc.locals.count(name) != 0) {
      found_shared = true;
      return false;
    }
    p = anc.parent;
  }
  return false;
}

void SharedPass::flag(std::size_t fn_idx, std::size_t tok,
                      const std::string& var, const std::string& kind) {
  const FnDef& f = cg.fns[fn_idx];
  const SourceFile& file = project.files[f.file];
  const std::size_t line = cg.file_tokens[f.file][tok].line;
  if (cg.guarded_at(fn_idx, tok)) return;
  if (shared_ok(file, line)) return;
  if (file.allows(line, "shared-mutation")) return;
  std::ostringstream dedupe;
  dedupe << f.file << ":" << line << ":" << var;
  if (!emitted.insert(dedupe.str()).second) return;
  Finding finding;
  finding.pass = "shared";
  finding.rule = "shared-mutation";
  finding.file = file.path;
  finding.line = line;
  finding.message = kind + " '" + var + "' mutated in concurrent context '" +
                    f.qname +
                    "' without guard/atomic (annotate analyze:shared-ok if "
                    "race-free by construction)";
  findings.push_back(std::move(finding));
}

void SharedPass::scan_fn(std::size_t fn_idx, bool receiver_shared) {
  const FnDef& f = cg.fns[fn_idx];
  if (f.body_end <= f.body_begin) return;
  const std::vector<Token>& toks = cg.file_tokens[f.file];
  for (std::size_t i = f.body_begin + 1; i < f.body_end; ++i) {
    const Token& t = toks[i];
    std::size_t lvalue_end = npos;
    std::size_t site = i;
    if (t.kind == Token::Kind::kPunct && is_assign_op(t.text) && i > 0) {
      lvalue_end = i - 1;
    } else if (t.is("++") || t.is("--")) {
      if (i > 0 && (toks[i - 1].ident() || toks[i - 1].is("]") ||
                    toks[i - 1].is(")"))) {
        lvalue_end = i - 1;  // postfix
      } else if (i + 1 < f.body_end) {
        // Prefix: the operand is the following primary expression; walk
        // forward over idents/accessors, then back from its last token.
        std::size_t j = i + 1;
        while (j + 1 < f.body_end &&
               (toks[j + 1].is(".") || toks[j + 1].is("->") ||
                toks[j + 1].is("::")) &&
               toks[j].ident()) {
          j += 2;
        }
        if (toks[j].ident()) lvalue_end = j;
      }
    } else if (t.ident() && is_mutating_method(t.text) && i >= 2 &&
               (toks[i - 1].is(".") || toks[i - 1].is("->")) &&
               i + 1 < f.body_end && toks[i + 1].is("(")) {
      lvalue_end = i - 2;
    }
    if (lvalue_end == npos) continue;
    const Target target = lvalue_base(toks, lvalue_end);
    if (!target.valid) continue;

    // Attribute the site to the innermost body containing it — a nested
    // lambda owns its own locals.
    std::size_t owner = cg.fn_at(f.file, site);
    if (owner == npos) owner = fn_idx;
    // Only scan sites whose innermost owner is this fn: nested lambdas in
    // the concurrent set are scanned on their own turn, and nested
    // lambdas NOT in the set (e.g. a comparator) still run on this thread
    // — treat their sites as ours only when they are not separately
    // concurrent.
    if (owner != fn_idx && concurrent.count(owner) != 0) continue;
    const FnDef& ctx = cg.fns[owner];

    const std::string& base = target.base;
    if (base == "this") {
      if (target.member.empty() || !receiver_shared) continue;
      const std::string& cls = ctx.class_name;
      const VarDef* member =
          cls.empty() ? nullptr : cg.find_member(cls, target.member);
      if (member == nullptr) continue;  // unknown member: stay silent
      if (member->is_atomic || member->is_mutex || member->is_const) continue;
      flag(fn_idx, site, target.member, "member");
      continue;
    }
    if (ctx.locals.count(base) != 0) continue;        // thread-private
    if (ctx.atomic_locals.count(base) != 0) continue;
    bool found_shared = false;
    if (ctx.is_lambda) {
      if (excused_by_ancestry(owner, base, found_shared)) continue;
      if (found_shared) {
        flag(fn_idx, site, base, "captured local");
        continue;
      }
    }
    // Class member accessed without `this->`?
    if (!ctx.class_name.empty() &&
        (!ctx.is_lambda || ctx.capture_this)) {
      const VarDef* member = cg.find_member(ctx.class_name, base);
      if (member != nullptr) {
        if (member->is_atomic || member->is_mutex || member->is_const ||
            member->is_thread || !receiver_shared) {
          continue;
        }
        flag(fn_idx, site, base, "member");
        continue;
      }
    }
    const VarDef* global = cg.find_global(base);
    if (global != nullptr) {
      if (global->is_atomic || global->is_mutex || global->is_const) continue;
      flag(fn_idx, site, base,
           global->is_static_local ? "static local" : "global");
      continue;
    }
    // Unresolved name: silence.
  }
}

void SharedPass::cross_check_tsan() {
  std::ifstream in(opts.tsan_log_path);
  if (!in) {
    Finding finding;
    finding.pass = "shared";
    finding.rule = "shared-unseen";
    finding.file = opts.tsan_log_path;
    finding.line = 0;
    finding.message = "cannot read TSan log";
    findings.push_back(std::move(finding));
    return;
  }
  // Collect static shared-mutation lines per file for proximity matching.
  std::map<std::string, std::set<std::size_t>> static_hits;
  for (const Finding& f : findings) {
    if (f.pass == "shared" && f.rule == "shared-mutation") {
      static_hits[f.file].insert(f.line);
    }
  }
  // Annotated sites count as "seen" too — they ARE static knowledge.
  for (const SourceFile& f : project.files) {
    for (std::size_t l = 0; l < f.raw_lines.size(); ++l) {
      if (f.raw_lines[l].find("analyze:shared-ok") != std::string::npos ||
          f.raw_lines[l].find("lint:allow(shared-mutation)") !=
              std::string::npos) {
        static_hits[f.path].insert(l + 1);
        static_hits[f.path].insert(l + 2);  // annotation-above form
      }
    }
  }
  std::set<std::string> seen;
  std::string line;
  bool in_race = false;
  while (std::getline(in, line)) {
    if (line.find("WARNING: ThreadSanitizer:") != std::string::npos) {
      in_race = true;
    }
    if (!in_race) continue;
    if (line.find("SUMMARY:") != std::string::npos) in_race = false;
    // Extract `path.cpp:123` / `path.hpp:123` occurrences.
    for (std::size_t pos = 0; pos < line.size();) {
      std::size_t ext = line.find(".cpp:", pos);
      const std::size_t hpp = line.find(".hpp:", pos);
      if (hpp != std::string::npos &&
          (ext == std::string::npos || hpp < ext)) {
        ext = hpp;
      }
      if (ext == std::string::npos) break;
      std::size_t begin = ext;
      while (begin > 0 && (is_ident_char(line[begin - 1]) ||
                           line[begin - 1] == '/' || line[begin - 1] == '.' ||
                           line[begin - 1] == '-')) {
        --begin;
      }
      const std::string path = line.substr(begin, ext + 4 - begin);
      std::size_t num_begin = ext + 5;
      std::size_t num_end = num_begin;
      while (num_end < line.size() && line[num_end] >= '0' &&
             line[num_end] <= '9') {
        ++num_end;
      }
      pos = num_end;
      if (num_end == num_begin) continue;
      const std::size_t race_line = static_cast<std::size_t>(
          std::stoul(line.substr(num_begin, num_end - num_begin)));
      // Suffix-match against project files.
      for (const SourceFile& f : project.files) {
        if (!ends_with(f.path, path) && !ends_with(path, f.path)) continue;
        bool covered = false;
        auto hits = static_hits.find(f.path);
        if (hits != static_hits.end()) {
          for (std::size_t l : hits->second) {
            const std::size_t lo = l > 3 ? l - 3 : 1;
            if (race_line >= lo && race_line <= l + 3) covered = true;
          }
        }
        if (covered) break;
        std::ostringstream key;
        key << f.path << ":" << race_line;
        if (!seen.insert(key.str()).second) break;
        Finding finding;
        finding.pass = "shared";
        finding.rule = "shared-unseen";
        finding.file = f.path;
        finding.line = race_line;
        finding.message =
            "TSan reports a race here but the static shared-state pass is "
            "silent — extend the model or annotate the site";
        findings.push_back(std::move(finding));
        break;
      }
    }
  }
}

}  // namespace

void pass_shared(const Project& project, const Options& opts,
                 std::vector<Finding>& findings) {
  SharedPass pass{project, opts, findings, build_callgraph(project), {}, {}};
  pass.collect_roots();
  pass.expand_one_level();
  for (const auto& entry : pass.concurrent) {
    pass.scan_fn(entry.first, entry.second);
  }
  if (!opts.tsan_log_path.empty()) pass.cross_check_tsan();
}

}  // namespace elmo_analyze
