#include "models/toy.hpp"

#include "network/network.hpp"

namespace elmo::models {

Network toy_network() {
  Network net;
  // Internal metabolites inside the dotted boundary of Fig. 1.
  for (const char* name : {"A", "B", "C", "D", "P"})
    net.add_metabolite(name, /*external=*/false);
  // External pools.
  for (const char* name : {"Aext", "Bext", "Dext", "Pext"})
    net.add_metabolite(name, /*external=*/true);

  // Columns of the stoichiometry matrix in Eq (2), in order r1..r9.
  net.add_reaction("r1", false, {{"Aext", -1}, {"A", 1}});
  net.add_reaction("r2", false, {{"A", -1}, {"C", 1}});
  net.add_reaction("r3", false, {{"C", -1}, {"D", 1}, {"P", 1}});
  net.add_reaction("r4", false, {{"P", -1}, {"Pext", 1}});
  net.add_reaction("r5", false, {{"A", -1}, {"B", 1}});
  net.add_reaction("r6r", true, {{"B", -1}, {"C", 1}});
  net.add_reaction("r7", false, {{"B", -1}, {"P", 2}});
  net.add_reaction("r8r", true, {{"B", -1}, {"Bext", 1}});
  net.add_reaction("r9", false, {{"D", -1}, {"Dext", 1}});
  return net;
}

const std::vector<std::vector<std::int64_t>>& toy_efms_paper() {
  // Columns of Eq (7); entry order r1..r9.
  static const std::vector<std::vector<std::int64_t>> efms = {
      {1, 1, 0, 0, 0, -1, 0, 1, 0},   // Aext->A->C->B->Bext
      {0, 0, 1, 1, 0, 1, 0, -1, 1},   // Bext->B->C->D+P
      {1, 0, 0, 0, 1, 0, 0, 1, 0},    // Aext->A->B->Bext
      {0, 0, 0, 2, 0, 0, 1, -1, 0},   // Bext->B->2P
      {1, 1, 1, 1, 0, 0, 0, 0, 1},    // Aext->A->C->D+P
      {1, 1, 0, 2, 0, -1, 1, 0, 0},   // Aext->A->C->B->2P
      {1, 0, 1, 1, 1, 1, 0, 0, 1},    // Aext->A->B->C->D+P
      {1, 0, 0, 2, 1, 0, 1, 0, 0},    // Aext->A->B->2P
  };
  return efms;
}

}  // namespace elmo::models
