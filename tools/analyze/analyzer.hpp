// elmo_analyze — driver: option parsing, file discovery, pass dispatch.
//
// The analyzer is self-contained C++17 (no libclang, no third-party
// dependencies) so it can be bootstrapped with a bare `g++ -std=c++17`
// before the CMake tree exists — scripts/lint.sh does exactly that.
//
// Passes (select with --pass=LIST, default all):
//   include   module layering DAG, facade enforcement for obs/check,
//             include cycles, #pragma once, IWYU-lite unused/missing
//             includes, Graphviz module-graph dump (--dot)
//   lock      static mutex acquisition graph: nested-guard edges with
//             enclosing-function attribution, one-level interprocedural
//             propagation, cycle detection, locks held across blocking
//             calls, and a diff against a runtime lockdep edge dump
//             (--lockdep-edges, format: one "A -> B" per line as printed
//             by elmo::check::LockOrderGraph::edges())
//   overflow  raw * / + / << on int64_t-typed expressions inside
//             src/nullspace, src/linalg, src/core that bypass the
//             bigint/checked.hpp helpers
//   lint      the historical elmo_lint rules (naked-new, no-rand,
//             catch-all, reinterpret-cast)
//   shared    interprocedural shared-state concurrency pass: globals /
//             statics / members / ref-captured locals mutated inside
//             parallel_for_dynamic / ThreadPool::submit / std::thread
//             bodies without a guard, an atomic type, or an
//             `// analyze:shared-ok` annotation; --tsan-log=FILE
//             cross-checks a ThreadSanitizer report against the static
//             findings (rule shared-unseen)
//   errpath   pairs manual acquire/release idioms (trace spans, spill
//             blocks, leases) across one call level and verifies every
//             throw of a typed error (ResourceError, CancelledError,
//             DeadlineExceededError) reaches a catch on some caller path
//   determinism  unordered-container iteration, pointer-keyed ordering
//             and wall-clock/thread-id use inside the solver-output
//             modules (nullspace, core, linalg, compress)
//   protocol  per-role communication skeletons extracted from mpsim call
//             sites: send/recv peer+tag compatibility, collectives under
//             rank-divergent guards, static send-before-recv deadlock
//             candidates; --flow-log=FILE cross-checks a runtime Chrome
//             trace's flow events against the skeleton (rule flow-unseen)
//   typestate declarative object-protocol machines for SpillFile,
//             MemoryLease, Watchdog tokens, checkpoint repair-before-
//             resume and SparseRankTester warm iterations, with
//             branch-merge and one-level interprocedural propagation
//
// `shared`, `errpath`, `protocol`, `typestate` and the call graph they
// share live on top of callgraph.hpp; see that header for the
// symbol-table model.
#pragma once

#include <string>
#include <vector>

#include "analyze/findings.hpp"
#include "analyze/source.hpp"

namespace elmo_analyze {

struct Options {
  std::string root = ".";
  bool pass_include = true;
  bool pass_lock = true;
  bool pass_overflow = true;
  bool pass_lint = true;
  bool pass_shared = true;
  bool pass_errpath = true;
  bool pass_determinism = true;
  bool pass_protocol = true;
  bool pass_typestate = true;
  std::string baseline_path;
  std::string write_baseline_path;
  std::string json_path;
  std::string dot_path;
  std::string lockdep_edges_path;
  std::string tsan_log_path;       // shared pass: TSan report cross-check
  std::string flow_log_path;       // protocol pass: trace flow cross-check
  std::string format = "text";     // text | sarif (SARIF 2.1.0 on stdout)
  std::vector<std::string> files;  // explicit file arguments, if any
  bool lint_compat = false;        // elmo_lint-shim output format
  std::string tool_name = "elmo_analyze";
};

struct Project {
  std::vector<SourceFile> files;

  /// Index into `files` by root-relative path, or npos.
  [[nodiscard]] std::size_t find(const std::string& path) const;
};

/// Load the project: explicit files when given, otherwise every
/// *.hpp/*.cpp under <root>/src plus — when the directories exist —
/// <root>/tools, <root>/bench and <root>/examples (tests/ stays out: the
/// analyze fixtures under it deliberately violate rules).  Returns false
/// on IO failure (missing file, unreadable root).
bool load_project(const Options& opts, Project& project,
                  std::string& error);

void pass_include(const Project& project, const Options& opts,
                  std::vector<Finding>& findings);
void pass_lock(const Project& project, const Options& opts,
               std::vector<Finding>& findings);
void pass_overflow(const Project& project, const Options& opts,
                   std::vector<Finding>& findings);
void pass_lint(const Project& project, const Options& opts,
               std::vector<Finding>& findings);
void pass_shared(const Project& project, const Options& opts,
                 std::vector<Finding>& findings);
void pass_errpath(const Project& project, const Options& opts,
                  std::vector<Finding>& findings);
void pass_determinism(const Project& project, const Options& opts,
                      std::vector<Finding>& findings);
void pass_protocol(const Project& project, const Options& opts,
                   std::vector<Finding>& findings);
void pass_typestate(const Project& project, const Options& opts,
                    std::vector<Finding>& findings);

/// Full CLI: parse argv, run passes, emit reports.
/// Exit codes: 0 clean, 1 non-baselined findings, 2 usage/IO error.
int run_cli(int argc, char** argv);

}  // namespace elmo_analyze
