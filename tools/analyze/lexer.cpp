#include "analyze/lexer.hpp"

#include <cctype>

namespace elmo_analyze {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Two/three-character operators the passes care about.  Longest match
// first; everything else falls back to single-character punctuation.
const char* const kMultiOps[] = {
    "<<=", ">>=", "->*", "...", "::", "<<", ">>", "->", "==", "!=",
    "<=",  ">=",  "&&",  "||",  "+=", "-=", "*=", "/=", "%=", "&=",
    "|=",  "^=",  "++",  "--",
};

bool raw_string_prefix(const std::string& ident) {
  return ident == "R" || ident == "uR" || ident == "UR" || ident == "LR" ||
         ident == "u8R";
}

// `quote` indexes the '"' of R"delim( ... )delim".  Returns the index just
// past the closing quote (std::string::npos when the opener is not a valid
// raw string), bumping `line` for every newline the body spans.  The
// d-char-seq bound matches strip_noncode's: at most 16 characters, none of
// them parentheses, backslashes, quotes or whitespace.
std::size_t skip_raw_string(const std::string& text, std::size_t quote,
                            std::size_t& line) {
  std::size_t open = std::string::npos;
  for (std::size_t j = quote + 1;
       j < text.size() && j <= quote + 1 + 16; ++j) {
    const char d = text[j];
    if (d == '(') {
      open = j;
      break;
    }
    if (d == ')' || d == '"' || d == '\\' ||
        std::isspace(static_cast<unsigned char>(d)) != 0) {
      return std::string::npos;
    }
  }
  if (open == std::string::npos) return std::string::npos;
  const std::string terminator =
      ")" + text.substr(quote + 1, open - (quote + 1)) + "\"";
  std::size_t end = text.find(terminator, open + 1);
  const std::size_t stop =
      end == std::string::npos ? text.size() : end + terminator.size();
  for (std::size_t j = quote; j < stop && j < text.size(); ++j) {
    if (text[j] == '\n') ++line;
  }
  return stop;
}

// `quote` indexes the opening '"' or '\''.  Returns the index just past
// the closing quote, or past the newline/EOF that cut the literal short.
std::size_t skip_quoted(const std::string& text, std::size_t quote) {
  const char close = text[quote];
  std::size_t j = quote + 1;
  while (j < text.size()) {
    const char c = text[j];
    if (c == '\\' && j + 1 < text.size() && text[j + 1] != '\n') {
      j += 2;
      continue;
    }
    if (c == close) return j + 1;
    if (c == '\n') return j;  // unterminated: let the caller count the line
    ++j;
  }
  return j;
}

}  // namespace

std::vector<Token> lex(const std::string& stripped) {
  std::vector<Token> toks;
  std::size_t line = 1;
  std::size_t i = 0;
  const std::size_t n = stripped.size();
  while (i < n) {
    const char c = stripped[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    if (c == '#') {
      // Preprocessor directive: skip to end of line, honouring backslash
      // continuations.
      while (i < n) {
        std::size_t nl = stripped.find('\n', i);
        if (nl == std::string::npos) {
          i = n;
          break;
        }
        // Find last non-space character before the newline.
        std::size_t last = nl;
        while (last > i &&
               std::isspace(static_cast<unsigned char>(stripped[last - 1])) !=
                   0) {
          --last;
        }
        const bool continued = last > i && stripped[last - 1] == '\\';
        i = nl + 1;
        ++line;
        if (!continued) break;
      }
      continue;
    }
    // String/char literals normally never reach the lexer — the passes
    // feed stripped text — but unit-level callers (and any future pass
    // lexing raw lines) must not have literal bodies leak through as
    // tokens: `R"(send()"` would otherwise emit a phantom `send(`.  The
    // digit-separator guard mirrors the stripper: `1'000` keeps its `'`
    // in stripped text and must stay a number + punctuation.
    if (c == '"' ||
        (c == '\'' &&
         (i == 0 ||
          std::isdigit(static_cast<unsigned char>(stripped[i - 1])) == 0))) {
      i = skip_quoted(stripped, i);
      continue;
    }
    if (ident_start(c)) {
      std::size_t j = i + 1;
      while (j < n && ident_char(stripped[j])) ++j;
      std::string text = stripped.substr(i, j - i);
      if (j < n && stripped[j] == '"' && raw_string_prefix(text)) {
        const std::size_t after = skip_raw_string(stripped, j, line);
        if (after != std::string::npos) {
          i = after;
          continue;
        }
      }
      toks.push_back({Token::Kind::kIdent, std::move(text), line});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      std::size_t j = i + 1;
      while (j < n && (ident_char(stripped[j]) || stripped[j] == '.')) ++j;
      toks.push_back({Token::Kind::kNumber, stripped.substr(i, j - i), line});
      i = j;
      continue;
    }
    bool matched = false;
    for (const char* op : kMultiOps) {
      const std::size_t len = std::char_traits<char>::length(op);
      if (stripped.compare(i, len, op) == 0) {
        toks.push_back({Token::Kind::kPunct, op, line});
        i += len;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    toks.push_back({Token::Kind::kPunct, std::string(1, c), line});
    ++i;
  }
  return toks;
}

std::size_t match_backward(const std::vector<Token>& toks,
                           std::size_t close_idx) {
  if (close_idx >= toks.size()) return std::string::npos;
  const std::string& close = toks[close_idx].text;
  std::string open;
  if (close == ")") {
    open = "(";
  } else if (close == "]") {
    open = "[";
  } else if (close == "}") {
    open = "{";
  } else {
    return std::string::npos;
  }
  int depth = 0;
  for (std::size_t i = close_idx + 1; i-- > 0;) {
    if (toks[i].text == close) {
      ++depth;
    } else if (toks[i].text == open) {
      --depth;
      if (depth == 0) return i;
    }
  }
  return std::string::npos;
}

std::size_t match_forward(const std::vector<Token>& toks,
                          std::size_t open_idx) {
  if (open_idx >= toks.size()) return std::string::npos;
  const std::string& open = toks[open_idx].text;
  std::string close;
  if (open == "(") {
    close = ")";
  } else if (open == "[") {
    close = "]";
  } else if (open == "{") {
    close = "}";
  } else {
    return std::string::npos;
  }
  int depth = 0;
  for (std::size_t i = open_idx; i < toks.size(); ++i) {
    if (toks[i].text == open) {
      ++depth;
    } else if (toks[i].text == close) {
      --depth;
      if (depth == 0) return i;
    }
  }
  return std::string::npos;
}

}  // namespace elmo_analyze
