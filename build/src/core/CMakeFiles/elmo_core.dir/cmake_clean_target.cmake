file(REMOVE_RECURSE
  "libelmo_core.a"
)
