#include "analysis/yield.hpp"

#include "bigint/bigint.hpp"
#include "bigint/rational.hpp"
#include "network/network.hpp"
#include "support/assert.hpp"

namespace elmo {

std::vector<ModeYield> mode_yields(
    const std::vector<std::vector<BigInt>>& modes, ReactionId substrate,
    ReactionId product) {
  std::vector<ModeYield> yields;
  for (std::size_t m = 0; m < modes.size(); ++m) {
    ELMO_REQUIRE(substrate < modes[m].size() && product < modes[m].size(),
                 "mode_yields: bad reaction id");
    const BigInt& s = modes[m][substrate];
    if (s.is_zero()) continue;
    ModeYield y;
    y.mode_index = m;
    y.yield = BigRational(modes[m][product].abs(), s.abs());
    yields.push_back(std::move(y));
  }
  return yields;
}

std::optional<ModeYield> optimal_yield(
    const std::vector<std::vector<BigInt>>& modes, ReactionId substrate,
    ReactionId product) {
  auto yields = mode_yields(modes, substrate, product);
  if (yields.empty()) return std::nullopt;
  std::size_t best = 0;
  for (std::size_t k = 1; k < yields.size(); ++k)
    if (yields[best].yield < yields[k].yield) best = k;
  return yields[best];
}

std::vector<std::size_t> yield_histogram(const std::vector<ModeYield>& yields,
                                         std::size_t buckets) {
  ELMO_REQUIRE(buckets > 0, "yield_histogram: need at least one bucket");
  std::vector<std::size_t> histogram(buckets, 0);
  if (yields.empty()) return histogram;
  double max_yield = 0;
  for (const auto& y : yields)
    max_yield = std::max(max_yield, y.yield.to_double());
  if (max_yield <= 0) {
    histogram[0] = yields.size();
    return histogram;
  }
  for (const auto& y : yields) {
    auto bin = static_cast<std::size_t>(y.yield.to_double() / max_yield *
                                        static_cast<double>(buckets));
    if (bin >= buckets) bin = buckets - 1;
    ++histogram[bin];
  }
  return histogram;
}

}  // namespace elmo
