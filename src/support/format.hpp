// Small formatting helpers shared by benches and examples.
#pragma once

#include <cstdint>
#include <iomanip>
#include <sstream>
#include <string>

namespace elmo {

/// Format an integer with thousands separators: 1515314 -> "1,515,314".
/// The paper's tables print candidate/EFM counts this way.
inline std::string with_commas(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  int pos = static_cast<int>(digits.size());
  for (char c : digits) {
    out.push_back(c);
    --pos;
    if (pos > 0 && pos % 3 == 0) out.push_back(',');
  }
  return out;
}

/// Format seconds with fixed precision, e.g. 141.6 -> "141.60".
inline std::string seconds_str(double seconds, int precision = 2) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << seconds;
  return os.str();
}

/// Human-readable byte count, e.g. 1572864 -> "1.50 MiB".
inline std::string bytes_str(std::size_t bytes) {
  static const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  std::ostringstream os;
  os << std::fixed << std::setprecision(unit == 0 ? 0 : 2) << value << ' '
     << units[unit];
  return os.str();
}

}  // namespace elmo
