// Out-of-core candidate generation: the column codec over resource::SpillFile
// and the chunked drive loop the governed solvers use under memory pressure.
//
// Under governor pressure (or in spill-always degrade mode) an iteration's
// candidate generation runs in engine-index chunks; each chunk's accepted
// columns are serialized into a checksummed spill block and dropped from
// memory, then every block streams back for the merge pass.  Cross-chunk
// duplicate supports survive until the final sort_and_dedup — exactly the
// mechanism Algorithm 2 already uses to dedup across ranks, so the final
// column set is identical to the in-memory path (equal-support candidates
// are value-identical, see iteration.hpp).
//
// Serialization is value-only: supports are recomputed by
// FluxColumn::from_values on read-back (values are already primitive, so
// the round trip is bit-exact).  Scalars encode as little-endian i64
// (CheckedI64), the BigInt wire format, or raw IEEE bits (double kernel).
#pragma once

#include <cstring>
#include <vector>

#include "bigint/bigint.hpp"
#include "nullspace/flux_column.hpp"
#include "nullspace/iteration.hpp"
#include "nullspace/pairgen.hpp"
#include "nullspace/stats.hpp"
#include "resource/governor.hpp"
#include "resource/spill.hpp"
#include "support/error.hpp"
#include "support/timer.hpp"

namespace elmo {

namespace detail {

inline void spill_put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

inline std::uint32_t spill_get_u32(const std::uint8_t*& cursor,
                                   const std::uint8_t* end) {
  if (end - cursor < 4) throw ParseError("spill block: truncated u32");
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | cursor[i];
  cursor += 4;
  return v;
}

template <typename Scalar>
void spill_put_scalar(std::vector<std::uint8_t>& out, const Scalar& v) {
  if constexpr (std::is_same_v<Scalar, BigInt>) {
    v.serialize(out);
  } else if constexpr (std::is_same_v<Scalar, double>) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    for (int i = 0; i < 8; ++i)
      out.push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
  } else {
    const auto u = static_cast<std::uint64_t>(v.value());
    for (int i = 0; i < 8; ++i)
      out.push_back(static_cast<std::uint8_t>(u >> (8 * i)));
  }
}

template <typename Scalar>
Scalar spill_get_scalar(const std::uint8_t*& cursor, const std::uint8_t* end) {
  if constexpr (std::is_same_v<Scalar, BigInt>) {
    return BigInt::deserialize(cursor, end);
  } else {
    if (end - cursor < 8) throw ParseError("spill block: truncated scalar");
    std::uint64_t bits = 0;
    for (int i = 7; i >= 0; --i) bits = (bits << 8) | cursor[i];
    cursor += 8;
    if constexpr (std::is_same_v<Scalar, double>) {
      double v;
      std::memcpy(&v, &bits, sizeof(v));
      return v;
    } else {
      return scalar_from_i64<Scalar>(static_cast<std::int64_t>(bits));
    }
  }
}

}  // namespace detail

/// Serialize a batch of columns into one spill-block body (values only).
template <typename Scalar, typename Support>
std::vector<std::uint8_t> encode_spill_block(
    const std::vector<FluxColumn<Scalar, Support>>& columns) {
  std::vector<std::uint8_t> out;
  detail::spill_put_u32(out, static_cast<std::uint32_t>(columns.size()));
  for (const auto& column : columns) {
    detail::spill_put_u32(out,
                          static_cast<std::uint32_t>(column.values.size()));
    for (const auto& v : column.values) detail::spill_put_scalar(out, v);
  }
  return out;
}

/// Inverse of encode_spill_block; appends to `out`.
template <typename Scalar, typename Support>
void decode_spill_block(const std::vector<std::uint8_t>& body,
                        std::vector<FluxColumn<Scalar, Support>>& out) {
  const std::uint8_t* cursor = body.data();
  const std::uint8_t* end = body.data() + body.size();
  const std::uint32_t count = detail::spill_get_u32(cursor, end);
  out.reserve(out.size() + count);
  for (std::uint32_t c = 0; c < count; ++c) {
    const std::uint32_t n = detail::spill_get_u32(cursor, end);
    std::vector<Scalar> values;
    values.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i)
      values.push_back(detail::spill_get_scalar<Scalar>(cursor, end));
    out.push_back(FluxColumn<Scalar, Support>::from_values(std::move(values)));
  }
  if (cursor != end)
    throw ParseError("spill block: trailing bytes after last column");
}

/// How the governed solvers spill.  Off by default; `always` is the
/// degrade-ladder rung that forces every chunk out-of-core.
struct SpillPolicy {
  bool enabled = false;   // spill when the governor signals pressure
  bool always = false;    // spill unconditionally (degrade rung / tests)
  std::string directory;  // "" = system temp directory
  /// Accepted-candidate bytes held in memory before a block is flushed.
  std::size_t block_bytes = std::size_t{64} << 20;

  [[nodiscard]] bool active() const { return enabled || always; }
};

/// process_pair_range with out-of-core accepted candidates: runs the engine
/// range in chunks, spilling each chunk's accepted columns, then streams
/// every block back into `accepted_out` and removes cross-chunk duplicate
/// supports.  `stats.accepted` is corrected so it counts the columns
/// actually delivered, exactly as the in-memory path would.  Returns the
/// body bytes spilled.
template <typename Scalar, typename Support, typename TestFn>
std::uint64_t process_pair_range_spilled(
    const std::vector<FluxColumn<Scalar, Support>>& columns, std::size_t row,
    const RowClassification& cls, std::size_t rank, std::uint64_t begin,
    std::uint64_t end, std::size_t ref_cap, const TestFn& is_elementary,
    IterationStats& stats, PhaseTimer& phases,
    std::vector<FluxColumn<Scalar, Support>>& accepted_out,
    const SpillPolicy& policy,
    const PairGenTables<Scalar, Support>* shared_tables = nullptr) {
  if (cls.positive.empty() || cls.negative.empty() || begin >= end) {
    stats.pairs_probed += (begin < end) ? end - begin : 0;
    return 0;
  }
  std::optional<PairGenTables<Scalar, Support>> local_tables;
  if (shared_tables == nullptr) {
    ScopedPhase phase(phases, Phase::kGenCand);
    local_tables.emplace(columns, row, cls.positive, cls.negative, cls.zero,
                         rank);
  }
  const PairGenTables<Scalar, Support>& tables =
      shared_tables != nullptr ? *shared_tables : *local_tables;

  resource::SpillFile spill(policy.directory);
  resource::MemoryLease candidate_lease(resource::Subsystem::kCandidates);
  const std::size_t initial = accepted_out.size();
  std::vector<FluxColumn<Scalar, Support>> chunk_accepted;

  // Spill decisions happen at chunk granularity, so chunks are
  // deliberately finer than the tile cap.  Under a governor limit they
  // shrink further: the ledger can overshoot the flush threshold by at
  // most one chunk's acceptances, so fine chunks are what turn the
  // threshold into an actual bound.  The per-chunk engine setup is one
  // cursor seek (the tables are shared), cheap enough for 512-pair steps.
  const auto& governor = resource::MemoryGovernor::global();
  const std::uint64_t chunk_pairs =
      governor.enabled()
          ? std::max<std::uint64_t>(std::uint64_t{1} << 9, ref_cap / 512)
          : std::max<std::uint64_t>(std::uint64_t{1} << 16, ref_cap / 32);
  std::size_t resident_bytes = 0;
  for (std::uint64_t at = begin; at < end; at += chunk_pairs) {
    const std::uint64_t stop = std::min<std::uint64_t>(end, at + chunk_pairs);
    process_pair_range(columns, row, cls, rank, at, stop, ref_cap,
                       is_elementary, stats, phases, chunk_accepted, &tables);
    resident_bytes = matrix_storage_bytes(chunk_accepted);
    candidate_lease.set(resident_bytes);
    // Flush threshold: the configured block size, tightened under a
    // governor limit so the resident chunk never eats more than half of
    // whatever headroom the rest of the process (matrix replicas, sibling
    // ranks) has left under --mem-limit.
    std::size_t flush_bytes = policy.block_bytes;
    if (governor.enabled()) {
      const std::size_t others =
          governor.usage() - std::min(governor.usage(), resident_bytes);
      const std::size_t headroom =
          governor.limit() - std::min(governor.limit(), others);
      flush_bytes = std::min(
          flush_bytes, std::max<std::size_t>(std::size_t{4} << 10,
                                             headroom / 2));
    }
    if (!chunk_accepted.empty() &&
        (policy.always || resident_bytes >= flush_bytes)) {
      ScopedPhase phase(phases, Phase::kMerge);
      spill.append_block(encode_spill_block(chunk_accepted));
      chunk_accepted.clear();
      chunk_accepted.shrink_to_fit();
      candidate_lease.set(0);
      resident_bytes = 0;
    }
  }

  {
    // Stream every spilled block back and fold in the resident tail, then
    // drop cross-chunk duplicate supports (the paper's
    // Sort&RemoveDuplicates, as used across Algorithm 2's ranks).
    ScopedPhase phase(phases, Phase::kMerge);
    std::vector<FluxColumn<Scalar, Support>> merged;
    spill.for_each_block([&](std::vector<std::uint8_t>&& body) {
      decode_spill_block(body, merged);
    });
    for (auto& column : chunk_accepted) merged.push_back(std::move(column));
    chunk_accepted.clear();
    const std::size_t before = merged.size();
    sort_and_dedup(merged, stats);
    // accepted counted every chunk's acceptances, including cross-chunk
    // duplicates the dedup just removed; settle it to the delivered count.
    stats.accepted -= before - merged.size();
    candidate_lease.set(matrix_storage_bytes(merged));
    accepted_out.reserve(accepted_out.size() + merged.size());
    for (auto& column : merged) accepted_out.push_back(std::move(column));
  }
  (void)initial;
  return spill.bytes_spilled();
}

}  // namespace elmo
