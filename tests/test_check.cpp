// The correctness-tooling subsystem (src/check/): contract macros, the
// InvariantAuditor, the lock-order checker, and the mpsim progress
// (deadlock) checker.  Each auditor class must TRIP on seeded corruption
// and stay silent on clean runs — an auditor that cannot fail proves
// nothing.
//
// ELMO_AUDIT is defined for this translation unit only, so the
// ELMO_ENSURE/ELMO_INVARIANT macros are active here even in the release
// (NDEBUG) tier-1 build.
#define ELMO_AUDIT 1

#include "check/audit.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "bitset/dynbitset.hpp"
#include "check/contracts.hpp"
#include "check/lockorder.hpp"
#include "compress/compression.hpp"
#include "core/api.hpp"
#include "models/toy.hpp"
#include "mpsim/communicator.hpp"
#include "nullspace/problem.hpp"
#include "nullspace/solver.hpp"

namespace elmo {
namespace {

using check::AuditLedger;
using check::InvariantAuditor;
using Column = FluxColumn<CheckedI64, DynBitset>;

/// Reduced toy problem + its solved EFM columns, the seed data every
/// corruption test perturbs.
struct ToyFixture {
  EfmProblem<CheckedI64> problem;
  std::vector<Column> columns;

  ToyFixture() {
    auto compressed = compress(models::toy_network(), {});
    problem = to_problem<CheckedI64>(compressed);
    columns = solve_efms<CheckedI64, DynBitset>(problem, {}).columns;
  }
};

// ---------------------------------------------------------------------------
// Contract macros

TEST(Contracts, EnsurePassesOnTrueCondition) {
  EXPECT_NO_THROW(ELMO_ENSURE(1 + 1 == 2, "arithmetic holds"));
}

TEST(Contracts, EnsureThrowsContractViolation) {
  EXPECT_THROW(ELMO_ENSURE(false, "seeded failure"), ContractViolation);
}

TEST(Contracts, InvariantThrowsContractViolation) {
  EXPECT_THROW(ELMO_INVARIANT(2 + 2 == 5, "seeded failure"),
               ContractViolation);
}

TEST(Contracts, ViolationCarriesContext) {
  try {
    ELMO_INVARIANT(false, "the ledger must balance");
    FAIL() << "ELMO_INVARIANT(false) did not throw";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("the ledger must balance"), std::string::npos);
    EXPECT_NE(what.find("test_check.cpp"), std::string::npos);
  }
}

TEST(Contracts, ContractViolationIsInternalError) {
  // Callers that already handle InternalError keep working under audit.
  EXPECT_THROW(ELMO_ENSURE(false, "x"), InternalError);
}

// ---------------------------------------------------------------------------
// InvariantAuditor: each class passes on clean data, trips on corruption.

TEST(Audit, NullspaceProductPassesOnSolvedColumns) {
  ToyFixture toy;
  InvariantAuditor auditor;
  EXPECT_NO_THROW(auditor.check_nullspace_product(toy.problem.stoichiometry,
                                                  toy.columns, "clean"));
}

TEST(Audit, NullspaceProductTripsOnCorruptedValue) {
  ToyFixture toy;
  ASSERT_FALSE(toy.columns.empty());
  // Seeded corruption: bump one flux value — the column leaves null(S).
  toy.columns[0].values[0] = toy.columns[0].values[0] + CheckedI64(1);
  InvariantAuditor auditor;
  try {
    auditor.check_nullspace_product(toy.problem.stoichiometry, toy.columns,
                                    "corrupted");
    FAIL() << "corrupted column passed the S*R audit";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("audit[nullspace-product]"),
              std::string::npos);
  }
}

TEST(Audit, RankNullityPassesOnSolvedColumns) {
  ToyFixture toy;
  RankTester<CheckedI64> tester(toy.problem.stoichiometry);
  InvariantAuditor auditor;
  EXPECT_NO_THROW(auditor.check_rank_nullity(tester, toy.columns, "clean"));
}

TEST(Audit, RankNullityTripsOnCompositeColumn) {
  ToyFixture toy;
  ASSERT_GE(toy.columns.size(), 2u);
  // The sum of two distinct EFMs stays in null(S) but its support
  // submatrix has nullity >= 2: exactly the corruption the rank-test
  // audit exists to catch (a false accept slipping into the matrix).
  std::vector<CheckedI64> blend;
  for (std::size_t j = 0; j < toy.columns[0].values.size(); ++j) {
    blend.push_back(toy.columns[0].values[j] + toy.columns[1].values[j]);
  }
  std::vector<Column> corrupted = {Column::from_values(std::move(blend))};
  RankTester<CheckedI64> tester(toy.problem.stoichiometry);
  InvariantAuditor auditor;
  try {
    auditor.check_rank_nullity(tester, corrupted, "composite");
    FAIL() << "composite (non-elementary) column passed the rank audit";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("audit[rank-nullity]"),
              std::string::npos);
  }
}

TEST(Audit, SupportMinimalityPassesOnSolvedColumns) {
  ToyFixture toy;
  InvariantAuditor auditor;
  EXPECT_NO_THROW(auditor.check_support_minimality(toy.columns, "clean"));
}

TEST(Audit, SupportMinimalityTripsOnNestedSupport) {
  ToyFixture toy;
  ASSERT_GE(toy.columns.size(), 2u);
  // Seeded corruption: keep a composite column alongside its parts — its
  // support strictly contains both parents' supports.
  std::vector<CheckedI64> blend;
  for (std::size_t j = 0; j < toy.columns[0].values.size(); ++j) {
    blend.push_back(toy.columns[0].values[j] + toy.columns[1].values[j]);
  }
  auto corrupted = toy.columns;
  corrupted.push_back(Column::from_values(std::move(blend)));
  InvariantAuditor auditor;
  try {
    auditor.check_support_minimality(corrupted, "nested");
    FAIL() << "nested support passed the minimality audit";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("audit[support-minimality]"),
              std::string::npos);
  }
}

TEST(Audit, Proposition1PassesOnConsistentPattern) {
  ToyFixture toy;
  ASSERT_FALSE(toy.columns.empty());
  const auto& column = toy.columns[0];
  // Build a pattern the column actually satisfies.
  check::SubsetPattern pattern;
  for (std::size_t row = 0; row < column.values.size() && pattern.size() < 2;
       ++row) {
    pattern.emplace_back(row, !scalar_is_zero(column.values[row]));
  }
  InvariantAuditor auditor;
  const std::vector<Column> one = {column};
  EXPECT_NO_THROW(auditor.check_proposition1(one, pattern, "consistent"));
}

TEST(Audit, Proposition1TripsOnPatternViolation) {
  ToyFixture toy;
  ASSERT_FALSE(toy.columns.empty());
  const auto& column = toy.columns[0];
  std::size_t nonzero_row = column.values.size();
  for (std::size_t row = 0; row < column.values.size(); ++row) {
    if (!scalar_is_zero(column.values[row])) {
      nonzero_row = row;
      break;
    }
  }
  ASSERT_LT(nonzero_row, column.values.size());
  // The column carries flux on a row the pattern declares REMOVED.
  check::SubsetPattern pattern = {{nonzero_row, false}};
  InvariantAuditor auditor;
  const std::vector<Column> one = {column};
  try {
    auditor.check_proposition1(one, pattern, "violated");
    FAIL() << "pattern violation passed the Proposition-1 audit";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("audit[proposition-1]"),
              std::string::npos);
  }
}

TEST(Audit, SubsetPartitionAcceptsExactCover) {
  // {row0:0}, {row0:+,row1:0}, {row0:+,row1:+} — an adaptive re-split of
  // the row0:+ half, still disjoint and covering.
  std::vector<check::SubsetPattern> patterns = {
      {{0, false}},
      {{0, true}, {1, false}},
      {{0, true}, {1, true}},
  };
  EXPECT_NO_THROW(
      check::check_subset_partition(patterns, {"a", "b", "c"}));
}

TEST(Audit, SubsetPartitionTripsOnOverlap) {
  // {row0:0} and {row1:0} overlap: the cell row0=0,row1=0 is in both.
  std::vector<check::SubsetPattern> patterns = {
      {{0, false}},
      {{1, false}},
  };
  try {
    check::check_subset_partition(patterns, {"a", "b"});
    FAIL() << "overlapping patterns passed the partition audit";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("audit[subset-partition]"),
              std::string::npos);
  }
}

TEST(Audit, SubsetPartitionTripsOnMissingCell) {
  // Only half the space: {row0:0} without {row0:+}.
  std::vector<check::SubsetPattern> patterns = {{{0, false}}};
  EXPECT_THROW(check::check_subset_partition(patterns, {"a"}),
               ContractViolation);
}

TEST(Audit, PairConservationPassesAndTrips) {
  InvariantAuditor auditor;
  EXPECT_NO_THROW(auditor.check_pair_conservation(42, 42, "clean"));
  try {
    auditor.check_pair_conservation(41, 42, "lost pair");
    FAIL() << "mismatched pair counts passed the conservation audit";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("audit[pair-conservation]"),
              std::string::npos);
  }
}

TEST(Audit, LedgerCountsChecksAndFailures) {
  auto& ledger = AuditLedger::global();
  ledger.reset();
  InvariantAuditor auditor;
  auditor.check_pair_conservation(7, 7, "count me");
  EXPECT_THROW(auditor.check_pair_conservation(7, 8, "fail me"),
               ContractViolation);
  const auto stats = ledger.snapshot();
  EXPECT_EQ(stats.pair_conservation_checks, 1u);
  EXPECT_EQ(stats.failures, 1u);
  ledger.reset();
  EXPECT_EQ(ledger.snapshot().total_checks(), 0u);
}

// ---------------------------------------------------------------------------
// End-to-end: a clean --audit run checks everything and fails nothing.

TEST(Audit, CleanToyRunPassesAllInvariants) {
  AuditLedger::global().reset();
  EfmOptions options;
  options.algorithm = Algorithm::kCombined;
  options.num_ranks = 2;
  options.qsub = 2;
  options.audit = true;
  auto result = compute_efms(models::toy_network(), options);
  EXPECT_EQ(result.num_modes(), 8u);
  const auto stats = AuditLedger::global().snapshot();
  EXPECT_EQ(stats.failures, 0u);
  EXPECT_GT(stats.nullspace_products, 0u);
  EXPECT_GT(stats.rank_nullity_checks, 0u);
  EXPECT_GT(stats.minimality_checks, 0u);
  EXPECT_GT(stats.partition_checks, 0u);
  EXPECT_GT(stats.proposition1_checks, 0u);
  EXPECT_GT(stats.pair_conservation_checks, 0u);
}

TEST(Audit, CleanSerialAndParallelRunsPass) {
  for (auto algorithm :
       {Algorithm::kSerial, Algorithm::kCombinatorialParallel}) {
    AuditLedger::global().reset();
    EfmOptions options;
    options.algorithm = algorithm;
    options.num_ranks = 3;
    options.audit = true;
    auto result = compute_efms(models::toy_network(), options);
    EXPECT_EQ(result.num_modes(), 8u);
    EXPECT_EQ(AuditLedger::global().snapshot().failures, 0u);
    EXPECT_GT(AuditLedger::global().snapshot().total_checks(), 0u);
  }
}

// ---------------------------------------------------------------------------
// Lock-order checker

TEST(LockOrder, RecordsEdgesAndAcceptsConsistentOrder) {
  auto& graph = check::LockOrderGraph::global();
  graph.reset();
  {
    check::ScopedLockOrder outer("test.outer");
    check::ScopedLockOrder inner("test.inner");
  }
  {
    // Same order again: consistent, no cycle.
    check::ScopedLockOrder outer("test.outer");
    check::ScopedLockOrder inner("test.inner");
  }
  const auto edges = graph.edges();
  bool found = false;
  for (const auto& edge : edges) found = found || edge == "test.outer -> test.inner";
  EXPECT_TRUE(found);
  graph.reset();
}

TEST(LockOrder, DetectsInvertedAcquisitionCycle) {
  auto& graph = check::LockOrderGraph::global();
  graph.reset();
  {
    check::ScopedLockOrder a("test.A");
    check::ScopedLockOrder b("test.B");
  }
  try {
    check::ScopedLockOrder b("test.B");
    check::ScopedLockOrder a("test.A");  // closes B -> A -> B
    FAIL() << "inverted lock order was not detected";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("lock-order cycle"), std::string::npos);
    EXPECT_NE(what.find("test.A"), std::string::npos);
    EXPECT_NE(what.find("test.B"), std::string::npos);
  }
  graph.reset();
}

TEST(LockOrder, CycleDetectionSpansThreads) {
  auto& graph = check::LockOrderGraph::global();
  graph.reset();
  // Thread 1 records A -> B; the main thread then tries B -> A.  The graph
  // is process-global, so the inconsistency is caught even though no
  // single thread ever held both in conflicting order.
  std::thread t([] {
    check::ScopedLockOrder a("test.cross.A");
    check::ScopedLockOrder b("test.cross.B");
  });
  t.join();
  std::atomic<bool> caught{false};
  try {
    check::ScopedLockOrder b("test.cross.B");
    check::ScopedLockOrder a("test.cross.A");
  } catch (const ContractViolation&) {
    caught = true;
  }
  EXPECT_TRUE(caught.load());
  graph.reset();
}

// ---------------------------------------------------------------------------
// mpsim progress checker: provable stalls abort deterministically.

TEST(Deadlock, CrossRecvAbortsWithDiagnosis) {
  using mpsim::AbortedError;
  using mpsim::Communicator;
  try {
    mpsim::run_ranks(2, [](Communicator& comm) {
      // Rank 0 waits on rank 1 and vice versa; nobody ever sends.
      (void)comm.recv(1 - comm.rank(), 7);
    });
    FAIL() << "cross recv deadlock was not detected";
  } catch (const AbortedError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("deadlock detected"), std::string::npos);
    EXPECT_NE(what.find("recv"), std::string::npos);
  }
}

TEST(Deadlock, BarrierRecvMismatchAborts) {
  using mpsim::AbortedError;
  using mpsim::Communicator;
  try {
    mpsim::run_ranks(2, [](Communicator& comm) {
      if (comm.rank() == 0) {
        comm.barrier();  // never completes: rank 1 is stuck in recv
      } else {
        (void)comm.recv(0, 1);  // never satisfied: rank 0 sends nothing
      }
    });
    FAIL() << "barrier/recv deadlock was not detected";
  } catch (const AbortedError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("deadlock detected"), std::string::npos);
    EXPECT_NE(what.find("barrier"), std::string::npos);
  }
}

TEST(Deadlock, DetectionCanBeDisabled) {
  using mpsim::Communicator;
  // With the checker off, the exit-based fallback still releases blocked
  // ranks once the peer leaves — the world must not hang or misreport.
  mpsim::RunOptions options;
  options.detect_deadlock = false;
  EXPECT_THROW(mpsim::run_ranks(2,
                                [](Communicator& comm) {
                                  if (comm.rank() == 1) {
                                    (void)comm.recv(0, 9);
                                  }
                                  // rank 0 exits immediately.
                                },
                                options),
               mpsim::AbortedError);
}

TEST(Deadlock, BusyWorldHasNoFalsePositives) {
  using mpsim::Communicator;
  // Barriers, sends, recvs and collectives interleaved across ranks; the
  // wait-satisfiability re-check must keep the stall detector silent.
  EXPECT_NO_THROW(mpsim::run_ranks(4, [](Communicator& comm) {
    for (int round = 0; round < 25; ++round) {
      comm.barrier();
      const int next = (comm.rank() + 1) % comm.size();
      const int prev = (comm.rank() + comm.size() - 1) % comm.size();
      comm.send(next, round, {static_cast<std::uint8_t>(comm.rank())});
      const auto payload = comm.recv(prev, round);
      ASSERT_EQ(payload.size(), 1u);
      (void)comm.all_reduce_sum(static_cast<std::uint64_t>(round));
      comm.barrier();
      comm.barrier();  // back-to-back barriers stress stale registrations
    }
  }));
}

}  // namespace
}  // namespace elmo
