// Tests for the analysis module: flux decomposition, knockout screening,
// minimal cut sets, and yield analysis — the EFM applications the paper's
// introduction motivates.
#include <gtest/gtest.h>

#include "analysis/decompose.hpp"
#include "analysis/knockout.hpp"
#include "analysis/yield.hpp"
#include "core/api.hpp"
#include "models/toy.hpp"
#include "support/random.hpp"

namespace elmo {
namespace {

struct ToyFixture {
  ToyFixture() : network(models::toy_network()) {
    result = compute_efms(network);
  }
  Network network;
  EfmResult result;
};

ToyFixture& toy() {
  static ToyFixture fixture;
  return fixture;
}

// ---- decomposition ----

TEST(Decompose, SingleModeIsRecoveredExactly) {
  auto& f = toy();
  // The flux IS mode 3 scaled by 5.
  std::vector<BigRational> flux;
  for (const auto& v : f.result.modes[3])
    flux.push_back(BigRational(v * BigInt(5)));
  auto decomposition =
      decompose_flux(flux, f.result.modes, f.network.reversibility());
  EXPECT_TRUE(decomposition.exact);
  ASSERT_EQ(decomposition.terms.size(), 1u);
  EXPECT_EQ(decomposition.terms[0].mode_index, 3u);
  EXPECT_EQ(decomposition.terms[0].weight, BigRational::from_i64(5));
}

TEST(Decompose, RandomConvexCombinationsAreExplainedExactly) {
  auto& f = toy();
  Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    // Random nonnegative integer combination of 3 modes.
    std::vector<BigRational> flux(f.result.modes[0].size());
    for (int pick = 0; pick < 3; ++pick) {
      std::size_t m = rng.below(f.result.modes.size());
      std::int64_t w = rng.range(1, 4);
      for (std::size_t j = 0; j < flux.size(); ++j)
        flux[j] += BigRational(f.result.modes[m][j] * BigInt(w));
    }
    auto decomposition =
        decompose_flux(flux, f.result.modes, f.network.reversibility());
    EXPECT_TRUE(decomposition.exact) << "trial " << trial;
    EXPECT_LE(decomposition.terms.size(), flux.size());
    // Verify the reconstruction term by term.
    std::vector<BigRational> rebuilt(flux.size());
    for (const auto& term : decomposition.terms) {
      for (std::size_t j = 0; j < flux.size(); ++j)
        rebuilt[j] += term.weight *
                      BigRational(f.result.modes[term.mode_index][j]);
    }
    EXPECT_EQ(rebuilt, flux);
  }
}

TEST(Decompose, InfeasibleFluxLeavesResidual) {
  auto& f = toy();
  // A vector violating steady state cannot be explained.
  std::vector<BigRational> flux(f.result.modes[0].size());
  flux[0] = BigRational::from_i64(1);  // r1 alone
  auto decomposition =
      decompose_flux(flux, f.result.modes, f.network.reversibility());
  EXPECT_FALSE(decomposition.exact);
  EXPECT_GT(decomposition.residual_l1(), 0.0);
}

TEST(Decompose, MaxTermsRespected) {
  auto& f = toy();
  std::vector<BigRational> flux(f.result.modes[0].size());
  for (std::size_t m = 0; m < 4; ++m)
    for (std::size_t j = 0; j < flux.size(); ++j)
      flux[j] += BigRational(f.result.modes[m][j]);
  DecomposeOptions options;
  options.max_terms = 1;
  auto decomposition =
      decompose_flux(flux, f.result.modes, f.network.reversibility(),
                     options);
  EXPECT_LE(decomposition.terms.size(), 1u);
}

// ---- knockouts ----

TEST(Knockout, SurvivingModesFilterBySupport) {
  auto& f = toy();
  ReactionId r7 = f.network.reaction_id("r7");
  auto survivors = surviving_modes(f.result.modes, {r7});
  // Eq (7): r7 is nonzero in exactly 3 of the 8 modes.
  EXPECT_EQ(survivors.size(), 5u);
  for (std::size_t m : survivors)
    EXPECT_TRUE(f.result.modes[m][r7].is_zero());
  // Knocking out nothing keeps everything.
  EXPECT_EQ(surviving_modes(f.result.modes, {}).size(), 8u);
}

TEST(Knockout, ScreenFindsEssentialReactions) {
  auto& f = toy();
  ReactionId r9 = f.network.reaction_id("r9");
  auto report = knockout_screen(f.network, f.result.modes, r9);
  EXPECT_EQ(report.wild_type_modes, 8u);
  // Modes producing Dext: those with nonzero r9 — 3 of them (Eq (7)).
  EXPECT_EQ(report.wild_type_producing, 3u);
  // Every D-producing mode runs r3 (the only D source) AND r4 (the P made
  // alongside D must leave the cell): both are essential for r9.
  auto essential = report.essential_reactions();
  ASSERT_EQ(essential.size(), 2u);
  EXPECT_EQ(essential[0], "r3");
  EXPECT_EQ(essential[1], "r4");
}

TEST(Knockout, MinimalCutSets) {
  auto& f = toy();
  ReactionId r9 = f.network.reaction_id("r9");
  auto cuts = minimal_cut_sets_2(f.result.modes, r9,
                                 f.network.num_reactions());
  // {r3} is a singleton cut; no pair containing r3 may appear (minimality).
  bool has_r3 = false;
  ReactionId r3 = f.network.reaction_id("r3");
  for (const auto& cut : cuts) {
    if (cut.size() == 1 && cut[0] == r3) has_r3 = true;
    if (cut.size() == 2)
      EXPECT_TRUE(cut[0] != r3 && cut[1] != r3);
    // Every cut actually cuts: no producing mode survives.
    auto survivors = surviving_modes(f.result.modes, cut);
    for (std::size_t m : survivors)
      EXPECT_TRUE(f.result.modes[m][r9].is_zero());
  }
  EXPECT_TRUE(has_r3);
  // {r1, r8r} must be a pair cut: every D-producing mode imports A or B.
  bool has_r1_r8 = false;
  ReactionId r1 = f.network.reaction_id("r1");
  ReactionId r8 = f.network.reaction_id("r8r");
  for (const auto& cut : cuts) {
    if (cut.size() == 2 && ((cut[0] == r1 && cut[1] == r8) ||
                            (cut[0] == r8 && cut[1] == r1)))
      has_r1_r8 = true;
  }
  EXPECT_TRUE(has_r1_r8);
}

TEST(Knockout, NoProducingModesMeansNoCuts) {
  auto& f = toy();
  // A fresh network copy with r3 removed has no Dext production at all.
  std::vector<std::vector<BigInt>> none;
  EXPECT_TRUE(minimal_cut_sets_2(none, 0, 9).empty());
}

// ---- yields ----

TEST(Yield, ToyPentoseYields) {
  auto& f = toy();
  ReactionId r1 = f.network.reaction_id("r1");  // Aext uptake
  ReactionId r4 = f.network.reaction_id("r4");  // Pext production
  auto yields = mode_yields(f.result.modes, r1, r4);
  // 6 of the 8 modes import A (r1 nonzero in Eq (7)).
  EXPECT_EQ(yields.size(), 6u);
  auto best = optimal_yield(f.result.modes, r1, r4);
  ASSERT_TRUE(best.has_value());
  // The best P yield per A is 2 (via r7: A -> B -> 2 P).
  EXPECT_EQ(best->yield, BigRational::from_i64(2));
}

TEST(Yield, HistogramBucketsCoverAllModes) {
  auto& f = toy();
  ReactionId r1 = f.network.reaction_id("r1");
  ReactionId r4 = f.network.reaction_id("r4");
  auto yields = mode_yields(f.result.modes, r1, r4);
  auto histogram = yield_histogram(yields, 4);
  std::size_t total = 0;
  for (auto count : histogram) total += count;
  EXPECT_EQ(total, yields.size());
  EXPECT_THROW(yield_histogram(yields, 0), InvalidArgumentError);
}

TEST(Yield, NoSubstrateUseGivesNullopt) {
  std::vector<std::vector<BigInt>> modes = {{BigInt(0), BigInt(1)}};
  EXPECT_FALSE(optimal_yield(modes, 0, 1).has_value());
}

}  // namespace
}  // namespace elmo
