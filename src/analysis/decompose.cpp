#include "analysis/decompose.hpp"

#include <cmath>

#include "bigint/bigint.hpp"
#include "support/assert.hpp"

namespace elmo {

namespace {

/// Is `mode` (optionally negated) usable against residual `r`?
/// Requires supp(mode) ⊆ supp(r) with matching signs; returns the exact
/// maximal step alpha > 0 (the ratio at which the first residual entry
/// reaches zero), or zero if incompatible.
BigRational max_step(const std::vector<BigRational>& r,
                     const std::vector<BigInt>& mode, bool negate) {
  BigRational alpha;  // 0 = incompatible
  bool first = true;
  for (std::size_t j = 0; j < mode.size(); ++j) {
    if (mode[j].is_zero()) continue;
    BigInt e = negate ? -mode[j] : mode[j];
    const int es = e.sign();
    const int rs = r[j].sign();
    if (rs == 0 || rs != es) return BigRational();  // sign clash / overshoot
    // ratio = r_j / e_j  (> 0 since signs match).
    BigRational ratio = r[j] / BigRational(e);
    if (first || ratio < alpha) {
      alpha = ratio;
      first = false;
    }
  }
  return first ? BigRational() : alpha;
}

/// L1 mass the step removes: alpha * sum|e| (used to rank greedy picks).
double removed_mass(const BigRational& alpha,
                    const std::vector<BigInt>& mode) {
  double l1 = 0;
  for (const auto& e : mode) l1 += std::fabs(e.to_double());
  return alpha.to_double() * l1;
}

bool fully_reversible(const std::vector<BigInt>& mode,
                      const std::vector<bool>& reversible) {
  for (std::size_t j = 0; j < mode.size(); ++j)
    if (!mode[j].is_zero() && !reversible[j]) return false;
  return true;
}

}  // namespace

double Decomposition::residual_l1() const {
  double total = 0;
  for (const auto& r : residual) total += std::fabs(r.to_double());
  return total;
}

Decomposition decompose_flux(const std::vector<BigRational>& flux,
                             const std::vector<std::vector<BigInt>>& modes,
                             const std::vector<bool>& reversible,
                             const DecomposeOptions& options) {
  ELMO_REQUIRE(flux.size() == reversible.size(),
               "decompose_flux: flux/reversibility dimension mismatch");
  for (const auto& mode : modes)
    ELMO_REQUIRE(mode.size() == flux.size(),
                 "decompose_flux: mode dimension mismatch");

  Decomposition out;
  out.residual = flux;
  const std::size_t max_terms =
      options.max_terms ? options.max_terms
                        : std::max<std::size_t>(modes.size(), flux.size());

  for (std::size_t step = 0; step < max_terms; ++step) {
    bool residual_zero = true;
    for (const auto& r : out.residual) residual_zero &= r.is_zero();
    if (residual_zero) break;

    // Greedy pick: the compatible (mode, orientation) absorbing the most
    // L1 flux this step.
    std::size_t best_mode = modes.size();
    bool best_negate = false;
    BigRational best_alpha;
    double best_mass = 0;
    for (std::size_t m = 0; m < modes.size(); ++m) {
      for (bool negate : {false, true}) {
        if (negate && !fully_reversible(modes[m], reversible)) continue;
        BigRational alpha = max_step(out.residual, modes[m], negate);
        if (alpha.is_zero()) continue;
        double mass = removed_mass(alpha, modes[m]);
        if (mass > best_mass) {
          best_mass = mass;
          best_mode = m;
          best_negate = negate;
          best_alpha = alpha;
        }
      }
    }
    if (best_mode == modes.size()) break;  // no compatible mode remains

    // Absorb: residual -= alpha * (+-mode).
    for (std::size_t j = 0; j < out.residual.size(); ++j) {
      const BigInt& e = modes[best_mode][j];
      if (e.is_zero()) continue;
      BigRational delta = best_alpha * BigRational(best_negate ? -e : e);
      out.residual[j] -= delta;
    }
    out.terms.push_back(DecompositionTerm{
        best_mode, best_negate ? -best_alpha : best_alpha});
  }

  out.exact = true;
  for (const auto& r : out.residual) out.exact = out.exact && r.is_zero();
  return out;
}

Decomposition decompose_flux(const std::vector<BigInt>& flux,
                             const std::vector<std::vector<BigInt>>& modes,
                             const std::vector<bool>& reversible,
                             const DecomposeOptions& options) {
  std::vector<BigRational> rational;
  rational.reserve(flux.size());
  for (const auto& v : flux) rational.emplace_back(v);
  return decompose_flux(rational, modes, reversible, options);
}

}  // namespace elmo
