// The obs facade: re-exporting internals is its job (no unused-include).
#pragma once

#include "obs/trace.hpp"
