// The paper's illustrative network (Fig. 1).
//
// Five internal metabolites (A, B, C, D, P), nine reactions, of which r6r
// and r8r are reversible and r1, r4, r8r, r9 are exchange reactions.  Its
// full Nullspace Algorithm trace is worked in the paper (Eqs (2)-(7),
// Fig. 2): 8 elementary flux modes.
#pragma once

#include "network/network.hpp"

namespace elmo::models {

/// Build the toy network of Fig. 1.
Network toy_network();

/// The 8 elementary flux modes of the toy network exactly as printed in
/// Eq (7): rows r1..r9, one column per EFM.  Used as ground truth by tests.
/// Entry order: [r1 r2 r3 r4 r5 r6r r7 r8r r9] per mode.
const std::vector<std::vector<std::int64_t>>& toy_efms_paper();

}  // namespace elmo::models
