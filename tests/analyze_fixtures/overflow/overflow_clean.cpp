// Clean counterpart: checked helpers, or an annotated deliberate raw op.
#include <cstdint>

std::int64_t checked_mul(std::int64_t a, std::int64_t b);

std::int64_t area(std::int64_t width, std::int64_t height) {
  return checked_mul(width, height);
}

std::int64_t doubled(std::int64_t small) {
  return small + small;  // lint:allow(overflow) bounded by construction
}
