// Candidate-generation engine benchmark (BENCH_candidates.json).
//
// Measures the tiled/pruned/SIMD engine (nullspace/pairgen.hpp) against
// the scalar row-major reference (generate_candidate_refs_reference — the
// pre-engine code path, kept as the differential oracle) over synthetic
// pair spaces at three support widths, plus the end-to-end cost of the
// first yeast iterations.  Scenarios isolate the regimes that matter:
//
//   *_probe   most pairs fail the OR+popcount pre-test and no column is
//             individually prunable — the pure kernel (SIMD + tiling),
//   *_prune   the rank bound is small enough that wide columns are dead on
//             their own — the popcount prune's regime,
//   *_gen     most pairs survive — exact-support emission dominates.
//
// --json PATH writes the machine-readable record; --baseline PATH compares
// the engine-vs-reference speedup per scenario against a previous record
// and fails (exit 2) on a >10% relative drop (speedups are in-binary
// ratios, so the gate is portable across machines, unlike raw seconds);
// --min-speedup X additionally requires the yeast-width pretest scenarios
// (dyn2_probe, dyn2_prune) to clear X — the ISSUE 4 acceptance bound.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "bitset/bitset64.hpp"
#include "bitset/dynbitset.hpp"
#include "compress/compression.hpp"
#include "nullspace/iteration.hpp"
#include "nullspace/problem.hpp"
#include "nullspace/solver.hpp"
#include "obs/json.hpp"
#include "support/random.hpp"
#include "support/timer.hpp"

namespace {

using namespace elmo;

/// Random columns mirroring bench_micro_candidates: nnz drawn from
/// 8 + below(12) insertions (values may collide or be zero, so realised
/// popcounts spread over ~7..18).  `fixed_nnz` != 0 instead forces every
/// support to exactly that popcount with nonzero values — used by the
/// *_probe scenarios, where a popcount band lets the rank bound sit between
/// the largest single support and the smallest pair union, so every pair is
/// probed and rejected by the pre-test alone (no pruning, no emission).
template <typename Support>
std::vector<FluxColumn<CheckedI64, Support>> synthetic_columns(
    std::size_t count, std::size_t q, std::uint64_t seed,
    std::size_t fixed_nnz = 0) {
  Rng rng(seed);
  std::vector<FluxColumn<CheckedI64, Support>> columns;
  columns.reserve(count);
  for (std::size_t c = 0; c < count; ++c) {
    std::vector<CheckedI64> values(q, CheckedI64(0));
    if (fixed_nnz != 0) {
      std::size_t placed = 0;
      while (placed < fixed_nnz) {
        auto& slot = values[rng.below(q)];
        if (slot != CheckedI64(0)) continue;
        const auto magnitude = static_cast<std::int64_t>(1 + rng.below(3));
        slot = CheckedI64(rng.below(2) != 0 ? magnitude : -magnitude);
        ++placed;
      }
    } else {
      std::size_t nnz = 8 + rng.below(12);
      for (std::size_t k = 0; k < nnz; ++k)
        values[rng.below(q)] = CheckedI64(rng.range(-3, 3));
      values[rng.below(q)] = CheckedI64(1);
    }
    columns.push_back(
        FluxColumn<CheckedI64, Support>::from_values(std::move(values)));
  }
  return columns;
}

struct PathResult {
  double seconds = 1e300;           // best of reps
  std::uint64_t pairs = 0;
  std::uint64_t survivors = 0;
  std::uint64_t pruned = 0;

  [[nodiscard]] double pairs_per_sec() const {
    return static_cast<double>(pairs) / seconds;
  }
  [[nodiscard]] double survivors_per_sec() const {
    return static_cast<double>(survivors) / seconds;
  }
};

struct ScenarioResult {
  std::string name;
  PathResult engine;
  PathResult reference;

  [[nodiscard]] double speedup() const {
    return reference.seconds / engine.seconds;
  }
  /// Probe/prune scenarios measure the optimised pre-test paths and their
  /// speedups are stable multi-x ratios — those are gated.  The *_gen
  /// scenarios are emission-bound (speedup ~1.0-1.2x, allocator-sensitive)
  /// and recorded informationally only.
  [[nodiscard]] bool gated() const {
    return name.find("_probe") != std::string::npos ||
           name.find("_prune") != std::string::npos;
  }
};

/// One timed measurement: `inner` full-range generation passes under one
/// stopwatch (sub-millisecond single passes are too noisy to gate on — the
/// caller sizes `inner` so a sample spans a few milliseconds), averaged to
/// per-pass seconds.  `use_engine` picks the path.
template <typename Support>
PathResult run_path(
    const std::vector<FluxColumn<CheckedI64, Support>>& columns,
    std::size_t row, const RowClassification& cls, std::size_t rank,
    bool use_engine, int inner, PathResult best) {
  IterationStats stats;
  Stopwatch watch;
  for (int pass = 0; pass < inner; ++pass) {
    stats = IterationStats{};
    std::vector<CandidateRef<Support>> refs;
    std::uint64_t cursor = 0;
    if (use_engine) {
      generate_candidate_refs(columns, row, cls, &cursor, cls.pair_count(),
                              rank, SIZE_MAX, refs, stats);
    } else {
      generate_candidate_refs_reference(columns, row, cls, &cursor,
                                        cls.pair_count(), rank, SIZE_MAX,
                                        refs, stats);
    }
  }
  const double seconds = watch.seconds() / inner;
  if (seconds < best.seconds) best.seconds = seconds;
  best.pairs = stats.pairs_probed;
  best.survivors = stats.pretest_survivors;
  best.pruned = stats.pairs_pruned;
  return best;
}

template <typename Support>
ScenarioResult run_scenario(const std::string& name, std::size_t q,
                            std::size_t rank, int reps,
                            std::size_t fixed_nnz = 0) {
  auto columns = synthetic_columns<Support>(2048, q, 5, fixed_nnz);
  RowClassification cls;
  std::size_t row = 0;
  for (std::size_t r = 0; r < q; ++r) {
    auto c = classify_row(columns, r);
    if (c.pair_count() > cls.pair_count()) {
      cls = std::move(c);
      row = r;
    }
  }
  ScenarioResult result;
  result.name = name;
  // Warmup pass per path sizes the inner loop so each timed sample spans a
  // few milliseconds regardless of how fast the path is.
  const auto size_inner = [&](bool use_engine) {
    Stopwatch watch;
    run_path(columns, row, cls, rank, use_engine, 1, PathResult{});
    const double once = std::max(watch.seconds(), 1e-7);
    return static_cast<int>(std::clamp(3e-3 / once, 1.0, 500.0));
  };
  const int engine_inner = size_inner(true);
  const int reference_inner = size_inner(false);
  // Interleave the paths within each repetition so drift hits both equally.
  for (int rep = 0; rep < reps; ++rep) {
    result.engine =
        run_path(columns, row, cls, rank, true, engine_inner, result.engine);
    result.reference = run_path(columns, row, cls, rank, false,
                                reference_inner, result.reference);
  }
  return result;
}

double yeast_first_iterations_seconds(int reps, std::uint64_t* modes_out) {
  auto compressed = compress(models::yeast_network_1());
  auto problem = to_problem<CheckedI64>(compressed);
  double best = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    SolverOptions options;
    int iterations = 0;
    options.on_iteration = [&](const IterationStats&) {
      if (++iterations >= 8) throw std::runtime_error("stop");
    };
    Stopwatch watch;
    try {
      auto result = solve_efms<CheckedI64, DynBitset>(problem, options);
      *modes_out = result.columns.size();
    } catch (const std::runtime_error&) {
      *modes_out = 0;  // early stop: column count unavailable
    }
    best = std::min(best, watch.seconds());
  }
  return best;
}

double mega(double per_sec) { return per_sec / 1e6; }

}  // namespace

int main(int argc, char** argv) {
  using namespace elmo;
  std::string json_path;
  std::string baseline_path;
  double max_regression_pct = 10.0;
  double min_speedup = 0.0;
  int reps = 5;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--json") && i + 1 < argc) {
      json_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--baseline") && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--max-regression-pct") && i + 1 < argc) {
      max_regression_pct = std::atof(argv[++i]);
    } else if (!std::strcmp(argv[i], "--min-speedup") && i + 1 < argc) {
      min_speedup = std::atof(argv[++i]);
    } else if (!std::strcmp(argv[i], "--reps") && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
      if (reps < 1) reps = 1;
    }
  }
  std::printf("== candidate-generation engine vs scalar reference ==\n");
  std::printf("SIMD kernel active: %s\n\n",
              pairgen_detail::simd_selectable() ? "yes (AVX2)" : "no (scalar)");

  std::vector<ScenarioResult> scenarios;
  // Widths: 60 reactions (one word), 66 (two words — the yeast reduction),
  // 500 (eight words — genome scale).  Probe scenarios fix every support at
  // popcount 12 (60 for the wide case) and set the rank bound just above
  // it: no column is individually prunable, yet every pair union misses the
  // bound, so the run measures the pre-test kernel and nothing else.
  // Prune scenarios use the spread popcount distribution with a tight
  // bound (most columns dead on their own); gen scenarios relax the bound
  // so every pair survives into exact-support emission.
  scenarios.push_back(run_scenario<Bitset64>("b64_probe", 60, 11, reps, 12));
  scenarios.push_back(run_scenario<Bitset64>("b64_prune", 60, 8, reps));
  scenarios.push_back(run_scenario<Bitset64>("b64_gen", 60, 35, reps));
  scenarios.push_back(run_scenario<DynBitset>("dyn2_probe", 66, 11, reps, 12));
  scenarios.push_back(run_scenario<DynBitset>("dyn2_prune", 66, 8, reps));
  scenarios.push_back(run_scenario<DynBitset>("dyn2_gen", 66, 35, reps));
  scenarios.push_back(
      run_scenario<DynBitset>("dyn8_probe", 500, 59, reps, 60));
  scenarios.push_back(run_scenario<DynBitset>("dyn8_gen", 500, 125, reps, 60));

  Table table({"scenario", "pairs", "engine Mpairs/s", "ref Mpairs/s",
               "speedup", "pruned %"});
  for (const auto& s : scenarios) {
    char eng[32], ref[32], sp[32], pr[32];
    std::snprintf(eng, sizeof eng, "%.1f", mega(s.engine.pairs_per_sec()));
    std::snprintf(ref, sizeof ref, "%.1f",
                  mega(s.reference.pairs_per_sec()));
    std::snprintf(sp, sizeof sp, "%.2fx", s.speedup());
    std::snprintf(pr, sizeof pr, "%.1f",
                  100.0 * static_cast<double>(s.engine.pruned) /
                      static_cast<double>(s.engine.pairs ? s.engine.pairs : 1));
    table.add_row({s.name, with_commas(s.engine.pairs), eng, ref, sp, pr});
  }
  std::fputs(
      table.render("synthetic 2048-column pair spaces, best of reps").c_str(),
      stdout);

  std::uint64_t yeast_modes = 0;
  const double yeast_seconds =
      yeast_first_iterations_seconds(reps, &yeast_modes);
  std::printf("\nyeast Network I, first 8 iterations (serial, modular rank "
              "test): %.2f ms\n",
              yeast_seconds * 1e3);

  bool gate_failed = false;

  // Acceptance bound: pretest throughput at the yeast width.
  if (min_speedup > 0.0) {
    for (const auto& s : scenarios) {
      if (s.name != "dyn2_probe" && s.name != "dyn2_prune") continue;
      const bool ok = s.speedup() >= min_speedup;
      std::printf("min-speedup gate %s: %.2fx (limit %.2fx) -> %s\n",
                  s.name.c_str(), s.speedup(), min_speedup,
                  ok ? "ok" : "FAIL");
      gate_failed = gate_failed || !ok;
    }
  }

  // Regression gate vs a previous record: speedups are in-binary ratios,
  // comparable across machines; raw seconds are not and are informational.
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path, std::ios::binary);
    std::ostringstream text;
    text << in.rdbuf();
    std::string error;
    obs::JsonValue doc = obs::parse_json(text.str(), &error);
    const obs::JsonValue* base_scenarios =
        error.empty() ? doc.find("scenarios") : nullptr;
    if (base_scenarios == nullptr) {
      std::fprintf(stderr, "cannot read baseline %s: %s\n",
                   baseline_path.c_str(),
                   error.empty() ? "missing scenarios" : error.c_str());
      return 1;
    }
    std::printf("\nvs baseline %s (limit -%.1f%%):\n", baseline_path.c_str(),
                max_regression_pct);
    for (const auto& s : scenarios) {
      const obs::JsonValue* node = base_scenarios->find(s.name);
      const obs::JsonValue* speedup_node =
          node != nullptr ? node->find("speedup") : nullptr;
      if (speedup_node == nullptr) {
        std::printf("  %-10s (new scenario, no baseline)\n", s.name.c_str());
        continue;
      }
      const double base = speedup_node->as_double();
      const double delta_pct = (s.speedup() / base - 1.0) * 100.0;
      if (!s.gated()) {
        std::printf("  %-10s %.2fx vs %.2fx (%+.1f%%) -> informational\n",
                    s.name.c_str(), s.speedup(), base, delta_pct);
        continue;
      }
      const bool ok = delta_pct >= -max_regression_pct;
      std::printf("  %-10s %.2fx vs %.2fx (%+.1f%%) -> %s\n", s.name.c_str(),
                  s.speedup(), base, delta_pct, ok ? "ok" : "FAIL");
      gate_failed = gate_failed || !ok;
    }
  }

  if (!json_path.empty()) {
    obs::JsonValue doc = obs::JsonValue::object();
    doc.set("bench", obs::JsonValue("candidates"));
    doc.set("simd_active", obs::JsonValue(pairgen_detail::simd_selectable()));
    doc.set("reps", obs::JsonValue(reps));
    obs::JsonValue scenario_json = obs::JsonValue::object();
    for (const auto& s : scenarios) {
      obs::JsonValue entry = obs::JsonValue::object();
      entry.set("pairs", obs::JsonValue(s.engine.pairs));
      entry.set("pruned", obs::JsonValue(s.engine.pruned));
      entry.set("survivors", obs::JsonValue(s.engine.survivors));
      obs::JsonValue engine = obs::JsonValue::object();
      engine.set("seconds", obs::JsonValue(s.engine.seconds));
      engine.set("pairs_per_sec", obs::JsonValue(s.engine.pairs_per_sec()));
      engine.set("survivors_per_sec",
                 obs::JsonValue(s.engine.survivors_per_sec()));
      obs::JsonValue reference = obs::JsonValue::object();
      reference.set("seconds", obs::JsonValue(s.reference.seconds));
      reference.set("pairs_per_sec",
                    obs::JsonValue(s.reference.pairs_per_sec()));
      reference.set("survivors_per_sec",
                    obs::JsonValue(s.reference.survivors_per_sec()));
      entry.set("engine", std::move(engine));
      entry.set("reference", std::move(reference));
      entry.set("speedup", obs::JsonValue(s.speedup()));
      entry.set("gated", obs::JsonValue(s.gated()));
      scenario_json.set(s.name, std::move(entry));
    }
    doc.set("scenarios", std::move(scenario_json));
    obs::JsonValue end_to_end = obs::JsonValue::object();
    end_to_end.set("yeast8_seconds", obs::JsonValue(yeast_seconds));
    end_to_end.set("yeast8_columns", obs::JsonValue(yeast_modes));
    doc.set("end_to_end", std::move(end_to_end));
    std::FILE* out = std::fopen(json_path.c_str(), "wb");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    const std::string dumped = doc.dump(2);
    std::fwrite(dumped.data(), 1, dumped.size(), out);
    std::fputc('\n', out);
    std::fclose(out);
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return gate_failed ? 2 : 0;
}
