// The reduced EFM problem instance handed to the Nullspace Algorithm.
//
// Holds the reduced stoichiometry in the kernel's scalar type, per-reaction
// reversibility, and the names needed to report results.  Built from a
// CompressedProblem (or directly for tests).
#pragma once

#include <string>
#include <vector>

#include "bigint/bigint.hpp"
#include "bigint/scalar.hpp"
#include "compress/compression.hpp"
#include "linalg/matrix.hpp"

namespace elmo {

template <typename Scalar>
struct EfmProblem {
  /// Reduced stoichiometry, m x q.
  Matrix<Scalar> stoichiometry;
  /// Reversibility per reduced reaction (length q).
  std::vector<bool> reversible;
  /// Reaction names (length q), used in reports and partition selection.
  std::vector<std::string> reaction_names;

  [[nodiscard]] std::size_t num_reactions() const {
    return stoichiometry.cols();
  }
  [[nodiscard]] std::size_t num_metabolites() const {
    return stoichiometry.rows();
  }
};

/// Convert the compression output to the kernel scalar.  CheckedI64 throws
/// OverflowError if a stoichiometric coefficient exceeds 64 bits (it cannot
/// for networks parsed from int64 text, but derived problems could).
template <typename Scalar>
EfmProblem<Scalar> to_problem(const CompressedProblem& compressed) {
  EfmProblem<Scalar> problem;
  const auto& n = compressed.stoichiometry;
  problem.stoichiometry = Matrix<Scalar>(n.rows(), n.cols());
  for (std::size_t i = 0; i < n.rows(); ++i)
    for (std::size_t j = 0; j < n.cols(); ++j) {
      if constexpr (std::is_same_v<Scalar, BigInt>) {
        problem.stoichiometry(i, j) = n(i, j);
      } else if constexpr (std::is_same_v<Scalar, double>) {
        problem.stoichiometry(i, j) = n(i, j).to_double();
      } else {
        problem.stoichiometry(i, j) = Scalar(n(i, j).to_i64());
      }
    }
  problem.reversible = compressed.reversible;
  problem.reaction_names = compressed.reaction_names;
  return problem;
}

}  // namespace elmo
