file(REMOVE_RECURSE
  "CMakeFiles/elmo_network.dir/network.cpp.o"
  "CMakeFiles/elmo_network.dir/network.cpp.o.d"
  "CMakeFiles/elmo_network.dir/parser.cpp.o"
  "CMakeFiles/elmo_network.dir/parser.cpp.o.d"
  "CMakeFiles/elmo_network.dir/validate.cpp.o"
  "CMakeFiles/elmo_network.dir/validate.cpp.o.d"
  "libelmo_network.a"
  "libelmo_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elmo_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
