// Yield analysis over elementary flux modes.
//
// EFM sets characterise "cellular metabolic capabilities" (paper §I, refs
// [1]-[2]): for a substrate-uptake reaction and a product-formation
// reaction, every mode has a well-defined molar yield product/substrate,
// and the maximum over modes is the network's theoretical optimum — the
// quantity strain-design studies (Trinh & Srienc's ethanol work, ref [5])
// optimise for.
#pragma once

#include <optional>
#include <vector>

#include "bigint/bigint.hpp"
#include "bigint/rational.hpp"
#include "network/network.hpp"

namespace elmo {

struct ModeYield {
  std::size_t mode_index;
  /// product flux / substrate flux, exact.  Only defined for modes with
  /// nonzero substrate uptake.
  BigRational yield;
};

/// Yields of all modes consuming through `substrate` (|flux| used for both
/// reactions, so orientation conventions do not matter).
std::vector<ModeYield> mode_yields(
    const std::vector<std::vector<BigInt>>& modes, ReactionId substrate,
    ReactionId product);

/// The best yield and the mode achieving it; nullopt if no mode uses the
/// substrate.
std::optional<ModeYield> optimal_yield(
    const std::vector<std::vector<BigInt>>& modes, ReactionId substrate,
    ReactionId product);

/// Histogram support: yields bucketed into `buckets` equal bins over
/// [0, max]; returns per-bin counts.  Used by the yield-spectrum example.
std::vector<std::size_t> yield_histogram(const std::vector<ModeYield>& yields,
                                         std::size_t buckets);

}  // namespace elmo
