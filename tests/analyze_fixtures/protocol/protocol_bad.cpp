// Seeded violations for the communication-protocol pass.  Never
// compiled — only analyzed.  Tags are disjoint constants: the pairing
// rules match project-wide across every analyzed file, so a stray
// non-constant tag would satisfy any orphan.
namespace fixture_proto {

struct Payload {};

struct Communicator {
  int rank() const;
  void send(int dst, int tag, const Payload& p);
  Payload recv(int src, int tag);
  void barrier();
  void all_gather(const Payload& p);
};

// tag-mismatch: tag 901 is posted but no recv anywhere drains it.
inline void unconsumed(Communicator& comm, const Payload& p) {
  comm.send(1, 901, p);
}

// orphan-recv: tag 902 is expected but no send anywhere produces it.
inline void starved(Communicator& comm) {
  comm.recv(0, 902);
}

// peer-mismatch: the recv expects source rank 3, but the only send of
// tag 903 is pinned to rank 5 — the message can never arrive from 3.
inline void wrong_peer(Communicator& comm, const Payload& p) {
  const int rank = comm.rank();
  if (rank == 5) comm.send(0, 903, p);
  if (rank == 0) comm.recv(3, 903);
}

// collective-divergence: only rank 0 reaches the barrier; every other
// rank sails past and the world deadlocks.
inline void diverging(Communicator& comm) {
  const int rank = comm.rank();
  if (rank == 0) {
    comm.barrier();
  }
}

// recv-before-send: every rank blocks in the recv of tag 904 before any
// rank reaches the matching send — no rank guard breaks the symmetry.
inline void head_of_line(Communicator& comm, const Payload& p) {
  comm.recv(0, 904);
  comm.send(1, 904, p);
}

}  // namespace fixture_proto
