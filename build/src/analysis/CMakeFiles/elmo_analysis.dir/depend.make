# Empty dependencies file for elmo_analysis.
# This may be replaced when dependencies are built.
