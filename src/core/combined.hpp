// Algorithm 3: the combined parallel Nullspace Algorithm — the paper's
// contribution.
//
// The EFM set is partitioned across a subset of qsub (reversible, trailing)
// reactions into 2^qsub disjoint subsets keyed by the zero/nonzero flux
// pattern = the binary representation of the subset id.  For each subset:
//
//   * zero-flux reactions are REMOVED from the stoichiometry (their columns
//     vanish; paper Algorithm 3 lines 5-9),
//   * nonzero-flux reactions are left UNPROCESSED (exclude_rows — the
//     paper's reorder-to-bottom + early stop, lines 10-14),
//   * Algorithm 2 runs on the subproblem,
//   * Proposition 1 keeps exactly the columns with nonzero values in every
//     unprocessed partition row (lines 15-17),
//   * the zero-flux rows are re-inserted as zeros (lines 18-21).
//
// The union over all subsets is the complete EFM set.  When a subset
// exceeds the per-rank memory budget the optional adaptive re-split adds
// one more partition reaction to just that subset and recurses — this is
// precisely what the paper did on Network II, where subsets 1 and 3 of the
// {R54r, R90r, R60r} split had to be re-split by R22r (Table IV).
#pragma once

#include <deque>
#include <string>

#include "core/combinatorial_parallel.hpp"
#include "core/subset_select.hpp"
#include "support/format.hpp"

namespace elmo {

struct CombinedOptions {
  /// Reduced-problem reaction names to partition over, most significant
  /// first (subset id bit k corresponds to partition_reactions[k] counted
  /// from the least significant bit).  All must be reversible.  When empty,
  /// `qsub` trailing reversible reactions are selected automatically.
  std::vector<std::string> partition_reactions;
  /// Used only when partition_reactions is empty.
  std::size_t qsub = 2;

  int num_ranks = 4;
  /// Shared-memory workers per rank (see ParallelOptions::threads_per_rank).
  int threads_per_rank = 1;
  SolverOptions solver;
  std::size_t memory_budget_per_rank = 0;

  /// On MemoryBudgetError, split the failing subset further by appending
  /// the next unused trailing reversible reaction, up to this many extra
  /// reactions (0 disables re-splitting and the error propagates).
  std::size_t max_extra_splits = 0;
};

/// One divide-and-conquer subtask: (reduced reaction index, must-be-nonzero)
/// per partition reaction.
struct SubsetSpec {
  std::vector<std::pair<std::size_t, bool>> pattern;

  /// Render as the paper does: overlined (zero-flux) names are suffixed
  /// with '0', nonzero ones with '+', e.g. "R89r:0 R74r:+".
  [[nodiscard]] std::string label(
      const std::vector<std::string>& names) const {
    std::string out;
    for (const auto& [row, nonzero] : pattern) {
      if (!out.empty()) out += ' ';
      out += names[row];
      out += nonzero ? ":+" : ":0";
    }
    return out;
  }
};

struct SubsetReport {
  SubsetSpec spec;
  std::string label;
  std::size_t num_efms = 0;
  SolveStats stats;
  mpsim::RunReport ranks;
  double seconds = 0.0;
  /// Number of extra partition reactions this subset needed (adaptive).
  std::size_t extra_splits = 0;
};

template <typename Scalar, typename Support>
struct CombinedResult {
  /// Union of all subset EFM sets, in the reduced reaction space.
  std::vector<FluxColumn<Scalar, Support>> columns;
  std::vector<SubsetReport> subsets;
  SolveStats total;
  double seconds = 0.0;
};

namespace detail {

/// Build the subproblem for one subset: remove zero-flux columns, record
/// the sub-index of every nonzero-flux row.
template <typename Scalar>
struct Subproblem {
  EfmProblem<Scalar> problem;
  std::vector<std::size_t> keep;          // sub col -> original reduced col
  std::vector<std::size_t> nzf_sub_rows;  // nonzero rows, sub numbering
};

template <typename Scalar>
Subproblem<Scalar> make_subproblem(const EfmProblem<Scalar>& problem,
                                   const SubsetSpec& spec) {
  std::vector<bool> removed(problem.num_reactions(), false);
  std::vector<bool> nonzero(problem.num_reactions(), false);
  for (const auto& [row, nz] : spec.pattern) {
    ELMO_REQUIRE(problem.reversible[row],
                 "partition reaction " + problem.reaction_names[row] +
                     " must be reversible (Proposition 1 requires the "
                     "unprocessed rows to be sign-free)");
    if (nz)
      nonzero[row] = true;
    else
      removed[row] = true;
  }
  Subproblem<Scalar> sub;
  for (std::size_t j = 0; j < problem.num_reactions(); ++j) {
    if (removed[j]) continue;
    if (nonzero[j]) sub.nzf_sub_rows.push_back(sub.keep.size());
    sub.keep.push_back(j);
  }
  sub.problem.stoichiometry = problem.stoichiometry.select_columns(sub.keep);
  for (std::size_t j : sub.keep) {
    sub.problem.reversible.push_back(problem.reversible[j]);
    sub.problem.reaction_names.push_back(problem.reaction_names[j]);
  }
  return sub;
}

}  // namespace detail

template <typename Scalar, typename Support>
CombinedResult<Scalar, Support> solve_combined(
    const EfmProblem<Scalar>& problem, const CombinedOptions& options) {
  Stopwatch total_watch;
  CombinedResult<Scalar, Support> result;

  // Resolve the partition reactions.
  std::vector<std::size_t> partition_rows;
  if (options.partition_reactions.empty()) {
    partition_rows = select_partition_rows(problem, options.solver.ordering,
                                           options.qsub);
  } else {
    for (const auto& name : options.partition_reactions) {
      std::size_t row = problem.num_reactions();
      for (std::size_t j = 0; j < problem.num_reactions(); ++j) {
        if (problem.reaction_names[j] == name) {
          row = j;
          break;
        }
      }
      ELMO_REQUIRE(row < problem.num_reactions(),
                   "partition reaction not in reduced problem: " + name);
      partition_rows.push_back(row);
    }
  }
  const std::size_t qsub = partition_rows.size();
  ELMO_REQUIRE(qsub > 0 && qsub < 63, "unreasonable partition subset size");

  // Trailing reversible reactions available for adaptive re-splitting.
  std::vector<std::size_t> spares;
  if (options.max_extra_splits > 0) {
    auto trailing = select_partition_rows(problem, options.solver.ordering,
                                          qsub + options.max_extra_splits);
    for (std::size_t row : trailing) {
      bool used = false;
      for (std::size_t p : partition_rows) used = used || p == row;
      if (!used) spares.push_back(row);
    }
  }

  // Work queue of subtasks; adaptive re-splitting pushes refined subsets.
  std::deque<SubsetSpec> queue;
  for (std::uint64_t id = 0; id < (1ULL << qsub); ++id) {
    SubsetSpec spec;
    for (std::size_t k = 0; k < qsub; ++k)
      spec.pattern.emplace_back(partition_rows[k], (id >> k) & 1);
    queue.push_back(std::move(spec));
  }

  while (!queue.empty()) {
    SubsetSpec spec = std::move(queue.front());
    queue.pop_front();

    Stopwatch subset_watch;
    auto sub = detail::make_subproblem<Scalar>(problem, spec);
    ParallelOptions parallel = {};
    parallel.num_ranks = options.num_ranks;
    parallel.threads_per_rank = options.threads_per_rank;
    parallel.solver = options.solver;
    parallel.solver.exclude_rows = sub.nzf_sub_rows;
    parallel.memory_budget_per_rank = options.memory_budget_per_rank;

    ParallelSolveResult<Scalar, Support> solved;
    try {
      solved =
          solve_combinatorial_parallel<Scalar, Support>(sub.problem, parallel);
    } catch (const MemoryBudgetError&) {
      const std::size_t depth = spec.pattern.size() - qsub;
      if (depth >= options.max_extra_splits || depth >= spares.size())
        throw;
      // Re-split this subset on the next spare reaction (paper Table IV:
      // the oversized three-reaction subsets gained R22r as a fourth).
      const std::size_t extra = spares[depth];
      for (bool nz : {false, true}) {
        SubsetSpec refined = spec;
        refined.pattern.emplace_back(extra, nz);
        queue.push_front(refined);
      }
      continue;
    }

    // Proposition 1: keep columns with nonzero flux in EVERY unprocessed
    // partition row; re-embed into the full reduced space with zeros in
    // the removed columns.
    SubsetReport report;
    report.spec = spec;
    report.label = spec.label(problem.reaction_names);
    report.stats = solved.stats;
    report.ranks = std::move(solved.ranks);
    report.extra_splits = spec.pattern.size() - qsub;
    for (auto& column : solved.columns) {
      bool keep = true;
      for (std::size_t sub_row : sub.nzf_sub_rows)
        keep = keep && !scalar_is_zero(column.values[sub_row]);
      if (!keep) continue;
      std::vector<Scalar> full(problem.num_reactions(),
                               scalar_from_i64<Scalar>(0));
      for (std::size_t j = 0; j < sub.keep.size(); ++j)
        full[sub.keep[j]] = std::move(column.values[j]);
      result.columns.push_back(
          FluxColumn<Scalar, Support>::from_values(std::move(full)));
      ++report.num_efms;
    }
    report.seconds = subset_watch.seconds();
    result.total.merge(report.stats);
    result.subsets.push_back(std::move(report));
  }

  result.seconds = total_watch.seconds();
  return result;
}

}  // namespace elmo
