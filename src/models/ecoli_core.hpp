// A compact E. coli central-metabolism model.
//
// The paper's introduction leans on E. coli EFM studies (refs [5]-[6],
// Trinh & Srienc's ethanol strain designs); this model provides a mid-size
// (~10^3-10^4 EFM) instance for tests, benches and the strain-design
// example: glycolysis, pentose-phosphate shunt, TCA with glyoxylate
// bypass, mixed-acid fermentation, lumped respiration and biomass.
#pragma once

#include "network/network.hpp"

namespace elmo::models {

/// Build the E. coli core network.
Network ecoli_core();

/// The raw reaction-list text (parseable by parse_network).
const char* ecoli_core_text();

}  // namespace elmo::models
