# Empty compiler generated dependencies file for test_modular_rank.
# This may be replaced when dependencies are built.
