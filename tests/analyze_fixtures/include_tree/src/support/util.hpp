// Leaf utility: provides UtilThing.
#pragma once

struct UtilThing {
  int value = 0;
};
