file(REMOVE_RECURSE
  "CMakeFiles/test_bigint.dir/test_bigint.cpp.o"
  "CMakeFiles/test_bigint.dir/test_bigint.cpp.o.d"
  "test_bigint"
  "test_bigint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bigint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
