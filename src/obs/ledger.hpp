// Append-only run ledger ("runs/ledger.jsonl") and the regression sentinel.
//
// Every solve can persist a schema-versioned summary of its report.json as
// one compact JSON line: identity (network, algorithm, ranks, config, git
// describe, hostname, timestamp) plus every numeric leaf of the report
// flattened to dot-path metrics ("totals.pairs_probed",
// "flow.critical_path_us", ...).  Ledgers accumulate across runs and
// machines; tools/elmo_stat lists, diffs, and — the point — checks a
// candidate run against a baseline with noise-aware per-metric-class
// thresholds, turning silent performance regressions into a non-zero exit
// code in bench.sh and CI.
//
// The query/diff/check logic lives here (not in the CLI) so the test suite
// can golden-test it directly.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace elmo::obs {

/// Bump when the record layout changes incompatibly; readers keep accepting
/// older versions (absent metrics are simply skipped by the sentinel).
inline constexpr int kLedgerSchemaVersion = 1;

struct LedgerRecord {
  int schema_version = kLedgerSchemaVersion;
  std::string timestamp;     // ISO 8601 UTC, e.g. "2026-08-08T12:00:00Z"
  std::string git_describe;  // "unknown" when not determinable
  std::string hostname;      // "unknown" when not determinable
  std::string network;
  std::string algorithm;
  int num_ranks = 1;
  std::map<std::string, std::string> config;
  std::uint64_t num_efms = 0;
  double seconds = 0.0;
  /// Flattened numeric leaves of the report (arrays are skipped: per-rank
  /// and per-iteration detail stays in report.json, the ledger keeps the
  /// comparable scalars).
  std::map<std::string, double> metrics;

  [[nodiscard]] JsonValue to_json() const;

  /// Identity for baseline matching: two records with equal keys ran the
  /// same workload (network, algorithm, ranks, config) and are comparable.
  [[nodiscard]] std::string key() const;
};

/// Build a record from a report.json document (a SolveReport::to_json()
/// value or a parsed report file).
[[nodiscard]] LedgerRecord make_ledger_record(const JsonValue& report,
                                              std::string timestamp,
                                              std::string git_describe,
                                              std::string hostname);

/// Convenience used by elmo_cli --ledger: timestamp = now (override with
/// ELMO_LEDGER_TIMESTAMP for reproducible tests), git describe from
/// ELMO_GIT_DESCRIBE, hostname from the OS.
[[nodiscard]] LedgerRecord make_ledger_record_env(const JsonValue& report);

/// Parse one ledger line back into a record; unknown fields are ignored,
/// missing ones default.  Throws std::runtime_error when `value` is not an
/// object.
[[nodiscard]] LedgerRecord parse_ledger_record(const JsonValue& value);

/// Append `record` to `path` as one compact line, creating the file (but
/// not parent directories) on first use.  Throws on I/O failure.
void append_ledger_record(const std::string& path, const LedgerRecord& record);

/// Load every record of a ledger file in append order.  Throws
/// std::runtime_error naming the offending line on parse failure.
[[nodiscard]] std::vector<LedgerRecord> load_ledger(const std::string& path);

// ---- queries ----

/// One line per record: index, timestamp, identity, headline numbers.
[[nodiscard]] std::string render_ledger_list(
    const std::vector<LedgerRecord>& records);

/// Metric-by-metric comparison of two records (union of their metrics;
/// unchanged metrics are summarised, changed ones listed with deltas).
[[nodiscard]] std::string render_ledger_diff(const LedgerRecord& baseline,
                                             const LedgerRecord& candidate);

/// Noise model of the sentinel: timing metrics jitter between runs and
/// machines, byte counts jitter with allocator behaviour, pure counts are
/// deterministic and must match exactly.
enum class MetricClass { kTime, kMemory, kCount };

/// Classify by name: "seconds"/"_us"/"wall"/"pct"/"utilization" are time,
/// "bytes"/"rss"/"memory" are memory, everything else is an exact count.
[[nodiscard]] MetricClass classify_metric(const std::string& name);

struct CheckThresholds {
  double time_pct = 25.0;
  double memory_pct = 35.0;
  double count_pct = 0.0;
  /// Exact-name overrides (from repeated --metric NAME=PCT flags).
  std::map<std::string, double> per_metric;
};

struct CheckResult {
  bool ok = true;
  /// One entry per regressed metric: "name: baseline -> candidate (+X%)".
  std::vector<std::string> regressions;
  /// Human-readable per-metric table (stable format, golden-tested).
  std::string report;
};

/// Compare `candidate` against `baseline`.  Time and memory metrics only
/// regress when they INCREASE past their threshold (improvements pass and
/// tiny absolute wobbles under the noise floor are ignored); count metrics
/// fail on any mismatch in either direction.  Metrics present on only one
/// side are skipped.
[[nodiscard]] CheckResult check_regression(const LedgerRecord& baseline,
                                           const LedgerRecord& candidate,
                                           const CheckThresholds& thresholds);

}  // namespace elmo::obs
