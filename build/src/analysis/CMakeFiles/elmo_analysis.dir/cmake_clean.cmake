file(REMOVE_RECURSE
  "CMakeFiles/elmo_analysis.dir/decompose.cpp.o"
  "CMakeFiles/elmo_analysis.dir/decompose.cpp.o.d"
  "CMakeFiles/elmo_analysis.dir/knockout.cpp.o"
  "CMakeFiles/elmo_analysis.dir/knockout.cpp.o.d"
  "CMakeFiles/elmo_analysis.dir/yield.cpp.o"
  "CMakeFiles/elmo_analysis.dir/yield.cpp.o.d"
  "libelmo_analysis.a"
  "libelmo_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elmo_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
