// Seeds include:self-contained — UtilThing with no include path at all.
#pragma once

struct Orphan {
  UtilThing dangling;
};
