// Fast modular rank test.
//
// The algebraic rank test (nullity(N_S) == 1) dominates Nullspace Algorithm
// runtime once the exact Bareiss elimination is used for every candidate.
// This tester runs the elimination over Z_p with the Mersenne prime
// p = 2^61 - 1 instead:
//
//   * rank can only DROP under reduction mod p, so nullity_p >= nullity.
//     Every candidate is a nonzero kernel vector, hence nullity >= 1.
//     Therefore nullity_p == 1  =>  nullity == 1: ACCEPTS ARE CERTIFIED,
//     no exact confirmation needed.
//   * nullity_p >= 2 is treated as a rejection.  It is wrong only if p
//     divides the specific minor that realises rank(N_S) = |S| - 1; for
//     the integer matrices arising here that has probability on the order
//     of 2^-45 per test (documented Monte-Carlo guarantee; the exact
//     Bareiss backend remains available via SolverOptions).
//
// Two equivalent formulations are chosen per candidate by operation count:
//
//   N-side:  nullity = |S| - rank(N[:, S])           (m x |S| elimination)
//   K-side:  nullity = k - rank(K[~S, :])            ((q-|S|) x k)
//
// where K is the initial kernel basis.  For supports near the rank bound
// the K-side matrix is smaller by the rank of N in both dimensions.
#pragma once

#include <cstdint>
#include <vector>

#include "bigint/bigint.hpp"
#include "bigint/checked.hpp"
#include "bigint/scalar.hpp"
#include "linalg/matrix.hpp"
#include "nullspace/flux_column.hpp"
#include "support/assert.hpp"

namespace elmo {

namespace modular {

inline constexpr std::uint64_t kPrime = (1ULL << 61) - 1;

inline std::uint64_t mulmod(std::uint64_t a, std::uint64_t b) {
  __uint128_t x = static_cast<__uint128_t>(a) * b;
  std::uint64_t lo = static_cast<std::uint64_t>(x) & kPrime;
  std::uint64_t hi = static_cast<std::uint64_t>(x >> 61);
  std::uint64_t s = lo + hi;
  if (s >= kPrime) s -= kPrime;
  return s;
}

inline std::uint64_t submod(std::uint64_t a, std::uint64_t b) {
  return a >= b ? a - b : a + kPrime - b;
}

inline std::uint64_t powmod(std::uint64_t base, std::uint64_t exponent) {
  std::uint64_t result = 1;
  while (exponent) {
    if (exponent & 1) result = mulmod(result, base);
    base = mulmod(base, base);
    exponent >>= 1;
  }
  return result;
}

inline std::uint64_t invmod(std::uint64_t a) {
  ELMO_DCHECK(a != 0, "invmod of zero");
  return powmod(a, kPrime - 2);  // Fermat
}

inline std::uint64_t from_i64(std::int64_t v) {
  if (v >= 0) return static_cast<std::uint64_t>(v) % kPrime;
  // v < 0 here, so v + 1 cannot overflow and -(v + 1) fits in int64 even
  // for v == INT64_MIN; the + 1 after the cast is unsigned (wrap-defined).
  // lint:allow(overflow) deliberate INT64_MIN-safe negation
  std::uint64_t mag = static_cast<std::uint64_t>(-(v + 1)) + 1;
  std::uint64_t m = mag % kPrime;
  return m == 0 ? 0 : kPrime - m;
}

inline std::uint64_t from_scalar(const CheckedI64& v) {
  return from_i64(v.value());
}
inline std::uint64_t from_scalar(const BigInt& v) {
  // |v| mod p via BigInt division, sign fixed afterwards.
  BigInt q;
  BigInt r;
  BigInt::divmod(v.abs(), BigInt(static_cast<std::int64_t>(kPrime)), q, r);
  auto mag = static_cast<std::uint64_t>(r.to_i64());
  if (v.sign() < 0 && mag != 0) return kPrime - mag;
  return mag;
}

/// Rank of a dense row-major matrix over Z_p, with early abort: returns as
/// soon as the column deficiency (columns processed minus pivots found)
/// reaches `max_deficiency`, reporting rank = columns - max_deficiency - 1
/// sentinel via the bool.  Outputs (rank, aborted).
struct RankOutcome {
  std::size_t rank = 0;
  bool deficiency_exceeded = false;
};

inline RankOutcome rank_mod_p(std::vector<std::uint64_t>& a, std::size_t rows,
                              std::size_t cols,
                              std::size_t max_deficiency) {
  std::size_t rank = 0;
  std::size_t deficiency = 0;
  for (std::size_t col = 0; col < cols; ++col) {
    // Pivot search in this column at or below row `rank`.
    std::size_t pivot_row = rank;
    while (pivot_row < rows && a[pivot_row * cols + col] == 0) ++pivot_row;
    if (pivot_row == rows) {
      if (++deficiency > max_deficiency) {
        return {rank, true};
      }
      continue;
    }
    if (pivot_row != rank) {
      for (std::size_t j = col; j < cols; ++j)
        std::swap(a[rank * cols + j], a[pivot_row * cols + j]);
    }
    const std::uint64_t inv = invmod(a[rank * cols + col]);
    for (std::size_t i = rank + 1; i < rows; ++i) {
      const std::uint64_t head = a[i * cols + col];
      if (head == 0) continue;
      const std::uint64_t factor = mulmod(head, inv);
      a[i * cols + col] = 0;
      for (std::size_t j = col + 1; j < cols; ++j) {
        const std::uint64_t sub = mulmod(factor, a[rank * cols + j]);
        if (sub) a[i * cols + j] = submod(a[i * cols + j], sub);
      }
    }
    if (++rank == rows) {
      // All remaining columns are necessarily deficient... but they cannot
      // create pivots, so the final deficiency is fixed:
      deficiency += cols - col - 1;
      return {rank, deficiency > max_deficiency};
    }
  }
  return {rank, false};
}

}  // namespace modular

template <typename Scalar>
class ModularRankTester {
 public:
  /// `stoichiometry` is the reduced m x q matrix; `kernel_columns` the
  /// initial nullspace basis (one entry per basis column, values length q).
  template <typename Support>
  ModularRankTester(
      const Matrix<Scalar>& stoichiometry,
      const std::vector<FluxColumn<Scalar, Support>>& kernel_columns)
      : m_(stoichiometry.rows()),
        q_(stoichiometry.cols()),
        k_(kernel_columns.size()) {
    // N stored column-major: the N-side test copies whole columns.
    n_colmajor_.resize(m_ * q_);
    for (std::size_t i = 0; i < m_; ++i)
      for (std::size_t j = 0; j < q_; ++j)
        n_colmajor_[j * m_ + i] = modular::from_scalar(stoichiometry(i, j));
    // K stored row-major: the K-side test copies whole rows.
    k_rowmajor_.resize(q_ * k_);
    for (std::size_t c = 0; c < k_; ++c)
      for (std::size_t r = 0; r < q_; ++r)
        k_rowmajor_[r * k_ + c] =
            modular::from_scalar(kernel_columns[c].values[r]);
  }

  /// True iff nullity(N restricted to `support`) == 1, computed mod p.
  /// Accepts are exact; rejects are Monte-Carlo (see file comment).
  template <typename Support>
  bool is_elementary(const Support& support) {
    indices_.clear();
    support.append_indices(indices_);
    const std::size_t s = indices_.size();
    if (s == 0) return false;
    if (s > m_ + 1) return false;  // nullity >= s - m >= 2

    // Choose the cheaper side by elimination volume.
    const std::size_t n_side_cost = m_ * s * s;
    const std::size_t t = q_ - s;  // K-side rows
    const std::size_t k_side_cost = t * k_ * k_;
    if (n_side_cost <= k_side_cost) {
      scratch_.resize(m_ * s);
      // Gather selected columns, transposing column-major N into a
      // row-major m x s scratch.
      for (std::size_t j = 0; j < s; ++j) {
        const std::uint64_t* column = n_colmajor_.data() + indices_[j] * m_;
        for (std::size_t i = 0; i < m_; ++i)
          scratch_[i * s + j] = column[i];
      }
      auto outcome = modular::rank_mod_p(scratch_, m_, s, 1);
      if (outcome.deficiency_exceeded) return false;
      return s - outcome.rank == 1;
    }
    // K-side: rows of K outside the support; accept iff rank == k - 1.
    scratch_.resize(t * k_);
    std::size_t out_row = 0;
    std::size_t next = 0;  // cursor into sorted indices_
    for (std::size_t r = 0; r < q_; ++r) {
      if (next < s && indices_[next] == r) {
        ++next;
        continue;
      }
      const std::uint64_t* row = k_rowmajor_.data() + r * k_;
      std::copy(row, row + k_, scratch_.begin() + out_row * k_);
      ++out_row;
    }
    auto outcome = modular::rank_mod_p(scratch_, t, k_, 1);
    if (outcome.deficiency_exceeded) return false;
    return k_ - outcome.rank == 1;
  }

 private:
  std::size_t m_;
  std::size_t q_;
  std::size_t k_;
  std::vector<std::uint64_t> n_colmajor_;
  std::vector<std::uint64_t> k_rowmajor_;
  std::vector<std::uint32_t> indices_;
  std::vector<std::uint64_t> scratch_;
};

}  // namespace elmo
