file(REMOVE_RECURSE
  "CMakeFiles/elmo_cli.dir/elmo_cli.cpp.o"
  "CMakeFiles/elmo_cli.dir/elmo_cli.cpp.o.d"
  "elmo_cli"
  "elmo_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elmo_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
