// Multi-word support set for networks with more than 64 reactions.
//
// Same interface as Bitset64 so the Nullspace Algorithm kernel can be
// instantiated with either; genome-scale networks (BiGG models can exceed
// 3000 reactions) require this representation.
//
// All instances participating in one computation must be constructed with
// the same bit capacity; binary operations check this in debug builds.
#pragma once

#include <bit>
#include <compare>
#include <cstdint>
#include <vector>

#include "support/assert.hpp"

namespace elmo {

class DynBitset {
 public:
  DynBitset() = default;
  explicit DynBitset(std::size_t bit_capacity)
      : words_((bit_capacity + 63) / 64, 0) {}

  [[nodiscard]] std::size_t capacity() const { return words_.size() * 64; }

  void set(std::size_t i) {
    ELMO_DCHECK(i < capacity(), "DynBitset index out of range");
    words_[i >> 6] |= 1ULL << (i & 63);
  }
  void reset(std::size_t i) {
    ELMO_DCHECK(i < capacity(), "DynBitset index out of range");
    words_[i >> 6] &= ~(1ULL << (i & 63));
  }
  [[nodiscard]] bool test(std::size_t i) const {
    ELMO_DCHECK(i < capacity(), "DynBitset index out of range");
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }
  void clear() {
    for (auto& word : words_) word = 0;
  }

  [[nodiscard]] std::size_t count() const {
    std::size_t total = 0;
    for (auto word : words_)
      total += static_cast<std::size_t>(std::popcount(word));
    return total;
  }
  [[nodiscard]] bool empty() const {
    for (auto word : words_)
      if (word) return false;
    return true;
  }

  [[nodiscard]] bool is_subset_of(const DynBitset& other) const {
    ELMO_DCHECK(words_.size() == other.words_.size(),
                "DynBitset capacity mismatch");
    for (std::size_t i = 0; i < words_.size(); ++i)
      if (words_[i] & ~other.words_[i]) return false;
    return true;
  }
  [[nodiscard]] bool intersects(const DynBitset& other) const {
    ELMO_DCHECK(words_.size() == other.words_.size(),
                "DynBitset capacity mismatch");
    for (std::size_t i = 0; i < words_.size(); ++i)
      if (words_[i] & other.words_[i]) return true;
    return false;
  }

  DynBitset& operator|=(const DynBitset& rhs) {
    ELMO_DCHECK(words_.size() == rhs.words_.size(),
                "DynBitset capacity mismatch");
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= rhs.words_[i];
    return *this;
  }
  DynBitset& operator&=(const DynBitset& rhs) {
    ELMO_DCHECK(words_.size() == rhs.words_.size(),
                "DynBitset capacity mismatch");
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= rhs.words_[i];
    return *this;
  }
  friend DynBitset operator|(DynBitset a, const DynBitset& b) {
    return a |= b;
  }
  friend DynBitset operator&(DynBitset a, const DynBitset& b) {
    return a &= b;
  }

  friend bool operator==(const DynBitset& a, const DynBitset& b) = default;
  friend std::strong_ordering operator<=>(const DynBitset& a,
                                          const DynBitset& b) {
    // Most-significant word first so the ordering matches Bitset64's
    // numeric ordering on the low 64 bits when capacities are equal.
    for (std::size_t i = a.words_.size(); i-- > 0;) {
      if (auto cmp = a.words_[i] <=> b.words_[i]; cmp != 0) return cmp;
    }
    return std::strong_ordering::equal;
  }

  /// Append the indices of set bits, in increasing order.
  template <typename IndexVector>
  void append_indices(IndexVector& out) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t rest = words_[w];
      while (rest) {
        out.push_back(static_cast<typename IndexVector::value_type>(
            w * 64 + static_cast<std::size_t>(std::countr_zero(rest))));
        rest &= rest - 1;
      }
    }
  }

  [[nodiscard]] std::size_t hash() const {
    std::uint64_t h = 0x9e3779b97f4a7c15ULL;
    for (auto word : words_) {
      std::uint64_t z = word + h;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      h = z ^ (z >> 31);
    }
    return static_cast<std::size_t>(h);
  }

  [[nodiscard]] std::size_t storage_bytes() const {
    return words_.capacity() * sizeof(std::uint64_t);
  }

  /// Raw word view (message-passing serialisation).
  [[nodiscard]] const std::vector<std::uint64_t>& words() const {
    return words_;
  }
  static DynBitset from_words(std::vector<std::uint64_t> words) {
    DynBitset out;
    out.words_ = std::move(words);
    return out;
  }
  /// Surrender the word buffer (leaves the set empty).  The candidate
  /// engine's slab recycles survivor supports through this to avoid one
  /// heap round trip per pre-test survivor.
  [[nodiscard]] std::vector<std::uint64_t> take_words() && {
    return std::move(words_);
  }

 private:
  std::vector<std::uint64_t> words_;
};

/// |a ∪ b| without materialising the union (allocation-free hot path).
inline std::size_t union_count(const DynBitset& a, const DynBitset& b) {
  const auto& wa = a.words();
  const auto& wb = b.words();
  std::size_t total = 0;
  for (std::size_t i = 0; i < wa.size(); ++i)
    total += static_cast<std::size_t>(std::popcount(wa[i] | wb[i]));
  return total;
}

}  // namespace elmo
