// Umbrella header: everything a downstream user of elmo++ needs.
//
//   #include "elmo/elmo.hpp"
//
//   elmo::Network net = elmo::parse_network(text);
//   elmo::EfmResult efms = elmo::compute_efms(net);
//
// Finer-grained headers remain available for callers that want the solver
// kernels, the compression layer or the simulated message-passing runtime
// directly.
#pragma once

#include "compress/compression.hpp"   // compress(), CompressedProblem
#include "core/api.hpp"               // compute_efms(), EfmOptions/EfmResult
#include "io/efm_writer.hpp"          // efms_to_text / efms_to_csv
#include "models/random_network.hpp"  // random_network()
#include "models/toy.hpp"             // the paper's Fig. 1 network
#include "models/yeast.hpp"           // S. cerevisiae Networks I and II
#include "network/network.hpp"        // Network, Reaction, Metabolite
#include "network/parser.hpp"         // parse_network / write_network
#include "network/validate.hpp"       // validate()
