// Tests for the dense matrix container.
#include "linalg/matrix.hpp"

#include <gtest/gtest.h>

#include "bigint/bigint.hpp"
#include "bigint/checked.hpp"
#include "support/error.hpp"

namespace elmo {
namespace {

TEST(Matrix, ConstructionAndIndexing) {
  Matrix<CheckedI64> m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_TRUE(scalar_is_zero(m(1, 2)));
  m(1, 2) = CheckedI64(7);
  EXPECT_EQ(m(1, 2).value(), 7);
}

TEST(Matrix, FromRowsAndEquality) {
  auto m = Matrix<CheckedI64>::from_rows({{1, 2}, {3, 4}});
  EXPECT_EQ(m(0, 1).value(), 2);
  EXPECT_EQ(m(1, 0).value(), 3);
  auto same = Matrix<CheckedI64>::from_rows({{1, 2}, {3, 4}});
  EXPECT_EQ(m, same);
  auto different = Matrix<CheckedI64>::from_rows({{1, 2}, {3, 5}});
  EXPECT_NE(m, different);
}

TEST(Matrix, Transpose) {
  auto m = Matrix<CheckedI64>::from_rows({{1, 2, 3}, {4, 5, 6}});
  auto t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_EQ(t(2, 1).value(), 6);
  EXPECT_EQ(t.transposed(), m);
}

TEST(Matrix, SelectColumnsAndRows) {
  auto m = Matrix<CheckedI64>::from_rows({{1, 2, 3}, {4, 5, 6}, {7, 8, 9}});
  auto cols = m.select_columns({2, 0});
  EXPECT_EQ(cols, (Matrix<CheckedI64>::from_rows({{3, 1}, {6, 4}, {9, 7}})));
  auto rows = m.select_rows({1});
  EXPECT_EQ(rows, (Matrix<CheckedI64>::from_rows({{4, 5, 6}})));
}

TEST(Matrix, SwapRows) {
  auto m = Matrix<CheckedI64>::from_rows({{1, 2}, {3, 4}});
  m.swap_rows(0, 1);
  EXPECT_EQ(m, (Matrix<CheckedI64>::from_rows({{3, 4}, {1, 2}})));
  m.swap_rows(1, 1);  // no-op
  EXPECT_EQ(m(1, 0).value(), 1);
}

TEST(Matrix, MultiplyVector) {
  auto m = Matrix<CheckedI64>::from_rows({{1, -1, 0}, {0, 2, -2}});
  std::vector<CheckedI64> x = {CheckedI64(3), CheckedI64(3), CheckedI64(3)};
  auto y = m.multiply(x);
  EXPECT_EQ(y[0].value(), 0);
  EXPECT_EQ(y[1].value(), 0);
  std::vector<CheckedI64> bad(2, CheckedI64(1));
  EXPECT_THROW(m.multiply(bad), InvalidArgumentError);
}

TEST(Matrix, RowNnz) {
  auto m = Matrix<CheckedI64>::from_rows({{0, 1, 0, 2}, {0, 0, 0, 0}});
  EXPECT_EQ(m.row_nnz(0), 2u);
  EXPECT_EQ(m.row_nnz(1), 0u);
}

TEST(Matrix, WorksWithBigInt) {
  Matrix<BigInt> m(1, 2);
  m(0, 0) = BigInt::from_string("123456789012345678901234567890");
  m(0, 1) = BigInt(-1);
  auto t = m.transposed();
  EXPECT_EQ(t(0, 0).to_string(), "123456789012345678901234567890");
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix<CheckedI64>::from_rows({{1, 2}, {3}})),
               InvalidArgumentError);
}

}  // namespace
}  // namespace elmo
