# Empty dependencies file for strain_design.
# This may be replaced when dependencies are built.
