// Clean counterpart for the determinism pass.  Ordered containers,
// value keys, and no clock or thread-id reads.  Must stay silent.
// Never compiled — only analyzed.
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

namespace fixture {

// Ordered containers with value keys iterate deterministically.
std::map<int, long> g_by_index;
std::set<long> g_ids;

inline long walk() {
  long total = 0;
  for (const auto& kv : g_by_index) total += kv.second;
  for (long id : g_ids) total += id;

  // Unordered lookup without iteration is fine.
  std::unordered_map<int, long> cache;
  total += cache.count(3);

  // Annotated iteration: order feeds a commutative reduction.
  std::unordered_map<int, long> tallies;
  // lint:allow(unordered-iter)
  for (const auto& kv : tallies) total += kv.second;

  std::vector<long> row(8, 0);
  for (long v : row) total += v;
  return total;
}

}  // namespace fixture
