#include "obs/metrics.hpp"

#include <bit>
#include <deque>

#include "obs/json.hpp"

namespace elmo::obs {

namespace detail {

std::size_t metric_shard() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return shard;
}

}  // namespace detail

std::size_t histogram_bucket(std::uint64_t value) {
  return static_cast<std::size_t>(std::bit_width(value));
}

std::uint64_t histogram_bucket_low(std::size_t index) {
  if (index <= 1) return index;  // bucket 0 = {0}, bucket 1 starts at 1
  return std::uint64_t{1} << (index - 1);
}

/// Instrument storage.  Deques keep element addresses stable across
/// registrations, so handles stay valid while new instruments appear.
struct Registry::Impl {
  std::deque<detail::CounterData> counters;
  std::deque<detail::GaugeData> gauges;
  std::deque<detail::HistogramData> histograms;
  std::map<std::string, detail::CounterData*> counter_index;
  std::map<std::string, detail::GaugeData*> gauge_index;
  std::map<std::string, detail::HistogramData*> histogram_index;
};

Registry& Registry::global() {
  // Heap-allocated and never destroyed: instrument handles cached in
  // function-local statics all over the codebase must stay valid for the
  // whole process lifetime, independent of static destruction order.
  // lint:allow(naked-new)
  static Registry* registry = new Registry();
  return *registry;
}

Registry::~Registry() { delete impl_; }

Registry::Impl& Registry::impl() {
  // Lazy pimpl, deleted in ~Registry.  lint:allow(naked-new)
  if (impl_ == nullptr) impl_ = new Impl();
  return *impl_;
}

Counter Registry::counter(const std::string& name) {
  if constexpr (!kObsCompiledIn) return Counter();
  std::lock_guard lock(mutex_);
  auto& data = impl().counter_index[name];
  if (data == nullptr) {
    impl().counters.emplace_back();
    data = &impl().counters.back();
    data->name = name;
    data->enabled = &enabled_;
  }
  return Counter(data);
}

Gauge Registry::gauge(const std::string& name) {
  if constexpr (!kObsCompiledIn) return Gauge();
  std::lock_guard lock(mutex_);
  auto& data = impl().gauge_index[name];
  if (data == nullptr) {
    impl().gauges.emplace_back();
    data = &impl().gauges.back();
    data->name = name;
    data->enabled = &enabled_;
  }
  return Gauge(data);
}

Histogram Registry::histogram(const std::string& name) {
  if constexpr (!kObsCompiledIn) return Histogram();
  std::lock_guard lock(mutex_);
  auto& data = impl().histogram_index[name];
  if (data == nullptr) {
    impl().histograms.emplace_back();
    data = &impl().histograms.back();
    data->name = name;
    data->enabled = &enabled_;
  }
  return Histogram(data);
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot snapshot;
  std::lock_guard lock(mutex_);
  if (impl_ == nullptr) return snapshot;
  for (const auto& counter : impl_->counters) {
    std::uint64_t total = 0;
    for (const auto& shard : counter.shards)
      total += shard.value.load(std::memory_order_relaxed);
    snapshot.counters[counter.name] = total;
  }
  for (const auto& gauge : impl_->gauges) {
    snapshot.gauges[gauge.name] = {
        gauge.value.load(std::memory_order_relaxed),
        gauge.max.load(std::memory_order_relaxed)};
  }
  for (const auto& histogram : impl_->histograms) {
    HistogramSnapshot merged;
    for (const auto& shard : histogram.shards) {
      for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
        const std::uint64_t n =
            shard.buckets[b].load(std::memory_order_relaxed);
        merged.buckets[b] += n;
        merged.count += n;
      }
      merged.sum += shard.sum.load(std::memory_order_relaxed);
    }
    snapshot.histograms[histogram.name] = merged;
  }
  return snapshot;
}

void Registry::reset() {
  std::lock_guard lock(mutex_);
  if (impl_ == nullptr) return;
  for (auto& counter : impl_->counters) {
    for (auto& shard : counter.shards)
      shard.value.store(0, std::memory_order_relaxed);
  }
  for (auto& gauge : impl_->gauges) {
    gauge.value.store(0, std::memory_order_relaxed);
    gauge.max.store(0, std::memory_order_relaxed);
  }
  for (auto& histogram : impl_->histograms) {
    for (auto& shard : histogram.shards) {
      for (auto& bucket : shard.buckets)
        bucket.store(0, std::memory_order_relaxed);
      shard.sum.store(0, std::memory_order_relaxed);
    }
  }
}

JsonValue MetricsSnapshot::to_json() const {
  JsonValue root = JsonValue::object();
  JsonValue counters_json = JsonValue::object();
  for (const auto& [name, value] : counters)
    counters_json.set(name, JsonValue(value));
  root.set("counters", std::move(counters_json));

  JsonValue gauges_json = JsonValue::object();
  for (const auto& [name, gauge] : gauges) {
    JsonValue entry = JsonValue::object();
    entry.set("value", JsonValue(gauge.value));
    entry.set("max", JsonValue(gauge.max));
    gauges_json.set(name, std::move(entry));
  }
  root.set("gauges", std::move(gauges_json));

  JsonValue histograms_json = JsonValue::object();
  for (const auto& [name, histogram] : histograms) {
    JsonValue entry = JsonValue::object();
    entry.set("count", JsonValue(histogram.count));
    entry.set("sum", JsonValue(histogram.sum));
    // Sparse bucket map keyed by the bucket's inclusive lower bound.
    JsonValue buckets_json = JsonValue::object();
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      if (histogram.buckets[b] == 0) continue;
      buckets_json.set(std::to_string(histogram_bucket_low(b)),
                       JsonValue(histogram.buckets[b]));
    }
    entry.set("buckets_by_low", std::move(buckets_json));
    histograms_json.set(name, std::move(entry));
  }
  root.set("histograms", std::move(histograms_json));
  return root;
}

}  // namespace elmo::obs
