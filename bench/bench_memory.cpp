// SIV.B (memory scalability): the combinatorial parallel algorithm
// replicates the whole nullspace matrix on every rank, so its per-rank peak
// is the problem's peak; divide-and-conquer subsets each fit a smaller
// matrix ("fits the larger problem to the available architecture") while
// the CUMULATIVE memory over all subsets stays comparable.
//
// Prints: unsplit per-rank peak; per-subset peaks under qsub = 1..3; the
// max (what a node must fit) and the sum (cumulative) per qsub.
#include <cstdio>

#include "bench_common.hpp"
#include "core/combined.hpp"
#include "core/partitioned_parallel.hpp"
#include "nullspace/efm.hpp"
#include "nullspace/problem.hpp"

int main(int argc, char** argv) {
  using namespace elmo;
  const bool full = bench::full_scale(argc, argv);
  bench::print_scale_banner(full,
                            "Figure (SIV.B): per-rank memory, split vs "
                            "unsplit");

  Network network = bench::network_1(full);
  auto compressed = compress(network);

  EfmOptions unsplit;
  unsplit.algorithm = Algorithm::kCombinatorialParallel;
  unsplit.num_ranks = 2;
  auto baseline = compute_efms(compressed, network.reversibility(), unsplit);
  std::printf("Algorithm 2 per-rank peak matrix memory: %s (peak %s "
              "columns)\n\n",
              bytes_str(baseline.peak_rank_memory).c_str(),
              with_commas(baseline.stats.peak_columns).c_str());

  Table table({"qsub", "largest subset peak", "sum over subsets",
               "vs unsplit (largest)", "# EFM"});
  auto problem = to_problem<CheckedI64>(compressed);
  for (std::size_t qsub = 1; qsub <= 3; ++qsub) {
    CombinedOptions combined;
    combined.qsub = qsub;
    combined.num_ranks = 1;
    auto detailed = solve_combined<CheckedI64, DynBitset>(problem, combined);
    std::size_t largest = 0;
    std::size_t sum = 0;
    for (const auto& subset : detailed.subsets) {
      largest = std::max(largest, subset.stats.peak_matrix_bytes);
      sum += subset.stats.peak_matrix_bytes;
    }
    char ratio_text[32];
    std::snprintf(ratio_text, sizeof ratio_text, "%.2fx",
                  static_cast<double>(largest) /
                      static_cast<double>(baseline.peak_rank_memory));
    // Canonical mode count (raw columns can contain one +/- orientation
    // duplicate per fully reversible cycle).
    auto modes = columns_to_bigint(detailed.columns);
    canonicalize_modes(modes, problem.reversible);
    table.add_row({std::to_string(qsub), bytes_str(largest), bytes_str(sum),
                   ratio_text, with_commas(modes.size())});
  }
  std::fputs(table.render("Algorithm 3 subsets").c_str(), stdout);

  // Algorithm 4 — the paper's future-work item #1 implemented: partition
  // the matrix itself across ranks instead of replicating it.
  Table a4({"# ranks", "per-rank peak (shard + positives)", "vs Alg. 2",
            "message bytes"});
  for (int ranks : {2, 4, 8}) {
    PartitionedOptions options;
    options.num_ranks = ranks;
    auto result =
        solve_partitioned_parallel<CheckedI64, DynBitset>(problem, options);
    char ratio_text[32];
    std::snprintf(ratio_text, sizeof ratio_text, "%.2fx",
                  static_cast<double>(result.peak_rank_bytes) /
                      static_cast<double>(baseline.peak_rank_memory));
    a4.add_row({std::to_string(ranks), bytes_str(result.peak_rank_bytes),
                ratio_text,
                with_commas(result.ranks.total_bytes_sent())});
  }
  std::fputs(
      ("\n" + a4.render("Algorithm 4 (matrix-partitioned, future-work #1)"))
          .c_str(),
      stdout);

  std::printf("\npaper: divide-and-conquer fits each subproblem into node "
              "memory; cumulative requirements stay the same order.\n"
              "Algorithm 4 removes the replica entirely at the cost of "
              "gathering the positive side each iteration.\n");
  return 0;
}
