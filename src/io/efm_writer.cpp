#include "io/efm_writer.hpp"

#include <sstream>

#include "bigint/bigint.hpp"
#include "support/assert.hpp"

namespace elmo {

std::string efms_to_text(const std::vector<std::vector<BigInt>>& modes,
                         const std::vector<std::string>& reaction_names) {
  std::ostringstream os;
  for (std::size_t r = 0; r < reaction_names.size(); ++r) {
    os << reaction_names[r];
    for (const auto& mode : modes) {
      ELMO_REQUIRE(mode.size() == reaction_names.size(),
                   "mode dimension mismatch");
      os << '\t' << mode[r].to_string();
    }
    os << '\n';
  }
  return os.str();
}

std::string efms_to_csv(const std::vector<std::vector<BigInt>>& modes,
                        const std::vector<std::string>& reaction_names) {
  std::ostringstream os;
  for (std::size_t r = 0; r < reaction_names.size(); ++r) {
    if (r) os << ',';
    os << reaction_names[r];
  }
  os << '\n';
  for (const auto& mode : modes) {
    ELMO_REQUIRE(mode.size() == reaction_names.size(),
                 "mode dimension mismatch");
    for (std::size_t r = 0; r < mode.size(); ++r) {
      if (r) os << ',';
      os << mode[r].to_string();
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace elmo
