# Empty dependencies file for bench_ablation_qsub.
# This may be replaced when dependencies are built.
