// Tests for the hybrid ranks x threads execution mode (Blue Gene/P SMP /
// dual modes): results and counters must be identical to flat execution.
#include <gtest/gtest.h>

#include "compress/compression.hpp"
#include "core/combinatorial_parallel.hpp"
#include "efm_test_util.hpp"
#include "models/random_network.hpp"
#include "models/toy.hpp"
#include "models/yeast.hpp"

namespace elmo {
namespace {

TEST(Hybrid, ToyAgreesAcrossThreadCounts) {
  Network net = models::toy_network();
  auto compressed = compress(net);
  auto problem = to_problem<CheckedI64>(compressed);
  auto serial = expand_and_canonicalize(
      solve_efms<CheckedI64, Bitset64>(problem).columns, compressed, net);
  for (int threads : {1, 2, 4}) {
    ParallelOptions options;
    options.num_ranks = 2;
    options.threads_per_rank = threads;
    auto result =
        solve_combinatorial_parallel<CheckedI64, Bitset64>(problem, options);
    EXPECT_EQ(expand_and_canonicalize(result.columns, compressed, net),
              serial)
        << "threads " << threads;
  }
}

TEST(Hybrid, PairCountConservedAcrossSmpModes) {
  // Table II's "# nodes x cores per node" configurations: 1x4, 4x4, 2x8 —
  // total candidates must never change.
  Network net = models::toy_network();
  auto compressed = compress(net);
  auto problem = to_problem<CheckedI64>(compressed);
  auto serial = solve_efms<CheckedI64, Bitset64>(problem);
  for (auto [ranks, threads] :
       {std::pair{1, 4}, std::pair{4, 4}, std::pair{2, 8}}) {
    ParallelOptions options;
    options.num_ranks = ranks;
    options.threads_per_rank = threads;
    auto result =
        solve_combinatorial_parallel<CheckedI64, Bitset64>(problem, options);
    EXPECT_EQ(result.stats.total_pairs_probed,
              serial.stats.total_pairs_probed)
        << ranks << "x" << threads;
    EXPECT_EQ(result.stats.total_accepted, serial.stats.total_accepted);
  }
}

TEST(Hybrid, RandomNetworksAgree) {
  for (std::uint64_t seed = 30; seed < 38; ++seed) {
    models::RandomNetworkSpec spec;
    spec.seed = seed;
    spec.num_metabolites = 5 + seed % 3;
    spec.num_extra_reactions = 4;
    Network net = models::random_network(spec);
    auto compressed = compress(net);
    auto problem = to_problem<CheckedI64>(compressed);
    auto serial = expand_and_canonicalize(
        solve_efms<CheckedI64, Bitset64>(problem).columns, compressed, net);
    ParallelOptions options;
    options.num_ranks = 2;
    options.threads_per_rank = 3;
    auto result =
        solve_combinatorial_parallel<CheckedI64, Bitset64>(problem, options);
    EXPECT_EQ(expand_and_canonicalize(result.columns, compressed, net),
              serial)
        << "seed " << seed;
  }
}

TEST(Hybrid, YeastDemoAgrees) {
  Network net = models::yeast_network_1();
  std::vector<ReactionId> trim;
  for (const char* name : {"R15", "R33", "R41", "R46", "R92r", "R98", "R100",
                           "R77", "R101", "R32r", "R30r"}) {
    if (auto id = net.find_reaction(name)) trim.push_back(*id);
  }
  net = net.without_reactions(trim);
  auto compressed = compress(net);
  auto problem = to_problem<CheckedI64>(compressed);
  ParallelOptions flat;
  flat.num_ranks = 4;
  auto a =
      solve_combinatorial_parallel<CheckedI64, DynBitset>(problem, flat);
  ParallelOptions hybrid;
  hybrid.num_ranks = 2;
  hybrid.threads_per_rank = 2;
  auto b =
      solve_combinatorial_parallel<CheckedI64, DynBitset>(problem, hybrid);
  EXPECT_EQ(expand_and_canonicalize(a.columns, compressed, net),
            expand_and_canonicalize(b.columns, compressed, net));
  EXPECT_EQ(a.stats.total_pairs_probed, b.stats.total_pairs_probed);
}

}  // namespace
}  // namespace elmo
