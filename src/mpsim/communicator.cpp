#include "mpsim/communicator.hpp"

#include <atomic>
#include <chrono>
#include <exception>
#include <map>
#include <new>  // std::bad_alloc  lint:allow(naked-new)
#include <thread>

#include "check/lockorder.hpp"
#include "mpsim/fault.hpp"
#include "obs/obs.hpp"
#include "resource/watchdog.hpp"
#include "support/assert.hpp"

namespace elmo::mpsim {

namespace {

/// Cached instrument handles for the runtime's traffic metrics.
struct MpsimMetrics {
  obs::Counter messages = obs::Registry::global().counter(
      "mpsim.messages_sent");
  obs::Counter bytes = obs::Registry::global().counter("mpsim.bytes_sent");
  obs::Counter collectives = obs::Registry::global().counter(
      "mpsim.collectives");
  obs::Counter rank_failures = obs::Registry::global().counter(
      "mpsim.rank_failures");
  obs::Counter suppressed_errors = obs::Registry::global().counter(
      "mpsim.secondary_errors_suppressed");
  obs::Counter deadlocks = obs::Registry::global().counter(
      "mpsim.deadlocks_detected");
  obs::Counter stragglers = obs::Registry::global().counter(
      "mpsim.stragglers_detected");
  obs::Counter deadline_aborts = obs::Registry::global().counter(
      "mpsim.deadline_aborts");
  obs::Histogram payload_bytes = obs::Registry::global().histogram(
      "mpsim.payload_bytes");
  obs::Histogram queue_depth = obs::Registry::global().histogram(
      "mpsim.queue_depth");
  obs::Histogram wait_data = obs::Registry::global().histogram(
      "mpsim.wait_data_us");
  obs::Histogram wait_barrier = obs::Registry::global().histogram(
      "mpsim.wait_barrier_us");
  obs::Histogram wait_straggler = obs::Registry::global().histogram(
      "mpsim.wait_straggler_us");

  static const MpsimMetrics& get() {
    static const MpsimMetrics metrics;
    return metrics;
  }
};

/// Account one classified blocked wait: rank counters, the per-class
/// histogram, and (when tracing) a span on the waiting rank's track so
/// wait time shows up between the send/recv slices in Perfetto.
void record_wait(RankCounters& counters, bool data_wait, bool straggler,
                 double trace_start_us, double waited_us) {
  const auto us = static_cast<std::uint64_t>(waited_us);
  const MpsimMetrics& metrics = MpsimMetrics::get();
  const char* kind = nullptr;
  if (straggler) {
    counters.wait_straggler_us += us;
    metrics.wait_straggler.observe(us);
    kind = "straggler-wait";
  } else if (data_wait) {
    counters.wait_data_us += us;
    metrics.wait_data.observe(us);
    kind = "data-wait";
  } else {
    counters.wait_barrier_us += us;
    metrics.wait_barrier.observe(us);
    kind = "barrier-wait";
  }
  if (obs::TraceRecorder* recorder = obs::trace())
    recorder->record_complete(kind, "wait", trace_start_us, waited_us);
}

}  // namespace

namespace detail {

/// Each World (one per run_ranks call) gets a process-unique epoch so flow
/// ids never repeat across the subsets of a divide-and-conquer run.
inline std::uint64_t next_world_epoch() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

/// Shared state of one simulated machine.  All blocking waits watch the
/// `aborted` flag so a failing rank can never deadlock its peers; rank
/// exits are tracked so a wait that can provably never be satisfied (recv
/// from an exited source, a barrier an exited rank will never join) wakes
/// promptly instead of hanging until process teardown.
struct World {
  explicit World(int n, const RunOptions& opts) : size(n), options(opts) {
    mailboxes.resize(static_cast<std::size_t>(n));
    gather_slots.assign(static_cast<std::size_t>(n), {});
    reduce_slots.assign(static_cast<std::size_t>(n), 0);
    exited.assign(static_cast<std::size_t>(n), false);
    waits.assign(static_cast<std::size_t>(n), {});
    progress = std::vector<std::atomic<std::uint64_t>>(
        static_cast<std::size_t>(n));
  }

  const int size;
  const RunOptions options;

  std::mutex mutex;
  std::condition_variable cv;
  bool aborted = false;
  int abort_origin = -1;
  std::string abort_reason;

  // Rank lifecycle: bodies that returned (normally or by throwing).
  std::vector<bool> exited;
  int num_exited = 0;
  int first_exited = -1;

  // Point-to-point: per-destination map keyed by (source, tag).  Each
  // queued message carries the flow id stamped at send time so the recv
  // side can close the matching Perfetto flow arrow.
  struct Message {
    Payload payload;
    std::uint64_t flow = 0;
  };
  struct Mailbox {
    std::map<std::pair<int, int>, std::deque<Message>> queues;
    std::size_t depth = 0;       // undelivered messages across all queues
    std::size_t peak_depth = 0;  // high-water mark of depth
  };
  std::vector<Mailbox> mailboxes;

  // Monotone message sequence; combined with `flow_epoch` it forms the
  // per-message flow id (guarded by `mutex`, like the mailboxes it stamps).
  std::uint64_t next_flow = 1;

  // Process-unique world number mixed into every flow id.  Without it a
  // divide-and-conquer run — one World per subset — would reuse ids across
  // subsets and Perfetto would thread arrows between unrelated exchanges.
  const std::uint64_t flow_epoch = next_world_epoch();

  // Barrier (generation-counting).
  int barrier_waiting = 0;
  std::uint64_t barrier_generation = 0;

  // Collectives: slot per rank plus a two-phase barrier around them.
  std::vector<Payload> gather_slots;
  std::vector<std::uint64_t> reduce_slots;

  // Progress checker: what each rank is blocked on right now.  A rank
  // registers its wait (predicate already false, mutex held) before
  // blocking; the moment no runnable rank remains the stall is provable
  // and the world aborts with a per-rank diagnostic.
  struct WaitInfo {
    enum class Kind { kNone, kRecv, kBarrier };
    Kind kind = Kind::kNone;
    int source = -1;
    int tag = 0;
    // Barrier waits record the generation they entered; a registration
    // whose generation has since advanced is already released (the thread
    // just hasn't re-acquired the mutex yet) and must not count as stalled.
    std::uint64_t generation = 0;

    [[nodiscard]] std::string describe() const {
      switch (kind) {
        case Kind::kRecv:
          return "recv(source=" + std::to_string(source) +
                 ", tag=" + std::to_string(tag) + ")";
        case Kind::kBarrier:
          return "barrier";
        case Kind::kNone:
          break;
      }
      return "running";
    }
  };
  std::vector<WaitInfo> waits;
  int num_waiting = 0;

  // Per-rank operation counters sampled lock-free by the resource watchdog
  // (straggler/wedge detection); bumped on every primitive in enter_op.
  std::vector<std::atomic<std::uint64_t>> progress;
  // Set by the watchdog's hard-deadline callback so run_ranks can surface
  // DeadlineExceededError instead of the secondary AbortedErrors.
  bool deadline_hit = false;
  std::string deadline_reason;

  void abort_locked(int origin, const std::string& reason) {
    if (!aborted) {
      aborted = true;
      abort_origin = origin;
      abort_reason = reason;
    }
    cv.notify_all();
  }

  void mark_exited_locked(int rank) {
    exited[static_cast<std::size_t>(rank)] = true;
    if (first_exited < 0) first_exited = rank;
    ++num_exited;
    // A rank that exits while peers sit inside a barrier guarantees
    // deadlock: the barrier can never again reach full attendance.
    if (barrier_waiting > 0 && !aborted) {
      abort_locked(rank,
                   "rank " + std::to_string(rank) +
                       " exited while peers were blocked in a collective");
    }
    detect_stall_locked();
    cv.notify_all();
  }

  /// Fires when no runnable rank remains: every non-exited rank is blocked
  /// and none of their waits can resolve without a runnable peer.  A wait
  /// whose predicate has already turned true (message in flight, barrier
  /// generation advanced, source exited) is excluded — that rank holds a
  /// wake-up it simply hasn't consumed yet, so the world can still make
  /// progress.  This keeps the check sound: it fires iff every registered
  /// predicate is false while no runnable rank exists to flip one.
  void detect_stall_locked() {
    if (!options.detect_deadlock || aborted) return;
    if (num_waiting == 0 || num_waiting + num_exited < size) return;
    for (int r = 0; r < size; ++r) {
      const auto& wait = waits[static_cast<std::size_t>(r)];
      switch (wait.kind) {
        case WaitInfo::Kind::kNone:
          // Counted neither waiting nor exited: rank is runnable.
          if (!exited[static_cast<std::size_t>(r)]) return;
          break;
        case WaitInfo::Kind::kRecv: {
          if (exited[static_cast<std::size_t>(wait.source)]) {
            return;  // self-resolving: that rank wakes and aborts on its own
          }
          const auto& queues = mailboxes[static_cast<std::size_t>(r)].queues;
          auto it = queues.find({wait.source, wait.tag});
          if (it != queues.end() && !it->second.empty()) {
            return;  // matching message already delivered; rank will wake
          }
          break;
        }
        case WaitInfo::Kind::kBarrier:
          if (barrier_generation != wait.generation) {
            return;  // barrier already released; rank will wake
          }
          break;
      }
    }
    std::string diagnosis = "deadlock detected, no runnable rank remains:";
    for (int r = 0; r < size; ++r) {
      diagnosis += " rank " + std::to_string(r) + " ";
      diagnosis += exited[static_cast<std::size_t>(r)]
                       ? "exited"
                       : waits[static_cast<std::size_t>(r)].describe();
      if (r + 1 < size) diagnosis += ';';
    }
    MpsimMetrics::get().deadlocks.add(1);
    obs::trace_instant("deadlock", "mpsim", diagnosis);
    abort_locked(-1, diagnosis);
  }
};

/// RAII wait registration for the progress checker.  Construct with the
/// world mutex held and the wait predicate known false; destruct (mutex
/// again held after cv.wait) to mark the rank runnable.
class ScopedWait {
 public:
  ScopedWait(World& world, int rank, World::WaitInfo info)
      : world_(world), rank_(rank) {
    world_.waits[static_cast<std::size_t>(rank_)] = info;
    ++world_.num_waiting;
    world_.detect_stall_locked();
  }
  ~ScopedWait() {
    world_.waits[static_cast<std::size_t>(rank_)] = {};
    --world_.num_waiting;
  }

  ScopedWait(const ScopedWait&) = delete;
  ScopedWait& operator=(const ScopedWait&) = delete;

 private:
  World& world_;
  int rank_;
};

}  // namespace detail

Communicator::Communicator(detail::World& world, int rank)
    : world_(world), rank_(rank) {}

int Communicator::size() const { return world_.size; }

void Communicator::check_abort_locked(std::unique_lock<std::mutex>&) {
  if (world_.aborted)
    throw AbortedError(world_.abort_origin, world_.abort_reason);
}

void Communicator::enter_op(const char* where) {
  world_.progress[static_cast<std::size_t>(rank_)].fetch_add(
      1, std::memory_order_relaxed);
  FaultPlan* plan = world_.options.fault_plan.get();
  if (plan == nullptr) return;
  if (const std::uint32_t us = plan->straggler_delay_us(rank_)) {
    std::this_thread::sleep_for(std::chrono::microseconds(us));
  }
  plan->on_op(rank_, where);  // throws InjectedFaultError on a crash trigger
}

void Communicator::send(int destination, int tag, Payload payload) {
  ELMO_REQUIRE(destination >= 0 && destination < world_.size,
               "send: bad destination rank");
  obs::TraceSpan span("send", "mpsim");
  const MpsimMetrics& metrics = MpsimMetrics::get();
  metrics.messages.add(1);
  metrics.bytes.add(payload.size());
  metrics.payload_bytes.observe(payload.size());
  enter_op("send");
  FaultPlan* plan = world_.options.fault_plan.get();
  if (plan != nullptr) plan->on_payload(rank_, payload);
  ELMO_LOCK_ORDER("mpsim.world");
  std::unique_lock lock(world_.mutex);
  check_abort_locked(lock);
  counters_.messages_sent += 1;
  counters_.bytes_sent += payload.size();
  // A dropped message is "sent" from the sender's perspective (counters
  // above reflect the traffic) but never reaches the destination mailbox —
  // and opens no flow, so flow pairing stays exact under fault injection.
  if (plan != nullptr && plan->on_send(rank_, destination)) {
    if (obs::trace() != nullptr) {
      obs::trace_instant("drop", "mpsim",
                         "src=" + std::to_string(rank_) +
                             " dst=" + std::to_string(destination) +
                             " tag=" + std::to_string(tag));
    }
    return;
  }
  // Epoch in the top (non-gather) bits, per-world sequence below: unique
  // across every World of the process, disjoint from the gather id space
  // (bit 63 clear).
  const std::uint64_t flow = ((world_.flow_epoch & 0x7fff) << 48) |
                             (world_.next_flow++ & 0xffffffffffff);
  const std::size_t bytes = payload.size();
  auto& box = world_.mailboxes[static_cast<std::size_t>(destination)];
  box.queues[{rank_, tag}].push_back({std::move(payload), flow});
  ++box.depth;
  box.peak_depth = std::max(box.peak_depth, box.depth);
  metrics.queue_depth.observe(box.depth);
  if (obs::TraceRecorder* recorder = obs::trace()) {
    recorder->record_flow("msg", "mpsim", 's', flow,
                          "src=" + std::to_string(rank_) +
                              " dst=" + std::to_string(destination) +
                              " seq=" + std::to_string(flow) +
                              " bytes=" + std::to_string(bytes) +
                              " tag=" + std::to_string(tag));
  }
  world_.cv.notify_all();
}

Payload Communicator::recv(int source, int tag) {
  ELMO_REQUIRE(source >= 0 && source < world_.size, "recv: bad source rank");
  obs::TraceSpan span("recv", "mpsim");
  enter_op("recv");
  ELMO_LOCK_ORDER("mpsim.world");
  std::unique_lock lock(world_.mutex);
  auto& queues = world_.mailboxes[static_cast<std::size_t>(rank_)].queues;
  const auto key = std::make_pair(source, tag);
  auto has_message = [&] {
    auto it = queues.find(key);
    return it != queues.end() && !it->second.empty();
  };
  auto ready = [&] {
    return world_.aborted || has_message() ||
           world_.exited[static_cast<std::size_t>(source)];
  };
  if (!ready()) {
    // Predicate is false under the mutex: this rank is now provably
    // blocked — register the wait for the progress checker and meter the
    // blocked duration for the wait-class breakdown.
    obs::TraceRecorder* recorder = obs::trace();
    const double trace_start =
        recorder != nullptr ? recorder->now_us() : 0.0;
    const auto wait_begin = std::chrono::steady_clock::now();
    {
      detail::ScopedWait wait(
          world_, rank_,
          {detail::World::WaitInfo::Kind::kRecv, source, tag});
      world_.cv.wait(lock, ready);
    }
    const double waited_us =
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - wait_begin)
            .count();
    FaultPlan* plan = world_.options.fault_plan.get();
    const bool straggler = plan != nullptr && plan->is_straggler(source);
    record_wait(counters_, /*data_wait=*/true, straggler, trace_start,
                waited_us);
  }
  check_abort_locked(lock);
  // Deliver in-flight messages even from an exited source; only an empty
  // queue with no possible future sender is a hang, not a wait.
  if (!has_message()) {
    throw AbortedError(source, "recv(source=" + std::to_string(source) +
                                   ", tag=" + std::to_string(tag) +
                                   "): source rank exited with no matching "
                                   "message in flight");
  }
  auto& box = world_.mailboxes[static_cast<std::size_t>(rank_)];
  auto& queue = box.queues[key];
  Payload payload = std::move(queue.front().payload);
  const std::uint64_t flow = queue.front().flow;
  queue.pop_front();
  --box.depth;
  counters_.messages_received += 1;
  if (obs::TraceRecorder* recorder = obs::trace())
    recorder->record_flow("msg", "mpsim", 'f', flow);
  return payload;
}

void Communicator::sync_barrier() {
  ELMO_LOCK_ORDER("mpsim.world");
  std::unique_lock lock(world_.mutex);
  check_abort_locked(lock);
  // An already-exited rank can never join this barrier, so entering it is
  // a guaranteed deadlock for the whole world: fail fast instead.
  if (world_.num_exited > 0) {
    world_.abort_locked(
        world_.first_exited,
        "rank " + std::to_string(world_.first_exited) +
            " exited before peers entered a collective");
    throw AbortedError(world_.abort_origin, world_.abort_reason);
  }
  const std::uint64_t generation = world_.barrier_generation;
  if (++world_.barrier_waiting == world_.size) {
    world_.barrier_waiting = 0;
    ++world_.barrier_generation;
    world_.cv.notify_all();
    return;
  }
  obs::TraceRecorder* recorder = obs::trace();
  const double trace_start = recorder != nullptr ? recorder->now_us() : 0.0;
  const auto wait_begin = std::chrono::steady_clock::now();
  {
    detail::ScopedWait wait(
        world_, rank_,
        {detail::World::WaitInfo::Kind::kBarrier, -1, 0, generation});
    world_.cv.wait(lock, [&] {
      return world_.aborted || world_.barrier_generation != generation;
    });
  }
  const double waited_us = std::chrono::duration<double, std::micro>(
                               std::chrono::steady_clock::now() - wait_begin)
                               .count();
  FaultPlan* plan = world_.options.fault_plan.get();
  const bool straggler =
      plan != nullptr && plan->has_straggler_excluding(rank_);
  record_wait(counters_, /*data_wait=*/false, straggler, trace_start,
              waited_us);
  if (world_.aborted && world_.barrier_generation == generation) {
    // Wake released us, not barrier completion: withdraw before throwing.
    --world_.barrier_waiting;
  }
  check_abort_locked(lock);
}

void Communicator::barrier() {
  obs::TraceSpan span("barrier", "mpsim");
  MpsimMetrics::get().collectives.add(1);
  enter_op("barrier");
  ++counters_.collectives;
  sync_barrier();
}

std::vector<Payload> Communicator::all_gather(Payload local) {
  obs::TraceSpan span("all_gather", "mpsim");
  const MpsimMetrics& metrics = MpsimMetrics::get();
  metrics.collectives.add(1);
  metrics.messages.add(static_cast<std::uint64_t>(world_.size - 1));
  metrics.bytes.add(local.size() *
                    static_cast<std::uint64_t>(world_.size - 1));
  metrics.payload_bytes.observe(local.size());
  enter_op("all_gather");
  FaultPlan* plan = world_.options.fault_plan.get();
  if (plan != nullptr) plan->on_payload(rank_, local);
  // Gather flows: one flow per (world, round, contributor), id = high bit |
  // world epoch << 32 | generation << 16 | rank.  The contributor opens it
  // when publishing its slot; every consumer closes it when copying the
  // slot out, so Perfetto draws the O(N^2) exchange fan the paper's
  // Algorithm 2 pays each iteration.  The generation is stable across the
  // publish phase (it only advances inside the sync_barrier that follows).
  constexpr std::uint64_t kGatherFlowBit = std::uint64_t{1} << 63;
  const std::uint64_t gather_base =
      kGatherFlowBit | ((world_.flow_epoch & 0x7fffffff) << 32);
  std::uint64_t round = 0;
  {
    std::unique_lock lock(world_.mutex);
    check_abort_locked(lock);
    ++counters_.collectives;
    counters_.messages_sent += static_cast<std::uint64_t>(world_.size - 1);
    counters_.bytes_sent +=
        local.size() * static_cast<std::uint64_t>(world_.size - 1);
    round = world_.barrier_generation;
    if (obs::TraceRecorder* recorder = obs::trace()) {
      recorder->record_flow(
          "gather", "mpsim", 's',
          gather_base | ((round & 0xffff) << 16) |
              (static_cast<std::uint64_t>(rank_) & 0xffff),
          "src=" + std::to_string(rank_) + " round=" + std::to_string(round) +
              " bytes=" + std::to_string(local.size()));
    }
    world_.gather_slots[static_cast<std::size_t>(rank_)] = std::move(local);
  }
  sync_barrier();  // everyone has published
  std::vector<Payload> result;
  {
    std::unique_lock lock(world_.mutex);
    check_abort_locked(lock);
    result = world_.gather_slots;  // copy: each rank owns its view
    if (obs::TraceRecorder* recorder = obs::trace()) {
      for (int peer = 0; peer < world_.size; ++peer) {
        if (peer == rank_) continue;
        recorder->record_flow(
            "gather", "mpsim", 'f',
            gather_base | ((round & 0xffff) << 16) |
                (static_cast<std::uint64_t>(peer) & 0xffff));
      }
    }
  }
  sync_barrier();  // safe to overwrite slots in the next collective
  return result;
}

std::uint64_t Communicator::all_reduce_sum(std::uint64_t local) {
  obs::TraceSpan span("all_reduce_sum", "mpsim");
  MpsimMetrics::get().collectives.add(1);
  enter_op("all_reduce_sum");
  {
    std::unique_lock lock(world_.mutex);
    check_abort_locked(lock);
    ++counters_.collectives;
    world_.reduce_slots[static_cast<std::size_t>(rank_)] = local;
  }
  sync_barrier();
  std::uint64_t total = 0;
  {
    std::unique_lock lock(world_.mutex);
    check_abort_locked(lock);
    for (auto v : world_.reduce_slots) total += v;
  }
  sync_barrier();
  return total;
}

std::uint64_t Communicator::all_reduce_max(std::uint64_t local) {
  obs::TraceSpan span("all_reduce_max", "mpsim");
  MpsimMetrics::get().collectives.add(1);
  enter_op("all_reduce_max");
  {
    std::unique_lock lock(world_.mutex);
    check_abort_locked(lock);
    ++counters_.collectives;
    world_.reduce_slots[static_cast<std::size_t>(rank_)] = local;
  }
  sync_barrier();
  std::uint64_t best = 0;
  {
    std::unique_lock lock(world_.mutex);
    check_abort_locked(lock);
    for (auto v : world_.reduce_slots) best = std::max(best, v);
  }
  sync_barrier();
  return best;
}

void Communicator::set_memory_usage(std::size_t bytes) {
  counters_.memory_in_use = bytes;
  counters_.memory_peak = std::max(counters_.memory_peak, bytes);
  const std::size_t budget = world_.options.memory_budget_per_rank;
  if (budget != 0 && bytes > budget) {
    throw MemoryBudgetError(
        "rank " + std::to_string(rank_) + " exceeded its memory budget (" +
            std::to_string(bytes) + " > " + std::to_string(budget) + " bytes)",
        bytes, budget);
  }
}

std::size_t Communicator::memory_budget() const {
  return world_.options.memory_budget_per_rank;
}

RunReport run_ranks(int num_ranks,
                    const std::function<void(Communicator&)>& body,
                    const RunOptions& options) {
  ELMO_REQUIRE(num_ranks > 0, "run_ranks: need at least one rank");
  detail::World world(num_ranks, options);
  std::vector<Communicator> comms;
  comms.reserve(static_cast<std::size_t>(num_ranks));
  for (int r = 0; r < num_ranks; ++r) comms.emplace_back(world, r);

  // Wall-clock supervision: the watchdog samples each rank's operation
  // counter; a soft deadline logs the straggler, a hard deadline or a
  // full stall aborts the world (surfaced below as DeadlineExceededError).
  resource::Watchdog::Token watchdog_token;
  if (options.deadlines.any()) {
    std::vector<resource::Watchdog::ProgressCounter> counters;
    counters.reserve(static_cast<std::size_t>(num_ranks));
    for (int r = 0; r < num_ranks; ++r) {
      counters.push_back({"rank " + std::to_string(r),
                          &world.progress[static_cast<std::size_t>(r)]});
    }
    watchdog_token = resource::Watchdog::global().arm(
        "mpsim world", options.deadlines,
        [](const std::string& diagnosis) {
          MpsimMetrics::get().stragglers.add(1);
          obs::trace_instant("straggler", "mpsim", diagnosis);
        },
        [&world](const std::string& diagnosis) {
          MpsimMetrics::get().deadline_aborts.add(1);
          std::unique_lock lock(world.mutex);
          world.deadline_hit = true;
          world.deadline_reason = diagnosis;
          world.abort_locked(-1, diagnosis);
        },
        std::move(counters));
  }

  std::vector<std::exception_ptr> errors(
      static_cast<std::size_t>(num_ranks));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(num_ranks));
  for (int r = 0; r < num_ranks; ++r) {
    threads.emplace_back([&, r] {
      obs::set_current_thread_name("rank " + std::to_string(r));
      try {
        body(comms[static_cast<std::size_t>(r)]);
        std::unique_lock lock(world.mutex);
        world.mark_exited_locked(r);
      } catch (const std::bad_alloc&) {
        // Classify allocation failure so the abort reason (and the
        // AbortedError cause peers see) names a degradable resource
        // exhaustion rather than an anonymous bad_alloc escape.  Each
        // rank writes only its own slot.  analyze:shared-ok
        errors[static_cast<std::size_t>(r)] =
            std::make_exception_ptr(ResourceError(
                "rank " + std::to_string(r) +
                    ": allocation failed (std::bad_alloc)",
                0, 0));
        MpsimMetrics::get().rank_failures.add(1);
        obs::trace_instant("rank-failure", "mpsim",
                           "rank " + std::to_string(r) + ": std::bad_alloc");
        std::unique_lock lock(world.mutex);
        world.abort_locked(r, "rank " + std::to_string(r) +
                                  ": allocation failed (std::bad_alloc)");
        world.mark_exited_locked(r);
      } catch (const std::exception& e) {
        // analyze:shared-ok — per-rank disjoint slot.
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        MpsimMetrics::get().rank_failures.add(1);
        obs::trace_instant("rank-failure", "mpsim",
                           "rank " + std::to_string(r) + ": " + e.what());
        std::unique_lock lock(world.mutex);
        world.abort_locked(r, e.what());
        world.mark_exited_locked(r);
      } catch (...) {
        // Non-std exception: captured (never swallowed) and recorded on
        // the obs layer before the world is torn down.  analyze:shared-ok
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        MpsimMetrics::get().rank_failures.add(1);
        obs::trace_instant("rank-failure", "mpsim",
                           "rank " + std::to_string(r) +
                               ": non-standard exception");
        std::unique_lock lock(world.mutex);
        world.abort_locked(r, "unknown exception");
        world.mark_exited_locked(r);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  // Stop supervision before unwinding: disarm blocks until any in-flight
  // watchdog callback (which references `world`) has returned.
  watchdog_token.disarm();

  // Rethrow the first real failure (skip secondary AbortedErrors; each one
  // suppressed here is tallied so cascade failures stay visible).
  std::exception_ptr first;
  bool first_is_aborted = false;
  std::uint64_t suppressed = 0;
  for (const auto& error : errors) {
    if (!error) continue;
    try {
      std::rethrow_exception(error);
    } catch (const AbortedError&) {
      if (!first) {
        first = error;
        first_is_aborted = true;
      } else {
        ++suppressed;
      }
    } catch (...) {  // lint:allow(catch-all): rethrown to the caller below
      first = error;
      first_is_aborted = false;
      break;
    }
  }
  if (suppressed > 0) {
    MpsimMetrics::get().suppressed_errors.add(suppressed);
    obs::trace_instant("suppressed-aborts", "mpsim",
                       std::to_string(suppressed) +
                           " secondary AbortedError(s) suppressed");
  }
  // A watchdog abort produces only secondary AbortedErrors in the ranks;
  // surface it as the typed deadline failure the retry ladder classifies
  // as re-queue-with-split.
  if (world.deadline_hit && (!first || first_is_aborted)) {
    throw DeadlineExceededError(world.deadline_reason,
                                options.deadlines.hard_seconds > 0
                                    ? options.deadlines.hard_seconds
                                    : options.deadlines.stall_seconds);
  }
  if (first) std::rethrow_exception(first);

  RunReport report;
  report.ranks.reserve(comms.size());
  for (const auto& comm : comms) report.ranks.push_back(comm.counters());
  // Inbox high-water marks live on the world (the sender updates them while
  // holding the mutex); fold them into the per-rank counters here, after
  // every rank has joined.
  for (int r = 0; r < num_ranks; ++r) {
    report.ranks[static_cast<std::size_t>(r)].max_queue_depth =
        world.mailboxes[static_cast<std::size_t>(r)].peak_depth;
  }
  return report;
}

}  // namespace elmo::mpsim
