// The algebraic rank test (paper §II.B-C, citing Jevremovic et al. 2010).
//
// A candidate flux mode with support S is elementary iff the submatrix of
// the reduced stoichiometry formed by the columns in S has nullity exactly
// 1.  Two tests are provided:
//
//   RankTester           - the exact algebraic test via fraction-free
//                          elimination (the paper's method; LU/QR/SVD in the
//                          original, Bareiss here because arithmetic is
//                          exact).  With the CheckedI64 kernel an overflow
//                          falls back to BigInt per candidate.
//   CombinatorialTester  - the classical double-description alternative:
//                          a candidate is elementary iff no OTHER current
//                          column's support is a strict subset of the
//                          candidate's.  Provided for the ablation bench
//                          comparing test strategies.
#pragma once

#include <vector>

#include "bigint/bigint.hpp"
#include "bigint/checked.hpp"
#include "bigint/scalar.hpp"
#include "linalg/gauss.hpp"
#include "linalg/matrix.hpp"
#include "nullspace/flux_column.hpp"
#include "support/error.hpp"

namespace elmo {

namespace detail {

inline BigInt to_bigint(const CheckedI64& v) { return BigInt(v.value()); }
inline BigInt to_bigint(const BigInt& v) { return v; }

}  // namespace detail

template <typename Scalar>
class RankTester {
 public:
  /// `stoichiometry` must outlive the tester.
  explicit RankTester(const Matrix<Scalar>& stoichiometry)
      : n_(stoichiometry) {}

  /// True iff nullity(N[:, support]) == 1.
  template <typename Support>
  bool is_elementary(const Support& support) {
    indices_.clear();
    support.append_indices(indices_);
    const std::size_t s = indices_.size();
    if (s == 0) return false;
    // Cheap cardinality rejection (the paper's "two more columns than
    // rows" rule, tightened to the rank): nullity >= s - rank(N) >= 2.
    if (s > n_.rows() + 1) return false;

    // Build the submatrix and compute its exact rank.
    Matrix<Scalar> sub(n_.rows(), s);
    for (std::size_t i = 0; i < n_.rows(); ++i) {
      const Scalar* row = n_.row_ptr(i);
      for (std::size_t j = 0; j < s; ++j) sub(i, j) = row[indices_[j]];
    }
    std::size_t rank;
    if constexpr (std::is_same_v<Scalar, double>) {
      rank = rank_bareiss(std::move(sub));
    } else {
      try {
        rank = rank_bareiss(sub);
      } catch (const OverflowError&) {
        // Per-candidate exact fallback: redo this one test in BigInt.
        Matrix<BigInt> wide(sub.rows(), sub.cols());
        for (std::size_t i = 0; i < sub.rows(); ++i)
          for (std::size_t j = 0; j < sub.cols(); ++j)
            wide(i, j) = detail::to_bigint(sub(i, j));
        rank = rank_bareiss(std::move(wide));
      }
    }
    return s - rank == 1;
  }

 private:
  const Matrix<Scalar>& n_;
  std::vector<std::uint32_t> indices_;
};

/// The combinatorial (support-subset) elementarity test: a candidate is
/// accepted iff no other column in the CURRENT matrix has a support that is
/// a strict subset of the candidate's.  O(#columns) bitset operations per
/// candidate instead of an O(m^3) elimination.
template <typename Scalar, typename Support>
class CombinatorialTester {
 public:
  /// Snapshot the supports of the current matrix columns.
  void reset(const std::vector<FluxColumn<Scalar, Support>>& columns) {
    supports_.clear();
    supports_.reserve(columns.size());
    for (const auto& column : columns) supports_.push_back(column.support);
  }

  [[nodiscard]] bool is_elementary(const Support& candidate) const {
    for (const auto& support : supports_) {
      if (support != candidate && support.is_subset_of(candidate))
        return false;
    }
    return true;
  }

 private:
  std::vector<Support> supports_;
};

}  // namespace elmo
