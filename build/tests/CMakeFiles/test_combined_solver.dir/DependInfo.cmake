
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_combined_solver.cpp" "tests/CMakeFiles/test_combined_solver.dir/test_combined_solver.cpp.o" "gcc" "tests/CMakeFiles/test_combined_solver.dir/test_combined_solver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/elmo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/elmo_models.dir/DependInfo.cmake"
  "/root/repo/build/src/mpsim/CMakeFiles/elmo_mpsim.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/elmo_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/network/CMakeFiles/elmo_network.dir/DependInfo.cmake"
  "/root/repo/build/src/bigint/CMakeFiles/elmo_bigint.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
