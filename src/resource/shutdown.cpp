#include "resource/shutdown.hpp"

#include <csignal>

#include <atomic>

namespace elmo::resource {
namespace {

// Async-signal-safe state only: the handler touches nothing but these.
std::atomic<int> g_signal{0};
std::atomic<bool> g_requested{false};

extern "C" void elmo_shutdown_handler(int sig) {
  if (g_requested.exchange(true, std::memory_order_relaxed)) {
    // Second signal: the operator wants out NOW.  Restore the default
    // disposition and re-raise so the process dies with the right status.
    std::signal(sig, SIG_DFL);
    std::raise(sig);
    return;
  }
  g_signal.store(sig, std::memory_order_relaxed);
}

}  // namespace

void install_signal_handlers() {
  std::signal(SIGINT, elmo_shutdown_handler);
  std::signal(SIGTERM, elmo_shutdown_handler);
}

bool shutdown_requested() {
  return g_requested.load(std::memory_order_relaxed);
}

int shutdown_signal() { return g_signal.load(std::memory_order_relaxed); }

void request_shutdown() { g_requested.store(true, std::memory_order_relaxed); }

void reset_shutdown() {
  g_requested.store(false, std::memory_order_relaxed);
  g_signal.store(0, std::memory_order_relaxed);
}

}  // namespace elmo::resource
