// Tests for the thread pool and pair-space partitioner.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "parallel/parallel_for.hpp"
#include "parallel/partitioner.hpp"
#include "parallel/thread_pool.hpp"
#include "support/error.hpp"

namespace elmo {
namespace {

TEST(Partitioner, CoversRangeExactlyOnce) {
  for (std::uint64_t total : {0ULL, 1ULL, 7ULL, 64ULL, 1000ULL}) {
    for (int workers : {1, 2, 3, 7, 16}) {
      std::uint64_t covered = 0;
      std::uint64_t previous_end = 0;
      for (int w = 0; w < workers; ++w) {
        PairRange range = pair_slice(total, w, workers);
        EXPECT_EQ(range.begin, previous_end);
        previous_end = range.end;
        covered += range.count();
      }
      EXPECT_EQ(previous_end, total);
      EXPECT_EQ(covered, total);
    }
  }
}

TEST(Partitioner, BalancedWithinOne) {
  for (int workers : {2, 3, 5, 8}) {
    std::uint64_t lo = UINT64_MAX;
    std::uint64_t hi = 0;
    for (int w = 0; w < workers; ++w) {
      auto count = pair_slice(1003, w, workers).count();
      lo = std::min(lo, count);
      hi = std::max(hi, count);
    }
    EXPECT_LE(hi - lo, 1u);
  }
}

TEST(Partitioner, RejectsBadArguments) {
  EXPECT_THROW(pair_slice(10, 0, 0), InvalidArgumentError);
  EXPECT_THROW(pair_slice(10, 3, 3), InvalidArgumentError);
  EXPECT_THROW(pair_slice(10, -1, 3), InvalidArgumentError);
}

TEST(ThreadPool, ExecutesAllTasks) {
  ThreadPool pool(3);
  std::atomic<int> sum{0};
  std::vector<std::future<void>> futures;
  for (int i = 1; i <= 20; ++i)
    futures.push_back(pool.submit([&sum, i] { sum.fetch_add(i); }));
  for (auto& f : futures) f.get();
  EXPECT_EQ(sum.load(), 210);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto future = pool.submit([] { throw InvalidArgumentError("boom"); });
  EXPECT_THROW(future.get(), InvalidArgumentError);
}

TEST(ParallelFor, SumsRange) {
  ThreadPool pool(4);
  std::atomic<std::uint64_t> sum{0};
  parallel_for_chunks(pool, 1000, [&](std::uint64_t begin, std::uint64_t end) {
    std::uint64_t local = 0;
    for (std::uint64_t i = begin; i < end; ++i) local += i;
    sum.fetch_add(local);
  });
  EXPECT_EQ(sum.load(), 999ull * 1000 / 2);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  parallel_for_chunks(pool, 0, [](std::uint64_t, std::uint64_t) {
    FAIL() << "body must not run";
  });
}

TEST(ParallelFor, PropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      parallel_for_chunks(pool, 100,
                          [](std::uint64_t begin, std::uint64_t) {
                            if (begin == 0)
                              throw InvalidArgumentError("chunk failed");
                          }),
      InvalidArgumentError);
}

TEST(ParallelForDynamic, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  for (std::uint64_t total : {1ULL, 7ULL, 100ULL, 4099ULL}) {
    for (std::uint64_t grain : {1ULL, 16ULL, 5000ULL}) {
      std::vector<std::atomic<int>> touched(total);
      for (auto& t : touched) t.store(0);
      parallel_for_dynamic(
          pool, total, grain,
          [&](int worker, std::uint64_t begin, std::uint64_t end) {
            EXPECT_GE(worker, 0);
            EXPECT_LT(worker, 4);
            EXPECT_LT(begin, end);
            for (std::uint64_t i = begin; i < end; ++i)
              touched[i].fetch_add(1);
          });
      for (std::uint64_t i = 0; i < total; ++i)
        EXPECT_EQ(touched[i].load(), 1) << "index " << i;
    }
  }
}

TEST(ParallelForDynamic, BatchesRespectMinGrain) {
  // Every batch except possibly the final one must be at least min_grain.
  ThreadPool pool(3);
  constexpr std::uint64_t kGrain = 32;
  std::atomic<std::uint64_t> small_batches{0};
  std::atomic<std::uint64_t> covered{0};
  parallel_for_dynamic(pool, 1000, kGrain,
                       [&](int, std::uint64_t begin, std::uint64_t end) {
                         if (end - begin < kGrain) small_batches.fetch_add(1);
                         covered.fetch_add(end - begin);
                       });
  EXPECT_EQ(covered.load(), 1000u);
  EXPECT_LE(small_batches.load(), 1u);
}

TEST(ParallelForDynamic, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  parallel_for_dynamic(pool, 0, 8, [](int, std::uint64_t, std::uint64_t) {
    FAIL() << "body must not run";
  });
}

TEST(ParallelForDynamic, SmallRangeRunsInline) {
  ThreadPool pool(4);
  int calls = 0;
  parallel_for_dynamic(pool, 10, 64,
                       [&](int worker, std::uint64_t begin,
                           std::uint64_t end) {
                         ++calls;
                         EXPECT_EQ(worker, 0);
                         EXPECT_EQ(begin, 0u);
                         EXPECT_EQ(end, 10u);
                       });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelForDynamic, PropagatesFirstExceptionAndFinishesRange) {
  ThreadPool pool(4);
  std::atomic<std::uint64_t> covered{0};
  EXPECT_THROW(
      parallel_for_dynamic(pool, 10000, 8,
                           [&](int, std::uint64_t begin, std::uint64_t end) {
                             if (begin == 0)
                               throw InvalidArgumentError("batch failed");
                             covered.fetch_add(end - begin);
                           }),
      InvalidArgumentError);
  // Other lanes keep draining the cursor; only the failed batch is lost.
  EXPECT_GT(covered.load(), 0u);
}

}  // namespace
}  // namespace elmo
