// Initial nullspace matrix and row-processing order.
//
// Computes the kernel basis of the reduced stoichiometry in the paper's
// (I; R(2)) shape: free (non-pivot) reactions carry the identity block and
// are never processed.  The processing order over the remaining rows
// applies the paper's two heuristics — increasing row nonzero count, and
// reversible reactions last — both individually switchable for the
// ordering-ablation bench.  Divide-and-conquer passes `exclude_rows` (its
// nonzero-flux partition reactions) which are simply left unprocessed,
// equivalent to the paper's reorder-to-bottom-and-stop-early.
#pragma once

#include <algorithm>
#include <vector>

#include "bigint/bigint.hpp"
#include "bigint/rational.hpp"
#include "linalg/gauss.hpp"
#include "linalg/matrix.hpp"
#include "nullspace/flux_column.hpp"
#include "nullspace/problem.hpp"
#include "support/assert.hpp"

namespace elmo {

struct OrderingOptions {
  /// Sort processed rows by increasing nonzero count in the initial basis.
  bool sort_by_nonzeros = true;
  /// Process rows of reversible reactions after all irreversible ones.
  bool reversible_last = true;
};

template <typename Scalar, typename Support>
struct InitialBasis {
  std::vector<FluxColumn<Scalar, Support>> columns;
  /// Row indices to process, in order.  Excludes identity-block rows and
  /// any caller-excluded rows.
  std::vector<std::size_t> processing_order;
  /// rank(N) = q - dim null(N); the candidate cardinality pre-test bound.
  std::size_t stoichiometry_rank = 0;
};

namespace detail {

/// Pivot preference: reversible reactions first.
///
/// Rows in the identity (free) block are never processed, and convex
/// combinations keep their entries nonnegative forever — so an EFM with a
/// NEGATIVE flux on a free reversible reaction (and irreversible support
/// elsewhere, e.g. the toy network's Bext->B->C->D mode with r8r = -1)
/// could never be generated.  Preferring reversible columns as pivots
/// pushes them into the processed part; on the toy network this recovers
/// exactly the paper's free set {r2, r4, r5, r7}.
inline std::vector<std::size_t> pivot_preference(
    const std::vector<bool>& reversible) {
  std::vector<std::size_t> order;
  order.reserve(reversible.size());
  for (std::size_t j = 0; j < reversible.size(); ++j)
    if (reversible[j]) order.push_back(j);
  for (std::size_t j = 0; j < reversible.size(); ++j)
    if (!reversible[j]) order.push_back(j);
  return order;
}

/// Kernel basis columns as primitive integer vectors in Scalar, plus the
/// free-column set.
template <typename Scalar>
std::pair<std::vector<std::vector<Scalar>>, std::vector<std::size_t>>
kernel_columns(const Matrix<Scalar>& stoich,
               const std::vector<std::size_t>& col_order) {
  std::vector<std::vector<Scalar>> columns;
  std::vector<std::size_t> free_cols;
  if constexpr (std::is_same_v<Scalar, double>) {
    auto [basis, frees] = nullspace_basis(stoich, col_order);
    for (std::size_t c = 0; c < basis.cols(); ++c) {
      std::vector<double> v(basis.rows());
      for (std::size_t i = 0; i < basis.rows(); ++i) v[i] = basis(i, c);
      make_primitive(v);
      columns.push_back(std::move(v));
    }
    free_cols = std::move(frees);
  } else {
    // Exact path: rationals, then scale each column to primitive integers.
    Matrix<BigRational> rat(stoich.rows(), stoich.cols());
    for (std::size_t i = 0; i < stoich.rows(); ++i)
      for (std::size_t j = 0; j < stoich.cols(); ++j) {
        if constexpr (std::is_same_v<Scalar, BigInt>) {
          rat(i, j) = BigRational(stoich(i, j));
        } else {
          rat(i, j) = BigRational(BigInt(stoich(i, j).value()));
        }
      }
    auto [basis, frees] = nullspace_basis(rat, col_order);
    for (std::size_t c = 0; c < basis.cols(); ++c) {
      std::vector<BigRational> v(basis.rows());
      for (std::size_t i = 0; i < basis.rows(); ++i) v[i] = basis(i, c);
      auto ints = to_primitive_integer(v);
      std::vector<Scalar> out(ints.size());
      for (std::size_t i = 0; i < ints.size(); ++i) {
        if constexpr (std::is_same_v<Scalar, BigInt>) {
          out[i] = std::move(ints[i]);
        } else {
          out[i] = Scalar(ints[i].to_i64());  // may throw OverflowError
        }
      }
      columns.push_back(std::move(out));
    }
    free_cols = std::move(frees);
  }
  return {std::move(columns), std::move(free_cols)};
}

}  // namespace detail

template <typename Scalar, typename Support>
InitialBasis<Scalar, Support> compute_initial_basis(
    const EfmProblem<Scalar>& problem, const OrderingOptions& ordering = {},
    const std::vector<std::size_t>& exclude_rows = {}) {
  const std::size_t q = problem.num_reactions();
  InitialBasis<Scalar, Support> result;

  auto [raw_columns, free_cols] = detail::kernel_columns<Scalar>(
      problem.stoichiometry, detail::pivot_preference(problem.reversible));
  result.stoichiometry_rank = q - raw_columns.size();
  // A reversible reaction stuck in the free block (only possible when the
  // reversible columns are linearly dependent among themselves) would lose
  // modes that need negative flux through it; refuse rather than silently
  // drop EFMs.  Networks triggering this contain a fully-reversible linear
  // dependency and should have the offending reaction split into a forward/
  // backward pair first.
  for (std::size_t f : free_cols) {
    ELMO_REQUIRE(!problem.reversible[f],
                 "reversible reaction '" + problem.reaction_names[f] +
                     "' cannot be made a pivot; split it into two "
                     "irreversible reactions before solving");
  }
  for (auto& v : raw_columns)
    result.columns.push_back(
        FluxColumn<Scalar, Support>::from_values(std::move(v)));

  // Rows never processed: the identity block (free reactions) and the
  // caller's exclusions.
  std::vector<bool> skip(q, false);
  for (std::size_t f : free_cols) skip[f] = true;
  for (std::size_t e : exclude_rows) {
    ELMO_REQUIRE(e < q, "exclude_rows: row index out of range");
    skip[e] = true;
  }

  // Nonzero count per row across the initial columns.
  std::vector<std::size_t> nnz(q, 0);
  for (const auto& column : result.columns) {
    for (std::size_t i = 0; i < q; ++i)
      if (column.support.test(i)) ++nnz[i];
  }

  for (std::size_t i = 0; i < q; ++i)
    if (!skip[i]) result.processing_order.push_back(i);

  std::stable_sort(result.processing_order.begin(),
                   result.processing_order.end(),
                   [&](std::size_t a, std::size_t b) {
                     if (ordering.reversible_last &&
                         problem.reversible[a] != problem.reversible[b])
                       return !problem.reversible[a];
                     if (ordering.sort_by_nonzeros && nnz[a] != nnz[b])
                       return nnz[a] < nnz[b];
                     return false;  // stable: keep index order
                   });
  return result;
}

}  // namespace elmo
