// Metrics registry: named counters, gauges, and log2-bucket histograms.
//
// Design goals, in order:
//   1. Lock-cheap hot path.  Counter/histogram writes go to a per-thread
//      shard (a cache-line-padded atomic selected by a thread-local ordinal)
//      with a single relaxed fetch_add — no mutex, no contention while the
//      live thread count stays under kMetricShards.  Snapshots sum the
//      shards; relaxed reads racing with writers are exact for quiesced
//      instruments and at-most-one-op stale otherwise.
//   2. Zero cost when disabled.  Every instrument op first checks one
//      relaxed atomic bool; the registry starts DISABLED and is switched on
//      by --metrics/--report/ELMO_METRICS.  Defining ELMO_OBS_DISABLE
//      compiles the ops out entirely (kObsCompiledIn, obs/trace.hpp).
//   3. Stable handles.  Instruments are interned by name once (mutex held)
//      and the returned handle is two pointers; call sites cache them in
//      function-local statics so steady-state cost is the enabled check.
//
// Instrumentation granularity: the solver publishes per ITERATION (summing
// an IterationStats), mpsim per OPERATION — never per candidate pair — so
// even the enabled path is far below 1% of solve time.
//
// Histograms use fixed log2 buckets: bucket 0 counts zero values, bucket i
// (1..64) counts values in [2^(i-1), 2^i - 1].  That covers the full
// uint64 range (candidate-pair counts reach billions) with a fixed 65-slot
// footprint and no configuration.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "obs/json.hpp"
#include "obs/trace.hpp"  // kObsCompiledIn

namespace elmo::obs {

inline constexpr std::size_t kMetricShards = 32;
inline constexpr std::size_t kHistogramBuckets = 65;

namespace detail {

/// Thread-local shard ordinal (round-robin, wraps past kMetricShards).
std::size_t metric_shard();

struct alignas(64) ShardCell {
  std::atomic<std::uint64_t> value{0};
};

struct CounterData {
  std::string name;
  const std::atomic<bool>* enabled = nullptr;
  std::array<ShardCell, kMetricShards> shards;
};

struct GaugeData {
  std::string name;
  const std::atomic<bool>* enabled = nullptr;
  std::atomic<std::uint64_t> value{0};
  std::atomic<std::uint64_t> max{0};
};

struct HistogramShard {
  std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets{};
  std::atomic<std::uint64_t> sum{0};
};

struct HistogramData {
  std::string name;
  const std::atomic<bool>* enabled = nullptr;
  std::array<HistogramShard, kMetricShards> shards;
};

}  // namespace detail

/// Log2 bucket index of `value`: 0 for 0, else std::bit_width(value)
/// (bucket i spans [2^(i-1), 2^i - 1]; bucket 64 ends at UINT64_MAX).
[[nodiscard]] std::size_t histogram_bucket(std::uint64_t value);

/// Inclusive lower bound of bucket `index` (0 for buckets 0 and... bucket 1
/// starts at 1, bucket i>=1 starts at 2^(i-1)).
[[nodiscard]] std::uint64_t histogram_bucket_low(std::size_t index);

class Counter {
 public:
  Counter() = default;

  void add(std::uint64_t n = 1) const {
    if constexpr (!kObsCompiledIn) return;
    if (data_ == nullptr ||
        !data_->enabled->load(std::memory_order_relaxed) || n == 0)
      return;
    data_->shards[detail::metric_shard()].value.fetch_add(
        n, std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  explicit Counter(detail::CounterData* data) : data_(data) {}
  detail::CounterData* data_ = nullptr;
};

class Gauge {
 public:
  Gauge() = default;

  /// Set the current value, tracking the running maximum.
  void set(std::uint64_t value) const {
    if constexpr (!kObsCompiledIn) return;
    if (data_ == nullptr || !data_->enabled->load(std::memory_order_relaxed))
      return;
    data_->value.store(value, std::memory_order_relaxed);
    std::uint64_t seen = data_->max.load(std::memory_order_relaxed);
    while (value > seen &&
           !data_->max.compare_exchange_weak(seen, value,
                                             std::memory_order_relaxed)) {
    }
  }

 private:
  friend class Registry;
  explicit Gauge(detail::GaugeData* data) : data_(data) {}
  detail::GaugeData* data_ = nullptr;
};

class Histogram {
 public:
  Histogram() = default;

  void observe(std::uint64_t value) const {
    if constexpr (!kObsCompiledIn) return;
    if (data_ == nullptr || !data_->enabled->load(std::memory_order_relaxed))
      return;
    auto& shard = data_->shards[detail::metric_shard()];
    shard.buckets[histogram_bucket(value)].fetch_add(
        1, std::memory_order_relaxed);
    shard.sum.fetch_add(value, std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  explicit Histogram(detail::HistogramData* data) : data_(data) {}
  detail::HistogramData* data_ = nullptr;
};

struct HistogramSnapshot {
  std::array<std::uint64_t, kHistogramBuckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;  // wraps modulo 2^64 on overflow, like the shards
};

struct GaugeSnapshot {
  std::uint64_t value = 0;
  std::uint64_t max = 0;
};

/// A merged view of every registered instrument.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, GaugeSnapshot> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  [[nodiscard]] JsonValue to_json() const;
};

class Registry {
 public:
  /// The process-global registry used by all built-in instrumentation.
  static Registry& global();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;
  ~Registry();

  /// Intern an instrument by name (idempotent; handles are stable for the
  /// registry's lifetime).
  Counter counter(const std::string& name);
  Gauge gauge(const std::string& name);
  Histogram histogram(const std::string& name);

  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Merge all shards into one consistent view.  Safe to call while
  /// writers are active (values may lag the newest writes by one op).
  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Zero every instrument (registrations are kept).
  void reset();

 private:
  struct Impl;
  Impl& impl();  // lazily constructed under mutex_

  std::atomic<bool> enabled_{false};
  Impl* impl_ = nullptr;
  mutable std::mutex mutex_;
};

}  // namespace elmo::obs
