#include "analyze/callgraph.hpp"

#include <algorithm>

namespace elmo_analyze {

namespace {

constexpr std::size_t npos = CallGraph::npos;

bool is_guard_type(const std::string& s) {
  return s == "lock_guard" || s == "unique_lock" || s == "scoped_lock";
}

/// Tokens that can never be the type part of a declaration or the name of
/// a called function.
bool is_keywordish(const std::string& s) {
  static const std::set<std::string> kKeywords = {
      "if",       "for",      "while",    "switch",   "return",  "sizeof",
      "catch",    "new",      "delete",   "throw",    "else",    "do",
      "case",     "not",      "and",      "or",       "assert",  "goto",
      "static_assert", "defined", "alignof", "decltype", "noexcept",
      "constexpr",
      "operator", "typedef",  "using",    "template", "typename", "enum",
      "class",    "struct",   "union",    "public",   "private", "protected",
      "virtual",  "explicit", "friend",   "namespace", "co_return",
      "co_await", "co_yield", "requires", "default",  "break",   "continue",
  };
  return kKeywords.count(s) != 0;
}

/// May `s` act as the type token directly before a declared name?
bool is_typeish(const Token& t) {
  if (t.ident()) return !is_keywordish(t.text) && t.text != "const" &&
                        t.text != "constexpr" && t.text != "static" &&
                        t.text != "mutable" && t.text != "inline" &&
                        t.text != "extern";
  return t.is(">") || t.is("*") || t.is("&") || t.is("&&") || t.is("...");
}

struct Scope {
  enum class Kind { kNamespace, kClass, kFunction, kLambda, kBlock };
  Kind kind = Kind::kBlock;
  std::string name;
  int depth = 0;          // brace depth AFTER the opening brace
  std::size_t fn = npos;  // FnDef index for kFunction / kLambda
};

struct PendingLambda {
  FnDef def;                      // captures + params pre-filled
  std::size_t arg_of = npos;      // CallRef index it is an argument of
  std::string alias;              // `auto NAME = [..]` variable, or ""
};

struct PendingCall {
  std::size_t call = 0;  // index into CallGraph::calls
  int paren_depth = 0;   // depth before the call's '(' was consumed
};

struct HeldGuard {
  std::size_t start_tok = 0;
  int depth = 0;
  std::size_t fn = npos;
};

/// Flags scraped from the declaration statement around token `name_idx`:
/// scan back to the statement boundary (bounded window).
struct DeclFlags {
  bool is_static = false;
  bool is_const = false;
  bool is_atomic = false;
  bool is_mutex = false;
  bool is_thread = false;
  bool rejected = false;  // using/typedef/return etc. — not a declaration
};

/// Closing `>` of a template-argument list opening at `open`, or npos.
/// Bounded and restricted to type-ish tokens so `a < b` comparisons bail.
std::size_t template_args_end(const std::vector<Token>& toks,
                              std::size_t open) {
  int depth = 0;
  for (std::size_t j = open; j < toks.size() && j < open + 48; ++j) {
    const Token& t = toks[j];
    if (t.is("<")) {
      ++depth;
      continue;
    }
    if (t.is(">")) {
      if (--depth == 0) return j;
      continue;
    }
    if (t.is(">>")) {
      depth -= 2;
      if (depth <= 0) return j;
      continue;
    }
    if (t.ident() || t.kind == Token::Kind::kNumber || t.is("::") ||
        t.is(",") || t.is("*") || t.is("&")) {
      continue;
    }
    return static_cast<std::size_t>(-1);
  }
  return static_cast<std::size_t>(-1);
}

DeclFlags scan_decl_statement(const std::vector<Token>& toks,
                              std::size_t name_idx) {
  DeclFlags flags;
  const std::size_t window = 18;
  for (std::size_t back = 1; back <= window && back <= name_idx; ++back) {
    const Token& t = toks[name_idx - back];
    if (t.is(";") || t.is("{") || t.is("}")) break;
    if (!t.ident()) continue;
    const std::string& s = t.text;
    if (s == "static") flags.is_static = true;
    if (s == "const" || s == "constexpr") flags.is_const = true;
    if (s == "atomic" || s == "atomic_flag") flags.is_atomic = true;
    if (s == "mutex" || s == "shared_mutex" || s == "condition_variable" ||
        s == "once_flag") {
      flags.is_mutex = true;
    }
    if (s == "thread" || s == "jthread") flags.is_thread = true;
    if (s == "using" || s == "typedef" || s == "return" || s == "throw" ||
        s == "template" || s == "friend" || s == "operator" ||
        s == "enum" || s == "goto" || s == "case" || s == "new") {
      flags.rejected = true;
    }
  }
  return flags;
}

class FileWalker {
 public:
  FileWalker(const Project& project, std::size_t file_idx, CallGraph& cg)
      : project_(project), file_idx_(file_idx), cg_(cg),
        toks_(cg.file_tokens[file_idx]) {}

  void walk();

 private:
  const Project& project_;
  std::size_t file_idx_;
  CallGraph& cg_;
  const std::vector<Token>& toks_;

  std::vector<Scope> scopes_;
  std::vector<PendingCall> pending_calls_;
  std::vector<HeldGuard> held_;
  std::map<std::size_t, PendingLambda> pending_lambdas_;  // by '{' token idx
  int depth_ = 0;
  int paren_depth_ = 0;

  [[nodiscard]] std::size_t current_fn() const {
    for (std::size_t i = scopes_.size(); i-- > 0;) {
      if (scopes_[i].kind == Scope::Kind::kFunction ||
          scopes_[i].kind == Scope::Kind::kLambda) {
        return scopes_[i].fn;
      }
    }
    return npos;
  }
  [[nodiscard]] std::string current_class() const {
    for (std::size_t i = scopes_.size(); i-- > 0;) {
      if (scopes_[i].kind == Scope::Kind::kClass) return scopes_[i].name;
      if (scopes_[i].kind == Scope::Kind::kFunction ||
          scopes_[i].kind == Scope::Kind::kLambda) {
        // A class nested inside a function still wins for members, but a
        // function inside a class reports that class.
        continue;
      }
    }
    return std::string();
  }
  [[nodiscard]] std::string qualify(const std::string& name) const {
    std::string out;
    for (const Scope& s : scopes_) {
      if ((s.kind == Scope::Kind::kNamespace ||
           s.kind == Scope::Kind::kClass) &&
          !s.name.empty()) {
        out += s.name + "::";
      }
    }
    return out + name;
  }

  void handle_open_brace(std::size_t i);
  void handle_close_brace(std::size_t i);
  bool try_lambda(std::size_t i);        // at '['
  void try_catch_clause(std::size_t i);  // at 'catch'
  void try_guard(std::size_t i);         // at guard type ident
  void try_decl(std::size_t i);          // at candidate declared name
  void try_call(std::size_t i);          // at IDENT '('
};

void FileWalker::handle_open_brace(std::size_t i) {
  Scope sc;
  sc.depth = depth_ + 1;
  auto pending = pending_lambdas_.find(i);
  if (pending != pending_lambdas_.end()) {
    FnDef def = std::move(pending->second.def);
    const std::size_t parent = current_fn();
    def.parent = parent;
    def.file = file_idx_;
    def.body_begin = i;
    def.class_name = current_class();
    if ((def.capture_all_ref || def.capture_all_val) &&
        !def.class_name.empty()) {
      def.capture_this = true;
    }
    const std::string parent_name =
        parent == npos ? qualify("") + "$file" : cg_.fns[parent].qname;
    def.qname = parent_name + "::$lambda:" + std::to_string(def.line);
    cg_.fns.push_back(std::move(def));
    const std::size_t idx = cg_.fns.size() - 1;
    if (pending->second.arg_of != npos) {
      cg_.calls[pending->second.arg_of].lambda_args.push_back(idx);
    }
    if (!pending->second.alias.empty()) {
      cg_.lambda_aliases_[pending->second.alias].push_back(idx);
    }
    pending_lambdas_.erase(pending);
    sc.kind = Scope::Kind::kLambda;
    sc.fn = idx;
    scopes_.push_back(sc);
    ++depth_;
    return;
  }
  if (i >= 2 && toks_[i - 1].ident() && toks_[i - 2].is("namespace")) {
    sc.kind = Scope::Kind::kNamespace;
    sc.name = toks_[i - 1].text;
  } else if (i >= 1 && toks_[i - 1].is("namespace")) {
    sc.kind = Scope::Kind::kNamespace;  // anonymous
  } else {
    // Function head: scan back over qualifiers/trailing-return tokens to a
    // ')' whose matching '(' is preceded by the function name.
    std::size_t j = i;
    while (j > 0) {
      const Token& b = toks_[j - 1];
      if (b.ident() &&
          (b.text == "const" || b.text == "noexcept" ||
           b.text == "override" || b.text == "final" || b.text == "try" ||
           b.text == "mutable")) {
        --j;
        continue;
      }
      if (b.ident() || b.is("::") || b.is(">") || b.is("*") || b.is("&") ||
          b.is("->")) {
        --j;
        continue;
      }
      break;
    }
    if (j > 0 && toks_[j - 1].is(")")) {
      const std::size_t open = match_backward(toks_, j - 1);
      if (open != npos && open > 0 && toks_[open - 1].ident() &&
          !is_keywordish(toks_[open - 1].text)) {
        sc.kind = Scope::Kind::kFunction;
        std::string name = toks_[open - 1].text;
        std::size_t q = open - 1;
        while (q >= 2 && toks_[q - 1].is("::") && toks_[q - 2].ident()) {
          name = toks_[q - 2].text + "::" + name;
          q -= 2;
        }
        FnDef def;
        def.qname = current_fn() == npos ? qualify(name) : name;
        def.file = file_idx_;
        def.line = toks_[i].line;
        def.body_begin = i;
        def.class_name = current_class();
        cg_.fns.push_back(std::move(def));
        sc.fn = cg_.fns.size() - 1;
        sc.name = cg_.fns.back().qname;
      }
    }
    if (sc.kind == Scope::Kind::kBlock) {
      // Class head: `class/struct/union NAME ... {` with no ';' between.
      for (std::size_t k = i; k-- > 0;) {
        const Token& b = toks_[k];
        if (b.is(";") || b.is("}") || b.is("{")) break;
        if (b.ident() && (b.text == "class" || b.text == "struct" ||
                          b.text == "union" || b.text == "enum")) {
          std::size_t n = k + 1;
          if (n < i && toks_[n].is("class")) ++n;  // enum class
          if (n < i && toks_[n].ident()) {
            sc.kind = Scope::Kind::kClass;
            sc.name = toks_[n].text;
          }
          break;
        }
      }
    }
  }
  scopes_.push_back(sc);
  ++depth_;
}

void FileWalker::handle_close_brace(std::size_t i) {
  while (!held_.empty() && held_.back().depth >= depth_) {
    const HeldGuard& g = held_.back();
    if (g.fn != npos) cg_.fns[g.fn].guard_spans.emplace_back(g.start_tok, i);
    held_.pop_back();
  }
  while (!scopes_.empty() && scopes_.back().depth >= depth_) {
    const Scope& s = scopes_.back();
    if ((s.kind == Scope::Kind::kFunction ||
         s.kind == Scope::Kind::kLambda) &&
        s.fn != npos) {
      cg_.fns[s.fn].body_end = i;
    }
    scopes_.pop_back();
  }
  if (depth_ > 0) --depth_;
}

bool FileWalker::try_lambda(std::size_t i) {
  // Expression position only: a '[' after an identifier, ')' or ']' is a
  // subscript (or an attribute after a declarator) — never a lambda.
  if (i > 0 && (toks_[i - 1].ident() || toks_[i - 1].is(")") ||
                toks_[i - 1].is("]"))) {
    return false;
  }
  const std::size_t close = match_forward(toks_, i);
  if (close == npos) return false;
  // Locate the body brace: optional (params), then a short run of
  // specifier / trailing-return tokens.
  std::size_t j = close + 1;
  std::size_t params_open = npos;
  if (j < toks_.size() && toks_[j].is("(")) {
    params_open = j;
    const std::size_t pclose = match_forward(toks_, j);
    if (pclose == npos) return false;
    j = pclose + 1;
  }
  std::size_t brace = npos;
  for (std::size_t k = j; k < toks_.size() && k < j + 16; ++k) {
    const Token& t = toks_[k];
    if (t.is("{")) {
      brace = k;
      break;
    }
    const bool specifier =
        (t.ident() && (t.text == "mutable" || t.text == "noexcept" ||
                       t.text == "constexpr" || t.text == "const")) ||
        t.is("->") || t.is("::") || t.is("<") || t.is(">") || t.is("*") ||
        t.is("&") || (t.ident() && k > j);  // trailing-return type tokens
    if (!specifier) return false;
  }
  if (brace == npos) return false;
  if (params_open == npos && j != close + 1) {
    // No parameter list: only specifiers may stand between ']' and '{'.
  }

  PendingLambda pending;
  pending.def.is_lambda = true;
  pending.def.line = toks_[i].line;
  // Captures: split [i+1, close) at top-level commas.
  std::size_t item = i + 1;
  int nest = 0;
  for (std::size_t k = i + 1; k <= close; ++k) {
    if (toks_[k].is("(") || toks_[k].is("[") || toks_[k].is("{")) ++nest;
    if (toks_[k].is(")") || toks_[k].is("]") || toks_[k].is("}")) --nest;
    const bool boundary = (toks_[k].is(",") && nest == 0) || k == close;
    if (!boundary) continue;
    if (k > item) {
      const Token& first = toks_[item];
      if (first.is("&") && k == item + 1) {
        pending.def.capture_all_ref = true;
      } else if (first.is("=") && k == item + 1) {
        pending.def.capture_all_val = true;
      } else if (first.is("this")) {
        pending.def.capture_this = true;
      } else if (first.is("*") && item + 1 < k && toks_[item + 1].is("this")) {
        pending.def.capture_this = true;  // *this: a copy, but members alias
      } else if (first.is("&") && item + 1 < k && toks_[item + 1].ident()) {
        pending.def.ref_captures.insert(toks_[item + 1].text);
      } else if (first.ident()) {
        pending.def.val_captures.insert(first.text);
      }
    }
    item = k + 1;
  }
  // Parameters: declaration-shaped names inside the parens.
  if (params_open != npos) {
    const std::size_t pclose = match_forward(toks_, params_open);
    for (std::size_t k = params_open + 1; k + 1 <= pclose; ++k) {
      if (!toks_[k].ident() || is_keywordish(toks_[k].text)) continue;
      const Token& next = toks_[k + 1];
      if ((next.is(",") || next.is(")") || next.is("=")) && k > params_open &&
          is_typeish(toks_[k - 1])) {
        pending.def.locals.insert(toks_[k].text);
      }
    }
  }
  if (!pending_calls_.empty()) {
    pending.arg_of = pending_calls_.back().call;
  }
  if (i >= 2 && toks_[i - 1].is("=") && toks_[i - 2].ident()) {
    pending.alias = toks_[i - 2].text;
  }
  pending_lambdas_.emplace(brace, std::move(pending));
  return true;
}

void FileWalker::try_catch_clause(std::size_t i) {
  if (i + 1 >= toks_.size() || !toks_[i + 1].is("(")) return;
  const std::size_t fn = current_fn();
  if (fn == npos) return;
  const std::size_t close = match_forward(toks_, i + 1);
  if (close == npos) return;
  std::string last_ident;
  std::string caught;
  bool dots = false;
  for (std::size_t k = i + 2; k < close; ++k) {
    const Token& t = toks_[k];
    if (t.is("...")) dots = true;
    if (t.is("&") || t.is("*")) {
      if (!last_ident.empty()) caught = last_ident;
      break;
    }
    if (t.ident() && t.text != "const") last_ident = t.text;
  }
  if (dots) {
    caught = "...";
  } else if (caught.empty()) {
    caught = last_ident;  // `catch (Foo)` — best effort
  }
  if (!caught.empty()) cg_.fns[fn].catches.insert(caught);
}

void FileWalker::try_guard(std::size_t i) {
  std::size_t j = i + 1;
  if (j < toks_.size() && toks_[j].is("<")) {
    int tdepth = 0;
    while (j < toks_.size()) {
      if (toks_[j].is("<")) ++tdepth;
      if (toks_[j].is(">")) {
        if (--tdepth == 0) {
          ++j;
          break;
        }
      }
      if (toks_[j].is(">>")) {
        tdepth -= 2;
        if (tdepth <= 0) {
          ++j;
          break;
        }
      }
      ++j;
    }
  }
  if (j + 1 < toks_.size() && toks_[j].ident() && toks_[j + 1].is("(")) {
    held_.push_back({i, depth_, current_fn()});
  }
}

void FileWalker::try_decl(std::size_t i) {
  if (i == 0 || i + 1 >= toks_.size()) return;
  const Token& next = toks_[i + 1];
  const std::size_t fn = current_fn();
  const bool decl_follow = next.is("=") || next.is(";") || next.is("{") ||
                           next.is(":") || (next.is("(") && fn != npos);
  if (!decl_follow || !is_typeish(toks_[i - 1])) return;
  if (is_keywordish(toks_[i].text)) return;
  // `x == y`, `a <= b` never reach here: compound operators lex whole.
  const DeclFlags flags = scan_decl_statement(toks_, i);
  if (flags.rejected) return;
  const std::string& name = toks_[i].text;
  if (fn != npos) {
    FnDef& f = cg_.fns[fn];
    f.locals.insert(name);
    if (flags.is_atomic) f.atomic_locals.insert(name);
    if (flags.is_thread) f.thread_vecs.insert(name);
    if (flags.is_static) {
      VarDef var;
      var.name = name;
      var.owner = f.qname;
      var.file = file_idx_;
      var.line = toks_[i].line;
      var.is_atomic = flags.is_atomic;
      var.is_const = flags.is_const;
      var.is_mutex = flags.is_mutex;
      var.is_thread = flags.is_thread;
      var.is_static_local = true;
      cg_.globals.push_back(var);
    }
    return;
  }
  if (next.is("(")) return;  // member function / free function declaration
  const std::string cls = current_class();
  VarDef var;
  var.name = name;
  var.owner = cls;
  var.file = file_idx_;
  var.line = toks_[i].line;
  var.is_atomic = flags.is_atomic;
  var.is_const = flags.is_const;
  var.is_mutex = flags.is_mutex;
  var.is_thread = flags.is_thread;
  if (!cls.empty()) {
    cg_.members[cls].emplace(name, var);
  } else {
    cg_.globals.push_back(var);
  }
}

void FileWalker::try_call(std::size_t i) {
  const std::size_t fn = current_fn();
  if (fn == npos) return;
  const Token& t = toks_[i];
  if (is_keywordish(t.text) || is_guard_type(t.text)) return;
  CallRef call;
  call.caller = fn;
  call.callee = t.text;
  call.file = file_idx_;
  call.line = t.line;
  call.tok = i;
  if (i >= 2 && (toks_[i - 1].is(".") || toks_[i - 1].is("->")) &&
      toks_[i - 2].ident()) {
    call.member = true;
    call.base = toks_[i - 2].text;
  } else if (i >= 1 && (toks_[i - 1].is(".") || toks_[i - 1].is("->"))) {
    call.member = true;  // chained: expr().callee(...)
  }
  cg_.calls.push_back(std::move(call));
  pending_calls_.push_back({cg_.calls.size() - 1, paren_depth_});
}

void FileWalker::walk() {
  for (std::size_t i = 0; i < toks_.size(); ++i) {
    const Token& t = toks_[i];
    if (t.is("{")) {
      handle_open_brace(i);
      continue;
    }
    if (t.is("}")) {
      handle_close_brace(i);
      continue;
    }
    if (t.is("[")) {
      try_lambda(i);
      continue;
    }
    if (t.is("(")) {
      ++paren_depth_;
      continue;
    }
    if (t.is(")")) {
      if (paren_depth_ > 0) --paren_depth_;
      while (!pending_calls_.empty() &&
             pending_calls_.back().paren_depth >= paren_depth_) {
        pending_calls_.pop_back();
      }
      continue;
    }
    if (!t.ident()) continue;
    if (t.text == "catch") {
      try_catch_clause(i);
      continue;
    }
    if (is_guard_type(t.text)) {
      try_guard(i);
      continue;
    }
    try_decl(i);
    if (i + 1 < toks_.size() && toks_[i + 1].is("(")) {
      try_call(i);
    } else if (i + 1 < toks_.size() && toks_[i + 1].is("<")) {
      // `callee<Args...>(...)`: explicit template arguments.
      const std::size_t end = template_args_end(toks_, i + 1);
      if (end != npos && end + 1 < toks_.size() && toks_[end + 1].is("(")) {
        try_call(i);
      }
    }
  }
  // Unterminated scopes (truncated file): close everything at EOF.
  depth_ = 0;
  if (!toks_.empty()) handle_close_brace(toks_.size() - 1);
}

}  // namespace

std::vector<std::size_t> CallGraph::resolve(const std::string& callee) const {
  std::vector<std::size_t> out;
  std::string bare = callee;
  const std::size_t sep = bare.rfind("::");
  if (sep != std::string::npos) bare = bare.substr(sep + 2);
  auto it = by_bare_.find(bare);
  if (it != by_bare_.end()) {
    for (std::size_t idx : it->second) {
      const std::string& qname = fns[idx].qname;
      const bool match =
          qname == callee || callee == bare ||
          (qname.size() > callee.size() &&
           qname.compare(qname.size() - callee.size(), callee.size(),
                         callee) == 0 &&
           qname[qname.size() - callee.size() - 1] == ':');
      if (match) out.push_back(idx);
    }
  }
  auto alias = lambda_aliases_.find(callee);
  if (alias != lambda_aliases_.end()) {
    out.insert(out.end(), alias->second.begin(), alias->second.end());
  }
  return out;
}

std::size_t CallGraph::fn_at(std::size_t file, std::size_t tok) const {
  std::size_t best = npos;
  std::size_t best_span = static_cast<std::size_t>(-1);
  for (std::size_t i = 0; i < fns.size(); ++i) {
    const FnDef& f = fns[i];
    if (f.file != file || f.body_end == 0) continue;
    if (tok <= f.body_begin || tok >= f.body_end) continue;
    const std::size_t span = f.body_end - f.body_begin;
    if (span < best_span) {
      best = i;
      best_span = span;
    }
  }
  return best;
}

bool CallGraph::guarded_at(std::size_t fn, std::size_t tok) const {
  if (fn >= fns.size()) return false;
  const FnDef& outer = fns[fn];
  for (std::size_t i = 0; i < fns.size(); ++i) {
    const FnDef& g = fns[i];
    if (g.file != outer.file) continue;
    // Only the function itself and bodies nested inside it.
    if (i != fn &&
        (g.body_begin < outer.body_begin || g.body_end > outer.body_end)) {
      continue;
    }
    for (const auto& span : g.guard_spans) {
      if (tok > span.first && tok < span.second) return true;
    }
  }
  return false;
}

const VarDef* CallGraph::find_global(const std::string& name) const {
  auto it = global_index_.find(name);
  if (it == global_index_.end()) return nullptr;
  return &globals[it->second];
}

const VarDef* CallGraph::find_member(const std::string& cls,
                                     const std::string& name) const {
  auto it = members.find(cls);
  if (it == members.end()) return nullptr;
  auto member = it->second.find(name);
  if (member == it->second.end()) return nullptr;
  return &member->second;
}

CallGraph build_callgraph(const Project& project) {
  CallGraph cg;
  cg.file_tokens.reserve(project.files.size());
  for (const SourceFile& f : project.files) {
    cg.file_tokens.push_back(lex(f.stripped));
  }
  for (std::size_t i = 0; i < project.files.size(); ++i) {
    FileWalker walker(project, i, cg);
    walker.walk();
  }
  for (std::size_t i = 0; i < cg.fns.size(); ++i) {
    std::string bare = cg.fns[i].qname;
    const std::size_t sep = bare.rfind("::");
    if (sep != std::string::npos) bare = bare.substr(sep + 2);
    cg.by_bare_[bare].push_back(i);
  }
  for (std::size_t i = 0; i < cg.globals.size(); ++i) {
    cg.global_index_.emplace(cg.globals[i].name, i);
  }
  return cg;
}

}  // namespace elmo_analyze
