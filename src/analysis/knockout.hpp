// Knockout / essentiality analysis over elementary flux modes.
//
// Gene-knockout studies are a headline EFM application in the paper's
// introduction (§I, refs [4]-[7], Haus et al.; Trinh & Srienc).  The key
// observation making them cheap: knocking out reaction set K leaves exactly
// the EFMs whose supports avoid K — no recomputation needed once the
// wild-type EFM set is known.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bigint/bigint.hpp"
#include "network/network.hpp"

namespace elmo {

/// EFM indices (into a caller-supplied mode list) that survive knocking
/// out the given reactions — i.e. modes with zero flux through every one.
std::vector<std::size_t> surviving_modes(
    const std::vector<std::vector<BigInt>>& modes,
    const std::vector<ReactionId>& knocked_out);

/// Count modes with nonzero flux through `reaction`.
std::size_t modes_using(const std::vector<std::vector<BigInt>>& modes,
                        ReactionId reaction);

struct KnockoutEffect {
  ReactionId reaction;
  std::string reaction_name;
  /// Modes surviving the single knockout.
  std::size_t surviving = 0;
  /// Surviving modes still producing through the target reaction.
  std::size_t surviving_producing = 0;
  /// No surviving mode produces the target: the reaction is essential.
  bool essential = false;
};

struct KnockoutReport {
  std::size_t wild_type_modes = 0;
  std::size_t wild_type_producing = 0;
  std::vector<KnockoutEffect> effects;  // one per non-target reaction

  [[nodiscard]] std::vector<std::string> essential_reactions() const;
};

/// Single-knockout screen against a target reaction: for every reaction
/// (except the target), how many modes survive its removal and how many of
/// them still carry flux through `target`.  Pure set filtering over the
/// wild-type EFM list.
KnockoutReport knockout_screen(const Network& network,
                               const std::vector<std::vector<BigInt>>& modes,
                               ReactionId target);

/// Minimal cut sets of size <= 2 for the target reaction: reaction sets
/// whose removal leaves no producing mode (and no proper subset does).
/// A small instance of the paper's ref [4] (Haus, Klamt & Stephen).
std::vector<std::vector<ReactionId>> minimal_cut_sets_2(
    const std::vector<std::vector<BigInt>>& modes, ReactionId target,
    std::size_t num_reactions);

}  // namespace elmo
