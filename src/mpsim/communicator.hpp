// Simulated distributed-memory message passing.
//
// The paper's Algorithms 2 and 3 ran under MPI on an InfiniBand Xeon
// cluster ("Calhoun") and on Blue Gene/P.  Neither is available offline, so
// elmo provides an in-process runtime with the same programming model: N
// ranks (threads) with private state, point-to-point messages, barrier /
// all-gather / all-reduce collectives, and — crucially for reproducing the
// paper's Network-II memory story — PER-RANK MEMORY ACCOUNTING with a
// configurable budget.  Work division, message volume and per-rank peak
// memory are identical to what the MPI implementation would measure; only
// physical speedup is bounded by the host's core count.
//
// Error handling: an exception escaping one rank aborts the world — blocked
// peers throw AbortedError (carrying the originating rank and root cause)
// instead of deadlocking — and the original exception is rethrown to the
// caller of run_ranks.  A rank that exits while peers are still blocked on
// it (recv from an exited source, a barrier it will never join) likewise
// wakes those peers promptly instead of hanging the world.
//
// Fault injection: RunOptions can carry a FaultPlan (fault.hpp) that
// crashes ranks at chosen operations, corrupts or drops payloads, and slows
// chosen ranks down — the substrate for the retry/checkpoint machinery in
// the Algorithm-3 driver.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "resource/watchdog.hpp"
#include "support/error.hpp"

namespace elmo::mpsim {

struct FaultPlan;

/// Thrown in ranks blocked on a collective/recv when another rank failed
/// or exited while they could never be released.
class AbortedError : public Error {
 public:
  AbortedError()
      : Error("mpsim: world aborted by a failing rank"), origin_rank(-1) {}
  AbortedError(int origin, const std::string& cause)
      : Error("mpsim: world aborted (origin rank " + std::to_string(origin) +
              "): " + cause),
        origin_rank(origin),
        root_cause(cause) {}

  /// Rank whose failure/exit triggered the abort (-1 if unknown).
  int origin_rank;
  /// what() of the originating failure.
  std::string root_cause;
};

using Payload = std::vector<std::uint8_t>;

namespace detail {
struct World;
}  // namespace detail

/// Per-rank traffic and memory counters.
struct RankCounters {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t collectives = 0;
  std::size_t memory_in_use = 0;
  std::size_t memory_peak = 0;
  // Blocked-wait accounting in microseconds, classified at the wait site:
  // data-wait = recv blocked until a matching message arrived, barrier-wait
  // = a collective blocked on peer attendance, straggler-wait = either kind
  // while the peer being waited on is a configured FaultPlan straggler.
  std::uint64_t wait_data_us = 0;
  std::uint64_t wait_barrier_us = 0;
  std::uint64_t wait_straggler_us = 0;
  /// Peak number of undelivered messages queued in this rank's inbox.
  std::uint64_t max_queue_depth = 0;
};

/// Handle each rank body receives; mirrors the MPI surface the paper's
/// implementation would use.
class Communicator {
 public:
  Communicator(detail::World& world, int rank);

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const;

  /// Point-to-point: non-blocking buffered send, blocking tagged receive.
  /// recv throws AbortedError instead of blocking forever when the source
  /// rank has exited without a matching message in flight.
  void send(int destination, int tag, Payload payload);
  Payload recv(int source, int tag);

  void barrier();

  /// Gather every rank's payload; result[r] is rank r's contribution.
  std::vector<Payload> all_gather(Payload local);

  std::uint64_t all_reduce_sum(std::uint64_t local);
  std::uint64_t all_reduce_max(std::uint64_t local);

  /// Memory accounting against the configured per-rank budget.  `track`
  /// ADDS to the rank's usage; set_usage replaces it (convenient for
  /// "current matrix" snapshots).  Throws MemoryBudgetError when the budget
  /// is exceeded — the simulated equivalent of the paper's Algorithm-2 run
  /// on Network II dying at iteration 59.
  void set_memory_usage(std::size_t bytes);
  [[nodiscard]] std::size_t memory_budget() const;

  [[nodiscard]] const RankCounters& counters() const { return counters_; }

 private:
  void check_abort_locked(std::unique_lock<std::mutex>& lock);
  /// Fault hook run at the top of every primitive: applies the straggler
  /// delay and the crash trigger of the configured FaultPlan (if any).
  void enter_op(const char* where);
  /// Generation-counting barrier shared by the collectives; detects ranks
  /// that exited while peers were (or become) blocked in it.
  void sync_barrier();

  detail::World& world_;
  int rank_;
  RankCounters counters_;
};

struct RunOptions {
  /// 0 = unlimited.
  std::size_t memory_budget_per_rank = 0;
  /// Optional deterministic fault injection (see fault.hpp).  Shared so
  /// trigger state persists across retried worlds.
  std::shared_ptr<FaultPlan> fault_plan;
  /// Progress checker: when every non-exited rank is blocked in a wait no
  /// peer can ever satisfy, abort the world with a per-rank diagnostic
  /// instead of hanging.  Deterministic (fires on the first stalled run,
  /// no timeouts involved); costs one scan at the moment the last runnable
  /// rank blocks, nothing on the fast path.
  bool detect_deadlock = true;
  /// Wall-clock supervision of the whole world by the resource watchdog.
  /// Per-rank operation counters feed straggler/wedge detection beyond the
  /// deterministic deadlock checker above (which cannot see a rank wedged
  /// OUTSIDE a wait): a soft deadline emits a structured diagnosis naming
  /// the slowest rank; a hard deadline or a stall (no rank performed any
  /// operation for stall_seconds) aborts the world and run_ranks raises
  /// DeadlineExceededError so the combined driver can re-queue with a
  /// split.  All-zero (the default) disables supervision entirely.
  resource::Deadlines deadlines;
};

/// Result of a world run: per-rank counters (index = rank).
struct RunReport {
  std::vector<RankCounters> ranks;

  [[nodiscard]] std::uint64_t total_bytes_sent() const {
    std::uint64_t total = 0;
    for (const auto& r : ranks) total += r.bytes_sent;
    return total;
  }
  [[nodiscard]] std::size_t max_memory_peak() const {
    std::size_t peak = 0;
    for (const auto& r : ranks) peak = std::max(peak, r.memory_peak);
    return peak;
  }
};

/// Spawn `num_ranks` ranks running `body` and join them.  The first
/// exception thrown by any rank is rethrown here after all ranks have
/// stopped (AbortedError from secondary ranks is swallowed).
RunReport run_ranks(int num_ranks,
                    const std::function<void(Communicator&)>& body,
                    const RunOptions& options = {});

}  // namespace elmo::mpsim
