// Single-word support set for networks with at most 64 reactions.
//
// The reduced yeast networks in the paper have 55 and 61 reactions, so a
// support (the zero/nonzero flux pattern of a mode) fits one machine word.
// The combinatorial pre-test in the candidate-generation inner loop is then
// an OR + popcount — this is what makes probing 1e8+ candidate pairs per
// second (and the paper's 159e9 generated candidates) feasible.
#pragma once

#include <bit>
#include <compare>
#include <cstdint>

#include "support/assert.hpp"

namespace elmo {

class Bitset64 {
 public:
  constexpr Bitset64() = default;
  constexpr explicit Bitset64(std::uint64_t bits) : bits_(bits) {}

  /// Maximum number of usable bit positions.
  static constexpr std::size_t capacity() { return 64; }

  void set(std::size_t i) {
    ELMO_DCHECK(i < 64, "Bitset64 index out of range");
    bits_ |= 1ULL << i;
  }
  void reset(std::size_t i) {
    ELMO_DCHECK(i < 64, "Bitset64 index out of range");
    bits_ &= ~(1ULL << i);
  }
  [[nodiscard]] bool test(std::size_t i) const {
    ELMO_DCHECK(i < 64, "Bitset64 index out of range");
    return (bits_ >> i) & 1ULL;
  }
  void clear() { bits_ = 0; }

  [[nodiscard]] std::size_t count() const {
    return static_cast<std::size_t>(std::popcount(bits_));
  }
  [[nodiscard]] bool empty() const { return bits_ == 0; }
  [[nodiscard]] std::uint64_t word() const { return bits_; }

  /// True iff every set bit of *this is also set in `other`.
  [[nodiscard]] bool is_subset_of(const Bitset64& other) const {
    return (bits_ & ~other.bits_) == 0;
  }
  [[nodiscard]] bool intersects(const Bitset64& other) const {
    return (bits_ & other.bits_) != 0;
  }

  friend Bitset64 operator|(Bitset64 a, Bitset64 b) {
    return Bitset64(a.bits_ | b.bits_);
  }
  friend Bitset64 operator&(Bitset64 a, Bitset64 b) {
    return Bitset64(a.bits_ & b.bits_);
  }
  Bitset64& operator|=(Bitset64 rhs) {
    bits_ |= rhs.bits_;
    return *this;
  }
  Bitset64& operator&=(Bitset64 rhs) {
    bits_ &= rhs.bits_;
    return *this;
  }

  friend constexpr bool operator==(Bitset64 a, Bitset64 b) = default;
  /// Lexicographic-by-word ordering; used to sort candidates for the
  /// paper's sort-and-remove-duplicates step.
  friend constexpr std::strong_ordering operator<=>(Bitset64 a,
                                                    Bitset64 b) = default;

  /// Append the indices of set bits, in increasing order.
  template <typename IndexVector>
  void append_indices(IndexVector& out) const {
    std::uint64_t rest = bits_;
    while (rest) {
      out.push_back(static_cast<typename IndexVector::value_type>(
          std::countr_zero(rest)));
      rest &= rest - 1;
    }
  }

  [[nodiscard]] std::size_t hash() const {
    // splitmix64 finaliser.
    std::uint64_t z = bits_ + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(z ^ (z >> 31));
  }

  /// Approximate heap usage (none; the set is inline).
  [[nodiscard]] static std::size_t storage_bytes() { return 0; }

 private:
  std::uint64_t bits_ = 0;
};

/// |a ∪ b| without materialising the union — the candidate pre-test's inner
/// operation, kept allocation-free because it runs per candidate pair
/// (billions of times on the yeast networks).
inline std::size_t union_count(const Bitset64& a, const Bitset64& b) {
  return static_cast<std::size_t>(std::popcount(a.word() | b.word()));
}

}  // namespace elmo
