// elmo_stat — run-ledger query tool and regression sentinel.
//
//   elmo_stat list LEDGER
//   elmo_stat show LEDGER [--index N]
//   elmo_stat diff LEDGER [--a N] [--b N] [--baseline FILE]
//   elmo_stat check LEDGER --baseline FILE [--index N]
//             [--time-pct P] [--mem-pct P] [--count-pct P]
//             [--metric NAME=PCT]...
//   elmo_stat add LEDGER REPORT.json
//   elmo_stat perturb LEDGER --metric NAME --factor F -o OUT [--index N]
//
// `check` compares the candidate record (the ledger's last, or --index)
// against the newest baseline record with the same workload key (network,
// algorithm, ranks, config).  When the baseline file IS the ledger itself,
// only records older than the candidate are considered — so appending two
// runs of the same binary to one ledger and checking it against itself
// compares run 2 vs run 1.  Exit codes: 0 = pass, 1 = regression,
// 2 = usage or I/O error.
//
// `perturb` rewrites a copy of the ledger with one metric of one record
// scaled by a factor; CI uses it to prove the sentinel actually fires.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/obs.hpp"

namespace {

using elmo::obs::CheckResult;
using elmo::obs::CheckThresholds;
using elmo::obs::JsonValue;
using elmo::obs::LedgerRecord;

int usage() {
  std::fprintf(
      stderr,
      "usage: elmo_stat <command> [options]\n"
      "  list LEDGER                         one line per recorded run\n"
      "  show LEDGER [--index N]             pretty-print one record\n"
      "  diff LEDGER [--a N] [--b N] [--baseline FILE]\n"
      "                                      metric-by-metric comparison\n"
      "  check LEDGER --baseline FILE [--index N] [--time-pct P]\n"
      "        [--mem-pct P] [--count-pct P] [--metric NAME=PCT]...\n"
      "                                      regression sentinel (exit 1 on\n"
      "                                      regression)\n"
      "  add LEDGER REPORT.json              append a report as a record\n"
      "  perturb LEDGER --metric NAME --factor F -o OUT [--index N]\n"
      "                                      write a copy with one metric\n"
      "                                      scaled (sentinel self-test)\n");
  return 2;
}

std::string read_file(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) throw std::runtime_error("cannot open: " + path);
  std::string text;
  char buffer[4096];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof buffer, file)) > 0)
    text.append(buffer, got);
  std::fclose(file);
  return text;
}

void write_ledger(const std::string& path,
                  const std::vector<LedgerRecord>& records) {
  std::string text;
  for (const auto& record : records) text += record.to_json().dump(-1) + "\n";
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr)
    throw std::runtime_error("cannot open for writing: " + path);
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), file);
  const bool ok = written == text.size() && std::fclose(file) == 0;
  if (!ok) throw std::runtime_error("failed writing: " + path);
}

/// Resolve a --index value (default: last record).  Throws on out-of-range.
std::size_t resolve_index(const std::vector<LedgerRecord>& records,
                          long requested) {
  if (records.empty()) throw std::runtime_error("ledger is empty");
  if (requested < 0) return records.size() - 1;
  const auto index = static_cast<std::size_t>(requested);
  if (index >= records.size()) {
    throw std::runtime_error("index " + std::to_string(requested) +
                             " out of range (ledger has " +
                             std::to_string(records.size()) + " records)");
  }
  return index;
}

/// Newest baseline record matching `key`, restricted to indices < `before`
/// (pass records.size() for no restriction).  Returns nullptr when none.
const LedgerRecord* find_baseline(const std::vector<LedgerRecord>& records,
                                  const std::string& key, std::size_t before) {
  for (std::size_t i = std::min(before, records.size()); i-- > 0;) {
    if (records[i].key() == key) return &records[i];
  }
  return nullptr;
}

struct Args {
  std::vector<std::string> positional;
  long index = -1;
  long a = -1;
  long b = -1;
  std::string baseline;
  std::string metric;
  std::string out;
  double factor = 1.0;
  CheckThresholds thresholds;
};

bool parse_args(int argc, char** argv, int first, Args& args) {
  auto next_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "elmo_stat: %s needs a value\n", argv[i]);
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* value = nullptr;
    if (arg == "--index") {
      if ((value = next_value(i)) == nullptr) return false;
      args.index = std::strtol(value, nullptr, 10);
    } else if (arg == "--a") {
      if ((value = next_value(i)) == nullptr) return false;
      args.a = std::strtol(value, nullptr, 10);
    } else if (arg == "--b") {
      if ((value = next_value(i)) == nullptr) return false;
      args.b = std::strtol(value, nullptr, 10);
    } else if (arg == "--baseline") {
      if ((value = next_value(i)) == nullptr) return false;
      args.baseline = value;
    } else if (arg == "--factor") {
      if ((value = next_value(i)) == nullptr) return false;
      args.factor = std::strtod(value, nullptr);
    } else if (arg == "-o" || arg == "--out") {
      if ((value = next_value(i)) == nullptr) return false;
      args.out = value;
    } else if (arg == "--time-pct") {
      if ((value = next_value(i)) == nullptr) return false;
      args.thresholds.time_pct = std::strtod(value, nullptr);
    } else if (arg == "--mem-pct") {
      if ((value = next_value(i)) == nullptr) return false;
      args.thresholds.memory_pct = std::strtod(value, nullptr);
    } else if (arg == "--count-pct") {
      if ((value = next_value(i)) == nullptr) return false;
      args.thresholds.count_pct = std::strtod(value, nullptr);
    } else if (arg == "--metric") {
      if ((value = next_value(i)) == nullptr) return false;
      const std::string spec = value;
      const std::size_t eq = spec.find('=');
      if (eq != std::string::npos) {
        // NAME=PCT form: a per-metric threshold override (check).
        args.thresholds.per_metric[spec.substr(0, eq)] =
            std::strtod(spec.c_str() + eq + 1, nullptr);
      } else {
        args.metric = spec;  // bare NAME form (perturb)
      }
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "elmo_stat: unknown option %s\n", arg.c_str());
      return false;
    } else {
      args.positional.push_back(arg);
    }
  }
  return true;
}

int cmd_list(const Args& args) {
  const auto records = elmo::obs::load_ledger(args.positional[0]);
  std::fputs(elmo::obs::render_ledger_list(records).c_str(), stdout);
  return 0;
}

int cmd_show(const Args& args) {
  const auto records = elmo::obs::load_ledger(args.positional[0]);
  const std::size_t index = resolve_index(records, args.index);
  std::printf("%s\n", records[index].to_json().dump(2).c_str());
  return 0;
}

int cmd_diff(const Args& args) {
  const auto records = elmo::obs::load_ledger(args.positional[0]);
  const LedgerRecord* baseline = nullptr;
  const LedgerRecord* candidate = nullptr;
  std::vector<LedgerRecord> baseline_records;
  if (!args.baseline.empty()) {
    baseline_records = elmo::obs::load_ledger(args.baseline);
    candidate = &records[resolve_index(records, args.b)];
    baseline = &baseline_records[resolve_index(baseline_records, args.a)];
  } else if (args.a >= 0 || args.b >= 0) {
    baseline = &records[resolve_index(records, args.a)];
    candidate = &records[resolve_index(records, args.b)];
  } else {
    // Default: last two records of the ledger.
    if (records.size() < 2)
      throw std::runtime_error("diff needs at least two records");
    baseline = &records[records.size() - 2];
    candidate = &records[records.size() - 1];
  }
  std::fputs(elmo::obs::render_ledger_diff(*baseline, *candidate).c_str(),
             stdout);
  return 0;
}

int cmd_check(const Args& args) {
  if (args.baseline.empty()) {
    std::fprintf(stderr, "elmo_stat check: --baseline FILE is required\n");
    return 2;
  }
  const std::string& ledger_path = args.positional[0];
  const auto records = elmo::obs::load_ledger(ledger_path);
  const std::size_t candidate_index = resolve_index(records, args.index);
  const LedgerRecord& candidate = records[candidate_index];

  const bool self = args.baseline == ledger_path;
  std::vector<LedgerRecord> baseline_records;
  const std::vector<LedgerRecord>* pool = &records;
  if (!self) {
    baseline_records = elmo::obs::load_ledger(args.baseline);
    pool = &baseline_records;
  }
  const LedgerRecord* baseline = find_baseline(
      *pool, candidate.key(), self ? candidate_index : pool->size());
  if (baseline == nullptr) {
    std::fprintf(stderr,
                 "elmo_stat check: no baseline record matches workload %s\n",
                 candidate.key().c_str());
    return 2;
  }
  const CheckResult result =
      elmo::obs::check_regression(*baseline, candidate, args.thresholds);
  std::printf("baseline : %s git=%s host=%s\n", baseline->timestamp.c_str(),
              baseline->git_describe.c_str(), baseline->hostname.c_str());
  std::printf("candidate: %s git=%s host=%s\n", candidate.timestamp.c_str(),
              candidate.git_describe.c_str(), candidate.hostname.c_str());
  std::fputs(result.report.c_str(), stdout);
  if (!result.ok) {
    std::printf("FAIL: %zu metric(s) regressed\n", result.regressions.size());
    return 1;
  }
  std::printf("PASS: no regression\n");
  return 0;
}

int cmd_add(const Args& args) {
  if (args.positional.size() < 2) {
    std::fprintf(stderr, "elmo_stat add: need LEDGER and REPORT.json\n");
    return 2;
  }
  std::string error;
  const JsonValue report = elmo::obs::parse_json(
      read_file(args.positional[1]), &error);
  if (report.is_null() && !error.empty())
    throw std::runtime_error(args.positional[1] + ": " + error);
  elmo::obs::append_ledger_record(
      args.positional[0], elmo::obs::make_ledger_record_env(report));
  return 0;
}

int cmd_perturb(const Args& args) {
  if (args.metric.empty() || args.out.empty()) {
    std::fprintf(stderr,
                 "elmo_stat perturb: --metric NAME and -o OUT are required\n");
    return 2;
  }
  auto records = elmo::obs::load_ledger(args.positional[0]);
  const std::size_t index = resolve_index(records, args.index);
  auto it = records[index].metrics.find(args.metric);
  if (it == records[index].metrics.end()) {
    std::fprintf(stderr, "elmo_stat perturb: record has no metric %s\n",
                 args.metric.c_str());
    return 2;
  }
  it->second *= args.factor;
  write_ledger(args.out, records);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string command = argv[1];
  Args args;
  if (!parse_args(argc, argv, 2, args)) return 2;
  if (args.positional.empty()) return usage();
  try {
    if (command == "list") return cmd_list(args);
    if (command == "show") return cmd_show(args);
    if (command == "diff") return cmd_diff(args);
    if (command == "check") return cmd_check(args);
    if (command == "add") return cmd_add(args);
    if (command == "perturb") return cmd_perturb(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "elmo_stat: %s\n", e.what());
    return 2;
  }
  std::fprintf(stderr, "elmo_stat: unknown command '%s'\n", command.c_str());
  return usage();
}
