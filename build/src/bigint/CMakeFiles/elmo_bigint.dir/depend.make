# Empty dependencies file for elmo_bigint.
# This may be replaced when dependencies are built.
