# Empty compiler generated dependencies file for elmo_models.
# This may be replaced when dependencies are built.
