// Compute elementary flux modes of the paper's S. cerevisiae networks with
// any of the three algorithms.
//
//   $ ./examples/yeast_efm --network 1 --algorithm combined  ..continued..
//         --partition R89r,R74r --ranks 16
//   $ ./examples/yeast_efm --network 1 --scale small   # quick demo subset
//
// Options:
//   --network 1|2          Network I (62x78) or Network II (63x83)
//   --algorithm serial|parallel|combined
//   --ranks N              simulated compute ranks (default 4)
//   --partition A,B,...    divide-and-conquer reactions (default: paper's)
//   --qsub N               auto-select N partition reactions instead
//   --scale small|full     'small' knocks out reactions to shrink the EFM
//                          space to a laptop-friendly size (default small)
//   --csv FILE             write the modes as CSV
//   --quiet                suppress per-iteration progress
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/api.hpp"
#include "io/efm_writer.hpp"
#include "models/yeast.hpp"
#include "support/format.hpp"

namespace {

/// Reactions knocked out in --scale small: trimming the pentose-phosphate
/// shunt and several transport alternatives cuts the EFM count from 1.5
/// million to a few thousand while leaving the pathway structure (glycolysis,
/// TCA, fermentation) intact.
const char* kSmallScaleKnockouts[] = {"R15", "R33", "R41", "R46",
                                      "R92r", "R98", "R100"};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--network 1|2] [--algorithm serial|parallel|"
               "combined]\n  [--ranks N] [--partition A,B,..] [--qsub N] "
               "[--scale small|full] [--csv FILE] [--quiet]\n",
               argv0);
  std::exit(2);
}

std::vector<std::string> split_csv(const std::string& arg) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= arg.size()) {
    std::size_t comma = arg.find(',', start);
    if (comma == std::string::npos) comma = arg.size();
    if (comma > start) out.push_back(arg.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace elmo;

  int which_network = 1;
  std::string algorithm = "combined";
  std::string scale = "small";
  std::string csv_path;
  bool quiet = false;
  EfmOptions options;
  options.num_ranks = 4;

  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--network")) {
      which_network = std::stoi(next());
    } else if (!std::strcmp(argv[i], "--algorithm")) {
      algorithm = next();
    } else if (!std::strcmp(argv[i], "--ranks")) {
      options.num_ranks = std::stoi(next());
    } else if (!std::strcmp(argv[i], "--partition")) {
      options.partition_reactions = split_csv(next());
    } else if (!std::strcmp(argv[i], "--qsub")) {
      options.qsub = static_cast<std::size_t>(std::stoul(next()));
    } else if (!std::strcmp(argv[i], "--scale")) {
      scale = next();
    } else if (!std::strcmp(argv[i], "--csv")) {
      csv_path = next();
    } else if (!std::strcmp(argv[i], "--quiet")) {
      quiet = true;
    } else {
      usage(argv[0]);
    }
  }

  Network network = which_network == 2 ? models::yeast_network_2()
                                       : models::yeast_network_1();
  if (scale == "small") {
    std::vector<ReactionId> knockouts;
    for (const char* name : kSmallScaleKnockouts) {
      if (auto id = network.find_reaction(name)) knockouts.push_back(*id);
    }
    network = network.without_reactions(knockouts);
    std::printf("scale: small (%zu reactions knocked out; use --scale full "
                "for the paper-size instance)\n",
                knockouts.size());
  }

  if (algorithm == "serial") {
    options.algorithm = Algorithm::kSerial;
  } else if (algorithm == "parallel") {
    options.algorithm = Algorithm::kCombinatorialParallel;
  } else if (algorithm == "combined") {
    options.algorithm = Algorithm::kCombined;
    if (options.partition_reactions.empty() && options.qsub == 2 &&
        which_network == 2) {
      options.partition_reactions = {"R54r", "R90r", "R60r"};  // Table IV
    } else if (options.partition_reactions.empty() && options.qsub == 2) {
      options.partition_reactions = {"R89r", "R74r"};  // Table III
    }
  } else {
    usage(argv[0]);
  }

  if (!quiet) {
    options.on_iteration = [](const IterationStats& s) {
      std::printf("  iteration row=%-3zu pairs=%-14s columns=%s\n", s.row,
                  with_commas(s.pairs_probed).c_str(),
                  with_commas(s.columns_after).c_str());
      std::fflush(stdout);
    };
  }

  std::printf("computing EFMs of S. cerevisiae Network %s (%zu x %zu) with "
              "algorithm '%s', %d ranks...\n",
              which_network == 2 ? "II" : "I",
              network.num_internal_metabolites(), network.num_reactions(),
              algorithm.c_str(), options.num_ranks);

  EfmResult result = compute_efms(network, options);

  std::printf("\nreduced problem: %zu x %zu\n", result.reduced_metabolites,
              result.reduced_reactions);
  std::printf("elementary flux modes: %s\n",
              with_commas(result.num_modes()).c_str());
  std::printf("candidate pairs probed: %s\n",
              with_commas(result.stats.total_pairs_probed).c_str());
  std::printf("total time: %s s%s\n", seconds_str(result.seconds).c_str(),
              result.used_bigint ? " (BigInt kernel)" : "");
  if (!result.subsets.empty()) {
    std::printf("\ndivide-and-conquer subsets:\n");
    for (const auto& subset : result.subsets) {
      std::printf("  %-40s %10s EFMs  %12s pairs  %8s s\n",
                  subset.label.c_str(), with_commas(subset.num_efms).c_str(),
                  with_commas(subset.candidate_pairs).c_str(),
                  seconds_str(subset.seconds).c_str());
    }
  }

  if (!csv_path.empty()) {
    std::ofstream out(csv_path);
    out << efms_to_csv(result.modes, result.reaction_names);
    std::printf("modes written to %s\n", csv_path.c_str());
  }
  return 0;
}
