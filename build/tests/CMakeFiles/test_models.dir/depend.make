# Empty dependencies file for test_models.
# This may be replaced when dependencies are built.
