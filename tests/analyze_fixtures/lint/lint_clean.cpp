// Clean counterpart for every lint rule.
#include <memory>
#include <random>
#include <stdexcept>

std::unique_ptr<int> owned() { return std::make_unique<int>(3); }

int seeded_random() {
  std::mt19937 engine(42);
  return static_cast<int>(engine());
}

int rethrows() {
  try {
    return seeded_random();
  } catch (...) {
    throw;
  }
}

// lint:allow(reinterpret-cast) fixture: demonstrating the annotation form
long as_long(int* p) { return *reinterpret_cast<long*>(p); }
