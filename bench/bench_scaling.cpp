// SIV.A (time scalability): "Computation time is proportional to the number
// of generated intermediate elementary modes."
//
// Two sweeps verify the proportionality claim on this implementation:
//   1. Instance-size sweep: a series of knockout-nested Network I
//      instances of growing EFM count; prints pairs vs seconds and the
//      pairs-per-second ratio (should be roughly constant).
//   2. qsub sweep: divide-and-conquer with 0..3 partition reactions on one
//      instance; prints the cumulative candidate count and time per qsub —
//      the paper's claim that splitting usually DECREASES the cumulative
//      candidates (159.6e9 -> 81.7e9 on Network I).
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace elmo;
  const bool full = bench::full_scale(argc, argv);
  bench::print_scale_banner(full, "Figure (SIV.A): time ~ candidate count");

  // Nested knockout series: each step removes one more reaction family.
  const std::vector<std::vector<std::string>> knockout_series = {
      {"R15", "R33", "R41", "R46", "R92r", "R98", "R100", "R77", "R101",
       "R32r"},
      {"R15", "R33", "R41", "R46", "R92r", "R98", "R100", "R77", "R101"},
      {"R15", "R33", "R41", "R46", "R92r", "R98", "R100", "R77"},
      {"R15", "R33", "R41", "R46", "R92r", "R98", "R100"},
  };

  Table sweep({"instance", "# EFM", "# candidate pairs", "time (s)",
               "pairs / second"});
  for (std::size_t i = 0; i < knockout_series.size(); ++i) {
    Network network =
        bench::knock_out(models::yeast_network_1(), knockout_series[i]);
    EfmOptions options;
    Stopwatch watch;
    auto result = compute_efms(network, options);
    double seconds = watch.seconds();
    double rate = static_cast<double>(result.stats.total_pairs_probed) /
                  std::max(seconds, 1e-9);
    sweep.add_row({"NetI minus " + std::to_string(knockout_series[i].size()) +
                       " rxns",
                   with_commas(result.num_modes()),
                   with_commas(result.stats.total_pairs_probed),
                   seconds_str(seconds),
                   with_commas(static_cast<std::uint64_t>(rate))});
  }
  std::fputs(sweep.render("instance-size sweep (Algorithm 1)").c_str(),
             stdout);
  std::printf("\n");

  // qsub sweep on the demo instance.
  Network network = bench::network_1(full);
  auto compressed = compress(network);
  Table qsub_table({"qsub", "# subsets", "cumulative # candidates",
                    "vs unsplit", "time (s)", "# EFM"});
  std::uint64_t unsplit_pairs = 0;
  for (std::size_t qsub = 0; qsub <= 3; ++qsub) {
    EfmOptions options;
    Stopwatch watch;
    EfmResult result;
    if (qsub == 0) {
      options.algorithm = Algorithm::kSerial;
      result = compute_efms(compressed, network.reversibility(), options);
      unsplit_pairs = result.stats.total_pairs_probed;
    } else {
      options.algorithm = Algorithm::kCombined;
      options.num_ranks = 1;
      options.qsub = qsub;
      result = compute_efms(compressed, network.reversibility(), options);
    }
    double seconds = watch.seconds();
    double ratio = static_cast<double>(result.stats.total_pairs_probed) /
                   static_cast<double>(unsplit_pairs);
    char ratio_text[32];
    std::snprintf(ratio_text, sizeof ratio_text, "%.2fx", ratio);
    qsub_table.add_row({std::to_string(qsub),
                        std::to_string(std::size_t{1} << qsub),
                        with_commas(result.stats.total_pairs_probed),
                        ratio_text, seconds_str(seconds),
                        with_commas(result.num_modes())});
  }
  std::fputs(
      qsub_table.render("divide-and-conquer candidate-count sweep").c_str(),
      stdout);
  std::printf("\npaper: qsub=2 on Network I cut candidates to 0.51x and time "
              "to 0.68x of unsplit\n");
  return 0;
}
