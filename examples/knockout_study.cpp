// Gene-knockout study — one of the EFM applications motivating the paper
// (§I cites knockout-strategy work by Haus et al., Trinh & Srienc).
//
// For every single-reaction knockout of a network this example recomputes
// the elementary flux modes and reports how the organism's pathway
// repertoire shrinks — in total and for the modes that still produce a
// target product.  Reactions whose loss leaves no producing mode are the
// essential set for that product.
//
//   $ ./examples/knockout_study              # toy network, target r4 (Pext)
//   $ ./examples/knockout_study R70          # yeast (small scale), biomass
#include <cstdio>
#include <string>
#include <vector>

#include "core/api.hpp"
#include "models/toy.hpp"
#include "models/yeast.hpp"
#include "support/format.hpp"

namespace {

std::size_t modes_using(const elmo::EfmResult& result,
                        const std::string& reaction) {
  std::size_t index = result.reaction_names.size();
  for (std::size_t j = 0; j < result.reaction_names.size(); ++j) {
    if (result.reaction_names[j] == reaction) index = j;
  }
  if (index == result.reaction_names.size()) return 0;
  std::size_t count = 0;
  for (const auto& mode : result.modes)
    if (!mode[index].is_zero()) ++count;
  return count;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace elmo;

  Network network;
  std::string target;
  if (argc > 1) {
    // Yeast Network I at demo scale; argv[1] is the target reaction.
    network = models::yeast_network_1();
    std::vector<ReactionId> trim;
    for (const char* name : {"R15", "R33", "R41", "R46", "R92r", "R98",
                             "R100"}) {
      if (auto id = network.find_reaction(name)) trim.push_back(*id);
    }
    network = network.without_reactions(trim);
    target = argv[1];
  } else {
    network = models::toy_network();
    target = "r4";  // export of P
  }
  ELMO_REQUIRE(network.find_reaction(target).has_value(),
               "unknown target reaction: " + target);

  EfmOptions options;
  auto wild_type = compute_efms(network, options);
  const std::size_t wt_total = wild_type.num_modes();
  const std::size_t wt_producing = modes_using(wild_type, target);
  std::printf("wild type: %s EFMs, %s producing via %s\n\n",
              with_commas(wt_total).c_str(),
              with_commas(wt_producing).c_str(), target.c_str());
  std::printf("%-10s %12s %14s %10s\n", "knockout", "EFMs", "producing",
              "essential?");

  std::vector<std::string> essential;
  for (ReactionId id = 0; id < network.num_reactions(); ++id) {
    const std::string& name = network.reaction(id).name;
    if (name == target) continue;
    Network mutant = network.without_reactions({id});
    auto result = compute_efms(mutant, options);
    std::size_t producing = modes_using(result, target);
    bool is_essential = producing == 0 && wt_producing > 0;
    if (is_essential) essential.push_back(name);
    std::printf("%-10s %12s %14s %10s\n", name.c_str(),
                with_commas(result.num_modes()).c_str(),
                with_commas(producing).c_str(), is_essential ? "YES" : "");
  }

  std::printf("\nessential for %s: ", target.c_str());
  if (essential.empty()) std::printf("(none)");
  for (const auto& name : essential) std::printf("%s ", name.c_str());
  std::printf("\n");
  return 0;
}
