#!/usr/bin/env bash
# Candidate-generation performance record: runs bench_candidates and writes
# BENCH_candidates.json (per-scenario pairs/sec, survivors/sec, and the
# engine-vs-reference speedup, plus the end-to-end first-iterations time on
# the real yeast network).
#
# Usage:
#   scripts/bench.sh                      measure, write BENCH_candidates.json
#   scripts/bench.sh --compare [FILE]     also gate against a committed
#                                         baseline (default: the repo's
#                                         BENCH_candidates.json): fails when
#                                         any scenario's speedup drops more
#                                         than 10% relative, or the yeast-
#                                         width pretest speedup falls under
#                                         2x (the ISSUE 4 acceptance bound).
#   BENCH_OUT=path                        override the output file.
#
# Speedups are in-binary ratios (engine vs the reference loop compiled into
# the same binary), so the gate is portable across machines; absolute
# seconds in the record are informational.
set -euo pipefail
cd "$(dirname "$0")/.."

COMPARE=0
BASELINE="BENCH_candidates.json"
OUT="${BENCH_OUT:-BENCH_candidates.json}"
REPS="${BENCH_REPS:-5}"
while [[ $# -gt 0 ]]; do
  case "$1" in
    --compare)
      COMPARE=1
      if [[ $# -gt 1 && "$2" != --* ]]; then
        BASELINE="$2"
        shift
      fi
      ;;
    *)
      echo "unknown argument: $1" >&2
      exit 1
      ;;
  esac
  shift
done

run() { echo "+ $*" >&2; "$@"; }

run cmake -B build -S . >/dev/null
run cmake --build build -j"$(nproc)" --target bench_candidates

ARGS=(--reps "${REPS}" --json "${OUT}")
if [[ "${COMPARE}" == "1" ]]; then
  if [[ ! -f "${BASELINE}" ]]; then
    echo "baseline ${BASELINE} not found" >&2
    exit 1
  fi
  # Gate against a copy: when OUT == BASELINE the fresh record must not
  # clobber the baseline before it is read.
  BASELINE_COPY="$(mktemp)"
  trap 'rm -f "${BASELINE_COPY}"' EXIT
  cp "${BASELINE}" "${BASELINE_COPY}"
  ARGS+=(--baseline "${BASELINE_COPY}" --max-regression-pct 10
         --min-speedup 2)
fi

run ./build/bench/bench_candidates "${ARGS[@]}"
echo "wrote ${OUT}"
