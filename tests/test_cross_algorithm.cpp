// Cross-algorithm consistency on a real mid-size network (E. coli core,
// 857 EFMs): all four algorithms, several configurations, one answer.
#include <gtest/gtest.h>

#include "core/api.hpp"
#include "efm_test_util.hpp"
#include "models/ecoli_core.hpp"

namespace elmo {
namespace {

const EfmResult& reference() {
  static const EfmResult result = compute_efms(models::ecoli_core());
  return result;
}

TEST(CrossAlgorithm, ReferenceSatisfiesInvariants) {
  Network net = models::ecoli_core();
  EXPECT_EQ(reference().num_modes(), 857u);
  check_efm_invariants(net, reference().modes);
}

TEST(CrossAlgorithm, CombinatorialParallelMatches) {
  for (int ranks : {2, 5}) {
    EfmOptions options;
    options.algorithm = Algorithm::kCombinatorialParallel;
    options.num_ranks = ranks;
    auto result = compute_efms(models::ecoli_core(), options);
    EXPECT_EQ(result.modes, reference().modes) << "ranks " << ranks;
  }
}

TEST(CrossAlgorithm, HybridMatches) {
  EfmOptions options;
  options.algorithm = Algorithm::kCombinatorialParallel;
  options.num_ranks = 2;
  options.threads_per_rank = 3;
  auto result = compute_efms(models::ecoli_core(), options);
  EXPECT_EQ(result.modes, reference().modes);
}

TEST(CrossAlgorithm, CombinedMatchesAcrossQsub) {
  for (std::size_t qsub : {1u, 2u, 3u}) {
    EfmOptions options;
    options.algorithm = Algorithm::kCombined;
    options.num_ranks = 2;
    options.qsub = qsub;
    auto result = compute_efms(models::ecoli_core(), options);
    EXPECT_EQ(result.modes, reference().modes) << "qsub " << qsub;
    EXPECT_EQ(result.subsets.size(), std::size_t{1} << qsub);
  }
}

TEST(CrossAlgorithm, PartitionedMatches) {
  EfmOptions options;
  options.algorithm = Algorithm::kPartitioned;
  options.num_ranks = 3;
  auto result = compute_efms(models::ecoli_core(), options);
  EXPECT_EQ(result.modes, reference().modes);
}

TEST(CrossAlgorithm, ExactRankBackendMatches) {
  EfmOptions options;
  options.rank_backend = RankTestBackend::kExact;
  auto result = compute_efms(models::ecoli_core(), options);
  EXPECT_EQ(result.modes, reference().modes);
}

TEST(CrossAlgorithm, CombinatorialElementarityTestMatches) {
  EfmOptions options;
  options.test = ElementarityTest::kCombinatorial;
  auto result = compute_efms(models::ecoli_core(), options);
  EXPECT_EQ(result.modes, reference().modes);
}

TEST(CrossAlgorithm, BigIntKernelMatches) {
  EfmOptions options;
  options.force_bigint = true;
  auto result = compute_efms(models::ecoli_core(), options);
  EXPECT_EQ(result.modes, reference().modes);
}

TEST(CrossAlgorithm, OrderingVariantsMatch) {
  for (bool nnz : {false, true}) {
    for (bool rev_last : {false, true}) {
      EfmOptions options;
      options.ordering.sort_by_nonzeros = nnz;
      options.ordering.reversible_last = rev_last;
      auto result = compute_efms(models::ecoli_core(), options);
      EXPECT_EQ(result.modes, reference().modes)
          << "nnz=" << nnz << " rev_last=" << rev_last;
    }
  }
}

TEST(CrossAlgorithm, CompressionVariantsMatch) {
  // Disabling individual compression passes must never change the answer.
  for (int variant = 0; variant < 4; ++variant) {
    EfmOptions options;
    options.compression.couple_two_reaction_metabolites = variant & 1;
    options.compression.kernel_coupling = variant & 2;
    auto result = compute_efms(models::ecoli_core(), options);
    EXPECT_EQ(result.modes, reference().modes) << "variant " << variant;
  }
}

}  // namespace
}  // namespace elmo
