// Tests for the result writers and the bench table renderer.
#include <gtest/gtest.h>

#include "io/efm_writer.hpp"
#include "io/table.hpp"
#include "support/error.hpp"
#include "support/format.hpp"

namespace elmo {
namespace {

TEST(EfmWriter, TextLayout) {
  std::vector<std::vector<BigInt>> modes = {
      {BigInt(1), BigInt(0)},
      {BigInt(-2), BigInt(3)},
  };
  auto text = efms_to_text(modes, {"r1", "r2"});
  EXPECT_EQ(text, "r1\t1\t-2\nr2\t0\t3\n");
}

TEST(EfmWriter, CsvLayout) {
  std::vector<std::vector<BigInt>> modes = {{BigInt(1), BigInt(0)}};
  auto csv = efms_to_csv(modes, {"r1", "r2"});
  EXPECT_EQ(csv, "r1,r2\n1,0\n");
}

TEST(EfmWriter, DimensionMismatchThrows) {
  std::vector<std::vector<BigInt>> modes = {{BigInt(1)}};
  EXPECT_THROW(efms_to_text(modes, {"r1", "r2"}), InvalidArgumentError);
  EXPECT_THROW(efms_to_csv(modes, {"r1", "r2"}), InvalidArgumentError);
}

TEST(Table, RendersAlignedColumns) {
  Table table({"# cores", "total time (sec)"});
  table.add_row({"1", "2894.40"});
  table.add_row({"64", "61.87"});
  auto text = table.render("Table II");
  EXPECT_NE(text.find("Table II"), std::string::npos);
  EXPECT_NE(text.find("# cores"), std::string::npos);
  EXPECT_NE(text.find("2894.40"), std::string::npos);
  // Header separator present.
  EXPECT_NE(text.find("----"), std::string::npos);
}

TEST(Table, RowArityChecked) {
  Table table({"a", "b"});
  EXPECT_THROW(table.add_row({"only one"}), InvalidArgumentError);
}

TEST(Format, WithCommas) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(1515314), "1,515,314");
  EXPECT_EQ(with_commas(159599700951ULL), "159,599,700,951");
}

TEST(Format, SecondsAndBytes) {
  EXPECT_EQ(seconds_str(141.6), "141.60");
  EXPECT_EQ(seconds_str(0.125, 3), "0.125");
  EXPECT_EQ(bytes_str(512), "512 B");
  EXPECT_EQ(bytes_str(1536), "1.50 KiB");
  EXPECT_EQ(bytes_str(3ull << 30), "3.00 GiB");
}

}  // namespace
}  // namespace elmo
