// Divide-and-conquer partition explorer — the paper's §IV.C future-work
// item made concrete.
//
// "It is yet unclear how to select the subset of reactions in
//  divide-and-conquer that may maximally decrease the number of
//  intermediate candidate elementary flux modes." (paper, §IV.A)
//
// This example enumerates candidate partition subsets of trailing
// reversible reactions, scores each with the sampling estimator
// (core/estimate.hpp), then verifies the ranking by running the combined
// algorithm for real and comparing estimated vs measured candidate counts.
//
//   $ ./examples/partition_explorer            # toy network
//   $ ./examples/partition_explorer yeast      # yeast Network I, small scale
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bitset/bitset64.hpp"
#include "bitset/dynbitset.hpp"
#include "core/combined.hpp"
#include "core/estimate.hpp"
#include "models/toy.hpp"
#include "models/yeast.hpp"
#include "support/format.hpp"

namespace {

struct Scored {
  std::vector<std::size_t> rows;
  double estimated_pairs = 0.0;
  std::uint64_t measured_pairs = 0;
};

template <typename Support>
void explore(const elmo::EfmProblem<elmo::CheckedI64>& problem,
             std::size_t max_qsub) {
  using namespace elmo;
  // Candidate pool: the trailing reversible reactions (at most 4).
  std::vector<std::size_t> pool;
  try {
    pool = select_partition_rows(problem, OrderingOptions{}, 4);
  } catch (const InvalidArgumentError&) {
    for (std::size_t n = 3; n >= 1; --n) {
      try {
        pool = select_partition_rows(problem, OrderingOptions{}, n);
        break;
      } catch (const InvalidArgumentError&) {
        if (n == 1) throw;
      }
    }
  }
  std::printf("partition candidate pool:");
  for (std::size_t row : pool)
    std::printf(" %s", problem.reaction_names[row].c_str());
  std::printf("\n\n%-28s %16s %16s\n", "subset", "estimated pairs",
              "measured pairs");

  std::vector<Scored> scored;
  // All non-empty subsets of the pool up to max_qsub reactions.
  for (std::uint64_t mask = 1; mask < (1ULL << pool.size()); ++mask) {
    std::vector<std::size_t> rows;
    for (std::size_t k = 0; k < pool.size(); ++k)
      if ((mask >> k) & 1) rows.push_back(pool[k]);
    if (rows.size() > max_qsub) continue;

    Scored entry;
    entry.rows = rows;
    EstimateOptions opts;
    opts.pair_budget = 1'000'000;
    entry.estimated_pairs =
        estimate_partition_cost<CheckedI64, Support>(problem, rows, opts);

    CombinedOptions combined;
    for (std::size_t row : rows)
      combined.partition_reactions.push_back(problem.reaction_names[row]);
    combined.num_ranks = 1;
    auto run = solve_combined<CheckedI64, Support>(problem, combined);
    entry.measured_pairs = run.total.total_pairs_probed;

    std::string label;
    for (std::size_t row : rows) {
      if (!label.empty()) label += ',';
      label += problem.reaction_names[row];
    }
    std::printf("%-28s %16s %16s\n", label.c_str(),
                with_commas(static_cast<std::uint64_t>(
                    entry.estimated_pairs)).c_str(),
                with_commas(entry.measured_pairs).c_str());
    scored.push_back(std::move(entry));
  }

  // How good is the estimator as a ranking?  Count order inversions.
  std::size_t inversions = 0;
  std::size_t comparisons = 0;
  for (std::size_t a = 0; a < scored.size(); ++a) {
    for (std::size_t b = a + 1; b < scored.size(); ++b) {
      if (scored[a].measured_pairs == scored[b].measured_pairs) continue;
      ++comparisons;
      bool est_says_a = scored[a].estimated_pairs < scored[b].estimated_pairs;
      bool truth_says_a = scored[a].measured_pairs < scored[b].measured_pairs;
      if (est_says_a != truth_says_a) ++inversions;
    }
  }
  if (comparisons) {
    std::printf("\nestimator ranking agreement: %zu/%zu pairwise orders "
                "correct\n",
                comparisons - inversions, comparisons);
  }
  // And the recommendation:
  auto best = std::min_element(scored.begin(), scored.end(),
                               [](const Scored& a, const Scored& b) {
                                 return a.estimated_pairs < b.estimated_pairs;
                               });
  if (best != scored.end()) {
    std::printf("recommended partition:");
    for (std::size_t row : best->rows)
      std::printf(" %s", problem.reaction_names[row].c_str());
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace elmo;
  const bool yeast = argc > 1 && !std::strcmp(argv[1], "yeast");

  Network network;
  if (yeast) {
    network = models::yeast_network_1();
    std::vector<ReactionId> trim;
    for (const char* name : {"R15", "R33", "R41", "R46", "R92r", "R98",
                             "R100", "R77", "R101"}) {
      if (auto id = network.find_reaction(name)) trim.push_back(*id);
    }
    network = network.without_reactions(trim);
    std::printf("network: yeast Network I (demo scale)\n");
  } else {
    network = models::toy_network();
    std::printf("network: toy (Fig. 1)\n");
  }

  auto compressed = compress(network);
  auto problem = to_problem<CheckedI64>(compressed);
  if (compressed.num_reactions() + network.num_reversible_reactions() <=
      Bitset64::capacity()) {
    explore<Bitset64>(problem, yeast ? 3 : 2);
  } else {
    explore<DynBitset>(problem, yeast ? 3 : 2);
  }
  return 0;
}
