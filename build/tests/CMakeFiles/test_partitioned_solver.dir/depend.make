# Empty dependencies file for test_partitioned_solver.
# This may be replaced when dependencies are built.
