// Overflow-checked 64-bit signed integer.
//
// CheckedI64 is the default scalar for the Nullspace Algorithm kernel: flux
// column entries stay small after gcd normalisation, so native arithmetic is
// almost always sufficient — but Bareiss elimination and the biomass-scale
// stoichiometric coefficients in the yeast networks can overflow.  Every
// operation detects overflow (via compiler builtins) and throws
// OverflowError, which the solver catches to retry with BigInt.
#pragma once

#include <compare>
#include <cstdint>
#include <numeric>
#include <string>

#include "support/error.hpp"

namespace elmo {

class CheckedI64 {
 public:
  constexpr CheckedI64() = default;
  constexpr CheckedI64(std::int64_t v)  // NOLINT(google-explicit-constructor)
      : value_(v) {}

  [[nodiscard]] constexpr std::int64_t value() const { return value_; }
  [[nodiscard]] constexpr bool is_zero() const { return value_ == 0; }
  [[nodiscard]] constexpr int sign() const {
    return value_ == 0 ? 0 : (value_ < 0 ? -1 : 1);
  }
  [[nodiscard]] double to_double() const {
    return static_cast<double>(value_);
  }
  [[nodiscard]] std::string to_string() const {
    return std::to_string(value_);
  }

  CheckedI64& operator+=(CheckedI64 rhs) {
    if (__builtin_add_overflow(value_, rhs.value_, &value_))
      throw OverflowError("CheckedI64: addition overflow");
    return *this;
  }
  CheckedI64& operator-=(CheckedI64 rhs) {
    if (__builtin_sub_overflow(value_, rhs.value_, &value_))
      throw OverflowError("CheckedI64: subtraction overflow");
    return *this;
  }
  CheckedI64& operator*=(CheckedI64 rhs) {
    if (__builtin_mul_overflow(value_, rhs.value_, &value_))
      throw OverflowError("CheckedI64: multiplication overflow");
    return *this;
  }
  CheckedI64& operator/=(CheckedI64 rhs) {
    if (rhs.value_ == 0)
      throw InvalidArgumentError("CheckedI64: division by zero");
    if (value_ == INT64_MIN && rhs.value_ == -1)
      throw OverflowError("CheckedI64: INT64_MIN / -1 overflow");
    value_ /= rhs.value_;
    return *this;
  }
  CheckedI64& operator%=(CheckedI64 rhs) {
    if (rhs.value_ == 0)
      throw InvalidArgumentError("CheckedI64: modulo by zero");
    if (value_ == INT64_MIN && rhs.value_ == -1) {
      value_ = 0;
      return *this;
    }
    value_ %= rhs.value_;
    return *this;
  }

  [[nodiscard]] CheckedI64 operator-() const {
    if (value_ == INT64_MIN)
      throw OverflowError("CheckedI64: negation overflow");
    return CheckedI64(-value_);
  }

  friend CheckedI64 operator+(CheckedI64 a, CheckedI64 b) { return a += b; }
  friend CheckedI64 operator-(CheckedI64 a, CheckedI64 b) { return a -= b; }
  friend CheckedI64 operator*(CheckedI64 a, CheckedI64 b) { return a *= b; }
  friend CheckedI64 operator/(CheckedI64 a, CheckedI64 b) { return a /= b; }
  friend CheckedI64 operator%(CheckedI64 a, CheckedI64 b) { return a %= b; }

  friend constexpr bool operator==(CheckedI64 a, CheckedI64 b) = default;
  friend constexpr std::strong_ordering operator<=>(CheckedI64 a,
                                                    CheckedI64 b) = default;

  static CheckedI64 gcd(CheckedI64 a, CheckedI64 b) {
    // std::gcd over the absolute values; INT64_MIN has no representable
    // absolute value, so guard it explicitly.
    if (a.value_ == INT64_MIN || b.value_ == INT64_MIN)
      throw OverflowError("CheckedI64: gcd overflow");
    std::int64_t x = a.value_ < 0 ? -a.value_ : a.value_;
    std::int64_t y = b.value_ < 0 ? -b.value_ : b.value_;
    return CheckedI64(std::gcd(x, y));
  }

  [[nodiscard]] CheckedI64 abs() const {
    if (value_ == INT64_MIN) throw OverflowError("CheckedI64: abs overflow");
    return CheckedI64(value_ < 0 ? -value_ : value_);
  }

  [[nodiscard]] CheckedI64 exact_div(CheckedI64 divisor) const {
    CheckedI64 result = *this;
    result /= divisor;
    return result;
  }

 private:
  std::int64_t value_ = 0;
};

// Free-function helpers for code that keeps raw std::int64_t (sizes,
// counters, work estimates) but must not overflow silently.  These are what
// elmo_analyze's overflow-boundary pass points at when it flags raw `*`,
// `+` or `<<` on int64 expressions in the numeric kernels.

/// a + b, throwing OverflowError instead of wrapping.
inline std::int64_t checked_add(std::int64_t a, std::int64_t b) {
  std::int64_t out = 0;
  if (__builtin_add_overflow(a, b, &out))
    throw OverflowError("checked_add: addition overflow");
  return out;
}

/// a - b, throwing OverflowError instead of wrapping.
inline std::int64_t checked_sub(std::int64_t a, std::int64_t b) {
  std::int64_t out = 0;
  if (__builtin_sub_overflow(a, b, &out))
    throw OverflowError("checked_sub: subtraction overflow");
  return out;
}

/// a * b, throwing OverflowError instead of wrapping.
inline std::int64_t checked_mul(std::int64_t a, std::int64_t b) {
  std::int64_t out = 0;
  if (__builtin_mul_overflow(a, b, &out))
    throw OverflowError("checked_mul: multiplication overflow");
  return out;
}

/// a << shift for non-negative a, throwing OverflowError when a bit would
/// be shifted out (signed left shift past the value range is UB before it
/// is ever a wrong answer).
inline std::int64_t checked_shl(std::int64_t a, unsigned shift) {
  if (a < 0) throw InvalidArgumentError("checked_shl: negative value");
  if (shift >= 63 || (shift > 0 && a > (INT64_MAX >> shift)))
    throw OverflowError("checked_shl: shift overflow");
  return a << shift;  // lint:allow(overflow) guarded by the range check above
}

}  // namespace elmo
