// Tests for the sparse amortized rank-test engine: differential agreement
// with the exact Bareiss and dense-modular backends, warm-start semantics,
// adversarial modular edge cases, and end-to-end solver equivalence.
#include "nullspace/sparse_rank.hpp"

#include <gtest/gtest.h>

#include "bitset/bitset64.hpp"
#include "bitset/dynbitset.hpp"
#include "compress/compression.hpp"
#include "efm_test_util.hpp"
#include "linalg/sparse.hpp"
#include "models/random_network.hpp"
#include "models/toy.hpp"
#include "models/yeast.hpp"
#include "nullspace/iteration.hpp"
#include "nullspace/solver.hpp"
#include "support/random.hpp"

namespace elmo {
namespace {

using modular::kPrime;

TEST(SparseCsc, BuildSkipsZerosAndKeepsSliceOrder) {
  // 3x4 dense, minor = rows: entries (row, col) -> row * 10 + col + 1 on a
  // fixed pattern.
  const int dense[3][4] = {{1, 0, 2, 0},  //
                           {0, 0, 3, 0},  //
                           {4, 0, 0, 5}};
  auto m = SparseCscU64::build(3, 4, [&](std::size_t i, std::size_t j) {
    return static_cast<std::uint64_t>(dense[i][j]);
  });
  EXPECT_EQ(m.minor_count(), 3u);
  EXPECT_EQ(m.major_count(), 4u);
  EXPECT_EQ(m.nnz(), 5u);
  EXPECT_EQ(m.count(0), 2u);
  EXPECT_EQ(m.count(1), 0u);
  EXPECT_EQ(m.count(2), 2u);
  EXPECT_EQ(m.count(3), 1u);
  EXPECT_EQ(m.indices(0)[0], 0u);
  EXPECT_EQ(m.indices(0)[1], 2u);
  EXPECT_EQ(m.values(0)[0], 1u);
  EXPECT_EQ(m.values(0)[1], 4u);
  EXPECT_EQ(m.indices(3)[0], 2u);
  EXPECT_EQ(m.values(3)[0], 5u);
}

TEST(SparseRankTester, MatchesDenseAndExactOnToyAllSupports) {
  auto compressed = compress(models::toy_network());
  auto problem = to_problem<CheckedI64>(compressed);
  auto basis = compute_initial_basis<CheckedI64, Bitset64>(problem);
  SparseRankTester<CheckedI64> sparse(problem.stoichiometry, basis.columns);
  ModularRankTester<CheckedI64> dense(problem.stoichiometry, basis.columns);
  RankTester<CheckedI64> exact(problem.stoichiometry);

  for (std::uint64_t bits = 0; bits < 256; ++bits) {
    Bitset64 support(bits);
    const bool expected = exact.is_elementary(support);
    EXPECT_EQ(sparse.is_elementary(support), expected) << "support " << bits;
    EXPECT_EQ(dense.is_elementary(support), expected) << "support " << bits;
  }
}

TEST(SparseRankTester, MatchesExactOnYeastBoundarySupports) {
  auto compressed = compress(models::yeast_network_1());
  auto prepared = prepare_problem(to_problem<CheckedI64>(compressed));
  const auto& problem = prepared.problem;
  auto basis = compute_initial_basis<CheckedI64, DynBitset>(problem);
  SparseRankTester<CheckedI64> sparse(problem.stoichiometry, basis.columns);
  RankTester<CheckedI64> exact(problem.stoichiometry);

  // Seeded supports straddling the accept boundary (rank - 1 .. rank + 1).
  Rng rng(17);
  const std::size_t q = problem.num_reactions();
  for (int iter = 0; iter < 200; ++iter) {
    DynBitset support(q);
    std::size_t size = basis.stoichiometry_rank - 1 + rng.below(3);
    while (support.count() < size) support.set(rng.below(q));
    EXPECT_EQ(sparse.is_elementary(support), exact.is_elementary(support))
        << "iter " << iter;
  }
  EXPECT_GT(sparse.stats().tests, 0u);
  EXPECT_EQ(sparse.stats().tests,
            sparse.stats().sparse_hits + sparse.stats().dense_fallbacks);
}

TEST(SparseRankTester, ForcedSidesAgreeWithExact) {
  auto compressed = compress(models::yeast_network_1());
  auto prepared = prepare_problem(to_problem<CheckedI64>(compressed));
  const auto& problem = prepared.problem;
  auto basis = compute_initial_basis<CheckedI64, DynBitset>(problem);
  SparseRankConfig n_config;
  n_config.force_side = RankTestSide::kNSide;
  SparseRankConfig k_config;
  k_config.force_side = RankTestSide::kKSide;
  SparseRankTester<CheckedI64> n_side(problem.stoichiometry, basis.columns,
                                      n_config);
  SparseRankTester<CheckedI64> k_side(problem.stoichiometry, basis.columns,
                                      k_config);
  RankTester<CheckedI64> exact(problem.stoichiometry);

  Rng rng(23);
  const std::size_t q = problem.num_reactions();
  for (int iter = 0; iter < 120; ++iter) {
    DynBitset support(q);
    std::size_t size = basis.stoichiometry_rank - 1 + rng.below(3);
    while (support.count() < size) support.set(rng.below(q));
    const bool expected = exact.is_elementary(support);
    EXPECT_EQ(n_side.is_elementary(support), expected) << "iter " << iter;
    EXPECT_EQ(k_side.is_elementary(support), expected) << "iter " << iter;
  }
}

// Build solver-shaped candidate supports for one iteration: union of a
// positive and a negative column's support, minus the processed row.
template <typename Support, typename Columns>
std::vector<Support> iteration_candidates(const Columns& columns,
                                          const RowClassification& cls,
                                          std::size_t row, std::size_t q,
                                          std::size_t cap) {
  std::vector<Support> out;
  std::vector<std::uint32_t> scratch;
  for (std::uint32_t i : cls.positive) {
    for (std::uint32_t j : cls.negative) {
      if (out.size() >= cap) return out;
      Support support(q);
      scratch.clear();
      columns[i].support.append_indices(scratch);
      columns[j].support.append_indices(scratch);
      for (std::uint32_t r : scratch) {
        if (r != row) support.set(r);
      }
      out.push_back(std::move(support));
    }
  }
  return out;
}

TEST(SparseRankTester, WarmStartMatchesColdVerdicts) {
  auto compressed = compress(models::yeast_network_1());
  auto prepared = prepare_problem(to_problem<CheckedI64>(compressed));
  const auto& problem = prepared.problem;
  auto basis = compute_initial_basis<CheckedI64, DynBitset>(problem);
  const std::size_t q = problem.num_reactions();

  SparseRankConfig k_config;
  k_config.force_side = RankTestSide::kKSide;
  SparseRankTester<CheckedI64> warm(problem.stoichiometry, basis.columns,
                                    k_config);
  SparseRankTester<CheckedI64> cold(problem.stoichiometry, basis.columns,
                                    k_config);
  RankTester<CheckedI64> exact(problem.stoichiometry);

  // First processing row whose classification yields actual pairs.
  std::size_t row = q;
  RowClassification cls;
  for (std::size_t r : basis.processing_order) {
    cls = classify_row(basis.columns, r);
    if (!cls.positive.empty() && !cls.negative.empty()) {
      row = r;
      break;
    }
  }
  ASSERT_LT(row, q);
  const auto common = iteration_common_zero_rows(basis.columns, cls.positive,
                                                 cls.negative, row);
  warm.begin_iteration(common);

  const auto candidates = iteration_candidates<DynBitset>(
      basis.columns, cls, row, q, /*cap=*/200);
  for (std::size_t c = 0; c < candidates.size(); ++c) {
    const bool expected = exact.is_elementary(candidates[c]);
    EXPECT_EQ(warm.is_elementary(candidates[c]), expected) << "pair " << c;
    EXPECT_EQ(cold.is_elementary(candidates[c]), expected) << "pair " << c;
  }
  EXPECT_GT(warm.stats().warmstart_reuses, 0u);
  EXPECT_EQ(cold.stats().warmstart_reuses, 0u);
}

TEST(SparseRankTester, IntersectingSupportIsServedColdAndCorrect) {
  auto compressed = compress(models::yeast_network_1());
  auto prepared = prepare_problem(to_problem<CheckedI64>(compressed));
  const auto& problem = prepared.problem;
  auto basis = compute_initial_basis<CheckedI64, DynBitset>(problem);
  const std::size_t q = problem.num_reactions();

  SparseRankConfig k_config;
  k_config.force_side = RankTestSide::kKSide;
  SparseRankTester<CheckedI64> tester(problem.stoichiometry, basis.columns,
                                      k_config);
  RankTester<CheckedI64> exact(problem.stoichiometry);

  const std::size_t row = basis.processing_order.front();
  auto cls = classify_row(basis.columns, row);
  const auto common = iteration_common_zero_rows(basis.columns, cls.positive,
                                                 cls.negative, row);
  ASSERT_FALSE(common.empty());
  tester.begin_iteration(common);

  // Supports deliberately violating the cache contract (they contain cached
  // rows) must be detected per call and answered correctly anyway.
  Rng rng(29);
  for (int iter = 0; iter < 60; ++iter) {
    DynBitset support(q);
    std::size_t size = basis.stoichiometry_rank - 1 + rng.below(3);
    while (support.count() < size) support.set(rng.below(q));
    support.set(common[rng.below(common.size())]);
    EXPECT_EQ(tester.is_elementary(support), exact.is_elementary(support))
        << "iter " << iter;
  }
  EXPECT_EQ(tester.stats().warmstart_reuses, 0u);
}

TEST(SparseRankTester, WorksWithBigIntScalars) {
  auto compressed = compress(models::toy_network());
  auto problem = to_problem<BigInt>(compressed);
  auto basis = compute_initial_basis<BigInt, Bitset64>(problem);
  SparseRankTester<BigInt> sparse(problem.stoichiometry, basis.columns);
  RankTester<BigInt> exact(problem.stoichiometry);
  for (std::uint64_t bits = 1; bits < 256; ++bits) {
    Bitset64 support(bits);
    EXPECT_EQ(sparse.is_elementary(support), exact.is_elementary(support));
  }
}

TEST(SparseRankTester, OverflowRangeEntriesReduceCorrectly) {
  // Coefficients far outside int64 exercise from_scalar(BigInt) in both the
  // rref construction and the kernel row store.
  const BigInt huge = BigInt::from_string("91343852333181432387730302044767688728495783936");
  Matrix<BigInt> n(2, 4);
  n(0, 0) = huge;
  n(0, 1) = BigInt(1);
  n(0, 2) = huge * BigInt(2);
  n(0, 3) = BigInt(0);
  n(1, 0) = BigInt(0);
  n(1, 1) = huge;
  n(1, 2) = BigInt(3);
  n(1, 3) = huge + BigInt(1);
  EfmProblem<BigInt> problem;
  problem.stoichiometry = n;
  problem.reversible.assign(4, false);
  problem.reaction_names = {"R1", "R2", "R3", "R4"};
  auto basis = compute_initial_basis<BigInt, Bitset64>(problem);
  SparseRankTester<BigInt> sparse(problem.stoichiometry, basis.columns);
  RankTester<BigInt> exact(problem.stoichiometry);
  for (std::uint64_t bits = 0; bits < 16; ++bits) {
    Bitset64 support(bits);
    EXPECT_EQ(sparse.is_elementary(support), exact.is_elementary(support))
        << "support " << bits;
  }
}

TEST(SparseRankTester, PDivisibleMinorIsTheDocumentedMonteCarloMiss) {
  // N = [[1, 1, 2], [1, 1+p, 2]]: the {0,1} minor has determinant exactly
  // p, so rank_p(N[:,{0,1}]) = 1 while the exact rank is 2.  The N-side
  // formulation therefore false-accepts — the ~2^-45 Monte-Carlo event the
  // modular testers document — while the K-side formulation, built from the
  // EXACT kernel (here span{(2, 0, -1)}), still matches Bareiss.
  const BigInt p(static_cast<std::int64_t>(kPrime));
  Matrix<BigInt> n(2, 3);
  n(0, 0) = BigInt(1);
  n(0, 1) = BigInt(1);
  n(0, 2) = BigInt(2);
  n(1, 0) = BigInt(1);
  n(1, 1) = p + BigInt(1);
  n(1, 2) = BigInt(2);
  std::vector<FluxColumn<BigInt, Bitset64>> kernel;
  kernel.push_back(FluxColumn<BigInt, Bitset64>::from_values(
      {BigInt(2), BigInt(0), BigInt(-1)}));

  RankTester<BigInt> exact(n);
  Bitset64 support(0b011);
  EXPECT_FALSE(exact.is_elementary(support));

  SparseRankConfig n_config;
  n_config.force_side = RankTestSide::kNSide;
  SparseRankTester<BigInt> n_side(n, kernel, n_config);
  EXPECT_EQ(n_side.stoichiometry_rank_mod_p(), 1u);  // exact rank is 2
  EXPECT_TRUE(n_side.is_elementary(support));        // the false accept

  SparseRankConfig k_config;
  k_config.force_side = RankTestSide::kKSide;
  SparseRankTester<BigInt> k_side(n, kernel, k_config);
  EXPECT_FALSE(k_side.is_elementary(support));
}

TEST(SparseRankTester, EdgeSupports) {
  // One zero column: its singleton support is a one-dimensional nullspace
  // (accept); the empty support and oversize supports always reject.
  Matrix<CheckedI64> n(2, 4);
  n(0, 0) = CheckedI64(1);
  n(0, 2) = CheckedI64(1);
  n(1, 1) = CheckedI64(1);
  n(1, 2) = CheckedI64(-1);
  // Column 3 is identically zero.
  EfmProblem<CheckedI64> problem;
  problem.stoichiometry = n;
  problem.reversible.assign(4, false);
  problem.reaction_names = {"R1", "R2", "R3", "R4"};
  auto basis = compute_initial_basis<CheckedI64, Bitset64>(problem);
  SparseRankTester<CheckedI64> sparse(problem.stoichiometry, basis.columns);
  RankTester<CheckedI64> exact(problem.stoichiometry);

  EXPECT_FALSE(sparse.is_elementary(Bitset64(0b0000)));
  EXPECT_TRUE(sparse.is_elementary(Bitset64(0b1000)));   // the zero column
  EXPECT_FALSE(sparse.is_elementary(Bitset64(0b1111)));  // nullity 2
  for (std::uint64_t bits = 0; bits < 16; ++bits) {
    Bitset64 support(bits);
    EXPECT_EQ(sparse.is_elementary(support), exact.is_elementary(support))
        << "support " << bits;
  }
}

TEST(SparseRankTester, DrainStatsMovesAndResets) {
  auto compressed = compress(models::toy_network());
  auto problem = to_problem<CheckedI64>(compressed);
  auto basis = compute_initial_basis<CheckedI64, Bitset64>(problem);
  SparseRankTester<CheckedI64> sparse(problem.stoichiometry, basis.columns);
  for (std::uint64_t bits = 1; bits < 64; ++bits) {
    sparse.is_elementary(Bitset64(bits));
  }
  const auto before = sparse.stats();
  EXPECT_GT(before.tests, 0u);
  IterationStats iteration;
  sparse.drain_stats(iteration);
  EXPECT_EQ(iteration.rank_sparse_hits, before.sparse_hits);
  EXPECT_EQ(iteration.rank_dense_fallbacks, before.dense_fallbacks);
  EXPECT_EQ(iteration.rank_gathered_nnz, before.gathered_nnz);
  EXPECT_EQ(sparse.stats().tests, 0u);
  EXPECT_EQ(sparse.stats().gathered_nnz, 0u);
}

TEST(IterationCommonZeroRows, ReturnsUntouchedRowsPlusProcessedRow) {
  using Column = FluxColumn<CheckedI64, Bitset64>;
  std::vector<Column> columns;
  columns.push_back(Column::from_values(
      {CheckedI64(1), CheckedI64(0), CheckedI64(-1), CheckedI64(0),
       CheckedI64(0)}));
  columns.push_back(Column::from_values(
      {CheckedI64(0), CheckedI64(1), CheckedI64(1), CheckedI64(0),
       CheckedI64(0)}));
  columns.push_back(Column::from_values(
      {CheckedI64(0), CheckedI64(0), CheckedI64(0), CheckedI64(1),
       CheckedI64(1)}));
  // Pair columns 0 (positive) and 1 (negative) on row 2; column 2 is not in
  // the pairing, so its rows 3 and 4 stay untouched.
  const auto common = iteration_common_zero_rows(
      columns, std::vector<std::uint32_t>{0}, std::vector<std::uint32_t>{1},
      /*row=*/2);
  EXPECT_EQ(common, (std::vector<std::uint32_t>{2, 3, 4}));
}

TEST(SparseRankTester, SolverBackendsAgree) {
  Network net = models::toy_network();
  auto compressed = compress(net);
  auto problem = to_problem<CheckedI64>(compressed);
  SolverOptions exact;
  exact.rank_backend = RankTestBackend::kExact;
  SolverOptions sparse;
  sparse.rank_backend = RankTestBackend::kSparse;
  auto a = solve_efms<CheckedI64, Bitset64>(problem, exact);
  auto b = solve_efms<CheckedI64, Bitset64>(problem, sparse);
  EXPECT_EQ(expand_and_canonicalize(a.columns, compressed, net),
            expand_and_canonicalize(b.columns, compressed, net));
  EXPECT_GT(b.stats.total_rank_sparse_hits + b.stats.total_rank_dense_fallbacks,
            0u);
  EXPECT_EQ(a.stats.total_rank_sparse_hits, 0u);

  for (std::uint64_t seed = 80; seed < 92; ++seed) {
    models::RandomNetworkSpec spec;
    spec.seed = seed;
    spec.num_metabolites = 5 + seed % 3;
    Network random_net = models::random_network(spec);
    auto c = compress(random_net);
    auto p = to_problem<CheckedI64>(c);
    auto x = solve_efms<CheckedI64, Bitset64>(p, exact);
    auto y = solve_efms<CheckedI64, Bitset64>(p, sparse);
    EXPECT_EQ(expand_and_canonicalize(x.columns, c, random_net),
              expand_and_canonicalize(y.columns, c, random_net))
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace elmo
