file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_ranktest.dir/bench_micro_ranktest.cpp.o"
  "CMakeFiles/bench_micro_ranktest.dir/bench_micro_ranktest.cpp.o.d"
  "bench_micro_ranktest"
  "bench_micro_ranktest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_ranktest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
