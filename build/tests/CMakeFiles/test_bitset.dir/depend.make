# Empty dependencies file for test_bitset.
# This may be replaced when dependencies are built.
