#!/usr/bin/env bash
# Performance records: runs bench_candidates and bench_ranktest and writes
# BENCH_candidates.json (per-scenario pairs/sec, survivors/sec, and the
# engine-vs-reference speedup, plus the end-to-end first-iterations time on
# the real yeast network) and BENCH_ranktest.json (sparse rank-test engine
# vs the dense-modular reference on harvested candidate populations, plus
# the knockout-yeast end-to-end rank-phase seconds).
#
# Usage:
#   scripts/bench.sh                      measure, write both records
#   scripts/bench.sh --compare [FILE]     also gate against committed
#                                         baselines (default: the repo's
#                                         BENCH_candidates.json and
#                                         BENCH_ranktest.json): fails when
#                                         any gated scenario's speedup drops
#                                         more than 10% relative, the yeast-
#                                         width pretest speedup falls under
#                                         2x (ISSUE 4), or the rank-engine
#                                         yeast1_boundary speedup falls
#                                         under 3x (ISSUE 9).  The optional
#                                         FILE overrides the candidates
#                                         baseline only.
#   BENCH_OUT=path                        override the candidates output.
#   BENCH_RANKTEST_OUT=path               override the ranktest output.
#   BENCH_TRAJECTORY=path                 override the trajectory history
#                                         file (default BENCH_trajectory.jsonl)
#   BENCH_LEDGER=path                     also record a small end-to-end
#                                         solve in a run ledger and gate it
#                                         with `elmo_stat check` against the
#                                         previous entry (run-to-run
#                                         regression sentinel)
#
# Every invocation also APPENDS one line to BENCH_trajectory.jsonl —
# timestamp, git sha, and the full results document — so the performance
# history survives BENCH_candidates.json being overwritten in place.
#
# Speedups are in-binary ratios (engine vs the reference loop compiled into
# the same binary), so the gate is portable across machines; absolute
# seconds in the record are informational.
set -euo pipefail
cd "$(dirname "$0")/.."

COMPARE=0
BASELINE="BENCH_candidates.json"
RANK_BASELINE="BENCH_ranktest.json"
OUT="${BENCH_OUT:-BENCH_candidates.json}"
RANK_OUT="${BENCH_RANKTEST_OUT:-BENCH_ranktest.json}"
REPS="${BENCH_REPS:-5}"
while [[ $# -gt 0 ]]; do
  case "$1" in
    --compare)
      COMPARE=1
      if [[ $# -gt 1 && "$2" != --* ]]; then
        BASELINE="$2"
        shift
      fi
      ;;
    *)
      echo "unknown argument: $1" >&2
      exit 1
      ;;
  esac
  shift
done

run() { echo "+ $*" >&2; "$@"; }

run cmake -B build -S . >/dev/null
run cmake --build build -j"$(nproc)" --target bench_candidates bench_ranktest

ARGS=(--reps "${REPS}" --json "${OUT}")
RANK_ARGS=(--reps "${REPS}" --json "${RANK_OUT}")
if [[ "${COMPARE}" == "1" ]]; then
  if [[ ! -f "${BASELINE}" ]]; then
    echo "baseline ${BASELINE} not found" >&2
    exit 1
  fi
  if [[ ! -f "${RANK_BASELINE}" ]]; then
    echo "baseline ${RANK_BASELINE} not found" >&2
    exit 1
  fi
  # Gate against copies: when OUT == BASELINE the fresh record must not
  # clobber the baseline before it is read.
  BASELINE_COPY="$(mktemp)"
  RANK_BASELINE_COPY="$(mktemp)"
  trap 'rm -f "${BASELINE_COPY}" "${RANK_BASELINE_COPY}"' EXIT
  cp "${BASELINE}" "${BASELINE_COPY}"
  cp "${RANK_BASELINE}" "${RANK_BASELINE_COPY}"
  ARGS+=(--baseline "${BASELINE_COPY}" --max-regression-pct 10
         --min-speedup 2)
  RANK_ARGS+=(--baseline "${RANK_BASELINE_COPY}" --max-regression-pct 10
              --min-speedup 3)
fi

run ./build/bench/bench_candidates "${ARGS[@]}"
echo "wrote ${OUT}"
run ./build/bench/bench_ranktest "${RANK_ARGS[@]}"
echo "wrote ${RANK_OUT}"

# Trajectory: append this measurement to the history file instead of only
# overwriting the snapshot, so regressions can be traced back commit by
# commit.  One JSONL line: timestamp, git sha, the full results document.
TRAJECTORY="${BENCH_TRAJECTORY:-BENCH_trajectory.jsonl}"
TS="$(date -u +%Y-%m-%dT%H:%M:%SZ)"
SHA="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
printf '{"timestamp":"%s","git_sha":"%s","results":%s}\n' \
  "${TS}" "${SHA}" "$(tr '\n' ' ' < "${OUT}")" >> "${TRAJECTORY}"
printf '{"timestamp":"%s","git_sha":"%s","results":%s}\n' \
  "${TS}" "${SHA}" "$(tr '\n' ' ' < "${RANK_OUT}")" >> "${TRAJECTORY}"
echo "appended trajectory entries to ${TRAJECTORY}"

# Run-ledger sentinel: record a small end-to-end solve and compare it
# against the newest previous entry for the same workload.  The check is
# noise-aware (relative thresholds + absolute floors), so it only fails on
# material regressions; exit propagates, failing the bench run.
if [[ -n "${BENCH_LEDGER:-}" ]]; then
  run cmake --build build -j"$(nproc)" --target elmo_cli elmo_stat
  ELMO_GIT_DESCRIBE="${SHA}" run ./build/examples/elmo_cli --builtin toy \
    --algorithm combined --ranks 3 --partition r6r,r8r \
    --ledger "${BENCH_LEDGER}" -o /dev/null
  if [[ "$(wc -l < "${BENCH_LEDGER}")" -ge 2 ]]; then
    run ./build/tools/elmo_stat check "${BENCH_LEDGER}" \
      --baseline "${BENCH_LEDGER}"
  else
    echo "ledger ${BENCH_LEDGER} has a single entry; nothing to compare yet"
  fi
fi
