// elmo_analyze — interprocedural core: project-wide symbol table and call
// graph built on top of the offset-preserving stripper/lexer.
//
// One walk per file (a scope tracker generalizing the lock pass's)
// produces:
//
//   * FnDef      every function DEFINITION (body present), including
//                lambda literals.  Lambdas are named
//                `<parent>::$lambda:<line>` — the one-level template
//                instantiation naming: a lambda passed to
//                `parallel_for_dynamic(...)` identifies that call's
//                instantiation, and the call graph records both the
//                caller -> lambda edge and the lambda-argument attachment
//                on the call site itself.  A lambda bound to a variable
//                (`auto lane = [..]{..};`) is additionally resolvable by
//                that variable's name, so `lane(w)` edges land on the
//                lambda body.
//   * CallRef    every call site `ident(...)` inside a function body,
//                with the bare callee name, the member-access base when
//                spelled `base.callee(...)`, and the FnDef indices of any
//                lambda literals appearing in the argument list.
//   * VarDef     namespace-scope variables and `static` function locals
//                (the process-shared state the concurrency pass cares
//                about), plus per-class data-member tables — each with
//                atomic/const/mutex type flags scraped from the
//                declaration statement.
//   * per-FnDef  declared local names (parameters included), atomic-typed
//                locals, names of std::thread containers, guard token
//                spans (lock_guard/unique_lock/scoped_lock lifetimes),
//                and the set of exception types the function catches.
//
// Everything is heuristic (no real C++ parse), tuned on this repository:
// the passes that consume it bias toward silence on unresolvable shapes —
// a finding must name a symbol the tables actually resolved.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analyze/analyzer.hpp"
#include "analyze/lexer.hpp"

namespace elmo_analyze {

struct FnDef {
  std::string qname;          // namespace/class-qualified name
  std::size_t file = 0;       // index into Project::files
  std::size_t line = 0;       // 1-based definition line
  std::size_t body_begin = 0; // token index of the opening '{'
  std::size_t body_end = 0;   // token index of the closing '}'
  bool is_lambda = false;
  std::size_t parent = static_cast<std::size_t>(-1);  // enclosing FnDef
  std::string class_name;     // innermost enclosing class ("" when free)
  // Lambda capture model.
  bool capture_all_ref = false;   // [&]
  bool capture_all_val = false;   // [=]
  bool capture_this = false;      // [this] / [&] inside a member function
  std::set<std::string> ref_captures;  // [&name]
  std::set<std::string> val_captures;  // [name], [name = expr]
  // Body-local knowledge.
  std::set<std::string> locals;        // declared names + parameters
  std::set<std::string> atomic_locals; // locals of std::atomic type
  std::set<std::string> thread_vecs;   // locals holding std::thread objects
  std::set<std::string> catches;       // caught type names; "..." wildcard
  // Token ranges (within this file's token stream) where a scoped guard
  // constructed in THIS function is alive.
  std::vector<std::pair<std::size_t, std::size_t>> guard_spans;
};

struct CallRef {
  std::size_t caller = static_cast<std::size_t>(-1);  // FnDef index
  std::string callee;   // bare (last) identifier
  std::string base;     // `x` in x.callee(...) / x->callee(...), else ""
  bool member = false;  // spelled through . or ->
  std::size_t file = 0;
  std::size_t line = 0;
  std::size_t tok = 0;  // token index of the callee identifier
  std::vector<std::size_t> lambda_args;  // FnDef indices of lambda literals
};

struct VarDef {
  std::string name;
  std::string owner;  // declaring class qname, or "" for namespace scope
  std::size_t file = 0;
  std::size_t line = 0;
  bool is_atomic = false;
  bool is_const = false;
  bool is_mutex = false;
  bool is_thread = false;        // holds std::thread objects
  bool is_static_local = false;  // `static` local promoted to shared state
};

struct CallGraph {
  std::vector<FnDef> fns;
  std::vector<CallRef> calls;
  std::vector<VarDef> globals;  // namespace-scope vars + static locals
  // class qname -> member name -> flags.
  std::map<std::string, std::map<std::string, VarDef>> members;
  // Per-project-file token streams (indexes parallel Project::files).
  std::vector<std::vector<Token>> file_tokens;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// FnDef indices whose qualified name matches `callee`: exact, bare
  /// last component, suffix-qualified (`A::B::f` matches callee `B::f`),
  /// or a lambda bound to a variable of that name.
  [[nodiscard]] std::vector<std::size_t> resolve(
      const std::string& callee) const;

  /// Innermost FnDef (by body token range) containing token `tok` of
  /// `file`, preferring the deepest nested lambda.  npos when none.
  [[nodiscard]] std::size_t fn_at(std::size_t file, std::size_t tok) const;

  /// Is token `tok` of `fn`'s file inside a guard span of `fn` or of any
  /// FnDef nested within `fn` that also contains the token?
  [[nodiscard]] bool guarded_at(std::size_t fn, std::size_t tok) const;

  /// Global (or static-local) variable named `name`, or nullptr.
  [[nodiscard]] const VarDef* find_global(const std::string& name) const;

  /// Member `name` of class `cls` (exact class-name match), or nullptr.
  [[nodiscard]] const VarDef* find_member(const std::string& cls,
                                          const std::string& name) const;

  // Lookup tables, populated by build_callgraph; treat as read-only.
  std::map<std::string, std::vector<std::size_t>> by_bare_;
  std::map<std::string, std::vector<std::size_t>> lambda_aliases_;
  std::map<std::string, std::size_t> global_index_;
};

/// Build the project-wide graph.  Deterministic: files are walked in
/// Project order, tokens in stream order.
CallGraph build_callgraph(const Project& project);

}  // namespace elmo_analyze
