// elmo_analyze CLI entry point.  All logic lives in the analyze/ library
// so the elmo_lint compatibility shim can share it.
#include "analyze/analyzer.hpp"

int main(int argc, char** argv) {
  return elmo_analyze::run_cli(argc, argv);
}
