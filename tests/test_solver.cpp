// Algorithm 1 (serial Nullspace Algorithm) validation.
//
// The toy network's full trace is worked in the paper (Fig. 2, Eqs (4)-(7));
// these tests reproduce it exactly, then property-test the solver on random
// networks against the EFM invariants.
#include "nullspace/solver.hpp"

#include <gtest/gtest.h>

#include <set>

#include "bitset/bitset64.hpp"
#include "bitset/dynbitset.hpp"
#include "compress/compression.hpp"
#include "models/random_network.hpp"
#include "models/toy.hpp"
#include "nullspace/efm.hpp"
#include "efm_test_util.hpp"

namespace elmo {
namespace {

using Col64 = FluxColumn<CheckedI64, Bitset64>;

TEST(InitialBasis, ToyMatchesPaperShape) {
  auto problem = to_problem<CheckedI64>(compress(models::toy_network()));
  auto basis = compute_initial_basis<CheckedI64, Bitset64>(problem);
  // Paper Eq (5): 8 x 4 nullspace matrix, identity on rows r2, r4, r5, r7.
  ASSERT_EQ(basis.columns.size(), 4u);
  EXPECT_EQ(basis.stoichiometry_rank, 4u);
  // Processing order is the paper's: r1, r3, r6r, r8r (indices 0, 2, 5, 7).
  EXPECT_EQ(basis.processing_order,
            (std::vector<std::size_t>{0, 2, 5, 7}));
  // The free rows carry an identity: each of r2, r4, r5, r7 is 1 in exactly
  // one column and 0 elsewhere.
  const std::size_t free_rows[] = {1, 3, 4, 6};
  for (std::size_t k = 0; k < 4; ++k) {
    int ones = 0;
    for (std::size_t c = 0; c < 4; ++c) {
      auto v = basis.columns[c].values[free_rows[k]].value();
      EXPECT_TRUE(v == 0 || v == 1);
      if (v == 1) ++ones;
    }
    EXPECT_EQ(ones, 1);
  }
}

TEST(InitialBasis, ToyColumnsMatchPaperEq5) {
  auto problem = to_problem<CheckedI64>(compress(models::toy_network()));
  auto basis = compute_initial_basis<CheckedI64, Bitset64>(problem);
  // Eq (5) columns over rows r1, r2, r3, r4, r5, r6r, r7, r8r (reduced
  // reaction order).  Column order may differ; compare as a set.
  std::set<std::vector<std::int64_t>> expected = {
      {1, 1, 0, 0, 0, -1, 0, 1},
      {0, 0, 1, 1, 0, 1, 0, -1},
      {1, 0, 0, 0, 1, 0, 0, 1},
      {0, 0, -2, 0, 0, -2, 1, 1},
  };
  std::set<std::vector<std::int64_t>> actual;
  for (const auto& column : basis.columns) {
    std::vector<std::int64_t> v;
    for (const auto& value : column.values) v.push_back(value.value());
    actual.insert(v);
  }
  EXPECT_EQ(actual, expected);
}

TEST(Solver, ToyIterationTraceMatchesFig2) {
  auto problem = to_problem<CheckedI64>(compress(models::toy_network()));
  std::vector<IterationStats> trace;
  SolverOptions options;
  options.on_iteration = [&](const IterationStats& s) { trace.push_back(s); };
  auto result = solve_efms<CheckedI64, Bitset64>(problem, options);

  ASSERT_EQ(trace.size(), 4u);
  // Iteration 1 (row r1): all entries positive or zero — no candidates.
  EXPECT_EQ(trace[0].row, 0u);
  EXPECT_EQ(trace[0].negatives, 0u);
  EXPECT_EQ(trace[0].pairs_probed, 0u);
  EXPECT_EQ(trace[0].columns_after, 4u);
  // Iteration 2 (row r3): 1 pos x 1 neg, candidate accepted, negative
  // column removed (r3 irreversible): still 4 columns.
  EXPECT_EQ(trace[1].row, 2u);
  EXPECT_EQ(trace[1].pairs_probed, 1u);
  EXPECT_EQ(trace[1].accepted, 1u);
  EXPECT_EQ(trace[1].columns_after, 4u);
  // Iteration 3 (row r6r): 1 pos x 1 neg, accepted, negatives kept: 5.
  EXPECT_EQ(trace[2].row, 5u);
  EXPECT_EQ(trace[2].pairs_probed, 1u);
  EXPECT_EQ(trace[2].accepted, 1u);
  EXPECT_EQ(trace[2].columns_after, 5u);
  // Iteration 4 (row r8r): 2 pos x 2 neg = 4 candidates, 1 duplicate
  // removed, 3 rank-tested, all accepted: 8 final columns.
  EXPECT_EQ(trace[3].row, 7u);
  EXPECT_EQ(trace[3].pairs_probed, 4u);
  EXPECT_EQ(trace[3].duplicates_removed, 1u);
  EXPECT_EQ(trace[3].rank_tests, 3u);
  EXPECT_EQ(trace[3].accepted, 3u);
  EXPECT_EQ(trace[3].columns_after, 8u);

  EXPECT_EQ(result.columns.size(), 8u);
  EXPECT_EQ(result.stats.total_pairs_probed, 6u);
}

TEST(Solver, ToyEfmsMatchPaperEq7) {
  Network net = models::toy_network();
  auto compressed = compress(net);
  auto problem = to_problem<CheckedI64>(compressed);
  auto result = solve_efms<CheckedI64, Bitset64>(problem);

  auto modes = expand_and_canonicalize(result.columns, compressed, net);
  auto expected =
      canonical_modes_from_i64(models::toy_efms_paper(), net.reversibility());
  EXPECT_EQ(modes, expected);
}

TEST(Solver, ToyAgreesAcrossScalarKernels) {
  Network net = models::toy_network();
  auto compressed = compress(net);
  auto i64 = solve_efms<CheckedI64, Bitset64>(
      to_problem<CheckedI64>(compressed));
  auto big =
      solve_efms<BigInt, Bitset64>(to_problem<BigInt>(compressed));
  auto dbl =
      solve_efms<double, Bitset64>(to_problem<double>(compressed));
  auto a = expand_and_canonicalize(i64.columns, compressed, net);
  auto b = expand_and_canonicalize(big.columns, compressed, net);
  auto c = expand_and_canonicalize(dbl.columns, compressed, net);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
}

TEST(Solver, ToyAgreesWithDynBitsetSupports) {
  Network net = models::toy_network();
  auto compressed = compress(net);
  auto small = solve_efms<CheckedI64, Bitset64>(
      to_problem<CheckedI64>(compressed));
  auto dyn = solve_efms<CheckedI64, DynBitset>(
      to_problem<CheckedI64>(compressed));
  EXPECT_EQ(expand_and_canonicalize(small.columns, compressed, net),
            expand_and_canonicalize(dyn.columns, compressed, net));
}

TEST(Solver, CombinatorialTestAgreesWithRankTestOnToy) {
  Network net = models::toy_network();
  auto compressed = compress(net);
  auto problem = to_problem<CheckedI64>(compressed);
  SolverOptions comb;
  comb.test = ElementarityTest::kCombinatorial;
  auto a = solve_efms<CheckedI64, Bitset64>(problem);
  auto b = solve_efms<CheckedI64, Bitset64>(problem, comb);
  EXPECT_EQ(expand_and_canonicalize(a.columns, compressed, net),
            expand_and_canonicalize(b.columns, compressed, net));
}

TEST(Solver, OrderingHeuristicsDoNotChangeTheResult) {
  Network net = models::toy_network();
  auto compressed = compress(net);
  auto problem = to_problem<CheckedI64>(compressed);
  auto reference = expand_and_canonicalize(
      solve_efms<CheckedI64, Bitset64>(problem).columns, compressed,
      net);
  for (bool nnz : {false, true}) {
    for (bool rev_last : {false, true}) {
      SolverOptions options;
      options.ordering.sort_by_nonzeros = nnz;
      options.ordering.reversible_last = rev_last;
      auto result = solve_efms<CheckedI64, Bitset64>(problem, options);
      EXPECT_EQ(expand_and_canonicalize(result.columns, compressed, net),
                reference)
          << "nnz=" << nnz << " rev_last=" << rev_last;
    }
  }
}

TEST(Solver, CompressionDoesNotChangeTheResult) {
  Network net = models::toy_network();
  auto compressed = compress(net);
  auto raw = no_compression(net);
  auto a = expand_and_canonicalize(
      solve_efms<CheckedI64, Bitset64>(to_problem<CheckedI64>(compressed))
          .columns,
      compressed, net);
  auto b = expand_and_canonicalize(
      solve_efms<CheckedI64, Bitset64>(to_problem<CheckedI64>(raw))
          .columns,
      raw, net);
  EXPECT_EQ(a, b);
}

// ---- Property tests on random networks ----

class SolverRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SolverRandomTest, EfmInvariantsHold) {
  models::RandomNetworkSpec spec;
  spec.seed = GetParam();
  spec.num_metabolites = 4 + GetParam() % 4;
  spec.num_extra_reactions = 3 + GetParam() % 3;
  spec.num_exchanges = 2 + GetParam() % 3;
  Network net = models::random_network(spec);
  auto compressed = compress(net);
  auto problem = to_problem<CheckedI64>(compressed);
  auto result = solve_efms<CheckedI64, Bitset64>(problem);
  auto modes = expand_and_canonicalize(result.columns, compressed, net);
  check_efm_invariants(net, modes);
}

TEST_P(SolverRandomTest, CombinatorialAgreesWithRank) {
  models::RandomNetworkSpec spec;
  spec.seed = GetParam() * 31 + 7;
  spec.num_metabolites = 4 + GetParam() % 3;
  Network net = models::random_network(spec);
  auto compressed = compress(net);
  auto problem = to_problem<CheckedI64>(compressed);
  SolverOptions comb;
  comb.test = ElementarityTest::kCombinatorial;
  auto a = solve_efms<CheckedI64, Bitset64>(problem);
  auto b = solve_efms<CheckedI64, Bitset64>(problem, comb);
  EXPECT_EQ(expand_and_canonicalize(a.columns, compressed, net),
            expand_and_canonicalize(b.columns, compressed, net));
}

TEST_P(SolverRandomTest, CompressedAndUncompressedAgree) {
  models::RandomNetworkSpec spec;
  spec.seed = GetParam() * 17 + 3;
  spec.num_metabolites = 4 + GetParam() % 3;
  Network net = models::random_network(spec);
  auto compressed = compress(net);
  auto raw = no_compression(net);
  auto a = expand_and_canonicalize(
      solve_efms<CheckedI64, Bitset64>(to_problem<CheckedI64>(compressed))
          .columns,
      compressed, net);
  auto b = expand_and_canonicalize(
      solve_efms<CheckedI64, Bitset64>(to_problem<CheckedI64>(raw))
          .columns,
      raw, net);
  EXPECT_EQ(a, b);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverRandomTest,
                         ::testing::Range<std::uint64_t>(1, 25));

}  // namespace
}  // namespace elmo
