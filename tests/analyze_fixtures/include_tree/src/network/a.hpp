// Seeds include:cycle (with b.hpp).
#pragma once

#include "network/b.hpp"

struct AThing {
  int a = 0;
};

inline int use_b_from_a() { return BThing{}.b; }
