// Process-wide memory governance.
//
// The paper's intermediate-candidate explosion kills real runs by OOM long
// before they fail algorithmically: Algorithm 2 replicates the full matrix
// on every rank, and one bad iteration can double the footprint.  The
// MemoryGovernor gives the process a budget (`--mem-limit`) and a ledger of
// who is holding what, so the solver can *decide* — proceed, spill cold
// candidate blocks to disk, or refuse an iteration and let the
// divide-and-conquer driver re-split — instead of dying on std::bad_alloc.
//
// Accounting is subsystem-scoped (matrix storage, candidate slabs,
// checkpoint/spill buffers) and lease-based: a MemoryLease is an RAII slot
// that a solver instance updates with its current usage and that releases
// itself on destruction, so concurrent subsets and simulated ranks can all
// charge the same process-wide ledger without double-free bugs.
//
// Layering: resource depends only on support/ and the obs facade, so the
// same-layer modules that need it (nullspace, mpsim, core) can include it
// without creating a module cycle.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace elmo::resource {

/// Who is holding the memory.  Used for the per-subsystem breakdown in
/// report.json and for targeted pressure responses (candidate slabs can
/// spill; matrix storage cannot).
enum class Subsystem : int {
  kMatrix = 0,      // the live column matrix (per solve/rank replica)
  kCandidates = 1,  // transient candidate slabs inside one iteration
  kCheckpoint = 2,  // checkpoint encode/decode and spill I/O buffers
  kCount = 3,
};

const char* subsystem_name(Subsystem s);

/// Admission verdict for the next iteration's candidate generation.
enum class Admission {
  kProceed,  // projected footprint fits comfortably under the limit
  kSpill,    // it fits only if candidate blocks go out-of-core
  kReject,   // resident state alone busts the limit; caller must shrink
             // the problem (re-split) or run ungoverned
};

class MemoryGovernor {
 public:
  /// The process-wide instance every subsystem charges.
  static MemoryGovernor& global();

  MemoryGovernor() = default;
  MemoryGovernor(const MemoryGovernor&) = delete;
  MemoryGovernor& operator=(const MemoryGovernor&) = delete;

  /// Set the process budget in bytes.  0 disables governance: leases still
  /// account (the ledger is free), but admit() always answers kProceed.
  void set_limit(std::size_t bytes);
  [[nodiscard]] std::size_t limit() const {
    return limit_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const { return limit() != 0; }

  /// Current charged bytes, total and per subsystem.
  [[nodiscard]] std::size_t usage() const;
  [[nodiscard]] std::size_t usage(Subsystem s) const {
    return usage_[static_cast<int>(s)].load(std::memory_order_relaxed);
  }
  /// High-water mark of the charged total.
  [[nodiscard]] std::size_t peak_usage() const {
    return peak_.load(std::memory_order_relaxed);
  }

  /// Coarse admission check for work that will transiently allocate about
  /// `projected_bytes` on top of the current resident charge.  Spill
  /// triggers early (at the half-limit watermark) because a candidate
  /// explosion can double the footprint within one iteration.  The solver
  /// loops do not gamble on this projection — under a limit they always
  /// run the chunked out-of-core driver, which decides per chunk from the
  /// live headroom — but planners (estimate-driven split sizing, tools)
  /// use it to classify a projected footprint before committing to it.
  [[nodiscard]] Admission admit(std::size_t projected_bytes) const;

  /// Throw ResourceError if the resident charge alone already exceeds the
  /// limit (the caller cannot help by spilling; only re-splitting or the
  /// ungoverned final rung can proceed).  `context` names the caller.
  void enforce_resident(const std::string& context) const;

  /// Cumulative out-of-core traffic, credited by SpillFile on every block.
  void note_spill(std::uint64_t bytes);
  [[nodiscard]] std::uint64_t spill_bytes() const {
    return spill_bytes_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t spill_blocks() const {
    return spill_blocks_.load(std::memory_order_relaxed);
  }

  /// Forget everything (tests; also run start, so a CLI process reusing the
  /// global governor starts from a clean ledger).
  void reset();

 private:
  friend class MemoryLease;
  void adjust(Subsystem s, std::ptrdiff_t delta);
  void publish_gauges() const;

  std::atomic<std::size_t> limit_{0};
  std::atomic<std::size_t> usage_[static_cast<int>(Subsystem::kCount)] = {};
  std::atomic<std::size_t> peak_{0};
  std::atomic<std::uint64_t> spill_bytes_{0};
  std::atomic<std::uint64_t> spill_blocks_{0};
};

/// RAII usage slot: set() charges the delta between the new and previous
/// value against the governor; the destructor releases whatever is still
/// charged.  One lease per solver instance / rank replica, so concurrent
/// holders sum correctly in the process ledger.
class MemoryLease {
 public:
  explicit MemoryLease(Subsystem subsystem,
                       MemoryGovernor& governor = MemoryGovernor::global())
      : governor_(&governor), subsystem_(subsystem) {}
  MemoryLease(const MemoryLease&) = delete;
  MemoryLease& operator=(const MemoryLease&) = delete;
  MemoryLease(MemoryLease&& other) noexcept
      : governor_(other.governor_),
        subsystem_(other.subsystem_),
        charged_(other.charged_) {
    other.governor_ = nullptr;
    other.charged_ = 0;
  }
  ~MemoryLease() { release(); }

  void set(std::size_t bytes) {
    if (governor_ == nullptr || bytes == charged_) return;
    governor_->adjust(subsystem_,
                      static_cast<std::ptrdiff_t>(bytes) -
                          static_cast<std::ptrdiff_t>(charged_));
    charged_ = bytes;
  }
  void release() {
    if (governor_ != nullptr && charged_ != 0) {
      governor_->adjust(subsystem_, -static_cast<std::ptrdiff_t>(charged_));
      charged_ = 0;
    }
  }
  [[nodiscard]] std::size_t charged() const { return charged_; }

 private:
  MemoryGovernor* governor_;
  Subsystem subsystem_;
  std::size_t charged_ = 0;
};

}  // namespace elmo::resource
