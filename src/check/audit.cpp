#include "check/audit.hpp"

#include <atomic>

#include "check/contracts.hpp"
#include "support/assert.hpp"

namespace elmo::check {

struct AuditLedger::Impl {
  std::atomic<std::uint64_t> nullspace_products{0};
  std::atomic<std::uint64_t> rank_nullity_checks{0};
  std::atomic<std::uint64_t> minimality_checks{0};
  std::atomic<std::uint64_t> partition_checks{0};
  std::atomic<std::uint64_t> proposition1_checks{0};
  std::atomic<std::uint64_t> pair_conservation_checks{0};
  std::atomic<std::uint64_t> failures{0};
};

// Intentionally leaked process singleton; outlives every auditing thread
// so counters stay valid during teardown.  lint:allow(naked-new)
AuditLedger::AuditLedger() : impl_(new Impl()) {}

AuditLedger& AuditLedger::global() {
  static AuditLedger ledger;
  return ledger;
}

void AuditLedger::add_nullspace_products(std::uint64_t n) {
  impl_->nullspace_products.fetch_add(n, std::memory_order_relaxed);
}
void AuditLedger::add_rank_nullity_checks(std::uint64_t n) {
  impl_->rank_nullity_checks.fetch_add(n, std::memory_order_relaxed);
}
void AuditLedger::add_minimality_checks(std::uint64_t n) {
  impl_->minimality_checks.fetch_add(n, std::memory_order_relaxed);
}
void AuditLedger::add_partition_checks(std::uint64_t n) {
  impl_->partition_checks.fetch_add(n, std::memory_order_relaxed);
}
void AuditLedger::add_proposition1_checks(std::uint64_t n) {
  impl_->proposition1_checks.fetch_add(n, std::memory_order_relaxed);
}
void AuditLedger::add_pair_conservation_checks(std::uint64_t n) {
  impl_->pair_conservation_checks.fetch_add(n, std::memory_order_relaxed);
}
void AuditLedger::add_failure() {
  impl_->failures.fetch_add(1, std::memory_order_relaxed);
}

AuditStats AuditLedger::snapshot() const {
  AuditStats s;
  s.nullspace_products =
      impl_->nullspace_products.load(std::memory_order_relaxed);
  s.rank_nullity_checks =
      impl_->rank_nullity_checks.load(std::memory_order_relaxed);
  s.minimality_checks =
      impl_->minimality_checks.load(std::memory_order_relaxed);
  s.partition_checks = impl_->partition_checks.load(std::memory_order_relaxed);
  s.proposition1_checks =
      impl_->proposition1_checks.load(std::memory_order_relaxed);
  s.pair_conservation_checks =
      impl_->pair_conservation_checks.load(std::memory_order_relaxed);
  s.failures = impl_->failures.load(std::memory_order_relaxed);
  return s;
}

void AuditLedger::reset() {
  impl_->nullspace_products.store(0, std::memory_order_relaxed);
  impl_->rank_nullity_checks.store(0, std::memory_order_relaxed);
  impl_->minimality_checks.store(0, std::memory_order_relaxed);
  impl_->partition_checks.store(0, std::memory_order_relaxed);
  impl_->proposition1_checks.store(0, std::memory_order_relaxed);
  impl_->pair_conservation_checks.store(0, std::memory_order_relaxed);
  impl_->failures.store(0, std::memory_order_relaxed);
}

void audit_failed(const char* invariant, const std::string& detail) {
  AuditLedger::global().add_failure();
  throw ContractViolation(std::string("audit[") + invariant +
                          "]: " + detail);
}

void check_subset_partition(const std::vector<SubsetPattern>& patterns,
                            const std::vector<std::string>& labels) {
  ELMO_REQUIRE(labels.empty() || labels.size() == patterns.size(),
               "check_subset_partition: labels/patterns size mismatch");
  auto label_of = [&](std::size_t i) {
    if (i < labels.size() && !labels[i].empty()) return labels[i];
    return "pattern " + std::to_string(i);
  };

  // Universe: every reduced row any pattern constrains.  Each pattern
  // covers 2^(|universe| - |pattern|) cells of the 2^|universe| cube of
  // zero/nonzero assignments; the set is an exact cover iff patterns are
  // pairwise disjoint and the weights sum to the full cube.
  std::vector<std::size_t> universe;
  for (const auto& pattern : patterns) {
    for (const auto& [row, nz] : pattern) {
      bool seen = false;
      for (std::size_t u : universe) seen = seen || u == row;
      if (!seen) universe.push_back(row);
    }
  }
  ELMO_REQUIRE(universe.size() < 63,
               "check_subset_partition: pattern universe too wide");

  // Within one pattern, a row constrained twice is malformed.
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    for (std::size_t a = 0; a < patterns[i].size(); ++a) {
      for (std::size_t b = a + 1; b < patterns[i].size(); ++b) {
        if (patterns[i][a].first == patterns[i][b].first) {
          audit_failed("subset-partition",
                       label_of(i) + " constrains row " +
                           std::to_string(patterns[i][a].first) + " twice");
        }
      }
    }
  }

  // Pairwise disjoint: two patterns are disjoint iff they disagree on at
  // least one shared row.  Agreement on every shared row means both admit a
  // common zero/nonzero assignment — an EFM could be produced twice.
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    for (std::size_t j = i + 1; j < patterns.size(); ++j) {
      bool conflict = false;
      for (const auto& [row_i, nz_i] : patterns[i]) {
        for (const auto& [row_j, nz_j] : patterns[j]) {
          if (row_i == row_j && nz_i != nz_j) conflict = true;
        }
      }
      if (!conflict) {
        audit_failed("subset-partition",
                     label_of(i) + " and " + label_of(j) +
                         " overlap: no shared row separates them, so their "
                         "zero/nonzero subsets intersect");
      }
    }
  }

  std::uint64_t covered = 0;
  for (const auto& pattern : patterns) {
    ELMO_REQUIRE(pattern.size() <= universe.size(),
                 "check_subset_partition: pattern wider than its universe");
    covered += std::uint64_t{1} << (universe.size() - pattern.size());
  }
  const std::uint64_t cube = std::uint64_t{1} << universe.size();
  if (covered != cube) {
    audit_failed("subset-partition",
                 "patterns cover " + std::to_string(covered) + " of " +
                     std::to_string(cube) +
                     " zero/nonzero cells: the subsets do not partition the "
                     "EFM set");
  }
  AuditLedger::global().add_partition_checks(
      patterns.size() * (patterns.size() + 1) / 2);
}

}  // namespace elmo::check
