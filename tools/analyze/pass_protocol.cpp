// elmo_analyze — communication-protocol pass.
//
// Extracts a per-role communication skeleton from every mpsim call site
// (`comm.send(dst, tag, payload)`, `comm.recv(src, tag)`, `barrier`,
// `all_gather`, `all_reduce_*` spelled as member calls), together with the
// rank-conditional context each site executes under (`if (rank == 0)`,
// `else if (move.to == rank)`, loops), and verifies the skeleton:
//
//   tag-mismatch           a send whose tag can match no recv anywhere in
//                          the project — the message is never consumed
//   orphan-recv            a recv whose tag can match no send — the
//                          receiving rank would block forever
//   peer-mismatch          a recv naming a constant source S (or a send
//                          naming a constant destination D) whose every
//                          tag-compatible counterpart provably runs on a
//                          different rank (`if (rank == K)` with K != S)
//   collective-divergence  a barrier / all_gather / all_reduce under a
//                          rank-dependent branch: a subset of ranks
//                          entering a collective deadlocks the world
//   recv-before-send       an unguarded recv textually preceding its only
//                          matching send in the same function — every rank
//                          blocks in the recv before any rank can send
//                          (static deadlock candidate)
//   flow-unseen            (only with --flow-log=FILE) a runtime flow
//                          event from a PR-7 Chrome trace with no
//                          compatible static send/collective site — the
//                          skeleton is missing something the traced run
//                          exercised
//
// Tag and peer expressions are modeled as integer constants when literal,
// otherwise as normalized token text; two non-constant expressions are
// always considered compatible (bias toward silence — only provable
// mismatches fire).  Escapes: `// analyze:protocol-ok` on the offending or
// preceding raw line (mirroring analyze:shared-ok), or lint:allow(<rule>).

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>

#include "analyze/analyzer.hpp"
#include "analyze/callgraph.hpp"

namespace elmo_analyze {

namespace {

constexpr std::size_t npos = CallGraph::npos;

bool is_collective(const std::string& s) {
  return s == "barrier" || s == "all_gather" || s == "all_reduce_sum" ||
         s == "all_reduce_max";
}

bool is_comm_op(const std::string& s) {
  return s == "send" || s == "recv" || is_collective(s);
}

/// Identifier names that mean "this rank's identity" in a condition.
bool is_rank_name(const std::string& s) {
  return s == "rank" || s == "my_rank" || s == "world_rank" ||
         s == "rank_id";
}

/// The `// analyze:protocol-ok` escape lives on the raw line (or the one
/// above) like analyze:shared-ok does.
bool protocol_ok(const SourceFile& f, std::size_t line) {
  for (std::size_t l = line; l + 1 >= line && l > 0; --l) {
    if (l - 1 < f.raw_lines.size() &&
        f.raw_lines[l - 1].find("analyze:protocol-ok") != std::string::npos) {
      return true;
    }
    if (l == 1) break;
  }
  return false;
}

/// A peer or tag argument: an integer constant when the expression is a
/// single literal, otherwise its normalized (whitespace-free) token text.
struct ExprModel {
  bool is_const = false;
  long long value = 0;
  std::string text;

  [[nodiscard]] std::string display() const {
    return is_const ? std::to_string(value) : text;
  }
};

/// Two expressions can denote the same integer unless both are literals
/// with different values — only provable mismatches count.
bool compatible(const ExprModel& a, const ExprModel& b) {
  if (a.is_const && b.is_const) return a.value == b.value;
  return true;
}

ExprModel model_expr(const std::vector<Token>& toks, std::size_t begin,
                     std::size_t end) {
  ExprModel m;
  if (end == begin + 1 && toks[begin].kind == Token::Kind::kNumber) {
    char* rest = nullptr;
    const long long v = std::strtoll(toks[begin].text.c_str(), &rest, 0);
    if (rest != nullptr && *rest == '\0') {
      m.is_const = true;
      m.value = v;
      m.text = toks[begin].text;
      return m;
    }
  }
  for (std::size_t i = begin; i < end; ++i) m.text += toks[i].text;
  return m;
}

/// One rank-conditional context: a branch condition the site sits under.
struct CondInfo {
  bool rank_dep = false;  // mentions the executing rank's identity
  bool eq_known = false;  // pins `rank == K` (no `||` weakening it)
  long long eq_rank = 0;
  std::string text;  // for messages
};

CondInfo parse_cond(const std::vector<Token>& toks, std::size_t begin,
                    std::size_t end) {
  CondInfo c;
  bool has_or = false;
  for (std::size_t i = begin; i < end; ++i) {
    const Token& t = toks[i];
    if (t.is("||")) has_or = true;
    if (t.ident() && is_rank_name(t.text)) {
      c.rank_dep = true;
      // `rank == 7` / `7 == rank`: a provable rank pin.
      if (i + 2 < end && toks[i + 1].is("==") &&
          toks[i + 2].kind == Token::Kind::kNumber) {
        c.eq_known = true;
        c.eq_rank = std::strtoll(toks[i + 2].text.c_str(), nullptr, 0);
      } else if (i >= begin + 2 && toks[i - 1].is("==") &&
                 toks[i - 2].kind == Token::Kind::kNumber) {
        c.eq_known = true;
        c.eq_rank = std::strtoll(toks[i - 2].text.c_str(), nullptr, 0);
      }
    }
    if (!c.text.empty()) c.text += ' ';
    c.text += t.text;
  }
  if (has_or) c.eq_known = false;  // the pin only holds on one disjunct
  return c;
}

/// A communication call site plus its extracted skeleton entry.
struct CommSite {
  enum class Kind { kSend, kRecv, kCollective };
  Kind kind = Kind::kCollective;
  std::string op;       // send / recv / barrier / all_gather / ...
  std::size_t fn = npos;
  std::size_t file = 0;
  std::size_t line = 0;
  std::size_t tok = 0;
  ExprModel peer;  // send destination / recv source
  ExprModel tag;
  bool has_args = false;  // peer/tag extracted successfully
  // Rank-conditional context.
  bool rank_guarded = false;
  bool eq_known = false;
  long long eq_rank = 0;
  std::string guard_text;
};

struct ProtocolPass {
  const Project& project;
  const Options& opts;
  std::vector<Finding>& findings;
  CallGraph cg;
  std::vector<CommSite> sites;

  void collect_sites();
  void compute_guards(std::size_t fn_idx, std::vector<CommSite*>& fn_sites);
  void check_pairing();
  void check_collectives();
  void check_ordering();
  void cross_check_flow_log();
  void flag(const CommSite& site, const std::string& rule,
            const std::string& message);
};

void ProtocolPass::flag(const CommSite& site, const std::string& rule,
                        const std::string& message) {
  const SourceFile& file = project.files[site.file];
  if (protocol_ok(file, site.line)) return;
  if (file.allows(site.line, rule)) return;
  Finding finding;
  finding.pass = "protocol";
  finding.rule = rule;
  finding.file = file.path;
  finding.line = site.line;
  finding.message = message;
  findings.push_back(std::move(finding));
}

void ProtocolPass::collect_sites() {
  // Member calls only: `comm.send(...)` / `communicator->recv(...)`.
  // Free-function or `Class::op` spellings are the mpsim implementation
  // itself, not protocol roles.
  std::map<std::size_t, std::vector<CommSite*>> by_fn;
  for (const CallRef& call : cg.calls) {
    if (!call.member || call.caller == npos) continue;
    if (!is_comm_op(call.callee)) continue;
    const std::vector<Token>& toks = cg.file_tokens[call.file];
    CommSite site;
    site.op = call.callee;
    site.kind = call.callee == "send"   ? CommSite::Kind::kSend
                : call.callee == "recv" ? CommSite::Kind::kRecv
                                        : CommSite::Kind::kCollective;
    site.fn = call.caller;
    site.file = call.file;
    site.line = call.line;
    site.tok = call.tok;
    if (site.kind != CommSite::Kind::kCollective &&
        call.tok + 1 < toks.size() && toks[call.tok + 1].is("(")) {
      const std::size_t close = match_forward(toks, call.tok + 1);
      if (close != npos) {
        // Split the argument list at top-level commas; send needs at
        // least (dst, tag, payload), recv exactly (src, tag).
        std::vector<std::pair<std::size_t, std::size_t>> args;
        std::size_t begin = call.tok + 2;
        int depth = 0;
        for (std::size_t i = begin; i < close; ++i) {
          if (toks[i].is("(") || toks[i].is("[") || toks[i].is("{")) ++depth;
          if (toks[i].is(")") || toks[i].is("]") || toks[i].is("}")) --depth;
          if (depth == 0 && toks[i].is(",")) {
            args.emplace_back(begin, i);
            begin = i + 1;
          }
        }
        if (begin < close) args.emplace_back(begin, close);
        const std::size_t need =
            site.kind == CommSite::Kind::kSend ? 3 : 2;
        if (args.size() >= need) {
          site.peer = model_expr(toks, args[0].first, args[0].second);
          site.tag = model_expr(toks, args[1].first, args[1].second);
          site.has_args = !site.peer.text.empty() && !site.tag.text.empty();
        }
      }
    }
    sites.push_back(site);
  }
  for (CommSite& s : sites) by_fn[s.fn].push_back(&s);
  for (auto& [fn_idx, fn_sites] : by_fn) compute_guards(fn_idx, fn_sites);
}

/// Walk `fn`'s body once, maintaining the stack of branch conditions each
/// token executes under, and stamp every site in `fn_sites` (sorted by
/// token index) with its rank-conditional context.  Handles `if (...) {`,
/// `} else {`, `} else if (...) {`, braceless bodies (`if (c) stmt;`) and
/// loop headers; `else` branches of a rank-guard stay rank-dependent (the
/// rank set is the complement) but lose any `rank == K` pin.
void ProtocolPass::compute_guards(std::size_t fn_idx,
                                  std::vector<CommSite*>& fn_sites) {
  const FnDef& f = cg.fns[fn_idx];
  if (f.body_end <= f.body_begin) return;
  const std::vector<Token>& toks = cg.file_tokens[f.file];
  std::sort(fn_sites.begin(), fn_sites.end(),
            [](const CommSite* a, const CommSite* b) {
              return a->tok < b->tok;
            });
  std::vector<std::optional<CondInfo>> brace_stack;
  struct Braceless {
    CondInfo cond;
    std::size_t begin;
    std::size_t end;
  };
  std::vector<Braceless> braceless;
  std::optional<CondInfo> pending;      // condition awaiting its '{'
  std::optional<CondInfo> last_closed;  // popped at the latest '}'
  bool else_chain = false;              // `else if` inherits rank_dep
  std::size_t next_site = 0;

  auto stamp_through = [&](std::size_t tok_idx) {
    while (next_site < fn_sites.size() && fn_sites[next_site]->tok <= tok_idx) {
      CommSite* s = fn_sites[next_site++];
      for (const auto& cond : brace_stack) {
        if (!cond || !cond->rank_dep) continue;
        s->rank_guarded = true;
        s->guard_text = cond->text;
        if (cond->eq_known) {
          s->eq_known = true;
          s->eq_rank = cond->eq_rank;
        }
      }
      for (const Braceless& b : braceless) {
        if (s->tok <= b.begin || s->tok >= b.end || !b.cond.rank_dep)
          continue;
        s->rank_guarded = true;
        s->guard_text = b.cond.text;
        if (b.cond.eq_known) {
          s->eq_known = true;
          s->eq_rank = b.cond.eq_rank;
        }
      }
    }
  };

  for (std::size_t i = f.body_begin + 1; i < f.body_end; ++i) {
    stamp_through(i);
    const Token& t = toks[i];
    if (t.is("{")) {
      brace_stack.push_back(pending);
      pending.reset();
      continue;
    }
    if (t.is("}")) {
      if (!brace_stack.empty()) {
        last_closed = brace_stack.back();
        brace_stack.pop_back();
      }
      continue;
    }
    if (t.ident() && (t.text == "if" || t.text == "while" || t.text == "for" ||
                      t.text == "switch")) {
      if (i + 1 >= f.body_end || !toks[i + 1].is("(")) continue;
      const std::size_t close = match_forward(toks, i + 1);
      if (close == npos || close >= f.body_end) continue;
      CondInfo cond = parse_cond(toks, i + 2, close);
      if (t.text != "if") cond.eq_known = false;  // loop headers never pin
      if (else_chain && last_closed && last_closed->rank_dep) {
        cond.rank_dep = true;  // chained branch of a rank guard
        cond.eq_known = cond.eq_known && false;
      }
      else_chain = false;
      if (close + 1 < f.body_end && toks[close + 1].is("{")) {
        pending = cond;
      } else {
        // Braceless body: active until the statement's terminating ';'.
        int depth = 0;
        std::size_t j = close + 1;
        for (; j < f.body_end; ++j) {
          if (toks[j].is("(") || toks[j].is("[")) ++depth;
          if (toks[j].is(")") || toks[j].is("]")) --depth;
          if (toks[j].is("{") || (toks[j].is(";") && depth == 0)) break;
        }
        braceless.push_back({cond, close, j});
      }
      stamp_through(close);
      i = close;
      continue;
    }
    if (t.ident() && t.text == "else") {
      if (i + 1 < f.body_end && toks[i + 1].ident() &&
          toks[i + 1].text == "if") {
        else_chain = true;
        continue;
      }
      CondInfo inherited;
      if (last_closed && last_closed->rank_dep) {
        inherited.rank_dep = true;
        inherited.text = "!(" + last_closed->text + ")";
      }
      if (i + 1 < f.body_end && toks[i + 1].is("{")) {
        pending = inherited.rank_dep ? std::optional<CondInfo>(inherited)
                                     : std::nullopt;
      } else if (inherited.rank_dep) {
        int depth = 0;
        std::size_t j = i + 1;
        for (; j < f.body_end; ++j) {
          if (toks[j].is("(") || toks[j].is("[")) ++depth;
          if (toks[j].is(")") || toks[j].is("]")) --depth;
          if (toks[j].is("{") || (toks[j].is(";") && depth == 0)) break;
        }
        braceless.push_back({inherited, i, j});
      }
      continue;
    }
  }
  stamp_through(f.body_end);
}

void ProtocolPass::check_pairing() {
  std::vector<const CommSite*> sends;
  std::vector<const CommSite*> recvs;
  for (const CommSite& s : sites) {
    if (s.kind == CommSite::Kind::kSend && s.has_args) sends.push_back(&s);
    if (s.kind == CommSite::Kind::kRecv && s.has_args) recvs.push_back(&s);
  }
  for (const CommSite* s : sends) {
    bool consumed = false;
    for (const CommSite* r : recvs) {
      if (compatible(s->tag, r->tag)) {
        consumed = true;
        break;
      }
    }
    if (!consumed) {
      flag(*s, "tag-mismatch",
           "send with tag " + s->tag.display() +
               " matches no recv in the project (unconsumed tag) — the "
               "message is posted but never drained; pair it with a recv "
               "or annotate analyze:protocol-ok");
    }
  }
  for (const CommSite* r : recvs) {
    bool fed = false;
    for (const CommSite* s : sends) {
      if (compatible(s->tag, r->tag)) {
        fed = true;
        break;
      }
    }
    if (!fed) {
      flag(*r, "orphan-recv",
           "recv expecting tag " + r->tag.display() +
               " matches no send in the project — the receiving rank "
               "blocks forever; pair it with a send or annotate "
               "analyze:protocol-ok");
    }
  }
  // Peer compatibility: a constant peer on one side checked against the
  // provable rank pins of every tag-compatible counterpart.  All
  // counterparts must carry a pin for the mismatch to be provable.
  for (const CommSite* r : recvs) {
    if (!r->peer.is_const) continue;
    bool any = false;
    bool all_pinned = true;
    bool reachable = false;
    for (const CommSite* s : sends) {
      if (!compatible(s->tag, r->tag)) continue;
      any = true;
      if (!s->eq_known) {
        all_pinned = false;
        break;
      }
      if (s->eq_rank == r->peer.value) reachable = true;
    }
    if (any && all_pinned && !reachable) {
      flag(*r, "peer-mismatch",
           "recv expects source rank " + r->peer.display() + " for tag " +
               r->tag.display() +
               " but every matching send is pinned to a different rank — "
               "the message can never arrive from that peer");
    }
  }
  for (const CommSite* s : sends) {
    if (!s->peer.is_const) continue;
    bool any = false;
    bool all_pinned = true;
    bool reachable = false;
    for (const CommSite* r : recvs) {
      if (!compatible(s->tag, r->tag)) continue;
      any = true;
      if (!r->eq_known) {
        all_pinned = false;
        break;
      }
      if (r->eq_rank == s->peer.value) reachable = true;
    }
    if (any && all_pinned && !reachable) {
      flag(*s, "peer-mismatch",
           "send targets rank " + s->peer.display() + " for tag " +
               s->tag.display() +
               " but every matching recv is pinned to a different rank — "
               "no role ever consumes it there");
    }
  }
}

void ProtocolPass::check_collectives() {
  for (const CommSite& s : sites) {
    if (s.kind != CommSite::Kind::kCollective || !s.rank_guarded) continue;
    flag(s, "collective-divergence",
         "collective '" + s.op + "' sits under the rank-dependent branch (" +
             s.guard_text +
             ") — a subset of ranks entering a collective deadlocks the "
             "world; hoist it or annotate analyze:protocol-ok if every "
             "rank provably takes this path");
  }
}

void ProtocolPass::check_ordering() {
  // Static deadlock candidate: inside one function, an unguarded recv
  // whose matching sends all come later (and are equally unguarded) means
  // every rank blocks in the recv before any rank reaches the send.  A
  // rank guard on either site breaks the symmetry and silences the rule.
  for (const CommSite& r : sites) {
    if (r.kind != CommSite::Kind::kRecv || !r.has_args || r.rank_guarded)
      continue;
    bool matching_in_fn = false;
    bool all_later = true;
    for (const CommSite& s : sites) {
      if (s.kind != CommSite::Kind::kSend || !s.has_args || s.fn != r.fn)
        continue;
      if (!compatible(s.tag, r.tag)) continue;
      matching_in_fn = true;
      if (s.rank_guarded || s.tok < r.tok) all_later = false;
    }
    if (matching_in_fn && all_later) {
      flag(r, "recv-before-send",
           "recv of tag " + r.tag.display() +
               " precedes every matching send in '" + cg.fns[r.fn].qname +
               "' with no rank guard distinguishing the roles — all ranks "
               "block in the recv before any rank can send (static "
               "deadlock candidate)");
    }
  }
}

void ProtocolPass::cross_check_flow_log() {
  std::ifstream in(opts.flow_log_path, std::ios::binary);
  if (!in) {
    Finding finding;
    finding.pass = "protocol";
    finding.rule = "flow-unseen";
    finding.file = opts.flow_log_path;
    finding.line = 0;
    finding.message = "cannot read flow log";
    findings.push_back(std::move(finding));
    return;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string log = buffer.str();

  bool have_collective = false;
  std::vector<const CommSite*> sends;
  for (const CommSite& s : sites) {
    if (s.kind == CommSite::Kind::kCollective) have_collective = true;
    if (s.kind == CommSite::Kind::kSend && s.has_args) sends.push_back(&s);
  }

  // Chrome trace flow events: `"ph":"s"` openers named "msg" (p2p, the
  // detail carries `tag=N`) or "gather" (collective rounds).  Flow events
  // carry no source location, so coverage is matched on shape: a p2p flow
  // is covered when some static send site's tag model can equal its tag;
  // a gather flow when any collective site exists at all.
  std::set<std::string> emitted;
  std::size_t pos = 0;
  while ((pos = log.find("\"ph\":\"s\"", pos)) != std::string::npos) {
    const std::size_t obj = log.rfind("{\"name\":\"", pos);
    pos += 8;
    if (obj == std::string::npos) continue;
    const std::size_t name_begin = obj + 9;
    const std::size_t name_end = log.find('"', name_begin);
    if (name_end == std::string::npos) continue;
    const std::string name = log.substr(name_begin, name_end - name_begin);
    // The event's args.detail sits between this opener and the next event.
    const std::size_t next_obj = log.find("{\"name\":\"", pos);
    const std::size_t detail_key = log.find("\"detail\":\"", pos);
    std::string detail;
    if (detail_key != std::string::npos &&
        (next_obj == std::string::npos || detail_key < next_obj)) {
      const std::size_t detail_begin = detail_key + 10;
      const std::size_t detail_end = log.find('"', detail_begin);
      if (detail_end != std::string::npos) {
        detail = log.substr(detail_begin, detail_end - detail_begin);
      }
    }
    if (name == "msg") {
      const std::size_t tag_pos = detail.find("tag=");
      if (tag_pos == std::string::npos) continue;
      const long long tag =
          std::strtoll(detail.c_str() + tag_pos + 4, nullptr, 10);
      ExprModel runtime_tag;
      runtime_tag.is_const = true;
      runtime_tag.value = tag;
      bool covered = false;
      for (const CommSite* s : sends) {
        if (compatible(s->tag, runtime_tag)) {
          covered = true;
          break;
        }
      }
      if (covered) continue;
      if (!emitted.insert("msg:" + std::to_string(tag)).second) continue;
      Finding finding;
      finding.pass = "protocol";
      finding.rule = "flow-unseen";
      finding.file = opts.flow_log_path;
      finding.line = 0;
      finding.message =
          "traced run carried a p2p message with tag " + std::to_string(tag) +
          " but no static send site can produce it — the protocol skeleton "
          "is missing a site the runtime exercised";
      findings.push_back(std::move(finding));
    } else if (name == "gather") {
      if (have_collective) continue;
      if (!emitted.insert("gather").second) continue;
      Finding finding;
      finding.pass = "protocol";
      finding.rule = "flow-unseen";
      finding.file = opts.flow_log_path;
      finding.line = 0;
      finding.message =
          "traced run carried collective gather flows but the static "
          "skeleton holds no collective site — the protocol skeleton is "
          "missing a site the runtime exercised";
      findings.push_back(std::move(finding));
    }
  }
}

}  // namespace

void pass_protocol(const Project& project, const Options& opts,
                   std::vector<Finding>& findings) {
  ProtocolPass pass{project, opts, findings, build_callgraph(project), {}};
  pass.collect_sites();
  pass.check_pairing();
  pass.check_collectives();
  pass.check_ordering();
  if (!opts.flow_log_path.empty()) pass.cross_check_flow_log();
}

}  // namespace elmo_analyze
