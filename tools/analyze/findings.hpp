// elmo_analyze — findings, baseline suppression, and emission.
//
// Every finding carries a stable key `pass:rule:file:line`.  A committed
// baseline file lists keys that are tolerated (legacy debt, accepted
// exceptions); the gate fails only on NON-baselined findings, so the tree
// can adopt a new rule before every historical violation is fixed.  The
// project's own baseline is kept near-empty: true positives get fixed,
// intentional sites carry inline lint:allow(<rule>) annotations instead.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <set>
#include <string>
#include <vector>

namespace elmo_analyze {

struct Finding {
  std::string pass;     // include | lock | overflow | lint
  std::string rule;     // e.g. layering, facade, unchecked-arith
  std::string file;     // root-relative path
  std::size_t line = 0; // 1-based; 0 = whole file
  std::string message;
  bool baselined = false;

  [[nodiscard]] std::string key() const;
};

/// Stable ordering: file, line, pass, rule, message.
bool finding_less(const Finding& a, const Finding& b);

struct Baseline {
  std::set<std::string> keys;

  /// Load keys (one per line, `#` comments and blanks ignored).  Returns
  /// false when the file cannot be read.
  bool load(const std::string& path);
};

/// Mark findings whose key appears in the baseline.
void apply_baseline(const Baseline& baseline, std::vector<Finding>& findings);

/// Human-readable report to stderr.  `tool` controls the prefix of the
/// trailer line ("elmo_analyze" or the compat "elmo_lint").  When
/// `lint_compat` is set the rule is printed bare (no pass prefix), matching
/// the historical elmo_lint output that editors and scripts parse.
void write_text(const std::vector<Finding>& findings, const std::string& tool,
                bool lint_compat);

/// Machine-readable JSON: {"findings": [...], "summary": {...}}.
/// Returns false on IO error.
bool write_json(const std::string& path, const std::vector<Finding>& findings);

/// SARIF 2.1.0 (the format GitHub renders as code-scanning annotations):
/// one run, one result per finding; baselined findings carry an external
/// suppression and level "note", active ones level "error".
void write_sarif(std::ostream& out, const std::vector<Finding>& findings);

/// Write every finding key as a fresh baseline.  Returns false on IO error.
bool write_baseline(const std::string& path,
                    const std::vector<Finding>& findings);

/// Count of findings not excused by the baseline.
std::size_t count_active(const std::vector<Finding>& findings);

}  // namespace elmo_analyze
