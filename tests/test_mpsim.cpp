// Tests for the simulated message-passing runtime.
#include "mpsim/communicator.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <numeric>
#include <string>

#include "bitset/bitset64.hpp"
#include "mpsim/fault.hpp"
#include "mpsim/serialize.hpp"
#include "nullspace/flux_column.hpp"

namespace elmo::mpsim {
namespace {

TEST(Mpsim, SingleRankRuns) {
  int calls = 0;
  auto report = run_ranks(1, [&](Communicator& comm) {
    EXPECT_EQ(comm.rank(), 0);
    EXPECT_EQ(comm.size(), 1);
    comm.barrier();
    ++calls;
  });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(report.ranks.size(), 1u);
}

TEST(Mpsim, PointToPointDelivery) {
  auto report = run_ranks(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send(1, /*tag=*/7, {1, 2, 3});
    } else {
      Payload p = comm.recv(0, 7);
      EXPECT_EQ(p, (Payload{1, 2, 3}));
    }
  });
  EXPECT_EQ(report.ranks[0].messages_sent, 1u);
  EXPECT_EQ(report.ranks[0].bytes_sent, 3u);
  EXPECT_EQ(report.ranks[1].messages_sent, 0u);
}

TEST(Mpsim, TagsKeepStreamsSeparate) {
  run_ranks(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 1, {11});
      comm.send(1, 2, {22});
    } else {
      // Receive in the opposite order of sending.
      EXPECT_EQ(comm.recv(0, 2), (Payload{22}));
      EXPECT_EQ(comm.recv(0, 1), (Payload{11}));
    }
  });
}

TEST(Mpsim, MessagesFromSameSourceKeepOrder) {
  run_ranks(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      for (std::uint8_t i = 0; i < 10; ++i) comm.send(1, 0, {i});
    } else {
      for (std::uint8_t i = 0; i < 10; ++i)
        EXPECT_EQ(comm.recv(0, 0), Payload{i});
    }
  });
}

TEST(Mpsim, BarrierSynchronises) {
  std::atomic<int> phase_one{0};
  run_ranks(4, [&](Communicator& comm) {
    phase_one.fetch_add(1);
    comm.barrier();
    // After the barrier every rank must observe all four increments.
    EXPECT_EQ(phase_one.load(), 4);
    comm.barrier();
  });
}

TEST(Mpsim, AllGatherCollectsInRankOrder) {
  run_ranks(3, [](Communicator& comm) {
    Payload mine = {static_cast<std::uint8_t>(comm.rank() * 10)};
    auto all = comm.all_gather(std::move(mine));
    ASSERT_EQ(all.size(), 3u);
    for (int r = 0; r < 3; ++r)
      EXPECT_EQ(all[static_cast<std::size_t>(r)],
                Payload{static_cast<std::uint8_t>(r * 10)});
  });
}

TEST(Mpsim, AllGatherRepeatedRounds) {
  // Exercises slot reuse across iterations (the Algorithm-2 inner loop).
  run_ranks(3, [](Communicator& comm) {
    for (std::uint8_t round = 0; round < 5; ++round) {
      Payload mine = {static_cast<std::uint8_t>(comm.rank()), round};
      auto all = comm.all_gather(std::move(mine));
      for (int r = 0; r < 3; ++r) {
        EXPECT_EQ(all[static_cast<std::size_t>(r)],
                  (Payload{static_cast<std::uint8_t>(r), round}));
      }
    }
  });
}

TEST(Mpsim, AllReduce) {
  run_ranks(4, [](Communicator& comm) {
    auto rank = static_cast<std::uint64_t>(comm.rank());
    EXPECT_EQ(comm.all_reduce_sum(rank + 1), 1u + 2u + 3u + 4u);
    EXPECT_EQ(comm.all_reduce_max(rank * 7), 21u);
  });
}

TEST(Mpsim, ExceptionInOneRankAbortsWorld) {
  EXPECT_THROW(
      run_ranks(3,
                [](Communicator& comm) {
                  if (comm.rank() == 1)
                    throw InvalidArgumentError("rank 1 exploded");
                  // Other ranks block forever unless aborted.
                  comm.recv(1, 99);
                }),
      InvalidArgumentError);
}

TEST(Mpsim, MemoryBudgetEnforced) {
  RunOptions options;
  options.memory_budget_per_rank = 1000;
  EXPECT_THROW(run_ranks(
                   2,
                   [](Communicator& comm) {
                     comm.set_memory_usage(500);   // fine
                     comm.set_memory_usage(1500);  // over budget
                   },
                   options),
               MemoryBudgetError);
  try {
    run_ranks(
        1, [](Communicator& comm) { comm.set_memory_usage(4096); }, options);
    FAIL() << "expected MemoryBudgetError";
  } catch (const MemoryBudgetError& e) {
    EXPECT_EQ(e.requested_bytes, 4096u);
    EXPECT_EQ(e.budget_bytes, 1000u);
  }
}

TEST(Mpsim, MemoryPeakTracked) {
  auto report = run_ranks(1, [](Communicator& comm) {
    comm.set_memory_usage(100);
    comm.set_memory_usage(700);
    comm.set_memory_usage(300);
  });
  EXPECT_EQ(report.ranks[0].memory_peak, 700u);
  EXPECT_EQ(report.ranks[0].memory_in_use, 300u);
  EXPECT_EQ(report.max_memory_peak(), 700u);
}

TEST(MpsimSerialize, ColumnsRoundTripCheckedI64) {
  using Col = FluxColumn<CheckedI64, Bitset64>;
  std::vector<Col> columns;
  columns.push_back(Col::from_values(
      {CheckedI64(2), CheckedI64(0), CheckedI64(-4), CheckedI64(6)}));
  columns.push_back(Col::from_values({CheckedI64(0), CheckedI64(5),
                                      CheckedI64(0), CheckedI64(0)}));
  auto payload = encode_columns(columns);
  auto decoded = decode_columns<CheckedI64, Bitset64>(payload);
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded[0], columns[0]);
  EXPECT_EQ(decoded[1], columns[1]);
}

TEST(MpsimSerialize, ColumnsRoundTripBigIntDynBitset) {
  using Col = FluxColumn<BigInt, DynBitset>;
  std::vector<BigInt> values(100, BigInt(0));
  values[3] = BigInt::from_string("123456789012345678901234567890");
  values[77] = BigInt::from_string("-987654321098765432109876543210");
  // Non-primitive on purpose: from_values normalises by the (huge) gcd.
  std::vector<Col> columns = {Col::from_values(std::move(values))};
  auto decoded =
      decode_columns<BigInt, DynBitset>(encode_columns(columns));
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_EQ(decoded[0], columns[0]);
}

TEST(MpsimSerialize, EmptyBatch) {
  std::vector<FluxColumn<CheckedI64, Bitset64>> none;
  auto decoded =
      decode_columns<CheckedI64, Bitset64>(encode_columns(none));
  EXPECT_TRUE(decoded.empty());
}

TEST(MpsimSerialize, TruncatedBufferThrows) {
  using Col = FluxColumn<CheckedI64, Bitset64>;
  std::vector<Col> columns = {
      Col::from_values({CheckedI64(1), CheckedI64(2)})};
  auto payload = encode_columns(columns);
  payload.resize(payload.size() - 3);
  EXPECT_THROW((decode_columns<CheckedI64, Bitset64>(payload)), ParseError);
}

TEST(MpsimSerialize, Crc32KnownVector) {
  const std::string check = "123456789";
  // char -> uint8_t view of the CRC test vector.  lint:allow(reinterpret-cast)
  EXPECT_EQ(crc32(reinterpret_cast<const std::uint8_t*>(check.data()),
                  check.size()),
            0xCBF43926u);
  EXPECT_EQ(crc32(nullptr, 0), 0u);
}

TEST(MpsimSerialize, CrcFramingRoundTrip) {
  Payload payload = {10, 20, 30, 40};
  append_crc32(payload);
  ASSERT_EQ(payload.size(), 8u);
  EXPECT_EQ(verify_crc32(payload), 4u);  // body size, CRC stripped
}

TEST(MpsimSerialize, FlippedByteDetected) {
  Payload payload = {10, 20, 30, 40};
  append_crc32(payload);
  payload[2] ^= 0x40;
  try {
    verify_crc32(payload);
    FAIL() << "expected CorruptPayloadError";
  } catch (const CorruptPayloadError& e) {
    EXPECT_NE(e.expected_crc, e.actual_crc);
  }
}

TEST(MpsimSerialize, CorruptedColumnBatchNeverDecodes) {
  using Col = FluxColumn<CheckedI64, Bitset64>;
  std::vector<Col> columns = {
      Col::from_values({CheckedI64(3), CheckedI64(-9), CheckedI64(12)})};
  auto payload = encode_columns(columns);
  // Damage every byte position in turn: the CRC must catch each one.
  for (std::size_t pos = 0; pos < payload.size(); ++pos) {
    auto damaged = payload;
    damaged[pos] ^= 0x01;
    EXPECT_THROW((decode_columns<CheckedI64, Bitset64>(damaged)),
                 CorruptPayloadError)
        << "flip at byte " << pos;
  }
}

// ---------------------------------------------------------------------------
// Abort propagation and exited-rank wakeups (satellite: no blocked primitive
// may hang when its peer is gone).

TEST(MpsimAbort, AbortedErrorCarriesOriginAndRootCause) {
  std::atomic<int> observed_origin{-2};
  std::atomic<bool> cause_mentions_boom{false};
  EXPECT_THROW(
      run_ranks(2,
                [&](Communicator& comm) {
                  if (comm.rank() == 1)
                    throw InvalidArgumentError("rank 1 went boom");
                  try {
                    comm.recv(1, 99);  // blocked until the abort wakes us
                  } catch (const AbortedError& e) {
                    observed_origin = e.origin_rank;
                    cause_mentions_boom =
                        e.root_cause.find("boom") != std::string::npos;
                    throw;
                  }
                }),
      InvalidArgumentError);
  EXPECT_EQ(observed_origin.load(), 1);
  EXPECT_TRUE(cause_mentions_boom.load());
}

TEST(MpsimAbort, RecvFromExitedRankWakesPromptly) {
  // Rank 1 exits without ever sending: rank 0's recv must throw, not hang.
  try {
    run_ranks(2, [](Communicator& comm) {
      if (comm.rank() == 0) comm.recv(1, 5);
    });
    FAIL() << "expected AbortedError";
  } catch (const AbortedError& e) {
    EXPECT_EQ(e.origin_rank, 1);
    EXPECT_NE(e.root_cause.find("exited"), std::string::npos);
  }
}

TEST(MpsimAbort, InFlightMessageFromExitedSenderStillDelivered) {
  run_ranks(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 3, {42});  // then exit immediately
    } else {
      EXPECT_EQ(comm.recv(0, 3), Payload{42});
    }
  });
}

TEST(MpsimAbort, ExitBeforeCollectiveAbortsWorld) {
  // Rank 1 skips the barrier and exits; ranks 0 and 2 must not deadlock.
  try {
    run_ranks(3, [](Communicator& comm) {
      if (comm.rank() != 1) comm.barrier();
    });
    FAIL() << "expected AbortedError";
  } catch (const AbortedError& e) {
    EXPECT_EQ(e.origin_rank, 1);
    EXPECT_NE(e.root_cause.find("exited"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Fault injection.

TEST(MpsimFault, CrashAtFirstOpPropagatesInjectedFault) {
  auto plan = std::make_shared<FaultPlan>();
  plan->crash_rank(1, 0);
  RunOptions options;
  options.fault_plan = plan;
  try {
    run_ranks(
        3, [](Communicator& comm) { comm.barrier(); }, options);
    FAIL() << "expected InjectedFaultError";
  } catch (const InjectedFaultError& e) {
    EXPECT_EQ(e.rank, 1);
  }
  EXPECT_EQ(plan->totals().crashes, 1u);
}

/// Crash rank 1 at each primitive of a mixed collective sequence; whatever
/// the peers are blocked in, the world must abort rather than hang.
class MpsimCrashAtEachOp : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MpsimCrashAtEachOp, WorldAbortsNotHangs) {
  auto plan = std::make_shared<FaultPlan>();
  plan->crash_rank(1, GetParam());
  RunOptions options;
  options.fault_plan = plan;
  EXPECT_THROW(run_ranks(
                   3,
                   [](Communicator& comm) {
                     comm.barrier();                             // op 0
                     (void)comm.all_gather({static_cast<std::uint8_t>(
                         comm.rank())});                         // op 1
                     (void)comm.all_reduce_sum(1);               // op 2
                     (void)comm.all_reduce_max(
                         static_cast<std::uint64_t>(comm.rank()));  // op 3
                     if (comm.rank() == 1) {
                       comm.send(0, 9, {1});                     // op 4
                     } else if (comm.rank() == 0) {
                       (void)comm.recv(1, 9);
                     }
                     comm.barrier();                             // op 5 (4)
                   },
                   options),
               InjectedFaultError);
  EXPECT_EQ(plan->totals().crashes, 1u);
}

INSTANTIATE_TEST_SUITE_P(AllCollectives, MpsimCrashAtEachOp,
                         ::testing::Values(0u, 1u, 2u, 3u, 4u, 5u));

TEST(MpsimFault, OneShotCrashDoesNotRefire) {
  auto plan = std::make_shared<FaultPlan>();
  plan->crash_rank(0, 0, /*times=*/1);
  RunOptions options;
  options.fault_plan = plan;
  auto body = [](Communicator& comm) {
    comm.barrier();
    (void)comm.all_reduce_sum(1);
  };
  EXPECT_THROW(run_ranks(2, body, options), InjectedFaultError);
  // The retried world shares the plan; the exhausted trigger stays quiet.
  run_ranks(2, body, options);
  EXPECT_EQ(plan->totals().crashes, 1u);
  EXPECT_GT(plan->ops_seen(0), 0u);
}

TEST(MpsimFault, CorruptedPayloadSurfacesAsCorruptPayloadError) {
  auto plan = std::make_shared<FaultPlan>();
  plan->corrupt_payload(0, 0);
  RunOptions options;
  options.fault_plan = plan;
  using Col = FluxColumn<CheckedI64, Bitset64>;
  EXPECT_THROW(
      run_ranks(
          2,
          [](Communicator& comm) {
            if (comm.rank() == 0) {
              std::vector<Col> columns = {
                  Col::from_values({CheckedI64(5), CheckedI64(10)})};
              comm.send(1, 0, encode_columns(columns));
            } else {
              (void)decode_columns<CheckedI64, Bitset64>(comm.recv(0, 0));
            }
          },
          options),
      CorruptPayloadError);
  EXPECT_EQ(plan->totals().corruptions, 1u);
}

TEST(MpsimFault, DroppedMessageWakesReceiverInsteadOfDeadlocking) {
  auto plan = std::make_shared<FaultPlan>();
  plan->drop_message(0, 1, 0);
  RunOptions options;
  options.fault_plan = plan;
  EXPECT_THROW(run_ranks(
                   2,
                   [](Communicator& comm) {
                     if (comm.rank() == 0) {
                       comm.send(1, 0, {9});  // silently lost
                     } else {
                       (void)comm.recv(0, 0);
                     }
                   },
                   options),
               AbortedError);
  EXPECT_EQ(plan->totals().drops, 1u);
}

TEST(MpsimFault, SecondMessageSurvivesDropOfFirst) {
  auto plan = std::make_shared<FaultPlan>();
  plan->drop_message(0, 1, 0);
  RunOptions options;
  options.fault_plan = plan;
  run_ranks(
      2,
      [](Communicator& comm) {
        if (comm.rank() == 0) {
          comm.send(1, 0, {1});  // dropped
          comm.send(1, 0, {2});  // delivered
        } else {
          EXPECT_EQ(comm.recv(0, 0), Payload{2});
        }
      },
      options);
}

TEST(MpsimFault, StragglerDelaysAreCountedAndHarmless) {
  auto plan = std::make_shared<FaultPlan>();
  plan->straggle(1, /*delay_us=*/200);
  RunOptions options;
  options.fault_plan = plan;
  run_ranks(
      3,
      [](Communicator& comm) {
        for (int i = 0; i < 3; ++i)
          EXPECT_EQ(comm.all_reduce_sum(1), 3u);
      },
      options);
  EXPECT_GE(plan->totals().delays, 3u);
}

}  // namespace
}  // namespace elmo::mpsim
