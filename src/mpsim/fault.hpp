// Deterministic fault injection for the simulated message-passing runtime.
//
// The paper's robustness story (Table IV: Algorithm 2 dies on Network II at
// iteration 59; Algorithm 3 survives by re-splitting the oversized subsets)
// hinges on how the system behaves when a rank fails.  A FaultPlan lets
// tests and experiments script such failures deterministically:
//
//   * crash a chosen rank at a chosen operation index (every communicator
//     primitive — send/recv/barrier/all_gather/all_reduce — counts as one
//     op on the calling rank),
//   * corrupt or drop point-to-point payloads (corruption is caught by the
//     CRC32 framing in serialize.hpp and surfaces as CorruptPayloadError),
//   * inject stragglers (a fixed per-rank delay before every operation).
//
// Op/payload counters are CUMULATIVE across worlds sharing one plan, so a
// plan threaded through the Algorithm-3 driver models "the cluster loses a
// node once, mid-run": the fault fires in whichever subset reaches the
// trigger, the retried attempt finds the trigger exhausted and succeeds.
// Every fault decision is guarded by one mutex (operations are simulated
// message passing; the lock is not on any hot path) and corruption bytes
// are drawn from the seeded elmo PRNG, so runs are bit-reproducible.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "mpsim/communicator.hpp"
#include "support/error.hpp"
#include "support/random.hpp"

namespace elmo::mpsim {

/// Thrown inside a rank body when the fault plan crashes that rank.
class InjectedFaultError : public Error {
 public:
  InjectedFaultError(int fault_rank, std::uint64_t fault_op,
                     const std::string& where)
      : Error("mpsim: injected crash on rank " + std::to_string(fault_rank) +
              " at op " + std::to_string(fault_op) + " (" + where + ")"),
        rank(fault_rank),
        op(fault_op) {}

  int rank;
  std::uint64_t op;
};

struct FaultPlan {
  explicit FaultPlan(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
      : seed_(seed) {}

  FaultPlan(const FaultPlan&) = delete;
  FaultPlan& operator=(const FaultPlan&) = delete;

  /// Aggregate counts of everything the plan did, for assertions/reports.
  struct Totals {
    std::uint64_t crashes = 0;
    std::uint64_t corruptions = 0;
    std::uint64_t drops = 0;
    std::uint64_t delays = 0;
  };

  // ---- configuration (call before running a world) ----

  /// Crash `rank` at the first op whose cumulative index reaches `at_op`;
  /// re-arms up to `times` total firings (a retried world crashes again at
  /// its first op until the trigger is exhausted).
  FaultPlan& crash_rank(int rank, std::uint64_t at_op, int times = 1) {
    std::lock_guard lock(mutex_);
    crashes_[rank].push_back({at_op, times});
    return *this;
  }

  /// Corrupt outgoing payload number `nth_payload` (cumulative per rank;
  /// point-to-point sends and all_gather contributions both count).
  FaultPlan& corrupt_payload(int rank, std::uint64_t nth_payload,
                             int times = 1) {
    std::lock_guard lock(mutex_);
    corruptions_[rank].push_back({nth_payload, times});
    return *this;
  }

  /// Silently lose the `nth` point-to-point message from `source` to
  /// `destination` (cumulative per ordered pair).
  FaultPlan& drop_message(int source, int destination, std::uint64_t nth,
                          int times = 1) {
    std::lock_guard lock(mutex_);
    drops_[{source, destination}].push_back({nth, times});
    return *this;
  }

  /// Delay every operation of `rank` by `delay_us` microseconds.
  FaultPlan& straggle(int rank, std::uint32_t delay_us) {
    std::lock_guard lock(mutex_);
    straggle_us_[rank] = delay_us;
    return *this;
  }

  // ---- runtime hooks (called by Communicator) ----

  /// Advance the cumulative op counter for `rank`; throws
  /// InjectedFaultError if a crash trigger fires at this op.
  void on_op(int rank, const char* where) {
    std::uint64_t op = 0;
    bool crash = false;
    {
      std::lock_guard lock(mutex_);
      op = ops_[rank]++;
      crash = fire_locked(crashes_, rank, op);
      if (crash) ++totals_.crashes;
    }
    if (crash) throw InjectedFaultError(rank, op, where);
  }

  /// Account one outgoing payload from `rank`; if a corruption trigger
  /// fires, damage `payload` in place (one deterministic byte flip).
  void on_payload(int rank, Payload& payload) {
    std::lock_guard lock(mutex_);
    const std::uint64_t index = payloads_[rank]++;
    if (!fire_locked(corruptions_, rank, index)) return;
    ++totals_.corruptions;
    Rng rng(seed_ ^ (0xC0FFEEULL + 0x9e37ULL * totals_.corruptions));
    if (payload.empty()) {
      payload.push_back(static_cast<std::uint8_t>(rng.next() | 1));
      return;
    }
    const std::size_t pos = rng.below(payload.size());
    const auto mask = static_cast<std::uint8_t>(rng.next() % 255 + 1);
    payload[pos] ^= mask;  // mask != 0, so the byte always changes
  }

  /// True iff the nth message from `source` to `destination` must be lost.
  bool on_send(int source, int destination) {
    std::lock_guard lock(mutex_);
    const std::pair<int, int> key{source, destination};
    const std::uint64_t nth = pair_sends_[key]++;
    if (!fire_locked(drops_, key, nth)) return false;
    ++totals_.drops;
    return true;
  }

  /// Configured delay for `rank` (0 = none); counts one delay when nonzero.
  std::uint32_t straggler_delay_us(int rank) {
    std::lock_guard lock(mutex_);
    auto it = straggle_us_.find(rank);
    if (it == straggle_us_.end() || it->second == 0) return 0;
    ++totals_.delays;
    return it->second;
  }

  /// Pure query (no delay tallied): is `rank` configured as a straggler?
  /// The wait classifier uses this to label blocked time as straggler-wait
  /// without perturbing the Totals the tests assert on.
  [[nodiscard]] bool is_straggler(int rank) const {
    std::lock_guard lock(mutex_);
    auto it = straggle_us_.find(rank);
    return it != straggle_us_.end() && it->second != 0;
  }

  /// Pure query: does any rank other than `rank` straggle?  Classifies
  /// barrier-side blocking: waiting on a collective that a known straggler
  /// has yet to join is straggler-wait, not ordinary barrier skew.
  [[nodiscard]] bool has_straggler_excluding(int rank) const {
    std::lock_guard lock(mutex_);
    for (const auto& [r, us] : straggle_us_) {
      if (r != rank && us != 0) return true;
    }
    return false;
  }

  // ---- observability ----

  [[nodiscard]] Totals totals() const {
    std::lock_guard lock(mutex_);
    return totals_;
  }

  /// Cumulative operations `rank` has executed under this plan.
  [[nodiscard]] std::uint64_t ops_seen(int rank) const {
    std::lock_guard lock(mutex_);
    auto it = ops_.find(rank);
    return it == ops_.end() ? 0 : it->second;
  }

 private:
  struct Trigger {
    std::uint64_t at;  // fire at the first event index >= at
    int remaining;     // re-armed firings left
  };

  template <typename Key>
  static bool fire_locked(std::map<Key, std::vector<Trigger>>& triggers,
                          const Key& key, std::uint64_t index) {
    auto it = triggers.find(key);
    if (it == triggers.end()) return false;
    for (auto& trigger : it->second) {
      if (trigger.remaining > 0 && index >= trigger.at) {
        --trigger.remaining;
        return true;
      }
    }
    return false;
  }

  mutable std::mutex mutex_;
  std::uint64_t seed_;
  std::map<int, std::vector<Trigger>> crashes_;
  std::map<int, std::vector<Trigger>> corruptions_;
  std::map<std::pair<int, int>, std::vector<Trigger>> drops_;
  std::map<int, std::uint32_t> straggle_us_;
  std::map<int, std::uint64_t> ops_;
  std::map<int, std::uint64_t> payloads_;
  std::map<std::pair<int, int>, std::uint64_t> pair_sends_;
  Totals totals_;
};

}  // namespace elmo::mpsim
