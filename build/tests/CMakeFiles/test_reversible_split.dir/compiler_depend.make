# Empty compiler generated dependencies file for test_reversible_split.
# This may be replaced when dependencies are built.
