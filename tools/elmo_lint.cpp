// elmo_lint — the repository's own static checker.
//
// Four project rules that clang-tidy does not express well, enforced over
// every C++ source passed on the command line (scripts/lint.sh feeds it the
// tracked sources; CI fails on any finding):
//
//   naked-new         no `new` outside an owning wrapper.  Allocations go
//                     through std::make_unique/containers; intentionally
//                     leaked singletons carry a lint:allow(naked-new)
//                     annotation explaining why.
//   no-rand           no rand()/srand(): the project requires deterministic
//                     runs; randomness comes from seeded engines.
//   catch-all         a `catch (...)` must rethrow, capture
//                     std::current_exception(), or carry a
//                     lint:allow(catch-all) annotation — silently swallowing
//                     unknown exceptions is how the mpsim bugs of PR 1 hid.
//   reinterpret-cast  every reinterpret_cast is annotated with
//                     lint:allow(reinterpret-cast) plus a justification.
//
// Annotations are comments of the form `lint:allow(<rule>)` on the same
// line as the finding or the line directly above it.
//
// The scanner strips comments, string and character literals (including
// raw strings) before matching, so prose never trips a rule; annotations
// are looked up in the RAW text, where the comments still exist.
//
// Usage: elmo_lint FILE...            exit 0 = clean, 1 = findings,
//                                     2 = usage/IO error
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct Finding {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

/// Replace comments, string literals and char literals with spaces,
/// preserving length and newlines so offsets and line numbers still match.
std::string strip_noncode(const std::string& text) {
  std::string out = text;
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString
  };
  State state = State::kCode;
  std::string raw_terminator;  // e.g. )delim" for R"delim(
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out[i] = ' ';
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                                   text[i - 1])) &&
                               text[i - 1] != '_'))) {
          // Raw string: R"delim( ... )delim"
          std::size_t open = text.find('(', i + 2);
          if (open != std::string::npos) {
            raw_terminator =
                ")" + text.substr(i + 2, open - (i + 2)) + "\"";
            for (std::size_t j = i; j <= open && j < text.size(); ++j) {
              if (text[j] != '\n') out[j] = ' ';
            }
            i = open;
            state = State::kRawString;
          }
        } else if (c == '"') {
          state = State::kString;
          out[i] = ' ';
        } else if (c == '\'') {
          state = State::kChar;
          out[i] = ' ';
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          out[i] = ' ';
          if (i + 1 < text.size() && text[i + 1] != '\n') {
            out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '"') {
          state = State::kCode;
          out[i] = ' ';
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          out[i] = ' ';
          if (i + 1 < text.size() && text[i + 1] != '\n') {
            out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '\'') {
          state = State::kCode;
          out[i] = ' ';
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kRawString:
        if (text.compare(i, raw_terminator.size(), raw_terminator) == 0) {
          for (std::size_t j = 0; j < raw_terminator.size(); ++j) {
            out[i + j] = ' ';
          }
          i += raw_terminator.size() - 1;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t nl = text.find('\n', start);
    if (nl == std::string::npos) {
      lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Find `word` as a whole identifier within `line`, at or after `from`.
std::size_t find_word(const std::string& line, const std::string& word,
                      std::size_t from = 0) {
  std::size_t pos = from;
  while ((pos = line.find(word, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !is_ident_char(line[pos - 1]);
    const std::size_t end = pos + word.size();
    const bool right_ok = end >= line.size() || !is_ident_char(line[end]);
    if (left_ok && right_ok) return pos;
    pos = end;
  }
  return std::string::npos;
}

/// Is the finding on raw line `idx` (0-based) excused by a
/// lint:allow(<rule>) annotation on the same or previous raw line?
bool allowed(const std::vector<std::string>& raw, std::size_t idx,
             const std::string& rule) {
  const std::string tag = "lint:allow(" + rule + ")";
  if (raw[idx].find(tag) != std::string::npos) return true;
  return idx > 0 && raw[idx - 1].find(tag) != std::string::npos;
}

/// `catch (...)` handler bodies must not swallow: look for a rethrow or an
/// exception_ptr capture inside the matching brace block.
bool catch_block_handles(const std::string& stripped, std::size_t from) {
  std::size_t open = stripped.find('{', from);
  if (open == std::string::npos) return false;
  int depth = 0;
  std::size_t end = open;
  for (std::size_t i = open; i < stripped.size(); ++i) {
    if (stripped[i] == '{') ++depth;
    if (stripped[i] == '}') {
      --depth;
      if (depth == 0) {
        end = i;
        break;
      }
    }
  }
  const std::string block = stripped.substr(open, end - open + 1);
  return find_word(block, "throw") != std::string::npos ||
         block.find("current_exception") != std::string::npos ||
         block.find("rethrow_exception") != std::string::npos;
}

std::size_t line_of_offset(const std::string& text, std::size_t offset) {
  std::size_t line = 1;
  for (std::size_t i = 0; i < offset && i < text.size(); ++i) {
    if (text[i] == '\n') ++line;
  }
  return line;
}

/// Position of `catch` immediately followed by `( ... )` with only dots and
/// whitespace between the parentheses.
std::size_t find_catch_all(const std::string& stripped, std::size_t from) {
  std::size_t pos = from;
  while ((pos = find_word(stripped, "catch", pos)) != std::string::npos) {
    std::size_t p = pos + 5;
    while (p < stripped.size() &&
           std::isspace(static_cast<unsigned char>(stripped[p]))) {
      ++p;
    }
    if (p < stripped.size() && stripped[p] == '(') {
      ++p;
      std::size_t dots = 0;
      while (p < stripped.size() &&
             (stripped[p] == '.' ||
              std::isspace(static_cast<unsigned char>(stripped[p])))) {
        if (stripped[p] == '.') ++dots;
        ++p;
      }
      if (p < stripped.size() && stripped[p] == ')' && dots == 3) return pos;
    }
    pos += 5;
  }
  return std::string::npos;
}

void lint_file(const std::string& path, std::vector<Finding>& findings) {
  std::ifstream in(path);
  if (!in) {
    findings.push_back({path, 0, "io", "cannot open file"});
    return;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  const std::string stripped = strip_noncode(text);
  const std::vector<std::string> raw_lines = split_lines(text);
  const std::vector<std::string> code_lines = split_lines(stripped);

  for (std::size_t i = 0; i < code_lines.size(); ++i) {
    const std::string& line = code_lines[i];
    if (find_word(line, "new") != std::string::npos &&
        !allowed(raw_lines, i, "naked-new")) {
      findings.push_back(
          {path, i + 1, "naked-new",
           "raw `new`: use std::make_unique/containers, or annotate an "
           "intentional leak with lint:allow(naked-new)"});
    }
    if ((find_word(line, "rand") != std::string::npos ||
         find_word(line, "srand") != std::string::npos) &&
        !allowed(raw_lines, i, "no-rand")) {
      findings.push_back({path, i + 1, "no-rand",
                          "rand()/srand() breaks deterministic runs: use a "
                          "seeded <random> engine"});
    }
    if (line.find("reinterpret_cast") != std::string::npos &&
        !allowed(raw_lines, i, "reinterpret-cast")) {
      findings.push_back(
          {path, i + 1, "reinterpret-cast",
           "unannotated reinterpret_cast: justify it with "
           "lint:allow(reinterpret-cast) on this or the previous line"});
    }
  }

  // catch-all needs the whole text (handler blocks span lines).
  std::size_t pos = 0;
  while ((pos = find_catch_all(stripped, pos)) != std::string::npos) {
    const std::size_t line = line_of_offset(text, pos);
    if (!allowed(raw_lines, line - 1, "catch-all") &&
        !catch_block_handles(stripped, pos)) {
      findings.push_back(
          {path, line, "catch-all",
           "catch (...) swallows the exception: rethrow, capture "
           "std::current_exception(), or annotate with "
           "lint:allow(catch-all)"});
    }
    pos += 5;
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: elmo_lint FILE...\n");
    return 2;
  }
  std::vector<Finding> findings;
  for (int i = 1; i < argc; ++i) lint_file(argv[i], findings);
  for (const auto& f : findings) {
    std::fprintf(stderr, "%s:%zu: [%s] %s\n", f.file.c_str(), f.line,
                 f.rule.c_str(), f.message.c_str());
  }
  if (!findings.empty()) {
    std::fprintf(stderr, "elmo_lint: %zu finding(s)\n", findings.size());
    return 1;
  }
  return 0;
}
