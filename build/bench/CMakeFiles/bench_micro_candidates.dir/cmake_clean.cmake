file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_candidates.dir/bench_micro_candidates.cpp.o"
  "CMakeFiles/bench_micro_candidates.dir/bench_micro_candidates.cpp.o.d"
  "bench_micro_candidates"
  "bench_micro_candidates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_candidates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
