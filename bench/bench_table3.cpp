// Table III: the combined parallel Nullspace Algorithm (Algorithm 3) on
// Network I with the paper's divide-and-conquer partition {R89r, R74r},
// compared against the unsplit Algorithm 2 at the same rank count.
//
// Paper reference (16 cores):
//   subset       R89r'R74r'  R89r'R74r  R89r R74r'  R89r R74r
//   # EFM          274,919     599,344    207,533    433,518
//   total (s)        21.97       67.77      20.79      31.07
//   cumulative: 141.6 s vs 208.98 s unsplit;
//   candidates: 81,714,944,316 vs 159,599,700,951 unsplit.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace elmo;
  const bool full = bench::full_scale(argc, argv);
  bench::print_scale_banner(
      full, "Table III: Algorithm 3 on Network I, partition {R89r, R74r}");

  Network network = bench::network_1(full);
  auto compressed = compress(network);
  const int ranks = 16;

  // Baseline: Algorithm 2 (one row of Table II).
  EfmOptions unsplit;
  unsplit.algorithm = Algorithm::kCombinatorialParallel;
  unsplit.num_ranks = ranks;
  Stopwatch unsplit_watch;
  auto baseline = compute_efms(compressed, network.reversibility(), unsplit);
  const double unsplit_seconds = unsplit_watch.seconds();

  // Divide and conquer across the paper's reactions.  On the demo instance
  // the knockouts change the coupling structure (R89r merges into an
  // irreversible transporter), so two trailing reversible reactions are
  // auto-selected instead; the subset labels below show which.
  EfmOptions combined;
  combined.algorithm = Algorithm::kCombined;
  combined.num_ranks = ranks;
  if (full) {
    combined.partition_reactions = {"R89r", "R74r"};
  } else {
    combined.qsub = 2;
  }
  Stopwatch combined_watch;
  auto result = compute_efms(compressed, network.reversibility(), combined);
  const double combined_seconds = combined_watch.seconds();

  Table table({"subset", "# EFM", "gen cand (s)", "rank test (s)",
               "comm (s)", "merge (s)", "total (s)", "# candidates"});
  for (const auto& subset : result.subsets) {
    table.add_row({subset.label, with_commas(subset.num_efms),
                   seconds_str(subset.gen_cand_seconds),
                   seconds_str(subset.rank_test_seconds),
                   seconds_str(subset.communicate_seconds),
                   seconds_str(subset.merge_seconds),
                   seconds_str(subset.seconds),
                   with_commas(subset.candidate_pairs)});
  }
  std::fputs(table.render("Algorithm 3 (measured), 16 ranks").c_str(),
             stdout);

  std::printf("\nCumulative total time:     %s s   (Algorithm 2 unsplit: %s "
              "s)\n",
              seconds_str(combined_seconds).c_str(),
              seconds_str(unsplit_seconds).c_str());
  std::printf("Total # EFM:               %s   (unsplit: %s%s)\n",
              with_commas(result.num_modes()).c_str(),
              with_commas(baseline.num_modes()).c_str(),
              result.modes == baseline.modes ? ", sets identical"
                                             : " -- MISMATCH");
  std::printf("Total # candidate modes:   %s   (unsplit: %s, ratio %.2f)\n",
              with_commas(result.stats.total_pairs_probed).c_str(),
              with_commas(baseline.stats.total_pairs_probed).c_str(),
              static_cast<double>(result.stats.total_pairs_probed) /
                  static_cast<double>(baseline.stats.total_pairs_probed));
  std::printf("\npaper: candidates 81.7e9 vs 159.6e9 (ratio 0.51), time "
              "141.6 s vs 208.98 s\n");
  return result.modes == baseline.modes ? 0 : 1;
}
