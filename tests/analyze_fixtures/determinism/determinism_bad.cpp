// Seeded violations for the determinism pass.  Never compiled — only
// analyzed.  Fixture files carry no src/ tree prefix, so the pass
// treats them as in scope.
#include <chrono>
#include <ctime>
#include <map>
#include <set>
#include <thread>
#include <unordered_map>
#include <unordered_set>

namespace fixture {

struct Mode {};

// pointer-key: iteration order follows allocation addresses.
std::map<Mode*, int> g_by_mode;
std::set<const char*> g_names;

inline long walk() {
  // unordered-iter: range-for over an unordered container.
  std::unordered_map<int, long> counts;
  long total = 0;
  for (const auto& kv : counts) total += kv.second;

  // unordered-iter: explicit begin() on an unordered container.
  std::unordered_set<int> seen;
  auto it = seen.begin();
  (void)it;
  return total;
}

inline long stamp() {
  // wall-clock: result depends on when the run happens.
  auto now = std::chrono::steady_clock::now();
  (void)now;
  auto wall = std::chrono::system_clock::now();
  (void)wall;
  long t = time(nullptr);

  // wall-clock: thread identity is a scheduling artifact.
  auto id = std::this_thread::get_id();
  (void)id;
  return t;
}

}  // namespace fixture
