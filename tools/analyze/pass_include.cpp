// Pass 1 — include graph.
//
// Parses every `#include` edge under src/ and enforces the module layering
// DAG:
//
//   layer 0: support, bitset, bigint          (leaf utilities, exact ints)
//   layer 1: linalg, network, io, parallel    (matrices, models, threads)
//   layer 2: compress, models, nullspace, mpsim, core, analysis
//   layer 3: elmo                             (public umbrella)
//
// A module may include its own layer or below, never above.  The two
// cross-cutting diagnostics modules — obs (tracing/metrics) and check
// (contracts/audit/lockdep) — are reachable from ANY module, but only via
// their facade headers (obs/obs.hpp; check/check.hpp, plus the
// dependency-free macro facades check/contracts.hpp and
// check/lockorder.hpp which instrumented code at any layer may use).
// Everything else the pass emits: include cycles at file
// and module granularity, missing `#pragma once`, IWYU-lite unused and
// transitive-only ("missing") includes, and a Graphviz dump of the module
// graph (--dot).
#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analyze/analyzer.hpp"
#include "analyze/lexer.hpp"

namespace elmo_analyze {

namespace {

struct Include {
  std::string target;       // as written between the delimiters
  bool quoted = false;      // "..." vs <...>
  std::size_t line = 0;     // 1-based
  std::size_t resolved;     // index into project.files, or npos
};

int module_layer(const std::string& module) {
  if (module == "support" || module == "bitset" || module == "bigint")
    return 0;
  if (module == "linalg" || module == "network" || module == "io" ||
      module == "parallel")
    return 1;
  if (module == "compress" || module == "models" || module == "nullspace" ||
      module == "mpsim" || module == "core" || module == "analysis" ||
      module == "resource")
    return 2;
  if (module == "elmo") return 3;
  return -1;  // unknown (fixtures, future modules): layering not enforced
}

bool is_cross_module(const std::string& module) {
  return module == "obs" || module == "check";
}

/// Facade entry headers for the cross-cutting modules, as include targets.
/// obs has a single facade; check has the full diagnostics facade
/// (check.hpp, pulls the audit machinery and therefore nullspace/linalg —
/// layer 2+ only in practice) plus the two dependency-free macro facades
/// (contracts.hpp, lockorder.hpp) that instrumented code at ANY layer may
/// use.
bool is_facade_target(const std::string& target) {
  return target == "obs/obs.hpp" || target == "check/check.hpp" ||
         target == "check/contracts.hpp" || target == "check/lockorder.hpp";
}

/// Umbrella headers whose whole transitive closure counts as directly
/// included (including them *is* the API).
bool is_umbrella_target(const std::string& target) {
  return is_facade_target(target) || target == "elmo/elmo.hpp";
}

const char* kLayerSummary =
    "support/bitset/bigint <- linalg/network/io/parallel <- "
    "compress/models/nullspace/mpsim/core/analysis/resource <- elmo";

std::vector<Include> extract_includes(const SourceFile& file,
                                      const Project& project) {
  std::vector<Include> out;
  for (std::size_t i = 0; i < file.stripped_lines.size(); ++i) {
    const std::string& line = file.stripped_lines[i];
    std::size_t pos = line.find_first_not_of(" \t");
    if (pos == std::string::npos || line[pos] != '#') continue;
    pos = line.find_first_not_of(" \t", pos + 1);
    if (pos == std::string::npos || line.compare(pos, 7, "include") != 0)
      continue;
    // The stripper blanks the quoted target as if it were a string
    // literal, so the delimiter and target must be read from the RAW
    // line (same length, so offsets agree).
    const std::string& src_line = file.raw_lines[i];
    pos = src_line.find_first_not_of(" \t", pos + 7);
    if (pos == std::string::npos) continue;
    char close = 0;
    if (src_line[pos] == '<') {
      close = '>';
    } else if (src_line[pos] == '"') {
      close = '"';
    } else {
      continue;
    }
    std::size_t open = pos;
    if (open == std::string::npos) continue;
    std::size_t end = src_line.find(close, open + 1);
    if (end == std::string::npos) continue;
    Include inc;
    inc.target = src_line.substr(open + 1, end - open - 1);
    inc.quoted = close == '"';
    inc.line = i + 1;
    inc.resolved = std::string::npos;
    if (inc.quoted) {
      // Root-relative-to-src resolution (the project style), with a
      // same-directory fallback.
      inc.resolved = project.find("src/" + inc.target);
      if (inc.resolved == std::string::npos) {
        std::size_t slash = file.path.rfind('/');
        if (slash != std::string::npos) {
          inc.resolved =
              project.find(file.path.substr(0, slash + 1) + inc.target);
        }
      }
    }
    out.push_back(std::move(inc));
  }
  return out;
}

/// Identifiers a header "provides": macro names, type names
/// (class/struct/enum/union, using/typedef aliases), function and method
/// declaration names, and constexpr/inline variable names.  Heuristic but
/// deliberately biased: extra identifiers make the unused-include rule
/// MORE conservative, never less.
std::set<std::string> extract_provides(const SourceFile& file) {
  std::set<std::string> provides;
  // #define NAME — from the line scan (the lexer skips directives).
  for (const std::string& line : file.stripped_lines) {
    std::size_t pos = line.find_first_not_of(" \t");
    if (pos == std::string::npos || line[pos] != '#') continue;
    pos = line.find_first_not_of(" \t", pos + 1);
    if (pos == std::string::npos || line.compare(pos, 6, "define") != 0)
      continue;
    pos = line.find_first_not_of(" \t", pos + 6);
    if (pos == std::string::npos) continue;
    std::size_t end = pos;
    while (end < line.size() && is_ident_char(line[end])) ++end;
    if (end > pos) provides.insert(line.substr(pos, end - pos));
  }
  const std::vector<Token> toks = lex(file.stripped);
  static const std::set<std::string> kNotType = {
      "if",     "for",   "while",  "switch", "return", "sizeof",
      "catch",  "new",   "delete", "throw",  "else",   "do",
      "case",   "const", "static", "public", "private", "protected",
      "typename", "template", "operator", "noexcept", "alignof",
      "decltype", "co_return", "co_await", "co_yield", "requires",
  };
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (!t.ident()) continue;
    if (t.text == "class" || t.text == "struct" || t.text == "enum" ||
        t.text == "union") {
      std::size_t j = i + 1;
      if (j < toks.size() && toks[j].is("class")) ++j;  // enum class
      if (j < toks.size() && toks[j].ident() &&
          kNotType.count(toks[j].text) == 0) {
        provides.insert(toks[j].text);
      }
      continue;
    }
    if (t.text == "using" && i + 2 < toks.size() && toks[i + 1].ident() &&
        toks[i + 2].is("=")) {
      provides.insert(toks[i + 1].text);
      continue;
    }
    if (t.text == "typedef") {
      // Last identifier before the terminating ';'.
      std::string name;
      for (std::size_t j = i + 1; j < toks.size() && !toks[j].is(";"); ++j) {
        if (toks[j].ident()) name = toks[j].text;
      }
      if (!name.empty()) provides.insert(name);
      continue;
    }
    if ((t.text == "constexpr" || t.text == "inline" || t.text == "extern")) {
      // Variable declaration: last identifier before '=' or ';' on this
      // statement (bounded lookahead; function definitions hit '(' first).
      for (std::size_t j = i + 1; j < toks.size() && j < i + 12; ++j) {
        if (toks[j].is("(") || toks[j].is(";") || toks[j].is("{")) break;
        if (toks[j].is("=") && j > i + 1 && toks[j - 1].ident()) {
          provides.insert(toks[j - 1].text);
          break;
        }
      }
    }
    // Function/method declaration: IDENT '(' preceded by a type-ish token.
    if (i + 1 < toks.size() && toks[i + 1].is("(") && i > 0 &&
        kNotType.count(t.text) == 0) {
      const Token& prev = toks[i - 1];
      const bool typeish = (prev.ident() && kNotType.count(prev.text) == 0) ||
                           prev.is(">") || prev.is("*") || prev.is("&") ||
                           prev.is("~");
      if (typeish) provides.insert(t.text);
    }
  }
  return provides;
}

/// Every identifier the file refers to: all lexed identifier tokens plus
/// identifiers on preprocessor conditional lines (#if/#ifdef/... use
/// config macros that an include may exist solely to provide).
std::set<std::string> extract_uses(const SourceFile& file) {
  std::set<std::string> uses;
  for (const Token& t : lex(file.stripped)) {
    if (t.ident()) uses.insert(t.text);
  }
  for (const std::string& line : file.stripped_lines) {
    std::size_t pos = line.find_first_not_of(" \t");
    if (pos == std::string::npos || line[pos] != '#') continue;
    pos = line.find_first_not_of(" \t", pos + 1);
    if (pos == std::string::npos) continue;
    if (line.compare(pos, 2, "if") != 0 && line.compare(pos, 4, "elif") != 0)
      continue;
    std::size_t i = pos;
    while (i < line.size()) {
      if (is_ident_char(line[i])) {
        std::size_t end = i;
        while (end < line.size() && is_ident_char(line[end])) ++end;
        uses.insert(line.substr(i, end - i));
        i = end;
      } else {
        ++i;
      }
    }
  }
  return uses;
}

std::string file_stem(const std::string& path) {
  std::size_t slash = path.rfind('/');
  std::string base =
      slash == std::string::npos ? path : path.substr(slash + 1);
  std::size_t dot = base.rfind('.');
  return dot == std::string::npos ? base : base.substr(0, dot);
}

}  // namespace

void pass_include(const Project& project, const Options& opts,
                  std::vector<Finding>& findings) {
  const std::size_t n = project.files.size();
  std::vector<std::vector<Include>> includes(n);
  for (std::size_t i = 0; i < n; ++i) {
    includes[i] = extract_includes(project.files[i], project);
  }

  // ---- layering + facade + pragma-once ----
  for (std::size_t i = 0; i < n; ++i) {
    const SourceFile& f = project.files[i];
    if (f.is_header &&
        f.stripped.find("#pragma once") == std::string::npos &&
        !f.allows(1, "pragma-once")) {
      findings.push_back({"include", "pragma-once", f.path, 1,
                          "header is missing #pragma once", false});
    }
    if (f.module.empty()) continue;
    for (const Include& inc : includes[i]) {
      if (!inc.quoted || inc.resolved == std::string::npos) continue;
      const SourceFile& target = project.files[inc.resolved];
      if (target.module.empty() || target.module == f.module) continue;
      if (is_cross_module(target.module)) {
        if (!is_facade_target(inc.target) &&
            !f.allows(inc.line, "facade")) {
          findings.push_back(
              {"include", "facade", f.path, inc.line,
               "include of " + inc.target + " from module '" + f.module +
                   "': the cross-cutting '" + target.module +
                   "' module is reachable only via its facade header (" +
                   (target.module == "obs"
                        ? "obs/obs.hpp"
                        : "check/check.hpp, or the macro facades "
                          "check/contracts.hpp / check/lockorder.hpp") +
                   ")",
               false});
        }
        continue;
      }
      if (is_cross_module(f.module)) continue;  // diagnostics see everything
      const int from = module_layer(f.module);
      const int to = module_layer(target.module);
      if (from >= 0 && to >= 0 && to > from &&
          !f.allows(inc.line, "layering")) {
        findings.push_back(
            {"include", "layering", f.path, inc.line,
             "module '" + f.module + "' (layer " + std::to_string(from) +
                 ") must not include '" + target.module + "' (layer " +
                 std::to_string(to) + "); the layering DAG is " +
                 kLayerSummary,
             false});
      }
    }
  }

  // ---- file-level include cycles ----
  {
    // Colors: 0 = unvisited, 1 = on stack, 2 = done.
    std::vector<int> color(n, 0);
    std::vector<std::size_t> stack;
    // Iterative DFS with an explicit edge cursor per frame.
    struct Frame {
      std::size_t file;
      std::size_t next_edge;
    };
    for (std::size_t start = 0; start < n; ++start) {
      if (color[start] != 0) continue;
      std::vector<Frame> frames{{start, 0}};
      color[start] = 1;
      stack.push_back(start);
      while (!frames.empty()) {
        Frame& fr = frames.back();
        bool descended = false;
        while (fr.next_edge < includes[fr.file].size()) {
          const Include& inc = includes[fr.file][fr.next_edge++];
          if (inc.resolved == std::string::npos) continue;
          const std::size_t tgt = inc.resolved;
          if (color[tgt] == 1) {
            // Back edge: report the cycle path once, at this include site.
            std::string cycle;
            bool in_cycle = false;
            for (std::size_t s : stack) {
              if (s == tgt) in_cycle = true;
              if (in_cycle) cycle += project.files[s].path + " -> ";
            }
            cycle += project.files[tgt].path;
            findings.push_back({"include", "cycle",
                                project.files[fr.file].path, inc.line,
                                "include cycle: " + cycle, false});
            continue;
          }
          if (color[tgt] == 0) {
            color[tgt] = 1;
            stack.push_back(tgt);
            frames.push_back({tgt, 0});
            descended = true;
            break;
          }
        }
        if (!descended && !frames.empty() &&
            frames.back().next_edge >= includes[frames.back().file].size()) {
          color[frames.back().file] = 2;
          stack.pop_back();
          frames.pop_back();
        }
      }
    }
  }

  // ---- module-level cycles (normal modules only; file-level acyclicity
  // does not imply module-level acyclicity) ----
  {
    std::map<std::string, std::set<std::string>> mod_edges;
    for (std::size_t i = 0; i < n; ++i) {
      const std::string& from = project.files[i].module;
      if (from.empty() || is_cross_module(from)) continue;
      for (const Include& inc : includes[i]) {
        if (inc.resolved == std::string::npos) continue;
        const std::string& to = project.files[inc.resolved].module;
        if (to.empty() || to == from || is_cross_module(to)) continue;
        mod_edges[from].insert(to);
      }
    }
    std::map<std::string, int> color;
    std::vector<std::string> order;
    // Small graph: recursive lambda is fine.
    std::vector<std::string> path;
    struct Dfs {
      std::map<std::string, std::set<std::string>>& edges;
      std::map<std::string, int>& color;
      std::vector<std::string>& path;
      std::vector<Finding>& findings;
      void visit(const std::string& m) {
        color[m] = 1;
        path.push_back(m);
        for (const std::string& to : edges[m]) {
          if (color[to] == 1) {
            std::string cycle;
            bool in_cycle = false;
            for (const std::string& p : path) {
              if (p == to) in_cycle = true;
              if (in_cycle) cycle += p + " -> ";
            }
            cycle += to;
            findings.push_back({"include", "cycle", "src/" + m, 0,
                                "module cycle: " + cycle, false});
          } else if (color[to] == 0) {
            visit(to);
          }
        }
        path.pop_back();
        color[m] = 2;
      }
    } dfs{mod_edges, color, path, findings};
    for (const auto& entry : mod_edges) {
      if (color[entry.first] == 0) dfs.visit(entry.first);
    }
    (void)order;
  }

  // ---- IWYU-lite: unused and transitive-only includes ----
  std::vector<std::set<std::string>> provides(n);
  std::vector<std::set<std::string>> uses(n);
  for (std::size_t i = 0; i < n; ++i) {
    provides[i] = extract_provides(project.files[i]);
    uses[i] = extract_uses(project.files[i]);
  }
  // Transitive include closure per file (indices), memoized.
  std::vector<std::set<std::size_t>> closure(n);
  std::vector<int> closure_state(n, 0);
  struct Closure {
    const std::vector<std::vector<Include>>& includes;
    std::vector<std::set<std::size_t>>& closure;
    std::vector<int>& state;
    void visit(std::size_t i) {
      if (state[i] != 0) return;  // done or in-progress (cycle guard)
      state[i] = 1;
      for (const Include& inc : includes[i]) {
        if (inc.resolved == std::string::npos) continue;
        visit(inc.resolved);
        closure[i].insert(inc.resolved);
        closure[i].insert(closure[inc.resolved].begin(),
                          closure[inc.resolved].end());
      }
      state[i] = 2;
    }
  } closure_builder{includes, closure, closure_state};
  for (std::size_t i = 0; i < n; ++i) closure_builder.visit(i);

  // Provider map for the missing/self-contained rules: identifier ->
  // headers whose DIRECT provides contain it.  Restricted to type-like
  // names (LeadingUpper) and macros (ALL_CAPS) — the full provides sets
  // also contain parameter and method names, which are far too ambiguous
  // to attribute to a unique provider.
  auto providerworthy = [](const std::string& ident) {
    if (ident.size() < 2) return false;
    if (std::isupper(static_cast<unsigned char>(ident[0])) == 0) return false;
    return true;
  };
  std::map<std::string, std::vector<std::size_t>> providers;
  for (std::size_t i = 0; i < n; ++i) {
    if (!project.files[i].is_header) continue;
    for (const std::string& p : provides[i]) {
      if (providerworthy(p)) providers[p].push_back(i);
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    const SourceFile& f = project.files[i];
    const std::string stem = file_stem(f.path);
    // Identifiers available through direct includes (umbrellas count with
    // their whole closure — including them *is* the API).
    std::set<std::string> direct_avail = provides[i];
    for (const Include& inc : includes[i]) {
      if (inc.resolved == std::string::npos) continue;
      direct_avail.insert(provides[inc.resolved].begin(),
                          provides[inc.resolved].end());
      if (is_umbrella_target(inc.target)) {
        for (std::size_t c : closure[inc.resolved]) {
          direct_avail.insert(provides[c].begin(), provides[c].end());
        }
      }
    }

    // Umbrella/facade headers re-export their includes — that IS their
    // API surface, so the unused rule does not apply to them as includers.
    const bool f_is_umbrella =
        f.is_header && (is_umbrella_target(f.path.size() > 4 &&
                                                   f.path.compare(0, 4, "src/") == 0
                                               ? f.path.substr(4)
                                               : f.path));

    // unused: a direct include whose whole closure contributes nothing.
    for (const Include& inc : includes[i]) {
      if (f_is_umbrella) break;
      if (inc.resolved == std::string::npos) continue;
      if (file_stem(inc.target) == stem) continue;  // foo.cpp -> foo.hpp
      if (is_umbrella_target(inc.target)) continue;
      std::set<std::string> contributed = provides[inc.resolved];
      for (std::size_t c : closure[inc.resolved]) {
        contributed.insert(provides[c].begin(), provides[c].end());
      }
      if (contributed.empty()) continue;  // nothing extractable: stay quiet
      bool used = false;
      for (const std::string& ident : contributed) {
        if (uses[i].count(ident) != 0) {
          used = true;
          break;
        }
      }
      if (!used && !f.allows(inc.line, "unused-include")) {
        findings.push_back({"include", "unused-include", f.path, inc.line,
                            "include " + inc.target +
                                " contributes no identifier used in this "
                                "file; drop it or annotate "
                                "lint:allow(unused-include)",
                            false});
      }
    }

    // missing / self-contained: identifiers with a unique provider that is
    // not directly included.
    if (f.module.empty()) continue;
    std::set<std::string> reported;
    for (const std::string& ident : uses[i]) {
      if (direct_avail.count(ident) != 0) continue;
      auto it = providers.find(ident);
      if (it == providers.end() || it->second.size() != 1) continue;
      const std::size_t p = it->second[0];
      if (p == i) continue;
      const SourceFile& provider = project.files[p];
      if (reported.count(provider.path) != 0) continue;
      reported.insert(provider.path);
      const bool reachable = closure[i].count(p) != 0;
      // Find the first use line for attribution.
      std::size_t line = 0;
      std::size_t off = find_word(f.stripped, ident);
      if (off != std::string::npos) line = line_of_offset(f.stripped, off);
      const std::string rule = reachable ? "missing-include"
                                         : "self-contained";
      if (f.allows(line, rule)) continue;
      // The include to recommend.  When the provider lives in a
      // cross-cutting module and the user is outside it, the fix is the
      // module's facade, never the internal header (the facade rule would
      // reject the direct include).
      std::string want = provider.path;
      if (want.compare(0, 4, "src/") == 0) want = want.substr(4);
      if (is_cross_module(provider.module) &&
          f.module != provider.module && !is_facade_target(want)) {
        want = provider.module == "obs" ? "obs/obs.hpp" : "check/check.hpp";
      }
      if (reachable) {
        findings.push_back(
            {"include", "missing-include", f.path, line,
             "uses '" + ident + "' from " + provider.path +
                 " which arrives only transitively; include " + want +
                 " directly",
             false});
      } else if (f.is_header) {
        findings.push_back(
            {"include", "self-contained", f.path, line,
             "uses '" + ident + "' from " + provider.path +
                 " with no include path reaching it; the header is not "
                 "self-contained — include " + want + " directly",
             false});
      }
    }
  }

  // ---- Graphviz dump ----
  if (!opts.dot_path.empty()) {
    std::ofstream dot(opts.dot_path);
    if (dot) {
      dot << "digraph elmo_modules {\n  rankdir=BT;\n";
      std::set<std::string> mods;
      for (const SourceFile& f : project.files) {
        if (!f.module.empty()) mods.insert(f.module);
      }
      for (const std::string& m : mods) {
        dot << "  \"" << m << "\" [label=\"" << m;
        const int layer = module_layer(m);
        if (layer >= 0) dot << "\\nlayer " << layer;
        if (is_cross_module(m)) dot << "\\ncross-cutting";
        dot << "\"" << (is_cross_module(m) ? ", style=dashed" : "")
            << "];\n";
      }
      std::set<std::string> emitted;
      for (std::size_t i = 0; i < n; ++i) {
        const std::string& from = project.files[i].module;
        if (from.empty()) continue;
        for (const Include& inc : includes[i]) {
          if (inc.resolved == std::string::npos) continue;
          const std::string& to = project.files[inc.resolved].module;
          if (to.empty() || to == from) continue;
          const std::string edge = from + "->" + to;
          if (!emitted.insert(edge).second) continue;
          dot << "  \"" << from << "\" -> \"" << to << "\""
              << (is_cross_module(to) ? " [style=dashed]" : "") << ";\n";
        }
      }
      dot << "}\n";
    }
  }
}

}  // namespace elmo_analyze
