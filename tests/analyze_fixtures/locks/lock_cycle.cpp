// Seeds lock:lock-cycle — fix.a and fix.b acquired in both orders — and
// lock:lock-unexercised when the runtime dump only saw fix.a -> fix.b.
#include <mutex>

std::mutex fixture_a;
std::mutex fixture_b;

void take_ab() {
  ELMO_LOCK_ORDER("fix.a");
  std::lock_guard<std::mutex> guard_a(fixture_a);
  ELMO_LOCK_ORDER("fix.b");
  std::lock_guard<std::mutex> guard_b(fixture_b);
}

void take_ba() {
  ELMO_LOCK_ORDER("fix.b");
  std::lock_guard<std::mutex> guard_b(fixture_b);
  ELMO_LOCK_ORDER("fix.a");
  std::lock_guard<std::mutex> guard_a(fixture_a);
}
