// Deterministic pseudo-random number generation.
//
// elmo uses its own small PRNG (xoshiro256**, seeded via splitmix64) instead
// of std::mt19937 so that random-network workloads are bit-reproducible
// across standard libraries and platforms — benchmark inputs must not drift
// between toolchains.
#pragma once

#include <cstdint>

namespace elmo {

/// splitmix64: used to expand a single seed into xoshiro state.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 — fast, high-quality 64-bit PRNG.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) using Lemire's multiply-shift rejection.
  std::uint64_t below(std::uint64_t bound) {
    if (bound == 0) return 0;
    // Rejection-free for our purposes: bias is < 2^-64 * bound, negligible
    // for the small bounds used in network generation, but we still follow
    // the unbiased algorithm for reproducibility guarantees.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) { return uniform() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace elmo
