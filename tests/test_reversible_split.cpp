// Direct tests for the reversible-split preprocessing (prepare_problem /
// unsplit_columns): duplicated reversible reactions and fully reversible
// cycles must be handled without losing or inventing modes.
#include "nullspace/reversible_split.hpp"

#include <gtest/gtest.h>

#include "bitset/bitset64.hpp"
#include "compress/compression.hpp"
#include "core/api.hpp"
#include "efm_test_util.hpp"
#include "models/toy.hpp"
#include "network/parser.hpp"
#include "nullspace/solver.hpp"

namespace elmo {
namespace {

TEST(ReversibleSplit, NoSplitNeededForToy) {
  auto problem = to_problem<CheckedI64>(compress(models::toy_network()));
  auto prepared = prepare_problem(problem);
  EXPECT_FALSE(prepared.has_splits());
  EXPECT_EQ(prepared.problem.num_reactions(), problem.num_reactions());
}

Network duplicated_reversible_network() {
  // Two identical reversible transporters: their columns are linearly
  // dependent, so one cannot become a pivot.
  return parse_network(R"(
    R1  : Aext => A
    T1r : A <=> B
    T2r : A <=> B
    R2  : B => Bext
  )");
}

TEST(ReversibleSplit, DuplicateReversibleGetsSplit) {
  auto problem =
      to_problem<CheckedI64>(no_compression(duplicated_reversible_network()));
  auto prepared = prepare_problem(problem);
  ASSERT_TRUE(prepared.has_splits());
  EXPECT_EQ(prepared.backward_of.size(), 1u);
  // The forward copy becomes irreversible; the backward copy is appended.
  const std::size_t split_col = prepared.backward_of[0];
  EXPECT_FALSE(prepared.problem.reversible[split_col]);
  EXPECT_FALSE(prepared.problem.reversible.back());
  EXPECT_EQ(prepared.problem.num_reactions(), problem.num_reactions() + 1);
  EXPECT_NE(prepared.problem.reaction_names.back().find("__rev"),
            std::string::npos);
  // The appended column is the negation of the original.
  for (std::size_t i = 0; i < prepared.problem.stoichiometry.rows(); ++i) {
    EXPECT_EQ(prepared.problem.stoichiometry(
                  i, prepared.problem.num_reactions() - 1),
              -problem.stoichiometry(i, split_col));
  }
}

TEST(ReversibleSplit, SolveFindsAllModesIncludingBackwardUse) {
  // EFMs of the duplicated-transporter network: Aext->A-T1->B->Bext,
  // Aext->A-T2->B->Bext, and the fully reversible futile cycle T1 forward
  // + T2 backward.  (The T1-backward/T2-forward cycle is its negation —
  // one canonical representative.)
  Network net = duplicated_reversible_network();
  auto compressed = no_compression(net);
  auto problem = to_problem<CheckedI64>(compressed);
  auto result = solve_efms<CheckedI64, Bitset64>(problem);
  auto modes = expand_and_canonicalize(result.columns, compressed, net);
  ASSERT_EQ(modes.size(), 3u);
  check_efm_invariants(net, modes);
  // The futile cycle: T1 and T2 with opposite signs, exchanges zero.
  bool found_cycle = false;
  for (const auto& mode : modes) {
    if (mode[0].is_zero() && mode[3].is_zero() && !mode[1].is_zero() &&
        mode[1] == -mode[2])
      found_cycle = true;
  }
  EXPECT_TRUE(found_cycle);
}

TEST(ReversibleSplit, TwoCycleModeIsDropped) {
  // The split problem contains the spurious fwd+bwd two-cycle; unsplit
  // must drop it, not map it to the zero vector.
  Network net = duplicated_reversible_network();
  auto compressed = no_compression(net);
  auto problem = to_problem<CheckedI64>(compressed);
  auto prepared = prepare_problem(problem);
  ASSERT_TRUE(prepared.has_splits());
  const std::size_t fwd = prepared.backward_of[0];
  const std::size_t bwd = prepared.original_reactions;

  // Hand-build the two-cycle column of the split problem.
  std::vector<CheckedI64> values(prepared.problem.num_reactions(),
                                 CheckedI64(0));
  values[fwd] = CheckedI64(1);
  values[bwd] = CheckedI64(1);
  std::vector<FluxColumn<CheckedI64, Bitset64>> columns;
  columns.push_back(
      FluxColumn<CheckedI64, Bitset64>::from_values(std::move(values)));
  auto unsplit = unsplit_columns(std::move(columns), prepared);
  EXPECT_TRUE(unsplit.empty());
}

TEST(ReversibleSplit, FullyReversibleTriangleCycle) {
  // Three reversible reactions forming a cycle A->B->C->A: the cycle space
  // is 1-dimensional and fully reversible.  Exactly one canonical cycle
  // EFM plus the two chain modes through the exchanges.
  Network net = parse_network(R"(
    R1  : Aext => A
    E1r : A <=> B
    E2r : B <=> C
    E3r : C <=> A
    R2  : C => Cext
  )");
  auto compressed = no_compression(net);
  auto problem = to_problem<CheckedI64>(compressed);
  auto result = solve_efms<CheckedI64, Bitset64>(problem);
  auto modes = expand_and_canonicalize(result.columns, compressed, net);
  check_efm_invariants(net, modes);
  // Modes: cycle (E1,E2,E3), chain via E1+E2, chain via -E3 (A->C direct),
  // = 3 modes.
  EXPECT_EQ(modes.size(), 3u);
}

TEST(ReversibleSplit, AgreesAcrossAllAlgorithmsOnSplitNetwork) {
  Network net = duplicated_reversible_network();
  EfmOptions serial;
  auto a = compute_efms(net, serial);
  EfmOptions parallel;
  parallel.algorithm = Algorithm::kCombinatorialParallel;
  parallel.num_ranks = 3;
  auto b = compute_efms(net, parallel);
  EfmOptions partitioned;
  partitioned.algorithm = Algorithm::kPartitioned;
  partitioned.num_ranks = 2;
  auto c = compute_efms(net, partitioned);
  EXPECT_EQ(a.modes, b.modes);
  EXPECT_EQ(a.modes, c.modes);
}

}  // namespace
}  // namespace elmo
