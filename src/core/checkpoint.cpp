#include "core/checkpoint.hpp"

#include <cstring>
#include <fstream>

#include "bigint/bigint.hpp"
#include "mpsim/communicator.hpp"
#include "mpsim/serialize.hpp"
#include "obs/obs.hpp"
#include "support/error.hpp"

namespace elmo {

namespace {

constexpr char kMagic[8] = {'E', 'L', 'M', 'O', 'C', 'K', 'P', '1'};

using mpsim::Payload;
using mpsim::detail::get_u64;
using mpsim::detail::put_u64;

void put_f64(Payload& out, double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

double get_f64(const std::uint8_t*& cursor, const std::uint8_t* end) {
  const std::uint64_t bits = get_u64(cursor, end);
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Payload encode_record(const CheckpointRecord& record) {
  Payload body;
  put_u64(body, record.pattern.size());
  for (const auto& [row, nonzero] : record.pattern) {
    put_u64(body, row);
    body.push_back(nonzero ? 1 : 0);
  }
  put_u64(body, record.candidate_pairs);
  put_f64(body, record.seconds);
  put_u64(body, record.extra_splits);
  put_u64(body, record.attempts);
  put_u64(body, record.modes.size());
  for (const auto& mode : record.modes) {
    put_u64(body, mode.size());
    for (const auto& value : mode) value.serialize(body);
  }
  return body;
}

CheckpointRecord decode_record(const std::uint8_t* cursor,
                               const std::uint8_t* end) {
  CheckpointRecord record;
  const std::uint64_t pattern_count = get_u64(cursor, end);
  record.pattern.reserve(pattern_count);
  for (std::uint64_t i = 0; i < pattern_count; ++i) {
    const std::uint64_t row = get_u64(cursor, end);
    if (cursor == end) throw ParseError("checkpoint: truncated pattern");
    record.pattern.emplace_back(row, *cursor++ != 0);
  }
  record.candidate_pairs = get_u64(cursor, end);
  record.seconds = get_f64(cursor, end);
  record.extra_splits = get_u64(cursor, end);
  record.attempts = get_u64(cursor, end);
  const std::uint64_t mode_count = get_u64(cursor, end);
  record.modes.reserve(mode_count);
  for (std::uint64_t m = 0; m < mode_count; ++m) {
    const std::uint64_t length = get_u64(cursor, end);
    std::vector<BigInt> mode;
    mode.reserve(length);
    for (std::uint64_t v = 0; v < length; ++v)
      mode.push_back(BigInt::deserialize(cursor, end));
    record.modes.push_back(std::move(mode));
  }
  if (cursor != end)
    throw ParseError("checkpoint: trailing bytes in record body");
  return record;
}

}  // namespace

void append_checkpoint_record(const std::string& path,
                              const CheckpointRecord& record) {
  obs::TraceSpan span("checkpoint write", "checkpoint");
  static const obs::Counter writes =
      obs::Registry::global().counter("checkpoint.records_written");
  writes.add(1);
  bool needs_header = true;
  {
    std::ifstream probe(path, std::ios::binary | std::ios::ate);
    needs_header = !probe || probe.tellg() == std::streampos(0);
  }
  std::ofstream out(path, std::ios::binary | std::ios::app);
  if (!out)
    throw InvalidArgumentError("checkpoint: cannot open for append: " + path);
  if (needs_header) out.write(kMagic, sizeof kMagic);

  const Payload body = encode_record(record);
  Payload frame;
  put_u64(frame, body.size());
  frame.insert(frame.end(), body.begin(), body.end());
  const std::uint32_t crc = mpsim::crc32(body);
  for (int b = 0; b < 4; ++b)
    frame.push_back(static_cast<std::uint8_t>(crc >> (8 * b)));
  // Byte-for-byte frame write; uint8_t -> char is always representable.
  // lint:allow(reinterpret-cast)
  out.write(reinterpret_cast<const char*>(frame.data()),
            static_cast<std::streamsize>(frame.size()));
  out.flush();
  if (!out)
    throw InvalidArgumentError("checkpoint: short write to " + path);
}

namespace {

/// Parse every complete frame of an in-memory checkpoint image.  On return
/// `valid_end` is the byte offset just past the last intact frame — bytes
/// beyond it are the interrupted/damaged tail.
std::vector<CheckpointRecord> parse_checkpoint(
    const std::vector<std::uint8_t>& bytes, const std::string& path,
    std::size_t& valid_end) {
  if (bytes.size() < sizeof kMagic ||
      std::memcmp(bytes.data(), kMagic, sizeof kMagic) != 0) {
    throw ParseError("checkpoint: " + path + " is not a checkpoint file");
  }

  std::vector<CheckpointRecord> records;
  std::size_t offset = sizeof kMagic;
  valid_end = offset;
  while (offset < bytes.size()) {
    // Each frame is [u64 size][body][u32 crc]; any shortfall or CRC
    // mismatch marks the interrupted tail — stop and keep what we have.
    if (bytes.size() - offset < 8) break;
    std::uint64_t body_size = 0;
    for (int b = 0; b < 8; ++b)
      body_size |= static_cast<std::uint64_t>(bytes[offset + static_cast<std::size_t>(b)])
                   << (8 * b);
    offset += 8;
    if (bytes.size() - offset < body_size + 4) break;
    const std::uint8_t* body = bytes.data() + offset;
    std::uint32_t stored = 0;
    for (int b = 0; b < 4; ++b)
      stored |= static_cast<std::uint32_t>(
                    bytes[offset + body_size + static_cast<std::size_t>(b)])
                << (8 * b);
    if (mpsim::crc32(body, body_size) != stored) break;
    try {
      records.push_back(decode_record(body, body + body_size));
    } catch (const ParseError&) {
      break;  // CRC collided with garbage; treat as tail damage
    }
    offset += body_size + 4;
    valid_end = offset;
  }
  return records;
}

}  // namespace

std::vector<CheckpointRecord> load_checkpoint(const std::string& path) {
  obs::TraceSpan span("checkpoint load", "checkpoint");
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  if (bytes.empty()) return {};
  std::size_t valid_end = 0;
  return parse_checkpoint(bytes, path, valid_end);
}

std::size_t repair_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return 0;
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  in.close();
  if (bytes.empty()) return 0;
  std::size_t valid_end = 0;
  parse_checkpoint(bytes, path, valid_end);
  const std::size_t damaged = bytes.size() - valid_end;
  if (damaged == 0) return 0;
  static const obs::Counter repairs =
      obs::Registry::global().counter("checkpoint.tail_bytes_trimmed");
  repairs.add(static_cast<std::uint64_t>(damaged));
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out)
    throw InvalidArgumentError("checkpoint: cannot rewrite " + path);
  // lint:allow(reinterpret-cast)
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(valid_end));
  out.flush();
  if (!out) throw InvalidArgumentError("checkpoint: short write to " + path);
  return damaged;
}

}  // namespace elmo
