#include "analysis/knockout.hpp"

#include "bigint/bigint.hpp"
#include "network/network.hpp"
#include "support/assert.hpp"

namespace elmo {

std::vector<std::size_t> surviving_modes(
    const std::vector<std::vector<BigInt>>& modes,
    const std::vector<ReactionId>& knocked_out) {
  std::vector<std::size_t> survivors;
  for (std::size_t m = 0; m < modes.size(); ++m) {
    bool alive = true;
    for (ReactionId r : knocked_out) {
      ELMO_REQUIRE(r < modes[m].size(), "knockout: bad reaction id");
      if (!modes[m][r].is_zero()) {
        alive = false;
        break;
      }
    }
    if (alive) survivors.push_back(m);
  }
  return survivors;
}

std::size_t modes_using(const std::vector<std::vector<BigInt>>& modes,
                        ReactionId reaction) {
  std::size_t count = 0;
  for (const auto& mode : modes) {
    ELMO_REQUIRE(reaction < mode.size(), "modes_using: bad reaction id");
    if (!mode[reaction].is_zero()) ++count;
  }
  return count;
}

std::vector<std::string> KnockoutReport::essential_reactions() const {
  std::vector<std::string> names;
  for (const auto& effect : effects)
    if (effect.essential) names.push_back(effect.reaction_name);
  return names;
}

KnockoutReport knockout_screen(const Network& network,
                               const std::vector<std::vector<BigInt>>& modes,
                               ReactionId target) {
  ELMO_REQUIRE(target < network.num_reactions(),
               "knockout_screen: bad target reaction");
  KnockoutReport report;
  report.wild_type_modes = modes.size();
  report.wild_type_producing = modes_using(modes, target);

  for (ReactionId r = 0; r < network.num_reactions(); ++r) {
    if (r == target) continue;
    KnockoutEffect effect;
    effect.reaction = r;
    effect.reaction_name = network.reaction(r).name;
    for (const auto& mode : modes) {
      if (!mode[r].is_zero()) continue;  // killed by the knockout
      ++effect.surviving;
      if (!mode[target].is_zero()) ++effect.surviving_producing;
    }
    effect.essential =
        effect.surviving_producing == 0 && report.wild_type_producing > 0;
    report.effects.push_back(std::move(effect));
  }
  return report;
}

std::vector<std::vector<ReactionId>> minimal_cut_sets_2(
    const std::vector<std::vector<BigInt>>& modes, ReactionId target,
    std::size_t num_reactions) {
  // Producing modes only; a cut set must intersect every one of them.
  std::vector<const std::vector<BigInt>*> producing;
  for (const auto& mode : modes) {
    ELMO_REQUIRE(target < mode.size(), "minimal_cut_sets_2: bad target");
    if (!mode[target].is_zero()) producing.push_back(&mode);
  }
  std::vector<std::vector<ReactionId>> cuts;
  if (producing.empty()) return cuts;

  auto hits_all = [&](ReactionId a, ReactionId b, bool pair) {
    for (const auto* mode : producing) {
      bool hit = !(*mode)[a].is_zero() || (pair && !(*mode)[b].is_zero());
      if (!hit) return false;
    }
    return true;
  };

  std::vector<bool> single(num_reactions, false);
  for (ReactionId a = 0; a < num_reactions; ++a) {
    if (a == target) continue;
    if (hits_all(a, a, false)) {
      single[a] = true;
      cuts.push_back({a});
    }
  }
  for (ReactionId a = 0; a < num_reactions; ++a) {
    if (a == target || single[a]) continue;
    for (ReactionId b = a + 1; b < num_reactions; ++b) {
      if (b == target || single[b]) continue;  // minimality
      if (hits_all(a, b, true)) cuts.push_back({a, b});
    }
  }
  return cuts;
}

}  // namespace elmo
