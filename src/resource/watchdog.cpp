#include "resource/watchdog.hpp"

#include <algorithm>

#include "obs/obs.hpp"

namespace elmo::resource {

Watchdog::Watchdog() : Watchdog(Options{}) {}

Watchdog::Watchdog(Options options) : options_(options) {
  thread_ = std::thread([this] { loop(); });
}

Watchdog::~Watchdog() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

Watchdog& Watchdog::global() {
  static Watchdog instance;
  return instance;
}

Watchdog::Token Watchdog::arm(
    std::string label, Deadlines deadlines,
    std::function<void(const std::string&)> on_soft,
    std::function<void(const std::string&)> on_hard,
    std::vector<ProgressCounter> progress) {
  auto task = std::make_shared<Task>();
  task->label = std::move(label);
  task->deadlines = deadlines;
  task->on_soft = std::move(on_soft);
  task->on_hard = std::move(on_hard);
  task->progress = std::move(progress);
  task->last_values.reserve(task->progress.size());
  for (const auto& p : task->progress)
    task->last_values.push_back(
        p.counter != nullptr ? p.counter->load(std::memory_order_relaxed) : 0);
  task->armed_at = Clock::now();
  task->last_progress_at = task->armed_at;
  std::lock_guard<std::mutex> lock(mutex_);
  tasks_.push_back(std::move(task));
  cv_.notify_all();
  return Token(this, std::prev(tasks_.end()));
}

void Watchdog::Token::disarm() {
  if (owner_ == nullptr) return;
  std::unique_lock<std::mutex> lock(owner_->mutex_);
  auto task = *it_;
  owner_->cv_.wait(lock, [&] { return !task->in_callback; });
  owner_->tasks_.erase(it_);
  owner_ = nullptr;
}

void Watchdog::loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto interval = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(options_.poll_interval_seconds));
  while (!stop_) {
    cv_.wait_for(lock, interval,
                 [this] { return stop_; });
    if (stop_) break;
    lock.unlock();
    poll_once(Clock::now());
    lock.lock();
  }
}

void Watchdog::poll_once(Clock::time_point now) {
  // Collect due callbacks under the lock, invoke them outside it: the
  // callbacks take foreign locks (mpsim world mutex) and the watchdog mutex
  // must stay a leaf.
  struct Due {
    std::shared_ptr<Task> task;
    bool hard;
    std::string diagnosis;
  };
  std::vector<Due> due;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& task : tasks_) {
      if (task->hard_fired || task->in_callback) continue;
      const double elapsed =
          std::chrono::duration<double>(now - task->armed_at).count();
      // Sample progress counters; note stragglers (counters at the global
      // minimum) for diagnoses.
      bool any_advanced = false;
      std::string slowest;
      std::uint64_t slowest_value = UINT64_MAX;
      for (std::size_t i = 0; i < task->progress.size(); ++i) {
        const auto* counter = task->progress[i].counter;
        if (counter == nullptr) continue;
        const std::uint64_t v = counter->load(std::memory_order_relaxed);
        if (v != task->last_values[i]) {
          task->last_values[i] = v;
          any_advanced = true;
        }
        if (v < slowest_value) {
          slowest_value = v;
          slowest = task->progress[i].label;
        }
      }
      if (any_advanced || task->progress.empty())
        task->last_progress_at = now;
      const double stalled =
          std::chrono::duration<double>(now - task->last_progress_at).count();

      const auto& d = task->deadlines;
      if (d.stall_seconds > 0 && stalled > d.stall_seconds &&
          !task->progress.empty()) {
        task->hard_fired = true;
        task->in_callback = true;
        due.push_back({task, true,
                       "[" + task->label + "] wedged: no progress on any " +
                           "counter for " + std::to_string(stalled) +
                           " s (stall limit " +
                           std::to_string(d.stall_seconds) + " s)"});
        continue;
      }
      if (d.hard_seconds > 0 && elapsed > d.hard_seconds) {
        task->hard_fired = true;
        task->in_callback = true;
        due.push_back({task, true,
                       "[" + task->label + "] hard deadline: " +
                           std::to_string(elapsed) + " s elapsed (limit " +
                           std::to_string(d.hard_seconds) + " s)"});
        continue;
      }
      if (d.soft_seconds > 0 && !task->soft_fired &&
          elapsed > d.soft_seconds) {
        task->soft_fired = true;
        task->in_callback = true;
        std::string diag = "[" + task->label + "] soft deadline: " +
                           std::to_string(elapsed) + " s elapsed (limit " +
                           std::to_string(d.soft_seconds) + " s)";
        if (!slowest.empty())
          diag += "; slowest counter: " + slowest + " at " +
                  std::to_string(slowest_value);
        due.push_back({task, false, std::move(diag)});
      }
    }
  }
  for (auto& d : due) {
    if constexpr (obs::kObsCompiledIn) {
      auto& registry = obs::Registry::global();
      static const obs::Counter softs =
          registry.counter("resource.watchdog_soft");
      static const obs::Counter hards =
          registry.counter("resource.watchdog_hard");
      (d.hard ? hards : softs).add(1);
      obs::trace_instant(d.hard ? "watchdog_hard" : "watchdog_soft",
                         "resource", d.diagnosis);
    }
    const auto& fn = d.hard ? d.task->on_hard : d.task->on_soft;
    if (fn) fn(d.diagnosis);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      d.task->in_callback = false;
    }
    cv_.notify_all();
  }
}

}  // namespace elmo::resource
