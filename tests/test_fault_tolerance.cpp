// End-to-end fault tolerance: per-subset retry in the Algorithm-3 driver,
// subset checkpoint/restart, the BigInt last-resort rung of the retry
// ladder, and the paper's Network-II memory story replayed under failure
// injection (budgeted Algorithm 2 dies; Algorithm 3 with adaptive re-splits
// and a retry policy completes and matches the serial result exactly).
#include "core/api.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "core/checkpoint.hpp"
#include "core/combined.hpp"
#include "efm_test_util.hpp"
#include "models/toy.hpp"
#include "models/yeast.hpp"
#include "mpsim/fault.hpp"
#include "nullspace/efm.hpp"

namespace elmo {
namespace {

/// Unique scratch path inside gtest's temp dir, removed on destruction.
class ScratchFile {
 public:
  explicit ScratchFile(const std::string& name)
      : path_(::testing::TempDir() + "elmo_" + name) {
    std::remove(path_.c_str());
  }
  ~ScratchFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Yeast Network I with the same knockouts the hybrid tests use, small
/// enough for exhaustive checks but big enough for real retry traffic.
Network trimmed_yeast_1() {
  Network net = models::yeast_network_1();
  std::vector<ReactionId> trim;
  for (const char* name : {"R15", "R33", "R41", "R46", "R92r", "R98", "R100",
                           "R77", "R101", "R32r", "R30r"}) {
    if (auto id = net.find_reaction(name)) trim.push_back(*id);
  }
  return net.without_reactions(trim);
}

/// Yeast Network II (Network I plus reversible R54r/R60r/R63r and modified
/// R62 — the paper's Table IV configuration) with the same trim applied.
Network trimmed_yeast_2() {
  Network net = models::yeast_network_2();
  std::vector<ReactionId> trim;
  for (const char* name : {"R15", "R33", "R41", "R46", "R92r", "R98", "R100",
                           "R77", "R101", "R32r", "R30r"}) {
    if (auto id = net.find_reaction(name)) trim.push_back(*id);
  }
  return net.without_reactions(trim);
}

EfmOptions toy_combined_options() {
  EfmOptions options;
  options.algorithm = Algorithm::kCombined;
  options.num_ranks = 2;
  options.partition_reactions = {"r6r", "r8r"};
  return options;
}

// ---------------------------------------------------------------------------
// Retry policy.

TEST(FaultTolerance, RankCrashMidRunIsRetried) {
  Network net = models::toy_network();
  auto baseline = compute_efms(net, toy_combined_options());

  auto options = toy_combined_options();
  options.fault_plan = std::make_shared<mpsim::FaultPlan>();
  options.fault_plan->crash_rank(1, /*at_op=*/3, /*times=*/1);
  options.retry.max_attempts = 2;
  auto result = compute_efms(net, options);

  EXPECT_EQ(result.modes, baseline.modes);
  EXPECT_EQ(result.total_retries, 1u);
  EXPECT_EQ(options.fault_plan->totals().crashes, 1u);
  // The doomed subset reports both attempts; the rest ran clean.
  std::size_t retried = 0;
  for (const auto& subset : result.subsets) {
    if (subset.attempts == 2) ++retried;
  }
  EXPECT_EQ(retried, 1u);
}

TEST(FaultTolerance, CorruptedPayloadIsRetried) {
  Network net = models::toy_network();
  auto baseline = compute_efms(net, toy_combined_options());

  auto options = toy_combined_options();
  options.fault_plan = std::make_shared<mpsim::FaultPlan>();
  options.fault_plan->corrupt_payload(0, /*nth_payload=*/0);
  options.retry.max_attempts = 3;
  auto result = compute_efms(net, options);

  EXPECT_EQ(result.modes, baseline.modes);
  EXPECT_GE(result.total_retries, 1u);
  EXPECT_EQ(options.fault_plan->totals().corruptions, 1u);
}

TEST(FaultTolerance, RetryExhaustionCarriesSubsetContext) {
  Network net = models::toy_network();
  auto options = toy_combined_options();
  options.fault_plan = std::make_shared<mpsim::FaultPlan>();
  // Re-arms on every attempt: the subset can never succeed.
  options.fault_plan->crash_rank(1, 0, /*times=*/1000);
  options.retry.max_attempts = 2;
  try {
    compute_efms(net, options);
    FAIL() << "expected RetryExhaustedError";
  } catch (const RetryExhaustedError& e) {
    EXPECT_EQ(e.attempts, 2);
    EXPECT_FALSE(e.subset_label.empty());
    EXPECT_NE(e.last_error.find("injected crash"), std::string::npos);
  }
}

TEST(FaultTolerance, SerialFinalAttemptDefeatsPersistentCrashes) {
  Network net = models::toy_network();
  auto baseline = compute_efms(net, toy_combined_options());

  auto options = toy_combined_options();
  options.fault_plan = std::make_shared<mpsim::FaultPlan>();
  options.fault_plan->crash_rank(1, 0, /*times=*/1000);
  options.retry.max_attempts = 2;
  options.retry.serial_final_attempt = true;
  options.retry.backoff_seconds = 0.25;
  auto result = compute_efms(net, options);

  EXPECT_EQ(result.modes, baseline.modes);
  // Every one of the four subsets crashed once, then finished serially.
  EXPECT_EQ(result.total_retries, 4u);
  EXPECT_DOUBLE_EQ(result.simulated_backoff_seconds, 4 * 0.25);
  for (const auto& subset : result.subsets) {
    EXPECT_EQ(subset.attempts, 2u) << subset.label;
    EXPECT_DOUBLE_EQ(subset.backoff_seconds, 0.25) << subset.label;
  }
}

TEST(FaultTolerance, HalvedRanksStillAgree) {
  Network net = models::toy_network();
  auto baseline = compute_efms(net, toy_combined_options());

  auto options = toy_combined_options();
  options.fault_plan = std::make_shared<mpsim::FaultPlan>();
  options.fault_plan->crash_rank(1, 2, /*times=*/1);
  options.retry.max_attempts = 3;
  options.retry.halve_ranks_on_retry = true;  // retries run with 1 rank
  auto result = compute_efms(net, options);
  EXPECT_EQ(result.modes, baseline.modes);
  EXPECT_GE(result.total_retries, 1u);
}

TEST(FaultTolerance, BigIntFallbackIsTheLastRung) {
  Network net = models::toy_network();
  auto baseline = compute_efms(net, toy_combined_options());

  auto options = toy_combined_options();
  options.fault_plan = std::make_shared<mpsim::FaultPlan>();
  // Five firings: failed subsets re-queue at the back, so the int64 pass
  // burns one crash on each of the four subsets' first attempts and a
  // fifth on the first re-attempt — exhausting that subset's two-attempt
  // allowance and tripping the BigInt rung, which then runs on a depleted
  // trigger and succeeds.
  options.fault_plan->crash_rank(1, 0, /*times=*/5);
  options.retry.max_attempts = 2;
  options.retry.bigint_fallback = true;
  auto result = compute_efms(net, options);

  EXPECT_EQ(result.modes, baseline.modes);
  EXPECT_TRUE(result.used_bigint);
  EXPECT_TRUE(result.stats.bigint_fallback);
  EXPECT_EQ(options.fault_plan->totals().crashes, 5u);
}

TEST(FaultTolerance, StragglerChangesNothingButTime) {
  Network net = models::toy_network();
  auto baseline = compute_efms(net, toy_combined_options());

  auto options = toy_combined_options();
  options.fault_plan = std::make_shared<mpsim::FaultPlan>();
  options.fault_plan->straggle(0, /*delay_us=*/100);
  auto result = compute_efms(net, options);
  EXPECT_EQ(result.modes, baseline.modes);
  EXPECT_EQ(result.total_retries, 0u);
  EXPECT_GT(options.fault_plan->totals().delays, 0u);
}

// ---------------------------------------------------------------------------
// Checkpoint file format.

TEST(Checkpoint, RoundTripAndTruncatedTail) {
  ScratchFile file("ckpt_roundtrip.bin");
  CheckpointRecord a;
  a.pattern = {{3, true}, {7, false}};
  a.modes = {{BigInt(1), BigInt(-2), BigInt(0)},
             {BigInt(0), BigInt(5), BigInt(9)}};
  a.candidate_pairs = 42;
  a.seconds = 1.5;
  a.extra_splits = 1;
  a.attempts = 2;
  CheckpointRecord b;
  b.pattern = {{3, false}, {7, true}};
  b.modes = {{BigInt::from_string("123456789012345678901234567890"),
              BigInt(0), BigInt(-1)}};
  append_checkpoint_record(file.path(), a);
  append_checkpoint_record(file.path(), b);

  auto records = load_checkpoint(file.path());
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].pattern, a.pattern);
  EXPECT_EQ(records[0].modes, a.modes);
  EXPECT_EQ(records[0].candidate_pairs, 42u);
  EXPECT_DOUBLE_EQ(records[0].seconds, 1.5);
  EXPECT_EQ(records[0].extra_splits, 1u);
  EXPECT_EQ(records[0].attempts, 2u);
  EXPECT_EQ(records[1].modes, b.modes);

  // Chop bytes off the tail — the simulated kill -9 mid-append.  Record a
  // must survive; the damaged record b is dropped without an exception.
  std::ifstream in(file.path(), std::ios::binary | std::ios::ate);
  const auto size = static_cast<std::size_t>(in.tellg());
  in.seekg(0);
  std::string bytes(size, '\0');
  in.read(bytes.data(), static_cast<std::streamsize>(size));
  in.close();
  std::ofstream out(file.path(), std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(size - 5));
  out.close();

  auto recovered = load_checkpoint(file.path());
  ASSERT_EQ(recovered.size(), 1u);
  EXPECT_EQ(recovered[0].modes, a.modes);
}

TEST(Checkpoint, MissingFileIsEmptyAndGarbageRejected) {
  EXPECT_TRUE(load_checkpoint(::testing::TempDir() + "elmo_no_such.bin")
                  .empty());
  ScratchFile file("ckpt_garbage.bin");
  std::ofstream(file.path(), std::ios::binary) << "definitely not a ckpt";
  EXPECT_THROW(load_checkpoint(file.path()), ParseError);
}

// ---------------------------------------------------------------------------
// Checkpoint/restart end-to-end on yeast Network I.

TEST(Checkpoint, ResumeSkipsEverythingAndIsBitIdentical) {
  Network net = trimmed_yeast_1();
  ScratchFile file("ckpt_yeast_full.bin");

  EfmOptions options;
  options.algorithm = Algorithm::kCombined;
  options.num_ranks = 2;
  options.qsub = 2;
  options.checkpoint_path = file.path();
  auto baseline = compute_efms(net, options);
  ASSERT_GT(baseline.num_modes(), 0u);

  // The resumed run carries a hair-trigger fault plan: if ANY subset were
  // recomputed, its world would crash at the very first operation.  A clean
  // pass proves every subset came from the checkpoint.
  EfmOptions resume;
  resume.algorithm = Algorithm::kCombined;
  resume.num_ranks = 2;
  resume.qsub = 2;
  resume.resume_from = file.path();
  resume.fault_plan = std::make_shared<mpsim::FaultPlan>();
  for (int r = 0; r < 2; ++r)
    resume.fault_plan->crash_rank(r, 0, /*times=*/1000);
  auto resumed = compute_efms(net, resume);

  EXPECT_EQ(resumed.modes, baseline.modes);
  EXPECT_EQ(resume.fault_plan->totals().crashes, 0u);
  ASSERT_EQ(resumed.subsets.size(), baseline.subsets.size());
  for (const auto& subset : resumed.subsets) {
    EXPECT_TRUE(subset.resumed) << subset.label;
  }
}

TEST(Checkpoint, InterruptedRunResumesBitIdentical) {
  Network net = trimmed_yeast_1();

  // Pass 1 — measure: a trigger-free plan rides along only to count rank
  // 0's operations, giving a deterministic "minutes into the job" marker.
  EfmOptions options;
  options.algorithm = Algorithm::kCombined;
  options.num_ranks = 2;
  options.qsub = 2;
  options.fault_plan = std::make_shared<mpsim::FaultPlan>();
  auto baseline = compute_efms(net, options);
  const std::uint64_t total_ops = options.fault_plan->ops_seen(0);
  ASSERT_GT(total_ops, 4u);

  // Pass 2 — interrupt: same computation, checkpointing enabled, rank 0
  // killed halfway through.  Some subsets must have committed by then.
  ScratchFile file("ckpt_yeast_interrupted.bin");
  EfmOptions interrupted;
  interrupted.algorithm = Algorithm::kCombined;
  interrupted.num_ranks = 2;
  interrupted.qsub = 2;
  interrupted.checkpoint_path = file.path();
  interrupted.fault_plan = std::make_shared<mpsim::FaultPlan>();
  interrupted.fault_plan->crash_rank(0, total_ops / 2, /*times=*/1);
  EXPECT_THROW(compute_efms(net, interrupted), mpsim::InjectedFaultError);

  auto committed = load_checkpoint(file.path());
  ASSERT_GT(committed.size(), 0u) << "crash landed before any checkpoint";
  ASSERT_LT(committed.size(), baseline.subsets.size());

  // Pass 3 — resume: skip the committed subsets, recompute the rest.
  EfmOptions resume;
  resume.algorithm = Algorithm::kCombined;
  resume.num_ranks = 2;
  resume.qsub = 2;
  resume.checkpoint_path = file.path();
  resume.resume_from = file.path();
  auto resumed = compute_efms(net, resume);

  EXPECT_EQ(resumed.modes, baseline.modes);
  std::size_t from_checkpoint = 0;
  for (const auto& subset : resumed.subsets)
    if (subset.resumed) ++from_checkpoint;
  EXPECT_EQ(from_checkpoint, committed.size());
  // The finished file now covers every subset.
  EXPECT_EQ(load_checkpoint(file.path()).size(), resumed.subsets.size());
}

// ---------------------------------------------------------------------------
// Resume from damaged checkpoint files.  The recovery contract: a damaged
// tail costs at most the records it covered — the valid prefix is honored,
// the rest is recomputed, and the final mode set is bit-identical.

std::string read_file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_file_bytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

EfmOptions yeast_checkpoint_options(const std::string& checkpoint_path) {
  EfmOptions options;
  options.algorithm = Algorithm::kCombined;
  options.num_ranks = 2;
  options.qsub = 2;
  options.checkpoint_path = checkpoint_path;
  return options;
}

TEST(Checkpoint, ResumeFromZeroLengthFileRecomputesEverything) {
  // The crash-before-first-commit case: the file exists but holds nothing,
  // not even the magic.  That is an empty checkpoint, not a corrupt one.
  Network net = trimmed_yeast_1();
  ScratchFile file("ckpt_yeast_zero.bin");

  auto baseline = compute_efms(net, yeast_checkpoint_options(file.path()));
  ASSERT_GT(baseline.num_modes(), 0u);

  write_file_bytes(file.path(), "");
  EXPECT_TRUE(load_checkpoint(file.path()).empty());

  auto options = yeast_checkpoint_options(file.path());
  options.resume_from = file.path();
  auto resumed = compute_efms(net, options);
  EXPECT_EQ(resumed.modes, baseline.modes);
  for (const auto& subset : resumed.subsets)
    EXPECT_FALSE(subset.resumed) << subset.label;
  // The rerun re-checkpointed the full set.
  EXPECT_EQ(load_checkpoint(file.path()).size(), resumed.subsets.size());
}

TEST(Checkpoint, ResumeFromBitFlippedFileKeepsTheValidPrefix) {
  Network net = trimmed_yeast_1();
  ScratchFile file("ckpt_yeast_bitflip.bin");

  auto baseline = compute_efms(net, yeast_checkpoint_options(file.path()));
  const std::size_t total = baseline.subsets.size();
  ASSERT_EQ(load_checkpoint(file.path()).size(), total);

  // Flip one bit in the last frame (past the magic, near the tail): the CRC
  // catches it, that record and everything after it is dropped, and the
  // records before it survive untouched.
  std::string bytes = read_file_bytes(file.path());
  ASSERT_GT(bytes.size(), 16u);
  bytes[bytes.size() - 3] ^= 0x20;
  write_file_bytes(file.path(), bytes);

  auto damaged = load_checkpoint(file.path());
  ASSERT_GE(damaged.size(), 1u) << "flip unexpectedly destroyed every record";
  ASSERT_LT(damaged.size(), total);

  auto options = yeast_checkpoint_options(file.path());
  options.resume_from = file.path();
  auto resumed = compute_efms(net, options);
  EXPECT_EQ(resumed.modes, baseline.modes);
  std::size_t from_checkpoint = 0;
  for (const auto& subset : resumed.subsets)
    if (subset.resumed) ++from_checkpoint;
  EXPECT_EQ(from_checkpoint, damaged.size());
}

TEST(Checkpoint, ResumeFromTruncatedFileRecomputesTheTail) {
  // kill -9 mid-append leaves a short final frame; resume must treat the
  // file exactly like one that stopped at the previous commit.
  Network net = trimmed_yeast_1();
  ScratchFile file("ckpt_yeast_trunc.bin");

  auto baseline = compute_efms(net, yeast_checkpoint_options(file.path()));
  const std::size_t total = baseline.subsets.size();

  std::string bytes = read_file_bytes(file.path());
  ASSERT_GT(bytes.size(), 32u);
  write_file_bytes(file.path(), bytes.substr(0, bytes.size() - 7));

  auto damaged = load_checkpoint(file.path());
  ASSERT_GE(damaged.size(), 1u);
  ASSERT_LT(damaged.size(), total);

  auto options = yeast_checkpoint_options(file.path());
  options.resume_from = file.path();
  options.checkpoint_path = file.path();
  auto resumed = compute_efms(net, options);
  EXPECT_EQ(resumed.modes, baseline.modes);
  // The finished file is whole again: every subset committed.
  EXPECT_EQ(load_checkpoint(file.path()).size(), total);
}

// ---------------------------------------------------------------------------
// The paper's Network II story, replayed with the fault machinery on the
// trimmed model: a memory budget kills Algorithm 2 outright, while
// Algorithm 3 survives it by re-splitting oversized subsets (Table IV) and
// retrying, and still reproduces the serial mode set exactly.

TEST(FaultTolerance, NetworkTwoMemoryStory) {
  Network net = trimmed_yeast_2();

  EfmOptions serial;
  auto expected = compute_efms(net, serial);
  ASSERT_GT(expected.num_modes(), 0u);

  // Probe both algorithms' appetites, then choose a budget that binds for
  // the biggest divide-and-conquer subset (and a fortiori for the full
  // replica Algorithm 2 keeps on every rank).
  EfmOptions probe;
  probe.algorithm = Algorithm::kCombinatorialParallel;
  probe.num_ranks = 2;
  auto unbudgeted = compute_efms(net, probe);
  ASSERT_GT(unbudgeted.peak_rank_memory, 0u);

  EfmOptions combined;
  combined.algorithm = Algorithm::kCombined;
  combined.num_ranks = 2;
  combined.partition_reactions = {"R54r", "R90r"};
  auto combined_probe = compute_efms(net, combined);
  ASSERT_GT(combined_probe.peak_rank_memory, 0u);
  const std::size_t budget = combined_probe.peak_rank_memory * 3 / 4;
  ASSERT_LT(budget, unbudgeted.peak_rank_memory);

  EfmOptions budgeted_flat = probe;
  budgeted_flat.memory_budget_per_rank = budget;
  EXPECT_THROW(compute_efms(net, budgeted_flat), MemoryBudgetError);

  combined.memory_budget_per_rank = budget;
  combined.max_extra_splits = 2;
  combined.retry.max_attempts = 2;
  combined.retry.serial_final_attempt = true;
  auto survived = compute_efms(net, combined);

  EXPECT_EQ(survived.modes, expected.modes);
  std::size_t resplit_subsets = 0;
  for (const auto& subset : survived.subsets)
    if (subset.extra_splits > 0) ++resplit_subsets;
  // The budget binds for Algorithm 2, so the divide-and-conquer run must
  // have leaned on at least one recovery mechanism to finish.
  EXPECT_TRUE(resplit_subsets > 0 || survived.total_retries > 0)
      << "budget never bound inside Algorithm 3";
}

}  // namespace
}  // namespace elmo
