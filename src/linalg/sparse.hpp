// Compressed sparse storage in the start/index/value idiom (the layout
// HiGHS uses for its nullspace kernel matrices).
//
// One class covers both orientations: a CSC matrix stores columns as the
// major axis (minor indices are rows); building it from the transposed
// accessor yields CSR with rows major.  Values are opaque 64-bit payloads
// — the rank-test engine stores Z_(2^61-1) residues — and the class does
// no arithmetic, only structure: linalg stays free of the modular layer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/assert.hpp"

namespace elmo {

class SparseCscU64 {
 public:
  SparseCscU64() = default;

  /// Build from a dense accessor `value_at(minor, major) -> uint64_t`;
  /// zeros are skipped.  For CSC pass (rows, cols, at(row, col)); for CSR
  /// pass (cols, rows, at(col, row)).
  template <typename ValueAt>
  static SparseCscU64 build(std::size_t minor_dim, std::size_t major_dim,
                            ValueAt&& value_at) {
    ELMO_REQUIRE(minor_dim <= UINT32_MAX, "sparse minor dimension too large");
    SparseCscU64 m;
    m.minor_dim_ = minor_dim;
    m.start_.assign(major_dim + 1, 0);
    for (std::size_t j = 0; j < major_dim; ++j) {
      for (std::size_t i = 0; i < minor_dim; ++i) {
        const std::uint64_t v = value_at(i, j);
        if (v == 0) continue;
        m.index_.push_back(static_cast<std::uint32_t>(i));
        m.value_.push_back(v);
      }
      m.start_[j + 1] = m.index_.size();
    }
    return m;
  }

  [[nodiscard]] std::size_t major_count() const { return start_.size() - 1; }
  [[nodiscard]] std::size_t minor_count() const { return minor_dim_; }
  [[nodiscard]] std::size_t nnz() const { return index_.size(); }

  /// Entries in major slice `j`.
  [[nodiscard]] std::size_t count(std::size_t j) const {
    return start_[j + 1] - start_[j];
  }
  /// Minor indices of slice `j` (length count(j)).
  [[nodiscard]] const std::uint32_t* indices(std::size_t j) const {
    return index_.data() + start_[j];
  }
  /// Values of slice `j` (length count(j)).
  [[nodiscard]] const std::uint64_t* values(std::size_t j) const {
    return value_.data() + start_[j];
  }

 private:
  std::size_t minor_dim_ = 0;
  std::vector<std::size_t> start_ = {0};
  std::vector<std::uint32_t> index_;
  std::vector<std::uint64_t> value_;
};

}  // namespace elmo
