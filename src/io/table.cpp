#include "io/table.hpp"

#include <algorithm>
#include <sstream>

#include "support/assert.hpp"

namespace elmo {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  ELMO_REQUIRE(!header_.empty(), "Table: empty header");
}

void Table::add_row(std::vector<std::string> row) {
  ELMO_REQUIRE(row.size() == header_.size(),
               "Table: row arity does not match header");
  rows_.push_back(std::move(row));
}

std::string Table::render(const std::string& caption) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());
  }

  std::ostringstream os;
  if (!caption.empty()) os << caption << '\n';
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << "  ";
      os << row[c];
      // Right-pad all but the last column.
      if (c + 1 < row.size())
        os << std::string(widths[c] - row[c].size(), ' ');
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c)
    total += widths[c] + (c ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace elmo
