// End-to-end crash-safe shutdown through the real CLI binary: SIGTERM lands
// mid-solve, the process flushes its subset checkpoint and a partial report,
// exits with the distinct resumable code (75), and a `--resume` rerun
// completes the run with byte-identical output to an uninterrupted one.
//
// The interrupt is inherently racy (a fast machine can finish before the
// signal lands), so the scenario polls the checkpoint file and signals as
// soon as the first subset commits, and retries a few times if the run
// still wins the race.  A run that completes cleanly is verified against
// the baseline instead, so every outcome is checked.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/checkpoint.hpp"
#include "resource/shutdown.hpp"

namespace elmo {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::size_t file_size(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return 0;
  return static_cast<std::size_t>(in.tellg());
}

/// Run CLI_BIN with `args`; if `signal_when_checkpointed` names a file, poll
/// it and deliver SIGTERM as soon as it holds at least one committed record.
/// Returns the child's exit status (or -1 on harness failure).
int run_cli(const std::vector<std::string>& args,
            const std::string& signal_when_checkpointed = std::string()) {
  std::vector<char*> argv;
  static const std::string bin = CLI_BIN;
  argv.push_back(const_cast<char*>(bin.c_str()));
  for (const auto& a : args) argv.push_back(const_cast<char*>(a.c_str()));
  argv.push_back(nullptr);

  const pid_t pid = fork();
  if (pid < 0) return -1;
  if (pid == 0) {
    // Child: silence the CLI's stderr progress chatter.
    std::freopen("/dev/null", "w", stderr);
    std::freopen("/dev/null", "w", stdout);
    execv(bin.c_str(), argv.data());
    _exit(127);
  }

  if (!signal_when_checkpointed.empty()) {
    // A checkpoint file holds the 8-byte magic plus at least one frame once
    // the first subset commits; signal the moment that happens.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (std::chrono::steady_clock::now() < deadline) {
      if (file_size(signal_when_checkpointed) > 16) {
        kill(pid, SIGTERM);
        break;
      }
      int status = 0;
      if (waitpid(pid, &status, WNOHANG) == pid) {
        // Finished before any checkpoint grew large enough.
        return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }

  int status = 0;
  if (waitpid(pid, &status, 0) != pid) return -1;
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

TEST(ShutdownCli, SigtermFlushesCheckpointAndResumeIsBitIdentical) {
  const std::string dir = ::testing::TempDir();
  const std::string base_csv = dir + "elmo_sig_base.csv";
  const std::string int_csv = dir + "elmo_sig_int.csv";
  const std::string int_json = dir + "elmo_sig_int.json";
  const std::string resumed_csv = dir + "elmo_sig_resumed.csv";
  const std::string ckpt = dir + "elmo_sig_ck.bin";
  for (const auto& p : {base_csv, int_csv, int_json, resumed_csv, ckpt})
    std::remove(p.c_str());

  // Many small subsets stretch the run and give the checkpoint frequent
  // commit points to interrupt between.
  const std::vector<std::string> common = {"--builtin",   "ecoli",
                                           "--algorithm", "combined",
                                           "--qsub",      "5"};

  auto base_args = common;
  base_args.insert(base_args.end(), {"--output", base_csv});
  ASSERT_EQ(run_cli(base_args), 0);
  const std::string baseline = slurp(base_csv);
  ASSERT_FALSE(baseline.empty());

  bool interrupted = false;
  for (int attempt = 0; attempt < 3 && !interrupted; ++attempt) {
    std::remove(ckpt.c_str());
    std::remove(int_csv.c_str());
    std::remove(int_json.c_str());
    auto args = common;
    args.insert(args.end(), {"--checkpoint", ckpt, "--output", int_csv,
                             "--report", int_json});
    const int code = run_cli(args, /*signal_when_checkpointed=*/ckpt);
    if (code == resource::kResumableExitCode) {
      interrupted = true;
      break;
    }
    // The run won the race and completed; its output must still match.
    ASSERT_EQ(code, 0) << "unexpected CLI exit code";
    EXPECT_EQ(slurp(int_csv), baseline);
  }

  if (!interrupted) {
    GTEST_SKIP() << "machine too fast to interrupt a 32-subset ecoli solve "
                    "in 3 attempts; clean-completion outputs verified";
  }

  // The cancelled run must have left a usable checkpoint covering SOME but
  // not all of the 2^5 subsets, and a partial report marked cancelled.
  auto committed = load_checkpoint(ckpt);
  ASSERT_GE(committed.size(), 1u);
  ASSERT_LT(committed.size(), 32u);
  const std::string report = slurp(int_json);
  ASSERT_FALSE(report.empty()) << "cancelled run must still flush a report";
  EXPECT_NE(report.find("cancelled"), std::string::npos);

  // Resume: skip the committed subsets, finish the rest, byte-identical.
  auto resume_args = common;
  resume_args.insert(resume_args.end(), {"--resume", ckpt, "--checkpoint",
                                         ckpt, "--output", resumed_csv});
  ASSERT_EQ(run_cli(resume_args), 0);
  EXPECT_EQ(slurp(resumed_csv), baseline);
  // The finished checkpoint now covers every subset.
  EXPECT_EQ(load_checkpoint(ckpt).size(), 32u);
}

TEST(ShutdownCli, ResumableExitCodeIsStable) {
  // Exit code 75 (EX_TEMPFAIL) is part of the CLI contract supervisors
  // script against; moving it is a breaking change.
  EXPECT_EQ(resource::kResumableExitCode, 75);
}

}  // namespace
}  // namespace elmo
