// Tests for the overflow-checked int64 scalar.
#include "bigint/checked.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace elmo {
namespace {

TEST(CheckedI64, BasicArithmetic) {
  CheckedI64 a(6);
  CheckedI64 b(-4);
  EXPECT_EQ((a + b).value(), 2);
  EXPECT_EQ((a - b).value(), 10);
  EXPECT_EQ((a * b).value(), -24);
  EXPECT_EQ((a / b).value(), -1);
  EXPECT_EQ((a % b).value(), 2);
  EXPECT_EQ((-a).value(), -6);
}

TEST(CheckedI64, AdditionOverflowThrows) {
  CheckedI64 max(INT64_MAX);
  EXPECT_THROW(max + CheckedI64(1), OverflowError);
  CheckedI64 min(INT64_MIN);
  EXPECT_THROW(min - CheckedI64(1), OverflowError);
}

TEST(CheckedI64, MultiplicationOverflowThrows) {
  CheckedI64 big(INT64_MAX / 2 + 1);
  EXPECT_THROW(big * CheckedI64(2), OverflowError);
  EXPECT_NO_THROW(CheckedI64(INT64_MAX / 2) * CheckedI64(2));
}

TEST(CheckedI64, NegationAndAbsOfMinThrows) {
  CheckedI64 min(INT64_MIN);
  EXPECT_THROW(-min, OverflowError);
  EXPECT_THROW(min.abs(), OverflowError);
}

TEST(CheckedI64, DivisionEdgeCases) {
  EXPECT_THROW(CheckedI64(1) / CheckedI64(0), InvalidArgumentError);
  EXPECT_THROW(CheckedI64(INT64_MIN) / CheckedI64(-1), OverflowError);
  EXPECT_EQ((CheckedI64(INT64_MIN) % CheckedI64(-1)).value(), 0);
}

TEST(CheckedI64, Gcd) {
  EXPECT_EQ(CheckedI64::gcd(CheckedI64(12), CheckedI64(-18)).value(), 6);
  EXPECT_EQ(CheckedI64::gcd(CheckedI64(0), CheckedI64(0)).value(), 0);
  EXPECT_THROW(CheckedI64::gcd(CheckedI64(INT64_MIN), CheckedI64(2)),
               OverflowError);
}

TEST(CheckedI64, Ordering) {
  EXPECT_LT(CheckedI64(-1), CheckedI64(0));
  EXPECT_GT(CheckedI64(5), CheckedI64(3));
  EXPECT_EQ(CheckedI64(7), CheckedI64(7));
}

}  // namespace
}  // namespace elmo
