// Subset-level checkpoint/restart for Algorithm 3.
//
// Each completed divide-and-conquer subset is an independently-valid piece
// of the final EFM set (the 2^qsub subsets are disjoint by construction),
// so the combined driver can persist subsets as it finishes them and a
// later run can skip straight past them — making multi-hour Table-IV-class
// runs interruptible.
//
// File format (little-endian, append-only):
//   8-byte magic "ELMOCKP1"
//   repeated records: [u64 body_size][body][u32 crc32(body)]
// Record body:
//   u64 pattern_count, then per entry: u64 reduced row, u8 nonzero-flag
//   u64 candidate_pairs, f64 seconds, u64 extra_splits, u64 attempts
//   u64 mode_count, then per mode: u64 length + BigInt-serialised values
//
// Modes are stored in the full reduced reaction space, after the
// Proposition-1 filter, as scalar-agnostic BigInt — a checkpoint written by
// the int64 kernel resumes bit-identically under the BigInt kernel and
// vice versa.  The loader verifies each record's CRC and silently stops at
// a truncated or damaged tail (the signature of a writer killed mid-append);
// everything before the tail is recovered.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "bigint/bigint.hpp"

namespace elmo {

/// One completed subset as persisted to / recovered from a checkpoint.
struct CheckpointRecord {
  /// Subset identity: (reduced row, must-be-nonzero) per partition
  /// reaction, matching SubsetSpec::pattern.
  std::vector<std::pair<std::uint64_t, bool>> pattern;
  /// The subset's EFMs in the full reduced reaction space.
  std::vector<std::vector<BigInt>> modes;
  std::uint64_t candidate_pairs = 0;
  double seconds = 0.0;
  std::uint64_t extra_splits = 0;
  std::uint64_t attempts = 1;
};

/// Append one record to `path`, creating the file (with header) if needed.
void append_checkpoint_record(const std::string& path,
                              const CheckpointRecord& record);

/// Load every complete record of `path`.  Returns an empty vector for a
/// missing file; stops silently at a truncated/corrupt tail; throws
/// ParseError if the file exists but is not a checkpoint file.
std::vector<CheckpointRecord> load_checkpoint(const std::string& path);

/// Truncate `path` to its last intact frame, so later appends land after
/// valid data instead of behind an unreadable damaged tail.  No-op for a
/// missing, empty, or clean file.  Returns the bytes trimmed.  Throws
/// ParseError if the file exists but is not a checkpoint file.
std::size_t repair_checkpoint(const std::string& path);

}  // namespace elmo
