// Algorithm 3: the combined parallel Nullspace Algorithm — the paper's
// contribution.
//
// The EFM set is partitioned across a subset of qsub (reversible, trailing)
// reactions into 2^qsub disjoint subsets keyed by the zero/nonzero flux
// pattern = the binary representation of the subset id.  For each subset:
//
//   * zero-flux reactions are REMOVED from the stoichiometry (their columns
//     vanish; paper Algorithm 3 lines 5-9),
//   * nonzero-flux reactions are left UNPROCESSED (exclude_rows — the
//     paper's reorder-to-bottom + early stop, lines 10-14),
//   * Algorithm 2 runs on the subproblem,
//   * Proposition 1 keeps exactly the columns with nonzero values in every
//     unprocessed partition row (lines 15-17),
//   * the zero-flux rows are re-inserted as zeros (lines 18-21).
//
// The union over all subsets is the complete EFM set.  When a subset
// exceeds the per-rank memory budget the optional adaptive re-split adds
// one more partition reaction to just that subset and recurses — this is
// precisely what the paper did on Network II, where subsets 1 and 3 of the
// {R54r, R90r, R60r} split had to be re-split by R22r (Table IV).
// Fault tolerance: each subset is an independent, restartable unit of
// work.  A RetryPolicy re-queues subsets that fail transiently (injected
// rank crashes, corrupted payloads) or persistently (budget exhausted
// beyond max_extra_splits), optionally shrinking the world or finishing
// serially; completed subsets can be appended to a checkpoint file and a
// later run with resume_from skips them, bit-identically.
#pragma once

#include <algorithm>
#include <deque>
#include <functional>
#include <map>
#include <string>

#include "check/check.hpp"
#include "core/checkpoint.hpp"
#include "core/combinatorial_parallel.hpp"
#include "core/retry.hpp"
#include "core/subset_select.hpp"
#include "mpsim/communicator.hpp"
#include "mpsim/fault.hpp"
#include "nullspace/efm.hpp"
#include "nullspace/problem.hpp"
#include "nullspace/solver.hpp"
#include "nullspace/stats.hpp"
#include "obs/obs.hpp"
#include "resource/shutdown.hpp"
#include "resource/watchdog.hpp"
#include "support/timer.hpp"

namespace elmo {

struct SubsetSpec;

struct CombinedOptions {
  /// Reduced-problem reaction names to partition over, most significant
  /// first (subset id bit k corresponds to partition_reactions[k] counted
  /// from the least significant bit).  All must be reversible.  When empty,
  /// `qsub` trailing reversible reactions are selected automatically.
  std::vector<std::string> partition_reactions;
  /// Used only when partition_reactions is empty.
  std::size_t qsub = 2;

  int num_ranks = 4;
  /// Shared-memory workers per rank (see ParallelOptions::threads_per_rank).
  int threads_per_rank = 1;
  SolverOptions solver;
  std::size_t memory_budget_per_rank = 0;

  /// On MemoryBudgetError, split the failing subset further by appending
  /// the next unused trailing reversible reaction, up to this many extra
  /// reactions (0 disables re-splitting and the error propagates).
  std::size_t max_extra_splits = 0;

  /// Per-subset retry behaviour for transient failures (rank crashes,
  /// corrupted payloads) and for budget exhaustion past max_extra_splits.
  RetryPolicy retry;
  /// Deterministic fault injection shared by every world this run spawns.
  std::shared_ptr<mpsim::FaultPlan> fault_plan;
  /// When non-empty, append a record per completed subset to this file.
  std::string checkpoint_path;
  /// When non-empty, load this checkpoint and skip its completed subsets.
  std::string resume_from;

  /// Watchdog supervision of each subset's world (soft = straggler
  /// diagnosis, hard/stall = abort + re-queue-with-split).  When
  /// subset_cost_hint is set, soft/hard deadlines scale per subset with
  /// its predicted cost relative to the median subset, so a legitimately
  /// heavy subset is not punished by a budget sized for the typical one.
  resource::Deadlines subset_deadlines;
  /// Optional cost model: predicted candidate pairs (or any monotone cost
  /// proxy) for a subset.  Wired by the API layer from core/estimate.hpp
  /// (which cannot be included here — it includes this header).
  std::function<double(const SubsetSpec&)> subset_cost_hint;

  /// Invoked once per committed subset (computed or resumed) with its
  /// label, EFM count, and wall seconds.  Never throttled — progress
  /// reporting uses this so even a subset that finishes inside one
  /// heartbeat interval leaves a record.
  std::function<void(const std::string&, std::size_t, double)> on_subset;
};

/// One divide-and-conquer subtask: (reduced reaction index, must-be-nonzero)
/// per partition reaction.
struct SubsetSpec {
  std::vector<std::pair<std::size_t, bool>> pattern;

  /// Render as the paper does: overlined (zero-flux) names are suffixed
  /// with '0', nonzero ones with '+', e.g. "R89r:0 R74r:+".
  [[nodiscard]] std::string label(
      const std::vector<std::string>& names) const {
    std::string out;
    for (const auto& [row, nonzero] : pattern) {
      if (!out.empty()) out += ' ';
      out += names[row];
      out += nonzero ? ":+" : ":0";
    }
    return out;
  }
};

struct SubsetReport {
  SubsetSpec spec;
  std::string label;
  std::size_t num_efms = 0;
  SolveStats stats;
  mpsim::RunReport ranks;
  double seconds = 0.0;
  /// Number of extra partition reactions this subset needed (adaptive).
  std::size_t extra_splits = 0;
  /// How many attempts the subset took (1 = first try succeeded).
  std::size_t attempts = 1;
  /// Simulated backoff charged before the successful attempt.
  double backoff_seconds = 0.0;
  /// True if the subset was recovered from a checkpoint, not computed.
  bool resumed = false;
  /// Each simulated rank's own solver ledger (empty for resumed subsets).
  std::vector<SolveStats> rank_stats;
};

template <typename Scalar, typename Support>
struct CombinedResult {
  /// Union of all subset EFM sets, in the reduced reaction space.
  std::vector<FluxColumn<Scalar, Support>> columns;
  std::vector<SubsetReport> subsets;
  SolveStats total;
  double seconds = 0.0;
  /// Failed subset attempts that were re-queued under the retry policy.
  std::size_t total_retries = 0;
  /// Sum of the exponential-backoff delays, in simulated seconds.  Nothing
  /// actually sleeps; the ledger makes retry cost visible in reports.
  double simulated_backoff_seconds = 0.0;
  /// Timeline of notable moments (retries, re-splits, checkpoints,
  /// resumes), timestamped relative to the start of solve_combined.
  std::vector<obs::TimelineEvent> events;
};

namespace detail {

/// Build the subproblem for one subset: remove zero-flux columns, record
/// the sub-index of every nonzero-flux row.
template <typename Scalar>
struct Subproblem {
  EfmProblem<Scalar> problem;
  std::vector<std::size_t> keep;          // sub col -> original reduced col
  std::vector<std::size_t> nzf_sub_rows;  // nonzero rows, sub numbering
};

template <typename Scalar>
Subproblem<Scalar> make_subproblem(const EfmProblem<Scalar>& problem,
                                   const SubsetSpec& spec) {
  std::vector<bool> removed(problem.num_reactions(), false);
  std::vector<bool> nonzero(problem.num_reactions(), false);
  for (const auto& [row, nz] : spec.pattern) {
    ELMO_REQUIRE(problem.reversible[row],
                 "partition reaction " + problem.reaction_names[row] +
                     " must be reversible (Proposition 1 requires the "
                     "unprocessed rows to be sign-free)");
    if (nz)
      nonzero[row] = true;
    else
      removed[row] = true;
  }
  Subproblem<Scalar> sub;
  for (std::size_t j = 0; j < problem.num_reactions(); ++j) {
    if (removed[j]) continue;
    if (nonzero[j]) sub.nzf_sub_rows.push_back(sub.keep.size());
    sub.keep.push_back(j);
  }
  sub.problem.stoichiometry = problem.stoichiometry.select_columns(sub.keep);
  for (std::size_t j : sub.keep) {
    sub.problem.reversible.push_back(problem.reversible[j]);
    sub.problem.reaction_names.push_back(problem.reaction_names[j]);
  }
  return sub;
}

}  // namespace detail

template <typename Scalar, typename Support>
CombinedResult<Scalar, Support> solve_combined(
    const EfmProblem<Scalar>& problem, const CombinedOptions& options) {
  Stopwatch total_watch;
  CombinedResult<Scalar, Support> result;

  // Timeline + instant-event recorder: one line in the run report, one
  // instant in the trace (when tracing is on), one counter bump.
  auto note_event = [&](const char* kind, std::string detail,
                        const obs::Counter& counter) {
    counter.add(1);
    obs::trace_instant(kind, "combined", detail);
    result.events.push_back(
        obs::TimelineEvent{total_watch.seconds(), kind, std::move(detail)});
  };
  auto& registry = obs::Registry::global();
  static const obs::Counter retries_counter =
      registry.counter("combined.retries");
  static const obs::Counter resplits_counter =
      registry.counter("combined.resplits");
  static const obs::Counter checkpoints_counter =
      registry.counter("combined.checkpoints");
  static const obs::Counter resumed_counter =
      registry.counter("combined.subsets_resumed");
  static const obs::Counter subsets_counter =
      registry.counter("combined.subsets_solved");
  static const obs::Counter cancelled_counter =
      registry.counter("combined.cancelled");

  // Resolve the partition reactions.
  std::vector<std::size_t> partition_rows;
  if (options.partition_reactions.empty()) {
    partition_rows = select_partition_rows(problem, options.solver.ordering,
                                           options.qsub);
  } else {
    for (const auto& name : options.partition_reactions) {
      std::size_t row = problem.num_reactions();
      for (std::size_t j = 0; j < problem.num_reactions(); ++j) {
        if (problem.reaction_names[j] == name) {
          row = j;
          break;
        }
      }
      ELMO_REQUIRE(row < problem.num_reactions(),
                   "partition reaction not in reduced problem: " + name);
      partition_rows.push_back(row);
    }
  }
  const std::size_t qsub = partition_rows.size();
  ELMO_REQUIRE(qsub > 0 && qsub < 63, "unreasonable partition subset size");

  // Trailing reversible reactions available for adaptive re-splitting.
  // Best effort: a network with few reversible reactions simply yields
  // fewer spares, and budget errors past the available depth fall through
  // to the retry ladder instead of failing at setup.
  std::vector<std::size_t> spares;
  if (options.max_extra_splits > 0) {
    auto trailing = select_partition_rows_up_to(
        problem, options.solver.ordering, qsub + options.max_extra_splits);
    for (std::size_t row : trailing) {
      bool used = false;
      for (std::size_t p : partition_rows) used = used || p == row;
      if (!used) spares.push_back(row);
    }
  }

  // Subsets already completed by an earlier, interrupted run.  Keyed by
  // the full pattern (including adaptive extra splits); last record wins
  // so a file holding a retried subset twice resumes from the newest.
  std::map<std::vector<std::pair<std::uint64_t, bool>>, CheckpointRecord>
      completed;
  if (!options.resume_from.empty()) {
    // A writer killed mid-append leaves a damaged tail, and load_checkpoint
    // stops silently at the first unreadable frame — repairing first trims
    // the file to its last intact frame so the resume set is everything
    // that actually committed, not a prefix cut short by garbage bytes.
    repair_checkpoint(options.resume_from);
    for (auto& record : load_checkpoint(options.resume_from))
      completed[record.pattern] = std::move(record);
  }
  // The same damaged tail would strand this run's appended records behind
  // unreadable bytes, so trim the write-side file too before the first
  // commit of this run (it may differ from resume_from).
  if (!options.checkpoint_path.empty())
    repair_checkpoint(options.checkpoint_path);

  // Work queue of subtasks; adaptive re-splitting pushes refined subsets,
  // the retry policy re-queues failed ones with a higher attempt count.
  struct Task {
    SubsetSpec spec;
    std::size_t attempt = 1;
    double backoff = 0.0;
    /// Retrying after resource exhaustion: apply the degrade ladder
    /// (halve the candidate tile, then spill-always, then serial).
    bool degrade = false;
  };
  std::deque<Task> queue;
  for (std::uint64_t id = 0; id < (1ULL << qsub); ++id) {
    SubsetSpec spec;
    for (std::size_t k = 0; k < qsub; ++k)
      spec.pattern.emplace_back(partition_rows[k], (id >> k) & 1);
    queue.push_back(Task{std::move(spec), 1, 0.0, false});
  }

  // Estimate-based deadline scaling: predict every initial subset's cost
  // once and take the median as the unit the configured deadlines budget
  // for.  (Braunstein et al.: predicting demand before committing to a
  // subset.)
  double median_cost_hint = 0.0;
  if (options.subset_cost_hint && options.subset_deadlines.any()) {
    std::vector<double> hints;
    hints.reserve(queue.size());
    for (const auto& t : queue) {
      const double h = options.subset_cost_hint(t.spec);
      if (h > 0) hints.push_back(h);
    }
    if (!hints.empty()) {
      std::nth_element(hints.begin(), hints.begin() + hints.size() / 2,
                       hints.end());
      median_cost_hint = hints[hints.size() / 2];
    }
  }

  const std::size_t max_attempts =
      options.retry.enabled() ? static_cast<std::size_t>(
                                    options.retry.max_attempts)
                              : 1;

  while (!queue.empty()) {
    if (resource::shutdown_requested()) {
      // Cooperative cancellation between subsets: everything solved so far
      // is already checkpointed, so a --resume run loses nothing committed.
      note_event("cancelled",
                 "shutdown requested; " +
                     std::to_string(result.subsets.size()) +
                     " subset(s) committed",
                 cancelled_counter);
      resource::throw_if_shutdown_requested("combined driver");
    }
    Task task = std::move(queue.front());
    queue.pop_front();
    const SubsetSpec& spec = task.spec;

    std::vector<std::pair<std::uint64_t, bool>> key;
    for (const auto& [row, nz] : spec.pattern) key.emplace_back(row, nz);
    if (auto it = completed.find(key); it != completed.end()) {
      // Recovered from checkpoint: re-materialise the stored BigInt modes
      // in this run's scalar type instead of recomputing the subset.
      const CheckpointRecord& record = it->second;
      SubsetReport report;
      report.spec = spec;
      report.label = spec.label(problem.reaction_names);
      report.num_efms = record.modes.size();
      report.stats.total_pairs_probed = record.candidate_pairs;
      report.seconds = record.seconds;
      report.extra_splits = record.extra_splits;
      report.attempts = static_cast<std::size_t>(record.attempts);
      report.resumed = true;
      note_event("resume", report.label, resumed_counter);
      std::vector<FluxColumn<Scalar, Support>> restored;
      for (const auto& mode : record.modes) {
        std::vector<Scalar> values;
        values.reserve(mode.size());
        for (const auto& v : mode)
          values.push_back(scalar_from_bigint<Scalar>(v));
        restored.push_back(
            FluxColumn<Scalar, Support>::from_values(std::move(values)));
      }
      if (options.solver.audit) {
        // Checkpointed modes must still honour their subset's zero/nonzero
        // pattern — guards against stale or corrupted checkpoint files.
        check::InvariantAuditor{}.check_proposition1(
            restored, spec.pattern, "resumed subset " + report.label);
      }
      for (auto& column : restored)
        result.columns.push_back(std::move(column));
      result.total.merge(report.stats);
      if (options.on_subset)
        options.on_subset(report.label, report.num_efms, report.seconds);
      result.subsets.push_back(std::move(report));
      continue;
    }

    // One span per subset ATTEMPT (failed attempts get their own spans);
    // the label identifies the subset, Perfetto shows the retry pattern.
    obs::TraceSpan subset_span(
        "subset", "combined",
        obs::trace() != nullptr ? spec.label(problem.reaction_names)
                                : std::string());
    Stopwatch subset_watch;
    auto sub = detail::make_subproblem<Scalar>(problem, spec);
    ParallelOptions parallel = {};
    parallel.num_ranks = options.num_ranks;
    parallel.threads_per_rank = options.threads_per_rank;
    parallel.solver = options.solver;
    parallel.solver.exclude_rows = sub.nzf_sub_rows;
    parallel.memory_budget_per_rank = options.memory_budget_per_rank;
    parallel.fault_plan = options.fault_plan;

    // Watchdog deadlines for this subset's world, scaled by its predicted
    // cost relative to the median subset when a cost model is wired.
    parallel.deadlines = options.subset_deadlines;
    if (median_cost_hint > 0) {
      const double hint = options.subset_cost_hint(spec);
      if (hint > 0) {
        const double scale = std::clamp(hint / median_cost_hint, 1.0, 16.0);
        parallel.deadlines.soft_seconds *= scale;
        parallel.deadlines.hard_seconds *= scale;
      }
    }

    // Attempt shaping: optionally shrink the world on every retry, and run
    // the last permitted attempt serially — one rank, no budget, no fault
    // plan — so the ladder always has a clean exit.
    const bool serial_attempt = options.retry.serial_final_attempt &&
                                task.attempt >= max_attempts &&
                                max_attempts > 1;
    if (options.retry.halve_ranks_on_retry && task.attempt > 1) {
      parallel.num_ranks = std::max(
          1, options.num_ranks >> static_cast<int>(task.attempt - 1));
    }
    if (task.degrade && task.attempt > 1) {
      // Resource degrade ladder (ResourceError / bad_alloc): each retry
      // halves the candidate tile again; from the second retry on, every
      // block goes out-of-core unconditionally.
      parallel.solver.block_ref_cap = std::max<std::size_t>(
          std::size_t{1} << 12,
          options.solver.block_ref_cap >> (task.attempt - 1));
      parallel.solver.spill.enabled = true;
      if (task.attempt >= 3) parallel.solver.spill.always = true;
    }
    if (serial_attempt) {
      parallel.num_ranks = 1;
      parallel.threads_per_rank = 1;
      parallel.memory_budget_per_rank = 0;
      parallel.fault_plan = nullptr;
      // The ladder's clean exit must not fail on governance either:
      // complete slowly (spilling if asked) rather than not at all.
      parallel.solver.ignore_mem_limit = true;
      parallel.deadlines = {};
    }

    // Re-split this subset on the next spare reaction (paper Table IV: the
    // oversized three-reaction subsets gained R22r as a fourth).  Returns
    // false when the re-split headroom is exhausted — then the retry ladder
    // takes over.
    auto try_resplit = [&]() -> bool {
      const std::size_t depth = spec.pattern.size() - qsub;
      if (depth >= options.max_extra_splits || depth >= spares.size())
        return false;
      const std::size_t extra = spares[depth];
      note_event("resplit",
                 spec.label(problem.reaction_names) + " + " +
                     problem.reaction_names[extra],
                 resplits_counter);
      for (bool nz : {false, true}) {
        SubsetSpec refined = spec;
        refined.pattern.emplace_back(extra, nz);
        queue.push_front(Task{std::move(refined), 1, task.backoff, false});
      }
      return true;
    };
    // Re-queue the subset with a bumped attempt count and exponential
    // backoff ledger, or exhaust the ladder.  Only valid inside a catch
    // block (rethrows when max_attempts == 1).  `degrade` marks the retry
    // as a resource retry so attempt shaping applies the degrade ladder.
    auto requeue_or_throw = [&](const std::string& what, bool degrade) {
      if (task.attempt >= max_attempts) {
        if (max_attempts > 1)
          throw RetryExhaustedError(spec.label(problem.reaction_names),
                                    static_cast<int>(task.attempt), what);
        throw;
      }
      ++result.total_retries;
      note_event("retry",
                 spec.label(problem.reaction_names) + ": " + what +
                     " (attempt " + std::to_string(task.attempt) + ")",
                 retries_counter);
      const double delay =
          options.retry.backoff_seconds *
          static_cast<double>(1ULL << (task.attempt - 1));
      result.simulated_backoff_seconds += delay;
      queue.push_back(Task{spec, task.attempt + 1, task.backoff + delay,
                           degrade || task.degrade});
    };

    ParallelSolveResult<Scalar, Support> solved;
    try {
      solved =
          solve_combinatorial_parallel<Scalar, Support>(sub.problem, parallel);
    } catch (const MemoryBudgetError&) {
      // Per-rank budget bust: split first (halving the subset halves the
      // per-rank matrix), then retry (the serial final attempt ignores the
      // budget and will finish it).
      if (try_resplit()) continue;
      requeue_or_throw("memory budget exceeded", false);
      continue;
    } catch (const ResourceError& e) {
      // Process-level exhaustion (--mem-limit bust or a real bad_alloc):
      // split if possible, otherwise retry DEGRADED — smaller candidate
      // tiles, then spill-always, then the serial ungoverned rung.
      if (try_resplit()) continue;
      requeue_or_throw(e.what(), true);
      continue;
    } catch (const DeadlineExceededError& e) {
      // Watchdog hard deadline / wedged world: re-queue with a split so the
      // halves fit the time budget; fall back to plain retries (the serial
      // final attempt runs unsupervised).
      if (try_resplit()) continue;
      requeue_or_throw(e.what(), false);
      continue;
    } catch (const std::exception& e) {
      // Transient failures — an injected crash, a world abort, a corrupted
      // payload — are retryable; everything else (including CancelledError
      // from a shutdown request) is not and propagates.
      const bool retryable =
          dynamic_cast<const mpsim::AbortedError*>(&e) != nullptr ||
          dynamic_cast<const mpsim::InjectedFaultError*>(&e) != nullptr ||
          dynamic_cast<const CorruptPayloadError*>(&e) != nullptr;
      if (!retryable) throw;
      requeue_or_throw(e.what(), false);
      continue;
    }

    // Proposition 1: keep columns with nonzero flux in EVERY unprocessed
    // partition row; re-embed into the full reduced space with zeros in
    // the removed columns.
    SubsetReport report;
    report.spec = spec;
    report.label = spec.label(problem.reaction_names);
    report.stats = solved.stats;
    report.ranks = std::move(solved.ranks);
    report.rank_stats = std::move(solved.per_rank);
    report.extra_splits = spec.pattern.size() - qsub;
    report.attempts = task.attempt;
    report.backoff_seconds = task.backoff;
    std::vector<FluxColumn<Scalar, Support>> subset_columns;
    for (auto& column : solved.columns) {
      bool keep = true;
      for (std::size_t sub_row : sub.nzf_sub_rows)
        keep = keep && !scalar_is_zero(column.values[sub_row]);
      if (!keep) continue;
      std::vector<Scalar> full(problem.num_reactions(),
                               scalar_from_i64<Scalar>(0));
      for (std::size_t j = 0; j < sub.keep.size(); ++j)
        full[sub.keep[j]] = std::move(column.values[j]);
      subset_columns.push_back(
          FluxColumn<Scalar, Support>::from_values(std::move(full)));
      ++report.num_efms;
    }
    report.seconds = subset_watch.seconds();

    if (options.solver.audit) {
      // Proposition 1, re-checked from first principles: every reported
      // column has nonzero flux on all nonzero-pattern rows and exact
      // zeros on all removed rows (the filter above and the re-embedding
      // must agree with the subset's defining pattern).
      check::InvariantAuditor{}.check_proposition1(
          subset_columns, spec.pattern, "subset " + report.label);
    }

    if (!options.checkpoint_path.empty()) {
      CheckpointRecord record;
      record.pattern = key;
      record.modes = columns_to_bigint(subset_columns);
      record.candidate_pairs = report.stats.total_pairs_probed;
      record.seconds = report.seconds;
      record.extra_splits = report.extra_splits;
      record.attempts = report.attempts;
      append_checkpoint_record(options.checkpoint_path, record);
      note_event("checkpoint", report.label, checkpoints_counter);
    }

    subsets_counter.add(1);
    for (auto& column : subset_columns)
      result.columns.push_back(std::move(column));
    result.total.merge(report.stats);
    if (options.on_subset)
      options.on_subset(report.label, report.num_efms, report.seconds);
    result.subsets.push_back(std::move(report));
  }

  if (options.solver.audit) {
    // The executed subsets (including adaptive re-splits and resumed ones)
    // must tile the zero/nonzero pattern space: pairwise disjoint, exact
    // cover (Proposition 1's premise — every EFM lands in exactly one).
    std::vector<check::SubsetPattern> patterns;
    std::vector<std::string> labels;
    for (const auto& subset : result.subsets) {
      patterns.push_back(subset.spec.pattern);
      labels.push_back(subset.label);
    }
    check::check_subset_partition(patterns, labels);
    check::InvariantAuditor auditor;
    auditor.check_nullspace_product(problem.stoichiometry, result.columns,
                                    "solve_combined final");
    auditor.check_support_minimality(result.columns, "solve_combined final");
  }

  result.seconds = total_watch.seconds();
  return result;
}

}  // namespace elmo
