# Empty dependencies file for knockout_study.
# This may be replaced when dependencies are built.
