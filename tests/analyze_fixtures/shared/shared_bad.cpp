// Seeded violations for the shared-state concurrency pass.  Never
// compiled — only analyzed.
#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

namespace fixture {

long g_total = 0;                  // plain global: mutations must be flagged
std::atomic<long> g_atomic{0};     // atomic global: always fine

void parallel_for_dynamic(int lanes, void (*fn)(int));

struct Pool {
  void submit(void (*fn)());
};

struct Engine {
  long counter_ = 0;
  std::mutex mutex_;
  Pool pool_;

  void run() {
    pool_.submit([this] {
      counter_ += 1;  // member mutation, no guard: flagged
    });
  }

  void run_guarded() {
    pool_.submit([this] {
      std::lock_guard<std::mutex> lock(mutex_);
      counter_ += 1;  // guarded: silent
    });
  }
};

inline void lanes() {
  long hits = 0;
  static long s_calls = 0;
  auto lane = [&](int t) {
    g_total += t;   // global mutation: flagged
    s_calls += 1;   // static local of the spawner: flagged
    hits += 1;      // ref-captured spawner local: flagged
    g_atomic += 1;  // atomic: silent
    long mine = 0;
    mine += t;      // lane-local: silent
  };
  parallel_for_dynamic(4, lane);
}

inline void ranks() {
  std::vector<long> slots(4, 0);
  std::vector<std::thread> threads;
  for (int r = 0; r < 4; ++r) {
    threads.emplace_back([&, r] {
      g_total += r;  // flagged: the slot annotation below does not reach here
      slots[r] = r;  // analyze:shared-ok — per-rank disjoint slot
    });
  }
}

}  // namespace fixture
