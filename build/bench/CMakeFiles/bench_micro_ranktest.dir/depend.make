# Empty dependencies file for bench_micro_ranktest.
# This may be replaced when dependencies are built.
