#include "obs/ledger.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <stdexcept>

#include "obs/json.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>  // gethostname
#endif

namespace elmo::obs {

namespace {

/// Collect every numeric leaf of nested objects under dot paths.  Arrays
/// are deliberately skipped: per-rank/per-iteration detail is unbounded and
/// run-shaped; the ledger keeps the comparable scalars.
void flatten_metrics(const JsonValue& value, const std::string& prefix,
                     std::map<std::string, double>& out) {
  if (value.kind() == JsonValue::Kind::kObject) {
    for (const auto& [key, member] : value.as_object()) {
      const std::string path = prefix.empty() ? key : prefix + "." + key;
      flatten_metrics(member, path, out);
    }
    return;
  }
  if (!prefix.empty() && value.is_number()) out[prefix] = value.as_double();
}

/// Integral values print without a fraction (counts stay greppable);
/// everything else gets six significant digits.
std::string format_metric(double value) {
  char buffer[48];
  if (value == std::floor(value) && std::fabs(value) < 9.0e15) {
    std::snprintf(buffer, sizeof buffer, "%.0f", value);
  } else {
    std::snprintf(buffer, sizeof buffer, "%.6g", value);
  }
  return buffer;
}

std::string format_delta_pct(double baseline, double candidate) {
  if (baseline == 0.0) return candidate == 0.0 ? "+0%" : "n/a";
  char buffer[48];
  std::snprintf(buffer, sizeof buffer, "%+.2f%%",
                (candidate - baseline) / std::fabs(baseline) * 100.0);
  return buffer;
}

/// Absolute noise floor below which a time/memory increase is never a
/// regression, regardless of its relative size (3 us -> 5 us is +67% and
/// meaningless).
double noise_floor(const std::string& name, MetricClass cls) {
  if (cls == MetricClass::kMemory) return 1 << 20;  // 1 MiB
  if (cls != MetricClass::kTime) return 0.0;
  if (name.find("_us") != std::string::npos) return 5e4;  // 50 ms
  if (name.find("seconds") != std::string::npos) return 0.05;
  if (name.find("pct") != std::string::npos) return 10.0;  // 10 points
  if (name.find("utilization") != std::string::npos) return 0.25;
  return 0.0;
}

std::string iso_timestamp_now() {
  if (const char* forced = std::getenv("ELMO_LEDGER_TIMESTAMP"))
    return forced;
  const std::time_t now = std::time(nullptr);
  std::tm utc{};
#if defined(__unix__) || defined(__APPLE__)
  gmtime_r(&now, &utc);
#else
  utc = *std::gmtime(&now);
#endif
  char buffer[32];
  std::strftime(buffer, sizeof buffer, "%Y-%m-%dT%H:%M:%SZ", &utc);
  return buffer;
}

std::string env_or(const char* name, const char* fallback) {
  const char* value = std::getenv(name);
  return value != nullptr && value[0] != '\0' ? value : fallback;
}

std::string os_hostname() {
#if defined(__unix__) || defined(__APPLE__)
  char buffer[256] = {};
  if (gethostname(buffer, sizeof buffer - 1) == 0 && buffer[0] != '\0')
    return buffer;
#endif
  return "unknown";
}

}  // namespace

JsonValue LedgerRecord::to_json() const {
  JsonValue out = JsonValue::object();
  out.set("schema_version", JsonValue(schema_version));
  out.set("timestamp", JsonValue(timestamp));
  out.set("git_describe", JsonValue(git_describe));
  out.set("hostname", JsonValue(hostname));
  out.set("network", JsonValue(network));
  out.set("algorithm", JsonValue(algorithm));
  out.set("num_ranks", JsonValue(num_ranks));
  JsonValue config_json = JsonValue::object();
  for (const auto& [key, value] : config) config_json.set(key, JsonValue(value));
  out.set("config", std::move(config_json));
  out.set("num_efms", JsonValue(num_efms));
  out.set("seconds", JsonValue(seconds));
  JsonValue metrics_json = JsonValue::object();
  for (const auto& [name, value] : metrics)
    metrics_json.set(name, JsonValue(value));
  out.set("metrics", std::move(metrics_json));
  return out;
}

std::string LedgerRecord::key() const {
  std::string out = network + "|" + algorithm + "|r" +
                    std::to_string(num_ranks) + "|";
  for (const auto& [name, value] : config) out += name + "=" + value + ";";
  return out;
}

LedgerRecord make_ledger_record(const JsonValue& report,
                                std::string timestamp,
                                std::string git_describe,
                                std::string hostname) {
  if (report.kind() != JsonValue::Kind::kObject)
    throw std::runtime_error("ledger: report document is not a JSON object");
  LedgerRecord record;
  record.timestamp = std::move(timestamp);
  record.git_describe = std::move(git_describe);
  record.hostname = std::move(hostname);
  if (const JsonValue* v = report.find("network"))
    record.network = v->as_string();
  if (const JsonValue* v = report.find("algorithm"))
    record.algorithm = v->as_string();
  if (const JsonValue* v = report.find("num_ranks"))
    record.num_ranks = static_cast<int>(v->as_int());
  if (const JsonValue* v = report.find("config")) {
    for (const auto& [key, value] : v->as_object()) {
      if (value.kind() == JsonValue::Kind::kString)
        record.config[key] = value.as_string();
    }
  }
  if (const JsonValue* v = report.find("num_efms"))
    record.num_efms = v->as_uint();
  if (const JsonValue* v = report.find("seconds"))
    record.seconds = v->as_double();
  flatten_metrics(report, "", record.metrics);
  record.metrics.erase("num_ranks");  // identity, not a metric
  // Untraced runs report the trace-derived flow fields as zeros; recording
  // those would flag spurious "regressions" whenever a traced baseline is
  // compared against an untraced run (or vice versa).  Omit them instead —
  // check_regression only compares metrics present on both sides.
  const JsonValue* flow = report.find("flow");
  const JsonValue* traced = flow != nullptr ? flow->find("traced") : nullptr;
  if (traced == nullptr || !traced->as_bool()) {
    for (auto it = record.metrics.begin(); it != record.metrics.end();) {
      const bool trace_derived =
          it->first.rfind("flow.critical_path", 0) == 0 ||
          it->first.rfind("flow.flows_", 0) == 0 ||
          it->first == "flow.wall_us";
      it = trace_derived ? record.metrics.erase(it) : ++it;
    }
  }
  return record;
}

LedgerRecord make_ledger_record_env(const JsonValue& report) {
  return make_ledger_record(report, iso_timestamp_now(),
                            env_or("ELMO_GIT_DESCRIBE", "unknown"),
                            os_hostname());
}

LedgerRecord parse_ledger_record(const JsonValue& value) {
  if (value.kind() != JsonValue::Kind::kObject)
    throw std::runtime_error("ledger: record is not a JSON object");
  LedgerRecord record;
  if (const JsonValue* v = value.find("schema_version"))
    record.schema_version = static_cast<int>(v->as_int());
  if (const JsonValue* v = value.find("timestamp"))
    record.timestamp = v->as_string();
  if (const JsonValue* v = value.find("git_describe"))
    record.git_describe = v->as_string();
  if (const JsonValue* v = value.find("hostname"))
    record.hostname = v->as_string();
  if (const JsonValue* v = value.find("network"))
    record.network = v->as_string();
  if (const JsonValue* v = value.find("algorithm"))
    record.algorithm = v->as_string();
  if (const JsonValue* v = value.find("num_ranks"))
    record.num_ranks = static_cast<int>(v->as_int());
  if (const JsonValue* v = value.find("config")) {
    for (const auto& [key, member] : v->as_object()) {
      if (member.kind() == JsonValue::Kind::kString)
        record.config[key] = member.as_string();
    }
  }
  if (const JsonValue* v = value.find("num_efms"))
    record.num_efms = v->as_uint();
  if (const JsonValue* v = value.find("seconds"))
    record.seconds = v->as_double();
  if (const JsonValue* v = value.find("metrics")) {
    for (const auto& [name, member] : v->as_object()) {
      if (member.is_number()) record.metrics[name] = member.as_double();
    }
  }
  return record;
}

void append_ledger_record(const std::string& path,
                          const LedgerRecord& record) {
  const std::string line = record.to_json().dump(-1) + "\n";
  std::FILE* file = std::fopen(path.c_str(), "ab");
  if (file == nullptr)
    throw std::runtime_error("cannot open ledger file: " + path);
  const std::size_t written = std::fwrite(line.data(), 1, line.size(), file);
  const bool ok = written == line.size() && std::fclose(file) == 0;
  if (!ok) throw std::runtime_error("failed appending to ledger: " + path);
}

std::vector<LedgerRecord> load_ledger(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr)
    throw std::runtime_error("cannot open ledger file: " + path);
  std::string text;
  char buffer[4096];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof buffer, file)) > 0)
    text.append(buffer, got);
  std::fclose(file);

  std::vector<LedgerRecord> records;
  std::size_t begin = 0;
  std::size_t line_number = 0;
  while (begin < text.size()) {
    std::size_t end = text.find('\n', begin);
    if (end == std::string::npos) end = text.size();
    ++line_number;
    const std::string line = text.substr(begin, end - begin);
    begin = end + 1;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    std::string error;
    const JsonValue value = parse_json(line, &error);
    if (value.is_null() && !error.empty()) {
      throw std::runtime_error(path + ":" + std::to_string(line_number) +
                               ": bad ledger record: " + error);
    }
    records.push_back(parse_ledger_record(value));
  }
  return records;
}

std::string render_ledger_list(const std::vector<LedgerRecord>& records) {
  std::string out;
  for (std::size_t i = 0; i < records.size(); ++i) {
    const LedgerRecord& r = records[i];
    out += "[" + std::to_string(i) + "] " + r.timestamp + " " + r.network +
           "/" + r.algorithm + " ranks=" + std::to_string(r.num_ranks) +
           " efms=" + std::to_string(r.num_efms) +
           " seconds=" + format_metric(r.seconds) + " git=" + r.git_describe +
           " host=" + r.hostname + "\n";
  }
  if (records.empty()) out = "(empty ledger)\n";
  return out;
}

std::string render_ledger_diff(const LedgerRecord& baseline,
                               const LedgerRecord& candidate) {
  std::string out;
  out += "baseline : " + baseline.timestamp + " git=" +
         baseline.git_describe + " host=" + baseline.hostname + "\n";
  out += "candidate: " + candidate.timestamp + " git=" +
         candidate.git_describe + " host=" + candidate.hostname + "\n";
  if (baseline.key() != candidate.key())
    out += "warning: records describe different workloads\n";
  std::map<std::string, char> names;  // name -> 'b'oth/'l'eft/'r'ight
  for (const auto& [name, value] : baseline.metrics) names[name] = 'l';
  for (const auto& [name, value] : candidate.metrics) {
    auto it = names.find(name);
    names[name] = it == names.end() ? 'r' : 'b';
  }
  std::size_t unchanged = 0;
  for (const auto& [name, side] : names) {
    if (side == 'l') {
      out += "  " + name + ": only in baseline\n";
      continue;
    }
    if (side == 'r') {
      out += "  " + name + ": only in candidate\n";
      continue;
    }
    const double b = baseline.metrics.at(name);
    const double c = candidate.metrics.at(name);
    if (b == c) {
      ++unchanged;
      continue;
    }
    out += "  " + name + ": " + format_metric(b) + " -> " + format_metric(c) +
           " (" + format_delta_pct(b, c) + ")\n";
  }
  out += "  " + std::to_string(unchanged) + " metric(s) unchanged\n";
  return out;
}

MetricClass classify_metric(const std::string& name) {
  auto contains = [&name](const char* needle) {
    return name.find(needle) != std::string::npos;
  };
  if (contains("seconds") || contains("_us") || contains("wall") ||
      contains("pct") || contains("utilization")) {
    return MetricClass::kTime;
  }
  if (contains("bytes") || contains("rss") || contains("memory"))
    return MetricClass::kMemory;
  return MetricClass::kCount;
}

CheckResult check_regression(const LedgerRecord& baseline,
                             const LedgerRecord& candidate,
                             const CheckThresholds& thresholds) {
  CheckResult result;
  if (baseline.key() != candidate.key()) {
    result.report += "warning: baseline and candidate describe different "
                     "workloads; counts will likely mismatch\n";
  }
  for (const auto& [name, candidate_value] : candidate.metrics) {
    const auto base_it = baseline.metrics.find(name);
    if (base_it == baseline.metrics.end()) continue;
    const double b = base_it->second;
    const double c = candidate_value;
    const MetricClass cls = classify_metric(name);
    double tolerance_pct = 0.0;
    const auto override_it = thresholds.per_metric.find(name);
    if (override_it != thresholds.per_metric.end()) {
      tolerance_pct = override_it->second;
    } else {
      switch (cls) {
        case MetricClass::kTime: tolerance_pct = thresholds.time_pct; break;
        case MetricClass::kMemory:
          tolerance_pct = thresholds.memory_pct;
          break;
        case MetricClass::kCount: tolerance_pct = thresholds.count_pct; break;
      }
    }
    bool regressed = false;
    if (cls == MetricClass::kCount) {
      // Counts are deterministic: any drift — either direction — is wrong
      // (a lost EFM is as bad as a spurious one).
      regressed = std::fabs(c - b) > std::fabs(b) * tolerance_pct / 100.0;
    } else {
      // One-sided with a noise floor: only a material increase regresses.
      const double allowance = std::max(std::fabs(b) * tolerance_pct / 100.0,
                                        noise_floor(name, cls));
      regressed = c - b > allowance;
    }
    const std::string line =
        name + ": " + format_metric(b) + " -> " + format_metric(c) + " (" +
        format_delta_pct(b, c) + ", tol " + format_metric(tolerance_pct) +
        "%)";
    result.report += std::string(regressed ? "  [REGRESSION] " : "  [ok] ") +
                     line + "\n";
    if (regressed) {
      result.ok = false;
      result.regressions.push_back(line);
    }
  }
  return result;
}

}  // namespace elmo::obs
