// Minimal fixed-size thread pool with a blocking task queue.
//
// Used for shared-memory parallelism inside one simulated rank (the paper's
// nodes had four cores each); the distributed layer is mpsim.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "check/lockorder.hpp"
#include "obs/obs.hpp"
#include "support/assert.hpp"

namespace elmo {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads) {
    ELMO_REQUIRE(num_threads > 0, "ThreadPool: need at least one thread");
    workers_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this, i] {
        obs::set_current_thread_name("pool worker " + std::to_string(i));
        worker_loop();
      });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      ELMO_LOCK_ORDER("pool.queue");
      std::unique_lock lock(mutex_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (auto& worker : workers_) worker.join();
  }

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; the returned future resolves when it completes
  /// (exceptions propagate through the future).
  std::future<void> submit(std::function<void()> task) {
    auto packaged =
        std::make_shared<std::packaged_task<void()>>(std::move(task));
    auto future = packaged->get_future();
    {
      ELMO_LOCK_ORDER("pool.queue");
      std::unique_lock lock(mutex_);
      ELMO_CHECK(!stopping_, "ThreadPool: submit after shutdown");
      tasks_.emplace_back([packaged] { (*packaged)(); });
    }
    cv_.notify_one();
    return future;
  }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        ELMO_LOCK_ORDER("pool.queue");
        std::unique_lock lock(mutex_);
        cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
        if (stopping_ && tasks_.empty()) return;
        task = std::move(tasks_.front());
        tasks_.pop_front();
      }
      task();
    }
  }

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> tasks_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
};

}  // namespace elmo
