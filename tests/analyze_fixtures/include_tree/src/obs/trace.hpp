// Internal obs header: only the facade may re-export it.
#pragma once

struct FixTracer {
  int events = 0;
};
