// Resource governance: the MemoryGovernor ledger and admission policy, the
// checksummed spill file and column codec, out-of-core solves (bit-identical
// to the in-memory path), the degrade rungs of the retry ladder under
// --mem-limit, watchdog deadlines (soft straggler diagnosis, hard abort,
// stall detection), and cooperative shutdown.
#include "resource/governor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <fstream>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "bitset/bitset64.hpp"
#include "core/api.hpp"
#include "models/ecoli_core.hpp"
#include "models/toy.hpp"
#include "models/yeast.hpp"
#include "mpsim/fault.hpp"
#include "nullspace/spill.hpp"
#include "resource/shutdown.hpp"
#include "resource/spill.hpp"
#include "resource/watchdog.hpp"

namespace elmo {
namespace {

using resource::Admission;
using resource::MemoryGovernor;
using resource::MemoryLease;
using resource::Subsystem;

// ---------------------------------------------------------------------------
// MemoryGovernor ledger + admission.

TEST(Governor, LeaseAccountingAndPeak) {
  MemoryGovernor gov;
  EXPECT_EQ(gov.usage(), 0u);
  {
    MemoryLease matrix(Subsystem::kMatrix, gov);
    MemoryLease cand(Subsystem::kCandidates, gov);
    matrix.set(1000);
    cand.set(500);
    EXPECT_EQ(gov.usage(), 1500u);
    EXPECT_EQ(gov.usage(Subsystem::kMatrix), 1000u);
    EXPECT_EQ(gov.usage(Subsystem::kCandidates), 500u);
    // Shrinking releases the delta; the peak remembers the high-water mark.
    cand.set(100);
    EXPECT_EQ(gov.usage(), 1100u);
    EXPECT_EQ(gov.peak_usage(), 1500u);
    matrix.release();
    EXPECT_EQ(gov.usage(), 100u);
  }
  // Destructors release whatever was still charged.
  EXPECT_EQ(gov.usage(), 0u);
  EXPECT_EQ(gov.peak_usage(), 1500u);
  gov.reset();
  EXPECT_EQ(gov.peak_usage(), 0u);
}

TEST(Governor, LeaseMoveTransfersTheCharge) {
  MemoryGovernor gov;
  MemoryLease a(Subsystem::kCheckpoint, gov);
  a.set(64);
  MemoryLease b = std::move(a);
  EXPECT_EQ(b.charged(), 64u);
  EXPECT_EQ(gov.usage(), 64u);
  b.release();
  EXPECT_EQ(gov.usage(), 0u);
}

TEST(Governor, AdmissionPolicy) {
  MemoryGovernor gov;
  // Ungoverned: everything proceeds regardless of the ledger.
  MemoryLease lease(Subsystem::kMatrix, gov);
  lease.set(10'000);
  EXPECT_EQ(gov.admit(1'000'000), Admission::kProceed);

  gov.set_limit(1000);
  ASSERT_TRUE(gov.enabled());
  lease.set(300);
  // Fits comfortably: below the half-limit watermark, projection fits.
  EXPECT_EQ(gov.admit(100), Admission::kProceed);
  // Projected transient would cross the limit -> spill.
  EXPECT_EQ(gov.admit(800), Admission::kSpill);
  // Past the half-limit watermark, spill even with no projection.
  lease.set(600);
  EXPECT_EQ(gov.admit(0), Admission::kSpill);
  // Resident alone at/over the limit -> reject.
  lease.set(1000);
  EXPECT_EQ(gov.admit(0), Admission::kReject);
}

TEST(Governor, EnforceResidentThrowsTypedRetryableError) {
  MemoryGovernor gov;
  gov.set_limit(100);
  MemoryLease lease(Subsystem::kMatrix, gov);
  lease.set(101);
  try {
    gov.enforce_resident("unit test");
    FAIL() << "expected ResourceError";
  } catch (const ResourceError& e) {
    EXPECT_EQ(e.requested_bytes, 101u);
    EXPECT_EQ(e.limit_bytes, 100u);
    EXPECT_NE(std::string(e.what()).find("unit test"), std::string::npos);
  }
  lease.set(100);  // at the limit is still admissible residency
  EXPECT_NO_THROW(gov.enforce_resident("unit test"));
}

// ---------------------------------------------------------------------------
// SpillFile framing + CRC.

TEST(Spill, Crc32MatchesIeeeTestVector) {
  const char* s = "123456789";
  // lint:allow(reinterpret-cast) byte view of a string literal
  EXPECT_EQ(resource::crc32_bytes(reinterpret_cast<const std::uint8_t*>(s), 9),
            0xCBF43926u);
}

TEST(Spill, FileRoundTripCreditsGovernorAndUnlinks) {
  MemoryGovernor gov;
  std::string path;
  const std::vector<std::vector<std::uint8_t>> blocks = {
      {1, 2, 3}, {}, {0xFF, 0x00, 0xAB, 0xCD, 9}};
  {
    resource::SpillFile spill(::testing::TempDir(), &gov);
    EXPECT_TRUE(spill.path().empty());  // lazily created
    for (const auto& b : blocks) spill.append_block(b);
    path = spill.path();
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(spill.block_count(), 3u);
    EXPECT_EQ(spill.bytes_spilled(), 8u);
    EXPECT_EQ(gov.spill_bytes(), 8u);
    EXPECT_EQ(gov.spill_blocks(), 3u);

    // Streaming back is repeatable and order-preserving.
    for (int pass = 0; pass < 2; ++pass) {
      std::vector<std::vector<std::uint8_t>> read;
      spill.for_each_block(
          [&](std::vector<std::uint8_t>&& body) { read.push_back(body); });
      EXPECT_EQ(read, blocks);
    }
  }
  // Spill data never outlives the SpillFile.
  EXPECT_FALSE(std::ifstream(path).good());
}

TEST(Spill, CorruptedBlockIsDetectedNotDecoded) {
  MemoryGovernor gov;
  resource::SpillFile spill(::testing::TempDir(), &gov);
  spill.append_block({10, 20, 30, 40, 50, 60});
  // Flip one body byte behind the SpillFile's back (magic is 8 bytes, then
  // the u64 size header, then the body).
  {
    std::fstream f(spill.path(),
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(8 + 8 + 2);
    char byte = 0x7F;
    f.write(&byte, 1);
  }
  EXPECT_THROW(spill.for_each_block([](std::vector<std::uint8_t>&&) {}),
               CorruptPayloadError);
}

// ---------------------------------------------------------------------------
// Column codec.

using Col = FluxColumn<CheckedI64, Bitset64>;

TEST(Spill, ColumnCodecRoundTripIsValueExact) {
  std::vector<Col> columns;
  columns.push_back(Col::from_values(
      {CheckedI64(1), CheckedI64(0), CheckedI64(-7), CheckedI64(42)}));
  columns.push_back(Col::from_values(
      {CheckedI64(0), CheckedI64(123456789), CheckedI64(-1), CheckedI64(0)}));
  auto body = encode_spill_block(columns);
  std::vector<Col> decoded;
  decode_spill_block(body, decoded);
  ASSERT_EQ(decoded.size(), columns.size());
  for (std::size_t i = 0; i < columns.size(); ++i) {
    EXPECT_EQ(decoded[i].values, columns[i].values);
    EXPECT_EQ(decoded[i].support, columns[i].support);  // recomputed
  }
  // Damage surfaces as a parse error, not garbage columns.
  body.push_back(0);
  std::vector<Col> trailing;
  EXPECT_THROW(decode_spill_block(body, trailing), ParseError);
}

TEST(Spill, BigIntCodecRoundTrip) {
  using BigCol = FluxColumn<BigInt, Bitset64>;
  std::vector<BigCol> columns;
  columns.push_back(BigCol::from_values(
      {BigInt::from_string("-123456789012345678901234567890"), BigInt(0),
       BigInt(7)}));
  auto body = encode_spill_block(columns);
  std::vector<BigCol> decoded;
  decode_spill_block(body, decoded);
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_EQ(decoded[0].values, columns[0].values);
}

// ---------------------------------------------------------------------------
// Out-of-core solves.

TEST(Spill, SpillAlwaysSolveIsBitIdenticalToInMemory) {
  Network net = models::ecoli_core();
  auto baseline = compute_efms(net);
  ASSERT_GT(baseline.num_modes(), 0u);
  EXPECT_EQ(baseline.spill_blocks, 0u);

  EfmOptions options;
  options.spill.always = true;
  options.spill.directory = ::testing::TempDir();
  auto spilled = compute_efms(net, options);

  EXPECT_EQ(spilled.modes, baseline.modes);
  EXPECT_GT(spilled.spill_blocks, 0u);
  EXPECT_GT(spilled.spill_bytes, 0u);
}

TEST(Spill, GovernedSolveCompletesSpillsAndMatches) {
  // Self-calibrating: measure the ungoverned ledger peak (matrix plus
  // candidate transients), then rerun with a budget just above the matrix
  // floor — the matrix cannot spill — and strictly below the unconstrained
  // peak, so candidate generation is forced out-of-core.  The governed run
  // must finish and match bit-for-bit.
  Network net = models::ecoli_core();
  auto baseline = compute_efms(net);
  ASSERT_GT(baseline.mem_peak_bytes, baseline.stats.peak_matrix_bytes)
      << "candidate transients should push the peak above the matrix floor";

  EfmOptions governed;
  governed.mem_limit_bytes = baseline.stats.peak_matrix_bytes + 4096;
  ASSERT_LT(governed.mem_limit_bytes, baseline.mem_peak_bytes);
  governed.spill.directory = ::testing::TempDir();
  auto result = compute_efms(net, governed);

  EXPECT_EQ(result.modes, baseline.modes);
  EXPECT_GT(result.spill_blocks, 0u) << "limit never triggered the watermark";
  EXPECT_EQ(result.mem_limit_bytes, governed.mem_limit_bytes);

  // The run report carries the same resource ledger.
  auto report = make_solve_report(result, governed, "ecoli");
  EXPECT_EQ(report.mem_limit_bytes, governed.mem_limit_bytes);
  EXPECT_EQ(report.spill_blocks, result.spill_blocks);
  EXPECT_GT(report.rss_bytes, 0u);
}

TEST(Spill, GovernedYeastClassSolveMatches) {
  // The acceptance-criterion configuration: a yeast1-class network (yeast
  // Network I with the knockouts the hybrid tests use) governed below its
  // unconstrained ledger peak completes, records spill traffic, and matches
  // the unconstrained EFM set exactly.
  Network net = models::yeast_network_1();
  std::vector<ReactionId> trim;
  for (const char* name : {"R15", "R33", "R41", "R46", "R92r", "R98", "R100",
                           "R77", "R101", "R32r", "R30r"}) {
    if (auto id = net.find_reaction(name)) trim.push_back(*id);
  }
  net = net.without_reactions(trim);

  auto baseline = compute_efms(net);
  ASSERT_GT(baseline.num_modes(), 0u);
  ASSERT_GT(baseline.mem_peak_bytes, baseline.stats.peak_matrix_bytes);

  EfmOptions governed;
  governed.mem_limit_bytes = baseline.stats.peak_matrix_bytes + 4096;
  ASSERT_LT(governed.mem_limit_bytes, baseline.mem_peak_bytes);
  governed.spill.directory = ::testing::TempDir();
  auto result = compute_efms(net, governed);

  EXPECT_EQ(result.modes, baseline.modes);
  EXPECT_GT(result.spill_blocks, 0u);
  EXPECT_GT(result.spill_bytes, 0u);
}

TEST(Spill, ImpossibleLimitIsATypedResourceError) {
  // A limit below the matrix floor cannot be met by spilling; the serial
  // driver (no retry ladder) must fail with the typed, retryable error that
  // names the un-spillable matrix.
  Network net = models::toy_network();
  EfmOptions options;
  options.mem_limit_bytes = 1;
  try {
    compute_efms(net, options);
    FAIL() << "expected ResourceError";
  } catch (const ResourceError& e) {
    EXPECT_EQ(e.limit_bytes, 1u);
    EXPECT_NE(std::string(e.what()).find("cannot spill"), std::string::npos);
  }
}

TEST(Retry, ResourceErrorDegradesThroughTheLadderToSerial) {
  // Algorithm 3 with an impossible budget: every subset's first attempt is
  // rejected by the governor; the retry ladder's ungoverned serial rung
  // must still complete the run, bit-identically.
  Network net = models::toy_network();
  EfmOptions plain;
  plain.algorithm = Algorithm::kCombined;
  plain.num_ranks = 2;
  plain.partition_reactions = {"r6r", "r8r"};
  auto baseline = compute_efms(net, plain);

  EfmOptions governed = plain;
  governed.mem_limit_bytes = 1;
  governed.retry.max_attempts = 2;
  governed.retry.serial_final_attempt = true;
  auto result = compute_efms(net, governed);

  EXPECT_EQ(result.modes, baseline.modes);
  EXPECT_GE(result.total_retries, 1u);
  for (const auto& subset : result.subsets)
    EXPECT_EQ(subset.attempts, 2u) << subset.label;
}

// ---------------------------------------------------------------------------
// Watchdog.

resource::Watchdog::Options fast_poll() {
  resource::Watchdog::Options options;
  options.poll_interval_seconds = 0.001;
  return options;
}

template <typename Pred>
void wait_until(const Pred& pred, double timeout_seconds = 5.0) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_seconds);
  while (!pred() && std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_TRUE(pred()) << "condition not reached within timeout";
}

TEST(Watchdog, SoftDeadlineNamesTheStraggler) {
  resource::Watchdog dog(fast_poll());
  std::atomic<std::uint64_t> fast{0};
  std::atomic<std::uint64_t> slow{3};
  std::mutex mu;
  std::string diagnosis;
  std::atomic<int> soft_fired{0};
  std::atomic<int> hard_fired{0};
  {
    auto token = dog.arm(
        "soft test", {.soft_seconds = 0.02},
        [&](const std::string& d) {
          std::lock_guard<std::mutex> lock(mu);
          diagnosis = d;
          soft_fired.fetch_add(1);
        },
        [&](const std::string&) { hard_fired.fetch_add(1); },
        {{"rank fast", &fast}, {"rank slow", &slow}});
    // "rank slow" keeps advancing while "rank fast" sits at the global
    // minimum — the diagnosis must name the one that is behind.
    for (int i = 0; i < 40 && soft_fired.load() == 0; ++i) {
      slow.fetch_add(10);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    wait_until([&] { return soft_fired.load() > 0; });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(soft_fired.load(), 1) << "soft deadline must fire exactly once";
  EXPECT_EQ(hard_fired.load(), 0);
  std::lock_guard<std::mutex> lock(mu);
  EXPECT_NE(diagnosis.find("soft deadline"), std::string::npos) << diagnosis;
  EXPECT_NE(diagnosis.find("rank fast"), std::string::npos)
      << "diagnosis must name the counter at the global minimum: "
      << diagnosis;
}

TEST(Watchdog, HardDeadlineFiresOnceAndDisarmIsSafe) {
  resource::Watchdog dog(fast_poll());
  std::atomic<int> hard_fired{0};
  {
    auto token = dog.arm(
        "hard test", {.hard_seconds = 0.02}, {},
        [&](const std::string& d) {
          EXPECT_NE(d.find("hard deadline"), std::string::npos);
          hard_fired.fetch_add(1);
        });
    wait_until([&] { return hard_fired.load() > 0; });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }  // disarm blocks until any in-flight callback returned
  EXPECT_EQ(hard_fired.load(), 1);
}

TEST(Watchdog, StallFiresOnlyWhenCountersFreeze) {
  resource::Watchdog dog(fast_poll());
  std::atomic<std::uint64_t> counter{0};
  std::atomic<int> wedged{0};
  auto token = dog.arm(
      "stall test", {.stall_seconds = 0.03}, {},
      [&](const std::string& d) {
        EXPECT_NE(d.find("wedged"), std::string::npos);
        wedged.fetch_add(1);
      },
      {{"rank 0", &counter}});
  // While progress advances, no stall fires.
  for (int i = 0; i < 25; ++i) {
    counter.fetch_add(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(wedged.load(), 0);
  // Freeze the counter: the wedge detector must trip.
  wait_until([&] { return wedged.load() > 0; });
  token.disarm();
  EXPECT_EQ(wedged.load(), 1);
}

TEST(Watchdog, DisarmBeforeDeadlineSuppressesCallbacks) {
  resource::Watchdog dog(fast_poll());
  std::atomic<int> fired{0};
  {
    auto token = dog.arm("early disarm", {.hard_seconds = 0.2}, {},
                         [&](const std::string&) { fired.fetch_add(1); });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(fired.load(), 0);
}

TEST(Watchdog, MpsimHardDeadlineSurfacesAsDeadlineExceeded) {
  // A straggling rank pushes the world past its hard deadline; the typed
  // error the retry ladder classifies as re-queue-with-split must surface
  // (not the ranks' secondary AbortedErrors).
  Network net = models::ecoli_core();
  EfmOptions options;
  options.algorithm = Algorithm::kCombinatorialParallel;
  options.num_ranks = 2;
  options.subset_deadlines.hard_seconds = 0.05;
  options.fault_plan = std::make_shared<mpsim::FaultPlan>();
  options.fault_plan->straggle(1, /*delay_us=*/20'000);
  EXPECT_THROW(compute_efms(net, options), DeadlineExceededError);
}

// ---------------------------------------------------------------------------
// Cooperative shutdown.

TEST(Shutdown, RequestCancelsTheSolveWithoutRetry) {
  resource::reset_shutdown();
  resource::request_shutdown();
  Network net = models::toy_network();
  EfmOptions options;
  options.algorithm = Algorithm::kCombined;
  options.num_ranks = 2;
  options.partition_reactions = {"r6r", "r8r"};
  options.retry.max_attempts = 5;  // cancellation must NOT be retried
  try {
    compute_efms(net, options);
    resource::reset_shutdown();
    FAIL() << "expected CancelledError";
  } catch (const CancelledError& e) {
    resource::reset_shutdown();
    EXPECT_NE(std::string(e.what()).find("--resume"), std::string::npos);
  }
  // The flag is clear again: the next solve runs normally.
  auto result = compute_efms(net, options);
  EXPECT_GT(result.num_modes(), 0u);
  EXPECT_EQ(result.total_retries, 0u);
}

}  // namespace
}  // namespace elmo
