# Empty compiler generated dependencies file for elmo_mpsim.
# This may be replaced when dependencies are built.
