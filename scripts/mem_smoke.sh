#!/usr/bin/env bash
# Memory-capped spill smoke: prove the resource governor's response to
# pressure end-to-end through the real CLI.
#
#   1. Solve ecoli unconstrained and read two numbers from report.json: the
#      ledger peak (resource.mem_peak_bytes) and the un-spillable matrix
#      floor (peak_matrix_bytes).
#   2. Re-solve with --mem-limit barely above the floor — genuinely below
#      the unconstrained peak — under a ulimit -v address-space backstop.
#   3. Require: clean exit, at least one spill block recorded in
#      report.json, no ledger-peak inflation over the unconstrained run,
#      and a bit-identical EFM CSV.
#
# The merge pass holds matrix + surviving candidates resident (the ledger
# floor of the in-memory Sort&RemoveDuplicates), so the governed ledger
# peak is checked against the unconstrained peak, not the limit itself; the
# limit governs the generation-phase transient and the ulimit backstops the
# process.  See DESIGN.md on resource governance.
#
# Usage: scripts/mem_smoke.sh [path/to/elmo_cli]
set -euo pipefail
cd "$(dirname "$0")/.."

CLI="${1:-./build/examples/elmo_cli}"
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "${SMOKE_DIR}"' EXIT

run() { echo "+ $*" >&2; "$@"; }

run "${CLI}" --builtin ecoli \
    --report "${SMOKE_DIR}/mem_base.json" -o "${SMOKE_DIR}/mem_base.csv"
MEM_FLOOR="$(python3 -c 'import json,sys; print(json.load(open(sys.argv[1]))["peak_matrix_bytes"])' \
    "${SMOKE_DIR}/mem_base.json")"
MEM_PEAK="$(python3 -c 'import json,sys; print(json.load(open(sys.argv[1]))["resource"]["mem_peak_bytes"])' \
    "${SMOKE_DIR}/mem_base.json")"
MEM_LIMIT="$((MEM_FLOOR + 4096))"
if [[ "${MEM_LIMIT}" -ge "${MEM_PEAK}" ]]; then
  echo "mem smoke: limit ${MEM_LIMIT} B does not undercut the unconstrained" \
       "peak ${MEM_PEAK} B — candidate transients are no longer charged?" >&2
  exit 1
fi

# Generous backstop: a governance regression dies on ulimit instead of
# eating the machine.
(ulimit -v 4194304 && \
 run "${CLI}" --builtin ecoli --mem-limit "${MEM_LIMIT}" \
     --spill-dir "${SMOKE_DIR}" \
     --report "${SMOKE_DIR}/mem_gov.json" -o "${SMOKE_DIR}/mem_gov.csv")

python3 - "${SMOKE_DIR}/mem_gov.json" "${MEM_PEAK}" "${MEM_LIMIT}" <<'PY'
import json, sys
report = json.load(open(sys.argv[1]))
unconstrained_peak, limit = int(sys.argv[2]), int(sys.argv[3])
resource = report["resource"]
assert resource["spill_blocks"] >= 1, "governed run never spilled"
assert resource["mem_peak_bytes"] <= unconstrained_peak, (
    f"governed ledger peak {resource['mem_peak_bytes']} B exceeds the"
    f" unconstrained run's {unconstrained_peak} B")
print(f"   spilled {resource['spill_blocks']} blocks"
      f" ({resource['spill_bytes']} B), ledger peak"
      f" {resource['mem_peak_bytes']} B vs unconstrained"
      f" {unconstrained_peak} B under --mem-limit {limit} B")
PY

run cmp "${SMOKE_DIR}/mem_base.csv" "${SMOKE_DIR}/mem_gov.csv"
echo "mem smoke passed"
