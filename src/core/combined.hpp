// Algorithm 3: the combined parallel Nullspace Algorithm — the paper's
// contribution.
//
// The EFM set is partitioned across a subset of qsub (reversible, trailing)
// reactions into 2^qsub disjoint subsets keyed by the zero/nonzero flux
// pattern = the binary representation of the subset id.  For each subset:
//
//   * zero-flux reactions are REMOVED from the stoichiometry (their columns
//     vanish; paper Algorithm 3 lines 5-9),
//   * nonzero-flux reactions are left UNPROCESSED (exclude_rows — the
//     paper's reorder-to-bottom + early stop, lines 10-14),
//   * Algorithm 2 runs on the subproblem,
//   * Proposition 1 keeps exactly the columns with nonzero values in every
//     unprocessed partition row (lines 15-17),
//   * the zero-flux rows are re-inserted as zeros (lines 18-21).
//
// The union over all subsets is the complete EFM set.  When a subset
// exceeds the per-rank memory budget the optional adaptive re-split adds
// one more partition reaction to just that subset and recurses — this is
// precisely what the paper did on Network II, where subsets 1 and 3 of the
// {R54r, R90r, R60r} split had to be re-split by R22r (Table IV).
// Fault tolerance: each subset is an independent, restartable unit of
// work.  A RetryPolicy re-queues subsets that fail transiently (injected
// rank crashes, corrupted payloads) or persistently (budget exhausted
// beyond max_extra_splits), optionally shrinking the world or finishing
// serially; completed subsets can be appended to a checkpoint file and a
// later run with resume_from skips them, bit-identically.
#pragma once

#include <deque>
#include <map>
#include <string>

#include "check/check.hpp"
#include "core/checkpoint.hpp"
#include "core/combinatorial_parallel.hpp"
#include "core/retry.hpp"
#include "core/subset_select.hpp"
#include "mpsim/communicator.hpp"
#include "mpsim/fault.hpp"
#include "nullspace/efm.hpp"
#include "nullspace/problem.hpp"
#include "nullspace/solver.hpp"
#include "nullspace/stats.hpp"
#include "obs/obs.hpp"
#include "support/timer.hpp"

namespace elmo {

struct CombinedOptions {
  /// Reduced-problem reaction names to partition over, most significant
  /// first (subset id bit k corresponds to partition_reactions[k] counted
  /// from the least significant bit).  All must be reversible.  When empty,
  /// `qsub` trailing reversible reactions are selected automatically.
  std::vector<std::string> partition_reactions;
  /// Used only when partition_reactions is empty.
  std::size_t qsub = 2;

  int num_ranks = 4;
  /// Shared-memory workers per rank (see ParallelOptions::threads_per_rank).
  int threads_per_rank = 1;
  SolverOptions solver;
  std::size_t memory_budget_per_rank = 0;

  /// On MemoryBudgetError, split the failing subset further by appending
  /// the next unused trailing reversible reaction, up to this many extra
  /// reactions (0 disables re-splitting and the error propagates).
  std::size_t max_extra_splits = 0;

  /// Per-subset retry behaviour for transient failures (rank crashes,
  /// corrupted payloads) and for budget exhaustion past max_extra_splits.
  RetryPolicy retry;
  /// Deterministic fault injection shared by every world this run spawns.
  std::shared_ptr<mpsim::FaultPlan> fault_plan;
  /// When non-empty, append a record per completed subset to this file.
  std::string checkpoint_path;
  /// When non-empty, load this checkpoint and skip its completed subsets.
  std::string resume_from;
};

/// One divide-and-conquer subtask: (reduced reaction index, must-be-nonzero)
/// per partition reaction.
struct SubsetSpec {
  std::vector<std::pair<std::size_t, bool>> pattern;

  /// Render as the paper does: overlined (zero-flux) names are suffixed
  /// with '0', nonzero ones with '+', e.g. "R89r:0 R74r:+".
  [[nodiscard]] std::string label(
      const std::vector<std::string>& names) const {
    std::string out;
    for (const auto& [row, nonzero] : pattern) {
      if (!out.empty()) out += ' ';
      out += names[row];
      out += nonzero ? ":+" : ":0";
    }
    return out;
  }
};

struct SubsetReport {
  SubsetSpec spec;
  std::string label;
  std::size_t num_efms = 0;
  SolveStats stats;
  mpsim::RunReport ranks;
  double seconds = 0.0;
  /// Number of extra partition reactions this subset needed (adaptive).
  std::size_t extra_splits = 0;
  /// How many attempts the subset took (1 = first try succeeded).
  std::size_t attempts = 1;
  /// Simulated backoff charged before the successful attempt.
  double backoff_seconds = 0.0;
  /// True if the subset was recovered from a checkpoint, not computed.
  bool resumed = false;
  /// Each simulated rank's own solver ledger (empty for resumed subsets).
  std::vector<SolveStats> rank_stats;
};

template <typename Scalar, typename Support>
struct CombinedResult {
  /// Union of all subset EFM sets, in the reduced reaction space.
  std::vector<FluxColumn<Scalar, Support>> columns;
  std::vector<SubsetReport> subsets;
  SolveStats total;
  double seconds = 0.0;
  /// Failed subset attempts that were re-queued under the retry policy.
  std::size_t total_retries = 0;
  /// Sum of the exponential-backoff delays, in simulated seconds.  Nothing
  /// actually sleeps; the ledger makes retry cost visible in reports.
  double simulated_backoff_seconds = 0.0;
  /// Timeline of notable moments (retries, re-splits, checkpoints,
  /// resumes), timestamped relative to the start of solve_combined.
  std::vector<obs::TimelineEvent> events;
};

namespace detail {

/// Build the subproblem for one subset: remove zero-flux columns, record
/// the sub-index of every nonzero-flux row.
template <typename Scalar>
struct Subproblem {
  EfmProblem<Scalar> problem;
  std::vector<std::size_t> keep;          // sub col -> original reduced col
  std::vector<std::size_t> nzf_sub_rows;  // nonzero rows, sub numbering
};

template <typename Scalar>
Subproblem<Scalar> make_subproblem(const EfmProblem<Scalar>& problem,
                                   const SubsetSpec& spec) {
  std::vector<bool> removed(problem.num_reactions(), false);
  std::vector<bool> nonzero(problem.num_reactions(), false);
  for (const auto& [row, nz] : spec.pattern) {
    ELMO_REQUIRE(problem.reversible[row],
                 "partition reaction " + problem.reaction_names[row] +
                     " must be reversible (Proposition 1 requires the "
                     "unprocessed rows to be sign-free)");
    if (nz)
      nonzero[row] = true;
    else
      removed[row] = true;
  }
  Subproblem<Scalar> sub;
  for (std::size_t j = 0; j < problem.num_reactions(); ++j) {
    if (removed[j]) continue;
    if (nonzero[j]) sub.nzf_sub_rows.push_back(sub.keep.size());
    sub.keep.push_back(j);
  }
  sub.problem.stoichiometry = problem.stoichiometry.select_columns(sub.keep);
  for (std::size_t j : sub.keep) {
    sub.problem.reversible.push_back(problem.reversible[j]);
    sub.problem.reaction_names.push_back(problem.reaction_names[j]);
  }
  return sub;
}

}  // namespace detail

template <typename Scalar, typename Support>
CombinedResult<Scalar, Support> solve_combined(
    const EfmProblem<Scalar>& problem, const CombinedOptions& options) {
  Stopwatch total_watch;
  CombinedResult<Scalar, Support> result;

  // Timeline + instant-event recorder: one line in the run report, one
  // instant in the trace (when tracing is on), one counter bump.
  auto note_event = [&](const char* kind, std::string detail,
                        const obs::Counter& counter) {
    counter.add(1);
    obs::trace_instant(kind, "combined", detail);
    result.events.push_back(
        obs::TimelineEvent{total_watch.seconds(), kind, std::move(detail)});
  };
  auto& registry = obs::Registry::global();
  static const obs::Counter retries_counter =
      registry.counter("combined.retries");
  static const obs::Counter resplits_counter =
      registry.counter("combined.resplits");
  static const obs::Counter checkpoints_counter =
      registry.counter("combined.checkpoints");
  static const obs::Counter resumed_counter =
      registry.counter("combined.subsets_resumed");
  static const obs::Counter subsets_counter =
      registry.counter("combined.subsets_solved");

  // Resolve the partition reactions.
  std::vector<std::size_t> partition_rows;
  if (options.partition_reactions.empty()) {
    partition_rows = select_partition_rows(problem, options.solver.ordering,
                                           options.qsub);
  } else {
    for (const auto& name : options.partition_reactions) {
      std::size_t row = problem.num_reactions();
      for (std::size_t j = 0; j < problem.num_reactions(); ++j) {
        if (problem.reaction_names[j] == name) {
          row = j;
          break;
        }
      }
      ELMO_REQUIRE(row < problem.num_reactions(),
                   "partition reaction not in reduced problem: " + name);
      partition_rows.push_back(row);
    }
  }
  const std::size_t qsub = partition_rows.size();
  ELMO_REQUIRE(qsub > 0 && qsub < 63, "unreasonable partition subset size");

  // Trailing reversible reactions available for adaptive re-splitting.
  // Best effort: a network with few reversible reactions simply yields
  // fewer spares, and budget errors past the available depth fall through
  // to the retry ladder instead of failing at setup.
  std::vector<std::size_t> spares;
  if (options.max_extra_splits > 0) {
    auto trailing = select_partition_rows_up_to(
        problem, options.solver.ordering, qsub + options.max_extra_splits);
    for (std::size_t row : trailing) {
      bool used = false;
      for (std::size_t p : partition_rows) used = used || p == row;
      if (!used) spares.push_back(row);
    }
  }

  // Subsets already completed by an earlier, interrupted run.  Keyed by
  // the full pattern (including adaptive extra splits); last record wins
  // so a file holding a retried subset twice resumes from the newest.
  std::map<std::vector<std::pair<std::uint64_t, bool>>, CheckpointRecord>
      completed;
  if (!options.resume_from.empty()) {
    for (auto& record : load_checkpoint(options.resume_from))
      completed[record.pattern] = std::move(record);
  }

  // Work queue of subtasks; adaptive re-splitting pushes refined subsets,
  // the retry policy re-queues failed ones with a higher attempt count.
  struct Task {
    SubsetSpec spec;
    std::size_t attempt = 1;
    double backoff = 0.0;
  };
  std::deque<Task> queue;
  for (std::uint64_t id = 0; id < (1ULL << qsub); ++id) {
    SubsetSpec spec;
    for (std::size_t k = 0; k < qsub; ++k)
      spec.pattern.emplace_back(partition_rows[k], (id >> k) & 1);
    queue.push_back(Task{std::move(spec), 1, 0.0});
  }

  const std::size_t max_attempts =
      options.retry.enabled() ? static_cast<std::size_t>(
                                    options.retry.max_attempts)
                              : 1;

  while (!queue.empty()) {
    Task task = std::move(queue.front());
    queue.pop_front();
    const SubsetSpec& spec = task.spec;

    std::vector<std::pair<std::uint64_t, bool>> key;
    for (const auto& [row, nz] : spec.pattern) key.emplace_back(row, nz);
    if (auto it = completed.find(key); it != completed.end()) {
      // Recovered from checkpoint: re-materialise the stored BigInt modes
      // in this run's scalar type instead of recomputing the subset.
      const CheckpointRecord& record = it->second;
      SubsetReport report;
      report.spec = spec;
      report.label = spec.label(problem.reaction_names);
      report.num_efms = record.modes.size();
      report.stats.total_pairs_probed = record.candidate_pairs;
      report.seconds = record.seconds;
      report.extra_splits = record.extra_splits;
      report.attempts = static_cast<std::size_t>(record.attempts);
      report.resumed = true;
      note_event("resume", report.label, resumed_counter);
      std::vector<FluxColumn<Scalar, Support>> restored;
      for (const auto& mode : record.modes) {
        std::vector<Scalar> values;
        values.reserve(mode.size());
        for (const auto& v : mode)
          values.push_back(scalar_from_bigint<Scalar>(v));
        restored.push_back(
            FluxColumn<Scalar, Support>::from_values(std::move(values)));
      }
      if (options.solver.audit) {
        // Checkpointed modes must still honour their subset's zero/nonzero
        // pattern — guards against stale or corrupted checkpoint files.
        check::InvariantAuditor{}.check_proposition1(
            restored, spec.pattern, "resumed subset " + report.label);
      }
      for (auto& column : restored)
        result.columns.push_back(std::move(column));
      result.total.merge(report.stats);
      result.subsets.push_back(std::move(report));
      continue;
    }

    // One span per subset ATTEMPT (failed attempts get their own spans);
    // the label identifies the subset, Perfetto shows the retry pattern.
    obs::TraceSpan subset_span(
        "subset", "combined",
        obs::trace() != nullptr ? spec.label(problem.reaction_names)
                                : std::string());
    Stopwatch subset_watch;
    auto sub = detail::make_subproblem<Scalar>(problem, spec);
    ParallelOptions parallel = {};
    parallel.num_ranks = options.num_ranks;
    parallel.threads_per_rank = options.threads_per_rank;
    parallel.solver = options.solver;
    parallel.solver.exclude_rows = sub.nzf_sub_rows;
    parallel.memory_budget_per_rank = options.memory_budget_per_rank;
    parallel.fault_plan = options.fault_plan;

    // Attempt shaping: optionally shrink the world on every retry, and run
    // the last permitted attempt serially — one rank, no budget, no fault
    // plan — so the ladder always has a clean exit.
    const bool serial_attempt = options.retry.serial_final_attempt &&
                                task.attempt >= max_attempts &&
                                max_attempts > 1;
    if (options.retry.halve_ranks_on_retry && task.attempt > 1) {
      parallel.num_ranks = std::max(
          1, options.num_ranks >> static_cast<int>(task.attempt - 1));
    }
    if (serial_attempt) {
      parallel.num_ranks = 1;
      parallel.threads_per_rank = 1;
      parallel.memory_budget_per_rank = 0;
      parallel.fault_plan = nullptr;
    }

    ParallelSolveResult<Scalar, Support> solved;
    try {
      solved =
          solve_combinatorial_parallel<Scalar, Support>(sub.problem, parallel);
    } catch (const MemoryBudgetError& e) {
      const std::size_t depth = spec.pattern.size() - qsub;
      if (depth < options.max_extra_splits && depth < spares.size()) {
        // Re-split this subset on the next spare reaction (paper Table IV:
        // the oversized three-reaction subsets gained R22r as a fourth).
        const std::size_t extra = spares[depth];
        note_event("resplit",
                   spec.label(problem.reaction_names) + " + " +
                       problem.reaction_names[extra],
                   resplits_counter);
        for (bool nz : {false, true}) {
          SubsetSpec refined = spec;
          refined.pattern.emplace_back(extra, nz);
          queue.push_front(Task{std::move(refined), 1, task.backoff});
        }
        continue;
      }
      // No re-split headroom left: hand the subset to the retry policy
      // (the serial final attempt ignores the budget and will finish it).
      if (task.attempt >= max_attempts) {
        if (max_attempts > 1)
          throw RetryExhaustedError(spec.label(problem.reaction_names),
                                    static_cast<int>(task.attempt), e.what());
        throw;
      }
      ++result.total_retries;
      note_event("retry",
                 spec.label(problem.reaction_names) +
                     ": memory budget exceeded (attempt " +
                     std::to_string(task.attempt) + ")",
                 retries_counter);
      result.simulated_backoff_seconds +=
          options.retry.backoff_seconds *
          static_cast<double>(1ULL << (task.attempt - 1));
      queue.push_back(Task{spec, task.attempt + 1,
                           task.backoff + options.retry.backoff_seconds *
                               static_cast<double>(1ULL << (task.attempt - 1))});
      continue;
    } catch (const std::exception& e) {
      // Transient failures — an injected crash, a world abort, a corrupted
      // payload — are retryable; everything else is a real bug and
      // propagates.
      const bool retryable =
          dynamic_cast<const mpsim::AbortedError*>(&e) != nullptr ||
          dynamic_cast<const mpsim::InjectedFaultError*>(&e) != nullptr ||
          dynamic_cast<const CorruptPayloadError*>(&e) != nullptr;
      if (!retryable) throw;
      if (task.attempt >= max_attempts) {
        if (max_attempts > 1)
          throw RetryExhaustedError(spec.label(problem.reaction_names),
                                    static_cast<int>(task.attempt), e.what());
        throw;
      }
      ++result.total_retries;
      note_event("retry",
                 spec.label(problem.reaction_names) + ": " + e.what() +
                     " (attempt " + std::to_string(task.attempt) + ")",
                 retries_counter);
      const double delay =
          options.retry.backoff_seconds *
          static_cast<double>(1ULL << (task.attempt - 1));
      result.simulated_backoff_seconds += delay;
      queue.push_back(Task{spec, task.attempt + 1, task.backoff + delay});
      continue;
    }

    // Proposition 1: keep columns with nonzero flux in EVERY unprocessed
    // partition row; re-embed into the full reduced space with zeros in
    // the removed columns.
    SubsetReport report;
    report.spec = spec;
    report.label = spec.label(problem.reaction_names);
    report.stats = solved.stats;
    report.ranks = std::move(solved.ranks);
    report.rank_stats = std::move(solved.per_rank);
    report.extra_splits = spec.pattern.size() - qsub;
    report.attempts = task.attempt;
    report.backoff_seconds = task.backoff;
    std::vector<FluxColumn<Scalar, Support>> subset_columns;
    for (auto& column : solved.columns) {
      bool keep = true;
      for (std::size_t sub_row : sub.nzf_sub_rows)
        keep = keep && !scalar_is_zero(column.values[sub_row]);
      if (!keep) continue;
      std::vector<Scalar> full(problem.num_reactions(),
                               scalar_from_i64<Scalar>(0));
      for (std::size_t j = 0; j < sub.keep.size(); ++j)
        full[sub.keep[j]] = std::move(column.values[j]);
      subset_columns.push_back(
          FluxColumn<Scalar, Support>::from_values(std::move(full)));
      ++report.num_efms;
    }
    report.seconds = subset_watch.seconds();

    if (options.solver.audit) {
      // Proposition 1, re-checked from first principles: every reported
      // column has nonzero flux on all nonzero-pattern rows and exact
      // zeros on all removed rows (the filter above and the re-embedding
      // must agree with the subset's defining pattern).
      check::InvariantAuditor{}.check_proposition1(
          subset_columns, spec.pattern, "subset " + report.label);
    }

    if (!options.checkpoint_path.empty()) {
      CheckpointRecord record;
      record.pattern = key;
      record.modes = columns_to_bigint(subset_columns);
      record.candidate_pairs = report.stats.total_pairs_probed;
      record.seconds = report.seconds;
      record.extra_splits = report.extra_splits;
      record.attempts = report.attempts;
      append_checkpoint_record(options.checkpoint_path, record);
      note_event("checkpoint", report.label, checkpoints_counter);
    }

    subsets_counter.add(1);
    for (auto& column : subset_columns)
      result.columns.push_back(std::move(column));
    result.total.merge(report.stats);
    result.subsets.push_back(std::move(report));
  }

  if (options.solver.audit) {
    // The executed subsets (including adaptive re-splits and resumed ones)
    // must tile the zero/nonzero pattern space: pairwise disjoint, exact
    // cover (Proposition 1's premise — every EFM lands in exactly one).
    std::vector<check::SubsetPattern> patterns;
    std::vector<std::string> labels;
    for (const auto& subset : result.subsets) {
      patterns.push_back(subset.spec.pattern);
      labels.push_back(subset.label);
    }
    check::check_subset_partition(patterns, labels);
    check::InvariantAuditor auditor;
    auditor.check_nullspace_product(problem.stoichiometry, result.columns,
                                    "solve_combined final");
    auditor.check_support_minimality(result.columns, "solve_combined final");
  }

  result.seconds = total_watch.seconds();
  return result;
}

}  // namespace elmo
