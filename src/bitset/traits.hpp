// Construction helpers that let the Nullspace Algorithm kernel be generic
// over the support-set representation (Bitset64 vs DynBitset).
#pragma once

#include "bitset/bitset64.hpp"
#include "bitset/dynbitset.hpp"
#include "support/assert.hpp"

namespace elmo {

/// Build an empty support set able to hold `bits` positions.
inline Bitset64 make_support(std::size_t bits, const Bitset64*) {
  ELMO_REQUIRE(bits <= Bitset64::capacity(),
               "network too large for Bitset64 supports");
  return Bitset64{};
}
inline DynBitset make_support(std::size_t bits, const DynBitset*) {
  return DynBitset(bits);
}

template <typename Support>
Support make_support(std::size_t bits) {
  return make_support(bits, static_cast<const Support*>(nullptr));
}

}  // namespace elmo
