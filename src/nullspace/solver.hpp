// Algorithm 1: the serial Nullspace Algorithm.
//
// Drives the iteration kernel over the processing order produced by
// compute_initial_basis.  Also the building block the parallel algorithms
// reuse: Algorithm 2 replaces the candidate-generation range with a
// per-rank slice, Algorithm 3 runs this with an exclusion set and the
// Proposition-1 filter.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "check/check.hpp"
#include "nullspace/initial_basis.hpp"
#include "nullspace/iteration.hpp"
#include "nullspace/modular_rank.hpp"
#include "nullspace/problem.hpp"
#include "nullspace/rank_test.hpp"
#include "nullspace/reversible_split.hpp"
#include "nullspace/sparse_rank.hpp"
#include "nullspace/spill.hpp"
#include "nullspace/stats.hpp"
#include "obs/obs.hpp"
#include "resource/governor.hpp"
#include "resource/shutdown.hpp"
#include "support/timer.hpp"

namespace elmo {

/// Which elementarity test the solver applies to candidates.
enum class ElementarityTest {
  kRank,           // algebraic rank (nullity == 1) test — the paper's choice
  kCombinatorial,  // support-subset test — the classical alternative
};

/// Arithmetic backend for the rank test (when ElementarityTest::kRank).
/// The backends form a ladder: sparse-modular (default) falls back to the
/// dense-modular elimination per candidate when its cost model says so;
/// both share the Z_p decision procedure whose rejects are Monte-Carlo;
/// exact Bareiss (with a per-candidate BigInt fallback on overflow) is the
/// fully exact reference the others are differentially tested against.
enum class RankTestBackend {
  /// Sparse, warm-started elimination over Z_(2^61-1) (see
  /// nullspace/sparse_rank.hpp): gathers only the nonzero rows of a
  /// candidate's support columns, amortizes a shared rref factorization
  /// across all candidates and an echelonized common block across each
  /// iteration.  Verdict-identical to kModular; the default.
  kSparse,
  /// Dense elimination over Z_(2^61-1): accepts certified exactly, rejects
  /// Monte-Carlo with error probability ~2^-45 per candidate (see
  /// nullspace/modular_rank.hpp).  Kept as the sparse engine's
  /// differential oracle and fallback target.
  kModular,
  /// Fraction-free Bareiss in the kernel scalar (BigInt fallback per
  /// candidate): fully exact, used as the reference in tests.
  kExact,
};

struct SolverOptions {
  OrderingOptions ordering;
  ElementarityTest test = ElementarityTest::kRank;
  RankTestBackend rank_backend = RankTestBackend::kSparse;
  /// Candidate refs held in memory at once (bounded-memory blocking of the
  /// candidate stream); the default caps transient usage around 100 MB.
  std::size_t block_ref_cap = std::size_t{1} << 21;
  /// Rows the caller wants left unprocessed (divide-and-conquer's
  /// nonzero-flux partition reactions), as reduced row indices.
  std::vector<std::size_t> exclude_rows;
  /// Optional per-iteration observer (progress logging, memory budget
  /// enforcement).  Called after each iteration with its stats.
  std::function<void(const IterationStats&)> on_iteration;
  /// Keep the per-iteration history on SolveStats (column-growth curve for
  /// run reports).  One IterationStats per constrained row.
  bool record_history = false;
  /// Re-verify the algorithm's algebraic invariants at runtime (S*R = 0
  /// after every iteration, exact rank-nullity of accepted candidates,
  /// support minimality of the final set).  Opt-in: audit mode costs extra
  /// passes per iteration.  See check/audit.hpp.
  bool audit = false;
  /// Out-of-core candidate policy under MemoryGovernor pressure (see
  /// nullspace/spill.hpp).  Inert unless enabled or the governor has a
  /// limit configured.
  SpillPolicy spill;
  /// Run even when the resident charge busts `--mem-limit` (the retry
  /// ladder's ungoverned final rung: completing slowly beats failing).
  bool ignore_mem_limit = false;
};

template <typename Scalar, typename Support>
struct SolveResult {
  std::vector<FluxColumn<Scalar, Support>> columns;
  SolveStats stats;
};

/// Approximate heap bytes of a column matrix (memory-scalability metric).
template <typename Scalar, typename Support>
std::size_t matrix_storage_bytes(
    const std::vector<FluxColumn<Scalar, Support>>& columns) {
  std::size_t bytes = columns.capacity() * sizeof(FluxColumn<Scalar, Support>);
  for (const auto& column : columns) bytes += column.storage_bytes();
  return bytes;
}

template <typename Scalar, typename Support>
SolveResult<Scalar, Support> solve_nullspace(const EfmProblem<Scalar>& problem,
                                             const SolverOptions& options = {}) {
  SolveResult<Scalar, Support> result;
  result.stats.keep_history = options.record_history;
  auto basis = compute_initial_basis<Scalar, Support>(
      problem, options.ordering, options.exclude_rows);
  result.stats.peak_columns = basis.columns.size();

  RankTester<Scalar> exact_tester(problem.stoichiometry);
  // The modular testers need the initial kernel basis (for their K-side
  // formulation); they only exist for exact scalars.
  std::optional<ModularRankTester<Scalar>> modular_tester;
  std::optional<SparseRankTester<Scalar>> sparse_tester;
  bool use_modular = false;
  bool use_sparse = false;
  if constexpr (!std::is_same_v<Scalar, double>) {
    if (options.test == ElementarityTest::kRank) {
      if (options.rank_backend == RankTestBackend::kSparse) {
        sparse_tester.emplace(problem.stoichiometry, basis.columns);
        use_sparse = true;
      } else if (options.rank_backend == RankTestBackend::kModular) {
        modular_tester.emplace(problem.stoichiometry, basis.columns);
        use_modular = true;
      }
    }
  }
  result.columns = std::move(basis.columns);

  // Resource governance: charge the live matrix against the process ledger
  // so the governor's flush decisions inside the chunked candidate driver
  // see the true resident floor (the matrix cannot spill; candidates can).
  auto& governor = resource::MemoryGovernor::global();
  resource::MemoryLease matrix_lease(resource::Subsystem::kMatrix);
  matrix_lease.set(matrix_storage_bytes(result.columns));

  for (std::size_t row : basis.processing_order) {
    resource::throw_if_shutdown_requested("nullspace iteration (row " +
                                          std::to_string(row) + ")");
    // Span label is the fixed literal; the row index goes in args.detail
    // (formatted only when tracing is on).
    obs::TraceSpan iteration_span(
        "iteration", "solve",
        obs::trace() != nullptr ? "row " + std::to_string(row)
                                : std::string());
    IterationStats iteration;
    iteration.row = row;
    auto cls = classify_row(result.columns, row);
    iteration.positives = cls.positive.size();
    iteration.negatives = cls.negative.size();
    const bool row_reversible = problem.reversible[row];
    if (use_sparse) {
      // Eliminate this iteration's shared K-side block once; every
      // candidate test below only reduces against the cached pivots.
      sparse_tester->begin_iteration(iteration_common_zero_rows(
          result.columns, cls.positive, cls.negative, row));
    }

    // Per-candidate elementarity oracle for the blocked generator.  For the
    // combinatorial test the per-column half runs here; the cross-candidate
    // half runs after all blocks.
    std::vector<const Support*> survivor_supports;
    if (options.test == ElementarityTest::kCombinatorial) {
      for (std::uint32_t j : cls.zero)
        survivor_supports.push_back(&result.columns[j].support);
      for (std::uint32_t j : cls.positive)
        survivor_supports.push_back(&result.columns[j].support);
      if (row_reversible) {
        for (std::uint32_t j : cls.negative)
          survivor_supports.push_back(&result.columns[j].support);
      }
    }
    auto is_elementary = [&](const Support& support) -> bool {
      if (options.test == ElementarityTest::kCombinatorial) {
        for (const Support* other : survivor_supports) {
          if (*other != support && other->is_subset_of(support)) return false;
        }
        return true;
      }
      if (use_sparse) return sparse_tester->is_elementary(support);
      if (use_modular) return modular_tester->is_elementary(support);
      return exact_tester.is_elementary(support);
    };

    if (!options.ignore_mem_limit)
      governor.enforce_resident("nullspace iteration (row " +
                                std::to_string(row) + ")");
    // Every governed iteration runs through the chunked out-of-core driver;
    // whether chunks actually hit disk is decided per chunk from the live
    // headroom under the limit (see process_pair_range_spilled).  The
    // coarse admit() pre-check would have to predict the candidate
    // transient, and a spike in an iteration whose matrix is still small
    // slips past any such projection.
    const bool spill_iteration =
        options.spill.always ||
        (options.spill.enabled && !options.ignore_mem_limit &&
         governor.enabled());

    std::vector<FluxColumn<Scalar, Support>> candidates;
    resource::MemoryLease candidate_lease(resource::Subsystem::kCandidates);
    try {
      if (spill_iteration) {
        iteration.spilled_bytes = process_pair_range_spilled(
            result.columns, row, cls, basis.stoichiometry_rank, 0,
            cls.pair_count(), options.block_ref_cap, is_elementary, iteration,
            result.stats.phases, candidates, options.spill);
      } else {
        process_pair_range(result.columns, row, cls, basis.stoichiometry_rank,
                           0, cls.pair_count(), options.block_ref_cap,
                           is_elementary, iteration, result.stats.phases,
                           candidates);
      }
      // Charge the surviving candidates (the spilled path's lease inside
      // process_pair_range_spilled covers only its in-flight chunk).
      candidate_lease.set(matrix_storage_bytes(candidates));
    } catch (const std::bad_alloc&) {
      // Classify allocation failure so the retry ladder can degrade
      // (smaller tiles, spill-always, serial) instead of aborting the run.
      throw ResourceError("nullspace iteration (row " + std::to_string(row) +
                              "): allocation failed (std::bad_alloc) with " +
                              std::to_string(governor.usage()) +
                              " B charged",
                          0, governor.limit());
    }
    if (use_sparse) sparse_tester->drain_stats(iteration);
    if (options.test == ElementarityTest::kCombinatorial)
      cross_candidate_subset_filter(candidates, iteration);

    if (options.audit && options.test == ElementarityTest::kRank) {
      // Re-verify every accepted candidate with the exact Bareiss backend,
      // independent of the (possibly Monte-Carlo modular) test that
      // accepted it.
      check::InvariantAuditor{}.check_rank_nullity(
          exact_tester, candidates,
          "solve_nullspace row " + std::to_string(row));
    }

    result.columns = merge_next(std::move(result.columns), cls,
                                row_reversible, std::move(candidates));
    iteration.columns_after = result.columns.size();
    const std::size_t matrix_bytes = matrix_storage_bytes(result.columns);
    matrix_lease.set(matrix_bytes);
    result.stats.peak_matrix_bytes =
        std::max(result.stats.peak_matrix_bytes, matrix_bytes);
    result.stats.absorb(iteration);
    publish_iteration_metrics(iteration);
    obs::trace_counter("columns", iteration.columns_after);
    if (options.audit) {
      // Columns must stay inside null(S) across every Merge (paper §II.A).
      check::InvariantAuditor{}.check_nullspace_product(
          problem.stoichiometry, result.columns,
          "solve_nullspace after row " + std::to_string(row));
    }
    if (options.on_iteration) options.on_iteration(iteration);
  }
  if (options.audit && options.exclude_rows.empty()) {
    // Final column set is a support antichain (elementarity).  Skipped for
    // divide-and-conquer sub-solves: the combined driver audits its merged
    // final set instead.
    check::InvariantAuditor{}.check_support_minimality(
        result.columns, "solve_nullspace final");
  }
  return result;
}

/// Algorithm 1 with automatic reversible-split preprocessing: networks
/// whose reversible columns are linearly dependent (duplicated reversible
/// reactions, fully reversible cycles) are handled transparently.  Columns
/// come back in the ORIGINAL reduced reaction space.
template <typename Scalar, typename Support>
SolveResult<Scalar, Support> solve_efms(const EfmProblem<Scalar>& problem,
                                        const SolverOptions& options = {}) {
  auto prepared = prepare_problem(problem);
  auto result = solve_nullspace<Scalar, Support>(prepared.problem, options);
  result.columns = unsplit_columns(std::move(result.columns), prepared);
  return result;
}

}  // namespace elmo
