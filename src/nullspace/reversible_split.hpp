// Splitting of linearly dependent reversible reactions.
//
// The Nullspace Algorithm requires every reversible reaction to be a pivot
// of the initial basis (a reversible reaction in the identity block could
// never receive the negative flux some EFMs need).  When the reversible
// columns are linearly dependent among themselves — duplicated reversible
// reactions, fully reversible cycles — that is impossible.  The standard
// remedy is applied here: each offending reaction r is replaced by an
// irreversible forward copy (the original column) plus an appended
// irreversible backward copy (the negated column).
//
// The split problem's EFMs map back to the original reduced space by
// v[r] = v[r_fwd] - v[r_bwd]; an EFM never uses both directions except the
// spurious two-cycle {r_fwd, r_bwd}, which is dropped.
#pragma once

#include <string>
#include <vector>

#include "bigint/bigint.hpp"
#include "bigint/rational.hpp"
#include "linalg/gauss.hpp"
#include "linalg/matrix.hpp"
#include "nullspace/flux_column.hpp"
#include "nullspace/initial_basis.hpp"
#include "nullspace/problem.hpp"

namespace elmo {

template <typename Scalar>
struct PreparedProblem {
  /// The (possibly expanded) problem to solve.  The first
  /// `original_reactions` columns are the reduced problem's, in order;
  /// backward copies are appended after them.
  EfmProblem<Scalar> problem;
  std::size_t original_reactions = 0;
  /// backward_of[k] = reduced column of the k-th appended backward copy.
  std::vector<std::size_t> backward_of;

  [[nodiscard]] bool has_splits() const { return !backward_of.empty(); }
};

/// Detect reversible reactions that cannot become pivots and split them.
template <typename Scalar>
PreparedProblem<Scalar> prepare_problem(const EfmProblem<Scalar>& problem) {
  PreparedProblem<Scalar> prepared;
  prepared.problem = problem;
  prepared.original_reactions = problem.num_reactions();

  // Run the same pivot-preference elimination the initial basis will use;
  // a reversible reaction left free must be split.
  Matrix<BigRational> rat(problem.stoichiometry.rows(),
                          problem.stoichiometry.cols());
  for (std::size_t i = 0; i < rat.rows(); ++i)
    for (std::size_t j = 0; j < rat.cols(); ++j) {
      if constexpr (std::is_same_v<Scalar, BigInt>) {
        rat(i, j) = BigRational(problem.stoichiometry(i, j));
      } else if constexpr (std::is_same_v<Scalar, double>) {
        // The double kernel is only used on integer-valued problems.
        rat(i, j) = BigRational(BigInt(
            static_cast<std::int64_t>(problem.stoichiometry(i, j))));
      } else {
        rat(i, j) = BigRational(BigInt(problem.stoichiometry(i, j).value()));
      }
    }
  auto order = detail::pivot_preference(problem.reversible);
  auto echelon = rref(rat, order);
  std::vector<bool> is_pivot(problem.num_reactions(), false);
  for (std::size_t p : echelon.pivot_cols) is_pivot[p] = true;

  for (std::size_t j = 0; j < problem.num_reactions(); ++j) {
    if (is_pivot[j] || !problem.reversible[j]) continue;
    prepared.backward_of.push_back(j);
  }
  if (prepared.backward_of.empty()) return prepared;

  // Apply the splits: forward copy becomes irreversible in place, backward
  // copies are appended.
  auto& split = prepared.problem;
  const std::size_t q = problem.num_reactions();
  const std::size_t extra = prepared.backward_of.size();
  Matrix<Scalar> wide(problem.stoichiometry.rows(), q + extra);
  for (std::size_t i = 0; i < wide.rows(); ++i) {
    for (std::size_t j = 0; j < q; ++j)
      wide(i, j) = problem.stoichiometry(i, j);
    for (std::size_t k = 0; k < extra; ++k)
      wide(i, q + k) = -problem.stoichiometry(i, prepared.backward_of[k]);
  }
  split.stoichiometry = std::move(wide);
  for (std::size_t k = 0; k < extra; ++k) {
    const std::size_t j = prepared.backward_of[k];
    split.reversible[j] = false;
    split.reversible.push_back(false);
    split.reaction_names.push_back(problem.reaction_names[j] + "__rev");
  }
  return prepared;
}

/// Map solved columns of a split problem back to the reduced space:
/// fold each backward copy into its forward column (negated) and drop the
/// spurious two-cycle modes.
template <typename Scalar, typename Support>
std::vector<FluxColumn<Scalar, Support>> unsplit_columns(
    std::vector<FluxColumn<Scalar, Support>>&& columns,
    const PreparedProblem<Scalar>& prepared) {
  if (!prepared.has_splits()) return std::move(columns);
  const std::size_t q = prepared.original_reactions;
  std::vector<FluxColumn<Scalar, Support>> out;
  out.reserve(columns.size());
  for (auto& column : columns) {
    std::vector<Scalar> reduced(q, scalar_from_i64<Scalar>(0));
    for (std::size_t j = 0; j < q; ++j) reduced[j] = column.values[j];
    bool two_cycle = false;
    for (std::size_t k = 0; k < prepared.backward_of.size(); ++k) {
      const Scalar& backward = column.values[q + k];
      if (scalar_is_zero(backward)) continue;
      const std::size_t j = prepared.backward_of[k];
      // An elementary mode never runs both directions (that would strictly
      // contain the two-cycle's support) — unless it IS the two-cycle.
      if (!scalar_is_zero(reduced[j])) {
        two_cycle = true;
        break;
      }
      reduced[j] = -backward;
    }
    if (two_cycle) continue;
    out.push_back(FluxColumn<Scalar, Support>::from_values(std::move(reduced)));
  }
  return out;
}

}  // namespace elmo
