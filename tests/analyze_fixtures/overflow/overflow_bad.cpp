// Seeds overflow:unchecked-arith — raw int64 multiply and add.
#include <cstdint>

std::int64_t area(std::int64_t width, std::int64_t height) {
  return width * height;
}

std::int64_t off_by_one(std::int64_t base) {
  return base + 1;
}
