// Tests for the network model, parser, writer and validation.
#include "network/network.hpp"

#include <gtest/gtest.h>

#include "bigint/checked.hpp"
#include "models/toy.hpp"
#include "network/parser.hpp"
#include "network/validate.hpp"
#include "support/error.hpp"

namespace elmo {
namespace {

TEST(Network, AddAndLookup) {
  Network net;
  auto a = net.add_metabolite("A");
  auto xext = net.add_metabolite("Xext", true);
  EXPECT_EQ(net.num_metabolites(), 2u);
  EXPECT_EQ(net.num_internal_metabolites(), 1u);
  EXPECT_EQ(net.find_metabolite("A"), a);
  EXPECT_EQ(net.find_metabolite("Xext"), xext);
  EXPECT_FALSE(net.find_metabolite("B").has_value());

  auto r = net.add_reaction("r1", false, {{"Xext", -1}, {"A", 1}});
  EXPECT_EQ(net.find_reaction("r1"), r);
  EXPECT_EQ(net.reaction_id("r1"), r);
  EXPECT_THROW(net.reaction_id("nope"), InvalidArgumentError);
}

TEST(Network, DuplicateNamesRejected) {
  Network net;
  net.add_metabolite("A");
  EXPECT_THROW(net.add_metabolite("A"), InvalidArgumentError);
  net.add_reaction("r", false, {{"A", 1}});
  EXPECT_THROW(net.add_reaction("r", false, {{"A", 1}}),
               InvalidArgumentError);
}

TEST(Network, UnknownMetaboliteInReactionRejected) {
  Network net;
  net.add_metabolite("A");
  EXPECT_THROW(net.add_reaction("r", false, {{"B", 1}}),
               InvalidArgumentError);
}

TEST(Network, TermsSummedAndZeroDropped) {
  Network net;
  net.add_metabolite("A");
  net.add_metabolite("B");
  // A appears with +2 and -2 (cancels); B nets to +1.
  net.add_reaction("r", false, {{"A", 2}, {"A", -2}, {"B", -1}, {"B", 2}});
  const auto& reaction = net.reaction(0);
  ASSERT_EQ(reaction.terms.size(), 1u);
  EXPECT_EQ(reaction.coefficient_of(net.find_metabolite("B").value()), 1);
  EXPECT_EQ(reaction.coefficient_of(net.find_metabolite("A").value()), 0);
}

TEST(Network, StoichiometryMatrixMatchesPaperEq2) {
  Network net = models::toy_network();
  EXPECT_EQ(net.num_internal_metabolites(), 5u);
  EXPECT_EQ(net.num_reactions(), 9u);
  EXPECT_EQ(net.num_reversible_reactions(), 2u);

  auto n = net.stoichiometry<CheckedI64>();
  // Eq (2): rows A, B, C, D, P; columns r1..r9.
  auto expected = Matrix<CheckedI64>::from_rows({
      {1, -1, 0, 0, -1, 0, 0, 0, 0},
      {0, 0, 0, 0, 1, -1, -1, -1, 0},
      {0, 1, -1, 0, 0, 1, 0, 0, 0},
      {0, 0, 1, 0, 0, 0, 0, 0, -1},
      {0, 0, 1, -1, 0, 0, 2, 0, 0},
  });
  EXPECT_EQ(n, expected);
}

TEST(Network, WithoutReactionsRenumbersDensely) {
  Network net = models::toy_network();
  auto cut = net.without_reactions({net.reaction_id("r7")});
  EXPECT_EQ(cut.num_reactions(), 8u);
  EXPECT_FALSE(cut.find_reaction("r7").has_value());
  EXPECT_EQ(cut.reaction(6).name, "r8r");  // shifted down by one
  EXPECT_THROW(net.without_reactions({99}), InvalidArgumentError);
}

TEST(Parser, ParsesCoefficientsArrowsAndComments) {
  const char* text = R"(
    # a comment
    external Zext
    R1 : Aext => A          // exchange
    R2r : A + 2 B <=> 3 C
    R3 : C =>
    R4 : => B
  )";
  Network net = parse_network(text);
  EXPECT_EQ(net.num_reactions(), 4u);
  EXPECT_FALSE(net.reaction(0).reversible);
  EXPECT_TRUE(net.reaction(1).reversible);
  // Suffix rule: Aext external; A, B, C internal; Zext declared external.
  EXPECT_TRUE(net.metabolite(net.find_metabolite("Aext").value()).external);
  EXPECT_FALSE(net.metabolite(net.find_metabolite("A").value()).external);
  EXPECT_TRUE(net.metabolite(net.find_metabolite("Zext").value()).external);
  // Coefficients.
  auto r2 = net.reaction(1);
  EXPECT_EQ(r2.coefficient_of(net.find_metabolite("B").value()), -2);
  EXPECT_EQ(r2.coefficient_of(net.find_metabolite("C").value()), 3);
  // Empty sides allowed.
  EXPECT_EQ(net.reaction(2).terms.size(), 1u);
  EXPECT_EQ(net.reaction(3).terms.size(), 1u);
}

TEST(Parser, MetaboliteDirectiveOverridesSuffixRule) {
  Network net = parse_network("metabolite Fooext\nR1 : Fooext => Bar\n");
  EXPECT_FALSE(
      net.metabolite(net.find_metabolite("Fooext").value()).external);
}

TEST(Parser, ErrorsCarryLineNumbers) {
  try {
    parse_network("R1 : A => B\nR2 A => B\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
  EXPECT_THROW(parse_network("R1 : A B => C\n"), ParseError);
  EXPECT_THROW(parse_network("R1 : A -> B\n"), ParseError);
  EXPECT_THROW(parse_network(" : A => B\n"), ParseError);
  EXPECT_THROW(parse_network("R1 : =>\n"), ParseError);
  EXPECT_THROW(parse_network("R1 : A => B\nR1 : A => B\n"), ParseError);
}

TEST(Parser, RoundTripThroughWriter) {
  Network net = models::toy_network();
  std::string text = write_network(net);
  Network again = parse_network(text);
  EXPECT_EQ(again.num_reactions(), net.num_reactions());
  EXPECT_EQ(again.num_internal_metabolites(),
            net.num_internal_metabolites());
  EXPECT_EQ(again.stoichiometry<CheckedI64>(),
            net.stoichiometry<CheckedI64>());
  EXPECT_EQ(again.reversibility(), net.reversibility());
}

TEST(Validate, CleanNetworkHasNoWarnings) {
  EXPECT_TRUE(validate(models::toy_network()).clean());
}

TEST(Validate, FlagsDeadMetabolites) {
  Network net = parse_network(R"(
    R1 : Aext => A
    R2 : A => B
  )");
  auto report = validate(net);
  ASSERT_FALSE(report.clean());
  bool found = false;
  for (const auto& w : report.warnings)
    if (w.find("B") != std::string::npos &&
        w.find("never consumed") != std::string::npos)
      found = true;
  EXPECT_TRUE(found);
}

TEST(Validate, FlagsExternalOnlyReaction) {
  Network net = parse_network("R1 : Aext => Bext\n");
  auto report = validate(net);
  ASSERT_EQ(report.warnings.size(), 1u);
  EXPECT_NE(report.warnings[0].find("only external"), std::string::npos);
}

}  // namespace
}  // namespace elmo
