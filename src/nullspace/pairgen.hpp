// The candidate-generation engine: vectorized, tiled, pruned traversal of
// the positive x negative pair space (the algorithm's hot loop).
//
// Candidate generation dominates wall-clock on the yeast networks — the
// paper's Network I run probes 159.6e9 pairs — so this engine composes four
// optimizations on top of the straight scalar loop (kept as
// generate_candidate_refs_reference in iteration.hpp, the differential
// oracle):
//
//   pruning     per-column support popcounts are computed once and both
//               sides are sorted by popcount ascending.  |supp(u) ∪
//               supp(v)| >= max(|u|,|v|), so a column whose own popcount
//               exceeds the pre-test bound rank+2 can never survive with
//               ANY partner: the engine cuts each side to its live prefix
//               and charges the dead rectangle to the pair counters in
//               O(1) per stretch instead of probing it.
//   tiling      negatives are walked in L1-sized tiles; a tile's support
//               words stay cache-resident across every positive row
//               instead of re-streaming the whole negative array once per
//               positive.
//   SIMD        an AVX2 kernel tests 4 negatives per step (vpshufb
//               nibble-LUT popcount, the inner step of Harley–Seal
//               counting), selected per build via ELMO_SIMD=auto|avx2|
//               scalar and verified bit-identical to the scalar kernel by
//               a differential test.
//   slab reuse  survivor supports (DynBitset word vectors) are recycled
//               through a free-list between candidate blocks, removing
//               the per-survivor heap round trip (hundreds of millions of
//               survivors on a full yeast run).
//
// Enumeration order and resumability: the engine assigns every pair a
// stable "engine index" in [0, positives x negatives) — tile-major over
// the popcount-sorted sides — and any sub-range [begin, end) of engine
// indices is generated exactly once, in order, resumable at any point.
// Rank slices and dynamic work-stealing batches both partition the engine
// index space, so pair-count conservation (the PR 3 audit) holds exactly.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <mutex>
#include <type_traits>
#include <vector>

#include "bitset/bitset64.hpp"
#include "bitset/traits.hpp"
#include "nullspace/flux_column.hpp"
#include "nullspace/stats.hpp"
#include "support/assert.hpp"

// Compile-time kernel selection (CMake option ELMO_SIMD):
//   scalar  -DELMO_SIMD_SCALAR: portable kernel only, no intrinsics
//           compiled at all,
//   avx2    -DELMO_SIMD_FORCE_AVX2: AVX2 kernel selected unconditionally
//           (the build targets a machine known to have it),
//   auto    (default) on x86-64 gcc/clang the AVX2 kernel is compiled
//           behind a per-function target attribute and selected at engine
//           construction iff the CPU reports AVX2; elsewhere scalar.
#if !defined(ELMO_SIMD_SCALAR) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define ELMO_PAIRGEN_AVX2 1
#include <immintrin.h>
#else
#define ELMO_PAIRGEN_AVX2 0
#endif

namespace elmo {

/// A candidate before materialisation: its exact support (cancellations
/// included) plus the generating positive/negative column indices.  The
/// rank test and duplicate removal need only the support, so full value
/// vectors are built exclusively for ACCEPTED candidates — the pretest
/// survivor stream on the yeast networks is orders of magnitude larger
/// than the accepted stream and must never be materialised wholesale.
template <typename Support>
struct CandidateRef {
  Support support;
  std::uint32_t positive = 0;  // column index into the current matrix
  std::uint32_t negative = 0;

  friend bool operator<(const CandidateRef& a, const CandidateRef& b) {
    // Support-major order; the pair indices break ties deterministically
    // so results do not depend on generation order (rank count, blocking).
    if (auto cmp = a.support <=> b.support; cmp != 0) return cmp < 0;
    if (a.positive != b.positive) return a.positive < b.positive;
    return a.negative < b.negative;
  }
};

namespace pairgen_detail {

/// True iff the AVX2 kernel may be selected on this build/CPU.
inline bool simd_selectable() {
#if !ELMO_PAIRGEN_AVX2
  return false;
#elif defined(ELMO_SIMD_FORCE_AVX2)
  return true;
#else
  static const bool has = __builtin_cpu_supports("avx2") != 0;
  return has;
#endif
}

#if ELMO_PAIRGEN_AVX2
/// Pre-test 4 negatives against one positive: returns a 4-bit mask of the
/// lanes with popcount(pos | neg) <= max_union.  `quad` points at the
/// 4-interleaved word block of the negative group: word w of lanes 0..3 at
/// quad[w * 4 + 0..3].  Popcount per 64-bit lane is the vpshufb nibble-LUT
/// + psadbw reduction (the inner step of Harley–Seal counting; at stride
/// <= 64 words the full carry-save adder tree is not worth its setup).
__attribute__((target("avx2"))) inline unsigned group_survivor_mask(
    const std::uint64_t* pos_row, const std::uint64_t* quad,
    std::size_t stride, std::uint64_t max_union) {
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lut =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1,
                       1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  __m256i acc = _mm256_setzero_si256();
  for (std::size_t w = 0; w < stride; ++w) {
    // Intrinsics load contract: __m256i aliases any object representation.
    const __m256i nv = _mm256_loadu_si256(  // lint:allow(reinterpret-cast)
        reinterpret_cast<const __m256i*>(quad + w * 4));
    const __m256i uv = _mm256_or_si256(
        nv, _mm256_set1_epi64x(static_cast<long long>(pos_row[w])));
    const __m256i lo = _mm256_and_si256(uv, low_mask);
    const __m256i hi =
        _mm256_and_si256(_mm256_srli_epi16(uv, 4), low_mask);
    const __m256i nibbles = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                            _mm256_shuffle_epi8(lut, hi));
    acc = _mm256_add_epi64(acc,
                           _mm256_sad_epu8(nibbles, _mm256_setzero_si256()));
  }
  const __m256i bound =
      _mm256_set1_epi64x(static_cast<long long>(max_union));
  const __m256i fail = _mm256_cmpgt_epi64(acc, bound);
  const unsigned fail_mask =
      static_cast<unsigned>(_mm256_movemask_pd(_mm256_castsi256_pd(fail)));
  return ~fail_mask & 0xFu;
}
#endif  // ELMO_PAIRGEN_AVX2

}  // namespace pairgen_detail

/// Free-list of support word buffers, recycled between candidate blocks.
/// DynBitset survivors otherwise cost one heap allocation each; Bitset64
/// supports are inline and the slab is a no-op.
template <typename Support>
class SupportSlab {
 public:
  [[nodiscard]] std::vector<std::uint64_t> acquire() {
    if (free_.empty()) return {};
    auto words = std::move(free_.back());
    free_.pop_back();
    return words;
  }

  void recycle(Support&& support) {
    if constexpr (!std::is_same_v<Support, Bitset64>) {
      free_.push_back(std::move(support).take_words());
    }
  }

  /// Harvest every ref's support buffer (call before clearing a block).
  void recycle_all(std::vector<CandidateRef<Support>>& refs) {
    if constexpr (!std::is_same_v<Support, Bitset64>) {
      free_.reserve(free_.size() + refs.size());
      for (auto& ref : refs) recycle(std::move(ref.support));
    }
  }

 private:
  std::vector<std::vector<std::uint64_t>> free_;
};

/// Slab of recycled value vectors for transient FluxColumn
/// materialisations (duplicate probes, rejected candidates).  Accepted
/// columns keep their vector; releasing a rejected one returns its
/// capacity for the next acquire.
template <typename Scalar>
class ValueSlab {
 public:
  [[nodiscard]] std::vector<Scalar> acquire() {
    if (free_.empty()) return {};
    auto values = std::move(free_.back());
    free_.pop_back();
    return values;
  }
  void release(std::vector<Scalar>&& values) {
    free_.push_back(std::move(values));
  }

 private:
  std::vector<std::vector<Scalar>> free_;
};

struct PairGenConfig {
  /// Select the portable scalar kernel even when AVX2 is available
  /// (differential tests compare the two paths bit for bit).
  bool force_scalar = false;
  /// Negative-tile footprint in bytes; half a typical 32 KiB L1d so the
  /// tile words, the positive row and the output block coexist.
  std::size_t tile_bytes = std::size_t{16} * 1024;
};

/// Per-iteration lookup tables shared by every worker generating pairs for
/// one (columns, row) instance: popcount-sorted flat support arrays for
/// both sides, the SIMD-interleaved negative mirror, the live (prunable)
/// prefix bounds, and the sorted existing-zero-column index used for
/// duplicate suppression.  Built once per iteration per rank; const
/// thereafter, safe to share across threads.
template <typename Scalar, typename Support>
class PairGenTables {
 public:
  PairGenTables(const std::vector<FluxColumn<Scalar, Support>>& columns,
                std::size_t row, const std::vector<std::uint32_t>& positive,
                const std::vector<std::uint32_t>& negative,
                const std::vector<std::uint32_t>& zero, std::size_t rank,
                PairGenConfig config = {})
      : columns_(&columns),
        row_(row),
        max_union_(rank + 2),
        accept_cap_(rank + 1) {
    if constexpr (std::is_same_v<Support, Bitset64>) {
      stride_ = 1;
    } else {
      stride_ = columns.empty() || (positive.empty() && negative.empty())
                    ? 1
                    : columns[positive.empty() ? negative[0] : positive[0]]
                          .support.words()
                          .size();
    }
    use_simd_ = pairgen_detail::simd_selectable() && !config.force_scalar;

    build_side(columns, positive, pos_col_, pos_pop_, pos_words_);
    build_side(columns, negative, neg_col_, neg_pop_, neg_words_);
    live_pos_ = live_prefix(pos_pop_);
    live_neg_ = live_prefix(neg_pop_);
    build_quad();

    // Tile geometry: whole negative columns per tile, multiple of the SIMD
    // group width, at least one group.
    std::uint64_t cols =
        static_cast<std::uint64_t>(config.tile_bytes / (stride_ * 8));
    cols &= ~std::uint64_t{3};
    tile_cols_ = std::max<std::uint64_t>(cols, 4);

    zero_ = zero;  // existing-column index built lazily on first use
  }

  [[nodiscard]] std::uint64_t positives() const {
    return static_cast<std::uint64_t>(pos_col_.size());
  }
  [[nodiscard]] std::uint64_t negatives() const {
    return static_cast<std::uint64_t>(neg_col_.size());
  }
  [[nodiscard]] std::uint64_t pair_count() const {
    return positives() * negatives();
  }
  [[nodiscard]] std::size_t stride() const { return stride_; }
  [[nodiscard]] bool simd_active() const { return use_simd_; }
  /// Existing zero columns sorted by support, for duplicate suppression.
  /// Built on first call (sorting the zero side costs more than probing a
  /// small pair range, and pure probe/prune passes never need it); the
  /// once-flag makes concurrent first calls from workers sharing one
  /// tables instance safe.
  [[nodiscard]] const std::vector<const FluxColumn<Scalar, Support>*>&
  existing() const {
    std::call_once(existing_once_, [this] {
      existing_.reserve(zero_.size());
      for (std::uint32_t z : zero_) existing_.push_back(&(*columns_)[z]);
      std::sort(existing_.begin(), existing_.end(),
                [](const auto* a, const auto* b) {
                  return a->support < b->support;
                });
    });
    return existing_;
  }

 private:
  template <typename S, typename Sup>
  friend class PairGen;

  void build_side(const std::vector<FluxColumn<Scalar, Support>>& columns,
                  const std::vector<std::uint32_t>& side,
                  std::vector<std::uint32_t>& col,
                  std::vector<std::uint16_t>& pop,
                  std::vector<std::uint64_t>& words) {
    // Sort by (popcount, original column index): the popcount order drives
    // the prune cut; the index tie-break keeps enumeration deterministic.
    // Counts are taken once up front — recomputing them inside the
    // comparator costs more than the sort itself on wide supports.
    std::vector<std::pair<std::uint16_t, std::uint32_t>> keys;
    keys.reserve(side.size());
    for (std::uint32_t c : side) {
      keys.emplace_back(static_cast<std::uint16_t>(columns[c].support.count()),
                        c);
    }
    std::sort(keys.begin(), keys.end());
    col.resize(keys.size());
    pop.resize(keys.size());
    words.resize(keys.size() * stride_);
    for (std::size_t k = 0; k < keys.size(); ++k) {
      col[k] = keys[k].second;
      pop[k] = keys[k].first;
      const auto& support = columns[col[k]].support;
      if constexpr (std::is_same_v<Support, Bitset64>) {
        words[k] = support.word();
      } else {
        const auto& w = support.words();
        std::copy(w.begin(), w.end(), words.begin() + k * stride_);
      }
    }
  }

  [[nodiscard]] std::size_t live_prefix(
      const std::vector<std::uint16_t>& pop) const {
    // First sorted position whose popcount alone already breaks the union
    // bound; everything from there on is dead with ANY partner.
    const auto bound = static_cast<std::uint16_t>(
        std::min<std::size_t>(max_union_, 0xffff));
    return static_cast<std::size_t>(
        std::upper_bound(pop.begin(), pop.end(), bound) - pop.begin());
  }

  void build_quad() {
    // 4-interleaved mirror of the negative words for the AVX2 kernel:
    // word w of group g's lanes 0..3 at quad[(g * stride + w) * 4 + lane].
    // Tail lanes pad with all-ones so a stray probe can only fail.
    if (!use_simd_) return;
    const std::size_t n = neg_col_.size();
    const std::size_t groups = (n + 3) / 4;
    neg_quad_.assign(groups * stride_ * 4, ~std::uint64_t{0});
    for (std::size_t j = 0; j < n; ++j) {
      const std::size_t g = j / 4;
      const std::size_t lane = j % 4;
      for (std::size_t w = 0; w < stride_; ++w) {
        neg_quad_[(g * stride_ + w) * 4 + lane] =
            neg_words_[j * stride_ + w];
      }
    }
  }

  const std::vector<FluxColumn<Scalar, Support>>* columns_;
  std::size_t row_;
  std::size_t stride_ = 1;
  std::size_t max_union_;   // rank + 2: the pre-test union bound
  std::size_t accept_cap_;  // rank + 1: exact-support acceptance bound
  bool use_simd_ = false;
  std::vector<std::uint32_t> pos_col_, neg_col_;  // sorted -> matrix index
  std::vector<std::uint16_t> pos_pop_, neg_pop_;
  std::size_t live_pos_ = 0, live_neg_ = 0;
  std::vector<std::uint64_t> pos_words_, neg_words_;  // row-major, sorted
  std::vector<std::uint64_t> neg_quad_;  // 4-interleaved (AVX2 kernel)
  std::uint64_t tile_cols_ = 4;
  std::vector<std::uint32_t> zero_;  // zero-side matrix indices
  mutable std::once_flag existing_once_;
  mutable std::vector<const FluxColumn<Scalar, Support>*>
      existing_;  // by support, built lazily
};

/// Resumable generator over a sub-range [begin, end) of engine indices.
/// Cheap to construct (the heavy state lives in the shared tables), so
/// dynamic schedulers create one per stolen batch.
template <typename Scalar, typename Support>
class PairGen {
 public:
  PairGen(const PairGenTables<Scalar, Support>& tables, std::uint64_t begin,
          std::uint64_t end)
      : t_(&tables), cursor_(begin), end_(end) {
    ELMO_REQUIRE(begin <= end && end <= tables.pair_count(),
                 "PairGen: range outside the pair space");
  }

  [[nodiscard]] bool done() const { return cursor_ >= end_; }
  [[nodiscard]] std::uint64_t cursor() const { return cursor_; }

  /// Return a finished block's support buffers to the slab before the
  /// caller clears it (no-op for inline supports).
  void recycle(std::vector<CandidateRef<Support>>& refs) {
    slab_.recycle_all(refs);
  }

  /// Generate refs for engine indices from the cursor until the range is
  /// exhausted or `out` reaches `ref_cap` entries (bounded-memory
  /// blocking).  Every consumed index is charged to stats.pairs_probed
  /// exactly once; indices skipped by the popcount prune are additionally
  /// counted in stats.pairs_pruned.
  void generate(std::size_t ref_cap, std::vector<CandidateRef<Support>>& out,
                IterationStats& stats) {
    const std::uint64_t kP = t_->positives();
    const std::uint64_t kN = t_->negatives();
    if (kP == 0 || kN == 0) {
      cursor_ = end_;
      return;
    }
    const std::uint64_t kW = t_->tile_cols_;
    const std::uint64_t live_pos = t_->live_pos_;
    const std::uint64_t live_neg = t_->live_neg_;

    while (cursor_ < end_ && out.size() < ref_cap) {
      const std::uint64_t tile = cursor_ / (kP * kW);
      const std::uint64_t tile_first = tile * kW;  // first sorted negative
      const std::uint64_t width = std::min(kW, kN - tile_first);
      const std::uint64_t base = tile * kP * kW;  // engine index of start
      const std::uint64_t tile_stop = std::min(end_, base + kP * width);

      if (tile_first >= live_neg) {
        prune_to(tile_stop, stats);  // the whole tile is dead
        continue;
      }
      const std::uint64_t offset = cursor_ - base;
      const std::uint64_t i = offset / width;  // sorted positive row
      if (i >= live_pos) {
        // Positives are popcount-ascending: every later row in this tile
        // is dead too.
        prune_to(tile_stop, stats);
        continue;
      }
      const std::uint64_t live_cols =
          std::min<std::uint64_t>(width, live_neg - tile_first);
      generate_row(i, tile_first, width, live_cols, base + i * width,
                   ref_cap, out, stats);
    }
  }

 private:
  /// Bulk-fail every engine index in [cursor_, stop): the popcount bound
  /// proves the pre-test fails, so the pairs are charged without probing.
  void prune_to(std::uint64_t stop, IterationStats& stats) {
    const std::uint64_t skipped = stop - cursor_;
    stats.pairs_probed += skipped;
    stats.pairs_pruned += skipped;
    cursor_ = stop;
  }

  /// Generate the cursor's stretch of row i within the current tile.
  /// `row_base` is the engine index of (i, tile column 0).
  void generate_row(std::uint64_t i, std::uint64_t tile_first,
                    std::uint64_t width, std::uint64_t live_cols,
                    std::uint64_t row_base, std::size_t ref_cap,
                    std::vector<CandidateRef<Support>>& out,
                    IterationStats& stats) {
    const std::size_t stride = t_->stride_;
    const std::uint64_t kMaxUnion =
        static_cast<std::uint64_t>(t_->max_union_);
    const std::uint64_t* pos_row =
        t_->pos_words_.data() + static_cast<std::size_t>(i) * stride;

    std::uint64_t j = cursor_ - row_base;  // column offset within tile
    // The row stretch may be cut short by the range end.
    const std::uint64_t stretch = std::min(width, end_ - row_base);
    const std::uint64_t probe_end = std::min(stretch, live_cols);

    if (j < probe_end) {
      // Charge the whole probe stretch upfront (the loops below never give
      // an index back); a ref-cap stop refunds the unconsumed tail.
      stats.pairs_probed += probe_end - j;
#if ELMO_PAIRGEN_AVX2
      if (t_->use_simd_) {
        while (j < probe_end) {
          const std::uint64_t j_abs = tile_first + j;
          if ((j_abs & 3) == 0 && j + 4 <= probe_end) {
            const unsigned mask = pairgen_detail::group_survivor_mask(
                pos_row,
                t_->neg_quad_.data() +
                    static_cast<std::size_t>(j_abs / 4) * stride * 4,
                stride, kMaxUnion);
            if (mask != 0) {
              // Survivor lanes, in ascending column order.  A ref-cap
              // stop consumes only the lanes up to the stopping survivor;
              // the rest of the group is re-probed on resume.
              for (unsigned rest = mask; rest != 0; rest &= rest - 1) {
                const std::uint64_t lane =
                    static_cast<std::uint64_t>(std::countr_zero(rest));
                ++stats.pretest_survivors;
                emit(i, j_abs + lane, out);
                if (out.size() >= ref_cap) {
                  cursor_ = row_base + j + lane + 1;
                  stats.pairs_probed -= probe_end - (j + lane + 1);
                  return;
                }
              }
            }
            j += 4;
            continue;
          }
          // Unaligned head / ragged tail: scalar probe.
          if (scalar_survives(pos_row, j_abs, stride, kMaxUnion)) {
            ++stats.pretest_survivors;
            emit(i, j_abs, out);
            if (out.size() >= ref_cap) {
              cursor_ = row_base + j + 1;
              stats.pairs_probed -= probe_end - (j + 1);
              return;
            }
          }
          ++j;
        }
      } else
#endif  // ELMO_PAIRGEN_AVX2
      {
        while (j < probe_end) {
          const std::uint64_t j_abs = tile_first + j;
          if (scalar_survives(pos_row, j_abs, stride, kMaxUnion)) {
            ++stats.pretest_survivors;
            emit(i, j_abs, out);
            if (out.size() >= ref_cap) {
              cursor_ = row_base + j + 1;
              stats.pairs_probed -= probe_end - (j + 1);
              return;
            }
          }
          ++j;
        }
      }
    }
    // The cursor may already sit inside the dead suffix (resume after a
    // ref-cap stop); never move it backward.
    cursor_ = row_base + std::max(j, probe_end);
    if (cursor_ < row_base + stretch) {
      // Popcount-dead suffix of the row stretch (negatives are sorted, so
      // every remaining column in the tile fails the bound).
      prune_to(row_base + stretch, stats);
    }
  }

  [[nodiscard]] bool scalar_survives(const std::uint64_t* pos_row,
                                     std::uint64_t j_abs, std::size_t stride,
                                     std::uint64_t max_union) const {
    const std::uint64_t* neg =
        t_->neg_words_.data() + static_cast<std::size_t>(j_abs) * stride;
    std::uint64_t count = 0;
    for (std::size_t w = 0; w < stride; ++w) {
      count += static_cast<std::uint64_t>(std::popcount(pos_row[w] | neg[w]));
    }
    return count <= max_union;
  }

  /// Exact-support computation and ref emission for a pre-test survivor.
  /// Entries shared by both columns may cancel in the combination; the
  /// candidate is dropped if its exact support is empty (mirror columns)
  /// or still larger than rank + 1 (nullity >= 2).
  void emit(std::uint64_t i, std::uint64_t j_abs,
            std::vector<CandidateRef<Support>>& out) {
    const std::size_t stride = t_->stride_;
    const auto& columns = *t_->columns_;
    const std::uint32_t pos_col =
        t_->pos_col_[static_cast<std::size_t>(i)];
    const std::uint32_t neg_col =
        t_->neg_col_[static_cast<std::size_t>(j_abs)];
    const std::uint64_t* pi =
        t_->pos_words_.data() + static_cast<std::size_t>(i) * stride;
    const std::uint64_t* nj =
        t_->neg_words_.data() + static_cast<std::size_t>(j_abs) * stride;
    const auto& u = columns[pos_col];
    const auto& v = columns[neg_col];
    const std::size_t row = t_->row_;

    // Survivor supports are computed word-wise on the stack (the generic
    // bitset operators would heap-allocate temporaries per survivor).
    constexpr std::size_t kMaxStackWords = 64;  // up to 4096 reactions
    ELMO_REQUIRE(stride <= kMaxStackWords,
                 "network too wide for the stack support buffer");
    std::uint64_t union_words[kMaxStackWords];

    const Scalar a = -v.values[row];
    const Scalar b = u.values[row];
    std::size_t size = 0;
    for (std::size_t w = 0; w < stride; ++w) {
      std::uint64_t uw = pi[w] | nj[w];
      std::uint64_t both = pi[w] & nj[w];
      if (row / 64 == w) {
        const std::uint64_t row_bit = 1ULL << (row % 64);
        uw &= ~row_bit;
        both &= ~row_bit;
      }
      while (both) {
        const std::size_t idx =
            w * 64 + static_cast<std::size_t>(std::countr_zero(both));
        both &= both - 1;
        if (scalar_is_zero(a * u.values[idx] + b * v.values[idx]))
          uw &= ~(1ULL << (idx % 64));
      }
      union_words[w] = uw;
      size += static_cast<std::size_t>(std::popcount(uw));
    }
    if (size == 0 || size > t_->accept_cap_) return;

    Support support;
    if constexpr (std::is_same_v<Support, Bitset64>) {
      support = Bitset64(union_words[0]);
    } else {
      auto words = slab_.acquire();
      words.assign(union_words, union_words + stride);
      support = Support::from_words(std::move(words));
    }
    out.push_back(CandidateRef<Support>{std::move(support), pos_col, neg_col});
  }

  const PairGenTables<Scalar, Support>* t_;
  std::uint64_t cursor_;
  std::uint64_t end_;
  SupportSlab<Support> slab_;
};

}  // namespace elmo
