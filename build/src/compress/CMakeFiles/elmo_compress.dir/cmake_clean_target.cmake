file(REMOVE_RECURSE
  "libelmo_compress.a"
)
