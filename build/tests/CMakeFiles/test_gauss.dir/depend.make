# Empty dependencies file for test_gauss.
# This may be replaced when dependencies are built.
