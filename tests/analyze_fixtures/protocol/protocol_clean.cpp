// Clean counterpart for the communication-protocol pass.  Paired tags,
// rank-guarded roles, uniform collectives, and one deliberate
// analyze:protocol-ok escape.  Must stay silent.  Never compiled — only
// analyzed.  Tags (910, 911) are disjoint from protocol_bad.cpp's: the
// pairing rules match project-wide.
namespace fixture_proto_clean {

struct Payload {};

struct Communicator {
  int rank() const;
  void send(int dst, int tag, const Payload& p);
  Payload recv(int src, int tag);
  void barrier();
  void all_gather(const Payload& p);
};

// Master/worker exchange: the send is pinned to the rank the recv names
// as its source, the recv sits in the complementary branch (rank-guarded,
// so no recv-before-send symmetry), and the collectives run unconditionally
// on every rank.
inline void exchange(Communicator& comm, const Payload& p) {
  const int rank = comm.rank();
  if (rank == 0) {
    comm.send(1, 910, p);
  } else {
    comm.recv(0, 910);
  }
  comm.barrier();
  comm.all_gather(p);
}

// A deliberately unpaired send: the message is drained by an external
// harness this analysis cannot see.  The escape keeps it silent.
inline void harness_feed(Communicator& comm, const Payload& p) {
  // analyze:protocol-ok — consumed by the out-of-tree test harness
  comm.send(2, 911, p);
}

}  // namespace fixture_proto_clean
