// Writers for computed EFM sets.
#pragma once

#include <string>
#include <vector>

#include "bigint/bigint.hpp"

namespace elmo {

/// Tab-separated matrix like the paper's Eq (7): one row per reaction, one
/// column per mode, with reaction names as the first column.
std::string efms_to_text(const std::vector<std::vector<BigInt>>& modes,
                         const std::vector<std::string>& reaction_names);

/// CSV with a header row of reaction names and one row per mode.
std::string efms_to_csv(const std::vector<std::vector<BigInt>>& modes,
                        const std::vector<std::string>& reaction_names);

}  // namespace elmo
