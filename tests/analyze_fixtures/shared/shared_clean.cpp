// Clean counterpart for the shared-state concurrency pass: every
// mutation inside a concurrent body carries one of the recognized
// excuses.  Must stay silent.  Never compiled — only analyzed.
#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

namespace fixture {

std::atomic<long> g_hits{0};
long g_guarded = 0;
std::mutex g_mutex;

void parallel_for_dynamic(int lanes, void (*fn)(int));

struct Worker {
  std::atomic<long> done_{0};
  long queued_ = 0;
  std::mutex mutex_;

  void pump() {
    auto body = [this](int t) {
      done_ += t;  // atomic member: silent
      std::lock_guard<std::mutex> lock(mutex_);
      queued_ += 1;  // guarded member: silent
    };
    parallel_for_dynamic(2, body);
  }
};

inline void lanes() {
  std::vector<long> partial(4, 0);
  auto lane = [&](int t) {
    g_hits += 1;  // atomic global: silent
    {
      std::lock_guard<std::mutex> lock(g_mutex);
      g_guarded += t;  // guarded global: silent
    }
    partial[t] = t;  // analyze:shared-ok — per-lane disjoint slot
    long local = 0;
    local += t;  // lane-local: silent
  };
  parallel_for_dynamic(4, lane);
}

}  // namespace fixture
