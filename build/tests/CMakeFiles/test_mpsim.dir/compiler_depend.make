# Empty compiler generated dependencies file for test_mpsim.
# This may be replaced when dependencies are built.
