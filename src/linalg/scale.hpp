// Rescaling rational vectors to primitive integer vectors.
//
// EFM columns are rays: any positive scalar multiple represents the same
// mode.  The canonical representative used throughout elmo is the integer
// vector with gcd 1 (and a sign convention fixed by the caller).
#pragma once

#include <vector>

#include "bigint/rational.hpp"

namespace elmo {

/// Convert a rational vector to the unique primitive integer vector that is
/// a positive multiple of it: multiply by lcm(denominators), divide by
/// gcd(numerators).  The zero vector maps to the zero vector.
template <typename Int>
std::vector<Int> to_primitive_integer(const std::vector<Rational<Int>>& v) {
  const Int one = scalar_from_i64<Int>(1);
  // lcm of denominators.
  Int lcm = one;
  for (const auto& x : v) {
    if (x.is_zero()) continue;
    Int g = scalar_gcd(lcm, x.den());
    lcm = scalar_exact_div(lcm, g) * x.den();
  }
  // Scale and accumulate gcd of results.
  std::vector<Int> out;
  out.reserve(v.size());
  Int g = scalar_from_i64<Int>(0);
  for (const auto& x : v) {
    Int scaled = x.num() * scalar_exact_div(lcm, x.den());
    g = scalar_gcd(g, scaled);
    out.push_back(std::move(scaled));
  }
  if (!scalar_is_zero(g) && !(g == one)) {
    for (auto& value : out) value = scalar_exact_div(value, g);
  }
  return out;
}

/// Divide an integer vector by the gcd of its entries (no-op for zero or
/// already-primitive vectors).  Returns the gcd that was divided out.
template <typename Int>
Int make_primitive(std::vector<Int>& v) {
  Int g = scalar_from_i64<Int>(0);
  for (const auto& x : v) {
    g = scalar_gcd(g, x);
    if (g == scalar_from_i64<Int>(1)) return g;
  }
  if (scalar_is_zero(g) || g == scalar_from_i64<Int>(1)) return g;
  for (auto& x : v) x = scalar_exact_div(x, g);
  return g;
}

/// Specialisation of make_primitive for the double kernel: normalise by the
/// largest absolute entry to keep magnitudes near 1 (no gcd exists).
inline double make_primitive(std::vector<double>& v) {
  double max_abs = 0.0;
  for (double x : v) max_abs = std::max(max_abs, std::fabs(x));
  if (max_abs == 0.0) return 0.0;
  for (auto& x : v) x /= max_abs;
  return max_abs;
}

}  // namespace elmo
