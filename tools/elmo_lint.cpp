// elmo_lint — compatibility shim over elmo_analyze.
//
// The original standalone checker grew into the multi-pass analyzer in
// tools/analyze/ (include graph, lock discipline, overflow boundary, plus
// these lint rules as pass 4).  This shim keeps the historical interface
// alive — `elmo_lint FILE...`, findings on stderr as `file:line: [rule]
// message`, exit 0/1/2 — by delegating to `elmo_analyze --pass=lint` in
// its lint-compat output mode.  Existing lint:allow(<rule>) annotations
// keep working unchanged: the analyzer reads the same tags.
#include <cstdio>
#include <string>
#include <vector>

#include "analyze/analyzer.hpp"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: elmo_lint FILE...\n");
    return 2;
  }
  std::vector<std::string> args = {"elmo_lint", "--pass=lint",
                                   "--lint-compat"};
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  std::vector<char*> argv2;
  argv2.reserve(args.size());
  for (std::string& a : args) argv2.push_back(a.data());
  return elmo_analyze::run_cli(static_cast<int>(argv2.size()), argv2.data());
}
