// Chunked parallel loop over an index range on a ThreadPool.
#pragma once

#include <vector>

#include "obs/suppressed.hpp"
#include "parallel/partitioner.hpp"
#include "parallel/thread_pool.hpp"

namespace elmo {

/// Apply body(begin, end) over near-equal chunks of [0, total) in parallel.
/// Exceptions from any chunk propagate (first one wins); remaining chunks
/// still run to completion.
template <typename Body>
void parallel_for_chunks(ThreadPool& pool, std::uint64_t total,
                         const Body& body) {
  const int workers = static_cast<int>(pool.size());
  if (total == 0) return;
  if (workers == 1) {
    body(std::uint64_t{0}, total);
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    PairRange range = pair_slice(total, w, workers);
    if (range.count() == 0) continue;
    futures.push_back(
        pool.submit([&body, range] { body(range.begin, range.end); }));
  }
  std::exception_ptr first;
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first) {
        first = std::current_exception();
      } else {
        // Secondary failure: only one exception can propagate, but the
        // others are recorded, never silently dropped.
        obs::record_suppressed_exception("parallel_for_chunks");
      }
    }
  }
  if (first) std::rethrow_exception(first);
}

}  // namespace elmo
