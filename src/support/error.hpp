// Exception hierarchy used across the elmo library.
//
// All errors thrown by elmo derive from elmo::Error so callers can catch a
// single type at the API boundary.  Specific subclasses exist for conditions
// a caller may want to handle programmatically (arithmetic overflow triggers
// the big-integer fallback; memory-budget exhaustion triggers
// divide-and-conquer re-splitting, mirroring the paper's Network II story).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace elmo {

/// Base class for all exceptions thrown by the elmo library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Checked 64-bit arithmetic overflowed; retry the computation with BigInt.
class OverflowError : public Error {
 public:
  explicit OverflowError(const std::string& what) : Error(what) {}
};

/// A reaction-equation or network file could not be parsed.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

/// A checksummed payload failed CRC verification: the bytes were damaged in
/// flight (or by injected corruption) and must not be decoded.  Derives from
/// ParseError because it is detected at the decoding layer, but callers with
/// a retry policy treat it as a transient, retryable fault.
class CorruptPayloadError : public ParseError {
 public:
  CorruptPayloadError(const std::string& what, std::uint32_t expected,
                      std::uint32_t actual)
      : ParseError(what), expected_crc(expected), actual_crc(actual) {}

  std::uint32_t expected_crc;
  std::uint32_t actual_crc;
};

/// Matrix/vector dimensions do not conform.
class DimensionError : public Error {
 public:
  explicit DimensionError(const std::string& what) : Error(what) {}
};

/// A caller-supplied argument is invalid (bad reaction id, bad subset, ...).
class InvalidArgumentError : public Error {
 public:
  explicit InvalidArgumentError(const std::string& what) : Error(what) {}
};

/// A simulated compute rank exceeded its configured memory budget.  This is
/// the failure mode that aborted the paper's Algorithm-2 run on Network II
/// at iteration 59 and motivates the divide-and-conquer split.
class MemoryBudgetError : public Error {
 public:
  MemoryBudgetError(const std::string& what, std::size_t requested,
                    std::size_t budget)
      : Error(what), requested_bytes(requested), budget_bytes(budget) {}

  std::size_t requested_bytes;
  std::size_t budget_bytes;
};

/// A divide-and-conquer subset kept failing after every attempt its
/// RetryPolicy allowed; carries the subset identity, the attempt count and
/// the final underlying failure for diagnostics.
class RetryExhaustedError : public Error {
 public:
  RetryExhaustedError(const std::string& label, int attempt_count,
                      const std::string& last_failure)
      : Error("subset [" + label + "] failed after " +
              std::to_string(attempt_count) +
              " attempt(s); last error: " + last_failure),
        subset_label(label),
        attempts(attempt_count),
        last_error(last_failure) {}

  std::string subset_label;
  int attempts;
  std::string last_error;
};

/// A real process resource was exhausted: an allocation failed with
/// std::bad_alloc, or the MemoryGovernor's admission check refused to start
/// an iteration whose projected footprint would bust `--mem-limit`.  Unlike
/// MemoryBudgetError (a *simulated* per-rank budget used to reproduce the
/// paper's Network-II abort), ResourceError reports genuine pressure on the
/// host.  It is classified as retryable-with-degradation: the retry ladder
/// responds by halving the candidate tile size, forcing spill-always mode,
/// and finally falling back to an ungoverned serial attempt.
class ResourceError : public Error {
 public:
  ResourceError(const std::string& what, std::size_t requested,
                std::size_t limit)
      : Error(what), requested_bytes(requested), limit_bytes(limit) {}

  std::size_t requested_bytes;  // 0 when unknown (e.g. raw bad_alloc)
  std::size_t limit_bytes;      // 0 when no --mem-limit was configured
};

/// Cooperative cancellation: a SIGINT/SIGTERM handler (or a test) requested
/// shutdown and the solver honoured it at the next iteration boundary.
/// Never retried — it propagates to the API boundary, where the driver
/// flushes a resumable checkpoint plus a final report and exits with the
/// distinct resumable exit code so the run can continue under `--resume`.
class CancelledError : public Error {
 public:
  explicit CancelledError(const std::string& what) : Error(what) {}
};

/// A watchdog hard deadline expired: a subset solve (or a wedged/straggling
/// rank inside it) made no progress within its allotted wall-clock budget.
/// The combined driver treats this like memory exhaustion — re-queue the
/// subset with an extra split so each half fits its deadline.
class DeadlineExceededError : public Error {
 public:
  DeadlineExceededError(const std::string& what, double deadline_secs)
      : Error(what), deadline_seconds(deadline_secs) {}

  double deadline_seconds;
};

/// Internal invariant violated; indicates a bug in elmo itself.
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

}  // namespace elmo
