file(REMOVE_RECURSE
  "CMakeFiles/knockout_study.dir/knockout_study.cpp.o"
  "CMakeFiles/knockout_study.dir/knockout_study.cpp.o.d"
  "knockout_study"
  "knockout_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knockout_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
