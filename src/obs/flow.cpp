#include "obs/flow.hpp"

#include <algorithm>
#include <cstddef>

#include "obs/report.hpp"
#include "obs/trace.hpp"

namespace elmo::obs {

namespace {

double sum_phase_us(const std::map<std::string, double>& phase_seconds) {
  double total = 0.0;
  for (const auto& [name, secs] : phase_seconds) total += secs;
  return total * 1e6;
}

FlowRank make_flow_rank(const RankEntry& entry) {
  FlowRank out;
  out.rank = entry.rank;
  out.busy_us = sum_phase_us(entry.phase_seconds);
  out.wait_data_us = static_cast<double>(entry.wait_data_us);
  out.wait_barrier_us = static_cast<double>(entry.wait_barrier_us);
  out.wait_straggler_us = static_cast<double>(entry.wait_straggler_us);
  out.max_queue_depth = entry.max_queue_depth;
  const double waits =
      out.wait_data_us + out.wait_barrier_us + out.wait_straggler_us;
  const double denom = out.busy_us + waits;
  out.utilization = denom > 0.0 ? out.busy_us / denom : 0.0;
  return out;
}

double busy_imbalance_pct(const std::vector<double>& busy_us) {
  double max_busy = 0.0;
  double sum_busy = 0.0;
  for (double b : busy_us) {
    max_busy = std::max(max_busy, b);
    sum_busy += b;
  }
  if (max_busy <= 0.0 || busy_us.empty()) return 0.0;
  const double mean = sum_busy / static_cast<double>(busy_us.size());
  return (max_busy - mean) / max_busy * 100.0;
}

/// The per-rank section.  Top-level rank entries when the run produced
/// them; otherwise (combined runs report ranks per subset) the subsets'
/// rank tables are folded together by rank index.
std::vector<FlowRank> collect_ranks(const SolveReport& report) {
  std::vector<FlowRank> out;
  if (!report.ranks.empty()) {
    out.reserve(report.ranks.size());
    for (const auto& entry : report.ranks) out.push_back(make_flow_rank(entry));
    return out;
  }
  std::map<int, FlowRank> by_rank;
  for (const auto& subset : report.subsets) {
    for (const auto& entry : subset.ranks) {
      const FlowRank part = make_flow_rank(entry);
      FlowRank& acc = by_rank[entry.rank];
      acc.rank = entry.rank;
      acc.busy_us += part.busy_us;
      acc.wait_data_us += part.wait_data_us;
      acc.wait_barrier_us += part.wait_barrier_us;
      acc.wait_straggler_us += part.wait_straggler_us;
      acc.max_queue_depth = std::max(acc.max_queue_depth, part.max_queue_depth);
    }
  }
  out.reserve(by_rank.size());
  for (auto& [rank, acc] : by_rank) {
    const double waits =
        acc.wait_data_us + acc.wait_barrier_us + acc.wait_straggler_us;
    const double denom = acc.busy_us + waits;
    acc.utilization = denom > 0.0 ? acc.busy_us / denom : 0.0;
    out.push_back(acc);
  }
  return out;
}

FlowSubset make_flow_subset(const SubsetEntry& subset) {
  FlowSubset out;
  out.label = subset.label;
  std::vector<double> busy;
  busy.reserve(subset.ranks.size());
  double max_busy = 0.0;
  for (const auto& entry : subset.ranks) {
    const double busy_us = sum_phase_us(entry.phase_seconds);
    const double chain =
        busy_us + static_cast<double>(entry.wait_data_us +
                                      entry.wait_barrier_us +
                                      entry.wait_straggler_us);
    out.critical_path_us = std::max(out.critical_path_us, chain);
    busy.push_back(busy_us);
    max_busy = std::max(max_busy, busy_us);
  }
  out.imbalance_pct = busy_imbalance_pct(busy);
  out.utilization.reserve(busy.size());
  for (double b : busy)
    out.utilization.push_back(max_busy > 0.0 ? b / max_busy : 0.0);
  return out;
}

struct Span {
  const TraceEvent* event;
  double end;
};

/// Cross-rank critical path through the iteration DAG: within each subset
/// window (or the whole run), iterations are aligned by their per-lane
/// ordinal and the slowest lane's span of every round joins the path.  The
/// chosen span's nested phase spans attribute the path time; wait-class
/// spans are reported alongside (they lie inside their enclosing phase).
void analyze_critical_path(const std::vector<TraceEvent>& events,
                           FlowSummary& out) {
  std::map<std::uint32_t, std::vector<Span>> lanes;
  std::vector<Span> subset_spans;
  double first_ts = 0.0;
  double last_end = 0.0;
  bool any_span = false;
  for (const auto& event : events) {
    if (event.phase != 'X') continue;
    const Span span{&event, event.ts_us + event.dur_us};
    if (!any_span || event.ts_us < first_ts) first_ts = event.ts_us;
    if (!any_span || span.end > last_end) last_end = span.end;
    any_span = true;
    lanes[event.tid].push_back(span);
    if (event.name == "subset") subset_spans.push_back(span);
  }
  if (!any_span) return;
  out.wall_us = last_end - first_ts;

  for (auto& [tid, spans] : lanes) {
    std::stable_sort(spans.begin(), spans.end(),
                     [](const Span& a, const Span& b) {
                       return a.event->ts_us < b.event->ts_us;
                     });
  }
  std::stable_sort(subset_spans.begin(), subset_spans.end(),
                   [](const Span& a, const Span& b) {
                     return a.event->ts_us < b.event->ts_us;
                   });

  // Group iteration spans per lane per window; windows are the subset
  // spans when present (combined), else the whole run.
  struct Window {
    double start;
    double end;
  };
  std::vector<Window> windows;
  if (subset_spans.empty()) {
    windows.push_back({first_ts, last_end});
  } else {
    for (const Span& span : subset_spans)
      windows.push_back({span.event->ts_us, span.end});
  }

  // Attribution: nested spans of the on-path iteration span on its lane.
  auto attribute = [&](std::uint32_t tid, const Span& chosen) {
    double phase_total = 0.0;
    for (const Span& nested : lanes[tid]) {
      if (nested.event == chosen.event) continue;
      if (nested.event->ts_us < chosen.event->ts_us ||
          nested.end > chosen.end) {
        continue;
      }
      const std::string category = nested.event->category;
      if (category == "phase") {
        out.critical_path_phase_us[nested.event->name] +=
            nested.event->dur_us;
        phase_total += nested.event->dur_us;
      } else if (category == "wait") {
        out.critical_path_phase_us[nested.event->name] +=
            nested.event->dur_us;
      }
    }
    const double other = chosen.event->dur_us - phase_total;
    if (other > 0.0) out.critical_path_phase_us["other"] += other;
  };

  bool any_iteration = false;
  for (const Window& window : windows) {
    // Per-lane iteration spans inside this window, already time-sorted.
    std::map<std::uint32_t, std::vector<Span>> rounds;
    std::size_t max_rounds = 0;
    for (const auto& [tid, spans] : lanes) {
      for (const Span& span : spans) {
        if (span.event->name != "iteration") continue;
        if (span.event->ts_us < window.start || span.end > window.end)
          continue;
        rounds[tid].push_back(span);
      }
      auto it = rounds.find(tid);
      if (it != rounds.end())
        max_rounds = std::max(max_rounds, it->second.size());
    }
    for (std::size_t k = 0; k < max_rounds; ++k) {
      const Span* slowest = nullptr;
      std::uint32_t slowest_tid = 0;
      for (const auto& [tid, spans] : rounds) {
        if (k >= spans.size()) continue;
        if (slowest == nullptr ||
            spans[k].event->dur_us > slowest->event->dur_us) {
          slowest = &spans[k];
          slowest_tid = tid;
        }
      }
      if (slowest == nullptr) continue;
      any_iteration = true;
      out.critical_path_us += slowest->event->dur_us;
      ++out.critical_path_steps;
      attribute(slowest_tid, *slowest);
    }
  }

  // No iteration spans recorded (e.g. a trace of pure collectives): fall
  // back to the busiest lane's phase time as the path.
  if (!any_iteration) {
    for (const auto& [tid, spans] : lanes) {
      double lane_total = 0.0;
      std::uint64_t lane_steps = 0;
      for (const Span& span : spans) {
        if (std::string(span.event->category) != "phase") continue;
        lane_total += span.event->dur_us;
        ++lane_steps;
      }
      if (lane_total > out.critical_path_us) {
        out.critical_path_us = lane_total;
        out.critical_path_steps = lane_steps;
      }
    }
  }
}

void analyze_flow_pairing(const std::vector<TraceEvent>& events,
                          FlowSummary& out) {
  std::map<std::uint64_t, std::pair<bool, bool>> flows;  // id -> (s, f)
  for (const auto& event : events) {
    if (event.phase == 's') flows[event.id].first = true;
    if (event.phase == 'f') flows[event.id].second = true;
  }
  for (const auto& [id, seen] : flows) {
    if (!seen.first) continue;
    ++out.flows_emitted;
    if (seen.second) ++out.flows_matched;
  }
}

}  // namespace

FlowSummary analyze_flow(const SolveReport& report,
                         const std::vector<TraceEvent>* events) {
  FlowSummary out;
  out.ranks = collect_ranks(report);
  {
    std::vector<double> busy;
    busy.reserve(out.ranks.size());
    for (const auto& rank : out.ranks) busy.push_back(rank.busy_us);
    out.imbalance_pct = busy_imbalance_pct(busy);
  }
  out.subsets.reserve(report.subsets.size());
  for (const auto& subset : report.subsets)
    out.subsets.push_back(make_flow_subset(subset));

  auto total = report.totals.find("pairs_probed");
  if (total != report.totals.end()) out.actual_pairs = total->second;
  out.actual_efms = report.num_efms;

  if (events != nullptr) {
    out.traced = true;
    analyze_critical_path(*events, out);
    analyze_flow_pairing(*events, out);
  }
  return out;
}

JsonValue FlowSummary::to_json() const {
  JsonValue out = JsonValue::object();
  out.set("traced", JsonValue(traced));
  out.set("critical_path_us", JsonValue(critical_path_us));
  out.set("critical_path_steps", JsonValue(critical_path_steps));
  out.set("wall_us", JsonValue(wall_us));
  JsonValue phases = JsonValue::object();
  for (const auto& [name, us] : critical_path_phase_us)
    phases.set(name, JsonValue(us));
  out.set("critical_path_phase_us", std::move(phases));
  out.set("flows_emitted", JsonValue(flows_emitted));
  out.set("flows_matched", JsonValue(flows_matched));
  out.set("imbalance_pct", JsonValue(imbalance_pct));

  JsonValue ranks_json = JsonValue::array();
  for (const auto& rank : ranks) {
    JsonValue entry = JsonValue::object();
    entry.set("rank", JsonValue(rank.rank));
    entry.set("busy_us", JsonValue(rank.busy_us));
    entry.set("wait_data_us", JsonValue(rank.wait_data_us));
    entry.set("wait_barrier_us", JsonValue(rank.wait_barrier_us));
    entry.set("wait_straggler_us", JsonValue(rank.wait_straggler_us));
    entry.set("utilization", JsonValue(rank.utilization));
    entry.set("max_queue_depth", JsonValue(rank.max_queue_depth));
    ranks_json.push_back(std::move(entry));
  }
  out.set("ranks", std::move(ranks_json));

  JsonValue subsets_json = JsonValue::array();
  for (const auto& subset : subsets) {
    JsonValue entry = JsonValue::object();
    entry.set("label", JsonValue(subset.label));
    entry.set("critical_path_us", JsonValue(subset.critical_path_us));
    entry.set("imbalance_pct", JsonValue(subset.imbalance_pct));
    JsonValue util = JsonValue::array();
    for (double u : subset.utilization) util.push_back(JsonValue(u));
    entry.set("utilization", std::move(util));
    subsets_json.push_back(std::move(entry));
  }
  out.set("subsets", std::move(subsets_json));

  JsonValue estimate = JsonValue::object();
  estimate.set("estimated_pairs", JsonValue(estimated_pairs));
  estimate.set("actual_pairs", JsonValue(actual_pairs));
  estimate.set("estimated_efms", JsonValue(estimated_efms));
  estimate.set("actual_efms", JsonValue(actual_efms));
  out.set("estimate", std::move(estimate));
  return out;
}

}  // namespace elmo::obs
