// Network compression (the paper's preprocessing step).
//
// Before the Nullspace Algorithm runs, the metabolic network is reduced to
// an equivalent smaller one (paper §II.C, citing Gagneur & Klamt 2004 and
// Terzer & Stelling 2008): the reduced network has the same elementary flux
// modes up to an exact linear reconstruction.  Three operations are applied
// to a fixpoint:
//
//   1. forced-zero removal — an internal metabolite all of whose reactions
//      are irreversible and on the same side (never producible or never
//      consumable), or which is touched by exactly one reaction, forces all
//      its reactions to zero flux; the columns are removed,
//   2. two-reaction coupling — an internal metabolite touched by exactly two
//      reactions couples them (v_b = -(a/b) v_a); the columns are merged and
//      the metabolite disappears (this is how the toy network's r9 merges
//      into r3, and why Eq (7) re-adds the r9 row at the end),
//   3. redundant-row removal — metabolite rows linearly dependent on the
//      others (conservation relations) are dropped.
//
// Every operation updates a rational reconstruction matrix E so that a flux
// vector v on the reduced reactions expands to E v on the original ones.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "bigint/bigint.hpp"
#include "bigint/rational.hpp"
#include "linalg/matrix.hpp"
#include "network/network.hpp"

namespace elmo {

struct CompressionOptions {
  bool remove_forced_zero = true;
  bool couple_two_reaction_metabolites = true;
  /// Kernel-based blocked-reaction removal and full-coupling merges
  /// (Gagneur & Klamt 2004); subsumes the structural rules but costs a
  /// nullspace computation per sweep.
  bool kernel_coupling = true;
  bool drop_redundant_rows = true;
};

struct CompressionStats {
  std::size_t forced_zero_reactions = 0;
  std::size_t merged_reactions = 0;
  std::size_t removed_metabolites = 0;
  std::size_t redundant_rows = 0;
};

/// A compressed EFM problem plus everything needed to map results back.
struct CompressedProblem {
  /// Reduced stoichiometry matrix (m_red x q_red), integer, each column
  /// primitive (gcd of entries is 1).
  Matrix<BigInt> stoichiometry;
  /// Reversibility flag per reduced reaction.
  std::vector<bool> reversible;
  /// Name of the representative original reaction per reduced column.
  std::vector<std::string> reaction_names;
  /// Name per surviving metabolite row.
  std::vector<std::string> metabolite_names;

  /// Original reaction space.
  std::vector<std::string> original_reaction_names;
  std::vector<bool> original_reversible;
  /// q_orig x q_red: original fluxes = reconstruction * reduced fluxes.
  Matrix<BigRational> reconstruction;

  CompressionStats stats;

  [[nodiscard]] std::size_t num_reactions() const {
    return stoichiometry.cols();
  }
  [[nodiscard]] std::size_t num_metabolites() const {
    return stoichiometry.rows();
  }

  /// Reduced column index whose flux determines the named original
  /// reaction's flux, or nullopt if the reaction was removed as forced-zero.
  /// For a merged (non-representative) reaction this is the representative's
  /// column — its flux is a fixed nonzero multiple, so zero/nonzero
  /// partitioning on either is equivalent.
  [[nodiscard]] std::optional<std::size_t> column_for(
      const std::string& original_reaction_name) const;

  /// Expand a reduced-space flux vector to the original reaction space as a
  /// primitive integer vector.
  [[nodiscard]] std::vector<BigInt> expand(
      const std::vector<BigInt>& reduced_flux) const;
};

/// Compress a network.  The reduced problem has exactly the same EFM set as
/// `network` under CompressedProblem::expand.
CompressedProblem compress(const Network& network,
                           const CompressionOptions& options = {});

/// Trivial (identity) compression: the problem is the network unchanged.
/// Used by ablation benches to measure what preprocessing buys.
CompressedProblem no_compression(const Network& network);

}  // namespace elmo
