file(REMOVE_RECURSE
  "CMakeFiles/test_mpsim.dir/test_mpsim.cpp.o"
  "CMakeFiles/test_mpsim.dir/test_mpsim.cpp.o.d"
  "test_mpsim"
  "test_mpsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
