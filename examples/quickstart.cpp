// Quickstart: compute the elementary flux modes of the paper's toy network
// (Fig. 1) and print them in the layout of Eq (7).
//
//   $ ./examples/quickstart
//
// Demonstrates the minimal API surface: build (or parse) a Network, call
// compute_efms, read the result.
#include <cstdio>
#include <string>

#include "core/api.hpp"
#include "io/efm_writer.hpp"
#include "models/toy.hpp"
#include "network/parser.hpp"

int main() {
  using namespace elmo;

  // Networks can be built programmatically (models::toy_network()) or
  // parsed from the reaction-list text format:
  Network network = parse_network(R"(
    # The toy network of Fig. 1: five internal metabolites, nine reactions.
    r1  : Aext => A
    r2  : A => C
    r3  : C => D + P
    r4  : P => Pext
    r5  : A => B
    r6r : B <=> C
    r7  : B => 2 P
    r8r : B <=> Bext
    r9  : D => Dext
  )");

  EfmResult result = compute_efms(network);

  std::printf("network: %zu internal metabolites, %zu reactions\n",
              network.num_internal_metabolites(), network.num_reactions());
  std::printf("reduced: %zu x %zu after compression\n",
              result.reduced_metabolites, result.reduced_reactions);
  std::printf("elementary flux modes: %zu (expected 8, Eq (7))\n\n",
              result.num_modes());

  // One row per reaction, one column per mode — the paper's EFM matrix.
  std::fputs(efms_to_text(result.modes, result.reaction_names).c_str(),
             stdout);

  std::printf("\ncandidate pairs probed: %llu, rank tests: %llu\n",
              static_cast<unsigned long long>(result.stats.total_pairs_probed),
              static_cast<unsigned long long>(result.stats.total_rank_tests));
  return result.num_modes() == 8 ? 0 : 1;
}
