#include "models/random_network.hpp"

#include <string>

#include "network/network.hpp"
#include "support/random.hpp"

namespace elmo::models {

Network random_network(const RandomNetworkSpec& spec) {
  Rng rng(spec.seed);
  Network net;

  for (std::size_t i = 0; i < spec.num_metabolites; ++i)
    net.add_metabolite("M" + std::to_string(i), /*external=*/false);
  net.add_metabolite("Xin", /*external=*/true);
  net.add_metabolite("Xout", /*external=*/true);

  std::size_t reaction_counter = 0;
  auto next_name = [&] { return "R" + std::to_string(reaction_counter++); };

  // Backbone: Xin -> M0 -> M1 -> ... -> M(n-1) -> Xout keeps every
  // metabolite reachable so the network is rarely entirely dead.
  net.add_reaction(next_name(), false, {{"Xin", -1}, {"M0", 1}});
  for (std::size_t i = 0; i + 1 < spec.num_metabolites; ++i) {
    net.add_reaction(next_name(), rng.chance(spec.reversible_probability),
                     {{"M" + std::to_string(i), -1},
                      {"M" + std::to_string(i + 1), 1}});
  }
  net.add_reaction(
      next_name(), false,
      {{"M" + std::to_string(spec.num_metabolites - 1), -1}, {"Xout", 1}});

  // Random internal reactions: 1-2 substrates, 1-2 products, distinct.
  for (std::size_t k = 0; k < spec.num_extra_reactions; ++k) {
    std::vector<std::pair<std::string, std::int64_t>> terms;
    std::size_t num_subs = 1 + rng.below(2);
    std::size_t num_prods = 1 + rng.below(2);
    std::vector<bool> used(spec.num_metabolites, false);
    auto pick_unused = [&]() -> std::size_t {
      for (int attempts = 0; attempts < 32; ++attempts) {
        std::size_t m = rng.below(spec.num_metabolites);
        if (!used[m]) {
          used[m] = true;
          return m;
        }
      }
      return rng.below(spec.num_metabolites);
    };
    for (std::size_t s = 0; s < num_subs; ++s)
      terms.emplace_back("M" + std::to_string(pick_unused()),
                         -rng.range(1, spec.max_coefficient));
    for (std::size_t p = 0; p < num_prods; ++p)
      terms.emplace_back("M" + std::to_string(pick_unused()),
                         rng.range(1, spec.max_coefficient));
    net.add_reaction(next_name(), rng.chance(spec.reversible_probability),
                     terms);
  }

  // Random exchanges.
  for (std::size_t k = 0; k < spec.num_exchanges; ++k) {
    std::size_t m = rng.below(spec.num_metabolites);
    bool import = rng.chance(0.5);
    std::vector<std::pair<std::string, std::int64_t>> terms;
    if (import) {
      terms = {{"Xin", -1}, {"M" + std::to_string(m), 1}};
    } else {
      terms = {{"M" + std::to_string(m), -1}, {"Xout", 1}};
    }
    net.add_reaction(next_name(), rng.chance(spec.reversible_probability),
                     terms);
  }
  return net;
}

}  // namespace elmo::models
