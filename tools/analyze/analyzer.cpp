#include "analyze/analyzer.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <set>
#include <string>
#include <vector>

namespace elmo_analyze {

namespace fs = std::filesystem;

std::size_t Project::find(const std::string& path) const {
  for (std::size_t i = 0; i < files.size(); ++i) {
    if (files[i].path == path) return i;
  }
  return std::string::npos;
}

namespace {

bool has_suffix(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

/// Path of `p` relative to `root` when `p` lies under it, else `p`
/// unchanged; always forward slashes.
std::string relativize(const fs::path& p, const fs::path& root) {
  std::error_code ec;
  fs::path rel = fs::relative(p, root, ec);
  std::string out =
      (ec || rel.empty() || *rel.begin() == "..") ? p.generic_string()
                                                  : rel.generic_string();
  if (out.rfind("./", 0) == 0) out = out.substr(2);
  return out;
}

void usage() {
  std::fprintf(
      stderr,
      "usage: elmo_analyze [options] [FILE...]\n"
      "  --root=DIR            project root (default .); without FILE\n"
      "                        arguments, analyzes every *.hpp/*.cpp under\n"
      "                        DIR/{src,tools,bench,examples}\n"
      "  --pass=LIST           comma list of include,lock,overflow,lint,\n"
      "                        shared,errpath,determinism,protocol,typestate\n"
      "                        (default: all)\n"
      "  --baseline=FILE       suppress finding keys listed in FILE; a\n"
      "                        full-tree all-pass run fails on entries that\n"
      "                        no longer fire (baseline:stale)\n"
      "  --write-baseline=FILE write current finding keys as a baseline\n"
      "  --json=FILE           machine-readable findings + summary\n"
      "  --format=FMT          text (default) or sarif: SARIF 2.1.0 on\n"
      "                        stdout for CI annotation upload\n"
      "  --dot=FILE            Graphviz dump of the module include graph\n"
      "  --lockdep-edges=FILE  runtime lockdep edges (\"A -> B\" per line)\n"
      "                        to diff against the static acquisition graph\n"
      "  --tsan-log=FILE       ThreadSanitizer report to cross-check against\n"
      "                        the shared pass (rule shared-unseen)\n"
      "  --flow-log=FILE       Chrome trace (elmo_cli --trace) whose message\n"
      "                        flow events are cross-checked against the\n"
      "                        protocol pass skeleton (rule flow-unseen)\n"
      "exit: 0 clean, 1 non-baselined findings, 2 usage/IO error\n");
}

bool parse_passes(const std::string& list, Options& opts) {
  opts.pass_include = opts.pass_lock = opts.pass_overflow = opts.pass_lint =
      opts.pass_shared = opts.pass_errpath = opts.pass_determinism =
          opts.pass_protocol = opts.pass_typestate = false;
  std::size_t start = 0;
  while (start <= list.size()) {
    std::size_t comma = list.find(',', start);
    const std::string item = list.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (item == "include") {
      opts.pass_include = true;
    } else if (item == "lock") {
      opts.pass_lock = true;
    } else if (item == "overflow") {
      opts.pass_overflow = true;
    } else if (item == "lint") {
      opts.pass_lint = true;
    } else if (item == "shared") {
      opts.pass_shared = true;
    } else if (item == "errpath") {
      opts.pass_errpath = true;
    } else if (item == "determinism") {
      opts.pass_determinism = true;
    } else if (item == "protocol") {
      opts.pass_protocol = true;
    } else if (item == "typestate") {
      opts.pass_typestate = true;
    } else if (item == "all") {
      opts.pass_include = opts.pass_lock = opts.pass_overflow =
          opts.pass_lint = opts.pass_shared = opts.pass_errpath =
              opts.pass_determinism = opts.pass_protocol =
                  opts.pass_typestate = true;
    } else if (!item.empty()) {
      std::fprintf(stderr, "elmo_analyze: unknown pass '%s'\n", item.c_str());
      return false;
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return true;
}

}  // namespace

bool load_project(const Options& opts, Project& project, std::string& error) {
  const fs::path root(opts.root);
  if (!opts.files.empty()) {
    for (const std::string& f : opts.files) {
      SourceFile sf;
      if (!load_source(f, relativize(fs::path(f), root), sf)) {
        error = "cannot open file: " + f;
        return false;
      }
      project.files.push_back(std::move(sf));
    }
    return true;
  }
  const fs::path src = root / "src";
  std::error_code ec;
  if (!fs::is_directory(src, ec)) {
    error = "no src/ directory under root: " + root.generic_string();
    return false;
  }
  std::vector<fs::path> paths;
  // src/ is mandatory; the other trees ride along when present.  tests/
  // is deliberately NOT walked: the analyze fixtures under it seed rule
  // violations on purpose.
  for (const char* tree : {"src", "tools", "bench", "examples"}) {
    const fs::path dir = root / tree;
    if (!fs::is_directory(dir, ec)) continue;
    for (fs::recursive_directory_iterator it(dir, ec), end; it != end;
         it.increment(ec)) {
      if (ec) {
        error = "cannot walk " + dir.generic_string() + ": " + ec.message();
        return false;
      }
      if (!it->is_regular_file()) continue;
      const std::string p = it->path().generic_string();
      if (has_suffix(p, ".hpp") || has_suffix(p, ".cpp")) {
        paths.push_back(it->path());
      }
    }
  }
  std::sort(paths.begin(), paths.end());
  for (const fs::path& p : paths) {
    SourceFile sf;
    if (!load_source(p.string(), relativize(p, root), sf)) {
      error = "cannot open file: " + p.generic_string();
      return false;
    }
    project.files.push_back(std::move(sf));
  }
  return true;
}

int run_cli(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg](const char* prefix) -> std::string {
      return arg.substr(std::strlen(prefix));
    };
    if (arg.rfind("--root=", 0) == 0) {
      opts.root = value("--root=");
    } else if (arg.rfind("--pass=", 0) == 0) {
      if (!parse_passes(value("--pass="), opts)) return 2;
    } else if (arg.rfind("--baseline=", 0) == 0) {
      opts.baseline_path = value("--baseline=");
    } else if (arg.rfind("--write-baseline=", 0) == 0) {
      opts.write_baseline_path = value("--write-baseline=");
    } else if (arg.rfind("--json=", 0) == 0) {
      opts.json_path = value("--json=");
    } else if (arg.rfind("--dot=", 0) == 0) {
      opts.dot_path = value("--dot=");
    } else if (arg.rfind("--lockdep-edges=", 0) == 0) {
      opts.lockdep_edges_path = value("--lockdep-edges=");
    } else if (arg.rfind("--tsan-log=", 0) == 0) {
      opts.tsan_log_path = value("--tsan-log=");
    } else if (arg.rfind("--flow-log=", 0) == 0) {
      opts.flow_log_path = value("--flow-log=");
    } else if (arg.rfind("--format=", 0) == 0) {
      opts.format = value("--format=");
      if (opts.format != "text" && opts.format != "sarif") {
        std::fprintf(stderr, "elmo_analyze: unknown format '%s'\n",
                     opts.format.c_str());
        return 2;
      }
    } else if (arg == "--lint-compat") {
      opts.lint_compat = true;
      opts.tool_name = "elmo_lint";
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "elmo_analyze: unknown option '%s'\n", arg.c_str());
      usage();
      return 2;
    } else {
      opts.files.push_back(arg);
    }
  }

  Project project;
  std::string error;
  if (!load_project(opts, project, error)) {
    std::fprintf(stderr, "%s: %s\n", opts.tool_name.c_str(), error.c_str());
    return 2;
  }

  std::vector<Finding> findings;
  if (opts.pass_include) pass_include(project, opts, findings);
  if (opts.pass_lock) pass_lock(project, opts, findings);
  if (opts.pass_overflow) pass_overflow(project, opts, findings);
  if (opts.pass_lint) pass_lint(project, opts, findings);
  if (opts.pass_shared) pass_shared(project, opts, findings);
  if (opts.pass_errpath) pass_errpath(project, opts, findings);
  if (opts.pass_determinism) pass_determinism(project, opts, findings);
  if (opts.pass_protocol) pass_protocol(project, opts, findings);
  if (opts.pass_typestate) pass_typestate(project, opts, findings);
  std::sort(findings.begin(), findings.end(), finding_less);

  if (!opts.baseline_path.empty()) {
    Baseline baseline;
    if (!baseline.load(opts.baseline_path)) {
      std::fprintf(stderr, "%s: cannot read baseline %s\n",
                   opts.tool_name.c_str(), opts.baseline_path.c_str());
      return 2;
    }
    apply_baseline(baseline, findings);
    // Baseline hygiene: on a full-tree all-pass run every baseline entry
    // must still fire — a stale entry means debt was paid off but the
    // ledger kept the IOU, which would silently mask a regression at the
    // same key.  Partial runs (--pass subset, explicit files) skip the
    // check because entries for the un-run passes would look stale.
    const bool full_run = opts.files.empty() && opts.pass_include &&
                          opts.pass_lock && opts.pass_overflow &&
                          opts.pass_lint && opts.pass_shared &&
                          opts.pass_errpath && opts.pass_determinism &&
                          opts.pass_protocol && opts.pass_typestate;
    if (full_run) {
      std::set<std::string> fired;
      for (const Finding& f : findings) fired.insert(f.key());
      for (const std::string& key : baseline.keys) {
        if (fired.count(key) != 0) continue;
        Finding stale;
        stale.pass = "baseline";
        stale.rule = "stale";
        stale.file = opts.baseline_path;
        stale.line = 0;
        stale.message =
            "baseline entry no longer fires — prune it: " + key;
        findings.push_back(std::move(stale));
      }
      std::sort(findings.begin(), findings.end(), finding_less);
    }
  }
  if (!opts.write_baseline_path.empty()) {
    if (!write_baseline(opts.write_baseline_path, findings)) {
      std::fprintf(stderr, "%s: cannot write baseline %s\n",
                   opts.tool_name.c_str(), opts.write_baseline_path.c_str());
      return 2;
    }
  }
  if (!opts.json_path.empty()) {
    if (!write_json(opts.json_path, findings)) {
      std::fprintf(stderr, "%s: cannot write JSON %s\n",
                   opts.tool_name.c_str(), opts.json_path.c_str());
      return 2;
    }
  }
  if (opts.format == "sarif") write_sarif(std::cout, findings);
  write_text(findings, opts.tool_name, opts.lint_compat);
  return count_active(findings) == 0 ? 0 : 1;
}

}  // namespace elmo_analyze
