file(REMOVE_RECURSE
  "CMakeFiles/test_iteration.dir/test_iteration.cpp.o"
  "CMakeFiles/test_iteration.dir/test_iteration.cpp.o.d"
  "test_iteration"
  "test_iteration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_iteration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
