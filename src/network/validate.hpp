// Structural sanity checks on a parsed network.
//
// These do not reject the network; they return human-readable warnings a
// driver can surface.  The conditions flagged here are exactly the ones the
// compression pass will later exploit (dead metabolites force zero fluxes).
#pragma once

#include <string>
#include <vector>

#include "network/network.hpp"

namespace elmo {

struct ValidationReport {
  std::vector<std::string> warnings;
  [[nodiscard]] bool clean() const { return warnings.empty(); }
};

/// Run all structural checks.
ValidationReport validate(const Network& network);

}  // namespace elmo
