file(REMOVE_RECURSE
  "libelmo_analysis.a"
)
