#!/usr/bin/env bash
# Static-analysis sweep:
#   1. elmo_analyze — the project's multi-pass static analyzer
#      (tools/analyze/): include-graph layering/facade/cycle/IWYU-lite
#      enforcement, lock-discipline, the overflow boundary around the
#      exact-arithmetic kernels, the historical lint rules, plus the
#      interprocedural passes (shared-state races in concurrent bodies,
#      error-path/RAII pairing, determinism in solver-output modules,
#      communication-protocol skeletons over the mpsim call sites, and
#      object-typestate machines for spill files, leases, rank testers,
#      watchdog tokens and checkpoint repair) — gated against the
#      committed baseline (tools/analyze_baseline.txt),
#      which the full run also checks for stale entries.  Covers src/,
#      tools/, bench/ and examples/.  Bootstrapped with bare g++ so it
#      works before any CMake tree exists.
#   2. elmo_lint compatibility pass — the lint rules (naked new, rand,
#      catch-all, reinterpret_cast) over tests/ (the only tree stage 1
#      does not walk; the seeded-violation corpus under
#      tests/analyze_fixtures/ is excluded by design).
#   3. header self-containedness — every src/**/*.hpp must compile on its
#      own (g++ -fsyntax-only), so include order can never hide a missing
#      include.
#   4. clang-tidy — bugprone/concurrency/performance checks from
#      .clang-tidy over the compilation database.  Skipped with a notice
#      when clang-tidy is not installed (the container ships g++ only);
#      stages 1-3 still carry the project-specific rules.
#   5. format check — scripts/format.sh --check (skipped without
#      clang-format).
#
# Usage: scripts/lint.sh [-jN]        exit 0 = clean
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:--j$(nproc)}"

run() { echo "+ $*" >&2; "$@"; }

echo "== 1/5 elmo_analyze (include graph, locks, overflow, lint," \
     "shared, errpath, determinism, protocol, typestate) =="
mkdir -p build-lint
run g++ -std=c++17 -O1 -Wall -Wextra -I tools -o build-lint/elmo_analyze \
    tools/analyze/*.cpp
run ./build-lint/elmo_analyze --root=. \
    --baseline=tools/analyze_baseline.txt

echo "== 2/5 elmo_lint rules over tests =="
# shellcheck disable=SC2046
run ./build-lint/elmo_analyze --pass=lint --lint-compat \
    $(find tests \
        \( -name '*.cpp' -o -name '*.hpp' \) \
        -not -path 'tests/analyze_fixtures/*' | sort)

echo "== 3/5 header self-containedness =="
header_fails=0
for header in $(find src -name '*.hpp' | sort); do
  # -include of the header into an empty TU keeps g++ from warning about
  # `#pragma once in main file`.
  if ! g++ -std=c++20 -fsyntax-only -I src -x c++ -include "$header" \
      /dev/null; then
    echo "not self-contained: $header" >&2
    header_fails=$((header_fails + 1))
  fi
done
if [ "$header_fails" -ne 0 ]; then
  echo "lint: $header_fails header(s) do not compile standalone" >&2
  exit 1
fi

echo "== 4/5 clang-tidy =="
if command -v clang-tidy >/dev/null 2>&1; then
  run cmake -B build -S . >/dev/null   # refresh compile_commands.json
  # shellcheck disable=SC2046
  run clang-tidy -p build --quiet \
      $(find src -name '*.cpp' | sort)
else
  echo "clang-tidy not installed — skipped (stages 1-3 enforce the" \
       "project-specific rules)" >&2
fi

echo "== 5/5 format check =="
if command -v clang-format >/dev/null 2>&1; then
  run scripts/format.sh --check
else
  echo "clang-format not installed — skipped" >&2
fi

echo "lint OK"
